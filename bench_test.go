package iotlan

import (
	"sync"
	"testing"
	"time"

	"iotlan/internal/analysis"
	"iotlan/internal/classify"
	"iotlan/internal/device"
	"iotlan/internal/inspector"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/testbed"
)

// benchStudy is built once; benches measure the analyses, and the reported
// custom metrics carry each experiment's headline numbers so a bench run
// regenerates the paper's tables and figures.
var (
	benchOnce  sync.Once
	benchS     *Study
	benchLocal []pcap.Record
)

func benchStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		s := New(7)
		s.IdleDuration = 30 * time.Minute
		s.Interactions = 60
		s.Households = 1500
		s.AppsToRun = 60
		s.RunAll()
		benchS = s
		benchLocal = s.LocalRecords()
	})
	return benchS
}

// BenchmarkEverything times the full artifact fan-out with cold analysis
// caches per iteration — the end-to-end region BENCH_3.json tracks.
func BenchmarkEverything(b *testing.B) {
	s := benchStudy(b)
	want := len(Artifacts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetAnalysisCaches()
		if res := s.Everything(); len(res) != want {
			b.Fatalf("Everything returned %d results, want %d", len(res), want)
		}
	}
}

// --- One bench per table and figure ---------------------------------------

func BenchmarkTable3Catalog(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Table3()
	}
	b.ReportMetric(r.Metrics["devices"], "devices")
	b.ReportMetric(r.Metrics["unique_models"], "models")
}

func BenchmarkFigure1DeviceGraph(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Figure1()
	}
	b.ReportMetric(r.Metrics["talker_fraction"]*100, "talker_%")
	b.ReportMetric(r.Metrics["edges"], "edges")
	b.ReportMetric(r.Metrics["intra_cluster_fraction"]*100, "intra_cluster_%")
}

func BenchmarkFigure2ProtocolPrevalence(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Figure2()
	}
	b.ReportMetric(r.Metrics["passive/ARP"], "ARP_%")
	b.ReportMetric(r.Metrics["passive/mDNS"], "mDNS_%")
	b.ReportMetric(r.Metrics["passive/SSDP"], "SSDP_%")
	b.ReportMetric(r.Metrics["passive/TPLINK_SHP"], "TPLINK_%")
	b.ReportMetric(r.Metrics["avg_protocols_per_device"], "avg_protos")
}

func BenchmarkFigure3ClassifierMatrix(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Figure3()
	}
	b.ReportMetric(r.Metrics["spec_labeled"]*100, "tshark_labeled_%")
	b.ReportMetric(r.Metrics["dpi_labeled"]*100, "ndpi_labeled_%")
	b.ReportMetric(r.Metrics["disagree_frac"]*100, "disagree_%")
	b.ReportMetric(r.Metrics["neither_frac"]*100, "unlabeled_%")
}

func BenchmarkFigure4VendorClusters(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Figure4()
	}
	b.ReportMetric(r.Metrics["Amazon↔Amazon"], "amazon_edges")
	b.ReportMetric(r.Metrics["Google↔Google"], "google_edges")
	b.ReportMetric(r.Metrics["Apple↔Apple"], "apple_edges")
}

func BenchmarkTable1Exposure(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Table1()
	}
	b.ReportMetric(r.Metrics["filled_cells"], "filled_cells")
}

func BenchmarkTable2Entropy(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Table2()
	}
	b.ReportMetric(r.Metrics["unique_pct/UUID"], "uuid_unique_%")
	b.ReportMetric(r.Metrics["unique_pct/UUID+MAC"], "uuid_mac_unique_%")
	b.ReportMetric(r.Metrics["entropy_bits/UUID"], "uuid_entropy_bits")
	b.ReportMetric(r.Metrics["entropy_bits/UUID+MAC"], "uuid_mac_entropy_bits")
}

func BenchmarkTable4Responses(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Table4()
	}
	b.ReportMetric(r.Metrics["responders/Amazon Echo"], "echo_responders")
	b.ReportMetric(r.Metrics["responders/Google&Nest"], "google_responders")
}

func BenchmarkTable5Payloads(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Table5()
	}
	b.ReportMetric(float64(len(r.Rendered)), "payload_bytes")
}

func BenchmarkActiveScan(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.OpenPorts()
	}
	b.ReportMetric(r.Metrics["unique_tcp_ports"], "unique_tcp_ports")
	b.ReportMetric(r.Metrics["unique_udp_ports"], "unique_udp_ports")
	b.ReportMetric(r.Metrics["devices_with_open_port"], "devices_responding")
	b.ReportMetric(r.Metrics["echo_port_devices"], "echo_port_devices")
}

func BenchmarkDiscoveryIntervals(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Intervals()
	}
	b.ReportMetric(r.Metrics["Google_mDNS_median_s"], "google_mdns_s")
	b.ReportMetric(r.Metrics["Google_SSDP_median_s"], "google_ssdp_s")
	b.ReportMetric(r.Metrics["Amazon_mDNS_median_s"], "amazon_mdns_s")
}

func BenchmarkPeriodicity(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Periodicity()
	}
	b.ReportMetric(r.Metrics["periodic_fraction"]*100, "periodic_%")
	b.ReportMetric(r.Metrics["groups_per_device"], "groups_per_device")
}

func BenchmarkVulnScan(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.VulnSummary()
	}
	b.ReportMetric(r.Metrics["devices/CVE-2016-2183"], "weak_key_devices")
	b.ReportMetric(r.Metrics["devices/upnp-1.0"], "upnp10_devices")
	b.ReportMetric(r.Metrics["high_or_critical"], "high_critical_findings")
}

func BenchmarkAppExfiltration(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Exfiltration()
	}
	b.ReportMetric(r.Metrics["apps_sending/device_mac"], "mac_senders")
	b.ReportMetric(r.Metrics["apps_sending/router_ssid"], "ssid_senders")
	b.ReportMetric(r.Metrics["downlink_apps"], "downlink_apps")
	b.ReportMetric(r.Metrics["sdk_channels"], "sdk_channels")
}

func BenchmarkSDKBehaviours(b *testing.B) {
	s := benchStudy(b)
	// Count SDK-attributed records per library.
	for i := 0; i < b.N; i++ {
		_ = s.Exfiltration()
	}
	perSDK := map[string]int{}
	for _, rec := range s.AppRun.Records {
		if rec.SDK != "" {
			perSDK[rec.SDK]++
		}
	}
	b.ReportMetric(float64(perSDK["innosdk"]), "innosdk_records")
	b.ReportMetric(float64(perSDK["appdynamics"]), "appdynamics_records")
	b.ReportMetric(float64(perSDK["umlaut-insightcore"]), "umlaut_records")
	b.ReportMetric(float64(perSDK["mytracker"]), "mytracker_records")
}

func BenchmarkPermissionBypass(b *testing.B) {
	// §2.1 PoC: discovery scanning succeeds with only normal permissions.
	s := benchStudy(b)
	sidestepped := 0
	for _, c := range s.AppRun.APILog {
		if c.SideStepped {
			sidestepped++
		}
	}
	for i := 0; i < b.N; i++ {
		_ = sidestepped
	}
	b.ReportMetric(float64(sidestepped), "sidestepped_api_calls")
	b.ReportMetric(float64(len(s.AppRun.APILog)), "api_calls_logged")
}

// BenchmarkMitigations runs the §7 countermeasure sweep; the metrics show
// the re-identification collapse under full mitigation.
func BenchmarkMitigations(b *testing.B) {
	s := benchStudy(b)
	var r Result
	for i := 0; i < b.N; i++ {
		r = s.Mitigations()
	}
	b.ReportMetric(r.Metrics["reid_rate/none"]*100, "baseline_reid_%")
	b.ReportMetric(r.Metrics["reid_rate/strip-names+randomize-uuids+redact-macs"]*100, "mitigated_reid_%")
}

// --- Ablation benches (DESIGN.md's design-choice studies) ------------------

// BenchmarkAblationDecodeAllocVsReuse contrasts allocate-per-packet decoding
// with DecodingLayerParser-style struct reuse (gopacket's headline trick).
func BenchmarkAblationDecodeAllocVsReuse(b *testing.B) {
	benchStudy(b)
	frames := make([][]byte, 0, 4096)
	for _, r := range benchLocal {
		frames = append(frames, r.Data)
		if len(frames) == cap(frames) {
			break
		}
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = layers.Decode(frames[i%len(frames)])
		}
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		var p layers.Packet
		for i := 0; i < b.N; i++ {
			p.DecodeInto(frames[i%len(frames)])
		}
	})
}

// BenchmarkAblationFlowKeying contrasts unidirectional 5-tuple keying with
// canonicalised bidirectional keying.
func BenchmarkAblationFlowKeying(b *testing.B) {
	benchStudy(b)
	packets := pcap.Packets(benchLocal[:min(len(benchLocal), 20000)])
	b.Run("unidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			table := map[classify.FlowKey]int{}
			for _, p := range packets {
				proto, sp, dp := p.Transport()
				if proto == "" {
					continue
				}
				table[classify.FlowKey{Src: p.SrcIP(), SrcPort: sp, Dst: p.DstIP(), DstPort: dp, Proto: proto}]++
			}
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			table := map[classify.FlowKey]int{}
			for _, p := range packets {
				proto, sp, dp := p.Transport()
				if proto == "" {
					continue
				}
				k := classify.FlowKey{Src: p.SrcIP(), SrcPort: sp, Dst: p.DstIP(), DstPort: dp, Proto: proto}
				rev := k.Reverse()
				if _, ok := table[rev]; ok {
					k = rev
				}
				table[k]++
			}
		}
	})
}

// BenchmarkAblationDPIPrefilter contrasts full-payload DPI with a cheap
// port pre-filter in front of it.
func BenchmarkAblationDPIPrefilter(b *testing.B) {
	benchStudy(b)
	flows, _ := classify.Assemble(benchLocal)
	dpi := classify.DPIClassifier{}
	spec := classify.SpecClassifier{}
	b.Run("dpi-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range flows {
				_ = dpi.Classify(f)
			}
		}
	})
	b.Run("port-prefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range flows {
				if l := spec.Classify(f); l != classify.Unknown && l != "UDP-DATA" {
					continue
				}
				_ = dpi.Classify(f)
			}
		}
	})
}

// BenchmarkAblationIdentifierExtraction measures the full identifier
// extraction + entropy pipeline over a dataset (the byte-scanning design the
// package uses instead of regexp compilation).
func BenchmarkAblationIdentifierExtraction(b *testing.B) {
	ds := inspector.Generate(3, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.EntropyTable(ds)
	}
}

// BenchmarkSimulationThroughput measures raw event-loop speed: one iteration
// simulates ten minutes of the full 93-device lab.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := testbed.New(int64(i) + 1)
		lab.Start()
		lab.RunIdle(10 * time.Minute)
	}
	b.ReportMetric(600, "virtual_s/op")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = device.Catalog
var _ = netx.Broadcast
