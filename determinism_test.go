package iotlan

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// smallStudy builds a study small enough to run the full pipeline several
// times under -race on one core, but large enough to exercise every shard
// path (150 households across 4 workers, multi-record capture, apps).
func smallStudy(seed int64, workers int) *Study {
	return New(seed,
		WithIdleDuration(4*time.Minute),
		WithInteractions(12),
		WithHouseholds(150),
		WithApps(20),
		WithWorkers(workers),
	)
}

// TestEverythingByteIdenticalAcrossWorkerCounts is the engine's contract:
// for a fixed seed, parallelism may change wall time but never a byte of
// output — every artifact's ID, rendition, and metrics, and the Inspector
// corpus itself, must match a sequential run exactly.
func TestEverythingByteIdenticalAcrossWorkerCounts(t *testing.T) {
	// One seed only: each iteration runs the full pipeline twice, and the
	// package must fit go test's default 10m timeout under -race alongside
	// the chaos determinism tests (which re-check the contract at a second
	// seed with fault injection enabled).
	for _, seed := range []int64{1337} {
		seq := smallStudy(seed, 1)
		par := smallStudy(seed, 4)
		seqResults := seq.Everything()
		parResults := par.Everything()
		if len(seqResults) != len(parResults) {
			t.Fatalf("seed %d: result counts differ: %d vs %d", seed, len(seqResults), len(parResults))
		}
		for i := range seqResults {
			a, b := seqResults[i], parResults[i]
			if a.ID != b.ID {
				t.Fatalf("seed %d: result %d ordering differs: %q vs %q", seed, i, a.ID, b.ID)
			}
			if a.Rendered != b.Rendered {
				t.Errorf("seed %d: %s rendition differs between workers=1 and workers=4", seed, a.ID)
			}
			if !reflect.DeepEqual(a.Metrics, b.Metrics) {
				t.Errorf("seed %d: %s metrics differ: %v vs %v", seed, a.ID, a.Metrics, b.Metrics)
			}
		}
		seqDS, err := json.Marshal(seq.Inspector)
		if err != nil {
			t.Fatal(err)
		}
		parDS, err := json.Marshal(par.Inspector)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqDS) != string(parDS) {
			t.Errorf("seed %d: Inspector corpus differs between workers=1 and workers=4", seed)
		}
	}
}

func TestRunAllContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The smallest study that still runs every pipeline: this test is about
	// cancellation and resumption semantics, not scale.
	s := New(5,
		WithIdleDuration(time.Minute),
		WithInteractions(2),
		WithHouseholds(20),
		WithApps(2),
		WithWorkers(1),
	)
	err := s.RunAllContext(ctx)
	if err == nil {
		t.Fatal("cancelled context did not stop RunAll")
	}
	if got := err.Error(); got != "iotlan: phase passive: context canceled" {
		t.Fatalf("error should name the phase: %q", got)
	}
	if s.passiveDone {
		t.Fatal("phase ran despite cancelled context")
	}
	// A live context resumes from the start.
	if err := s.RunAllContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Inspector == nil {
		t.Fatal("RunAllContext did not finish the pipelines")
	}
}

func TestExportContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(5)
	if err := s.ExportContext(ctx, t.TempDir()); err == nil {
		t.Fatal("cancelled context did not stop Export")
	}
}

func TestPassiveIndexDecodesOnce(t *testing.T) {
	s := smallStudy(9, 2)
	s.RunPassive()
	idx := s.PassiveIndex()
	if idx.Len() == 0 {
		t.Fatal("empty index")
	}
	if s.PassiveIndex() != idx {
		t.Fatal("index rebuilt on second call")
	}
	recs := s.PassiveRecords()
	if len(recs) != idx.Len() {
		t.Fatalf("PassiveRecords length %d, index %d", len(recs), idx.Len())
	}
	// Records carry the cached parse: Decode must hand back the index's
	// packet pointer, not a fresh parse.
	if recs[0].Decode() != idx.Packets()[0] {
		t.Fatal("record decode did not hit the index cache")
	}
}
