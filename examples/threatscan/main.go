// Threatscan: everything an attacker who just joined your Wi-Fi can learn
// and do. Scans the lab like nmap, audits services like Nessus, then proves
// the headline §5.1 finding by switching a TP-Link plug on with no
// credentials whatsoever.
package main

import (
	"fmt"
	"net/netip"
	"time"

	"iotlan"
	"iotlan/internal/netx"
	"iotlan/internal/tplink"
	"iotlan/internal/vuln"
)

func main() {
	study := iotlan.New(7)
	study.IdleDuration = 10 * time.Minute
	study.RunScans()
	study.RunVulnScans()

	fmt.Println("== What the attacker sees ==")
	op := study.OpenPorts()
	fmt.Println(op.Rendered)

	fmt.Println("== What the attacker can exploit ==")
	vs := study.VulnSummary()
	fmt.Println(vs.Rendered)
	for name, findings := range study.Findings {
		for _, f := range findings {
			if f.Severity >= vuln.High {
				fmt.Printf("  %-20s [%s] %s: %s\n", name, f.Severity, f.ID, f.Evidence)
			}
		}
	}

	// The §5.1 proof: control a TP-Link plug with zero authentication.
	fmt.Println("\n== Unauthenticated takeover of the TP-Link plug ==")
	plug := study.DeviceByName("tplink-plug")
	attacker := study.Lab.AddHost(66, netx.MAC{0x02, 0x66, 0, 0, 0, 0x66})
	tplink.Discover(attacker, func(info *tplink.SysInfo, from netip.Addr) {
		fmt.Printf("  discovered %q at %s — home location %.6f,%.6f in PLAINTEXT\n",
			info.Alias, from, info.Latitude, info.Longitude)
	})
	study.Lab.Sched.RunFor(2 * time.Second)
	tplink.Control(attacker, plug.IP(), true, func(ok bool) {
		fmt.Printf("  set_relay_state(on) accepted: %v — the plug switched for a stranger\n", ok)
	})
	study.Lab.Sched.RunFor(2 * time.Second)
}
