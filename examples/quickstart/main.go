// Quickstart: boot the simulated 93-device smart home, capture fifteen
// minutes of local traffic, and print who talks to whom and which protocols
// dominate — the paper's Figure 1 and Figure 2 in three calls.
package main

import (
	"fmt"
	"time"

	"iotlan"
)

func main() {
	study := iotlan.New(42)
	study.IdleDuration = 15 * time.Minute
	study.Interactions = 20
	study.RunPassive()

	fmt.Println("== Device-to-device communication (Figure 1) ==")
	f1 := study.Figure1()
	fmt.Println(f1.Rendered)
	fmt.Printf("%.0f%% of devices talk to another device locally; %.0f%% of edges stay inside a vendor/platform cluster\n\n",
		100*f1.Metrics["talker_fraction"], 100*f1.Metrics["intra_cluster_fraction"])

	fmt.Println("== Protocol prevalence (Figure 2) ==")
	f2 := study.Figure2()
	fmt.Println(f2.Rendered)
	fmt.Printf("an average device used %.1f local protocols; the busiest used %.0f\n",
		f2.Metrics["avg_protocols_per_device"], f2.Metrics["max_protocols_per_device"])
}
