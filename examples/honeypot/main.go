// Honeypot: deploy a fake Hue bridge in the smart home, watch who pokes it,
// and trace its honeytoken through a scanning SDK's exfiltration records —
// the §3.1 methodology for proving LAN-data propagation to the cloud.
package main

import (
	"fmt"
	"time"

	"iotlan"
	"iotlan/internal/app"
	"iotlan/internal/honeypot"
	"iotlan/internal/netx"
)

func main() {
	study := iotlan.New(5)
	study.IdleDuration = 20 * time.Minute
	study.RunPassive() // the study deploys its own honeypot during capture

	hp := study.Honeypot
	fmt.Printf("honeypot %q live with honeytoken %s\n\n", hp.Name, hp.Token)

	// A spyware-laden app scans the LAN; the honeypot answers like a real
	// bridge, so its token lands in the app's haul.
	rt := app.NewRuntime(study.Lab, app.Android9)
	scannerApp := &app.App{
		Package:     "com.example.deviceradar",
		Permissions: []app.Permission{app.PermInternet, app.PermMulticast},
		UsesMDNS:    true, UsesSSDP: true,
		ExfiltratesDeviceMACs: true, // spyware ships its haul
	}
	rt.Run(scannerApp)

	fmt.Println("== Honeypot interaction log ==")
	for _, e := range hp.Events[max(0, len(hp.Events)-15):] {
		fmt.Printf("  %s %-7s %-16s %s\n", e.Time.Format("15:04:05"), e.Proto, e.From, e.Detail)
	}
	fmt.Printf("totals: %v from %d distinct visitors\n\n", hp.Interactions(), len(hp.Visitors()))

	fmt.Println("== Honeytoken propagation ==")
	hits := 0
	for _, r := range rt.Records {
		if hp.TokenAppearsIn([]byte(r.Value)) {
			hits++
			fmt.Printf("  token reached %s via %s (%s)\n", r.Endpoint, r.App, r.DataType)
		}
	}
	if hits == 0 {
		fmt.Println("  token not exfiltrated by this app")
	}

	// The honeypot also runs standalone on a real LAN:
	_ = honeypot.Server{HP: honeypot.New("real", 1)}
	_ = netx.Broadcast
	fmt.Println("\n(run `go run ./cmd/iothoneypot` to deploy the same honeypot on a real network)")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
