// Fingerprint: the tracker's-eye view. A free-to-play game bundling a
// network-scanning SDK runs on a phone in the smart home; this example shows
// exactly which identifiers leave the house, then quantifies how unique
// those identifiers make a household across thousands of homes (§6).
package main

import (
	"fmt"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/app"
	"iotlan/internal/inspector"
)

func main() {
	study := iotlan.New(9)
	study.IdleDuration = 10 * time.Minute
	study.RunPassive()

	// A "lucky rewards" game with innosdk and a cleaner app with MyTracker
	// run on the instrumented phone — no dangerous permission between them.
	rt := app.NewRuntime(study.Lab, app.Android13)
	for _, a := range app.Dataset(9) {
		switch a.Package {
		case "com.luckyapp.winner", "com.fancyclean.boostmaster", "com.cnn.mobile.android.phone":
			aa := a
			fmt.Printf("running %s (permissions: %v)\n", a.Package, a.Permissions)
			rt.Run(&aa)
		}
	}

	fmt.Println("\n== What left the phone ==")
	for _, r := range rt.Records {
		sdk := r.SDK
		if sdk == "" {
			sdk = "first-party"
		}
		fmt.Printf("  %-28s via %-18s → %-26s %s=%q\n", r.App, sdk, r.Endpoint, r.DataType, truncate(r.Value, 44))
	}

	fmt.Println("\n== How identifying is that haul? (Table 2 over 3,860 households) ==")
	ds := inspector.Generate(9, 3860)
	fmt.Println(analysis.RenderEntropyTable(analysis.EntropyTable(ds)))
	fmt.Println("reference point: a web browser's User-Agent string carries ~10.5 bits (EFF).")
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
