package iotlan

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"iotlan/internal/chaos"
)

// chaosStudy is a scaled-down smallStudy under a fault-injection plan:
// still multi-worker and multi-shard, but sized so the extra studies fit in
// the root package's -race time budget alongside determinism_test.go.
func chaosStudy(seed int64, workers int, plan chaos.Plan) *Study {
	return New(seed,
		WithIdleDuration(3*time.Minute),
		WithInteractions(8),
		WithHouseholds(60),
		WithApps(8),
		WithWorkers(workers),
		WithChaos(plan),
	)
}

// degradedPlan exercises every impairment class in one short window: loss,
// duplication, reordering, jitter, corruption, a partition, and churn.
var degradedPlan = chaos.Plan{
	Name: "test-degraded",
	Loss: 0.03, Duplicate: 0.01, Reorder: 0.02,
	MaxExtraLatency: 2 * time.Millisecond,
	Corrupt:         0.01,
	Partitions:      []chaos.Partition{{Start: 90 * time.Second, Duration: time.Minute, Isolate: 0.3}},
	Churn:           &chaos.Churn{Start: time.Minute, Interval: 45 * time.Second, Downtime: 20 * time.Second},
}

// TestChaosByteIdenticalAcrossWorkerCounts extends the PR 2 determinism
// contract to fault injection: for a fixed (seed, chaos.Plan), worker count
// may change wall time but never a byte of output. It compares the phases
// where chaos and the parallel analysis engine actually interact — the
// passive simulation (where every fault fires), the worker-sharded
// Inspector corpus, and the passive artifact fan-out, plus the metrics
// snapshot (which now includes the chaos_faults series). Full Everything()
// equality is pinned by TestEverythingByteIdenticalAcrossWorkerCounts; the
// scan/vuln/app phases it adds run on the single-threaded scheduler and
// repeating them here per worker count blows the -race time budget.
func TestChaosByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const seed = 42
	seq := chaosStudy(seed, 1, degradedPlan)
	par := chaosStudy(seed, 4, degradedPlan)
	for _, s := range []*Study{seq, par} {
		s.RunPassive()
		s.RunInspector()
	}
	for _, name := range []string{"figure1", "figure2", "table1", "table4", "table5", "intervals", "periodicity", "chaos"} {
		a, err := seq.RunArtifact(name)
		if err != nil {
			t.Fatalf("workers=1 %s: %v", name, err)
		}
		b, err := par.RunArtifact(name)
		if err != nil {
			t.Fatalf("workers=4 %s: %v", name, err)
		}
		if a.Rendered != b.Rendered {
			t.Errorf("%s rendition differs under chaos between workers=1 and workers=4", name)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s metrics differ under chaos: %v vs %v", name, a.Metrics, b.Metrics)
		}
	}
	seqDS, err := json.Marshal(seq.Inspector)
	if err != nil {
		t.Fatal(err)
	}
	parDS, err := json.Marshal(par.Inspector)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqDS) != string(parDS) {
		t.Errorf("Inspector corpus differs under chaos")
	}
	seqSnap := string(seq.Lab.Telemetry().Registry.Snapshot())
	parSnap := string(par.Lab.Telemetry().Registry.Snapshot())
	if seqSnap != parSnap {
		t.Errorf("metrics snapshot differs under chaos")
	}
	// The plan must actually have injected faults, or this test proves
	// nothing.
	if seq.Lab.Chaos.Faults() == 0 {
		t.Fatal("degraded plan injected no faults")
	}
}

// TestChaosCaptureByteIdentical pins the rawest export: the same (seed,
// plan) must produce the identical frame-by-frame capture regardless of
// worker count (workers only parallelise analysis, never simulation).
func TestChaosCaptureByteIdentical(t *testing.T) {
	a := chaosStudy(7, 1, degradedPlan)
	b := chaosStudy(7, 4, degradedPlan)
	a.RunPassive()
	b.RunPassive()
	ra, rb := a.Lab.Capture.All, b.Lab.Capture.All
	if len(ra) != len(rb) {
		t.Fatalf("capture lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].Time.Equal(rb[i].Time) || string(ra[i].Data) != string(rb[i].Data) {
			t.Fatalf("capture record %d differs between worker counts", i)
		}
	}
}

// TestChaosProfilesDegradeGracefully runs the passive pipeline and every
// passive artifact under each named impairment profile: no panics, no
// NaN/Inf metrics, non-empty renditions. The analysis layer must tolerate a
// degraded network, not merely a perfect one.
func TestChaosProfilesDegradeGracefully(t *testing.T) {
	for _, plan := range chaos.Profiles() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			s := New(11,
				WithIdleDuration(3*time.Minute),
				WithInteractions(8),
				WithHouseholds(25),
				WithApps(4),
				WithWorkers(2),
				WithChaos(plan),
			)
			for _, name := range []string{"figure1", "figure2", "table1", "table4", "table5", "intervals", "periodicity", "chaos"} {
				r, err := s.RunArtifact(name)
				if err != nil {
					t.Fatalf("%s under %s: %v", name, plan.Name, err)
				}
				if r.Rendered == "" {
					t.Errorf("%s under %s: empty rendition", name, plan.Name)
				}
				for k, v := range r.Metrics {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("%s under %s: metric %s = %v", name, plan.Name, k, v)
					}
				}
			}
		})
	}
}
