# iotlan — build/test/reproduce targets (stdlib-only Go module)

GO ?= go

.PHONY: all build vet test race verify lint bench bench2 bench3 bench4 bench5 bench6 bench7 microbench repro serve examples clean

all: build vet test

# CI gate: vet, build, and the full test suite under the race detector.
# The analysis engine's byte-identical-output contract is exercised here
# (determinism_test.go runs parallel vs sequential under -race).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -timeout 45m ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet: staticcheck, pinned so CI runs are
# reproducible. Scope is staticcheck.conf (SA correctness checks). Needs
# network access to fetch the pinned tool on first run — CI wires this in;
# offline dev environments fall back to `make vet`.
STATICCHECK_VERSION ?= 2025.1.1
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Race-detector pass over the whole module (telemetry counters are the only
# shared state; they must stay clean under -race).
race:
	$(GO) test -race ./... 2>&1 | tee race_output.txt

# Standard benchmark: the 45-virtual-minute idle run of the full lab,
# recorded as BENCH_1.json (wall time, events/sec, frames/sec).
bench:
	$(GO) run ./cmd/iotbench -seed 1 -idle 45m -out BENCH_1.json

# Analysis-engine benchmark: Inspector generation + decode-once index +
# artifact fan-out, sequential vs one-worker-per-CPU, with a checksum
# asserting identical output. Records BENCH_2.json.
bench2:
	$(GO) run ./cmd/iotbench -artifacts -seed 1 -idle 45m -out BENCH_2.json

# Shared-prereq memoization benchmark: the duplicated-work baseline versus
# the memoized analysis at workers=1 and workers=4, min-of-3 reps with a GC
# between, all variants checksummed identical. Records BENCH_3.json.
bench3:
	$(GO) run ./cmd/iotbench -engine -seed 1 -idle 45m -reps 3 -out BENCH_3.json

# Serving benchmark: iotload self-hosts an in-process iotserve, uploads 200
# synthesized households (wire + capture) at concurrency 16 honoring 429
# backpressure, and records BENCH_4.json — throughput, p50/p95/p99, and the
# gate that the served fleet Table 2 checksums equal to the offline Study.
bench4:
	$(GO) run ./cmd/iotload -households 200 -concurrency 16 -seed 1 -dup-frac 0 -out BENCH_4.json

# Observability benchmark: the bench4 load plus a 25% duplicate tail that
# exercises the content-hash cache, with per-stage p50/p95/p99 scraped from
# the /metrics exposition folded into BENCH_5.json. Uploads/sec must stay
# within 5% of bench4 — the cost of always-on spans and histograms.
bench5:
	$(GO) run ./cmd/iotload -households 200 -concurrency 16 -seed 1 -out BENCH_5.json

# Scale benchmark: 100k streamed synthetic households into a sharded
# self-hosted server (uploaders draw households on demand; the offline gate
# folds batched entropy partials, so neither side materializes the corpus).
# Gates: zero drops, and the served fleet Table 2 checksums identical to the
# offline pipeline. Records BENCH_6.json.
bench6:
	$(GO) run ./cmd/iotload -households 100000 -mode inspector -stream \
		-concurrency 32 -seed 1 -dup-frac 0 -shards 8 -out BENCH_6.json

# Sustained mixed read/write benchmark: 10k households re-uploaded with
# changed contents for 3 rounds while concurrent readers time mid-ingest
# fleet Table 2 reads — once with incremental artifact maintenance (live
# per-shard partials folded at ingest), once with read-path recompute.
# Gates: both servers converge to byte-identical artifacts, the incremental
# shadow-batch self-check is clean, zero drops. Records BENCH_7.json with
# read_speedup_* and upload_throughput_ratio.
bench7:
	$(GO) run ./cmd/iotload -sustained -households 10000 -rounds 3 \
		-concurrency 8 -readers 2 -seed 1 -shards 8 -out BENCH_7.json

# Run the capture-ingestion service on :8080.
serve:
	$(GO) run ./cmd/iotserve -addr :8080

# go-test micro benchmarks (per-layer throughput, allocation counts).
microbench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure (writes repro_output.txt).
repro:
	$(GO) run ./cmd/iotrepro -seed 7 -idle 45m -interactions 120 -households 3860 | tee repro_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/threatscan
	$(GO) run ./examples/fingerprint
	$(GO) run ./examples/honeypot

clean:
	rm -f test_output.txt bench_output.txt race_output.txt BENCH_1.json
