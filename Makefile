# iotlan — build/test/reproduce targets (stdlib-only Go module)

GO ?= go

.PHONY: all build vet test bench repro examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure (writes repro_output.txt).
repro:
	$(GO) run ./cmd/iotrepro -seed 7 -idle 45m -interactions 120 -households 3860 | tee repro_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/threatscan
	$(GO) run ./examples/fingerprint
	$(GO) run ./examples/honeypot

clean:
	rm -f test_output.txt bench_output.txt
