package iotlan

import (
	"strings"
	"testing"
	"time"

	"iotlan/internal/chaos"
	"iotlan/internal/device"
	"iotlan/internal/resident"
	"iotlan/internal/testbed"
)

// residentProfiles is the reduced roster the resident determinism tests run
// on: every interaction kind has its participants, sensors have cameras and
// automation devices, and drift has a plaintext-Tuya firmware-flip target —
// multi-day runs stay inside the root package's -race budget where the full
// 93-device catalog would not.
func residentProfiles() []*device.Profile {
	return device.Subset(
		"echo-1", "echo-2", "echo-3",
		"google-1", "google-2",
		"hue-hub", "tplink-plug", "tplink-bulb",
		"tuya-bulb-jinvoo", "tuya-plug-1",
		"wyze-cam", "ring-doorbell", "arlo-cam-1",
		"smartthings-hub", "nest-thermostat", "wemo-plug",
		"chromecast", "roku-tv",
	)
}

// residentStudy is a subset-catalog study driven by residents instead of the
// scripted workload.
func residentStudy(seed int64, workers int, plan resident.Plan) *Study {
	return New(seed,
		WithWorkers(workers),
		WithLabProfiles(residentProfiles()),
		WithResidents(plan),
	)
}

// TestResidentScheduleByteIdentical pins the compile contract: the same
// (seed, plan, world) renders the identical schedule every time, distinct
// seeds render distinct schedules, and worker count — an analysis-only knob —
// never reaches the compiler. Compile-level only, so all three seeds fit in
// any budget.
func TestResidentScheduleByteIdentical(t *testing.T) {
	plan := resident.Household(4, 3)
	renders := map[int64]string{}
	for _, seed := range []int64{1, 42, 1337} {
		a := testbed.NewWith(seed, residentProfiles(), testbed.WithResidents(plan))
		b := testbed.NewWith(seed, residentProfiles(), testbed.WithResidents(plan))
		ra, rb := a.Residents.Render(), b.Residents.Render()
		if ra != rb {
			t.Fatalf("seed %d: schedule differs between identical labs", seed)
		}
		if ra == "" {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		renders[seed] = ra
	}
	if renders[1] == renders[42] || renders[42] == renders[1337] {
		t.Fatal("distinct seeds compiled identical schedules")
	}
}

// TestResidentByteIdenticalAcrossWorkerCounts extends the worker-count
// determinism contract to the resident layer: for a fixed (seed, plan),
// workers=1 and workers=4 must agree byte-for-byte on the compiled schedule,
// the frame-by-frame capture, the diurnal artifact, and the metrics snapshot
// (which includes the resident_events series).
func TestResidentByteIdenticalAcrossWorkerCounts(t *testing.T) {
	plan := resident.Household(4, 2)
	seq := residentStudy(42, 1, plan)
	par := residentStudy(42, 4, plan)
	a, err := seq.RunArtifact("diurnal")
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	b, err := par.RunArtifact("diurnal")
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if seq.Lab.Residents.Render() != par.Lab.Residents.Render() {
		t.Error("compiled schedule differs between worker counts")
	}
	if a.Rendered != b.Rendered {
		t.Errorf("diurnal rendition differs between worker counts:\n--- workers=1\n%s--- workers=4\n%s", a.Rendered, b.Rendered)
	}
	if len(a.Metrics) == 0 {
		t.Error("diurnal artifact carries no metrics")
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("diurnal metric %s differs: %v vs %v", k, v, b.Metrics[k])
		}
	}
	ra, rb := seq.Lab.Capture.All, par.Lab.Capture.All
	if len(ra) != len(rb) {
		t.Fatalf("capture lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if !ra[i].Time.Equal(rb[i].Time) || string(ra[i].Data) != string(rb[i].Data) {
			t.Fatalf("capture record %d differs between worker counts", i)
		}
	}
	if string(seq.Lab.Telemetry().Registry.Snapshot()) != string(par.Lab.Telemetry().Registry.Snapshot()) {
		t.Error("metrics snapshot differs between worker counts")
	}
}

// TestResidentsComposeWithChaos runs residents and a degraded network
// together: both layers must actually fire (faults injected, resident events
// executed), the diurnal artifact must still render, and the composition must
// stay deterministic for a fixed seed — the SubSeed streams keep the two
// layers from perturbing each other.
func TestResidentsComposeWithChaos(t *testing.T) {
	plan := resident.Household(3, 1)
	degraded := chaos.Plan{
		Name: "test-degraded",
		Loss: 0.03, Duplicate: 0.01, Reorder: 0.02,
		MaxExtraLatency: 2 * time.Millisecond,
		Corrupt:         0.01,
		Partitions:      []chaos.Partition{{Start: 90 * time.Second, Duration: time.Minute, Isolate: 0.3}},
		Churn:           &chaos.Churn{Start: time.Minute, Interval: 45 * time.Second, Downtime: 20 * time.Second},
	}
	mk := func() *Study {
		return New(9,
			WithLabProfiles(residentProfiles()),
			WithResidents(plan),
			WithChaos(degraded),
		)
	}
	a, b := mk(), mk()
	ra, err := a.RunArtifact("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RunArtifact("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if a.Lab.Chaos.Faults() == 0 {
		t.Error("degraded plan injected no faults alongside residents")
	}
	if a.Lab.Telemetry().Registry.Total("resident_events") == 0 {
		t.Error("no resident events executed under chaos")
	}
	if ra.Rendered == "" {
		t.Error("diurnal artifact empty under chaos")
	}
	if ra.Rendered != rb.Rendered {
		t.Error("residents+chaos composition is not deterministic for a fixed seed")
	}
	if !strings.Contains(a.Lab.Summary(), "residents=") {
		t.Errorf("summary lacks resident stats: %s", a.Lab.Summary())
	}
}

// TestDiurnalStructureRequiresResidents is the artifact's reason to exist:
// over equal 48-hour windows, a resident-driven lab shows strongly
// non-uniform hour-of-day traffic while the classic idle workload stays
// flat — the structure appears with residents and disappears without them.
func TestDiurnalStructureRequiresResidents(t *testing.T) {
	lived := residentStudy(1, 2, resident.Household(4, 2))
	baseline := New(1,
		WithWorkers(2),
		WithLabProfiles(residentProfiles()),
		WithIdleDuration(48*time.Hour),
		WithInteractions(0),
	)
	rl, err := lived.RunArtifact("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := baseline.RunArtifact("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if got := rl.Metrics["hours_covered"]; got != 24 {
		t.Fatalf("resident run covered %v hours, want 24", got)
	}
	if got := rb.Metrics["hours_covered"]; got != 24 {
		t.Fatalf("baseline run covered %v hours, want 24", got)
	}
	livedCV, baseCV := rl.Metrics["hour_cv"], rb.Metrics["hour_cv"]
	if livedCV <= 2*baseCV {
		t.Errorf("resident hour CV %.3f not clearly above baseline %.3f", livedCV, baseCV)
	}
	if livedCV < 0.4 {
		t.Errorf("resident hour CV %.3f too flat for a diurnal household", livedCV)
	}
	if peak := rl.Metrics["peak_hour"]; peak < 6 || peak > 22 {
		t.Errorf("resident peak hour %v outside waking hours", peak)
	}
	if rl.Metrics["schedule_events"] == 0 {
		t.Error("resident run reports no scheduled events")
	}
	if rb.Metrics["schedule_events"] != 0 {
		t.Error("baseline run reports scheduled events without residents")
	}
}
