package iotlan

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Export writes the study's datasets to dir as JSON, mirroring the paper's
// artifact release: active-scan results, vulnerability findings, app
// exfiltration records, the instrumented API-access log, the crowdsourced
// corpus, honeypot events, and every experiment's headline metrics.
// Pipelines that have not run are skipped.
func (s *Study) Export(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, v interface{}) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("export %s: %w", name, err)
		}
		return os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644)
	}

	if s.Lab != nil {
		type deviceRow struct {
			Name, Vendor, Model, Category, MAC, IP string
		}
		var rows []deviceRow
		for _, d := range s.Lab.Devices {
			rows = append(rows, deviceRow{
				Name: d.Profile.Name, Vendor: d.Profile.Vendor, Model: d.Profile.Model,
				Category: string(d.Profile.Category), MAC: d.MAC().String(), IP: d.IP().String(),
			})
		}
		if err := write("devices.json", rows); err != nil {
			return err
		}
	}
	if s.Scans != nil {
		if err := write("scans.json", s.Scans); err != nil {
			return err
		}
	}
	if s.Findings != nil {
		if err := write("findings.json", s.Findings); err != nil {
			return err
		}
	}
	if s.AppRun != nil {
		if err := write("exfiltration.json", s.AppRun.Records); err != nil {
			return err
		}
		if err := write("api_access.json", s.AppRun.APILog); err != nil {
			return err
		}
	}
	if s.Inspector != nil {
		if err := write("inspector.json", s.Inspector); err != nil {
			return err
		}
	}
	if s.Honeypot != nil {
		if err := write("honeypot.json", s.Honeypot.Events); err != nil {
			return err
		}
	}
	// Headline metrics from whatever has been computed, in stable order.
	metrics := map[string]map[string]float64{}
	if s.passiveDone {
		for _, r := range []Result{
			s.Table3(), s.Figure1(), s.Figure2(), s.Figure3(),
			s.Table1(), s.Intervals(), s.Periodicity(),
		} {
			metrics[r.ID] = r.Metrics
		}
	}
	if s.Inspector != nil {
		t2 := s.Table2()
		metrics[t2.ID] = t2.Metrics
		m := s.Mitigations()
		metrics[m.ID] = m.Metrics
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]map[string]float64, len(metrics))
	for _, k := range keys {
		ordered[k] = metrics[k]
	}
	return write("metrics.json", ordered)
}
