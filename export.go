package iotlan

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Export writes the study's datasets to dir as JSON, mirroring the paper's
// artifact release: active-scan results, vulnerability findings, app
// exfiltration records, the instrumented API-access log, the crowdsourced
// corpus, honeypot events, and every experiment's headline metrics.
// Pipelines that have not run are skipped. Equivalent to ExportContext with
// a background context.
func (s *Study) Export(dir string) error {
	return s.ExportContext(context.Background(), dir)
}

// ExportContext is Export with cancellation: ctx is checked between files
// and between artifact computations; a cancelled context stops the export
// and returns an error naming the step that did not run. Which artifacts
// contribute metrics is driven by the registry — an artifact is included
// exactly when every pipeline in its Needs mask has already run, so Export
// never triggers a pipeline itself.
func (s *Study) ExportContext(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("iotlan: export: %w", err)
	}
	write := func(name string, v interface{}) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("iotlan: export %s: %w", name, err)
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("iotlan: export %s: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("iotlan: export %s: %w", name, err)
		}
		return nil
	}

	if s.Lab != nil {
		type deviceRow struct {
			Name, Vendor, Model, Category, MAC, IP string
		}
		var rows []deviceRow
		for _, d := range s.Lab.Devices {
			rows = append(rows, deviceRow{
				Name: d.Profile.Name, Vendor: d.Profile.Vendor, Model: d.Profile.Model,
				Category: string(d.Profile.Category), MAC: d.MAC().String(), IP: d.IP().String(),
			})
		}
		if err := write("devices.json", rows); err != nil {
			return err
		}
	}
	if s.Scans != nil {
		if err := write("scans.json", s.Scans); err != nil {
			return err
		}
	}
	if s.Findings != nil {
		if err := write("findings.json", s.Findings); err != nil {
			return err
		}
	}
	if s.AppRun != nil {
		if err := write("exfiltration.json", s.AppRun.Records); err != nil {
			return err
		}
		if err := write("api_access.json", s.AppRun.APILog); err != nil {
			return err
		}
	}
	if s.Inspector != nil {
		if err := write("inspector.json", s.Inspector); err != nil {
			return err
		}
	}
	if s.Honeypot != nil {
		if err := write("honeypot.json", s.Honeypot.Events); err != nil {
			return err
		}
	}
	// Headline metrics from every registered artifact whose pipelines have
	// already run, in registry (paper) order.
	metrics := map[string]map[string]float64{}
	for _, a := range Artifacts() {
		if !s.ran(a.Needs) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("iotlan: export artifact %s: %w", a.Name, err)
		}
		r := a.Fn(s)
		metrics[r.ID] = r.Metrics
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make(map[string]map[string]float64, len(metrics))
	for _, k := range keys {
		ordered[k] = metrics[k]
	}
	return write("metrics.json", ordered)
}
