package iotlan

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"iotlan/internal/analysis"
	"iotlan/internal/app"
	"iotlan/internal/classify"
	"iotlan/internal/device"
	"iotlan/internal/engine"
	"iotlan/internal/layers"
	"iotlan/internal/scan"
	"iotlan/internal/sim"
	"iotlan/internal/ssdp"
	"iotlan/internal/tplink"
)

// Result pairs a rendered table/figure with its headline numbers so callers
// (CLI, benches, EXPERIMENTS.md) share one source of truth.
type Result struct {
	// ID is the paper artifact ("Figure 1", "Table 2", …).
	ID string
	// Rendered is the text rendition.
	Rendered string
	// Metrics holds the headline numbers keyed by name.
	Metrics map[string]float64
}

// Figure1 builds the device-to-device communication graph, shared with
// Figure4 via the study's graph cache.
func (s *Study) Figure1() Result {
	s.RunPassive()
	g := s.PassiveGraph()
	return Result{
		ID:       "Figure 1",
		Rendered: analysis.RenderGraph(g),
		Metrics: map[string]float64{
			"talker_fraction":        g.TalkerFraction(),
			"edges":                  float64(len(g.Edges)),
			"intra_cluster_fraction": analysis.IntraClusterFraction(g, s.Lab.Devices),
		},
	}
}

// Figure2 builds the protocol-prevalence chart across all three methods.
func (s *Study) Figure2() Result {
	s.RunPassive()
	apps := s.Apps
	if apps == nil {
		apps = appDatasetFor(s)
	}
	rows := analysis.ProtocolTable(s.PassiveRecords(), s.Lab.Devices, s.Scans, apps)
	metrics := map[string]float64{}
	for _, r := range rows {
		metrics["passive/"+r.Protocol] = r.PassivePct
		if r.ScanPct > 0 {
			metrics["scan/"+r.Protocol] = r.ScanPct
		}
		if r.AppPct > 0 {
			metrics["apps/"+r.Protocol] = r.AppPct
		}
	}
	avg, max, _ := analysis.AvgProtocolsPerDevice(s.PassiveRecords(), s.Lab.Devices)
	metrics["avg_protocols_per_device"] = avg
	metrics["max_protocols_per_device"] = float64(max)
	return Result{ID: "Figure 2", Rendered: analysis.RenderProtocolTable(rows), Metrics: metrics}
}

// Table1 builds the information-exposure matrix.
func (s *Study) Table1() Result {
	s.RunPassive()
	m := analysis.BuildExposure(s.PassiveRecords())
	filled := 0.0
	for _, proto := range analysis.ExposureRows {
		for _, f := range analysis.ExposureFields {
			if m.Exposed(proto, f) {
				filled++
			}
		}
	}
	return Result{
		ID:       "Table 1",
		Rendered: analysis.RenderExposure(m) + "\nEvidence:\n  " + strings.Join(analysis.ExposureEvidence(m), "\n  "),
		Metrics:  map[string]float64{"filled_cells": filled},
	}
}

// Table2 runs the household-fingerprint entropy analysis, reusing the
// study's extract-once identifier cache.
func (s *Study) Table2() Result {
	ids := s.ExtractedIdentifiers()
	return EntropyResult(analysis.EntropyTableWith(s.Inspector, ids))
}

// EntropyResult renders Table 2 rows as the registry's canonical artifact
// Result. Exported so the sharded serving layer, which assembles rows by
// merging per-shard partials, produces bytes identical to the offline
// Study's — one rendering path, two row sources.
func EntropyResult(rows []analysis.EntropyRow) Result {
	metrics := map[string]float64{}
	for _, r := range rows {
		key := strings.ReplaceAll(r.Key(), ", ", "+")
		metrics["households/"+key] = float64(r.Households)
		if len(r.Types) > 0 {
			metrics["unique_pct/"+key] = r.UniquePct
			metrics["entropy_bits/"+key] = r.EntropyBits
		}
	}
	return Result{ID: "Table 2", Rendered: analysis.RenderEntropyTable(rows), Metrics: metrics}
}

// Table3 renders the device inventory.
func (s *Study) Table3() Result {
	cat := device.Catalog()
	perCategory := map[device.Category]map[string]int{}
	for _, p := range cat {
		if perCategory[p.Category] == nil {
			perCategory[p.Category] = map[string]int{}
		}
		perCategory[p.Category][p.Vendor]++
	}
	var cats []device.Category
	for c := range perCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	var sb strings.Builder
	models := map[string]bool{}
	for _, c := range cats {
		var vendors []string
		for v := range perCategory[c] {
			vendors = append(vendors, v)
		}
		sort.Strings(vendors)
		var parts []string
		for _, v := range vendors {
			parts = append(parts, fmt.Sprintf("%s (%d)", v, perCategory[c][v]))
		}
		fmt.Fprintf(&sb, "%-16s %s\n", c, strings.Join(parts, ", "))
	}
	for _, p := range cat {
		models[p.UniqueModelKey()] = true
	}
	return Result{
		ID:       "Table 3",
		Rendered: sb.String(),
		Metrics: map[string]float64{
			"devices":       float64(len(cat)),
			"unique_models": float64(len(models)),
		},
	}
}

// Table4 correlates discoveries with responses per device group.
func (s *Study) Table4() Result {
	s.RunPassive()
	rows := analysis.ResponseTable(s.PassiveRecords(), s.Lab.Devices)
	metrics := map[string]float64{}
	for _, r := range rows {
		metrics["responders/"+string(r.Category)] = r.AvgResponders
		metrics["discovery/"+string(r.Category)] = r.AvgDiscovery
	}
	return Result{ID: "Table 4", Rendered: analysis.RenderResponseTable(rows), Metrics: metrics}
}

// Table5 renders representative identifier-bearing payloads.
func (s *Study) Table5() Result {
	s.RunPassive()
	var sb strings.Builder
	hue := s.Lab.Device("hue-hub")
	amcrest := s.Lab.Device("amcrest-cam")
	plug := s.Lab.Device("tplink-plug")

	if amcrest != nil {
		doc, _ := amcrest.DescriptionDocument()
		fmt.Fprintf(&sb, "--- SSDP device description (Amcrest) ---\n%s\n\n", doc)
	}
	if hue != nil {
		fmt.Fprintf(&sb, "--- mDNS instance (Philips Hue) ---\nPhilips Hue - %s._hue._tcp.local TXT bridgeid=%s\n\n",
			hue.MAC().Tail(3), hue.MAC().Compact())
	}
	fmt.Fprintf(&sb, "--- NetBIOS NBSTAT query ---\n% x\n\n", netbiosSample())
	if plug != nil {
		fmt.Fprintf(&sb, "--- TPLINK-SHP sysinfo (plaintext after XOR-autokey) ---\n%s\n", tplinkSample(plug))
	}
	return Result{ID: "Table 5", Rendered: sb.String(), Metrics: map[string]float64{}}
}

func netbiosSample() []byte {
	// The canonical CKAAAA… wildcard node-status query.
	return []byte("\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00 CKAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA\x00\x00!\x00\x01")
}

func tplinkSample(d *device.Device) string {
	spec := d.Profile.TPLink
	return fmt.Sprintf(`{"system":{"get_sysinfo":{"alias":%q,"dev_name":%q,"mac":%q,"latitude":%v,"longitude":%v}}}`,
		d.Profile.DisplayName, d.Profile.Model, d.MAC(), spec.Latitude, spec.Longitude)
}

// Figure3 cross-validates the two classifiers.
func (s *Study) Figure3() Result {
	s.RunPassive()
	flows, nonFlow := classify.Assemble(s.PassiveIndex().Local())
	c := classify.Compare(flows, nonFlow)
	spec, dpi, disagree, neither := c.Fractions()
	return Result{
		ID:       "Figure 3",
		Rendered: c.Render(),
		Metrics: map[string]float64{
			"units":         float64(c.Total),
			"spec_labeled":  spec,
			"dpi_labeled":   dpi,
			"disagree_frac": disagree,
			"neither_frac":  neither,
		},
	}
}

// Figure4 extracts the per-vendor cluster subgraphs from the shared graph.
func (s *Study) Figure4() Result {
	s.RunPassive()
	g := s.PassiveGraph()
	clusters := analysis.VendorClusters(g, s.Lab.Devices)
	var keys []string
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	metrics := map[string]float64{}
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-28s %d edges\n", k, clusters[k])
		metrics[k] = float64(clusters[k])
	}
	return Result{ID: "Figure 4", Rendered: sb.String(), Metrics: metrics}
}

// OpenPorts summarises the active-scan findings (§4.2).
func (s *Study) OpenPorts() Result {
	s.RunScans()
	uniqueTCP, uniqueUDP := map[uint16]bool{}, map[uint16]bool{}
	responders := 0
	echoPortDevices := 0
	var sb strings.Builder
	var names []string
	for n := range s.Scans {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		r := s.Scans[name]
		if len(r.TCPOpen)+len(r.UDPOpen) > 0 {
			responders++
		}
		hasEchoPorts := false
		for _, p := range r.TCPOpen {
			uniqueTCP[p] = true
			if p == 55442 || p == 55443 || p == 4070 {
				hasEchoPorts = true
			}
		}
		for _, p := range r.UDPOpen {
			uniqueUDP[p] = true
		}
		for _, p := range r.UDPOpenFiltered {
			uniqueUDP[p] = true
		}
		if hasEchoPorts {
			echoPortDevices++
		}
		if len(r.TCPOpen) > 0 {
			fmt.Fprintf(&sb, "%-22s tcp:%v udp:%v\n", name, r.TCPOpen, r.UDPOpen)
		}
	}
	fmt.Fprintf(&sb, "\nnmap label corrections (§3.5): %d ports relabeled\n", len(scan.MislabeledPorts()))
	return Result{
		ID:       "§4.2 open services",
		Rendered: sb.String(),
		Metrics: map[string]float64{
			"unique_tcp_ports":       float64(len(uniqueTCP)),
			"unique_udp_ports":       float64(len(uniqueUDP)),
			"devices_with_open_port": float64(responders),
			"echo_port_devices":      float64(echoPortDevices),
		},
	}
}

// Intervals summarises the discovery cadences (§5.1).
func (s *Study) Intervals() Result {
	s.RunPassive()
	rows := analysis.DiscoveryIntervals(s.PassiveRecords(), s.Lab.Devices)
	metrics := map[string]float64{}
	for _, pair := range [][2]string{
		{"Google", "mDNS"}, {"Google", "SSDP"}, {"Amazon", "mDNS"}, {"Apple", "mDNS"},
	} {
		if med, ok := analysis.VendorMedian(rows, pair[0], pair[1]); ok {
			metrics[pair[0]+"_"+pair[1]+"_median_s"] = med.Seconds()
		}
	}
	return Result{ID: "§5.1 discovery intervals", Rendered: analysis.RenderIntervals(rows), Metrics: metrics}
}

// Periodicity runs the Appendix D.1 analysis.
func (s *Study) Periodicity() Result {
	s.RunPassive()
	sum := analysis.SummarizePeriodicity(s.PassiveRecords())
	return Result{
		ID: "Appendix D.1",
		Rendered: fmt.Sprintf("discovery groups=%d periodic=%d fraction=%.2f groups/device=%.1f\n",
			sum.Groups, sum.Periodic, sum.PeriodicFrac, sum.GroupsPerDevice),
		Metrics: map[string]float64{
			"groups":            float64(sum.Groups),
			"periodic_fraction": sum.PeriodicFrac,
			"groups_per_device": sum.GroupsPerDevice,
		},
	}
}

// Exfiltration summarises the §6.1/§6.2 app findings.
func (s *Study) Exfiltration() Result {
	if s.AppRun == nil {
		s.RunApps()
	}
	appsPer := map[string]map[string]bool{}
	sdkEndpoints := map[string]bool{}
	downlinkApps := map[string]bool{}
	for _, r := range s.AppRun.Records {
		if appsPer[r.DataType] == nil {
			appsPer[r.DataType] = map[string]bool{}
		}
		appsPer[r.DataType][r.App] = true
		if r.SDK != "" {
			sdkEndpoints[r.SDK+"→"+r.Endpoint] = true
		}
		if r.Direction == "downlink" {
			downlinkApps[r.App] = true
		}
	}
	var sb strings.Builder
	var dataTypes []string
	for dt := range appsPer {
		dataTypes = append(dataTypes, dt)
	}
	sort.Strings(dataTypes)
	metrics := map[string]float64{}
	for _, dt := range dataTypes {
		n := len(appsPer[dt])
		fmt.Fprintf(&sb, "%-24s %4d apps\n", dt, n)
		metrics["apps_sending/"+dt] = float64(n)
	}
	var sdks []string
	for se := range sdkEndpoints {
		sdks = append(sdks, se)
	}
	sort.Strings(sdks)
	fmt.Fprintf(&sb, "\nSDK exfiltration channels:\n  %s\n", strings.Join(sdks, "\n  "))
	fmt.Fprintf(&sb, "apps receiving downlink MACs: %d\n", len(downlinkApps))
	metrics["sdk_channels"] = float64(len(sdkEndpoints))
	metrics["downlink_apps"] = float64(len(downlinkApps))
	return Result{ID: "§6.1/§6.2 exfiltration", Rendered: sb.String(), Metrics: metrics}
}

// VulnSummary aggregates the Nessus-like findings (§5.2).
func (s *Study) VulnSummary() Result {
	if s.Findings == nil {
		s.RunVulnScans()
	}
	perID := map[string]int{}
	var highSev int
	for _, fs := range s.Findings {
		for _, f := range fs {
			perID[f.ID]++
			if f.Severity >= 3 {
				highSev++
			}
		}
	}
	var ids []string
	for id := range perID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sb strings.Builder
	metrics := map[string]float64{"high_or_critical": float64(highSev)}
	for _, id := range ids {
		fmt.Fprintf(&sb, "%-28s %3d devices\n", id, perID[id])
		metrics["devices/"+id] = float64(perID[id])
	}
	return Result{ID: "§5.2 vulnerabilities", Rendered: sb.String(), Metrics: metrics}
}

// HoneypotReport summarises honeypot interactions and token propagation.
func (s *Study) HoneypotReport() Result {
	s.RunPassive()
	inter := s.Honeypot.Interactions()
	var sb strings.Builder
	metrics := map[string]float64{}
	var protos []string
	for p := range inter {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		fmt.Fprintf(&sb, "%-8s %5d interactions\n", p, inter[p])
		metrics[p] = float64(inter[p])
	}
	fmt.Fprintf(&sb, "visitors: %d\n", len(s.Honeypot.Visitors()))
	// Token propagation: did the honeytoken reach any app exfil record?
	leaked := 0
	if s.AppRun != nil {
		for _, r := range s.AppRun.Records {
			if s.Honeypot.TokenAppearsIn([]byte(r.Value)) {
				leaked++
			}
		}
	}
	fmt.Fprintf(&sb, "honeytoken exfiltration records: %d\n", leaked)
	metrics["visitors"] = float64(len(s.Honeypot.Visitors()))
	metrics["token_exfil_records"] = float64(leaked)
	return Result{ID: "honeypot", Rendered: sb.String(), Metrics: metrics}
}

// ChaosReport summarises the fault-injection run: the active plan, injected
// faults by kind, and LAN drops by reason. With chaos disabled it reports a
// clean network, so the artifact is always safe to render.
func (s *Study) ChaosReport() Result {
	s.RunPassive()
	reg := s.Lab.Telemetry().Registry
	metrics := map[string]float64{}
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos plan: %s\n", s.Lab.Chaos.Plan)
	fmt.Fprintf(&sb, "\ninjected faults by kind:\n")
	for _, kind := range []string{"loss", "duplicate", "reorder", "corrupt", "partition", "crash", "restart"} {
		v := reg.CounterValue(fmt.Sprintf("chaos_faults{kind=%s}", kind))
		metrics["faults/"+kind] = float64(v)
		fmt.Fprintf(&sb, "  %-10s %d\n", kind, v)
	}
	fmt.Fprintf(&sb, "\nLAN frame drops by reason:\n")
	for _, reason := range []string{"undecodable", "unknown-unicast", "detached", "chaos-loss", "chaos-partition"} {
		v := reg.CounterValue(fmt.Sprintf("lan_frames_dropped{reason=%s}", reason))
		metrics["drops/"+reason] = float64(v)
		fmt.Fprintf(&sb, "  %-16s %d\n", reason, v)
	}
	delivered := reg.CounterValue("lan_frames_delivered")
	dropped := reg.Total("lan_frames_dropped")
	metrics["frames_delivered"] = float64(delivered)
	metrics["frames_dropped"] = float64(dropped)
	lossRate := 0.0
	if delivered+dropped > 0 {
		lossRate = float64(dropped) / float64(delivered+dropped)
	}
	metrics["drop_rate"] = lossRate
	fmt.Fprintf(&sb, "\ndelivered=%d dropped=%d drop_rate=%.4f\n", delivered, dropped, lossRate)
	return Result{ID: "fault injection", Rendered: sb.String(), Metrics: metrics}
}

// infraPorts are transport ports whose traffic is network plumbing or
// periodic discovery, not user activity: DNS, DHCP, NTP, NetBIOS, SSDP,
// mDNS, CoAP. Diurnal excludes them from the interactive histogram.
var infraPorts = map[uint16]bool{
	53: true, 67: true, 68: true, 123: true, 137: true, 138: true,
	1900: true, 5353: true, 5683: true,
}

// platformPorts collects the catalog's platform-internal sync ports — the
// TLS control endpoints and RTP audio-sync ports that wirePeers exercises on
// a fixed cadence around the clock. Like the infraPorts, traffic there is
// periodic by construction, so Diurnal files it under background.
func platformPorts() map[uint16]bool {
	ports := map[uint16]bool{}
	for _, p := range device.Catalog() {
		for _, ts := range p.TLS {
			ports[ts.Port] = true
		}
		if p.RTPPort != 0 {
			ports[p.RTPPort] = true
		}
	}
	return ports
}

// interactiveFrame reports whether a decoded frame is plausibly user-driven:
// a TCP segment or a unicast UDP datagram off the infrastructure and
// platform-sync ports. Beacons, announcements, gateway probes, and platform
// keepalives all fall outside — they are periodic by construction and would
// mask the household's rhythm.
func interactiveFrame(p *layers.Packet, platform map[uint16]bool) bool {
	if p.Err != nil || !p.HasIP4 {
		return false
	}
	var src, dst uint16
	switch {
	case p.HasTCP:
		src, dst = p.TCP.SrcPort, p.TCP.DstPort
	case p.HasUDP:
		if ip := p.IP4.Dst; ip.IsMulticast() || ip.As4()[3] == 255 {
			return false
		}
		src, dst = p.UDP.SrcPort, p.UDP.DstPort
	default:
		return false
	}
	return !infraPorts[src] && !infraPorts[dst] && !platform[src] && !platform[dst]
}

// Diurnal renders the hour-of-day structure of the passive capture: total
// frames and bytes, the interactive subset (TCP plus unicast UDP off the
// infrastructure ports — see interactiveFrame), and the resident schedule's
// own activity histogram when a plan is enabled. The headline metric is
// hour_cv — the coefficient of variation of interactive frames across the
// hours the run actually covered. The platform's periodic beacon chatter is
// uniform around the clock and dominates raw frame counts, so the total-frame
// CV (kept as total_cv) stays flat in any run; the interactive CV is where a
// lived-in household's rhythm shows — near zero for the scripted baseline,
// high for persona-driven runs that concentrate activity in waking hours,
// reproducing the diurnal shape of "Characterizing Smart Home IoT Traffic in
// the Wild".
func (s *Study) Diurnal() Result {
	s.RunPassive()
	var frames, bytes, active [24]float64
	platform := platformPorts()
	// The first virtual hour is the boot transient — every device runs DHCP,
	// fetches descriptions, dials its platform — and would read as a fake
	// midnight activity peak, so it stays out of the interactive histogram.
	bootCut := sim.Epoch.Add(time.Hour)
	for _, rec := range s.PassiveIndex().Records {
		h := rec.Time.Hour()
		frames[h]++
		bytes[h] += float64(len(rec.Data))
		if !rec.Time.Before(bootCut) && interactiveFrame(rec.Decode(), platform) {
			active[h]++
		}
	}
	// Only hours the virtual window reached count toward the statistics: a
	// 45-minute baseline run must not read as "23 silent hours".
	covered := 24
	if d := s.Lab.Sched.Now().Sub(sim.Epoch); d < 24*time.Hour {
		covered = int(d/time.Hour) + 1
	}
	var schedule [24]int
	if s.ResidentPlan.Enabled() {
		schedule = s.Lab.Residents.HourHistogram()
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "hour-of-day traffic structure (residents: %s)\n", s.ResidentPlan)
	fmt.Fprintf(&sb, "%4s %10s %12s %10s %10s\n", "hour", "frames", "bytes", "active", "schedule")
	cvOver := func(hist [24]float64) (cv, peak float64, peakHour int) {
		var sum, sumSq float64
		for h := 0; h < covered; h++ {
			sum += hist[h]
			sumSq += hist[h] * hist[h]
			if hist[h] > peak {
				peak, peakHour = hist[h], h
			}
		}
		mean := sum / float64(covered)
		if mean > 0 {
			cv = math.Sqrt(sumSq/float64(covered)-mean*mean) / mean
		}
		return cv, peak, peakHour
	}
	var activeSum float64
	for h := 0; h < covered; h++ {
		fmt.Fprintf(&sb, "%4d %10.0f %12.0f %10.0f %10d\n", h, frames[h], bytes[h], active[h], schedule[h])
		activeSum += active[h]
	}
	cv, peak, peakHour := cvOver(active)
	totalCV, _, _ := cvOver(frames)
	scheduleEvents := 0
	for _, v := range schedule {
		scheduleEvents += v
	}
	metrics := map[string]float64{
		"hour_cv":         cv,
		"total_cv":        totalCV,
		"hours_covered":   float64(covered),
		"active_frames":   activeSum,
		"peak_hour":       float64(peakHour),
		"peak_to_mean":    safeDiv(peak, activeSum/float64(covered)),
		"schedule_events": float64(scheduleEvents),
	}
	fmt.Fprintf(&sb, "hours=%d cv=%.3f total_cv=%.3f active=%0.f peak_hour=%d peak/mean=%.2f schedule_events=%d\n",
		covered, cv, totalCV, activeSum, peakHour, safeDiv(peak, activeSum/float64(covered)), scheduleEvents)
	return Result{ID: "diurnal", Rendered: sb.String(), Metrics: metrics}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Mitigations runs the §7 what-if study: how far do the paper's proposed
// countermeasures (name minimisation, UUID randomisation, MAC redaction)
// reduce cross-session household re-identification?
func (s *Study) Mitigations() Result {
	ids := s.ExtractedIdentifiers()
	return MitigationResult(analysis.MitigationTableWith(s.Inspector, ids))
}

// MitigationResult renders §7 sweep rows as the canonical artifact Result —
// the shared rendering path for the offline Study and the sharded serving
// layer (see EntropyResult).
func MitigationResult(rows []analysis.ReidentificationResult) Result {
	metrics := map[string]float64{}
	for _, r := range rows {
		name := analysis.MitigationName(r.Mitigation)
		metrics["reid_rate/"+name] = r.ReidRate
		metrics["entropy/"+name] = r.EntropyBits
	}
	return Result{ID: "§7 mitigations", Rendered: analysis.RenderMitigationTable(rows), Metrics: metrics}
}

// appDatasetFor lets Figure2 run without a full app execution.
func appDatasetFor(s *Study) []app.App { return app.Dataset(s.Seed) }

// Everything runs all registered artifacts and returns them in paper order.
// After the (sequential, virtual-time) pipelines finish, the shared
// decode-once packet index and identifier cache are built, then artifacts
// fan out across Workers — results are merged by registry index, never by
// completion order, so output is byte-identical to a sequential run. Each
// artifact's analysis time lands in the profiler as "artifact:<ID>" — the
// pipelines themselves are profiled separately by RunAll's phases.
func (s *Study) Everything() []Result {
	// prepare with the union of every artifact's Needs runs all pipelines,
	// then builds the shared read-only prerequisites (decode-once index,
	// communication graph, identifier extraction) before the fan-out — so
	// workers start with warm caches instead of serialising on the first
	// artifact to hit each sync.Once.
	arts := Artifacts()
	var needs NeedMask
	for _, a := range arts {
		needs |= a.Needs
	}
	s.prepare(needs)
	return engine.Map(s.Workers, len(arts), func(i int) Result {
		start := time.Now()
		r := arts[i].Fn(s)
		s.Profiler.Add("artifact:"+r.ID, time.Since(start), 0, 0)
		return r
	})
}

// sampleSSDPAd is exported for examples needing a canned advertisement.
func sampleSSDPAd(uuid string) ssdp.Advertisement {
	return ssdp.Advertisement{UUID: uuid, Target: ssdp.TargetBasic, Server: "Linux UPnP/1.0"}
}

var _ = sampleSSDPAd
var _ = tplink.Port
