package iotlan

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// NeedMask declares which pipeline stages an artifact consumes. The engine
// uses it to run only the pipelines an artifact requires; Export uses it to
// decide which artifacts a partially-run study can still report.
type NeedMask int

// Pipeline stages an artifact can depend on.
const (
	// NeedPassive requires the passive capture (and the honeypot, which is
	// deployed during the passive phase).
	NeedPassive NeedMask = 1 << iota
	// NeedScans requires the nmap-like port sweep.
	NeedScans
	// NeedVuln requires the Nessus-like vulnerability audit.
	NeedVuln
	// NeedApps requires the instrumented-phone app execution.
	NeedApps
	// NeedInspector requires the crowdsourced IoT Inspector dataset.
	NeedInspector
)

// String renders the mask as "passive+scans".
func (n NeedMask) String() string {
	if n == 0 {
		return "none"
	}
	var parts []string
	for _, p := range []struct {
		bit  NeedMask
		name string
	}{
		{NeedPassive, "passive"}, {NeedScans, "scans"}, {NeedVuln, "vuln"},
		{NeedApps, "apps"}, {NeedInspector, "inspector"},
	} {
		if n&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	return strings.Join(parts, "+")
}

// satisfy runs exactly the pipelines the mask names (each idempotent).
func (s *Study) satisfy(n NeedMask) {
	if n&NeedPassive != 0 {
		s.RunPassive()
	}
	if n&NeedScans != 0 {
		s.RunScans()
	}
	if n&NeedVuln != 0 {
		s.RunVulnScans()
	}
	if n&NeedApps != 0 {
		s.RunApps()
	}
	if n&NeedInspector != 0 {
		s.RunInspector()
	}
}

// prepare runs the pipelines the mask names, then pre-builds the shared
// analysis prerequisites those stages unlock — the decode-once index and
// communication graph for passive consumers, the identifier extraction for
// Inspector consumers. Each is behind a sync.Once, so concurrent artifacts
// that skipped prepare would still be safe; building up front just keeps the
// expensive work out of the fan-out's critical path (and out of per-artifact
// timings). Unshared mode builds nothing here — each artifact pays for its
// own rebuild, which is the baseline cmd/iotbench measures.
func (s *Study) prepare(n NeedMask) {
	s.satisfy(n)
	if !s.sharePrereqs {
		return
	}
	if n&NeedPassive != 0 {
		s.PassiveIndex()
		s.PassiveGraph()
	}
	if n&NeedInspector != 0 {
		s.ExtractedIdentifiers()
	}
}

// ran reports whether every pipeline the mask names has already finished.
func (s *Study) ran(n NeedMask) bool {
	if n&NeedPassive != 0 && !s.passiveDone {
		return false
	}
	if n&NeedScans != 0 && s.Scans == nil {
		return false
	}
	if n&NeedVuln != 0 && s.Findings == nil {
		return false
	}
	if n&NeedApps != 0 && s.AppRun == nil {
		return false
	}
	if n&NeedInspector != 0 && s.Inspector == nil {
		return false
	}
	return true
}

// Artifact is one registered paper artifact: a named, self-describing unit
// the engine, Everything, Export, and cmd/iotrepro all drive from the same
// table.
type Artifact struct {
	// Name is the canonical CLI name ("figure1", "table2", "ports", …).
	Name string
	// PaperRef locates the artifact in the paper ("Figure 1", "§4.2", …).
	PaperRef string
	// Kind classifies the artifact: "figure", "table", "section", "appendix".
	Kind string
	// Needs names the pipeline stages the artifact consumes.
	Needs NeedMask
	// Fn produces the artifact from a study whose Needs have run.
	Fn func(*Study) Result
	// Aliases are accepted alternate CLI spellings.
	Aliases []string
}

// registry lists every artifact in paper order — the order Everything
// returns and always has.
var registry = []Artifact{
	{Name: "table3", PaperRef: "Table 3", Kind: "table", Needs: 0,
		Fn: (*Study).Table3, Aliases: []string{"table 3", "tab3", "inventory"}},
	{Name: "figure1", PaperRef: "Figure 1", Kind: "figure", Needs: NeedPassive,
		Fn: (*Study).Figure1, Aliases: []string{"figure 1", "fig1", "graph"}},
	{Name: "figure2", PaperRef: "Figure 2", Kind: "figure", Needs: NeedPassive,
		Fn: (*Study).Figure2, Aliases: []string{"figure 2", "fig2", "protocols"}},
	{Name: "figure3", PaperRef: "Figure 3", Kind: "figure", Needs: NeedPassive,
		Fn: (*Study).Figure3, Aliases: []string{"figure 3", "fig3", "classifiers"}},
	{Name: "figure4", PaperRef: "Figure 4", Kind: "figure", Needs: NeedPassive,
		Fn: (*Study).Figure4, Aliases: []string{"figure 4", "fig4", "clusters"}},
	{Name: "table1", PaperRef: "Table 1", Kind: "table", Needs: NeedPassive,
		Fn: (*Study).Table1, Aliases: []string{"table 1", "tab1", "exposure"}},
	{Name: "ports", PaperRef: "§4.2 open services", Kind: "section", Needs: NeedScans,
		Fn: (*Study).OpenPorts, Aliases: []string{"openports", "open-ports"}},
	{Name: "intervals", PaperRef: "§5.1 discovery intervals", Kind: "section", Needs: NeedPassive,
		Fn: (*Study).Intervals, Aliases: []string{"discovery-intervals"}},
	{Name: "periodicity", PaperRef: "Appendix D.1", Kind: "appendix", Needs: NeedPassive,
		Fn: (*Study).Periodicity, Aliases: []string{"d1"}},
	{Name: "vulns", PaperRef: "§5.2 vulnerabilities", Kind: "section", Needs: NeedVuln,
		Fn: (*Study).VulnSummary, Aliases: []string{"vuln", "vulnerabilities"}},
	{Name: "table4", PaperRef: "Table 4", Kind: "table", Needs: NeedPassive,
		Fn: (*Study).Table4, Aliases: []string{"table 4", "tab4", "responses"}},
	{Name: "table5", PaperRef: "Table 5", Kind: "table", Needs: NeedPassive,
		Fn: (*Study).Table5, Aliases: []string{"table 5", "tab5", "payloads"}},
	{Name: "exfil", PaperRef: "§6.1/§6.2 exfiltration", Kind: "section", Needs: NeedApps,
		Fn: (*Study).Exfiltration, Aliases: []string{"exfiltration", "apps"}},
	{Name: "table2", PaperRef: "Table 2", Kind: "table", Needs: NeedInspector,
		Fn: (*Study).Table2, Aliases: []string{"table 2", "tab2", "entropy"}},
	{Name: "mitigations", PaperRef: "§7 mitigations", Kind: "section", Needs: NeedInspector,
		Fn: (*Study).Mitigations, Aliases: []string{"mitigation"}},
	{Name: "honeypot", PaperRef: "honeypot", Kind: "section", Needs: NeedPassive,
		Fn: (*Study).HoneypotReport, Aliases: []string{"honey"}},
	{Name: "chaos", PaperRef: "fault injection", Kind: "section", Needs: NeedPassive,
		Fn: (*Study).ChaosReport, Aliases: []string{"faults", "fault-injection"}},
	{Name: "diurnal", PaperRef: "diurnal", Kind: "section", Needs: NeedPassive,
		Fn: (*Study).Diurnal, Aliases: []string{"hours", "hour-of-day"}},
}

// Artifacts returns the registry in paper order. The slice is a copy;
// mutating it does not affect the engine.
func Artifacts() []Artifact {
	out := make([]Artifact, len(registry))
	copy(out, registry)
	return out
}

// ArtifactNames lists canonical names in paper order.
func ArtifactNames() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// ArtifactByName resolves a canonical name, alias, or PaperRef,
// case-insensitively.
func ArtifactByName(name string) (Artifact, bool) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, a := range registry {
		if a.Name == want || strings.ToLower(a.PaperRef) == want {
			return a, true
		}
		for _, al := range a.Aliases {
			if al == want {
				return a, true
			}
		}
	}
	return Artifact{}, false
}

// RunArtifact resolves name in the registry, runs exactly the pipelines the
// artifact needs, and produces it. The artifact's analysis wall time lands
// in the profiler as "artifact:<PaperRef>".
func (s *Study) RunArtifact(name string) (Result, error) {
	a, ok := ArtifactByName(name)
	if !ok {
		names := ArtifactNames()
		sort.Strings(names)
		return Result{}, fmt.Errorf("iotlan: unknown artifact %q (known: %s)", name, strings.Join(names, ", "))
	}
	s.prepare(a.Needs)
	start := time.Now()
	r := a.Fn(s)
	s.Profiler.Add("artifact:"+r.ID, time.Since(start), 0, 0)
	return r, nil
}
