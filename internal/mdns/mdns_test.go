package mdns

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

type env struct {
	sched *sim.Scheduler
	net   *lan.Network
}

func newEnv() *env {
	s := sim.NewScheduler(1)
	return &env{sched: s, net: lan.New(s)}
}

func (e *env) host(last byte) *stack.Host {
	h := stack.NewHost(e.net, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
	h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
	return h
}

func hueResponder(h *stack.Host) *Responder {
	r := &Responder{
		Host:     h,
		Hostname: "Philips-hue.local",
		Services: []Service{{
			Instance: "Philips Hue - 685F61",
			Type:     "_hue._tcp.local",
			Port:     443,
			TXT:      []string{"bridgeid=001788fffe685f61", "modelid=BSB002"},
		}},
	}
	r.Start()
	return r
}

func TestQueryGetsMulticastResponse(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	hueResponder(hue)

	phone := e.host(50)
	var responses []*dnsmsg.Message
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		if m.Response {
			responses = append(responses, m)
		}
	})
	Query(phone, "_hue._tcp.local", false)
	e.sched.RunFor(time.Second)

	if len(responses) != 1 {
		t.Fatalf("responses: %d", len(responses))
	}
	m := responses[0]
	if len(m.Answers) == 0 || m.Answers[0].Type != dnsmsg.TypePTR {
		t.Fatalf("no PTR answer: %+v", m.Answers)
	}
	if m.Answers[0].Target != "Philips Hue - 685F61._hue._tcp.local" {
		t.Fatalf("instance: %q", m.Answers[0].Target)
	}
	// SRV + TXT + A in extra.
	var haveSRV, haveTXT, haveA bool
	for _, rr := range m.Extra {
		switch rr.Type {
		case dnsmsg.TypeSRV:
			haveSRV = rr.Port == 443
		case dnsmsg.TypeTXT:
			haveTXT = len(rr.TXT) == 2 && strings.HasPrefix(rr.TXT[0], "bridgeid=")
		case dnsmsg.TypeA:
			haveA = true
		}
	}
	if !haveSRV || !haveTXT || !haveA {
		t.Fatalf("detail records: srv=%v txt=%v a=%v", haveSRV, haveTXT, haveA)
	}
}

func TestNonMatchingQuerySilent(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	hueResponder(hue)
	phone := e.host(50)
	n := 0
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		if m.Response {
			n++
		}
	})
	Query(phone, "_airplay._tcp.local", false)
	e.sched.RunFor(time.Second)
	if n != 0 {
		t.Fatalf("unexpected responses: %d", n)
	}
}

func TestUnicastQUResponse(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	r := hueResponder(hue)
	r.AnswerUnicast = true

	phone := e.host(50)
	other := e.host(60)
	var phoneGot, otherGot int
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		if m.Response {
			phoneGot++
		}
	})
	Listen(other, func(m *dnsmsg.Message, from netip.Addr) {
		if m.Response {
			otherGot++
		}
	})
	Query(phone, "_hue._tcp.local", true)
	e.sched.RunFor(time.Second)
	if phoneGot != 1 {
		t.Fatalf("phone responses: %d", phoneGot)
	}
	if otherGot != 0 {
		t.Fatalf("third party saw unicast response: %d", otherGot)
	}
}

func TestServiceEnumeration(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	hueResponder(hue)
	phone := e.host(50)
	var types []string
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		for _, a := range m.Answers {
			if m.Response && a.Name == ServiceEnum {
				types = append(types, a.Target)
			}
		}
	})
	Query(phone, ServiceEnum, false)
	e.sched.RunFor(time.Second)
	if len(types) != 1 || types[0] != "_hue._tcp.local" {
		t.Fatalf("enumerated types: %v", types)
	}
}

func TestAnnounceCarriesIdentifiers(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	r := hueResponder(hue)
	phone := e.host(50)
	var seen []string
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		for _, rr := range append(m.Answers, m.Extra...) {
			seen = append(seen, rr.Name, rr.Target)
			seen = append(seen, rr.TXT...)
		}
	})
	r.Announce()
	e.sched.RunFor(time.Second)
	joined := strings.Join(seen, " ")
	if !strings.Contains(joined, "685F61") {
		t.Fatalf("announcement lacks MAC-derived identifier: %q", joined)
	}
	if !strings.Contains(joined, "bridgeid=001788fffe685f61") {
		t.Fatalf("announcement lacks bridge id: %q", joined)
	}
}

func TestHostnameAQuery(t *testing.T) {
	e := newEnv()
	hue := e.host(23)
	hueResponder(hue)
	phone := e.host(50)
	var addr netip.Addr
	Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		for _, a := range m.Answers {
			if a.Type == dnsmsg.TypeA {
				addr = a.Addr
			}
		}
	})
	m := &dnsmsg.Message{Questions: []dnsmsg.Question{
		{Name: "Philips-hue.local", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN},
	}}
	phone.SendUDP(Port, netx.MDNSv4Group, Port, m.Marshal())
	e.sched.RunFor(time.Second)
	if addr != hue.IPv4() {
		t.Fatalf("A answer %v, want %v", addr, hue.IPv4())
	}
}
