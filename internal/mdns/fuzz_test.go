package mdns

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// FuzzDecode is a conformance harness, not a bare parser check: the fuzz
// payload is wrapped in a real UDP/IPv4/Ethernet frame to port 5353 and fed
// through a live Responder's full receive path (host dispatch, group
// filtering, query handling, response generation). Nothing on that path may
// panic or hang, whatever the payload.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 5, '_', 'h', 'u', 'e', 0, 0, 12, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		sched := sim.NewScheduler(1)
		network := lan.New(sched)
		host := stack.NewHost(network, netx.MAC{2, 0, 0, 0, 0, 1}, stack.DefaultPolicy)
		host.SetIPv4(netip.MustParseAddr("192.168.10.5"))
		r := &Responder{
			Host:          host,
			Hostname:      "fuzz-target.local",
			Services:      []Service{{Instance: "Fuzz", Type: "_hue._tcp.local", Port: 80, TXT: []string{"md=fuzz"}}},
			AnswerUnicast: true,
		}
		r.Start()

		src := netip.MustParseAddr("192.168.10.9")
		udp := &layers.UDP{SrcPort: 5353, DstPort: Port}
		udp.SetAddrs(src, netx.MDNSv4Group)
		frame, err := layers.Serialize(
			&layers.Ethernet{
				Src:       netx.MAC{2, 0, 0, 0, 0, 9},
				Dst:       netx.MulticastMAC(netx.MDNSv4Group),
				EtherType: layers.EtherTypeIPv4,
			},
			&layers.IPv4{Protocol: layers.IPProtoUDP, Src: src, Dst: netx.MDNSv4Group},
			udp,
			layers.RawPayload(data))
		if err != nil {
			return // payload too large to frame
		}
		host.HandleFrame(frame)
		sched.RunFor(time.Second) // flush any scheduled response work
	})
}
