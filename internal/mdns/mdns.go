// Package mdns implements the multicast DNS responder and querier (RFC 6762
// subset) that drive the study's richest identifier-exposure channel:
// service instance names carrying MAC addresses, device IDs, serial numbers
// and user-chosen display names (§5.1, Table 5).
package mdns

import (
	"net/netip"
	"strings"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/netx"
	"iotlan/internal/stack"
)

// Port is the mDNS UDP port.
const Port = 5353

// ServiceEnum is the DNS-SD meta-query name.
const ServiceEnum = "_services._dns-sd._udp.local"

// Service is one advertised DNS-SD service instance.
type Service struct {
	// Instance is the service instance label, e.g.
	// "Philips Hue - 685F61". Identifier exposure lives here.
	Instance string
	// Type is the service type, e.g. "_hue._tcp.local".
	Type string
	// Port is the SRV port.
	Port uint16
	// TXT carries key=value metadata (bridgeid=…, model=…).
	TXT []string
}

// InstanceName returns the full instance domain name.
func (s Service) InstanceName() string { return s.Instance + "." + s.Type }

// Responder answers mDNS queries and announces services.
type Responder struct {
	Host *stack.Host
	// Hostname is the device's .local host name (A/AAAA owner).
	Hostname string
	Services []Service
	// AnswerUnicast makes the responder honour QU questions with unicast
	// replies (~20% of lab devices do, §5.1).
	AnswerUnicast bool
	// OnQuery observes every question seen (analysis hook).
	OnQuery func(q dnsmsg.Question, from netip.Addr)

	sock *stack.UDPSock
}

// Start joins the mDNS groups and begins answering.
func (r *Responder) Start() {
	r.Host.JoinGroup(netx.MDNSv4Group)
	if r.Host.Policy.EnableIPv6 {
		r.Host.JoinGroup(netx.MDNSv6Group)
	}
	r.sock = r.Host.OpenUDP(Port, r.onDatagram)
}

// Stop leaves the groups and closes the socket.
func (r *Responder) Stop() {
	r.Host.LeaveGroup(netx.MDNSv4Group)
	r.Host.CloseUDP(Port)
}

func (r *Responder) onDatagram(dg stack.Datagram) {
	m, err := dnsmsg.Unmarshal(dg.Payload)
	if err != nil || m.Response {
		return
	}
	var answers, extra []dnsmsg.Record
	unicastOK := false
	for _, q := range m.Questions {
		if r.OnQuery != nil {
			r.OnQuery(q, dg.Src)
		}
		if q.WantsUnicast() {
			unicastOK = true
		}
		answers, extra = r.answersFor(q, answers, extra)
	}
	if len(answers) == 0 {
		return
	}
	resp := &dnsmsg.Message{Response: true, Authority: true, Answers: answers, Extra: extra}
	if unicastOK && r.AnswerUnicast {
		r.Host.SendUDP(Port, dg.Src, dg.SrcPort, resp.Marshal())
		return
	}
	group := netx.MDNSv4Group
	if dg.Src.Is6() {
		group = netx.MDNSv6Group
	}
	r.Host.SendUDP(Port, group, Port, resp.Marshal())
}

func (r *Responder) answersFor(q dnsmsg.Question, answers, extra []dnsmsg.Record) ([]dnsmsg.Record, []dnsmsg.Record) {
	name := strings.ToLower(q.Name)
	switch {
	case name == strings.ToLower(ServiceEnum):
		for _, s := range r.Services {
			answers = append(answers, dnsmsg.Record{
				Name: ServiceEnum, Type: dnsmsg.TypePTR, Class: dnsmsg.ClassIN,
				TTL: 4500, Target: s.Type,
			})
		}
	case q.Type == dnsmsg.TypeA || q.Type == dnsmsg.TypeAAAA || q.Type == dnsmsg.TypeANY:
		if strings.EqualFold(q.Name, r.Hostname) {
			answers = append(answers, r.addrRecords()...)
		}
		if q.Type != dnsmsg.TypeANY {
			break
		}
		fallthrough
	default:
		for _, s := range r.Services {
			if strings.EqualFold(q.Name, s.Type) {
				answers = append(answers, dnsmsg.Record{
					Name: s.Type, Type: dnsmsg.TypePTR, Class: dnsmsg.ClassIN,
					TTL: 4500, Target: s.InstanceName(),
				})
				extra = append(extra, r.serviceDetail(s)...)
			}
		}
	}
	return answers, extra
}

func (r *Responder) addrRecords() []dnsmsg.Record {
	var recs []dnsmsg.Record
	if r.Host.IPv4().IsValid() {
		recs = append(recs, dnsmsg.Record{
			Name: r.Hostname, Type: dnsmsg.TypeA,
			Class: dnsmsg.ClassIN | dnsmsg.CacheFlushBit, TTL: 120, Addr: r.Host.IPv4(),
		})
	}
	if r.Host.IPv6().IsValid() {
		recs = append(recs, dnsmsg.Record{
			Name: r.Hostname, Type: dnsmsg.TypeAAAA,
			Class: dnsmsg.ClassIN | dnsmsg.CacheFlushBit, TTL: 120, Addr: r.Host.IPv6(),
		})
	}
	return recs
}

func (r *Responder) serviceDetail(s Service) []dnsmsg.Record {
	recs := []dnsmsg.Record{
		{Name: s.InstanceName(), Type: dnsmsg.TypeSRV,
			Class: dnsmsg.ClassIN | dnsmsg.CacheFlushBit, TTL: 120,
			Port: s.Port, Target: r.Hostname},
		{Name: s.InstanceName(), Type: dnsmsg.TypeTXT,
			Class: dnsmsg.ClassIN | dnsmsg.CacheFlushBit, TTL: 4500,
			TXT: s.TXT},
	}
	return append(recs, r.addrRecords()...)
}

// Announce multicasts an unsolicited response advertising every service —
// the periodic advertisement traffic whose intervals §5.1 measures.
func (r *Responder) Announce() {
	if len(r.Services) == 0 && r.Hostname == "" {
		return
	}
	m := &dnsmsg.Message{Response: true, Authority: true}
	for _, s := range r.Services {
		m.Answers = append(m.Answers, dnsmsg.Record{
			Name: s.Type, Type: dnsmsg.TypePTR, Class: dnsmsg.ClassIN,
			TTL: 4500, Target: s.InstanceName(),
		})
		m.Extra = append(m.Extra, r.serviceDetail(s)...)
	}
	if len(m.Answers) == 0 {
		m.Answers = r.addrRecords()
	}
	r.Host.SendUDP(Port, netx.MDNSv4Group, Port, m.Marshal())
	if r.Host.Policy.EnableIPv6 {
		r.Host.SendUDP(Port, netx.MDNSv6Group, Port, m.Marshal())
	}
}

// Query multicasts a one-shot mDNS question from a bound 5353 socket. For
// receiving responses the caller should run its own Responder-less listener
// via Listen.
func Query(h *stack.Host, serviceType string, unicast bool) {
	class := uint16(dnsmsg.ClassIN)
	if unicast {
		class |= dnsmsg.UnicastQueryBit
	}
	m := &dnsmsg.Message{Questions: []dnsmsg.Question{
		{Name: serviceType, Type: dnsmsg.TypePTR, Class: class},
	}}
	h.SendUDP(Port, netx.MDNSv4Group, Port, m.Marshal())
}

// Listen joins the mDNS group and delivers every parsed response to fn —
// the passive-gathering primitive apps and trackers use (§6.1).
func Listen(h *stack.Host, fn func(m *dnsmsg.Message, from netip.Addr)) *stack.UDPSock {
	h.JoinGroup(netx.MDNSv4Group)
	return h.OpenUDP(Port, func(dg stack.Datagram) {
		m, err := dnsmsg.Unmarshal(dg.Payload)
		if err != nil {
			return
		}
		fn(m, dg.Src)
	})
}
