package vnet

import (
	"net"
	"net/netip"

	"iotlan/internal/stack"
)

// backlogMax bounds completed-but-unaccepted connections, like a kernel
// listen backlog. Past it new handshakes are answered with RST.
const backlogMax = 64

type acceptResult struct {
	c   *Conn
	err error
}

type acceptWaiter struct{ ch chan acceptResult }

// Listener accepts stream connections on a host port, satisfying
// net.Listener.
type Listener struct {
	p    *Pump
	h    *stack.Host
	port uint16
	addr net.Addr

	// Pump-owned state below.
	backlog  []*Conn
	awaiters []*acceptWaiter
	closed   bool
	rlimit   int
}

// newListener binds the port. Runs on the pump.
func newListener(p *Pump, h *stack.Host, port uint16, rlimit int) *Listener {
	l := &Listener{
		p: p, h: h, port: port, rlimit: rlimit,
		addr: net.TCPAddrFromAddrPort(netip.AddrPortFrom(h.IPv4(), port)),
	}
	cBacklog := p.sched.Telemetry.Registry.Counter("vnet_backlog_reset")
	h.ListenTCP(port, func(tc *stack.TCPConn) {
		if l.closed {
			tc.Reset()
			return
		}
		remote, rport := tc.Remote()
		c := newConn(p, tc, netip.AddrPortFrom(h.IPv4(), port), netip.AddrPortFrom(remote, rport), l.rlimit)
		if len(l.awaiters) > 0 {
			w := l.awaiters[0]
			l.awaiters = l.awaiters[1:]
			// Two grants: the accept loop resumes, and the connection
			// goroutine it is about to spawn gets its birth token — its
			// compute up to the first Read is clock-frozen too.
			l.p.grant(2)
			w.ch <- acceptResult{c: c}
			return
		}
		if len(l.backlog) >= backlogMax {
			cBacklog.Inc()
			tc.Reset()
			return
		}
		l.backlog = append(l.backlog, c)
	})
	return l
}

// Accept blocks until a handshake completes or the listener closes.
func (l *Listener) Accept() (net.Conn, error) {
	w := &acceptWaiter{ch: make(chan acceptResult, 1)}
	l.p.submit(func() {
		l.p.release()
		switch {
		case len(l.backlog) > 0:
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			l.p.grant(2)
			w.ch <- acceptResult{c: c}
		case l.closed:
			w.ch <- acceptResult{err: &net.OpError{Op: "accept", Net: "tcp", Addr: l.addr, Err: net.ErrClosed}}
		default:
			l.awaiters = append(l.awaiters, w)
		}
	})
	res := <-w.ch
	if res.err != nil {
		return nil, res.err
	}
	return res.c, nil
}

// Close unbinds the port. Pending and future Accepts fail with ErrClosed;
// backlogged connections are reset.
func (l *Listener) Close() error {
	l.p.execTerminal(func() {
		if l.closed {
			return
		}
		l.closed = true
		l.h.CloseTCP(l.port)
		for _, c := range l.backlog {
			if !c.tcGone {
				c.tc.Reset()
				c.tcGone = true
			}
		}
		l.backlog = nil
		for _, w := range l.awaiters {
			w.ch <- acceptResult{err: &net.OpError{Op: "accept", Net: "tcp", Addr: l.addr, Err: net.ErrClosed}}
		}
		l.awaiters = nil
	})
	return nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.addr }
