package vnet_test

// The in-sim iotserve smoke: an unmodified net/http.Server serving the real
// iotserve mux over a vnet.Listener, driven by in-sim HTTP clients on
// another simulated host, with zero real sockets. The acceptance bar is that
// artifacts served in-sim are byte-identical to the offline Study pipeline
// and to the stdlib handler path, whatever the worker count — and that chaos
// impairment on the LAN degrades and recovers the service deterministically.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"iotlan"
	"iotlan/internal/chaos"
	"iotlan/internal/inspector"
	"iotlan/internal/serve"
	"iotlan/internal/vnet"
)

// rawClient is a minimal in-sim HTTP/1.1 client: one persistent keep-alive
// connection, identity framing only (the service sets Content-Length on
// every response). It deliberately avoids net/http's Transport: its
// goroutine pair would add scheduling noise the determinism tests cannot
// afford, and fifty lines of HTTP is the honest cost of a byte-deterministic
// client.
type rawClient struct {
	n    *vnet.Net
	addr string
	c    net.Conn
	br   *bufio.Reader
}

// abandon drops the connection without closing it: a close would send FIN/RST
// into a network that may be partitioned, and the caller is usually holding a
// timeout it is about to retry through. The simulated host carries the dead
// conn state for the rest of the test, like a real kernel carrying a stuck
// flow until timeout.
func (rc *rawClient) abandon() { rc.c, rc.br = nil, nil }

// close closes the connection politely (end of a client's session).
func (rc *rawClient) close() {
	if rc.c != nil {
		rc.c.Close()
		rc.abandon()
	}
}

// roundTrip sends one request and reads the full response. A zero deadline
// means no read deadline. On any transport error the connection is
// abandoned and the error returned — the caller decides whether to retry.
func (rc *rawClient) roundTrip(method, path string, body []byte, deadline time.Time) (int, []byte, error) {
	if rc.c == nil {
		c, err := rc.n.Dial("tcp", rc.addr)
		if err != nil {
			return 0, nil, err
		}
		rc.c, rc.br = c, bufio.NewReader(c)
	}
	if err := rc.c.SetReadDeadline(deadline); err != nil {
		return 0, nil, err
	}
	var req bytes.Buffer
	fmt.Fprintf(&req, "%s %s HTTP/1.1\r\nHost: iotserve\r\nContent-Length: %d\r\n\r\n", method, path, len(body))
	req.Write(body)
	if _, err := rc.c.Write(req.Bytes()); err != nil {
		rc.abandon()
		return 0, nil, err
	}
	status, hdr, err := rc.readHeader()
	if err != nil {
		rc.abandon()
		return 0, nil, err
	}
	clen, err := strconv.Atoi(hdr["content-length"])
	if err != nil {
		rc.abandon()
		return 0, nil, fmt.Errorf("response without Content-Length: %v", err)
	}
	resp := make([]byte, clen)
	if _, err := io.ReadFull(rc.br, resp); err != nil {
		rc.abandon()
		return 0, nil, err
	}
	return status, resp, nil
}

func (rc *rawClient) readHeader() (int, map[string]string, error) {
	line, err := rc.br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
	if len(parts) < 2 {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	hdr := make(map[string]string)
	for {
		line, err := rc.br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			return status, hdr, nil
		}
		if k, v, ok := strings.Cut(line, ":"); ok {
			hdr[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
}

// startInSimServe binds the iotserve mux to host b's port 80 behind an
// unmodified net/http.Server. Teardown runs after the pump has stopped, when
// inline operations are safe again.
func startInSimServe(t *testing.T, f *fix, cfg serve.Config) *serve.Server {
	t.Helper()
	s := serve.New(cfg)
	l, err := f.b.Listen("tcp", ":80")
	if err != nil {
		t.Fatalf("in-sim listen: %v", err)
	}
	hs := serve.NewHTTPServer("", s.Mux())
	go hs.Serve(l)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s
}

// uploadWithRetry pushes one wire body until the service accepts it,
// honoring the error envelope's retry_after_ms and retrying transport
// timeouts on a fresh connection. Returns how many attempts were spent.
func uploadWithRetry(t *testing.T, f *fix, rc *rawClient, path string, body []byte, tally *chaosTally) bool {
	for attempt := 0; attempt < 60; attempt++ {
		deadline := f.pump.Now().Add(2 * time.Second)
		status, resp, err := rc.roundTrip("POST", path, body, deadline)
		switch {
		case err != nil:
			tally.netErrors++
			f.pump.Sleep(250 * time.Millisecond)
		case status == http.StatusOK:
			tally.ok++
			return true
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			tally.shed++
			var env struct {
				RetryAfterMS int64 `json:"retry_after_ms"`
			}
			json.Unmarshal(resp, &env)
			wait := time.Duration(env.RetryAfterMS) * time.Millisecond
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			f.pump.Sleep(wait)
		default:
			t.Errorf("upload %s: unexpected status %d: %s", path, status, resp)
			return false
		}
	}
	t.Errorf("upload %s: retries exhausted", path)
	return false
}

type chaosTally struct {
	ok        int
	shed      int
	netErrors int
}

// runInSimServe drives one full in-sim scenario: `clients` concurrent in-sim
// HTTP clients split the dataset's households between them, upload each over
// keep-alive connections, and a collector fetches the table2 artifact once
// all uploads are in. Returns the artifact bytes.
func runInSimServe(t *testing.T, ds *inspector.Dataset, workers, clients int) []byte {
	t.Helper()
	f := newFix(1)
	startInSimServe(t, f, serve.Config{Workers: workers, QueueCapacity: len(ds.Households)})

	var dones []<-chan struct{}
	for ci := 0; ci < clients; ci++ {
		ci := ci
		dones = append(dones, f.pump.Go(func() {
			rc := &rawClient{n: f.a, addr: "192.168.10.11:80"}
			defer rc.close()
			var tally chaosTally
			for hi, h := range ds.Households {
				if hi%clients != ci {
					continue
				}
				var buf bytes.Buffer
				if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
					t.Errorf("encode: %v", err)
					return
				}
				if !uploadWithRetry(t, f, rc, "/v1/ingest/inspector", buf.Bytes(), &tally) {
					return
				}
			}
		}))
	}
	var artifact []byte
	collector := f.pump.Go(func() {
		for _, d := range dones {
			<-d
		}
		rc := &rawClient{n: f.a, addr: "192.168.10.11:80"}
		defer rc.close()
		status, body, err := rc.roundTrip("GET", "/v1/artifacts/table2", nil, time.Time{})
		if err != nil || status != http.StatusOK {
			t.Errorf("artifact fetch: status %d err %v", status, err)
			return
		}
		artifact = body
		status, body, err = rc.roundTrip("GET", "/v1/fleet", nil, time.Time{})
		if err != nil || status != http.StatusOK {
			t.Errorf("fleet fetch: status %d err %v", status, err)
			return
		}
		var fl struct {
			Households int `json:"households"`
		}
		if err := json.Unmarshal(body, &fl); err != nil || fl.Households != len(ds.Households) {
			t.Errorf("fleet households %d, want %d (err %v)", fl.Households, len(ds.Households), err)
		}
	})
	f.pump.RunFor(5 * time.Minute)
	wait(t, collector, "collector")
	return artifact
}

// TestInSimHTTPServe is the tentpole smoke: the real iotserve mux under an
// unmodified net/http.Server, served entirely in-sim over vnet, yields
// byte-identical artifacts with 1 and 4 workers, equal to the stdlib handler
// path and to the offline Study pipeline.
func TestInSimHTTPServe(t *testing.T) {
	const seed, households = 42, 12
	ds := inspector.Generate(seed, households)

	one := runInSimServe(t, ds, 1, 3)
	four := runInSimServe(t, ds, 4, 3)
	if !bytes.Equal(one, four) {
		t.Fatalf("in-sim table2 differs between workers=1 and workers=4:\n%s\nvs\n%s", one, four)
	}

	// The stdlib handler path (httptest recorder straight into the mux) must
	// serve the same bytes for the same fleet.
	s := serve.New(serve.Config{Workers: 2, QueueCapacity: households})
	defer s.Close()
	mux := s.Mux()
	for _, h := range ds.Households {
		var buf bytes.Buffer
		if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/ingest/inspector", &buf)
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("recorder upload: %d %s", w.Code, w.Body.String())
		}
	}
	req := httptest.NewRequest("GET", "/v1/artifacts/table2", nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("recorder artifact: %d", w.Code)
	}
	if !bytes.Equal(one, w.Body.Bytes()) {
		t.Fatalf("in-sim table2 differs from handler path:\n%s\nvs\n%s", one, w.Body.Bytes())
	}

	// And both must match the offline pipeline.
	study := iotlan.New(0, iotlan.WithHouseholds(households))
	study.Inspector = ds
	offline, err := study.RunArtifact("table2")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Rendered string             `json:"rendered"`
		Metrics  map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(one, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rendered != offline.Rendered {
		t.Fatalf("in-sim table2 differs from offline Study:\n--- served\n%s--- offline\n%s", got.Rendered, offline.Rendered)
	}
	for k, v := range offline.Metrics {
		if got.Metrics[k] != v {
			t.Fatalf("metric %s: served %v, offline %v", k, got.Metrics[k], v)
		}
	}
}

// runChaosScenario is one full impaired serve run: frame loss plus a
// partition window between the client and the service, one sequential
// client retrying through it on virtual-time deadlines. Returns a snapshot
// of every determinism-relevant outcome.
func runChaosScenario(t *testing.T, seed int64, ds *inspector.Dataset) string {
	t.Helper()
	f := newFix(seed)
	plan := chaos.Plan{
		Name: "insim-serve",
		Loss: 0.02,
		Partitions: []chaos.Partition{
			{Start: 2 * time.Second, Duration: 3 * time.Second, Isolate: 0.5},
		},
	}
	eng := chaos.New(f.sched, f.ln, plan)
	s := startInSimServe(t, f, serve.Config{Workers: 2, QueueCapacity: 4, RetryAfter: 500 * time.Millisecond})
	f.a.DialTimeout = 2 * time.Second

	var tally chaosTally
	var artifactSum [sha256.Size]byte
	client := f.pump.Go(func() {
		rc := &rawClient{n: f.a, addr: "192.168.10.11:80"}
		defer rc.close()
		for _, h := range ds.Households {
			var buf bytes.Buffer
			if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			if !uploadWithRetry(t, f, rc, "/v1/ingest/inspector", buf.Bytes(), &tally) {
				return
			}
			// A beat between uploads walks the run across the partition
			// window instead of racing past it before impairment starts.
			f.pump.Sleep(400 * time.Millisecond)
		}
		for attempt := 0; ; attempt++ {
			deadline := f.pump.Now().Add(2 * time.Second)
			status, body, err := rc.roundTrip("GET", "/v1/artifacts/table2", nil, deadline)
			if err != nil {
				tally.netErrors++
				f.pump.Sleep(250 * time.Millisecond)
				if attempt > 60 {
					t.Error("artifact fetch: retries exhausted")
					return
				}
				continue
			}
			if status != http.StatusOK {
				t.Errorf("artifact fetch: status %d: %s", status, body)
				return
			}
			artifactSum = sha256.Sum256(body)
			return
		}
	})
	f.pump.RunFor(2 * time.Minute)
	wait(t, client, "chaos client")

	if resets := f.sched.Telemetry.Registry.Total("vnet_grant_resets"); resets != 0 {
		t.Fatalf("vnet_grant_resets = %d: the virtual clock was driven by the real-time valve", resets)
	}
	reg := s.Registry()
	return fmt.Sprintf("ok=%d shed=%d neterrs=%d faults=%d responses=%d uploads=%d rejected=%d cache=%d artifact=%x",
		tally.ok, tally.shed, tally.netErrors, eng.Faults(),
		reg.Total("serve_responses"), reg.Total("serve_uploads"),
		reg.Total("serve_upload_rejected"), reg.Total("serve_cache"),
		artifactSum)
}

// TestInSimServeChaosDeterministic: chaos impairment degrades the in-sim
// service (timeouts and retries happen) and the service recovers (every
// upload eventually lands); two same-seed runs produce byte-identical
// outcome snapshots — counters, fault counts, and artifact hash — because
// every retry decision rides the virtual clock, not the machine's.
func TestInSimServeChaosDeterministic(t *testing.T) {
	const seed = 7
	ds := inspector.Generate(21, 6)
	first := runChaosScenario(t, seed, ds)
	second := runChaosScenario(t, seed, ds)
	if first != second {
		t.Fatalf("same-seed chaos runs diverged:\n%s\nvs\n%s", first, second)
	}
	var ok, neterrs int
	if _, err := fmt.Sscanf(first, "ok=%d shed=%d neterrs=%d", &ok, new(int), &neterrs); err != nil {
		t.Fatalf("snapshot unparseable: %v (%s)", err, first)
	}
	if ok != len(ds.Households) {
		t.Fatalf("service did not recover: %d/%d uploads landed (%s)", ok, len(ds.Households), first)
	}
	if neterrs == 0 {
		t.Fatalf("impairment never degraded the service — the chaos plan is a no-op (%s)", first)
	}
}
