package vnet

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// timeoutError is the dial-timeout error: a net.Error that is temporary and
// a timeout, matching what a real dialer surfaces for an unanswered SYN.
type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// udpQueueMax bounds buffered inbound datagrams per socket; past it new
// datagrams are dropped, like a full kernel socket buffer.
const udpQueueMax = 256

type dgram struct {
	payload []byte
	from    netip.AddrPort
}

type packetResult struct {
	n    int
	addr net.Addr
	err  error
}

type packetWaiter struct {
	buf []byte
	ch  chan packetResult
}

// PacketConn is a UDP socket over the simulated stack, satisfying
// net.PacketConn with virtual-time deadlines.
type PacketConn struct {
	p    *Pump
	h    *stack.Host
	port uint16
	addr net.Addr

	// Pump-owned state below.
	queue     []dgram
	waiters   []*packetWaiter
	closed    bool
	rdeadline time.Time
	wdeadline time.Time
	rdTimer   *sim.Timer

	cDropped *obs.Counter
}

// newPacketConn binds the port. Runs on the pump.
func newPacketConn(p *Pump, h *stack.Host, port uint16) *PacketConn {
	pc := &PacketConn{
		p: p, h: h, port: port,
		addr:     net.UDPAddrFromAddrPort(netip.AddrPortFrom(h.IPv4(), port)),
		cDropped: p.sched.Telemetry.Registry.Counter("vnet_udp_dropped"),
	}
	h.OpenUDP(port, func(dg stack.Datagram) {
		if pc.closed {
			return
		}
		if len(pc.waiters) > 0 {
			w := pc.waiters[0]
			pc.waiters = pc.waiters[1:]
			n := copy(w.buf, dg.Payload)
			p.grant(1)
			w.ch <- packetResult{n: n, addr: net.UDPAddrFromAddrPort(netip.AddrPortFrom(dg.Src, dg.SrcPort))}
			return
		}
		if len(pc.queue) >= udpQueueMax {
			pc.cDropped.Inc()
			return
		}
		pc.queue = append(pc.queue, dgram{
			payload: append([]byte(nil), dg.Payload...),
			from:    netip.AddrPortFrom(dg.Src, dg.SrcPort),
		})
	})
	return pc
}

// ReadFrom blocks until a datagram, a deadline, or Close. Oversized
// datagrams truncate into b, UDP-style.
func (pc *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	w := &packetWaiter{buf: b, ch: make(chan packetResult, 1)}
	pc.p.submit(func() {
		pc.p.release()
		switch {
		case len(pc.queue) > 0:
			dg := pc.queue[0]
			pc.queue = pc.queue[1:]
			n := copy(w.buf, dg.payload)
			pc.p.grant(1)
			w.ch <- packetResult{n: n, addr: net.UDPAddrFromAddrPort(dg.from)}
		case pc.closed:
			w.ch <- packetResult{err: &net.OpError{Op: "read", Net: "udp", Addr: pc.addr, Err: net.ErrClosed}}
		case !pc.rdeadline.IsZero() && !pc.rdeadline.After(pc.p.sched.Now()):
			if !pc.p.abortDeadline(pc.rdeadline) {
				pc.p.grant(1)
			}
			w.ch <- packetResult{err: &net.OpError{Op: "read", Net: "udp", Addr: pc.addr, Err: os.ErrDeadlineExceeded}}
		default:
			pc.waiters = append(pc.waiters, w)
			pc.armReadTimer()
		}
	})
	res := <-w.ch
	return res.n, res.addr, res.err
}

// WriteTo sends one datagram to addr ("ip:port" via net.Addr).
func (pc *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	dst, err := toAddrPort(addr)
	if err != nil {
		return 0, &net.OpError{Op: "write", Net: "udp", Addr: addr, Err: err}
	}
	var werr error
	pc.p.exec(func() {
		switch {
		case pc.closed:
			werr = &net.OpError{Op: "write", Net: "udp", Addr: addr, Err: net.ErrClosed}
		case !pc.wdeadline.IsZero() && !pc.wdeadline.After(pc.p.sched.Now()):
			werr = &net.OpError{Op: "write", Net: "udp", Addr: addr, Err: os.ErrDeadlineExceeded}
		default:
			pc.h.SendUDP(pc.port, dst.Addr(), dst.Port(), b)
		}
	})
	if werr != nil {
		return 0, werr
	}
	return len(b), nil
}

// Close unbinds the port and fails pending reads.
func (pc *PacketConn) Close() error {
	pc.p.execTerminal(func() {
		if pc.closed {
			return
		}
		pc.closed = true
		pc.h.CloseUDP(pc.port)
		pc.stopReadTimer()
		for _, w := range pc.waiters {
			w.ch <- packetResult{err: &net.OpError{Op: "read", Net: "udp", Addr: pc.addr, Err: net.ErrClosed}}
		}
		pc.waiters = nil
		pc.queue = nil
	})
	return nil
}

// LocalAddr returns the bound address.
func (pc *PacketConn) LocalAddr() net.Addr { return pc.addr }

// SetDeadline sets both deadlines on the virtual clock.
func (pc *PacketConn) SetDeadline(t time.Time) error {
	pc.p.exec(func() {
		pc.rdeadline, pc.wdeadline = t, t
		pc.applyReadDeadline()
	})
	return nil
}

// SetReadDeadline sets the read deadline on the virtual clock.
func (pc *PacketConn) SetReadDeadline(t time.Time) error {
	pc.p.exec(func() {
		pc.rdeadline = t
		pc.applyReadDeadline()
	})
	return nil
}

// SetWriteDeadline sets the write deadline on the virtual clock.
func (pc *PacketConn) SetWriteDeadline(t time.Time) error {
	pc.p.exec(func() { pc.wdeadline = t })
	return nil
}

func (pc *PacketConn) stopReadTimer() {
	if pc.rdTimer != nil {
		pc.rdTimer.Stop()
		pc.rdTimer = nil
	}
}

func (pc *PacketConn) armReadTimer() {
	pc.stopReadTimer()
	if pc.rdeadline.IsZero() || len(pc.waiters) == 0 {
		return
	}
	dl := pc.rdeadline
	pc.rdTimer = pc.p.sched.AtTagged("vnet", dl, func() {
		if pc.rdeadline != dl {
			return
		}
		pc.expireReaders()
	})
}

func (pc *PacketConn) applyReadDeadline() {
	if !pc.rdeadline.IsZero() && !pc.rdeadline.After(pc.p.sched.Now()) {
		pc.expireReaders()
		return
	}
	pc.armReadTimer()
}

// expireReaders fails pending readers with a timeout, granting compute only
// for genuine in-sim deadlines (see Pump.abortDeadline).
func (pc *PacketConn) expireReaders() {
	g := 1
	if pc.p.abortDeadline(pc.rdeadline) {
		g = 0
	}
	for _, w := range pc.waiters {
		pc.p.grant(g)
		w.ch <- packetResult{err: &net.OpError{Op: "read", Net: "udp", Addr: pc.addr, Err: os.ErrDeadlineExceeded}}
	}
	pc.waiters = nil
	pc.stopReadTimer()
}

// toAddrPort converts the stdlib addr types WriteTo receives. The Unmap
// matters: net.IPv4 yields 4-in-6 mapped addresses, and the stack compares
// netip.Addr values exactly.
func toAddrPort(addr net.Addr) (netip.AddrPort, error) {
	switch a := addr.(type) {
	case *net.UDPAddr:
		ap := a.AddrPort()
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
	case *net.TCPAddr:
		ap := a.AddrPort()
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
	default:
		ip, port, err := netx.SplitAddrPort(addr.String())
		if err != nil {
			return netip.AddrPort{}, err
		}
		if !ip.IsValid() {
			return netip.AddrPort{}, fmt.Errorf("address %q: missing host", addr.String())
		}
		return netip.AddrPortFrom(ip, port), nil
	}
}
