package vnet_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
	"iotlan/internal/vnet"
)

// Interface conformance, checked at compile time.
var (
	_ net.Conn       = (*vnet.Conn)(nil)
	_ net.Listener   = (*vnet.Listener)(nil)
	_ net.PacketConn = (*vnet.PacketConn)(nil)
)

type fix struct {
	sched *sim.Scheduler
	ln    *lan.Network
	pump  *vnet.Pump
	a, b  *vnet.Net // 192.168.10.10 and 192.168.10.11
	start time.Time
}

func newFix(seed int64) *fix {
	s := sim.NewScheduler(seed)
	n := lan.New(s)
	mk := func(last byte) *stack.Host {
		h := stack.NewHost(n, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
	p := vnet.NewPump(s)
	return &fix{sched: s, ln: n, pump: p, a: vnet.New(p, mk(10)), b: vnet.New(p, mk(11)), start: s.Now()}
}

// wait fails the test if an in-sim goroutine did not finish. Goroutines finish
// in real time after RunFor returns, hence the real-time grace.
func wait(t *testing.T, done <-chan struct{}, name string) {
	t.Helper()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("goroutine %s did not finish", name)
	}
}

func TestPingPong(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	if got := l.Addr().String(); got != "192.168.10.11:7000" {
		t.Fatalf("listener addr %q", got)
	}
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		for i := 0; i < 3; i++ {
			n, err := c.Read(buf)
			if err != nil {
				t.Errorf("server read %d: %v", i, err)
				return
			}
			if _, err := c.Write(bytes.ToUpper(buf[:n])); err != nil {
				t.Errorf("server write %d: %v", i, err)
				return
			}
		}
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7000")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		if got := c.RemoteAddr().String(); got != "192.168.10.11:7000" {
			t.Errorf("remote addr %q", got)
		}
		if got := c.LocalAddr().(*net.TCPAddr); !got.IP.Equal(net.IPv4(192, 168, 10, 10)) || got.Port == 0 {
			t.Errorf("local addr %v", got)
		}
		buf := make([]byte, 64)
		for _, msg := range []string{"ping", "pong", "done"} {
			if _, err := c.Write([]byte(msg)); err != nil {
				t.Errorf("client write %q: %v", msg, err)
				return
			}
			n, err := c.Read(buf)
			if err != nil {
				t.Errorf("client read after %q: %v", msg, err)
				return
			}
			want := string(bytes.ToUpper([]byte(msg)))
			if string(buf[:n]) != want {
				t.Errorf("echo = %q, want %q", buf[:n], want)
			}
		}
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestHalfClose exercises the full CloseWrite handshake: the client shuts its
// write side, the server drains to EOF, responds on the still-open direction,
// and the client reads the complete response then EOF.
func TestHalfClose(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7001")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	request := bytes.Repeat([]byte("req?"), 1000) // several segments
	response := bytes.Repeat([]byte("RSP!"), 2000)
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		var got bytes.Buffer
		buf := make([]byte, 512)
		for {
			n, err := c.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Errorf("server read ended with %v, want EOF", err)
					return
				}
				break
			}
		}
		if !bytes.Equal(got.Bytes(), request) {
			t.Errorf("server got %d bytes, want %d", got.Len(), len(request))
			return
		}
		if _, err := c.Write(response); err != nil {
			t.Errorf("server write after client FIN: %v", err)
		}
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7001")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		if _, err := c.Write(request); err != nil {
			t.Errorf("client write: %v", err)
			return
		}
		cw, ok := c.(interface{ CloseWrite() error })
		if !ok {
			t.Error("conn does not support CloseWrite")
			return
		}
		if err := cw.CloseWrite(); err != nil {
			t.Errorf("CloseWrite: %v", err)
			return
		}
		if _, err := c.Write([]byte("x")); err == nil {
			t.Error("write after CloseWrite succeeded")
		}
		var got bytes.Buffer
		buf := make([]byte, 512)
		for {
			n, err := c.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Errorf("client read ended with %v, want EOF", err)
					return
				}
				break
			}
		}
		if !bytes.Equal(got.Bytes(), response) {
			t.Errorf("client got %d bytes, want %d", got.Len(), len(response))
		}
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestRacyWritersAndReaders hammers one connection from several goroutines at
// once — concurrent writers on the client, concurrent drain-to-EOF readers on
// the response path — and checks only content invariants. Run under -race.
func TestRacyWritersAndReaders(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7002")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	const writers, msgsEach, msgLen = 3, 50, 32
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		counts := map[byte]int{}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			for _, ch := range buf[:n] {
				counts[ch]++
			}
			if err != nil {
				break
			}
		}
		for i := 0; i < writers; i++ {
			ch := byte('a' + i)
			if counts[ch] != msgsEach*msgLen {
				t.Errorf("byte %q count %d, want %d", ch, counts[ch], msgsEach*msgLen)
			}
		}
		if _, err := c.Write(bytes.Repeat([]byte("ok"), 500)); err != nil {
			t.Errorf("server respond: %v", err)
		}
		c.Close()
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7002")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		var wg sync.WaitGroup
		for i := 0; i < writers; i++ {
			wg.Add(1)
			msg := bytes.Repeat([]byte{byte('a' + i)}, msgLen)
			go func() {
				defer wg.Done()
				for j := 0; j < msgsEach; j++ {
					if _, err := c.Write(msg); err != nil {
						t.Errorf("concurrent write: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if err := c.(*vnet.Conn).CloseWrite(); err != nil {
			t.Errorf("CloseWrite: %v", err)
			return
		}
		// Two goroutines race to drain the response; together they must see
		// every byte exactly once.
		var mu sync.Mutex
		total := 0
		var rg sync.WaitGroup
		for i := 0; i < 2; i++ {
			rg.Add(1)
			go func() {
				defer rg.Done()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					mu.Lock()
					total += n
					mu.Unlock()
					if err != nil {
						return
					}
				}
			}()
		}
		rg.Wait()
		if total != 1000 {
			t.Errorf("racy readers drained %d bytes, want 1000", total)
		}
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestReadDeadline covers expiry on the virtual clock and extension after a
// timeout: the timed-out conn stays usable.
func TestReadDeadline(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7003")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		f.pump.Sleep(2 * time.Second) // past the client's first deadline
		if _, err := c.Write([]byte("late")); err != nil {
			t.Errorf("server write: %v", err)
		}
		// Hold the conn open until the client is done reading.
		buf := make([]byte, 16)
		c.Read(buf)
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7003")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		if err := c.SetReadDeadline(f.start.Add(500 * time.Millisecond)); err != nil {
			t.Errorf("set deadline: %v", err)
			return
		}
		buf := make([]byte, 16)
		_, err = c.Read(buf)
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() || !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("read past deadline = %v, want timeout", err)
			return
		}
		// A second read with the deadline still in the past fails without
		// blocking.
		if _, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("second expired read = %v", err)
			return
		}
		// Extend and the conn works again.
		if err := c.SetReadDeadline(f.start.Add(time.Minute)); err != nil {
			t.Errorf("extend deadline: %v", err)
			return
		}
		n, err := c.Read(buf)
		if err != nil || string(buf[:n]) != "late" {
			t.Errorf("read after extension = %q, %v", buf[:n], err)
		}
	})
	f.pump.RunFor(time.Minute)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestDeadlineExtendedWhileBlocked moves the deadline from another goroutine
// while a Read is parked on the old one; the read must survive to see data
// that arrives after the original deadline.
func TestDeadlineExtendedWhileBlocked(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7004")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		f.pump.Sleep(3 * time.Second) // after old deadline (1s), before new (10s)
		if _, err := c.Write([]byte("made it")); err != nil {
			t.Errorf("server write: %v", err)
		}
		buf := make([]byte, 16)
		c.Read(buf)
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7004")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		c.SetReadDeadline(f.start.Add(time.Second))
		ext := f.pump.Go(func() {
			f.pump.Sleep(500 * time.Millisecond)
			c.SetReadDeadline(f.start.Add(10 * time.Second))
		})
		buf := make([]byte, 16)
		n, err := c.Read(buf)
		if err != nil || string(buf[:n]) != "made it" {
			t.Errorf("read = %q, %v; want \"made it\"", buf[:n], err)
		}
		<-ext
	})
	f.pump.RunFor(time.Minute)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestCloseUnblocksRead closes a conn out from under a parked reader.
func TestCloseUnblocksRead(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7005")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := f.pump.Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 16)
		c.Read(buf) // parks until the client tears down
		c.Close()
	})
	cli := f.pump.Go(func() {
		c, err := f.a.Dial("tcp", "192.168.10.11:7005")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		reader := f.pump.Go(func() {
			buf := make([]byte, 16)
			_, err := c.Read(buf)
			if !errors.Is(err, net.ErrClosed) {
				t.Errorf("read unblocked with %v, want net.ErrClosed", err)
			}
		})
		f.pump.Sleep(time.Second)
		c.Close()
		<-reader
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, srv, "server")
	wait(t, cli, "client")
}

// TestCloseUnblocksAccept closes a listener out from under a parked Accept.
func TestCloseUnblocksAccept(t *testing.T) {
	f := newFix(1)
	l, err := f.b.Listen("tcp", ":7006")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	acc := f.pump.Go(func() {
		_, err := l.Accept()
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("accept unblocked with %v, want net.ErrClosed", err)
		}
	})
	closer := f.pump.Go(func() {
		f.pump.Sleep(time.Second)
		l.Close()
	})
	f.pump.RunFor(10 * time.Second)
	wait(t, acc, "accepter")
	wait(t, closer, "closer")
}

func TestDialRefused(t *testing.T) {
	f := newFix(1)
	cli := f.pump.Go(func() {
		_, err := f.a.Dial("tcp", "192.168.10.11:7777")
		if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Errorf("dial to closed port = %v, want ECONNREFUSED", err)
		}
	})
	f.pump.RunFor(10 * time.Second)
	wait(t, cli, "client")
}

func TestDialTimeoutAbsentHost(t *testing.T) {
	f := newFix(1)
	f.a.DialTimeout = 2 * time.Second
	cli := f.pump.Go(func() {
		_, err := f.a.Dial("tcp", "192.168.10.99:80")
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("dial to absent host = %v, want timeout", err)
		}
	})
	f.pump.RunFor(10 * time.Second)
	wait(t, cli, "client")
	if f.sched.Now().Sub(f.start) < 2*time.Second {
		t.Fatalf("clock only advanced %v", f.sched.Now().Sub(f.start))
	}
}

func TestDialContextCancel(t *testing.T) {
	f := newFix(1)
	ctx, cancel := context.WithCancel(context.Background())
	cli := f.pump.Go(func() {
		_, err := f.a.DialContext(ctx, "tcp", "192.168.10.99:80")
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled dial = %v, want context.Canceled", err)
		}
	})
	cancelAfter := f.pump.Go(func() {
		f.pump.Sleep(time.Second)
		cancel()
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, cli, "client")
	wait(t, cancelAfter, "canceller")
}

// TestAcceptReadTruncation is the accept-path truncation property test: the
// received stream must reassemble byte-identically no matter how small the
// server's read buffer is, across awkward buffer sizes straddling the MSS.
func TestAcceptReadTruncation(t *testing.T) {
	payload := make([]byte, 8192)
	rng := rand.New(rand.NewSource(42))
	rng.Read(payload)
	chunks := []int{1, 3, 10, 100, 1459, 1460, 1461, 4096}
	for _, k := range []int{1, 2, 7, 64, 1459, 1460, 1461, 8192} {
		f := newFix(1)
		l, err := f.b.Listen("tcp", ":7010")
		if err != nil {
			t.Fatalf("k=%d listen: %v", k, err)
		}
		var got []byte
		srv := f.pump.Go(func() {
			c, err := l.Accept()
			if err != nil {
				t.Errorf("k=%d accept: %v", k, err)
				return
			}
			defer c.Close()
			buf := make([]byte, k)
			for {
				n, err := c.Read(buf)
				if n > k {
					t.Errorf("k=%d read returned %d > buffer", k, n)
				}
				got = append(got, buf[:n]...)
				if err != nil {
					if !errors.Is(err, io.EOF) {
						t.Errorf("k=%d read ended with %v", k, err)
					}
					return
				}
			}
		})
		cli := f.pump.Go(func() {
			c, err := f.a.Dial("tcp", "192.168.10.11:7010")
			if err != nil {
				t.Errorf("k=%d dial: %v", k, err)
				return
			}
			for off, i := 0, 0; off < len(payload); i++ {
				end := off + chunks[i%len(chunks)]
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := c.Write(payload[off:end]); err != nil {
					t.Errorf("k=%d write: %v", k, err)
					return
				}
				off = end
			}
			c.Close()
		})
		f.pump.RunFor(time.Minute)
		wait(t, srv, "server")
		wait(t, cli, "client")
		if !bytes.Equal(got, payload) {
			t.Fatalf("k=%d reassembled %d bytes, payload %d; mismatch", k, len(got), len(payload))
		}
	}
}

func TestPacketConnExchange(t *testing.T) {
	f := newFix(1)
	pa, err := f.a.ListenPacket("udp", ":5000")
	if err != nil {
		t.Fatalf("listen a: %v", err)
	}
	pb, err := f.b.ListenPacket("udp", ":5001")
	if err != nil {
		t.Fatalf("listen b: %v", err)
	}
	bSide := f.pump.Go(func() {
		buf := make([]byte, 64)
		n, from, err := pb.ReadFrom(buf)
		if err != nil {
			t.Errorf("b read: %v", err)
			return
		}
		if string(buf[:n]) != "hello" {
			t.Errorf("b got %q", buf[:n])
		}
		if from.String() != "192.168.10.10:5000" {
			t.Errorf("b saw source %v", from)
		}
		if _, err := pb.WriteTo([]byte("a long reply that will truncate"), from); err != nil {
			t.Errorf("b reply: %v", err)
		}
	})
	aSide := f.pump.Go(func() {
		dst := &net.UDPAddr{IP: net.IPv4(192, 168, 10, 11), Port: 5001}
		if _, err := pa.WriteTo([]byte("hello"), dst); err != nil {
			t.Errorf("a write: %v", err)
			return
		}
		small := make([]byte, 6)
		n, from, err := pa.ReadFrom(small)
		if err != nil {
			t.Errorf("a read: %v", err)
			return
		}
		if n != 6 || string(small) != "a long" {
			t.Errorf("truncated read = %q (%d bytes)", small[:n], n)
		}
		if from.String() != "192.168.10.11:5001" {
			t.Errorf("a saw source %v", from)
		}
	})
	f.pump.RunFor(10 * time.Second)
	wait(t, aSide, "a")
	wait(t, bSide, "b")
	pa.Close()
	pb.Close()
}

func TestPacketConnDeadlineAndClose(t *testing.T) {
	f := newFix(1)
	pa, err := f.a.ListenPacket("udp", ":5002")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	g := f.pump.Go(func() {
		pa.SetReadDeadline(f.start.Add(time.Second))
		buf := make([]byte, 16)
		_, _, err := pa.ReadFrom(buf)
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("read past deadline = %v", err)
			return
		}
		pa.SetReadDeadline(time.Time{}) // clear
		reader := f.pump.Go(func() {
			_, _, err := pa.ReadFrom(buf)
			if !errors.Is(err, net.ErrClosed) {
				t.Errorf("read unblocked with %v, want net.ErrClosed", err)
			}
		})
		f.pump.Sleep(time.Second)
		pa.Close()
		<-reader
	})
	f.pump.RunFor(30 * time.Second)
	wait(t, g, "udp")
}

// TestListenErrors covers address validation and port collisions.
func TestListenErrors(t *testing.T) {
	f := newFix(1)
	if _, err := f.a.Listen("tcp", ":6000"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	if _, err := f.a.Listen("tcp", ":6000"); !errors.Is(err, syscall.EADDRINUSE) {
		t.Fatalf("duplicate listen = %v, want EADDRINUSE", err)
	}
	if _, err := f.a.Listen("tcp", "example.com:80"); err == nil {
		t.Fatal("hostname listen succeeded")
	}
	if _, err := f.a.Listen("unix", "/tmp/x"); err == nil {
		t.Fatal("unix listen succeeded")
	}
	l0, err := f.a.Listen("tcp", ":0")
	if err != nil {
		t.Fatalf("listen :0: %v", err)
	}
	if p := l0.Addr().(*net.TCPAddr).Port; p < 20000 {
		t.Fatalf("ephemeral port %d", p)
	}
}
