package vnet

import (
	"io"
	"net"
	"net/netip"
	"os"
	"syscall"
	"time"

	"iotlan/internal/obs"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// mss is the payload carried per simulated TCP segment. Writes larger than
// one segment are chunked on the pump, each chunk a genuine frame on the LAN.
const mss = 1460

// defaultReadBuffer bounds a connection's receive buffer. A peer that keeps
// streaming at a handler that never reads eventually overflows it and the
// connection is aborted with RST, like a kernel running out of window
// patience — the simulated stack has no flow control to push back with.
const defaultReadBuffer = 1 << 20

// ioResult is what a blocked Read/Write wakes up to.
type ioResult struct {
	n   int
	err error
}

// waiter parks one goroutine's pending I/O. buf is the read destination —
// the pump copies into it before completing, so the data handoff and the
// wake are a single rendezvous.
type waiter struct {
	buf []byte
	ch  chan ioResult
}

func newWaiter(buf []byte) *waiter { return &waiter{buf: buf, ch: make(chan ioResult, 1)} }

// finish completes the waiter on the pump goroutine, handing out grants
// compute tokens (1 for completions whose caller keeps running, 0 for
// terminal ones — see the package comment).
func (w *waiter) finish(p *Pump, n int, err error, grants int) {
	p.grant(grants)
	w.ch <- ioResult{n: n, err: err}
}

// Conn is a stream connection over the simulated stack, satisfying net.Conn
// with virtual-time deadlines. All mutable state is owned by the pump
// goroutine; methods are safe for concurrent use like stdlib conns.
type Conn struct {
	p  *Pump
	tc *stack.TCPConn

	laddr, raddr net.Addr

	// Pump-owned state below.
	rbuf      []byte
	rlimit    int
	reof      bool  // peer FIN seen (or orderly teardown done)
	rerr      error // terminal error: RST, receive overflow
	closed    bool  // local Close ran
	wclosed   bool  // local write side shut (CloseWrite or Close)
	tcGone    bool  // stack conn already torn down; tc calls would misfire
	rwaiters  []*waiter
	rdeadline time.Time
	wdeadline time.Time
	rdTimer   *sim.Timer

	cOverflow *obs.Counter
}

// newConn wraps an established (or connecting) stack conn. Runs on the pump.
func newConn(p *Pump, tc *stack.TCPConn, laddr, raddr netip.AddrPort, rlimit int) *Conn {
	if rlimit <= 0 {
		rlimit = defaultReadBuffer
	}
	c := &Conn{
		p:      p,
		tc:     tc,
		laddr:  net.TCPAddrFromAddrPort(laddr),
		raddr:  net.TCPAddrFromAddrPort(raddr),
		rlimit: rlimit,

		cOverflow: p.sched.Telemetry.Registry.Counter("vnet_rbuf_overflow"),
	}
	tc.HalfClose = true
	tc.OnData = func(_ *stack.TCPConn, data []byte) { c.onData(data) }
	tc.OnFin = func(*stack.TCPConn) { c.onFin() }
	tc.OnClose = func(*stack.TCPConn) { c.onClose() }
	return c
}

// --- pump-side event handlers ---------------------------------------------

func (c *Conn) onData(data []byte) {
	if c.closed {
		return // arrived after local close: the stack teardown races our FIN
	}
	c.rbuf = append(c.rbuf, data...)
	c.deliver()
	if len(c.rbuf) > c.rlimit {
		c.cOverflow.Inc()
		c.abort()
	}
}

func (c *Conn) onFin() {
	c.reof = true
	c.deliver()
}

func (c *Conn) onClose() {
	c.tcGone = true
	c.wclosed = true
	if c.tc.ClosedByRST && !c.closed {
		c.rerr = &net.OpError{Op: "read", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: syscall.ECONNRESET}
	} else {
		c.reof = true
	}
	c.deliver()
}

// abort tears the connection down with RST (receive overflow).
func (c *Conn) abort() {
	if !c.tcGone {
		c.tc.Reset()
		c.tcGone = true
	}
	c.wclosed = true
	c.rbuf = nil
	c.rerr = &net.OpError{Op: "read", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: syscall.ECONNRESET}
	c.deliver()
}

// deliver satisfies pending readers in FIFO order from the buffer, then
// flushes the rest if the stream hit its end state.
func (c *Conn) deliver() {
	for len(c.rwaiters) > 0 && len(c.rbuf) > 0 {
		w := c.popWaiter()
		n := copy(w.buf, c.rbuf)
		c.rbuf = c.rbuf[n:]
		w.finish(c.p, n, nil, 1)
	}
	if len(c.rbuf) == 0 {
		c.rbuf = nil
	}
	if c.rerr != nil || c.reof || c.closed {
		for len(c.rwaiters) > 0 {
			w := c.popWaiter()
			w.finish(c.p, 0, c.readEndError(), 0)
		}
		c.stopReadTimer()
	}
}

func (c *Conn) popWaiter() *waiter {
	w := c.rwaiters[0]
	c.rwaiters = c.rwaiters[1:]
	if len(c.rwaiters) == 0 {
		c.rwaiters = nil
	}
	return w
}

// readEndError picks the terminal error a drained reader sees.
func (c *Conn) readEndError() error {
	switch {
	case c.rerr != nil:
		return c.rerr
	case c.closed:
		return &net.OpError{Op: "read", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: net.ErrClosed}
	default:
		return io.EOF
	}
}

func (c *Conn) timeoutErr(op string) error {
	return &net.OpError{Op: op, Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: os.ErrDeadlineExceeded}
}

// --- deadline machinery ----------------------------------------------------

func (c *Conn) stopReadTimer() {
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
}

// armReadTimer (pump-side) schedules expiry for pending readers. Cheap to
// call repeatedly: it re-arms only when the deadline moved.
func (c *Conn) armReadTimer() {
	c.stopReadTimer()
	if c.rdeadline.IsZero() || len(c.rwaiters) == 0 {
		return
	}
	dl := c.rdeadline
	c.rdTimer = c.p.sched.AtTagged("vnet", dl, func() {
		if c.rdeadline != dl {
			return // moved since; the re-arm scheduled a fresh timer
		}
		c.expireReaders()
	})
}

// expireReaders fails every pending reader with a timeout. Readers timed out
// by a genuine in-sim deadline keep their compute grant — deadline-driven
// code retries or falls back, it does not die — but readers unblocked by the
// pre-epoch abort idiom are unwinding and get none.
func (c *Conn) expireReaders() {
	g := 1
	if c.p.abortDeadline(c.rdeadline) {
		g = 0
	}
	for len(c.rwaiters) > 0 {
		w := c.popWaiter()
		w.finish(c.p, 0, c.timeoutErr("read"), g)
	}
	c.stopReadTimer()
}

// --- net.Conn --------------------------------------------------------------

// Read blocks until data, EOF, a deadline, or Close.
func (c *Conn) Read(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	w := newWaiter(b)
	c.p.submit(func() {
		c.p.release()
		switch {
		case len(c.rbuf) > 0:
			n := copy(w.buf, c.rbuf)
			c.rbuf = c.rbuf[n:]
			if len(c.rbuf) == 0 {
				c.rbuf = nil
			}
			w.finish(c.p, n, nil, 1)
		case c.rerr != nil, c.reof, c.closed:
			w.finish(c.p, 0, c.readEndError(), 0)
		case !c.rdeadline.IsZero() && !c.rdeadline.After(c.p.sched.Now()):
			g := 1
			if c.p.abortDeadline(c.rdeadline) {
				g = 0
			}
			w.finish(c.p, 0, c.timeoutErr("read"), g)
		default:
			c.rwaiters = append(c.rwaiters, w)
			c.armReadTimer()
		}
	})
	res := <-w.ch
	return res.n, res.err
}

// Write sends b as MSS-sized segments. Writes never block on the peer (the
// simulated stack has no send window); they fail if the write side is shut,
// the conn was reset, or the write deadline already passed.
func (c *Conn) Write(b []byte) (int, error) {
	w := newWaiter(nil)
	c.p.submit(func() {
		c.p.release()
		switch {
		case c.closed || c.wclosed:
			w.finish(c.p, 0, &net.OpError{Op: "write", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: net.ErrClosed}, 1)
		case c.rerr != nil:
			w.finish(c.p, 0, &net.OpError{Op: "write", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: syscall.ECONNRESET}, 1)
		case !c.wdeadline.IsZero() && !c.wdeadline.After(c.p.sched.Now()):
			g := 1
			if c.p.abortDeadline(c.wdeadline) {
				g = 0
			}
			w.finish(c.p, 0, c.timeoutErr("write"), g)
		default:
			for off := 0; off < len(b); off += mss {
				end := off + mss
				if end > len(b) {
					end = len(b)
				}
				c.tc.Send(b[off:end])
			}
			w.finish(c.p, len(b), nil, 1)
		}
	})
	res := <-w.ch
	return res.n, res.err
}

// Close shuts both directions. Unread buffered data turns the orderly FIN
// into an RST, mirroring kernel behaviour when an application closes with
// data pending — the peer learns its bytes were lost.
func (c *Conn) Close() error {
	c.p.execTerminal(func() {
		if c.closed {
			return
		}
		c.closed = true
		c.wclosed = true
		if !c.tcGone {
			if len(c.rbuf) > 0 {
				c.tc.Reset()
			} else {
				c.tc.Close()
			}
			c.tcGone = true
		}
		c.rbuf = nil
		c.deliver() // flush pending readers with ErrClosed
	})
	return nil
}

// CloseWrite half-closes: sends FIN, keeps the read side open. The peer's
// reads observe EOF after draining; our reads continue until its FIN.
func (c *Conn) CloseWrite() error {
	var err error
	c.p.exec(func() {
		if c.closed || c.wclosed {
			err = &net.OpError{Op: "close", Net: "tcp", Source: c.laddr, Addr: c.raddr, Err: net.ErrClosed}
			return
		}
		c.wclosed = true
		if !c.tcGone {
			c.tc.CloseWrite()
		}
	})
	return err
}

// LocalAddr returns the local address.
func (c *Conn) LocalAddr() net.Addr { return c.laddr }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// SetDeadline sets both read and write deadlines, interpreted on the
// virtual clock. A zero time clears; a past time (http's aLongTimeAgo abort
// idiom) expires pending and future I/O immediately.
func (c *Conn) SetDeadline(t time.Time) error {
	c.p.exec(func() {
		c.rdeadline, c.wdeadline = t, t
		c.applyReadDeadline()
	})
	return nil
}

// SetReadDeadline sets the read deadline on the virtual clock.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.p.exec(func() {
		c.rdeadline = t
		c.applyReadDeadline()
	})
	return nil
}

// SetWriteDeadline sets the write deadline on the virtual clock.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.p.exec(func() {
		c.wdeadline = t
	})
	return nil
}

// applyReadDeadline (pump-side) re-arms or immediately expires pending
// readers after a deadline change.
func (c *Conn) applyReadDeadline() {
	if !c.rdeadline.IsZero() && !c.rdeadline.After(c.p.sched.Now()) {
		c.expireReaders()
		return
	}
	c.armReadTimer()
}
