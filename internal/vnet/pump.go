// Package vnet adapts the callback-push surface of internal/stack into the
// standard library's net shape — net.Conn, net.Listener, net.PacketConn and
// a DialContext — so ordinary blocking networked code, including an
// unmodified net/http.Server, runs inside the deterministic simulation with
// zero real sockets.
//
// # Determinism discipline
//
// The simulation kernel is single-threaded: every stack callback fires
// inside a scheduler event. Blocking net code is the opposite — a goroutine
// per connection, each parked in Read/Write/Accept most of the time. The
// Pump reconciles the two:
//
//   - One pump goroutine owns the scheduler. App goroutines never touch the
//     stack directly; every operation is a closure submitted to the pump and
//     executed there, which gives all operations a single total order and
//     keeps the stack lock-free.
//   - A grant counter gates the virtual clock. Completing a blocking
//     operation grants the woken goroutine "compute with the clock frozen";
//     entering the next operation returns the grant. The pump only advances
//     virtual time (dispatches the next simulation event) when no goroutine
//     holds a grant, so app compute takes zero virtual time and the event
//     order cannot depend on how fast the real CPU ran a handler — the same
//     contract engine.Map makes for analysis workers, applied to I/O.
//   - Completions that typically precede a goroutine's exit (EOF, ErrClosed,
//     connection reset, Close itself) grant nothing: a goroutine that
//     unwinds and dies after an error must not freeze the clock forever.
//     Grant arithmetic floors at zero, so code that keeps running after such
//     an error self-corrects at its next operation.
//
// Known slack, accepted and bounded: a goroutine computing without a grant
// (just spawned, or continuing after a terminal error) races the clock for
// the length of that compute stretch. The pump yields through several settle
// rounds before every clock step so such goroutines almost always get their
// next operation in first, and a real-time stall valve (plus the
// vnet_grant_resets counter making it observable) recovers the rare leaked
// grant instead of deadlocking. Content-level results — served artifacts,
// response bodies — are deterministic regardless, because the serving
// pipeline's outputs don't depend on segment timing.
package vnet

import (
	"runtime"
	"sync/atomic"
	"time"

	"iotlan/internal/obs"
	"iotlan/internal/sim"
)

const (
	// settleRounds is how many yield-and-poll rounds the pump runs before
	// concluding no app goroutine is about to submit an operation.
	settleRounds = 8
	// stallReset is the real-time valve on waiting for a grant holder: past
	// it the pump assumes the grants leaked (their goroutines exited) and
	// resets the gate rather than deadlocking the simulation.
	stallReset = 50 * time.Millisecond
)

// Pump drives a scheduler on behalf of blocking app goroutines. Exactly one
// Pump may drive a given scheduler; all Nets over that scheduler's LAN must
// share it.
type Pump struct {
	sched *sim.Scheduler
	calls chan func()
	// epoch is the virtual time the pump was created at, used to classify
	// deadlines (see abortDeadline).
	epoch time.Time

	// active counts outstanding compute grants. Only the pump goroutine
	// touches it.
	active int

	// running is true while Run executes. Non-blocking operations issued
	// before Run starts (test and scenario setup: Listen, ListenPacket)
	// execute inline on the caller — at that point the caller is the only
	// goroutine touching the scheduler, the same single-threaded contract
	// Scheduler.Run has always had.
	running atomic.Bool

	cResets *obs.Counter
}

// NewPump wraps a scheduler for vnet use. While Run is executing, all other
// access to the scheduler and its LAN must go through the pump.
func NewPump(s *sim.Scheduler) *Pump {
	return &Pump{
		sched:   s,
		calls:   make(chan func(), 256),
		epoch:   s.Now(),
		cResets: s.Telemetry.Registry.Counter("vnet_grant_resets"),
	}
}

// abortDeadline reports whether a deadline predates the simulation epoch.
// No in-sim deadline can be set in the past, so such a value is the stdlib's
// "aLongTimeAgo" unblock idiom (net/http aborts pending reads with it). A
// reader woken by an abort is about to unwind and exit, so its expiry grants
// no compute token — granting one would leak it and couple the virtual clock
// to the real-time stall valve.
func (p *Pump) abortDeadline(t time.Time) bool { return t.Before(p.epoch) }

// Now returns the current virtual time. Safe only from the pump goroutine or
// while the pump is not running; in-sim goroutines that need the time mid-run
// should capture it from operation results or use Sleep.
func (p *Pump) Now() time.Time { return p.sched.Now() }

// Go spawns an in-sim actor goroutine and returns a channel closed when it
// finishes. It exists for symmetry and test legibility; the goroutine gets no
// special treatment beyond the settle rounds every new goroutine relies on
// to get its first operation in before the clock moves.
func (p *Pump) Go(fn func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	return done
}

// submit queues an operation for the pump goroutine.
func (p *Pump) submit(fn func()) { p.calls <- fn }

// release returns the calling goroutine's compute grant (operation entry).
func (p *Pump) release() {
	if p.active > 0 {
		p.active--
	}
}

// grant hands out n compute grants (operation completion).
func (p *Pump) grant(n int) { p.active += n }

// exec runs fn on the pump goroutine and blocks the caller until it ran. The
// caller is treated as paused during fn and resumed after — the shape of a
// non-blocking operation (Write, SetDeadline, CloseWrite).
func (p *Pump) exec(fn func()) {
	if !p.running.Load() {
		fn()
		return
	}
	done := make(chan struct{})
	p.submit(func() {
		p.release()
		fn()
		p.grant(1)
		close(done)
	})
	<-done
}

// execTerminal is exec for operations after which the caller may never call
// in again (Close): the completion grants nothing.
func (p *Pump) execTerminal(fn func()) {
	if !p.running.Load() {
		fn()
		return
	}
	done := make(chan struct{})
	p.submit(func() {
		p.release()
		fn()
		close(done)
	})
	<-done
}

// Sleep parks the calling goroutine for a virtual duration. The wake is a
// granted completion, so the caller's follow-up compute is clock-frozen like
// any read result.
func (p *Pump) Sleep(d time.Duration) {
	ch := make(chan struct{}, 1)
	p.submit(func() {
		p.release()
		p.sched.AfterTagged("vnet", d, func() {
			p.grant(1)
			ch <- struct{}{}
		})
	})
	<-ch
}

// Run drives the simulation until the virtual clock reaches until, giving
// app goroutines their rendezvous between events. It replaces
// Scheduler.Run/RunFor whenever vnet connections are in play.
func (p *Pump) Run(until time.Time) {
	p.running.Store(true)
	defer p.running.Store(false)
	for {
		// Drain every queued operation first: operations never advance the
		// clock, so draining is always safe and keeps the total order long.
		draining := true
		for draining {
			select {
			case fn := <-p.calls:
				fn()
			default:
				draining = false
			}
		}
		if p.active > 0 {
			// Somebody computes with the clock frozen; wait for their next
			// operation. The valve recovers grants leaked by goroutines
			// that exited after a granted completion.
			select {
			case fn := <-p.calls:
				fn()
			case <-time.After(stallReset):
				p.cResets.Add(uint64(p.active))
				p.active = 0
			}
			continue
		}
		if p.settle() {
			continue
		}
		if p.sched.Step(until) {
			continue
		}
		// No grants, no operations after settling, no events before until:
		// one last generous settle for goroutines the runtime parked
		// mid-compute, then finish.
		if p.settleHard() {
			continue
		}
		p.sched.AdvanceTo(until)
		return
	}
}

// RunFor is Run for a duration from the current virtual time.
func (p *Pump) RunFor(d time.Duration) { p.Run(p.sched.Now().Add(d)) }

// settle yields the processor a few times, giving runnable goroutines the
// chance to submit their next operation before the clock moves. Reports
// whether any operation was processed.
func (p *Pump) settle() bool {
	for i := 0; i < settleRounds; i++ {
		runtime.Gosched()
		select {
		case fn := <-p.calls:
			fn()
			return true
		default:
		}
	}
	return false
}

// settleHard is settle with real-time backoff, used only right before Run
// returns: a goroutine preempted mid-compute gets up to ~2 ms of wall time
// to land its operation instead of being stranded past the end of Run.
func (p *Pump) settleHard() bool {
	for i := 0; i < 20; i++ {
		select {
		case fn := <-p.calls:
			fn()
			return true
		case <-time.After(100 * time.Microsecond):
		}
	}
	return false
}
