package vnet

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"syscall"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// defaultDialTimeout bounds a handshake on the virtual clock when the caller
// gave no usable deadline — a SYN into a partition must not park the dialer
// forever.
const defaultDialTimeout = 30 * time.Second

// Net is the stdlib-shaped network facade of one simulated host. It is what
// code written against net.Dialer/net.Listen takes instead, and everything
// it returns runs over the host's userspace stack on the shared Pump.
type Net struct {
	p *Pump
	h *stack.Host

	// DialTimeout bounds handshakes in virtual time (default 30s).
	DialTimeout time.Duration
	// ReadBuffer bounds each conn's receive buffer (default 1 MiB).
	ReadBuffer int

	// nextPort hands out listener ports for ":0" binds. Pump-owned.
	nextPort uint16
}

// New binds a facade to a host. The pump must be the one driving the host's
// scheduler.
func New(p *Pump, h *stack.Host) *Net {
	return &Net{p: p, h: h, nextPort: 20000}
}

// Net implements netx.Fabric, so fabric-parameterized components (the
// honeypot Server, iotserve clients) run unchanged over the simulated LAN.
var _ netx.Fabric = (*Net)(nil)

// Pump returns the pump driving this net.
func (n *Net) Pump() *Pump { return n.p }

// Now returns the current virtual time. Safe to call from any goroutine the
// pump is aware of (one holding a grant or blocked in a vnet op).
func (n *Net) Now() time.Time { return n.p.Now() }

// Host returns the underlying stack host.
func (n *Net) Host() *stack.Host { return n.h }

// DialContext opens a TCP connection to addr ("ip:port"). Supported
// networks: "tcp", "tcp4", "tcp6". The context's cancellation is honoured;
// wall-clock context deadlines are not mapped onto the virtual clock (they
// are typically years away from it) — the virtual DialTimeout bounds the
// handshake instead.
func (n *Net) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	switch network {
	case "tcp", "tcp4", "tcp6":
	default:
		return nil, &net.OpError{Op: "dial", Net: network, Err: net.UnknownNetworkError(network)}
	}
	ip, port, err := netx.SplitAddrPort(addr)
	if err != nil || !ip.IsValid() {
		return nil, &net.OpError{Op: "dial", Net: network, Err: fmt.Errorf("invalid address %q: %v", addr, err)}
	}
	timeout := n.DialTimeout
	if timeout <= 0 {
		timeout = defaultDialTimeout
	}

	w := newWaiter(nil)
	type dial struct {
		c     *Conn
		done  bool
		timer *sim.Timer
	}
	d := &dial{}
	settle := make(chan struct{}) // closed once the dial resolved (stops the ctx watcher)
	finish := func(err error, grants int) {
		if d.done {
			return
		}
		d.done = true
		if d.timer != nil {
			d.timer.Stop()
		}
		close(settle)
		w.finish(n.p, 0, err, grants)
	}
	n.p.submit(func() {
		n.p.release()
		tc := n.h.DialTCP(ip, port)
		laddr := netip.AddrPortFrom(n.h.IPv4(), tc.LocalPort())
		raddr := netip.AddrPortFrom(ip, port)
		d.c = newConn(n.p, tc, laddr, raddr, n.ReadBuffer)
		tc.OnConnect = func(*stack.TCPConn) { finish(nil, 1) }
		tc.OnRefused = func(*stack.TCPConn) {
			d.c.tcGone = true
			finish(&net.OpError{Op: "dial", Net: network, Addr: d.c.raddr, Err: syscall.ECONNREFUSED}, 1)
		}
		d.timer = n.p.sched.AfterTagged("vnet", timeout, func() {
			if !d.c.tcGone {
				tc.Reset()
				d.c.tcGone = true
			}
			finish(&net.OpError{Op: "dial", Net: network, Addr: d.c.raddr, Err: timeoutError{}}, 1)
		})
	})
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-settle:
			case <-done:
				n.p.submit(func() {
					if d.done {
						return
					}
					if !d.c.tcGone {
						d.c.tc.Reset()
						d.c.tcGone = true
					}
					finish(&net.OpError{Op: "dial", Net: network, Err: ctx.Err()}, 1)
				})
			}
		}()
	}
	res := <-w.ch
	if res.err != nil {
		return nil, res.err
	}
	return d.c, nil
}

// Dial is DialContext with a background context.
func (n *Net) Dial(network, addr string) (net.Conn, error) {
	return n.DialContext(context.Background(), network, addr)
}

// Listen binds a TCP listener. addr may name the host's own IP or leave the
// host empty (":8080"); port 0 picks a free port.
func (n *Net) Listen(network, addr string) (net.Listener, error) {
	switch network {
	case "tcp", "tcp4", "tcp6":
	default:
		return nil, &net.OpError{Op: "listen", Net: network, Err: net.UnknownNetworkError(network)}
	}
	_, port, err := netx.SplitAddrPort(addr)
	if err != nil {
		return nil, &net.OpError{Op: "listen", Net: network, Err: err}
	}
	var l *Listener
	var lerr error
	n.p.exec(func() {
		if port == 0 {
			port = n.freePort()
			if port == 0 {
				lerr = &net.OpError{Op: "listen", Net: network, Err: fmt.Errorf("no free ports")}
				return
			}
		} else if n.h.TCPPortOpen(port) {
			lerr = &net.OpError{Op: "listen", Net: network, Err: syscall.EADDRINUSE}
			return
		}
		l = newListener(n.p, n.h, port, n.ReadBuffer)
	})
	if lerr != nil {
		return nil, lerr
	}
	return l, nil
}

// freePort (pump-side) picks an unbound TCP port for ":0" listens.
func (n *Net) freePort() uint16 {
	for i := 0; i < 65535; i++ {
		n.nextPort++
		if n.nextPort < 20000 {
			n.nextPort = 20000
		}
		if !n.h.TCPPortOpen(n.nextPort) {
			return n.nextPort
		}
	}
	return 0
}

// ListenPacket binds a UDP socket. A multicast group address joins the
// group, so the socket receives the group's traffic (SSDP, mDNS).
func (n *Net) ListenPacket(network, addr string) (net.PacketConn, error) {
	switch network {
	case "udp", "udp4", "udp6":
	default:
		return nil, &net.OpError{Op: "listen", Net: network, Err: net.UnknownNetworkError(network)}
	}
	ip, port, err := netx.SplitAddrPort(addr)
	if err != nil {
		return nil, &net.OpError{Op: "listen", Net: network, Err: err}
	}
	var pc *PacketConn
	n.p.exec(func() {
		if port == 0 {
			sock := n.h.OpenUDPEphemeral(nil)
			port = sock.Port
			n.h.CloseUDP(port) // rebind below with the real handler
		}
		if ip.IsValid() && ip.IsMulticast() {
			n.h.JoinGroup(ip)
		}
		pc = newPacketConn(n.p, n.h, port)
	})
	return pc, nil
}
