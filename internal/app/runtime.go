package app

import (
	"encoding/base64"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/httpx"
	"iotlan/internal/mdns"
	"iotlan/internal/netbios"
	"iotlan/internal/netx"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/testbed"
	"iotlan/internal/tplink"
)

// ExfilRecord is one observed transmission of sensitive data, the output of
// the AppCensus-style TLS-decrypting instrumentation (§3.2).
type ExfilRecord struct {
	App      string
	SDK      string // "" when the host app itself sends
	Endpoint string // cloud hostname
	DataType string // "device_mac", "router_ssid", "geolocation", …
	Value    string
	// Direction is "uplink" (phone→cloud) or "downlink" (cloud→phone).
	Direction string
}

// Runtime is the instrumented test phone paired to the lab.
type Runtime struct {
	Lab   *testbed.Lab
	Phone *stack.Host
	// Version selects the Android permission regime (§2.1).
	Version AndroidVersion

	// RouterSSID/RouterBSSID model the AP identity apps try to read.
	RouterSSID  string
	RouterBSSID string

	Records []ExfilRecord
	APILog  []APICall
	// Harvest logs identifiers an app obtained locally, whether or not it
	// exfiltrated them — the instrumentation's view of discovery results.
	Harvest []string

	// cloudMACStore accumulates device MACs "known to the cloud" so that
	// downlink dissemination (§6.1) has content.
	cloudMACStore []string
}

// NewRuntime attaches an instrumented phone to the lab.
func NewRuntime(lab *testbed.Lab, version AndroidVersion) *Runtime {
	phone := lab.AddHost(240, netx.MAC{0x02, 0x9e, 0x00, 0x00, 0x02, 0x40})
	return &Runtime{
		Lab: lab, Phone: phone, Version: version,
		RouterSSID:  "MonIoTr-Lab",
		RouterBSSID: lab.Router.MAC().String(),
	}
}

// SeedCloudMACs primes the cloud-side MAC store with addresses collected at
// initial device pairing — §6.1 observed downlink MAC dissemination and
// concluded "this may have happened at the initial pairing stage".
func (rt *Runtime) SeedCloudMACs(macs []string) {
	rt.cloudMACStore = append(rt.cloudMACStore, macs...)
}

func (rt *Runtime) exfil(app, sdk, endpoint, dataType, value, direction string) {
	rt.Records = append(rt.Records, ExfilRecord{
		App: app, SDK: sdk, Endpoint: endpoint,
		DataType: dataType, Value: value, Direction: direction,
	})
}

func (rt *Runtime) api(app, api string, required []Permission, granted, sidestep bool) {
	rt.APILog = append(rt.APILog, APICall{App: app, API: api, Required: required, Granted: granted, SideStepped: sidestep})
}

// firstPartyEndpoint picks the companion vendor's cloud host.
func firstPartyEndpoint(a *App) string {
	switch a.CompanionFor {
	case "alexa":
		return "device-metrics-us.amazon.com"
	case "google":
		return "cast-edge.googleapis.com"
	case "tuya":
		return "a1.tuyaus.com"
	case "tplink":
		return "api.tplinkcloud.com"
	case "blueair":
		return "api.blueair.io"
	case "hue":
		return "api.meethue.com"
	}
	if a.IoT {
		return "iot-api." + strings.Split(a.Package, ".")[1] + ".com"
	}
	return "analytics." + strings.Split(a.Package, ".")[1] + ".com"
}

// Run executes one app for ~5 simulated minutes of Monkey-style input
// (§3.2) and records everything it accesses and transmits.
func (rt *Runtime) Run(a *App) {
	// Official API access first (WifiInfo), per the permission model.
	granted := CheckSSIDAccess(rt.Version, a.Permissions)
	wantsRouterInfo := a.CollectsRouterSSID || a.CollectsRouterMAC || a.CollectsWifiMAC
	if wantsRouterInfo {
		sidestep := !granted && CanScanDiscovery(a.Permissions)
		rt.api(a.Package, "WifiInfo.getSSID", []Permission{PermNearbyWifiDevices}, granted, sidestep)
		if granted || sidestep {
			if a.CollectsRouterSSID {
				rt.exfil(a.Package, sdkFor(a, "mytracker"), firstOr(a, "tracker.my.com"), "router_ssid", rt.RouterSSID, "uplink")
			}
			if a.CollectsRouterMAC {
				rt.exfil(a.Package, sdkFor(a, "mytracker"), firstOr(a, "tracker.my.com"), "router_mac", rt.RouterBSSID, "uplink")
			}
			if a.CollectsWifiMAC {
				rt.exfil(a.Package, "", firstPartyEndpoint(a), "wifi_mac", rt.Phone.MAC().String(), "uplink")
			}
		}
	}

	if a.UsesMDNS && CanScanDiscovery(a.Permissions) {
		rt.api(a.Package, "NsdManager.discoverServices", []Permission{PermInternet, PermMulticast}, true, false)
		rt.runMDNS(a)
	}
	if a.UsesSSDP && CanScanDiscovery(a.Permissions) {
		rt.runSSDP(a)
	}
	if a.UsesNetBIOS {
		rt.runNetBIOS(a)
	}
	if a.UsesTPLink {
		rt.runTPLink(a)
	}
	if a.ReceivesDownlinkMACs {
		rt.runDownlink(a)
	}
	for _, sdk := range a.SDKs {
		runSDK(rt, a, sdk)
	}
	// Advance the clock for this app's session.
	rt.Lab.Sched.RunFor(30 * time.Second)
}

func sdkFor(a *App, name string) string {
	for _, s := range a.SDKs {
		if s == name {
			return s
		}
	}
	return ""
}

func firstOr(a *App, sdkEndpoint string) string {
	if sdkFor(a, "mytracker") != "" {
		return sdkEndpoint
	}
	return firstPartyEndpoint(a)
}

// runMDNS scans via multicast DNS and exfiltrates MAC-bearing identifiers.
func (rt *Runtime) runMDNS(a *App) {
	seen := map[string]bool{}
	sock := mdns.Listen(rt.Phone, func(m *dnsmsg.Message, from netip.Addr) {
		if !m.Response {
			return
		}
		for _, rr := range append(m.Answers, m.Extra...) {
			for _, field := range append([]string{rr.Name, rr.Target}, rr.TXT...) {
				for _, mac := range extractMACs(field) {
					if seen[mac] {
						continue
					}
					seen[mac] = true
					rt.Harvest = append(rt.Harvest, mac)
					// Discovery is universal; shipping the MAC to the cloud
					// is not (§6.1: six IoT apps).
					if a.ExfiltratesDeviceMACs {
						rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_mac", mac, "uplink")
						rt.cloudMACStore = append(rt.cloudMACStore, mac)
					}
				}
			}
		}
	})
	for _, svc := range []string{"_googlecast._tcp.local", "_hue._tcp.local", "_airplay._tcp.local", "_amzn-wplay._tcp.local"} {
		mdns.Query(rt.Phone, svc, false)
		rt.Lab.Sched.RunFor(2 * time.Second)
	}
	rt.Lab.Sched.RunFor(3 * time.Second)
	sock.Close()
}

// runSSDP scans via SSDP and pulls device descriptions over HTTP.
func (rt *Runtime) runSSDP(a *App) {
	ssdp.Search(rt.Phone, ssdp.TargetAll, func(m *ssdp.Message, from netip.Addr) {
		usn := m.USN()
		rt.Harvest = append(rt.Harvest, usn)
		if a.ExfiltratesDeviceMACs {
			rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_uuid", usn, "uplink")
		}
		if loc := m.Location(); loc != "" {
			host, port, path := splitLocation(loc)
			if host.IsValid() {
				httpx.Get(rt.Phone, host, port, path, nil, func(r *httpx.Response) {
					if r == nil || r.Status != 200 {
						return
					}
					if dev, err := ssdp.ParseDevice(r.Body); err == nil {
						rt.Harvest = append(rt.Harvest, dev.FriendlyName)
						if !a.ExfiltratesDeviceMACs {
							return
						}
						rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_friendly_name", dev.FriendlyName, "uplink")
						for _, mac := range extractMACs(dev.SerialNumber) {
							rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_mac", mac, "uplink")
							rt.cloudMACStore = append(rt.cloudMACStore, mac)
						}
					}
				})
			}
		}
	})
	rt.Lab.Sched.RunFor(5 * time.Second)
}

// runNetBIOS reproduces the Device Finder / Network Scanner behaviour.
func (rt *Runtime) runNetBIOS(a *App) {
	var names []string
	sock := rt.Phone.OpenUDPEphemeral(func(dg stack.Datagram) {
		ns, mac, err := netbios.ParseStatusResponse(dg.Payload)
		if err == nil {
			names = append(names, ns...)
			rt.Harvest = append(rt.Harvest, mac.String())
			if a.ExfiltratesDeviceMACs {
				rt.exfil(a.Package, "", firstPartyEndpoint(a), "netbios_names", strings.Join(ns, ","), "uplink")
				rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_mac", mac.String(), "uplink")
			}
		}
	})
	base := rt.Phone.IPv4().As4()
	for last := byte(10); last < 120; last++ {
		base[3] = last
		sock.SendTo(netip.AddrFrom4(base), netbios.Port, netbios.NBSTATQuery(uint16(last)))
	}
	rt.Lab.Sched.RunFor(5 * time.Second)
	sock.Close()
}

// runTPLink runs companion TPLINK-SHP discovery and uploads the haul,
// including plug geolocation (§6.1).
func (rt *Runtime) runTPLink(a *App) {
	tplink.Discover(rt.Phone, func(info *tplink.SysInfo, from netip.Addr) {
		endpoint := firstPartyEndpoint(a)
		rt.exfil(a.Package, "", endpoint, "tplink_device_id", info.DeviceID, "uplink")
		rt.exfil(a.Package, "", endpoint, "tplink_oem_id", info.OEMID, "uplink")
		rt.exfil(a.Package, "", endpoint, "device_mac", info.MAC, "uplink")
		if info.Latitude != 0 || info.Longitude != 0 {
			rt.exfil(a.Package, "", endpoint, "geolocation",
				fmt.Sprintf("%.6f,%.6f", info.Latitude, info.Longitude), "uplink")
		}
	})
	rt.Lab.Sched.RunFor(3 * time.Second)
}

// runDownlink models §6.1's cloud→app MAC dissemination: the companion app
// receives MACs of devices it never discovered locally.
func (rt *Runtime) runDownlink(a *App) {
	for _, mac := range rt.cloudMACStore {
		rt.exfil(a.Package, "", firstPartyEndpoint(a), "device_mac", mac, "downlink")
	}
}

// extractMACs finds MAC-shaped substrings (with or without separators).
func extractMACs(s string) []string {
	var out []string
	// Colon form aa:bb:cc:dd:ee:ff.
	for i := 0; i+17 <= len(s); i++ {
		if isColonMAC(s[i : i+17]) {
			out = append(out, strings.ToLower(s[i:i+17]))
			i += 16
		}
	}
	// Compact form AABBCCDDEEFF bounded by non-hex.
	for i := 0; i+12 <= len(s); i++ {
		if (i == 0 || !isHex(s[i-1])) && isCompactMAC(s[i:i+12]) &&
			(i+12 == len(s) || !isHex(s[i+12])) {
			out = append(out, strings.ToLower(formatCompact(s[i:i+12])))
		}
	}
	return out
}

func isColonMAC(s string) bool {
	for i := 0; i < 17; i++ {
		if (i+1)%3 == 0 {
			if s[i] != ':' && s[i] != '-' {
				return false
			}
		} else if !isHex(s[i]) {
			return false
		}
	}
	return true
}

func isCompactMAC(s string) bool {
	for i := 0; i < 12; i++ {
		if !isHex(s[i]) {
			return false
		}
	}
	return true
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func formatCompact(s string) string {
	var sb strings.Builder
	for i := 0; i < 12; i += 2 {
		if i > 0 {
			sb.WriteByte(':')
		}
		sb.WriteString(s[i : i+2])
	}
	return sb.String()
}

func splitLocation(loc string) (netip.Addr, uint16, string) {
	loc = strings.TrimPrefix(loc, "http://")
	hostport, path, _ := strings.Cut(loc, "/")
	ap, err := netip.ParseAddrPort(hostport)
	if err != nil {
		return netip.Addr{}, 0, ""
	}
	return ap.Addr(), ap.Port(), "/" + path
}

// base64SSID encodes the SSID the AppDynamics way (§6.2).
func base64SSID(ssid string) string {
	return base64.StdEncoding.EncodeToString([]byte(ssid))
}
