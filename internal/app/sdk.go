package app

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"iotlan/internal/netbios"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
)

// runSDK executes a third-party library's behaviour inside the host app's
// process — SDKs inherit the host app's permissions (§2.1) and, as §6.2
// shows, scan the LAN without the developer's awareness.
func runSDK(rt *Runtime, a *App, sdk string) {
	switch sdk {
	case "innosdk":
		runInnoSDK(rt, a)
	case "appdynamics":
		runAppDynamics(rt, a)
	case "umlaut-insightcore":
		runUmlaut(rt, a)
	case "mytracker":
		runMyTracker(rt, a)
	case "amplitude":
		runAmplitude(rt, a)
	case "tuya-cloud":
		runTuyaCloud(rt, a)
	}
}

// runInnoSDK reproduces §6.2's "Lucky Time" behaviour: a UDP datagram to
// every IP in the /24 regardless of liveness, ARP-harvested MACs, targeted
// NBSTAT queries, all shipped to gw.innotechworld.com. The probe payload is
// generated algorithmically rather than stored as a constant, as the paper
// notes (likely malware-scanner evasion).
func runInnoSDK(rt *Runtime, a *App) {
	const endpoint = "gw.innotechworld.com"
	var macs []string
	sock := rt.Phone.OpenUDPEphemeral(nil)
	nbSock := rt.Phone.OpenUDPEphemeral(func(dg stack.Datagram) {
		names, mac, err := netbios.ParseStatusResponse(dg.Payload)
		if err != nil {
			return
		}
		macs = append(macs, mac.String())
		rt.exfil(a.Package, "innosdk", endpoint, "netbios_names", strings.Join(names, ","), "uplink")
		rt.exfil(a.Package, "innosdk", endpoint, "device_mac", mac.String(), "uplink")
	})
	base := rt.Phone.IPv4().As4()
	for last := byte(1); last < 255; last++ {
		base[3] = last
		target := netip.AddrFrom4(base)
		// The algorithmically generated beacon: derived per-address bytes.
		sock.SendTo(target, 7423, innoProbe(last))
		nbSock.SendTo(target, netbios.Port, netbios.NBSTATQuery(uint16(last)))
	}
	rt.Lab.Sched.RunFor(5 * time.Second)
	rt.exfil(a.Package, "innosdk", endpoint, "scan_summary",
		fmt.Sprintf("probed /24, %d responders", len(macs)), "uplink")
	sock.Close()
	nbSock.Close()
}

// innoProbe generates the per-address payload at runtime.
func innoProbe(last byte) []byte {
	out := make([]byte, 16)
	seed := uint32(last)*2654435761 + 0x1234
	for i := range out {
		seed = seed*1103515245 + 12345
		out[i] = byte(seed >> 16)
	}
	return out
}

// runAppDynamics reproduces §6.2's CNN-app side channel: the SDK wraps the
// host's network callbacks, so when the app's casting feature does SSDP
// discovery, the SDK arbitrarily reads the device descriptors and tracks a
// request to events.claspws.tv with base64 SSID, Android ID, IDFA and the
// list of screen devices.
func runAppDynamics(rt *Runtime, a *App) {
	const endpoint = "events.claspws.tv"
	var screens []string
	ssdp.Search(rt.Phone, ssdp.TargetDial, func(m *ssdp.Message, from netip.Addr) {
		screens = append(screens, m.USN())
		// The SDK sees the host app's UPnP XML fetch via its okhttp wrapper.
		rt.exfil(a.Package, "appdynamics", endpoint, "upnp_location", m.Location(), "uplink")
	})
	rt.Lab.Sched.RunFor(4 * time.Second)
	rt.exfil(a.Package, "appdynamics", endpoint, "router_ssid_b64", base64SSID(rt.RouterSSID), "uplink")
	rt.exfil(a.Package, "appdynamics", endpoint, "android_id", "a1b2c3d4e5f60718", "uplink")
	rt.exfil(a.Package, "appdynamics", endpoint, "idfa", "f3f161ab-0000-4242-8888-deadbeef0001", "uplink")
	if len(screens) > 0 {
		rt.exfil(a.Package, "appdynamics", endpoint, "screen_device_list", strings.Join(screens, ";"), "uplink")
	}
}

// runUmlaut reproduces the Simple Speedcheck monetisation library: SSDP IGD
// discovery plus an upload of the connected-device list and geolocation.
func runUmlaut(rt *Runtime, a *App) {
	const endpoint = "tacs.c0nnectthed0ts.com"
	var devices []string
	ssdp.Search(rt.Phone, ssdp.TargetIGD, func(m *ssdp.Message, from netip.Addr) {
		devices = append(devices, from.String())
		rt.exfil(a.Package, "umlaut-insightcore", endpoint, "igd_device", m.USN(), "uplink")
	})
	ssdp.Search(rt.Phone, ssdp.TargetAll, func(m *ssdp.Message, from netip.Addr) {
		devices = append(devices, from.String())
	})
	rt.Lab.Sched.RunFor(4 * time.Second)
	rt.exfil(a.Package, "umlaut-insightcore", endpoint, "connected_device_list",
		strings.Join(dedupe(devices), ";"), "uplink")
	rt.exfil(a.Package, "umlaut-insightcore", endpoint, "geolocation", "42.3398,-71.0892", "uplink")
}

// runMyTracker reproduces §6.1's no-permission Wi-Fi harvesting: nearby
// BSSIDs shipped to the Russian analytics SDK without the location
// permission the official API would demand.
func runMyTracker(rt *Runtime, a *App) {
	const endpoint = "tracker.my.com"
	granted := CheckSSIDAccess(rt.Version, a.Permissions)
	rt.api(a.Package, "WifiInfo.getBSSID", []Permission{PermNearbyWifiDevices}, granted, !granted)
	rt.exfil(a.Package, "mytracker", endpoint, "router_mac", rt.RouterBSSID, "uplink")
	rt.exfil(a.Package, "mytracker", endpoint, "router_ssid", rt.RouterSSID, "uplink")
	rt.exfil(a.Package, "mytracker", endpoint, "wifi_mac", rt.Phone.MAC().String(), "uplink")
}

// runAmplitude models the analytics recipient of Alexa-app device MACs.
func runAmplitude(rt *Runtime, a *App) {
	for _, mac := range lastN(rt.cloudMACStore, 3) {
		rt.exfil(a.Package, "amplitude", "api2.amplitude.com", "device_mac", mac, "uplink")
	}
}

// runTuyaCloud models Tuya's platform receiving device MACs from companion
// traffic (§6.1: recipients are first-party or Tuya/Amplitude).
func runTuyaCloud(rt *Runtime, a *App) {
	for _, mac := range lastN(rt.cloudMACStore, 3) {
		rt.exfil(a.Package, "tuya-cloud", "a1.tuyaus.com", "device_mac", mac, "uplink")
	}
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func lastN(in []string, n int) []string {
	if len(in) <= n {
		return in
	}
	return in[len(in)-n:]
}
