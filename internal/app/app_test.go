package app

import (
	"strings"
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/testbed"
)

func TestDatasetShape(t *testing.T) {
	apps := Dataset(1)
	s := Summarize(apps)
	if s.Total != 2335 {
		t.Fatalf("total %d", s.Total)
	}
	if s.IoT < 900 || s.IoT > 1100 {
		t.Fatalf("IoT apps %d, want ≈987", s.IoT)
	}
	// Figure 2 app fractions: mDNS 6%, SSDP 4%, NetBIOS ~0.5%, TLS 25%.
	within := func(name string, n, lo, hi int) {
		if n < lo || n > hi {
			t.Errorf("%s: %d apps, want [%d, %d]", name, n, lo, hi)
		}
	}
	within("mDNS", s.MDNS, 100, 160)
	within("SSDP", s.SSDP, 60, 110)
	within("NetBIOS", s.NetBIOS, 8, 14)
	within("TLS", s.TLS, 450, 680)
	within("router SSID collectors", s.RouterSSID, 25, 40)
	within("router MAC collectors", s.RouterMAC, 20, 32)
	within("wifi MAC collectors", s.WifiMAC, 10, 18)
	within("downlink receivers", s.Downlink, 10, 16)
}

func TestDatasetDeterministic(t *testing.T) {
	a, b := Dataset(5), Dataset(5)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Package != b[i].Package || a[i].UsesMDNS != b[i].UsesMDNS {
			t.Fatalf("apps diverge at %d", i)
		}
	}
}

func TestPermissionModel(t *testing.T) {
	normal := []Permission{PermInternet, PermMulticast}
	if CheckSSIDAccess(Android13, normal) {
		t.Fatal("SSID accessible without NEARBY_WIFI_DEVICES on 13")
	}
	if !CheckSSIDAccess(Android13, append(normal, PermNearbyWifiDevices)) {
		t.Fatal("NEARBY_WIFI_DEVICES should grant SSID on 13")
	}
	if !CheckSSIDAccess(Android9, append(normal, PermFineLocation)) {
		t.Fatal("location should grant SSID on 9")
	}
	if CheckSSIDAccess(Android9, normal) {
		t.Fatal("SSID accessible without location on 9")
	}
	// The §2.1 bypass: discovery scanning needs only normal permissions.
	if !CanScanDiscovery(normal) {
		t.Fatal("discovery scan should work with INTERNET+MULTICAST only")
	}
	for _, p := range normal {
		if p.Dangerous() {
			t.Fatalf("%s should not be dangerous", p)
		}
	}
	if !PermNearbyWifiDevices.Dangerous() {
		t.Fatal("NEARBY_WIFI_DEVICES should be dangerous")
	}
}

func subsetLab(t *testing.T, names ...string) *testbed.Lab {
	t.Helper()
	var profiles []*device.Profile
	for _, p := range device.Catalog() {
		for _, n := range names {
			if p.Name == n {
				profiles = append(profiles, p)
			}
		}
	}
	lab := testbed.NewWith(1, profiles)
	lab.Start()
	lab.RunIdle(3 * time.Minute)
	return lab
}

func findApp(t *testing.T, pkg string) *App {
	t.Helper()
	apps := Dataset(1)
	for i := range apps {
		if apps[i].Package == pkg {
			return &apps[i]
		}
	}
	t.Fatalf("app %q not in dataset", pkg)
	return nil
}

func records(rt *Runtime, dataType string) []ExfilRecord {
	var out []ExfilRecord
	for _, r := range rt.Records {
		if r.DataType == dataType {
			out = append(out, r)
		}
	}
	return out
}

func TestPoCDiscoveryWithoutDangerousPermissions(t *testing.T) {
	// The §2.1 proof-of-concept: an Android 13 app holding only INTERNET
	// and CHANGE_WIFI_MULTICAST_STATE discovers devices via mDNS.
	lab := subsetLab(t, "hue-hub", "google-3")
	rt := NewRuntime(lab, Android13)
	poc := &App{
		Package:     "com.example.poc",
		Permissions: []Permission{PermInternet, PermMulticast},
		UsesMDNS:    true,
	}
	rt.Run(poc)
	if len(rt.Harvest) == 0 {
		t.Fatal("PoC app discovered no device identifiers")
	}
	// Discovery succeeded, but a non-exfiltrating app ships nothing (§6.1).
	if len(records(rt, "device_mac")) != 0 {
		t.Fatal("non-exfiltrating app uploaded MACs")
	}
	for _, c := range rt.APILog {
		if c.App == "com.example.poc" && c.API == "NsdManager.discoverServices" && !c.Granted {
			t.Fatal("NsdManager should be usable with normal permissions")
		}
	}
}

func TestAlexaCompanionExfiltratesMACs(t *testing.T) {
	lab := subsetLab(t, "hue-hub", "tplink-plug", "echo-1")
	rt := NewRuntime(lab, Android9)
	alexa := findApp(t, "com.amazon.dee.app")
	rt.Run(alexa)
	macs := records(rt, "device_mac")
	if len(macs) == 0 {
		t.Fatal("Alexa app collected no MACs")
	}
	// TPLINK-SHP identifiers reach the cloud (§6.1).
	if len(records(rt, "tplink_oem_id")) == 0 {
		t.Error("TP-Link OEM id not exfiltrated")
	}
	if len(records(rt, "geolocation")) == 0 {
		t.Error("plug geolocation not exfiltrated")
	}
	// Downlink dissemination: the app receives MACs back from the cloud.
	downlink := 0
	for _, r := range rt.Records {
		if r.Direction == "downlink" && r.DataType == "device_mac" {
			downlink++
		}
	}
	if downlink == 0 {
		t.Error("no downlink MAC dissemination")
	}
}

func TestInnoSDKScansWholeSubnet(t *testing.T) {
	lab := subsetLab(t, "lg-tv", "samsung-tv")
	rt := NewRuntime(lab, Android9)
	lucky := findApp(t, "com.luckyapp.winner")
	before := lab.Capture.Len()
	rt.Run(lucky)
	// The SDK probes all 254 addresses regardless of liveness: on the wire
	// that appears as an ARP storm for every address (UDP to dead IPs never
	// leaves the ARP queue, exactly as on a real LAN) plus UDP probes to
	// every live host.
	arpTargets := map[[4]byte]bool{}
	udpProbes := 0
	for _, r := range lab.Capture.All[before:] {
		p := r.Decode()
		if p.HasARP && p.ARP.Op == 1 && p.Eth.Src == rt.Phone.MAC() {
			arpTargets[p.ARP.TargetIP] = true
		}
		if p.HasUDP && p.UDP.DstPort == 7423 {
			udpProbes++
		}
	}
	if len(arpTargets) < 200 {
		t.Fatalf("innosdk ARPed %d addresses, want ~254", len(arpTargets))
	}
	if udpProbes < 2 {
		t.Fatalf("innosdk reached %d live hosts via UDP", udpProbes)
	}
	// NetBIOS responders (the TVs) leak names + MAC to the SDK endpoint.
	found := false
	for _, r := range rt.Records {
		if r.SDK == "innosdk" && r.Endpoint == "gw.innotechworld.com" && r.DataType == "device_mac" {
			found = true
		}
	}
	if !found {
		t.Fatal("innosdk exfiltrated nothing")
	}
}

func TestAppDynamicsSideChannel(t *testing.T) {
	lab := subsetLab(t, "fire-tv", "chromecast")
	rt := NewRuntime(lab, Android9)
	cnn := findApp(t, "com.cnn.mobile.android.phone")
	rt.Run(cnn)
	var gotSSID, gotScreens bool
	for _, r := range rt.Records {
		if r.SDK != "appdynamics" || r.Endpoint != "events.claspws.tv" {
			continue
		}
		switch r.DataType {
		case "router_ssid_b64":
			gotSSID = r.Value == base64SSID(rt.RouterSSID)
		case "screen_device_list":
			gotScreens = strings.Contains(r.Value, "uuid")
		}
	}
	if !gotSSID {
		t.Error("AppDynamics did not ship the base64 SSID")
	}
	if !gotScreens {
		t.Error("AppDynamics did not ship the screen device list")
	}
}

func TestMyTrackerBypassesPermissions(t *testing.T) {
	lab := subsetLab(t, "hue-hub")
	rt := NewRuntime(lab, Android13)
	host := findApp(t, "com.fancyclean.boostmaster")
	rt.Run(host)
	// The app holds no dangerous permission yet router identifiers flow.
	got := false
	for _, r := range rt.Records {
		if r.SDK == "mytracker" && r.DataType == "router_mac" && r.Value == rt.RouterBSSID {
			got = true
		}
	}
	if !got {
		t.Fatal("MyTracker did not collect the router MAC")
	}
	sidestepped := false
	for _, c := range rt.APILog {
		if c.App == host.Package && c.SideStepped {
			sidestepped = true
		}
	}
	if !sidestepped {
		t.Fatal("no side-channel API access logged")
	}
}

func TestExtractMACs(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"Philips Hue - 685F61", 0},
		{"bridgeid=001788fffe685f61", 0}, // EUI-64, not a 12-hex MAC
		{"deviceid=9c:8e:cd:0a:33:1b", 1},
		{"a=9C8ECD0A331B", 1},
		{"bs=9C8ECD0A331B x=00:17:88:68:5f:61", 2},
		{"no identifiers here", 0},
	}
	for _, c := range cases {
		if got := extractMACs(c.in); len(got) != c.want {
			t.Errorf("extractMACs(%q) = %v, want %d", c.in, got, c.want)
		}
	}
}
