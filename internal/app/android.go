// Package app models the study's mobile-app pipeline: the 2,335-app dataset
// (987 IoT companions + 1,348 regular apps, §3.2), the Android permission
// model whose discovery-protocol side channel §2.1 demonstrates, the
// third-party SDK behaviours of §6.2 (innosdk, AppDynamics, umlaut,
// MyTracker), and an AppCensus-like instrumented runtime that logs
// permission-protected API access and every identifier leaving the phone.
package app

import "fmt"

// Permission is an Android permission name.
type Permission string

// Permissions relevant to local-network access (§2.1).
const (
	PermInternet          Permission = "android.permission.INTERNET"
	PermMulticast         Permission = "android.permission.CHANGE_WIFI_MULTICAST_STATE"
	PermCoarseLocation    Permission = "android.permission.ACCESS_COARSE_LOCATION"
	PermFineLocation      Permission = "android.permission.ACCESS_FINE_LOCATION"
	PermNearbyWifiDevices Permission = "android.permission.NEARBY_WIFI_DEVICES"
	PermAccessWifiState   Permission = "android.permission.ACCESS_WIFI_STATE"
)

// Dangerous reports whether a permission requires explicit user consent at
// runtime. INTERNET and CHANGE_WIFI_MULTICAST_STATE are "normal" — that is
// the §2.1 bypass: they suffice for mDNS/SSDP scanning.
func (p Permission) Dangerous() bool {
	switch p {
	case PermCoarseLocation, PermFineLocation, PermNearbyWifiDevices:
		return true
	}
	return false
}

// APICall records one permission-protected API access attempt, the
// AppCensus-style visibility of §3.2.
type APICall struct {
	App         string
	API         string // "WifiInfo.getSSID", "WifiInfo.getBSSID", "NsdManager.discoverServices", …
	Required    []Permission
	Granted     bool
	SideStepped bool // data obtained anyway via a discovery side channel
}

// AndroidVersion selects the permission regime.
type AndroidVersion int

// Permission regimes the paper contrasts.
const (
	Android9  AndroidVersion = 9  // SSID needs location permission
	Android13 AndroidVersion = 13 // SSID needs NEARBY_WIFI_DEVICES
)

// CheckSSIDAccess evaluates the official WifiInfo SSID/BSSID API under the
// given regime.
func CheckSSIDAccess(v AndroidVersion, held []Permission) bool {
	has := func(p Permission) bool {
		for _, h := range held {
			if h == p {
				return true
			}
		}
		return false
	}
	switch v {
	case Android13:
		return has(PermNearbyWifiDevices)
	default: // Android 9–12
		return has(PermCoarseLocation) || has(PermFineLocation)
	}
}

// CanScanDiscovery evaluates the §2.1 side channel: NsdManager-style mDNS
// and raw-socket SSDP need only normal permissions.
func CanScanDiscovery(held []Permission) bool {
	hasInternet, hasMulticast := false, false
	for _, p := range held {
		switch p {
		case PermInternet:
			hasInternet = true
		case PermMulticast:
			hasMulticast = true
		}
	}
	return hasInternet && hasMulticast
}

// String implements fmt.Stringer.
func (c APICall) String() string {
	return fmt.Sprintf("%s %s granted=%v sidestep=%v", c.App, c.API, c.Granted, c.SideStepped)
}
