package app

import (
	"fmt"
	"math/rand"
)

// App is one entry in the mobile-app dataset.
type App struct {
	Package string
	// IoT marks companion-style apps (987 of 2,335, §3.2).
	IoT bool
	// CompanionFor names the lab device family the app controls ("" for
	// regular apps).
	CompanionFor string
	Permissions  []Permission
	SDKs         []string

	// Local-network behaviours (the Figure 2 "apps" bars):
	UsesMDNS    bool // 6.0% of apps
	UsesSSDP    bool // 4.0%
	UsesNetBIOS bool // 0.5%
	UsesTPLink  bool // companion-style custom protocol
	UsesTLS     bool // 25% talk TLS to devices once paired
	// CollectsRouterInfo uploads SSID/BSSID-style data (§6.1: 36/28/15
	// apps).
	CollectsRouterSSID bool
	CollectsRouterMAC  bool
	CollectsWifiMAC    bool
	// ExfiltratesDeviceMACs marks apps that ship discovered device MACs to
	// the cloud (§6.1 observed exactly 6 IoT apps doing so). Discovery
	// without this flag stays on the phone.
	ExfiltratesDeviceMACs bool
	// ReceivesDownlinkMACs marks the 13 companion apps that receive other
	// devices' MACs from the cloud (§6.1).
	ReceivesDownlinkMACs bool
}

// Named apps the paper discusses; these anchor the dataset.
var namedApps = []App{
	{
		Package: "com.amazon.dee.app", IoT: true, CompanionFor: "alexa",
		Permissions:           []Permission{PermInternet, PermMulticast, PermFineLocation, PermAccessWifiState},
		SDKs:                  []string{"amplitude"},
		ExfiltratesDeviceMACs: true,
		UsesMDNS:              true, UsesSSDP: true, UsesTPLink: true, UsesTLS: true,
		CollectsRouterSSID: true, CollectsRouterMAC: true,
		ReceivesDownlinkMACs: true,
	},
	{
		Package: "com.google.android.apps.chromecast.app", IoT: true, CompanionFor: "google",
		Permissions:           []Permission{PermInternet, PermMulticast, PermFineLocation, PermAccessWifiState},
		ExfiltratesDeviceMACs: true,
		UsesMDNS:              true, UsesSSDP: true, UsesTLS: true,
		CollectsRouterSSID: true, CollectsRouterMAC: true,
		ReceivesDownlinkMACs: true,
	},
	{
		Package: "com.tuya.smartlife", IoT: true, CompanionFor: "tuya",
		Permissions:           []Permission{PermInternet, PermMulticast, PermCoarseLocation},
		SDKs:                  []string{"tuya-cloud"},
		ExfiltratesDeviceMACs: true,
		UsesMDNS:              true, UsesTLS: true,
		CollectsRouterSSID: true, CollectsRouterMAC: true, CollectsWifiMAC: true,
		ReceivesDownlinkMACs: true,
	},
	{
		Package: "com.tplink.kasa_android", IoT: true, CompanionFor: "tplink",
		Permissions:           []Permission{PermInternet, PermMulticast, PermFineLocation},
		ExfiltratesDeviceMACs: true,
		UsesTPLink:            true, UsesTLS: true,
		CollectsRouterSSID: true, CollectsWifiMAC: true,
	},
	{
		Package: "com.philips.lighting.hue2", IoT: true, CompanionFor: "hue",
		Permissions: []Permission{PermInternet, PermMulticast},
		UsesMDNS:    true, UsesSSDP: true, UsesTLS: true,
	},
	{
		Package: "com.blueair.android", IoT: true, CompanionFor: "blueair",
		Permissions:           []Permission{PermInternet, PermMulticast, PermFineLocation},
		ExfiltratesDeviceMACs: true,
		UsesMDNS:              true, UsesTLS: true,
		CollectsWifiMAC: true, // plus AAID + coarse geolocation (§6.1)
	},
	{
		Package: "com.cnn.mobile.android.phone", IoT: false,
		Permissions: []Permission{PermInternet, PermMulticast},
		SDKs:        []string{"appdynamics"},
		UsesSSDP:    true, // casting feature (v6.18.3, §6.2)
	},
	{
		Package: "org.speedspot.speedspotspeedtest", IoT: false,
		Permissions:        []Permission{PermInternet, PermMulticast, PermFineLocation},
		SDKs:               []string{"umlaut-insightcore"},
		UsesSSDP:           true,
		CollectsRouterSSID: true,
	},
	{
		Package: "com.luckyapp.winner", IoT: false,
		Permissions: []Permission{PermInternet, PermMulticast},
		SDKs:        []string{"innosdk"},
		UsesNetBIOS: true,
	},
	{
		Package: "com.pzolee.networkscanner", IoT: false,
		Permissions: []Permission{PermInternet, PermMulticast, PermAccessWifiState},
		UsesNetBIOS: true, UsesMDNS: true,
	},
	{
		Package: "com.myprog.netscan", IoT: false,
		Permissions: []Permission{PermInternet, PermMulticast, PermAccessWifiState},
		UsesNetBIOS: true,
	},
	{
		Package: "com.fancyclean.boostmaster", IoT: false, // MyTracker host (§6.1)
		Permissions:       []Permission{PermInternet, PermMulticast},
		SDKs:              []string{"mytracker"},
		UsesSSDP:          true,
		CollectsRouterMAC: true, CollectsWifiMAC: true,
	},
}

// Dataset deterministically generates the full 2,335-app population around
// the named anchors, matching the paper's behaviour fractions.
func Dataset(seed int64) []App {
	const (
		totalApps = 2335
		iotApps   = 987
	)
	rng := rand.New(rand.NewSource(seed))
	apps := make([]App, 0, totalApps)
	apps = append(apps, namedApps...)

	namedIoT := 0
	for _, a := range namedApps {
		if a.IoT {
			namedIoT++
		}
	}

	// Behaviour quotas (fractions from §4.3/§6.1 scaled to the population).
	quota := struct {
		mdns, ssdp, netbios, tls                 int
		routerSSID, routerMAC, wifiMAC, downlink int
	}{
		mdns: 140, ssdp: 93, netbios: 10, tls: 584,
		routerSSID: 36, routerMAC: 28, wifiMAC: 15, downlink: 13,
	}
	count := func() (mdns, ssdp, nb, tls, rs, rm, wm, dl int) {
		for _, a := range apps {
			if a.UsesMDNS {
				mdns++
			}
			if a.UsesSSDP {
				ssdp++
			}
			if a.UsesNetBIOS {
				nb++
			}
			if a.UsesTLS {
				tls++
			}
			if a.CollectsRouterSSID {
				rs++
			}
			if a.CollectsRouterMAC {
				rm++
			}
			if a.CollectsWifiMAC {
				wm++
			}
			if a.ReceivesDownlinkMACs {
				dl++
			}
		}
		return
	}

	companions := []string{"alexa", "google", "hue", "tuya", "tplink", "meross", "ring", "smartthings", "wyze", "roku"}
	for i := len(apps); i < totalApps; i++ {
		isIoT := false
		// Keep the IoT share on target.
		iotSoFar := 0
		for _, a := range apps {
			if a.IoT {
				iotSoFar++
			}
		}
		remaining := totalApps - len(apps)
		if iotSoFar < iotApps && rng.Intn(remaining) < iotApps-iotSoFar {
			isIoT = true
		}
		a := App{
			Package:     fmt.Sprintf("com.%s.app%04d", pick(rng, isIoT), i),
			IoT:         isIoT,
			Permissions: []Permission{PermInternet},
		}
		mdns, ssdp, nb, tls, rs, rm, wm, dl := count()
		if isIoT {
			a.CompanionFor = companions[rng.Intn(len(companions))]
			a.Permissions = append(a.Permissions, PermMulticast)
			if rng.Intn(3) > 0 {
				a.Permissions = append(a.Permissions, PermFineLocation)
			}
			// Companion apps dominate the discovery users.
			if mdns < quota.mdns && rng.Intn(8) == 0 {
				a.UsesMDNS = true
			}
			if ssdp < quota.ssdp && rng.Intn(12) == 0 {
				a.UsesSSDP = true
			}
			if tls < quota.tls && rng.Intn(2) == 0 {
				a.UsesTLS = true
			}
			if rs < quota.routerSSID && rng.Intn(40) == 0 {
				a.CollectsRouterSSID = true
			}
			if rm < quota.routerMAC && rng.Intn(50) == 0 {
				a.CollectsRouterMAC = true
			}
			if wm < quota.wifiMAC && rng.Intn(90) == 0 {
				a.CollectsWifiMAC = true
			}
			if dl < quota.downlink && rng.Intn(100) == 0 {
				a.ReceivesDownlinkMACs = true
			}
		} else {
			if rng.Intn(4) == 0 {
				a.Permissions = append(a.Permissions, PermMulticast)
			}
			if mdns < quota.mdns && rng.Intn(25) == 0 {
				a.UsesMDNS = true
				a.Permissions = append(a.Permissions, PermMulticast)
			}
			if ssdp < quota.ssdp && rng.Intn(40) == 0 {
				a.UsesSSDP = true
				a.Permissions = append(a.Permissions, PermMulticast)
			}
			if nb < quota.netbios && rng.Intn(300) == 0 {
				a.UsesNetBIOS = true
			}
			if tls < quota.tls && rng.Intn(5) == 0 {
				a.UsesTLS = true
			}
		}
		apps = append(apps, a)
	}

	// Top-up pass: the probabilistic fill can land short of a quota; flip
	// flags on eligible apps until each behaviour count is exact, so the
	// §6.1 headline numbers (36/28/15/13 collectors) reproduce precisely.
	topUp := func(target int, has func(*App) bool, set func(*App), eligible func(*App) bool) {
		n := 0
		for i := range apps {
			if has(&apps[i]) {
				n++
			}
		}
		for i := range apps {
			if n >= target {
				return
			}
			if !has(&apps[i]) && eligible(&apps[i]) {
				set(&apps[i])
				n++
			}
		}
	}
	iot := func(a *App) bool { return a.IoT }
	topUp(quota.routerSSID, func(a *App) bool { return a.CollectsRouterSSID },
		func(a *App) { a.CollectsRouterSSID = true }, iot)
	topUp(quota.routerMAC, func(a *App) bool { return a.CollectsRouterMAC },
		func(a *App) { a.CollectsRouterMAC = true }, iot)
	topUp(quota.wifiMAC, func(a *App) bool { return a.CollectsWifiMAC },
		func(a *App) { a.CollectsWifiMAC = true }, iot)
	topUp(quota.downlink, func(a *App) bool { return a.ReceivesDownlinkMACs },
		func(a *App) { a.ReceivesDownlinkMACs = true }, iot)
	topUp(6, func(a *App) bool { return a.ExfiltratesDeviceMACs },
		func(a *App) { a.ExfiltratesDeviceMACs = true },
		func(a *App) bool { return a.IoT && a.UsesMDNS })
	topUp(quota.mdns, func(a *App) bool { return a.UsesMDNS },
		func(a *App) { a.UsesMDNS = true; a.Permissions = append(a.Permissions, PermMulticast) }, iot)
	topUp(quota.ssdp, func(a *App) bool { return a.UsesSSDP },
		func(a *App) { a.UsesSSDP = true; a.Permissions = append(a.Permissions, PermMulticast) }, iot)
	return apps
}

func pick(rng *rand.Rand, iot bool) string {
	iotNames := []string{"smarthome", "iotctl", "devicehub", "homelink", "plugmate"}
	regNames := []string{"social", "game", "news", "photo", "fitness", "shopping"}
	if iot {
		return iotNames[rng.Intn(len(iotNames))]
	}
	return regNames[rng.Intn(len(regNames))]
}

// Stats summarises dataset behaviour counts for reports and tests.
type Stats struct {
	Total, IoT, Regular                      int
	MDNS, SSDP, NetBIOS, TLS                 int
	RouterSSID, RouterMAC, WifiMAC, Downlink int
	MACExfiltrators                          int
}

// Summarize computes dataset statistics.
func Summarize(apps []App) Stats {
	var s Stats
	s.Total = len(apps)
	for _, a := range apps {
		if a.IoT {
			s.IoT++
		} else {
			s.Regular++
		}
		if a.UsesMDNS {
			s.MDNS++
		}
		if a.UsesSSDP {
			s.SSDP++
		}
		if a.UsesNetBIOS {
			s.NetBIOS++
		}
		if a.UsesTLS {
			s.TLS++
		}
		if a.CollectsRouterSSID {
			s.RouterSSID++
		}
		if a.CollectsRouterMAC {
			s.RouterMAC++
		}
		if a.CollectsWifiMAC {
			s.WifiMAC++
		}
		if a.ReceivesDownlinkMACs {
			s.Downlink++
		}
		if a.ExfiltratesDeviceMACs {
			s.MACExfiltrators++
		}
	}
	return s
}
