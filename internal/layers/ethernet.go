package layers

import (
	"encoding/binary"

	"iotlan/internal/netx"
)

// Ethernet is an Ethernet II frame header, or an 802.3 frame when the
// type/length field holds a length (<= 1500), in which case the payload is
// LLC (decoded as LayerTypeLLC).
type Ethernet struct {
	Src, Dst  netx.MAC
	EtherType uint16 // or length for 802.3
}

// LayerType implements Layer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// Is8023 reports whether the frame is 802.3 (length field) rather than
// Ethernet II, meaning its payload is LLC.
func (e *Ethernet) Is8023() bool { return e.EtherType <= 1500 }

// DecodeFromBytes implements Layer.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return ErrShort
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo implements Serializable.
func (e *Ethernet) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 14+len(payload))
	copy(out[0:6], e.Dst[:])
	copy(out[6:12], e.Src[:])
	et := e.EtherType
	if e.Is8023() {
		// 802.3: the field carries the payload length.
		et = uint16(len(payload))
	}
	binary.BigEndian.PutUint16(out[12:14], et)
	copy(out[14:], payload)
	return out, nil
}

// NextLayerType maps the EtherType to the contained protocol.
func (e *Ethernet) NextLayerType() LayerType {
	if e.Is8023() {
		return LayerTypeLLC
	}
	switch e.EtherType {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeIPv6:
		return LayerTypeIPv6
	case EtherTypeEAPOL:
		return LayerTypeEAPOL
	}
	return LayerTypeUnknown
}

// ARP is an Ethernet/IPv4 ARP packet (RFC 826).
type ARP struct {
	Op       uint16 // 1 request, 2 reply
	SenderHW netx.MAC
	SenderIP [4]byte
	TargetHW netx.MAC
	TargetIP [4]byte
}

// ARP operations.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// LayerType implements Layer.
func (*ARP) LayerType() LayerType { return LayerTypeARP }

// DecodeFromBytes implements Layer.
func (a *ARP) DecodeFromBytes(data []byte) error {
	if len(data) < 28 {
		return ErrShort
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 || binary.BigEndian.Uint16(data[2:4]) != EtherTypeIPv4 {
		return ErrBadVersion
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderHW[:], data[8:14])
	copy(a.SenderIP[:], data[14:18])
	copy(a.TargetHW[:], data[18:24])
	copy(a.TargetIP[:], data[24:28])
	return nil
}

// SerializeTo implements Serializable.
func (a *ARP) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 28+len(payload))
	binary.BigEndian.PutUint16(out[0:2], 1) // hardware type: Ethernet
	binary.BigEndian.PutUint16(out[2:4], EtherTypeIPv4)
	out[4], out[5] = 6, 4 // hlen, plen
	binary.BigEndian.PutUint16(out[6:8], a.Op)
	copy(out[8:14], a.SenderHW[:])
	copy(out[14:18], a.SenderIP[:])
	copy(out[18:24], a.TargetHW[:])
	copy(out[24:28], a.TargetIP[:])
	copy(out[28:], payload)
	return out, nil
}

// EAPOL is an 802.1X EAPOL header; the study only needs its presence and
// packet type (EAPOL-Key handshakes on Wi-Fi associations).
type EAPOL struct {
	Version    uint8
	PacketType uint8 // 3 = EAPOL-Key
	Body       []byte
}

// LayerType implements Layer.
func (*EAPOL) LayerType() LayerType { return LayerTypeEAPOL }

// DecodeFromBytes implements Layer.
func (e *EAPOL) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrShort
	}
	e.Version = data[0]
	e.PacketType = data[1]
	n := int(binary.BigEndian.Uint16(data[2:4]))
	if len(data) < 4+n {
		return ErrShort
	}
	e.Body = data[4 : 4+n]
	return nil
}

// SerializeTo implements Serializable.
func (e *EAPOL) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 4+len(e.Body)+len(payload))
	out[0], out[1] = e.Version, e.PacketType
	binary.BigEndian.PutUint16(out[2:4], uint16(len(e.Body)))
	copy(out[4:], e.Body)
	copy(out[4+len(e.Body):], payload)
	return out, nil
}

// LLC is an 802.2 LLC header; devices in the study emit XID frames
// (DSAP/SSAP 0, control 0xAF/0xBF) for link-layer discovery.
type LLC struct {
	DSAP, SSAP, Control uint8
	Info                []byte
}

// LayerType implements Layer.
func (*LLC) LayerType() LayerType { return LayerTypeLLC }

// IsXID reports whether the control field encodes an XID exchange.
func (l *LLC) IsXID() bool { return l.Control == 0xaf || l.Control == 0xbf }

// DecodeFromBytes implements Layer.
func (l *LLC) DecodeFromBytes(data []byte) error {
	if len(data) < 3 {
		return ErrShort
	}
	l.DSAP, l.SSAP, l.Control = data[0], data[1], data[2]
	l.Info = data[3:]
	return nil
}

// SerializeTo implements Serializable.
func (l *LLC) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 3+len(l.Info)+len(payload))
	out[0], out[1], out[2] = l.DSAP, l.SSAP, l.Control
	copy(out[3:], l.Info)
	copy(out[3+len(l.Info):], payload)
	return out, nil
}
