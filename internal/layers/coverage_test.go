package layers

import (
	"testing"

	"iotlan/internal/netx"
)

func TestLayerTypeStrings(t *testing.T) {
	cases := map[LayerType]string{
		LayerTypeEthernet: "Ethernet",
		LayerTypeARP:      "ARP",
		LayerTypeIPv4:     "IPv4",
		LayerTypeIPv6:     "IPv6",
		LayerTypeUDP:      "UDP",
		LayerTypeTCP:      "TCP",
		LayerTypeICMPv4:   "ICMP",
		LayerTypeICMPv6:   "ICMPv6",
		LayerTypeIGMP:     "IGMP",
		LayerTypeEAPOL:    "EAPOL",
		LayerTypeLLC:      "XID/LLC",
		LayerType(999):    "LayerType(999)",
	}
	for lt, want := range cases {
		if got := lt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", lt, got, want)
		}
	}
}

func TestLayerTypeMethods(t *testing.T) {
	// Every Layer implementation reports its own type.
	checks := []struct {
		l    Layer
		want LayerType
	}{
		{&Ethernet{}, LayerTypeEthernet},
		{&ARP{}, LayerTypeARP},
		{&IPv4{}, LayerTypeIPv4},
		{&IPv6{}, LayerTypeIPv6},
		{&UDP{}, LayerTypeUDP},
		{&TCP{}, LayerTypeTCP},
		{&ICMPv4{}, LayerTypeICMPv4},
		{&ICMPv6{}, LayerTypeICMPv6},
		{&IGMP{}, LayerTypeIGMP},
		{&EAPOL{}, LayerTypeEAPOL},
		{&LLC{}, LayerTypeLLC},
		{new(RawPayload), LayerTypePayload},
	}
	for _, c := range checks {
		if got := c.l.LayerType(); got != c.want {
			t.Errorf("LayerType() = %v, want %v", got, c.want)
		}
	}
}

func TestRawPayloadDecode(t *testing.T) {
	var p RawPayload
	if err := p.DecodeFromBytes([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if string(p) != "abc" {
		t.Fatalf("payload %q", p)
	}
}

func TestIPv6TCPDecode(t *testing.T) {
	src, dst := netx.LinkLocalV6(macA), netx.LinkLocalV6(macB)
	tcp := &TCP{SrcPort: 1000, DstPort: 2000, Flags: TCPSyn}
	tcp.SetAddrs(src, dst)
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtoTCP, Src: src, Dst: dst},
		tcp)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasIP6 || !p.HasTCP {
		t.Fatalf("flags: ip6=%v tcp=%v", p.HasIP6, p.HasTCP)
	}
	if p.SrcIP() != src || p.DstIP() != dst {
		t.Fatalf("addrs %v %v", p.SrcIP(), p.DstIP())
	}
	proto, s, d := p.Transport()
	if proto != "tcp" || s != 1000 || d != 2000 {
		t.Fatalf("transport %s %d %d", proto, s, d)
	}
}

func TestIPv6UDPAndIGMPDecodePaths(t *testing.T) {
	src := netx.LinkLocalV6(macA)
	udp := &UDP{SrcPort: 5353, DstPort: 5353}
	udp.SetAddrs(src, netx.MDNSv6Group)
	frame, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.MDNSv6Group), EtherType: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtoUDP, Src: src, Dst: netx.MDNSv6Group},
		udp, RawPayload("x"))
	p := Decode(frame)
	if !p.HasUDP || string(p.AppPayload) != "x" {
		t.Fatalf("v6 UDP decode: %+v", p)
	}
	if p.L3Name() != "UDP" {
		t.Fatalf("L3Name %q", p.L3Name())
	}

	// IGMPv2 leave path.
	g := &IGMP{Type: IGMPLeave, Group: netx.SSDPGroup}
	frame2, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.AllNodesV4), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoIGMP, Src: ipA, Dst: netx.AllNodesV4},
		g)
	p2 := Decode(frame2)
	if !p2.HasIGMP || p2.IGMP.Type != IGMPLeave || p2.IGMP.Group != netx.SSDPGroup {
		t.Fatalf("IGMP leave decode: %+v", p2.IGMP)
	}
	if p2.L3Name() != "IGMP" {
		t.Fatalf("L3Name %q", p2.L3Name())
	}
}

func TestL3NameBranches(t *testing.T) {
	// ICMPv4
	icmp, _ := Serialize(
		&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoICMP, Src: ipA, Dst: ipB},
		&ICMPv4{Type: ICMPv4Echo})
	if got := Decode(icmp).L3Name(); got != "ICMP" {
		t.Errorf("icmp L3Name %q", got)
	}
	// ICMPv6
	src := netx.LinkLocalV6(macA)
	icmp6, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.AllNodesV6), EtherType: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtoICMPv6, Src: src, Dst: netx.AllNodesV6},
		&ICMPv6{Type: ICMPv6EchoRequest})
	if got := Decode(icmp6).L3Name(); got != "ICMPv6" {
		t.Errorf("icmp6 L3Name %q", got)
	}
	// Unknown L3 protocol (GRE).
	unk, _ := Serialize(
		&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
		&IPv4{Protocol: 47, Src: ipA, Dst: ipB},
		RawPayload{0, 0})
	if got := Decode(unk).L3Name(); got != "UNKNOWN-L3" {
		t.Errorf("unknown-proto L3Name %q", got)
	}
	// TCP
	tcp := &TCP{SrcPort: 1, DstPort: 2, Flags: TCPSyn}
	tcp.SetAddrs(ipA, ipB)
	tf, _ := Serialize(&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoTCP, Src: ipA, Dst: ipB}, tcp)
	if got := Decode(tf).L3Name(); got != "TCP" {
		t.Errorf("tcp L3Name %q", got)
	}
}

func TestIsLocalNonEthernet(t *testing.T) {
	p := Decode(nil)
	if p.IsLocal() {
		t.Fatal("empty packet flagged local")
	}
}

func TestEAPOLTruncatedBody(t *testing.T) {
	var e EAPOL
	// Claims 10-byte body but supplies 2.
	if err := e.DecodeFromBytes([]byte{2, 3, 0, 10, 1, 2}); err == nil {
		t.Fatal("truncated EAPOL accepted")
	}
}

func TestARPBadHardwareType(t *testing.T) {
	raw := make([]byte, 28)
	raw[0], raw[1] = 0, 2 // hardware type 2
	var a ARP
	if err := a.DecodeFromBytes(raw); err == nil {
		t.Fatal("non-ethernet ARP accepted")
	}
}

func TestIPv6PayloadBounds(t *testing.T) {
	ip := &IPv6{}
	data := make([]byte, 40)
	data[0] = 0x60
	data[4], data[5] = 0xff, 0xff // claims huge length
	if err := ip.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if got := ip.Payload(data); len(got) != 0 {
		t.Fatalf("payload length %d for truncated packet", len(got))
	}
}

func TestUDPPayloadBounds(t *testing.T) {
	u := &UDP{}
	seg := make([]byte, 8)
	seg[4], seg[5] = 0, 4 // length 4 < header size
	if err := u.DecodeFromBytes(seg); err != nil {
		t.Fatal(err)
	}
	if got := u.Payload(seg); len(got) != 0 {
		t.Fatalf("bogus-length payload %d", len(got))
	}
}

func TestSerializeHelperOrder(t *testing.T) {
	// Serialize applies outermost-first: payload must be innermost.
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
		RawPayload("inner"))
	if err != nil {
		t.Fatal(err)
	}
	if string(frame[14:]) != "inner" {
		t.Fatalf("frame body %q", frame[14:])
	}
}
