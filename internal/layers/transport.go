package layers

import (
	"encoding/binary"
	"net/netip"

	"iotlan/internal/netx"
)

// UDP is a UDP header (RFC 768). Src/Dst addresses must be set before
// SerializeTo so the pseudo-header checksum can be computed; on decode they
// are provided by the enclosing IP layer via SetAddrs.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	srcIP, dstIP     netip.Addr
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// SetAddrs supplies the IP endpoints used for the checksum pseudo-header.
func (u *UDP) SetAddrs(src, dst netip.Addr) { u.srcIP, u.dstIP = src, dst }

// DecodeFromBytes implements Layer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrShort
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	return nil
}

// Payload returns the datagram payload, bounded by the length field.
func (u *UDP) Payload(data []byte) []byte {
	end := int(u.Length)
	if end > len(data) || end < 8 {
		end = len(data)
	}
	return data[8:end]
}

// SerializeTo implements Serializable.
func (u *UDP) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint16(out[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], u.DstPort)
	binary.BigEndian.PutUint16(out[4:6], uint16(len(out)))
	copy(out[8:], payload)
	if u.srcIP.IsValid() && u.dstIP.IsValid() {
		sum := netx.PseudoHeaderSum(u.srcIP, u.dstIP, IPProtoUDP, len(out))
		cs := netx.Checksum(out, sum)
		if cs == 0 {
			cs = 0xffff
		}
		binary.BigEndian.PutUint16(out[6:8], cs)
	}
	return out, nil
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a TCP header (RFC 793) without options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	dataOffset       int
	srcIP, dstIP     netip.Addr
}

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// SetAddrs supplies the IP endpoints used for the checksum pseudo-header.
func (t *TCP) SetAddrs(src, dst netip.Addr) { t.srcIP, t.dstIP = src, dst }

// FlagSet reports whether all bits in f are set.
func (t *TCP) FlagSet(f uint8) bool { return t.Flags&f == f }

// DecodeFromBytes implements Layer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrShort
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.dataOffset = int(data[12]>>4) * 4
	if t.dataOffset < 20 || len(data) < t.dataOffset {
		return ErrShort
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	return nil
}

// Payload returns the segment payload.
func (t *TCP) Payload(data []byte) []byte {
	off := t.dataOffset
	if off == 0 {
		off = 20
	}
	if off > len(data) {
		return nil
	}
	return data[off:]
}

// SerializeTo implements Serializable.
func (t *TCP) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(out[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(out[2:4], t.DstPort)
	binary.BigEndian.PutUint32(out[4:8], t.Seq)
	binary.BigEndian.PutUint32(out[8:12], t.Ack)
	out[12] = 5 << 4
	out[13] = t.Flags
	w := t.Window
	if w == 0 {
		w = 65535
	}
	binary.BigEndian.PutUint16(out[14:16], w)
	copy(out[20:], payload)
	if t.srcIP.IsValid() && t.dstIP.IsValid() {
		sum := netx.PseudoHeaderSum(t.srcIP, t.dstIP, IPProtoTCP, len(out))
		binary.BigEndian.PutUint16(out[16:18], netx.Checksum(out, sum))
	}
	return out, nil
}

// ICMPv4 message types used in the study.
const (
	ICMPv4EchoReply   = 0
	ICMPv4Unreachable = 3
	ICMPv4Echo        = 8
)

// ICMPv4 is an ICMP message (RFC 792).
type ICMPv4 struct {
	Type, Code uint8
	ID, Seq    uint16
	Data       []byte
}

// LayerType implements Layer.
func (*ICMPv4) LayerType() LayerType { return LayerTypeICMPv4 }

// DecodeFromBytes implements Layer.
func (ic *ICMPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrShort
	}
	ic.Type, ic.Code = data[0], data[1]
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.Data = data[8:]
	return nil
}

// SerializeTo implements Serializable.
func (ic *ICMPv4) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 8+len(ic.Data)+len(payload))
	out[0], out[1] = ic.Type, ic.Code
	binary.BigEndian.PutUint16(out[4:6], ic.ID)
	binary.BigEndian.PutUint16(out[6:8], ic.Seq)
	copy(out[8:], ic.Data)
	copy(out[8+len(ic.Data):], payload)
	binary.BigEndian.PutUint16(out[2:4], netx.Checksum(out, 0))
	return out, nil
}

// ICMPv6 message types used in the study (NDP per RFC 4861).
const (
	ICMPv6EchoRequest     = 128
	ICMPv6EchoReply       = 129
	ICMPv6RouterSolicit   = 133
	ICMPv6RouterAdvert    = 134
	ICMPv6NeighborSolicit = 135
	ICMPv6NeighborAdvert  = 136
	ICMPv6MLDv2Report     = 143
)

// ICMPv6 is an ICMPv6 message. For neighbor solicitation/advertisement the
// Target field holds the subject address and LinkAddr the source/target
// link-layer address option — the MAC exposure channel §5.1 describes.
type ICMPv6 struct {
	Type, Code uint8
	Target     netip.Addr
	LinkAddr   netx.MAC
	HasLink    bool
	Data       []byte
}

// LayerType implements Layer.
func (*ICMPv6) LayerType() LayerType { return LayerTypeICMPv6 }

// DecodeFromBytes implements Layer.
func (ic *ICMPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 4 {
		return ErrShort
	}
	ic.Type, ic.Code = data[0], data[1]
	ic.Data = data[4:]
	ic.HasLink = false
	if ic.Type == ICMPv6NeighborSolicit || ic.Type == ICMPv6NeighborAdvert {
		if len(data) < 24 {
			return ErrShort
		}
		ic.Target = netip.AddrFrom16([16]byte(data[8:24]))
		// Options: type 1 (source LL addr) or 2 (target LL addr), len 1 (8B).
		opts := data[24:]
		for len(opts) >= 8 {
			if (opts[0] == 1 || opts[0] == 2) && opts[1] == 1 {
				copy(ic.LinkAddr[:], opts[2:8])
				ic.HasLink = true
			}
			n := int(opts[1]) * 8
			if n == 0 || n > len(opts) {
				break
			}
			opts = opts[n:]
		}
	}
	return nil
}

// SerializeTo implements Serializable.
func (ic *ICMPv6) SerializeTo(payload []byte) ([]byte, error) {
	body := ic.Data
	if ic.Type == ICMPv6NeighborSolicit || ic.Type == ICMPv6NeighborAdvert {
		b := make([]byte, 20)
		tgt := ic.Target.As16()
		copy(b[4:20], tgt[:])
		if ic.HasLink {
			opt := make([]byte, 8)
			if ic.Type == ICMPv6NeighborSolicit {
				opt[0] = 1
			} else {
				opt[0] = 2
			}
			opt[1] = 1
			copy(opt[2:8], ic.LinkAddr[:])
			b = append(b, opt...)
		}
		body = b
	}
	out := make([]byte, 4+len(body)+len(payload))
	out[0], out[1] = ic.Type, ic.Code
	copy(out[4:], body)
	copy(out[4+len(body):], payload)
	// Checksum over pseudo-header is filled by the stack; a plain sum keeps
	// offline-constructed packets self-consistent.
	binary.BigEndian.PutUint16(out[2:4], netx.Checksum(out, 0))
	return out, nil
}

// IGMP group membership message types.
const (
	IGMPQuery    = 0x11
	IGMPv2Report = 0x16
	IGMPv3Report = 0x22
	IGMPLeave    = 0x17
)

// IGMP is an IGMPv2/v3 membership message (RFC 2236 / 3376, v3 reports
// carry a single group record, which covers the study's traffic).
type IGMP struct {
	Type  uint8
	Group netip.Addr
}

// LayerType implements Layer.
func (*IGMP) LayerType() LayerType { return LayerTypeIGMP }

// DecodeFromBytes implements Layer.
func (g *IGMP) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return ErrShort
	}
	g.Type = data[0]
	if g.Type == IGMPv3Report {
		if len(data) < 16 {
			return ErrShort
		}
		g.Group = netip.AddrFrom4([4]byte(data[12:16]))
	} else {
		g.Group = netip.AddrFrom4([4]byte(data[4:8]))
	}
	return nil
}

// SerializeTo implements Serializable.
func (g *IGMP) SerializeTo(payload []byte) ([]byte, error) {
	var out []byte
	grp := g.Group.As4()
	if g.Type == IGMPv3Report {
		out = make([]byte, 16+len(payload))
		out[0] = g.Type
		binary.BigEndian.PutUint16(out[6:8], 1) // one group record
		out[8] = 4                              // CHANGE_TO_EXCLUDE (join)
		copy(out[12:16], grp[:])
	} else {
		out = make([]byte, 8+len(payload))
		out[0] = g.Type
		copy(out[4:8], grp[:])
	}
	binary.BigEndian.PutUint16(out[2:4], netx.Checksum(out, 0))
	copy(out[len(out)-len(payload):], payload)
	return out, nil
}
