package layers

import "testing"

// FuzzDecode asserts the full-frame decoder is total: it is the first thing
// that touches every frame the chaos corruptor writes onto the LAN, so
// truncated and bit-flipped Ethernet/IP/transport headers must never panic.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Decode(data)
		if p.Err != nil {
			return
		}
		if p.HasIP4 || p.HasIP6 {
			_ = p.SrcIP()
			_ = p.DstIP()
		}
		_ = p.AppPayload
	})
}
