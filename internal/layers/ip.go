package layers

import (
	"encoding/binary"
	"net/netip"

	"iotlan/internal/netx"
)

// IPv4 is an IPv4 header (RFC 791) without options.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr
	// Length is filled in on decode; on serialize it is computed.
	Length uint16
}

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements Layer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return ErrShort
	}
	if data[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return ErrShort
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	return nil
}

// HeaderLen is the fixed header size we emit (no options).
const ipv4HeaderLen = 20

// Payload returns the bytes after the header, bounded by the total length.
func (ip *IPv4) Payload(data []byte) []byte {
	ihl := int(data[0]&0x0f) * 4
	end := int(ip.Length)
	if end > len(data) || end < ihl {
		end = len(data)
	}
	return data[ihl:end]
}

// SerializeTo implements Serializable.
func (ip *IPv4) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, ipv4HeaderLen+len(payload))
	out[0] = 0x45
	out[1] = ip.TOS
	binary.BigEndian.PutUint16(out[2:4], uint16(len(out)))
	binary.BigEndian.PutUint16(out[4:6], ip.ID)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	out[8] = ttl
	out[9] = ip.Protocol
	// An invalid Src encodes as 0.0.0.0 — the DHCP client's state before
	// it has an address.
	if ip.Src.IsValid() {
		src := ip.Src.As4()
		copy(out[12:16], src[:])
	}
	if ip.Dst.IsValid() {
		dst := ip.Dst.As4()
		copy(out[16:20], dst[:])
	}
	cs := netx.Checksum(out[:ipv4HeaderLen], 0)
	binary.BigEndian.PutUint16(out[10:12], cs)
	copy(out[ipv4HeaderLen:], payload)
	return out, nil
}

// NextLayerType maps the protocol field to the contained layer.
func (ip *IPv4) NextLayerType() LayerType { return ipProtoLayer(ip.Protocol) }

func ipProtoLayer(p uint8) LayerType {
	switch p {
	case IPProtoICMP:
		return LayerTypeICMPv4
	case IPProtoIGMP:
		return LayerTypeIGMP
	case IPProtoTCP:
		return LayerTypeTCP
	case IPProtoUDP:
		return LayerTypeUDP
	case IPProtoICMPv6:
		return LayerTypeICMPv6
	}
	return LayerTypeUnknown
}

// IPv6 is an IPv6 fixed header (RFC 8200); extension headers are not
// modelled (the study's IPv6 traffic is NDP, mDNS and Matter over UDP).
type IPv6 struct {
	TrafficClass uint8
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
	Length       uint16
}

// LayerType implements Layer.
func (*IPv6) LayerType() LayerType { return LayerTypeIPv6 }

// DecodeFromBytes implements Layer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < 40 {
		return ErrShort
	}
	if data[0]>>4 != 6 {
		return ErrBadVersion
	}
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.Length = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	return nil
}

// Payload returns the bytes after the fixed header, bounded by length.
func (ip *IPv6) Payload(data []byte) []byte {
	end := 40 + int(ip.Length)
	if end > len(data) {
		end = len(data)
	}
	return data[40:end]
}

// SerializeTo implements Serializable.
func (ip *IPv6) SerializeTo(payload []byte) ([]byte, error) {
	out := make([]byte, 40+len(payload))
	out[0] = 0x60 | ip.TrafficClass>>4
	binary.BigEndian.PutUint16(out[4:6], uint16(len(payload)))
	out[6] = ip.NextHeader
	hl := ip.HopLimit
	if hl == 0 {
		hl = 255
	}
	out[7] = hl
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(out[8:24], src[:])
	copy(out[24:40], dst[:])
	copy(out[40:], payload)
	return out, nil
}

// NextLayerType maps the next-header field to the contained layer.
func (ip *IPv6) NextLayerType() LayerType { return ipProtoLayer(ip.NextHeader) }
