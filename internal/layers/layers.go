// Package layers implements byte-accurate encoding and decoding of the
// link-, network- and transport-layer protocols observed in the study:
// Ethernet, ARP, IPv4, IPv6, UDP, TCP, ICMPv4, ICMPv6 (NDP), IGMP, EAPOL and
// LLC/XID. The design follows gopacket: each protocol is a Layer with
// DecodeFromBytes and SerializeTo, and Packet lazily assembles a layer stack
// from raw frame bytes.
package layers

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType uint16

// Layer types for every protocol the decoder understands.
const (
	LayerTypeUnknown LayerType = iota
	LayerTypeEthernet
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeIPv6
	LayerTypeUDP
	LayerTypeTCP
	LayerTypeICMPv4
	LayerTypeICMPv6
	LayerTypeIGMP
	LayerTypeEAPOL
	LayerTypeLLC
	LayerTypePayload
)

var layerTypeNames = map[LayerType]string{
	LayerTypeUnknown:  "Unknown",
	LayerTypeEthernet: "Ethernet",
	LayerTypeARP:      "ARP",
	LayerTypeIPv4:     "IPv4",
	LayerTypeIPv6:     "IPv6",
	LayerTypeUDP:      "UDP",
	LayerTypeTCP:      "TCP",
	LayerTypeICMPv4:   "ICMP",
	LayerTypeICMPv6:   "ICMPv6",
	LayerTypeIGMP:     "IGMP",
	LayerTypeEAPOL:    "EAPOL",
	LayerTypeLLC:      "XID/LLC",
	LayerTypePayload:  "Payload",
}

// String returns the protocol name used in reports (matches Figure 2 labels).
func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", uint16(t))
}

// Layer is one decoded protocol layer.
type Layer interface {
	// LayerType identifies the protocol.
	LayerType() LayerType
	// DecodeFromBytes parses the layer from data.
	DecodeFromBytes(data []byte) error
	// SerializeTo appends the wire form of the layer (with payload already
	// in buf semantics handled by the caller); see Serialize.
	SerializeTo(payload []byte) ([]byte, error)
}

// Common decode errors.
var (
	ErrShort       = errors.New("layers: truncated packet")
	ErrBadChecksum = errors.New("layers: bad checksum")
	ErrBadVersion  = errors.New("layers: bad version")
)

// EtherTypes and IP protocol numbers used across the package.
const (
	EtherTypeIPv4  = 0x0800
	EtherTypeARP   = 0x0806
	EtherTypeIPv6  = 0x86dd
	EtherTypeEAPOL = 0x888e

	IPProtoICMP   = 1
	IPProtoIGMP   = 2
	IPProtoTCP    = 6
	IPProtoUDP    = 17
	IPProtoICMPv6 = 58
)

// Serialize builds a frame from layers outermost-first, e.g.
// Serialize(eth, ip, udp, payload). Each layer's SerializeTo receives the
// serialized bytes of everything after it so it can fill lengths/checksums.
func Serialize(ls ...Serializable) ([]byte, error) {
	var payload []byte
	for i := len(ls) - 1; i >= 0; i-- {
		out, err := ls[i].SerializeTo(payload)
		if err != nil {
			return nil, err
		}
		payload = out
	}
	return payload, nil
}

// Serializable is the encoding half of Layer; RawPayload also satisfies it.
type Serializable interface {
	SerializeTo(payload []byte) ([]byte, error)
}

// RawPayload is an opaque application payload at the bottom of a stack.
type RawPayload []byte

// LayerType implements Layer.
func (RawPayload) LayerType() LayerType { return LayerTypePayload }

// DecodeFromBytes implements Layer.
func (p *RawPayload) DecodeFromBytes(data []byte) error {
	*p = RawPayload(data)
	return nil
}

// SerializeTo implements Serializable.
func (p RawPayload) SerializeTo(payload []byte) ([]byte, error) {
	return append([]byte(p), payload...), nil
}
