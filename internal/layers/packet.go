package layers

import (
	"net/netip"

	"iotlan/internal/netx"
)

// Packet is a fully decoded frame: the layer stack plus convenience accessors
// used throughout the capture-analysis pipeline. Decoding is eager (the
// analysis touches every layer anyway) but allocation-light: the common
// layers live inline in the struct.
type Packet struct {
	Data []byte

	Eth    Ethernet
	HasEth bool

	ARP    ARP
	HasARP bool

	IP4    IPv4
	HasIP4 bool
	IP6    IPv6
	HasIP6 bool

	UDP    UDP
	HasUDP bool
	TCP    TCP
	HasTCP bool

	ICMP4    ICMPv4
	HasICMP4 bool
	ICMP6    ICMPv6
	HasICMP6 bool

	IGMP    IGMP
	HasIGMP bool

	EAPOL    EAPOL
	HasEAPOL bool

	LLC    LLC
	HasLLC bool

	// AppPayload is the transport payload (UDP datagram / TCP segment data),
	// nil when there is no transport layer or no payload.
	AppPayload []byte

	// Err records the first decode failure, mirroring gopacket's ErrorLayer.
	Err error
}

// Decode parses an Ethernet frame into a Packet.
func Decode(frame []byte) *Packet {
	p := &Packet{}
	p.DecodeInto(frame)
	return p
}

// DecodeInto re-parses a frame into an existing Packet, for
// DecodingLayerParser-style reuse in hot loops (see the ablation bench).
func (p *Packet) DecodeInto(frame []byte) {
	*p = Packet{Data: frame}
	if err := p.Eth.DecodeFromBytes(frame); err != nil {
		p.Err = err
		return
	}
	p.HasEth = true
	body := frame[14:]
	switch p.Eth.NextLayerType() {
	case LayerTypeARP:
		if err := p.ARP.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasARP = true
	case LayerTypeEAPOL:
		if err := p.EAPOL.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasEAPOL = true
	case LayerTypeLLC:
		if err := p.LLC.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasLLC = true
	case LayerTypeIPv4:
		if err := p.IP4.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasIP4 = true
		p.decodeTransport(p.IP4.NextLayerType(), p.IP4.Payload(body), p.IP4.Src, p.IP4.Dst)
	case LayerTypeIPv6:
		if err := p.IP6.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasIP6 = true
		p.decodeTransport(p.IP6.NextLayerType(), p.IP6.Payload(body), p.IP6.Src, p.IP6.Dst)
	}
}

func (p *Packet) decodeTransport(t LayerType, body []byte, src, dst netip.Addr) {
	switch t {
	case LayerTypeUDP:
		if err := p.UDP.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.UDP.SetAddrs(src, dst)
		p.HasUDP = true
		p.AppPayload = p.UDP.Payload(body)
	case LayerTypeTCP:
		if err := p.TCP.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.TCP.SetAddrs(src, dst)
		p.HasTCP = true
		p.AppPayload = p.TCP.Payload(body)
	case LayerTypeICMPv4:
		if err := p.ICMP4.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasICMP4 = true
	case LayerTypeICMPv6:
		if err := p.ICMP6.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasICMP6 = true
	case LayerTypeIGMP:
		if err := p.IGMP.DecodeFromBytes(body); err != nil {
			p.Err = err
			return
		}
		p.HasIGMP = true
	}
}

// HasIP reports whether the packet has a network layer.
func (p *Packet) HasIP() bool { return p.HasIP4 || p.HasIP6 }

// SrcIP returns the network-layer source, or the zero Addr for non-IP.
func (p *Packet) SrcIP() netip.Addr {
	switch {
	case p.HasIP4:
		return p.IP4.Src
	case p.HasIP6:
		return p.IP6.Src
	}
	return netip.Addr{}
}

// DstIP returns the network-layer destination, or the zero Addr for non-IP.
func (p *Packet) DstIP() netip.Addr {
	switch {
	case p.HasIP4:
		return p.IP4.Dst
	case p.HasIP6:
		return p.IP6.Dst
	}
	return netip.Addr{}
}

// Transport returns ("udp"|"tcp"|""), src port, dst port.
func (p *Packet) Transport() (proto string, src, dst uint16) {
	switch {
	case p.HasUDP:
		return "udp", p.UDP.SrcPort, p.UDP.DstPort
	case p.HasTCP:
		return "tcp", p.TCP.SrcPort, p.TCP.DstPort
	}
	return "", 0, 0
}

// IsLocal applies the Appendix C.1 local-traffic filter: local unicast IP
// (both endpoints private), any multicast/broadcast destination, or non-IP
// unicast.
func (p *Packet) IsLocal() bool {
	if !p.HasEth {
		return false
	}
	if p.Eth.Dst.IsMulticast() { // covers broadcast too (I/G bit)
		return true
	}
	if !p.HasIP() {
		return true // non-IP unicast (ARP replies, EAPOL, LLC)
	}
	return netx.IsPrivate(p.SrcIP()) && netx.IsPrivate(p.DstIP())
}

// L3Name returns the report label for the packet's lowest interesting layer,
// matching Figure 2's x-axis vocabulary for non-application protocols.
func (p *Packet) L3Name() string {
	switch {
	case p.HasARP:
		return "ARP"
	case p.HasEAPOL:
		return "EAPOL"
	case p.HasLLC:
		return "XID/LLC"
	case p.HasICMP4:
		return "ICMP"
	case p.HasICMP6:
		return "ICMPv6"
	case p.HasIGMP:
		return "IGMP"
	case p.HasUDP:
		return "UDP"
	case p.HasTCP:
		return "TCP"
	case p.HasIP():
		return "UNKNOWN-L3"
	}
	return "UNKNOWN-L2"
}
