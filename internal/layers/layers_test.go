package layers

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"iotlan/internal/netx"
)

var (
	macA = netx.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	macB = netx.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
	ipA  = netip.MustParseAddr("192.168.10.10")
	ipB  = netip.MustParseAddr("192.168.10.11")
)

func TestEthernetRoundTrip(t *testing.T) {
	e := &Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4}
	frame, err := Serialize(e, RawPayload("hello"))
	if err != nil {
		t.Fatal(err)
	}
	var got Ethernet
	if err := got.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if got.Src != macA || got.Dst != macB || got.EtherType != EtherTypeIPv4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !bytes.Equal(frame[14:], []byte("hello")) {
		t.Fatal("payload lost")
	}
}

func TestEthernet8023LLC(t *testing.T) {
	e := &Ethernet{Src: macA, Dst: netx.Broadcast, EtherType: 0} // 802.3
	llc := &LLC{DSAP: 0, SSAP: 0, Control: 0xaf}
	frame, err := Serialize(e, llc)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasLLC || !p.LLC.IsXID() {
		t.Fatalf("LLC/XID not decoded: %+v", p)
	}
	if p.L3Name() != "XID/LLC" {
		t.Fatalf("L3Name = %q", p.L3Name())
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARP{Op: ARPRequest, SenderHW: macA, SenderIP: [4]byte{192, 168, 10, 10}, TargetIP: [4]byte{192, 168, 10, 11}}
	frame, err := Serialize(&Ethernet{Src: macA, Dst: netx.Broadcast, EtherType: EtherTypeARP}, a)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasARP || p.ARP.Op != ARPRequest || p.ARP.SenderHW != macA {
		t.Fatalf("ARP decode: %+v", p.ARP)
	}
	if !p.IsLocal() {
		t.Fatal("broadcast ARP should be local")
	}
}

func TestIPv4UDPRoundTrip(t *testing.T) {
	udp := &UDP{SrcPort: 5353, DstPort: 5353}
	udp.SetAddrs(ipA, netx.MDNSv4Group)
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.MDNSv4Group), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoUDP, Src: ipA, Dst: netx.MDNSv4Group, TTL: 255},
		udp, RawPayload("mdns-query"))
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasIP4 || !p.HasUDP {
		t.Fatalf("decode flags: %+v", p)
	}
	if p.UDP.SrcPort != 5353 || p.UDP.DstPort != 5353 {
		t.Fatalf("ports: %d→%d", p.UDP.SrcPort, p.UDP.DstPort)
	}
	if string(p.AppPayload) != "mdns-query" {
		t.Fatalf("payload %q", p.AppPayload)
	}
	if p.DstIP() != netx.MDNSv4Group {
		t.Fatalf("dst %v", p.DstIP())
	}
	// IPv4 header checksum must verify.
	if netx.Checksum(frame[14:34], 0) != 0 {
		t.Fatal("IPv4 header checksum does not verify")
	}
}

func TestIPv4TCPRoundTrip(t *testing.T) {
	tcp := &TCP{SrcPort: 40000, DstPort: 8009, Seq: 1000, Ack: 2000, Flags: TCPSyn | TCPAck}
	tcp.SetAddrs(ipA, ipB)
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoTCP, Src: ipA, Dst: ipB},
		tcp, RawPayload("x"))
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasTCP || !p.TCP.FlagSet(TCPSyn|TCPAck) || p.TCP.Seq != 1000 {
		t.Fatalf("TCP decode: %+v", p.TCP)
	}
	if string(p.AppPayload) != "x" {
		t.Fatalf("payload %q", p.AppPayload)
	}
	proto, s, d := p.Transport()
	if proto != "tcp" || s != 40000 || d != 8009 {
		t.Fatalf("Transport() = %s %d %d", proto, s, d)
	}
}

func TestIPv6ICMPv6NeighborAdvert(t *testing.T) {
	src := netx.LinkLocalV6(macA)
	ic := &ICMPv6{Type: ICMPv6NeighborAdvert, Target: src, LinkAddr: macA, HasLink: true}
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.AllNodesV6), EtherType: EtherTypeIPv6},
		&IPv6{NextHeader: IPProtoICMPv6, Src: src, Dst: netx.AllNodesV6},
		ic)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasICMP6 {
		t.Fatal("no ICMPv6")
	}
	if !p.ICMP6.HasLink || p.ICMP6.LinkAddr != macA {
		t.Fatalf("link-layer option lost: %+v", p.ICMP6)
	}
	if p.ICMP6.Target != src {
		t.Fatalf("target %v", p.ICMP6.Target)
	}
}

func TestIGMPv3Report(t *testing.T) {
	g := &IGMP{Type: IGMPv3Report, Group: netx.SSDPGroup}
	frame, err := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.IGMPGroup), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoIGMP, Src: ipA, Dst: netx.IGMPGroup},
		g)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasIGMP || p.IGMP.Group != netx.SSDPGroup {
		t.Fatalf("IGMP decode: %+v", p.IGMP)
	}
}

func TestEAPOLRoundTrip(t *testing.T) {
	e := &EAPOL{Version: 2, PacketType: 3, Body: []byte{1, 2, 3, 4}}
	frame, err := Serialize(&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeEAPOL}, e)
	if err != nil {
		t.Fatal(err)
	}
	p := Decode(frame)
	if !p.HasEAPOL || p.EAPOL.PacketType != 3 || len(p.EAPOL.Body) != 4 {
		t.Fatalf("EAPOL decode: %+v", p.EAPOL)
	}
	if p.L3Name() != "EAPOL" {
		t.Fatalf("L3Name = %q", p.L3Name())
	}
}

func TestLocalTrafficFilter(t *testing.T) {
	mk := func(src, dst netip.Addr) *Packet {
		udp := &UDP{SrcPort: 1, DstPort: 2}
		udp.SetAddrs(src, dst)
		frame, _ := Serialize(
			&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4},
			&IPv4{Protocol: IPProtoUDP, Src: src, Dst: dst}, udp)
		return Decode(frame)
	}
	if !mk(ipA, ipB).IsLocal() {
		t.Fatal("private↔private not local")
	}
	if mk(ipA, netip.MustParseAddr("52.94.0.1")).IsLocal() {
		t.Fatal("private→public flagged local")
	}
}

func TestDecodeTruncated(t *testing.T) {
	for n := 0; n < 14; n++ {
		p := Decode(make([]byte, n))
		if p.Err == nil {
			t.Fatalf("no error for %d-byte frame", n)
		}
	}
	// Truncated IP header after valid Ethernet.
	frame, _ := Serialize(&Ethernet{Src: macA, Dst: macB, EtherType: EtherTypeIPv4}, RawPayload("abc"))
	if p := Decode(frame); p.Err == nil {
		t.Fatal("truncated IPv4 accepted")
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data) // must not panic on any input
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumVerifies(t *testing.T) {
	udp := &UDP{SrcPort: 9999, DstPort: 9999}
	udp.SetAddrs(ipA, ipB)
	seg, err := udp.SerializeTo([]byte("tplink"))
	if err != nil {
		t.Fatal(err)
	}
	sum := netx.PseudoHeaderSum(ipA, ipB, IPProtoUDP, len(seg))
	if netx.Checksum(seg, sum) != 0 {
		t.Fatal("UDP checksum does not verify against pseudo-header")
	}
}

func TestDecodeIntoReuse(t *testing.T) {
	udp := &UDP{SrcPort: 1900, DstPort: 1900}
	udp.SetAddrs(ipA, netx.SSDPGroup)
	frame1, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.SSDPGroup), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoUDP, Src: ipA, Dst: netx.SSDPGroup}, udp, RawPayload("NOTIFY"))
	frame2, _ := Serialize(&Ethernet{Src: macB, Dst: macA, EtherType: EtherTypeARP},
		&ARP{Op: ARPReply, SenderHW: macB})
	var p Packet
	p.DecodeInto(frame1)
	if !p.HasUDP {
		t.Fatal("first decode missed UDP")
	}
	p.DecodeInto(frame2)
	if p.HasUDP || !p.HasARP {
		t.Fatalf("stale state after reuse: %+v", p)
	}
}

func BenchmarkDecodeAllocPerPacket(b *testing.B) {
	udp := &UDP{SrcPort: 5353, DstPort: 5353}
	udp.SetAddrs(ipA, netx.MDNSv4Group)
	frame, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.MDNSv4Group), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoUDP, Src: ipA, Dst: netx.MDNSv4Group}, udp,
		RawPayload(make([]byte, 100)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Decode(frame)
	}
}

func BenchmarkDecodeReuse(b *testing.B) {
	udp := &UDP{SrcPort: 5353, DstPort: 5353}
	udp.SetAddrs(ipA, netx.MDNSv4Group)
	frame, _ := Serialize(
		&Ethernet{Src: macA, Dst: netx.MulticastMAC(netx.MDNSv4Group), EtherType: EtherTypeIPv4},
		&IPv4{Protocol: IPProtoUDP, Src: ipA, Dst: netx.MDNSv4Group}, udp,
		RawPayload(make([]byte, 100)))
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.DecodeInto(frame)
	}
}
