package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"iotlan/internal/obs"
)

// This file is the repo's single operational HTTP surface. iotserve mounts
// it on the service mux; iotrepro's -http flag mounts the same endpoints
// (replacing its earlier ad-hoc DefaultServeMux listener, which had no
// read/write timeouts and a second HTTP surface of its own):
//
//	/metrics               Prometheus text exposition (version 0.0.4)
//	/debug/metrics.json    labeled obs registries as deterministic JSON
//	/debug/flightrecorder  recent + slowest + errored request traces
//	                       as Chrome trace JSON (server muxes only)
//	/healthz               liveness + drain state
//	/debug/vars            expvar (Go runtime counters + registries)
//	/debug/pprof           CPU/heap/goroutine profiles

// MetricsSource names one obs registry for /metrics. Registry covers the
// common case; Lazy defers resolution to request time for registries that
// do not exist yet when the mux is built (iotrepro's lab telemetry is only
// created once the run starts). A source resolving to nil renders as null.
type MetricsSource struct {
	Name     string
	Registry *obs.Registry
	Lazy     func() *obs.Registry
}

func (src MetricsSource) resolve() *obs.Registry {
	if src.Registry != nil {
		return src.Registry
	}
	if src.Lazy != nil {
		return src.Lazy()
	}
	return nil
}

// DebugMux returns a fresh mux carrying only the operational endpoints —
// what iotrepro -http serves.
func DebugMux(sources ...MetricsSource) *http.ServeMux {
	mux := http.NewServeMux()
	registerDebug(mux, nil, sources...)
	return mux
}

// RegisterDebug mounts the operational endpoints onto an existing mux. The
// server, when non-nil, contributes its own registry and drain state.
func RegisterDebug(mux *http.ServeMux, s *Server, extra ...MetricsSource) {
	registerDebug(mux, s, extra...)
}

var expvarPublish sync.Once

func registerDebug(mux *http.ServeMux, s *Server, extra ...MetricsSource) {
	sources := append([]MetricsSource(nil), extra...)
	if s != nil {
		sources = append([]MetricsSource{{Name: "serve", Registry: s.reg}}, sources...)
		// expvar registration is process-global and panics on duplicates;
		// publish the first server only.
		expvarPublish.Do(func() {
			expvar.Publish("iotlan_serve_metrics", expvar.Func(func() interface{} {
				return s.reg.SnapshotMap()
			}))
		})
	}

	// /metrics is Prometheus text exposition — what a scraper expects.
	// Each source renders namespaced under its name (a metric already
	// carrying the prefix, like serve_*, stays unchanged), so several
	// registries share one scrape without colliding.
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		for _, src := range sources {
			if reg := src.resolve(); reg != nil {
				reg.WritePrometheusPrefixed(w, src.Name)
			}
		}
	})

	// The pre-Prometheus JSON rendering stays for humans and scripts that
	// want the registries as one structured document.
	mux.HandleFunc("GET /debug/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]json.RawMessage, len(sources)+1)
		for _, src := range sources {
			if reg := src.resolve(); reg != nil {
				out[src.Name] = json.RawMessage(reg.Snapshot())
			} else {
				out[src.Name] = json.RawMessage("null")
			}
		}
		if s != nil {
			// Interpolated upload-latency quantiles, derived from the
			// histogram buckets so operators don't have to.
			out["serve_latency_quantiles_ms"] = mustJSON(map[string]float64{
				"p50": s.mLatency.Quantile(0.50),
				"p95": s.mLatency.Quantile(0.95),
				"p99": s.mLatency.Quantile(0.99),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})

	if s != nil {
		// The flight recorder dump: Chrome trace JSON of the retained
		// request traces — load into chrome://tracing or Perfetto during
		// (or after) an incident.
		mux.HandleFunc("GET /debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
			if s.flight == nil {
				writeJSON(w, http.StatusNotFound, s.errEnvelope("tracing disabled", 0))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			s.flight.Dump(w)
		})
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		state := "ok"
		if s != nil && s.Draining() {
			status = http.StatusServiceUnavailable
			state = "draining"
		}
		writeJSON(w, status, mustJSON(struct {
			Status string `json:"status"`
		}{state}))
	})

	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// NewHTTPServer wraps a handler in an http.Server with sane operational
// timeouts — the fix for the original iotrepro -http listener, which used
// http.ListenAndServe's zero-valued server (no read-header, read, write, or
// idle bounds, so one stalled client could hold a connection forever).
// Write and idle bounds stay generous: capture uploads legitimately stream
// for a while under load.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}
