package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Manifest describes one checkpoint. It is written last, after every shard
// snapshot has been synced, so a checkpoint directory without a readable
// manifest is an aborted attempt and is ignored (and eventually compacted).
type Manifest struct {
	// Seq is the WAL segment the log was rotated to just before the
	// snapshot was taken: boot loads the snapshot and replays segments
	// >= Seq.
	Seq int `json:"seq"`
	// Shards is the fleet shard count the snapshot was taken under.
	Shards int `json:"shards"`
	// Records counts the state units (households) captured.
	Records int `json:"records"`
}

const manifestName = "MANIFEST.json"

func CheckpointName(seq int) string { return fmt.Sprintf("ckpt-%08d", seq) }

// WriteCheckpoint atomically writes a checkpoint: one framed, checksummed
// snapshot blob per shard plus a manifest, staged in a temp directory and
// renamed into place. records is informational (manifest bookkeeping).
func WriteCheckpoint(dir string, seq int, shards [][]byte, records int) error {
	final := filepath.Join(dir, CheckpointName(seq))
	tmp := final + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return err
	}
	for i, blob := range shards {
		framed := EncodeRecord(nil, blob)
		if err := writeFileSync(filepath.Join(tmp, fmt.Sprintf("shard-%04d.snap", i)), framed); err != nil {
			return err
		}
	}
	mf, err := json.Marshal(Manifest{Seq: seq, Shards: len(shards), Records: records})
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), mf); err != nil {
		return err
	}
	if err := os.RemoveAll(final); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Checkpoints lists the checkpoint sequence numbers present in dir,
// ascending. Aborted attempts (.tmp staging dirs) are excluded.
func Checkpoints(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%08d", &n); err == nil && e.Name() == CheckpointName(n) {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// LatestCheckpoint loads the newest complete checkpoint: its manifest and
// every shard blob, checksum-verified. ok is false when no usable
// checkpoint exists (boot then replays the full WAL). A newer-but-damaged
// checkpoint falls back to the next older one.
func LatestCheckpoint(dir string) (mf Manifest, shards [][]byte, ok bool, err error) {
	seqs, err := Checkpoints(dir)
	if err != nil {
		return Manifest{}, nil, false, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		mf, shards, err := loadCheckpoint(filepath.Join(dir, CheckpointName(seqs[i])))
		if err == nil {
			return mf, shards, true, nil
		}
	}
	return Manifest{}, nil, false, nil
}

func loadCheckpoint(path string) (Manifest, [][]byte, error) {
	raw, err := os.ReadFile(filepath.Join(path, manifestName))
	if err != nil {
		return Manifest{}, nil, err
	}
	var mf Manifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return Manifest{}, nil, err
	}
	shards := make([][]byte, mf.Shards)
	for i := range shards {
		framed, err := os.ReadFile(filepath.Join(path, fmt.Sprintf("shard-%04d.snap", i)))
		if err != nil {
			return Manifest{}, nil, err
		}
		rr := NewRecordReader(bytes.NewReader(framed))
		blob, err := rr.Next()
		if err != nil {
			return Manifest{}, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if _, err := rr.Next(); err != io.EOF {
			return Manifest{}, nil, fmt.Errorf("shard %d: trailing bytes", i)
		}
		shards[i] = blob
	}
	return mf, shards, nil
}

// CompactBefore removes WAL segments below seq and checkpoints older than
// the one labeled seq — everything a boot from checkpoint seq no longer
// needs. Returns how many segments and checkpoints were removed.
func CompactBefore(dir string, seq int) (segs, ckpts int, err error) {
	ss, err := Segments(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range ss {
		if s < seq {
			if err := os.Remove(filepath.Join(dir, SegmentName(s))); err != nil {
				return segs, ckpts, err
			}
			segs++
		}
	}
	cs, err := Checkpoints(dir)
	if err != nil {
		return segs, ckpts, err
	}
	for _, c := range cs {
		if c < seq {
			if err := os.RemoveAll(filepath.Join(dir, CheckpointName(c))); err != nil {
				return segs, ckpts, err
			}
			ckpts++
		}
	}
	// Aborted checkpoint attempts are garbage regardless of age.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.IsDir() && filepath.Ext(e.Name()) == ".tmp" {
				_ = os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	syncDir(dir)
	return segs, ckpts, nil
}
