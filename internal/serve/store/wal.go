package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SyncMode selects how durable an Append is when it returns.
type SyncMode int

// Sync modes. All of them write(2) the record before Append returns, so an
// acknowledged record survives SIGKILL; the modes differ only in fsync
// behaviour, i.e. machine-crash durability.
const (
	// SyncGroup fsyncs before Append returns, coalescing concurrent
	// appends into one fsync (group commit). The default.
	SyncGroup SyncMode = iota
	// SyncAlways fsyncs inline on every Append.
	SyncAlways
	// SyncNone never fsyncs on Append (only on Rotate/Close). Fastest;
	// survives process death but not power loss.
	SyncNone
)

// ParseSyncMode maps a flag value ("group", "always", "none") to a mode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "group", "":
		return SyncGroup, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown sync mode %q (want group, always or none)", s)
}

// SegmentName renders a WAL segment filename; segments sort lexically in
// numeric order.
func SegmentName(seg int) string { return fmt.Sprintf("wal-%08d.log", seg) }

// Segments lists the WAL segment numbers present in dir, ascending.
func Segments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// Log is a segmented append-only record log. Append is safe for concurrent
// use; Rotate/Close serialize with appends.
type Log struct {
	dir  string
	mode SyncMode

	mu      sync.Mutex // guards f, seg, scratch, writeSeq, closed
	f       *os.File
	seg     int
	scratch []byte
	closed  bool

	// Group commit: appenders wait on cond until syncSeq covers their
	// record; one flusher goroutine fsyncs and advances syncSeq.
	flushMu  sync.Mutex
	cond     *sync.Cond
	writeSeq uint64 // records handed to the kernel (mu)
	syncSeq  uint64 // records covered by an fsync (flushMu)
	syncErr  error  // sticky fsync failure (flushMu)
	flushC   chan struct{}
	done     chan struct{}
	flusherG sync.WaitGroup
}

// OpenLog opens the WAL in dir, creating the directory if needed. It always
// starts a brand-new segment (max existing + 1): a previous crash may have
// torn the old tail, and appending after a torn record would hide every
// record behind it from replay.
func OpenLog(dir string, mode SyncMode) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{
		dir:    dir,
		mode:   mode,
		seg:    next,
		flushC: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.flushMu)
	if l.f, err = createSegment(dir, next); err != nil {
		return nil, err
	}
	if mode == SyncGroup {
		l.flusherG.Add(1)
		go l.flusher()
	}
	return l, nil
}

func createSegment(dir string, seg int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, SegmentName(seg)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	syncDir(dir) // make the creation itself durable
	return f, nil
}

// syncDir fsyncs a directory so renames/creations within it are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Segment returns the segment number currently being appended to.
func (l *Log) Segment() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Append writes one record. When it returns nil the record has reached the
// kernel (all modes) and — in group/always modes — stable storage.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.scratch = EncodeRecord(l.scratch[:0], payload)
	_, err := l.f.Write(l.scratch)
	l.writeSeq++
	seq := l.writeSeq
	f := l.f
	l.mu.Unlock()
	if err != nil {
		return err
	}
	switch l.mode {
	case SyncNone:
		return nil
	case SyncAlways:
		return f.Sync()
	}
	// Group commit: nudge the flusher, wait until an fsync covers seq.
	select {
	case l.flushC <- struct{}{}:
	default: // a flush is already pending; it will cover us
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	for l.syncSeq < seq && l.syncErr == nil {
		l.cond.Wait()
	}
	return l.syncErr
}

// flusher is the single group-commit goroutine: each fsync covers every
// record written before it started.
func (l *Log) flusher() {
	defer l.flusherG.Done()
	for {
		select {
		case <-l.done:
			return
		case <-l.flushC:
		}
		l.mu.Lock()
		target := l.writeSeq
		f, closed := l.f, l.closed
		l.mu.Unlock()
		var err error
		if closed {
			err = ErrClosed
		} else {
			err = f.Sync()
		}
		l.flushMu.Lock()
		if err != nil {
			l.syncErr = err
		} else if target > l.syncSeq {
			l.syncSeq = target
		}
		l.cond.Broadcast()
		l.flushMu.Unlock()
	}
}

// Rotate syncs and closes the current segment and starts a fresh one,
// returning the new segment's number. Checkpointing calls this first: the
// snapshot then covers everything below the returned segment.
func (l *Log) Rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	l.seg++
	f, err := createSegment(l.dir, l.seg)
	if err != nil {
		l.closed = true // log is unusable without an open segment
		return 0, err
	}
	l.f = f
	return l.seg, nil
}

// Close syncs and closes the log. Pending group-commit waiters are released.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	final := l.writeSeq
	l.mu.Unlock()

	close(l.done)
	l.flusherG.Wait()

	// Everything written is now synced (or the log failed); release waiters.
	l.flushMu.Lock()
	if err != nil && l.syncErr == nil {
		l.syncErr = err
	}
	if final > l.syncSeq {
		l.syncSeq = final
	}
	l.cond.Broadcast()
	l.flushMu.Unlock()
	return err
}

// ReplayStats describes what a replay consumed.
type ReplayStats struct {
	Segments int // segments visited
	Records  int // records successfully applied
	// Truncated reports that replay stopped at a torn or corrupt record
	// instead of a clean end-of-log; Err holds the framing error and
	// TruncatedSegment the segment it stopped in.
	Truncated        bool
	TruncatedSegment int
	Err              error
}

// ReplayLog feeds every intact record in segments >= fromSeg, in order, to
// fn. A torn or corrupt record stops replay — the intact prefix is the
// durable state; anything after a bad frame is untrustworthy — and is
// reported in the stats, not as an error. fn errors abort the replay.
func ReplayLog(dir string, fromSeg int, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := Segments(dir)
	if err != nil {
		return st, err
	}
	for _, seg := range segs {
		if seg < fromSeg {
			continue
		}
		st.Segments++
		stop, err := replaySegment(dir, seg, fn, &st)
		if err != nil {
			return st, err
		}
		if stop {
			break
		}
	}
	return st, nil
}

func replaySegment(dir string, seg int, fn func([]byte) error, st *ReplayStats) (stop bool, err error) {
	f, err := os.Open(filepath.Join(dir, SegmentName(seg)))
	if err != nil {
		return false, err
	}
	defer f.Close()
	rr := NewRecordReader(f)
	for {
		payload, err := rr.Next()
		if err == io.EOF {
			return false, nil
		}
		if errors.Is(err, ErrRecordTruncated) || errors.Is(err, ErrRecordCorrupt) {
			st.Truncated = true
			st.TruncatedSegment = seg
			st.Err = err
			return true, nil
		}
		if err != nil {
			return false, err
		}
		st.Records++
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}
