// Package store is the durability layer behind internal/serve: an
// append-only write-ahead log of ingested records plus atomic per-shard
// checkpoint snapshots, both living in one data directory.
//
// The WAL holds length-prefixed, CRC32C-checksummed records — for iotserve,
// one record per ingested household in the inspector wire format — split
// into numbered segments. A checkpoint first rotates the log to a fresh
// segment N, then snapshots every shard's state; the snapshot therefore
// covers everything in segments < N, so those segments become deletable
// (CompactBefore) and boot-from-checkpoint replays only segments >= N.
// Records racing into segment N during the snapshot may appear in both the
// snapshot and the replay; the serving layer's ingest is idempotent
// (households are replaced whole), so double-application converges — the
// property that makes checkpointing safe without stopping ingestion.
//
// Durability levels (SyncMode): every Append hands the record to the kernel
// (a write(2)) before returning, so an acknowledged record survives process
// death — SIGKILL included — even in SyncNone mode. SyncGroup (the default)
// additionally fsyncs before Append returns, coalescing concurrent appends
// into one fsync (group commit), surviving machine crashes; SyncAlways
// fsyncs per record.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing: a record is [uint32 LE payload length][uint32 LE CRC32C][payload].
const (
	recordHeaderBytes = 8
	// MaxRecordBytes bounds one record's payload. A corrupted length field
	// otherwise turns into an arbitrary-size allocation during replay.
	MaxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. Truncated means the byte stream ended inside a record —
// the normal shape of a crash mid-append; Corrupt means the bytes are there
// but wrong (checksum mismatch, implausible length). Replay treats both as
// "stop here, keep the intact prefix".
var (
	ErrRecordTruncated = errors.New("store: record truncated")
	ErrRecordCorrupt   = errors.New("store: record corrupt")
	ErrClosed          = errors.New("store: log closed")
)

// EncodeRecord appends one framed record to buf and returns the extended
// slice.
func EncodeRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// RecordReader decodes framed records from a byte stream.
type RecordReader struct {
	r io.Reader
}

// NewRecordReader wraps r for record-by-record decoding.
func NewRecordReader(r io.Reader) *RecordReader { return &RecordReader{r: r} }

// Next returns the next record's payload. io.EOF marks a clean end exactly
// at a record boundary; ErrRecordTruncated a stream ending mid-record;
// ErrRecordCorrupt a failed checksum or implausible length.
func (rr *RecordReader) Next() ([]byte, error) {
	var hdr [recordHeaderBytes]byte
	n, err := io.ReadFull(rr.r, hdr[:])
	if n == 0 && err == io.EOF {
		return nil, io.EOF
	}
	if err != nil { // partial header: the tail of a torn append
		return nil, ErrRecordTruncated
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > MaxRecordBytes {
		return nil, fmt.Errorf("%w: length %d exceeds %d", ErrRecordCorrupt, length, MaxRecordBytes)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return nil, ErrRecordTruncated
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrRecordCorrupt)
	}
	return payload, nil
}
