package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// appendAll writes payloads into a fresh log in dir and closes it,
// returning the on-disk bytes of the (single) segment.
func appendAll(t *testing.T, dir string, mode SyncMode, payloads [][]byte) []byte {
	t.Helper()
	l, err := OpenLog(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	seg := l.Segment()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, SegmentName(seg)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func testPayloads() [][]byte {
	return [][]byte{
		[]byte(`{"id":"user00000"}`),
		[]byte(""), // empty record is legal
		[]byte(`{"id":"user00001","devices":[{"oui":"aa:bb:cc"}]}`),
		bytes.Repeat([]byte("x"), 300),
		[]byte(`tail`),
	}
}

// TestTruncationEveryByte is the satellite-3 core property: truncating a
// recorded WAL at EVERY byte offset replays without panic and recovers
// exactly the prefix of intact records.
func TestTruncationEveryByte(t *testing.T) {
	payloads := testPayloads()
	raw := appendAll(t, t.TempDir(), SyncNone, payloads)

	// Record boundaries: offsets[i] = bytes covering the first i records.
	offsets := []int{0}
	for _, p := range payloads {
		offsets = append(offsets, offsets[len(offsets)-1]+recordHeaderBytes+len(p))
	}
	if offsets[len(offsets)-1] != len(raw) {
		t.Fatalf("segment is %d bytes, framing says %d", len(raw), offsets[len(offsets)-1])
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		st, err := ReplayLog(dir, 0, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		// How many whole records fit in the first `cut` bytes?
		intact := 0
		for intact+1 < len(offsets) && offsets[intact+1] <= cut {
			intact++
		}
		if st.Records != intact || len(got) != intact {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, st.Records, intact)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d mismatch", cut, i)
			}
		}
		atBoundary := offsets[intact] == cut
		if st.Truncated == atBoundary {
			t.Fatalf("cut=%d: Truncated=%v, at-boundary=%v", cut, st.Truncated, atBoundary)
		}
	}
}

// TestCorruptChecksumStopsReplay: a bit-flipped payload stops replay at the
// damaged record; the intact prefix is kept; the error is ErrRecordCorrupt.
func TestCorruptChecksumStopsReplay(t *testing.T) {
	payloads := testPayloads()
	raw := appendAll(t, t.TempDir(), SyncNone, payloads)

	// Flip one byte inside the 3rd record's payload.
	off := 0
	for i := 0; i < 2; i++ {
		off += recordHeaderBytes + len(payloads[i])
	}
	raw[off+recordHeaderBytes] ^= 0xff

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayLog(dir, 0, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || !st.Truncated || !errors.Is(st.Err, ErrRecordCorrupt) {
		t.Fatalf("got records=%d truncated=%v err=%v; want 2/true/ErrRecordCorrupt",
			st.Records, st.Truncated, st.Err)
	}
	if st.TruncatedSegment != 1 {
		t.Fatalf("TruncatedSegment=%d, want 1", st.TruncatedSegment)
	}
}

// TestAbsurdLengthStopsReplay: a corrupted length field larger than
// MaxRecordBytes must stop replay as corruption, not attempt the allocation.
func TestAbsurdLengthStopsReplay(t *testing.T) {
	frame := EncodeRecord(nil, []byte("ok"))
	bad := append(append([]byte(nil), frame...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SegmentName(1)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayLog(dir, 0, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || !st.Truncated || !errors.Is(st.Err, ErrRecordCorrupt) {
		t.Fatalf("got records=%d truncated=%v err=%v", st.Records, st.Truncated, st.Err)
	}
}

// TestRotateAndReplayFrom: records span segments; replay from a later
// segment sees only its suffix; a reopened log never reuses a segment.
func TestRotateAndReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	if l.Segment() != 1 {
		t.Fatalf("first segment = %d, want 1", l.Segment())
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg2 != 2 {
		t.Fatalf("rotate -> %d, want 2", seg2)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	var all, suffix []string
	if _, err := ReplayLog(dir, 0, func(p []byte) error { all = append(all, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayLog(dir, seg2, func(p []byte) error { suffix = append(suffix, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a0", "a1", "a2", "b0", "b1"}; fmt.Sprint(all) != fmt.Sprint(want) {
		t.Fatalf("full replay = %v, want %v", all, want)
	}
	if want := []string{"b0", "b1"}; fmt.Sprint(suffix) != fmt.Sprint(want) || st.Segments != 1 {
		t.Fatalf("suffix replay = %v (segments=%d), want %v in 1 segment", suffix, st.Segments, want)
	}

	// Reopen: must start at segment 3, even though 1 and 2 exist.
	l2, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Segment() != 3 {
		t.Fatalf("reopened segment = %d, want 3", l2.Segment())
	}
	l2.Close()
}

// TestGroupCommitConcurrentAppend: concurrent appenders under group commit
// all become durable and replayable.
func TestGroupCommitConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- l.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	st, err := ReplayLog(dir, 0, func(p []byte) error { seen[string(p)] = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n || st.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want %d clean", st.Records, st.Truncated, n)
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("rec-%03d", i)] {
			t.Fatalf("record %d missing after replay", i)
		}
	}
}

func TestParseSyncMode(t *testing.T) {
	for s, want := range map[string]SyncMode{"": SyncGroup, "group": SyncGroup, "always": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("ParseSyncMode(bogus) accepted")
	}
}

// TestCheckpointRoundTrip: write → latest → compact; a damaged newest
// checkpoint falls back to the previous one; .tmp staging dirs are ignored.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Seed WAL segments 1..3 so compaction has something to delete.
	l, err := OpenLog(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("one"))
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("two"))
	seg3, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("three"))
	l.Close()

	blobsA := [][]byte{[]byte("shard0-a"), []byte("shard1-a")}
	blobsB := [][]byte{[]byte("shard0-b"), []byte("shard1-b")}
	if err := WriteCheckpoint(dir, 2, blobsA, 10); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, seg3, blobsB, 20); err != nil {
		t.Fatal(err)
	}

	mf, shards, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if mf.Seq != seg3 || mf.Shards != 2 || mf.Records != 20 {
		t.Fatalf("manifest = %+v", mf)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], blobsB[i]) {
			t.Fatalf("shard %d blob mismatch", i)
		}
	}

	// Damage the newest checkpoint's shard file: fall back to seq 2.
	if err := os.WriteFile(filepath.Join(dir, CheckpointName(seg3), "shard-0001.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	mf, shards, ok, err = LatestCheckpoint(dir)
	if err != nil || !ok || mf.Seq != 2 {
		t.Fatalf("fallback: ok=%v err=%v seq=%d", ok, err, mf.Seq)
	}
	if !bytes.Equal(shards[0], blobsA[0]) {
		t.Fatal("fallback served wrong blob")
	}

	// A stray staging dir must not be listed as a checkpoint.
	if err := os.MkdirAll(filepath.Join(dir, "ckpt-00000099.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	seqs, err := Checkpoints(dir)
	if err != nil || fmt.Sprint(seqs) != fmt.Sprint([]int{2, seg3}) {
		t.Fatalf("checkpoints = %v, %v", seqs, err)
	}

	// Compact below seq 2: segment 1 and nothing else goes; replay from 2
	// still works.
	segs, ckpts, err := CompactBefore(dir, 2)
	if err != nil || segs != 1 || ckpts != 0 {
		t.Fatalf("compact: segs=%d ckpts=%d err=%v", segs, ckpts, err)
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentName(1))); !os.IsNotExist(err) {
		t.Fatal("segment 1 survived compaction")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt-00000099.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale staging dir survived compaction")
	}
	var got []string
	if _, err := ReplayLog(dir, 2, func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"two", "three"}) {
		t.Fatalf("post-compact replay = %v", got)
	}

	// Compact below seq 3: checkpoint 2 goes too.
	if _, ckpts, err = CompactBefore(dir, seg3); err != nil || ckpts != 1 {
		t.Fatalf("compact2: ckpts=%d err=%v", ckpts, err)
	}
}

// TestLatestCheckpointEmpty: a data dir without checkpoints reports ok=false.
func TestLatestCheckpointEmpty(t *testing.T) {
	if _, _, ok, err := LatestCheckpoint(t.TempDir()); ok || err != nil {
		t.Fatalf("ok=%v err=%v, want false/nil", ok, err)
	}
	if _, _, ok, err := LatestCheckpoint(filepath.Join(t.TempDir(), "missing")); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}
