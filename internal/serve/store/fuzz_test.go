package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the WAL record decoder: it must
// never panic, must terminate, and must satisfy the replay contract — every
// decoded record round-trips through EncodeRecord to exactly the bytes it
// was decoded from, and decoding stops only at clean EOF, truncation or
// corruption.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil, []byte("hello")))
	f.Add(EncodeRecord(EncodeRecord(nil, []byte(`{"id":"user00000"}`)), []byte("")))
	f.Add(EncodeRecord(nil, []byte("torn"))[:5]) // mid-record truncation
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		var reencoded []byte
		records := 0
		for {
			payload, err := rr.Next()
			if err == io.EOF {
				// Clean EOF: every byte must have been consumed as records.
				if len(reencoded) != len(data) {
					t.Fatalf("clean EOF after %d bytes of %d", len(reencoded), len(data))
				}
				break
			}
			if errors.Is(err, ErrRecordTruncated) || errors.Is(err, ErrRecordCorrupt) {
				break
			}
			if err != nil {
				t.Fatalf("unexpected error class: %v", err)
			}
			records++
			if records > len(data) { // each record consumes >= 8 bytes
				t.Fatal("decoder yielded more records than the input can hold")
			}
			reencoded = EncodeRecord(reencoded, payload)
			// Round-trip: the frames decoded so far are exactly the input
			// prefix they came from.
			if !bytes.Equal(reencoded, data[:len(reencoded)]) {
				t.Fatal("re-encoded records diverge from input bytes")
			}
		}
	})
}
