package serve

import "bytes"

// The shadow-batch self-check: the structural proof that the retraction
// algebra (analysis.Add/Sub over refcounted multisets) kept every shard's
// live incremental aggregate equal to what a from-scratch batch pass over
// the same households would produce — compared byte-for-byte after
// rendering, i.e. on the exact surface clients read. The property tests run
// it after every mutation step; a production server runs it periodically
// via Config.SelfCheckEvery and exposes the verdicts as
// serve_selfcheck{result=ok|mismatch} counters, so a divergence (which
// would mean a bug in the fold bookkeeping, never expected) is visible on
// the metrics page instead of silently corrupting artifacts.

// SelfCheck shadow-recomputes every shard's batch partials from its
// household snapshot and byte-compares their rendering against the live
// incremental aggregates. Returns the number of (shard, artifact)
// comparisons that mismatched; each comparison also counts under
// serve_selfcheck{result}. With incremental maintenance off there is
// nothing to cross-check and it reports 0 without counting.
func (s *Server) SelfCheck() int {
	if !s.incremental() {
		return 0
	}
	mismatches := 0
	for i, sh := range s.shards {
		// One lock hold per shard: snapshot the records and clone the live
		// aggregates at the same version, then recompute and compare outside
		// the lock so readers and ingest keep flowing.
		sh.mu.Lock()
		hhs := sh.inspectorSnapshot()
		live := make(map[string]any, len(shardedArtifacts))
		for name, sa := range shardedArtifacts {
			live[name] = sa.live(sh)
		}
		sh.mu.Unlock()
		for name, sa := range shardedArtifacts {
			got := mustJSON(renderSharded(name, []any{live[name]}))
			want := mustJSON(renderSharded(name, []any{sa.batch(hhs)}))
			if bytes.Equal(got, want) {
				s.reg.Counter("serve_selfcheck", "result", "ok").Inc()
				continue
			}
			mismatches++
			s.reg.Counter("serve_selfcheck", "result", "mismatch").Inc()
			if s.logger != nil {
				s.logger.Error("selfcheck mismatch: incremental aggregate diverged from batch recompute",
					"shard", i, "artifact", name, "households", len(hhs))
			}
		}
	}
	return mismatches
}

// maybeSelfCheck runs the shadow-batch comparison once enough households
// were folded since the last run. Modeled on maybeCheckpoint: at most one
// check runs at a time, concurrent triggers fall through (the running check
// covers their folds).
func (s *Server) maybeSelfCheck() {
	n := int64(s.cfg.SelfCheckEvery)
	if n <= 0 || !s.incremental() || s.foldsSince.Load() < n {
		return
	}
	if !s.selfMu.TryLock() {
		return
	}
	defer s.selfMu.Unlock()
	if s.foldsSince.Load() < n {
		return // the check we raced against already covered us
	}
	s.foldsSince.Store(0)
	s.SelfCheck()
}
