package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iotlan"
	"iotlan/internal/inspector"
	"iotlan/internal/obs"
	"iotlan/internal/pcap"
)

// testGate returns a close-once gate channel whose release is also
// registered as a cleanup, so a t.Fatal between gating and releasing can
// never wedge the server's Close in a later cleanup.
func testGate(t *testing.T) (chan struct{}, func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return gate, release
}

// newTestServer builds a server with small, test-friendly bounds. The
// caller must Close it.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the service mux.
func do(s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.Mux().ServeHTTP(w, req)
	return w
}

// capturePCAP renders a household's synthetic capture as a libpcap body.
func capturePCAP(t *testing.T, h *inspector.Household) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pcap.WriteFile(&buf, inspector.SyntheticCapture(h)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wireBody renders households in the upload wire format.
func wireBody(t *testing.T, hs ...*inspector.Household) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := inspector.EncodeWire(&buf, hs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUploadMalformed: garbage, wrong magic, and mid-record truncation all
// answer 400 with a JSON error — never a panic, never a 200.
func TestUploadMalformed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ds := inspector.Generate(1, 1)
	valid := capturePCAP(t, ds.Households[0])

	cases := map[string][]byte{
		"garbage":        []byte("not a pcap at all"),
		"empty":          nil,
		"bad magic":      append([]byte{0xde, 0xad, 0xbe, 0xef}, valid[4:]...),
		"truncated body": valid[:len(valid)-3],
		"short header":   valid[:10],
	}
	for name, body := range cases {
		w := do(s, "POST", "/v1/households/h1/capture", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body %s", name, w.Code, w.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", name, w.Body.String())
		}
	}
	if got := s.reg.Total("serve_upload_rejected"); got < uint64(len(cases)) {
		t.Errorf("rejection counter %d, want >= %d", got, len(cases))
	}

	// Malformed wire bodies on the batch endpoint too.
	w := do(s, "POST", "/v1/ingest/inspector", []byte(`{"devices":[]}`))
	if w.Code != http.StatusBadRequest {
		t.Errorf("wire without id: status %d, want 400", w.Code)
	}
}

// TestUploadOversized: a body over MaxUploadBytes is cut off by the
// http.MaxBytesReader wrapper and answered with 413.
func TestUploadOversized(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxUploadBytes: 512})
	ds := inspector.Generate(2, 4)
	body := wireBody(t, ds.Households...)
	for len(body) <= 512 {
		body = append(body, body...)
	}
	w := do(s, "POST", "/v1/ingest/inspector", body)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413; body %s", w.Code, w.Body.String())
	}
	if s.reg.CounterValue(obs.Key("serve_upload_rejected", "reason", "oversized")) == 0 {
		t.Fatal("oversized rejection not counted")
	}

	big := capturePCAP(t, ds.Households[0])
	if len(big) <= 512 {
		t.Fatalf("synthetic capture unexpectedly small: %d bytes", len(big))
	}
	w = do(s, "POST", "/v1/households/h1/capture", big)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("capture status %d, want 413", w.Code)
	}
}

// TestQueueFullBackpressure: with the single worker gated and the
// one-deep queue occupied, the next upload is shed with 429 + Retry-After
// before any of its body is consumed. Opening the gate lets the accepted
// uploads finish with 200.
func TestQueueFullBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCapacity: 1, RetryAfter: 3 * time.Second})
	gate, release := testGate(t)
	entered := make(chan struct{}, 8)
	s.processHook = func(*job) {
		entered <- struct{}{}
		<-gate
	}

	ds := inspector.Generate(3, 3)
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(s, "POST", "/v1/households/hq/capture", capturePCAP(t, ds.Households[i]))
			codes[i] = w.Code
		}(i)
		if i == 0 {
			<-entered // worker now holds upload 0; upload 1 will sit in the queue
		} else {
			waitFor(t, func() bool { return len(s.queue) == 1 })
		}
	}

	// Worker busy + queue full: the third upload must bounce immediately.
	w := do(s, "POST", "/v1/households/hq/capture", capturePCAP(t, ds.Households[2]))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	// The 429 body is the unified error envelope: message, machine-usable
	// retry hint, and admission pressure.
	var shed struct {
		Error         string `json:"error"`
		RetryAfterMS  int64  `json:"retry_after_ms"`
		QueueDepth    int    `json:"queue_depth"`
		QueueCapacity int    `json:"queue_capacity"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &shed); err != nil {
		t.Fatalf("429 body not JSON: %v", err)
	}
	if shed.Error == "" || shed.QueueDepth != 1 || shed.QueueCapacity != 1 {
		t.Fatalf("429 body missing queue state: %+v", shed)
	}
	if shed.RetryAfterMS != 3000 {
		t.Fatalf("retry_after_ms %d, want 3000", shed.RetryAfterMS)
	}
	if s.reg.CounterValue(obs.Key("serve_upload_rejected", "reason", "queue_full")) == 0 {
		t.Fatal("queue_full rejection not counted")
	}
	if s.reg.CounterValue(obs.Key("serve_responses", "code", "429")) == 0 {
		t.Fatal("429 response not counted")
	}

	release()
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("accepted upload %d finished %d, want 200", i, code)
		}
	}
}

// TestErrorEnvelopeEverywhere: every 4xx/5xx on the v1 surface carries the
// unified envelope — error message, retry_after_ms hint (zero when retrying
// cannot help), and queue_depth — so clients parse one shape.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetryAfter: 2 * time.Second})
	cases := []struct {
		name, method, path string
		body               []byte
		want               int
		retryable          bool
	}{
		{"malformed upload", "POST", "/v1/households/he/capture", []byte("junk"), 400, false},
		{"unknown household", "GET", "/v1/households/ghost/report", nil, 404, false},
		{"unknown artifact", "GET", "/v1/artifacts/nope", nil, 404, false},
		{"offline artifact", "GET", "/v1/artifacts/table1", nil, 409, false},
	}
	check := func(name string, w *httptest.ResponseRecorder, want int, retryable bool) {
		t.Helper()
		if w.Code != want {
			t.Fatalf("%s: status %d, want %d; body %s", name, w.Code, want, w.Body.String())
		}
		var e struct {
			Error        *string `json:"error"`
			RetryAfterMS *int64  `json:"retry_after_ms"`
			QueueDepth   *int    `json:"queue_depth"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: body not JSON: %v: %s", name, err, w.Body.String())
		}
		if e.Error == nil || *e.Error == "" || e.RetryAfterMS == nil || e.QueueDepth == nil {
			t.Fatalf("%s: envelope incomplete: %s", name, w.Body.String())
		}
		if retryable && *e.RetryAfterMS <= 0 {
			t.Fatalf("%s: retryable error with retry_after_ms %d", name, *e.RetryAfterMS)
		}
		if !retryable && *e.RetryAfterMS != 0 {
			t.Fatalf("%s: terminal error with retry_after_ms %d", name, *e.RetryAfterMS)
		}
	}
	for _, c := range cases {
		check(c.name, do(s, c.method, c.path, c.body), c.want, c.retryable)
	}
	// Draining 503s advertise a retry: the drain is expected to end in a
	// restart the client can wait out.
	s.Drain()
	w := do(s, "POST", "/v1/households/he/capture", capturePCAP(t, inspector.Generate(11, 1).Households[0]))
	check("draining upload", w, 503, true)
}

// TestCacheHitOnDuplicateUpload: re-uploading the same bytes answers from
// the content-hash cache — X-Cache: hit, hit counter incremented, and the
// identical report body.
func TestCacheHitOnDuplicateUpload(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	body := capturePCAP(t, inspector.Generate(4, 1).Households[0])

	first := do(s, "POST", "/v1/households/hc/capture", body)
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first upload: %d X-Cache=%q", first.Code, first.Header().Get("X-Cache"))
	}
	second := do(s, "POST", "/v1/households/hc/capture", body)
	if second.Code != http.StatusOK || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second upload: %d X-Cache=%q", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached report differs from computed report")
	}
	if s.reg.CounterValue(obs.Key("serve_cache", "result", "hit")) != 1 {
		t.Fatalf("cache hit counter %d, want 1", s.reg.CounterValue(obs.Key("serve_cache", "result", "hit")))
	}

	// The cache hit must not have double-counted the household's captures.
	rep := do(s, "GET", "/v1/households/hc/report", nil)
	var r struct {
		Captures int `json:"captures"`
	}
	if err := json.Unmarshal(rep.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Captures != 1 {
		t.Fatalf("captures %d after duplicate upload, want 1", r.Captures)
	}
}

// TestCacheIsPerHousehold: byte-identical capture bodies uploaded by two
// different households must not share a cache entry — each household gets a
// report naming itself, accumulates its own state, and counts in the fleet.
func TestCacheIsPerHousehold(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := capturePCAP(t, inspector.Generate(9, 1).Households[0])

	a := do(s, "POST", "/v1/households/ha/capture", body)
	b := do(s, "POST", "/v1/households/hb/capture", body)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("uploads: %d / %d, want 200 / 200", a.Code, b.Code)
	}
	if got := b.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("second household's upload X-Cache=%q, want miss (must not reuse ha's entry)", got)
	}
	for rec, want := range map[*httptest.ResponseRecorder]string{a: "ha", b: "hb"} {
		var rep captureReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Household != want {
			t.Fatalf("report names household %q, want %q", rep.Household, want)
		}
	}

	// Both households must exist with accumulated state…
	for _, id := range []string{"ha", "hb"} {
		rep := do(s, "GET", "/v1/households/"+id+"/report", nil)
		if rep.Code != http.StatusOK {
			t.Fatalf("%s report: %d, want 200", id, rep.Code)
		}
		var r struct {
			Captures int `json:"captures"`
		}
		if err := json.Unmarshal(rep.Body.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Captures != 1 {
			t.Fatalf("%s captures %d, want 1", id, r.Captures)
		}
	}
	// …and the fleet must count two households, not one.
	var f fleetSummary
	if err := json.Unmarshal(do(s, "GET", "/v1/fleet", nil).Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Households != 2 {
		t.Fatalf("fleet households %d, want 2", f.Households)
	}

	// Same household re-uploading the same bytes still hits the cache.
	if got := do(s, "POST", "/v1/households/ha/capture", body).Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("same-household duplicate X-Cache=%q, want hit", got)
	}
}

// TestTimeoutAbandonsUpload: when the request deadline passes while the job
// is held before processing, the handler still waits for the worker's
// verdict (never abandoning a body the worker may read) and relays its 503.
func TestTimeoutAbandonsUpload(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	s.processHook = func(j *job) {
		if j.ctx != nil {
			<-j.ctx.Done() // hold the job until its deadline passes
		}
	}
	w := do(s, "POST", "/v1/households/ht/capture", capturePCAP(t, inspector.Generate(10, 1).Households[0]))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", w.Code, w.Body.String())
	}
	if s.reg.CounterValue(obs.Key("serve_jobs_cancelled", "kind", "capture")) == 0 {
		t.Fatal("cancelled job not counted")
	}
	if s.reg.CounterValue(obs.Key("serve_upload_rejected", "reason", "timeout")) == 0 {
		t.Fatal("timeout rejection not counted")
	}
}

// TestCtxReaderAborts: the worker's body stream fails with the context error
// once the request is cancelled, so a mid-stream timeout ends the read loop
// promptly instead of racing connection teardown.
func TestCtxReaderAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &ctxReader{ctx: ctx, r: strings.NewReader("abc")}
	buf := make([]byte, 1)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("read before cancel: %v", err)
	}
	cancel()
	if _, err := r.Read(buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel: err=%v, want context.Canceled", err)
	}
}

// TestGracefulDrain: draining finishes the gated in-flight upload (200)
// while refusing new ones (503), and Close returns once the queue is empty.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 4, RequestTimeout: 10 * time.Second})
	gate, release := testGate(t)
	entered := make(chan struct{}, 1)
	s.processHook = func(*job) {
		entered <- struct{}{}
		<-gate
	}

	ds := inspector.Generate(5, 2)
	var inflight *httptest.ResponseRecorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		inflight = do(s, "POST", "/v1/households/hd/capture", capturePCAP(t, ds.Households[0]))
	}()
	<-entered

	s.Drain()
	w := do(s, "POST", "/v1/households/hd/capture", capturePCAP(t, ds.Households[1]))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("upload during drain: %d, want 503", w.Code)
	}
	if h := do(s, "GET", "/healthz", nil); h.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", h.Code)
	}

	release()
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not finish the drained queue")
	}
	<-done
	if inflight.Code != http.StatusOK {
		t.Fatalf("in-flight upload finished %d, want 200", inflight.Code)
	}
}

// TestConcurrentIngestDeterministic: the acceptance gate — a fleet ingested
// concurrently with 1 worker and with 4 workers yields byte-identical
// Table 2 artifacts, both equal to the offline Study pipeline over the same
// dataset, with request tracing on or off and for any shard count. Worker
// count, shard layout, upload interleaving, and telemetry never reach the
// output.
func TestConcurrentIngestDeterministic(t *testing.T) {
	const seed, households = 42, 24
	ds := inspector.Generate(seed, households)

	run := func(workers, shards int, disableTracing bool) []byte {
		s := newTestServer(t, Config{Workers: workers, Shards: shards, QueueCapacity: households, DisableTracing: disableTracing})
		var wg sync.WaitGroup
		for _, h := range ds.Households {
			wg.Add(1)
			go func(h *inspector.Household) {
				defer wg.Done()
				for {
					w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, h))
					switch w.Code {
					case http.StatusOK:
						return
					case http.StatusTooManyRequests:
						time.Sleep(5 * time.Millisecond) // honor backpressure
					default:
						t.Errorf("ingest: unexpected status %d: %s", w.Code, w.Body.String())
						return
					}
				}
			}(h)
		}
		wg.Wait()
		w := do(s, "GET", "/v1/artifacts/table2", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: artifact status %d: %s", workers, w.Code, w.Body.String())
		}
		return w.Body.Bytes()
	}

	one, four := run(1, 1, false), run(4, 1, false)
	if !bytes.Equal(one, four) {
		t.Fatalf("table2 differs between workers=1 and workers=4:\n%s\nvs\n%s", one, four)
	}
	// Telemetry is observational only: spans + flight recorder off must
	// produce the same bytes as on.
	if untraced := run(4, 1, true); !bytes.Equal(one, untraced) {
		t.Fatalf("table2 differs between tracing on and off:\n%s\nvs\n%s", one, untraced)
	}
	// Sharding is observational too: the partial-merge path over 8 shards
	// must produce the same bytes as the single-shard full pass.
	if sharded := run(4, 8, false); !bytes.Equal(one, sharded) {
		t.Fatalf("table2 differs between shards=1 and shards=8:\n%s\nvs\n%s", one, sharded)
	}

	// And both must match the offline pipeline byte for byte.
	study := iotlan.New(0, iotlan.WithHouseholds(households))
	study.Inspector = ds
	offline, err := study.RunArtifact("table2")
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Households int                `json:"households"`
		ID         string             `json:"id"`
		Rendered   string             `json:"rendered"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(one, &got); err != nil {
		t.Fatal(err)
	}
	if got.Households != households {
		t.Fatalf("fleet has %d households, want %d", got.Households, households)
	}
	if got.Rendered != offline.Rendered {
		t.Fatalf("served Table 2 differs from offline Study:\n--- served\n%s--- offline\n%s", got.Rendered, offline.Rendered)
	}
	if len(got.Metrics) != len(offline.Metrics) {
		t.Fatalf("metric count %d vs offline %d", len(got.Metrics), len(offline.Metrics))
	}
	for k, v := range offline.Metrics {
		if got.Metrics[k] != v {
			t.Fatalf("metric %s: served %v, offline %v", k, got.Metrics[k], v)
		}
	}
}

// TestArtifactGating: artifacts needing offline lab pipelines answer 409;
// unknown names answer 404; the fleet memo serves repeat requests.
func TestArtifactGating(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, "GET", "/v1/artifacts/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown artifact: %d, want 404", w.Code)
	}
	if w := do(s, "GET", "/v1/artifacts/table1", nil); w.Code != http.StatusConflict {
		t.Fatalf("lab artifact: %d, want 409", w.Code)
	}

	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, inspector.Generate(6, 5).Households...)); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d", w.Code)
	}
	a := do(s, "GET", "/v1/artifacts/table2", nil)
	b := do(s, "GET", "/v1/artifacts/table2", nil)
	if a.Code != http.StatusOK || !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("memoized artifact differs between requests")
	}
	if s.reg.CounterValue(obs.Key("serve_fleet_cache", "result", "hit")) == 0 {
		t.Fatal("fleet memo hit not counted")
	}
}

// TestReportAndFleetEndpoints: uploads accumulate into the household report
// and the fleet summary; unknown households 404.
func TestReportAndFleetEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	if w := do(s, "GET", "/v1/households/ghost/report", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown household report: %d, want 404", w.Code)
	}

	ds := inspector.Generate(7, 2)
	h := ds.Households[0]
	if w := do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), capturePCAP(t, h)); w.Code != http.StatusOK {
		t.Fatalf("capture upload: %d %s", w.Code, w.Body.String())
	}
	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, h)); w.Code != http.StatusOK {
		t.Fatalf("wire upload: %d", w.Code)
	}

	rep := do(s, "GET", fmt.Sprintf("/v1/households/%s/report", h.ID), nil)
	var r householdReport
	if err := json.Unmarshal(rep.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Captures != 1 || r.Frames == 0 || r.Inspector == nil {
		t.Fatalf("report missing data: %+v", r)
	}
	if r.Inspector.Devices != len(h.Devices) {
		t.Fatalf("report devices %d, want %d", r.Inspector.Devices, len(h.Devices))
	}

	fl := do(s, "GET", "/v1/fleet", nil)
	var f fleetSummary
	if err := json.Unmarshal(fl.Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Households != 1 || f.InspectorHouseholds != 1 || f.Devices != len(h.Devices) {
		t.Fatalf("fleet summary wrong: %+v", f)
	}
}

// TestDebugEndpoints: the operational surface serves Prometheus text at
// /metrics, the registries as JSON at /debug/metrics.json, expvar, and the
// pprof index from the same mux.
func TestDebugEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, inspector.Generate(8, 1).Households...)); w.Code != http.StatusOK {
		t.Fatalf("ingest: %d", w.Code)
	}
	m := do(s, "GET", "/metrics", nil)
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", m.Code)
	}
	if ct := m.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q, want Prometheus exposition", ct)
	}
	for _, want := range []string{
		"# TYPE serve_uploads counter",
		"# TYPE serve_stage_ms histogram",
		`serve_stage_ms_bucket{le="+Inf",stage="queue.wait"}`,
		"serve_queue_depth",
		"serve_workers_busy",
		`serve_responses{code="200"}`,
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m.Body.String())
		}
	}

	mj := do(s, "GET", "/debug/metrics.json", nil)
	if mj.Code != http.StatusOK || !strings.Contains(mj.Body.String(), `"serve"`) {
		t.Fatalf("/debug/metrics.json: %d %s", mj.Code, mj.Body.String())
	}
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal(mj.Body.Bytes(), &parsed); err != nil {
		t.Fatalf("/debug/metrics.json not JSON: %v", err)
	}
	var quant map[string]float64
	if err := json.Unmarshal(parsed["serve_latency_quantiles_ms"], &quant); err != nil {
		t.Fatalf("latency quantiles missing from /debug/metrics.json: %v", err)
	}
	if quant["p50"] > quant["p99"] {
		t.Fatalf("quantiles not monotone: %v", quant)
	}
	if w := do(s, "GET", "/debug/vars", nil); w.Code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", w.Code)
	}
	if w := do(s, "GET", "/debug/pprof/", nil); w.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", w.Code)
	}
	if w := do(s, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", w.Code)
	}
}

// waitFor polls until cond holds (or fails the test after a deadline) —
// used only to sequence goroutines around the test gate.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
