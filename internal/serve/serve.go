// Package serve is the crowdsourced ingestion-and-analysis service behind
// cmd/iotserve: the production shape the paper's §6.3 pipeline implies (IoT
// Inspector collected 13,487 devices across 3,860 households from continuous
// real-user uploads) built on this repo's analysis engine.
//
// The service accepts per-household capture uploads (streaming libpcap
// bodies — decoded record by record via pcap.Reader, never buffered whole)
// and batch uploads in the inspector wire format (JSON lines, decoded
// streamingly too). Every upload flows through a bounded worker pool fed by
// a fixed-capacity queue: when the queue is full the server sheds load with
// 429 + Retry-After instead of buffering unboundedly. Results are cached by
// content hash, so a re-uploaded capture is served without recompute. Fleet
// aggregates (Table 2 entropy/uniqueness over every ingested household) are
// recomputed from the registry's artifacts on demand and are byte-identical
// to the offline Study pipeline for the same household set — concurrency
// never changes output bytes.
//
// Fleet state is sharded by household-ID hash (shard.go): each shard locks
// independently and caches its own partial aggregates, merged at read time,
// so an upload invalidates one shard's partial instead of the whole fleet's
// work. With Config.DataDir set the service is durable (durable.go): ingests
// are written ahead to a checksummed log before acknowledgement, shards are
// checkpointed periodically, and Open replays checkpoint + WAL on boot.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/inspector"
	"iotlan/internal/obs"
	"iotlan/internal/pcap"
	"iotlan/internal/serve/store"
)

// Config sizes the service. The zero value is usable: withDefaults fills
// every field.
type Config struct {
	// Workers is the analysis worker pool size (< 1 = one per CPU, via the
	// engine's convention). Worker count never changes output bytes.
	Workers int
	// QueueCapacity bounds the ingestion queue; a full queue answers 429.
	QueueCapacity int
	// MaxUploadBytes bounds one upload body (413 beyond it).
	MaxUploadBytes int64
	// MaxRecordBytes bounds one pcap record's captured length (400 beyond).
	MaxRecordBytes uint32
	// RequestTimeout bounds queue wait + body streaming for one upload.
	// On expiry the worker abandons the upload and answers 503; analysis of
	// a fully-streamed body is never interrupted mid-flight.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint attached to 429 responses.
	RetryAfter time.Duration
	// CacheEntries bounds the content-hash result cache; at capacity new
	// results are served but not retained.
	CacheEntries int
	// DisableTracing turns off per-request spans and the flight recorder.
	// Tracing is observational only — artifact bytes are identical either
	// way (TestTracingDoesNotChangeArtifacts) — so the default is on.
	DisableTracing bool
	// FlightRecorderSize bounds the ring of recent request traces kept for
	// postmortems (0 = obs.DefaultFlightRecent). Ignored when tracing is
	// disabled.
	FlightRecorderSize int
	// Logger, when set, gets one structured line per upload: household,
	// route, bytes, stage timings, status, cache verdict, queue depth at
	// admit. Nil means no request logging.
	Logger *slog.Logger
	// Shards splits fleet state by household-ID hash into independently
	// locked shards with independently cached partial aggregates (< 1 = 1).
	// Artifact bytes are identical for any shard count.
	Shards int
	// DataDir, when set, makes inspector ingestion durable: a write-ahead
	// log plus periodic checkpoints live there, replayed on boot. Build
	// durable servers with Open (New panics on a recovery error).
	DataDir string
	// CheckpointEvery checkpoints after that many WAL records; 0 means only
	// the final checkpoint on Close. Ignored without DataDir.
	CheckpointEvery int
	// WALSync selects WAL durability (default store.SyncGroup: fsync before
	// acknowledging, coalescing concurrent uploads into one fsync).
	WALSync store.SyncMode
	// RetainWAL keeps pre-checkpoint WAL segments instead of compacting
	// them — the recovery tests compare boot-from-checkpoint against
	// boot-from-full-WAL with it.
	RetainWAL bool
	// DisableIncremental turns off the live per-shard aggregates: ingest
	// stops folding household contributions at write time and stale shard
	// partials are batch-recomputed on read (the pre-incremental behavior,
	// kept as the cold path and as bench7's comparison baseline). Default
	// is incremental maintenance on.
	DisableIncremental bool
	// SelfCheckEvery, when > 0, shadow-recomputes every shard's batch
	// partials after that many folded households and byte-compares the
	// rendering against the live incremental aggregates, counting under
	// serve_selfcheck{result=ok|mismatch}; durable boots also run one check
	// right after recovery. 0 disables the periodic check (tests and the
	// property suite call SelfCheck directly).
	SelfCheckEvery int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 0 // engine convention: resolved per call
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 64
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = pcap.DefaultMaxRecordBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	return c
}

// householdState accumulates one household's ingested data. Capture counters
// only ever add, so any arrival order of the same upload set produces the
// same totals; the inspector record is replaced whole per upload.
type householdState struct {
	captures    int
	frames      int
	localFrames int
	protocols   map[string]int
	sources     map[string]bool
	exposed     int // exposure cells filled across all captures (latest union)
	inspector   *inspector.Household
	// contribHash is the wire content hash of the installed inspector
	// record — the idempotence key for incremental refolds (foldHousehold).
	// Zero when no record is installed or incremental maintenance is off.
	contribHash [sha256.Size]byte
}

// job is one queued upload. The body is the still-unread request stream:
// backpressure applies before a byte of the upload is consumed, and the
// worker is the only reader.
type job struct {
	kind      string // "capture" | "inspector"
	household string
	body      io.Reader
	ctx       context.Context // request ctx, carrying the upload root span
	done      chan jobResult
	// enqueuedAt and qspan bracket queue wait: stamped by the handler just
	// before the queue send, closed out by the worker at pop. The handler
	// never touches them after a successful enqueue.
	enqueuedAt time.Time
	qspan      *obs.Span
	// stats is written by the worker and read by the handler after done —
	// the handler always waits for the worker's verdict, so no race.
	stats uploadStats
}

// uploadStats is the per-stage accounting one upload leaves behind for the
// structured request log.
type uploadStats struct {
	Bytes       int64
	QueueWait   time.Duration
	BodyRead    time.Duration
	Decode      time.Duration
	Analysis    time.Duration
	CacheLookup time.Duration
	WALAppend   time.Duration
}

// jobResult is what the waiting handler writes back to the client.
type jobResult struct {
	status   int
	body     []byte
	cacheHit bool
}

// ctxReader aborts a body stream once the request context is cancelled, so
// a worker never keeps reading an upload whose deadline has passed — it
// fails fast with the context error and the handler (which always waits for
// the worker's verdict) relays the 503.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// meterReader accounts a body stream as the worker consumes it: bytes and
// time spent blocked in Read (the body.read stage — reads interleave with
// record decoding, so the cost accumulates rather than brackets), plus a
// live in-flight-bytes gauge. The caller releases the gauge when done.
type meterReader struct {
	r        io.Reader
	inflight *obs.Gauge
	n        int64
	dur      time.Duration
}

func (m *meterReader) Read(p []byte) (int, error) {
	t0 := time.Now()
	n, err := m.r.Read(p)
	m.dur += time.Since(t0)
	m.n += int64(n)
	if n > 0 {
		m.inflight.Add(int64(n))
	}
	return n, err
}

// Server is the ingestion service. Create with New, attach Mux to an HTTP
// server, and stop with Drain + Close.
type Server struct {
	cfg      Config
	reg      *obs.Registry
	queue    chan *job
	quit     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	// drainMu orders enqueue against Close: enqueue holds the read lock
	// across its draining check + queue send, and Close sets the drain flag
	// under the write lock before closing quit. Any job accepted before the
	// flag flips is therefore already in the queue when the workers start
	// their final drain sweep — an accepted upload is always processed.
	drainMu sync.RWMutex

	// shards hold the fleet state (shard.go); fleetVersion is the global
	// ingest counter behind the merged-artifact memo.
	shards       []*fleetShard
	fleetVersion atomic.Uint64

	// mu guards the content-hash result cache and the merged-artifact memo.
	mu        sync.Mutex
	cache     map[[sha256.Size]byte][]byte
	fleetMemo map[string]fleetEntry

	// Durability (durable.go). wal is nil without Config.DataDir. ckptGate
	// orders ingest (read lock across WAL append + state apply) against
	// checkpointing (write lock across rotate + snapshot capture) so a
	// compacted segment's records are always inside the checkpoint. ckptMu
	// serializes checkpoint runs; walSince counts records since the last.
	wal       *store.Log
	ckptGate  sync.RWMutex
	ckptMu    sync.Mutex
	walSince  atomic.Int64
	closeOnce sync.Once

	// Self-check (selfcheck.go). selfMu serializes shadow-batch runs;
	// foldsSince counts folded households since the last one.
	selfMu     sync.Mutex
	foldsSince atomic.Int64

	// spans/flight are the request-tracing surface; both nil when
	// Config.DisableTracing is set (every call through them no-ops).
	spans  *obs.SpanTracer
	flight *obs.FlightRecorder
	logger *slog.Logger

	mQueueDepth  *obs.Gauge
	mWorkersBusy *obs.Gauge
	mInflight    *obs.Gauge
	mLatency     *obs.Histogram
	stageHist    map[string]*obs.Histogram

	// processHook, when set (tests only), runs in the worker before each
	// job — a gate for deterministic queue-full and drain scenarios.
	processHook func(*job)
}

// uploadStages are the per-upload pipeline stages, each with its own
// serve_stage_ms{stage=...} histogram — the direct answer to "where did
// the p99 go".
var uploadStages = []string{
	"queue.wait", "body.read", "pcap.decode", "inspector.decode",
	"analysis", "cache.lookup", "artifact.build", "wal.append",
}

// stageBounds are millisecond bucket bounds for the stage histograms; the
// sub-millisecond buckets matter because cache lookups and queue waits are
// usually far under 1ms.
var stageBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// fleetEntry is one memoized merged-artifact body. Sharded artifacts label
// it with the per-shard version vector the building sweep observed
// (shardVers); full-snapshot artifacts label it with the fleet version.
type fleetEntry struct {
	version   uint64
	shardVers []uint64
	body      []byte
}

// New builds an in-memory server and starts its worker pool. For durable
// configurations (DataDir set) prefer Open, which surfaces recovery errors;
// New panics on them.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// newServer builds the server without starting workers — Open recovers
// durable state in between, so no upload races the replay.
func newServer(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		reg:       obs.NewRegistry(),
		queue:     make(chan *job, cfg.QueueCapacity),
		quit:      make(chan struct{}),
		shards:    newShards(cfg.Shards),
		cache:     make(map[[sha256.Size]byte][]byte),
		fleetMemo: make(map[string]fleetEntry),
	}
	s.reg.Gauge("serve_shards").Set(int64(cfg.Shards))
	s.mQueueDepth = s.reg.Gauge("serve_queue_depth")
	s.mWorkersBusy = s.reg.Gauge("serve_workers_busy")
	s.mInflight = s.reg.Gauge("serve_inflight_bytes")
	s.mLatency = s.reg.Histogram("serve_latency_ms",
		[]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000})
	s.stageHist = make(map[string]*obs.Histogram, len(uploadStages))
	for _, stage := range uploadStages {
		s.stageHist[stage] = s.reg.Histogram("serve_stage_ms", stageBounds, "stage", stage)
	}
	if !cfg.DisableTracing {
		s.spans = obs.NewSpanTracer(obs.WallClock)
		s.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize, 0)
		s.spans.SetSink(s.flight)
	}
	s.logger = cfg.Logger
	return s
}

func (s *Server) startWorkers() {
	workers := s.cfg.Workers
	if workers < 1 {
		workers = defaultWorkers()
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Registry exposes the service's operational metrics (served at /metrics).
// Unlike the simulator registries, these values are wall-clock operational
// data — latency histograms, queue depths — and are not expected to be
// deterministic across runs.
func (s *Server) Registry() *obs.Registry { return s.reg }

// FlightRecorder exposes the retained request traces (nil when tracing is
// disabled) — served at /debug/flightrecorder and dumped on SIGQUIT by
// cmd/iotserve.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// stageObserve feeds one stage's latency histogram.
func (s *Server) stageObserve(stage string, d time.Duration) {
	s.stageHist[stage].Observe(float64(d) / float64(time.Millisecond))
}

// Drain marks the server as draining: new uploads are refused with 503
// while queued and in-flight analyses run to completion. Safe to call more
// than once.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains (if not already draining), lets the workers finish every
// queued job, and stops the pool. After Close no job is processed. With
// durability on, the flush happens after the last worker exits: a final
// checkpoint is written and the WAL is synced shut, so every acknowledged
// upload is on disk before Close returns — the graceful-drain contract
// cmd/iotserve relies on for SIGTERM.
func (s *Server) Close() {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	s.wg.Wait()
	s.closeOnce.Do(s.closeDurable)
}

// worker pops jobs until quit, then finishes whatever is still queued — the
// graceful-drain contract: an accepted upload is always analyzed.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.process(j)
		case <-s.quit:
			for {
				select {
				case j := <-s.queue:
					s.process(j)
				default:
					return
				}
			}
		}
	}
}

// enqueue offers a job to the queue without blocking. False means the queue
// is full (the caller sheds the upload with 429) or the server is draining.
// The read lock spans the draining check and the send so a job can never
// slip into the queue after Close's final drain sweep has started.
func (s *Server) enqueue(j *job) bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- j:
		s.mQueueDepth.Set(int64(len(s.queue)))
		return true
	default:
		return false
	}
}

// process runs one upload end to end: stream-decode, hash, cache lookup,
// analyze, publish.
func (s *Server) process(j *job) {
	s.mQueueDepth.Set(int64(len(s.queue)))
	s.mWorkersBusy.Add(1)
	defer s.mWorkersBusy.Add(-1)
	if !j.enqueuedAt.IsZero() {
		j.stats.QueueWait = time.Since(j.enqueuedAt)
		s.stageObserve("queue.wait", j.stats.QueueWait)
	}
	j.qspan.End()
	if s.processHook != nil {
		s.processHook(j)
	}
	if j.ctx != nil && j.ctx.Err() != nil {
		// The upload's deadline passed while it sat in the queue (or the
		// client disconnected); skip the work entirely. The handler is
		// still waiting on done and relays the 503.
		s.reg.Counter("serve_jobs_cancelled", "kind", j.kind).Inc()
		s.reg.Counter("serve_upload_rejected", "reason", "timeout").Inc()
		j.done <- jobResult{status: http.StatusServiceUnavailable, body: s.errEnvelope("upload cancelled", s.cfg.RetryAfter)}
		return
	}
	var res jobResult
	switch j.kind {
	case "capture":
		res = s.processCapture(j)
	case "inspector":
		res = s.processInspector(j)
	}
	s.reg.Counter("serve_jobs_done", "kind", j.kind).Inc()
	j.done <- res
}

// processCapture streams a libpcap body: records decode one at a time with
// bounded per-record allocation while the raw bytes feed the content hash.
// A malformed or truncated body is a 400; a body over MaxUploadBytes is a
// 413 (the handler wrapped it in http.MaxBytesReader). On a cache hit the
// analysis stage is skipped and the cached report served. The cache key
// mixes the household ID into the content hash: the report embeds the ID
// and a hit skips state accumulation, so byte-identical captures from two
// households must be distinct entries.
func (s *Server) processCapture(j *job) jobResult {
	h := sha256.New()
	h.Write([]byte(j.household))
	h.Write([]byte{0}) // separator: the ID can never bleed into body bytes
	mr := &meterReader{r: j.body, inflight: s.mInflight}
	defer func() { s.mInflight.Add(-mr.n) }()
	decodeStart, spanStart := time.Now(), s.spans.Now()
	endDecode := func(records int) {
		loop := time.Since(decodeStart)
		j.stats.Bytes, j.stats.BodyRead = mr.n, mr.dur
		j.stats.Decode = loop - mr.dur
		s.stageObserve("body.read", j.stats.BodyRead)
		s.stageObserve("pcap.decode", j.stats.Decode)
		s.spans.RecordSpan(j.ctx, "serve", "body.read", spanStart, mr.dur.Microseconds(),
			"bytes", strconv.FormatInt(mr.n, 10))
		s.spans.RecordSpan(j.ctx, "serve", "pcap.decode", spanStart, loop.Microseconds(),
			"records", strconv.Itoa(records))
	}
	rd, err := pcap.NewReader(io.TeeReader(mr, h))
	if err != nil {
		endDecode(0)
		return s.uploadError(err, "capture")
	}
	rd.SetMaxRecordBytes(s.cfg.MaxRecordBytes)
	var records []pcap.Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			endDecode(len(records))
			return s.uploadError(err, "capture")
		}
		records = append(records, rec)
	}
	endDecode(len(records))
	var digest [sha256.Size]byte
	h.Sum(digest[:0])
	body, hit := s.timedCacheGet(j, digest)
	if hit {
		return jobResult{status: http.StatusOK, body: body, cacheHit: true}
	}
	aStart := time.Now()
	_, aspan := s.spans.StartSpan(j.ctx, "serve", "analysis")
	body = s.analyzeCapture(j.household, records)
	aspan.End()
	j.stats.Analysis = time.Since(aStart)
	s.stageObserve("analysis", j.stats.Analysis)
	s.cachePut(digest, body)
	s.reg.Counter("serve_uploads", "kind", "capture").Inc()
	s.reg.Counter("serve_upload_frames").Add(uint64(len(records)))
	return jobResult{status: http.StatusOK, body: body}
}

// timedCacheGet is cacheGet with the cache.lookup stage accounted.
func (s *Server) timedCacheGet(j *job, digest [sha256.Size]byte) ([]byte, bool) {
	cStart, cSpan := time.Now(), s.spans.Now()
	body, ok := s.cacheGet(digest)
	j.stats.CacheLookup = time.Since(cStart)
	s.stageObserve("cache.lookup", j.stats.CacheLookup)
	verdict := "miss"
	if ok {
		verdict = "hit"
	}
	s.spans.RecordSpan(j.ctx, "serve", "cache.lookup", cSpan, j.stats.CacheLookup.Microseconds(),
		"result", verdict)
	return body, ok
}

// processInspector streams a JSONL wire-format body, replacing each
// household's crowdsourced record and bumping the fleet version.
func (s *Server) processInspector(j *job) jobResult {
	h := sha256.New()
	mr := &meterReader{r: j.body, inflight: s.mInflight}
	defer func() { s.mInflight.Add(-mr.n) }()
	decodeStart, spanStart := time.Now(), s.spans.Now()
	endDecode := func(households int) {
		loop := time.Since(decodeStart)
		j.stats.Bytes, j.stats.BodyRead = mr.n, mr.dur
		j.stats.Decode = loop - mr.dur
		s.stageObserve("body.read", j.stats.BodyRead)
		s.stageObserve("inspector.decode", j.stats.Decode)
		s.spans.RecordSpan(j.ctx, "serve", "body.read", spanStart, mr.dur.Microseconds(),
			"bytes", strconv.FormatInt(mr.n, 10))
		s.spans.RecordSpan(j.ctx, "serve", "inspector.decode", spanStart, loop.Microseconds(),
			"households", strconv.Itoa(households))
	}
	dec := inspector.NewWireDecoder(io.TeeReader(mr, h))
	var hhs []*inspector.Household
	for {
		hh, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			endDecode(len(hhs))
			return s.uploadError(err, "inspector")
		}
		hhs = append(hhs, hh)
	}
	endDecode(len(hhs))
	var digest [sha256.Size]byte
	h.Sum(digest[:0])
	body, hit := s.timedCacheGet(j, digest)
	if hit {
		// Ingest is idempotent per household ID, so a duplicate batch needs
		// no re-ingest either: the fleet already contains these households
		// (and the miss that populated the cache already logged them).
		return jobResult{status: http.StatusOK, body: body, cacheHit: true}
	}
	aStart := time.Now()
	_, aspan := s.spans.StartSpan(j.ctx, "serve", "analysis")
	if s.wal != nil {
		// Write-ahead, then apply: the ack is backed by the log. The gate's
		// read lock keeps the append+apply pair atomic with respect to
		// checkpoint compaction (see checkpoint).
		wStart, wspan := time.Now(), s.spans.Now()
		s.ckptGate.RLock()
		err := s.walAppend(hhs)
		if err == nil {
			body = s.ingest(hhs)
		}
		s.ckptGate.RUnlock()
		j.stats.WALAppend = time.Since(wStart) // bracket includes the apply; dominated by fsync
		s.stageObserve("wal.append", j.stats.WALAppend)
		s.spans.RecordSpan(j.ctx, "serve", "wal.append", wspan, j.stats.WALAppend.Microseconds(),
			"households", strconv.Itoa(len(hhs)))
		if err != nil {
			aspan.Fail()
			aspan.End()
			s.reg.Counter("serve_upload_rejected", "reason", "wal").Inc()
			return jobResult{status: http.StatusInternalServerError,
				body: s.errEnvelope(fmt.Sprintf("durable ingest failed: %v", err), s.cfg.RetryAfter)}
		}
		s.maybeCheckpoint()
	} else {
		body = s.ingest(hhs)
	}
	s.maybeSelfCheck()
	aspan.End()
	j.stats.Analysis = time.Since(aStart)
	s.stageObserve("analysis", j.stats.Analysis)
	s.cachePut(digest, body)
	s.reg.Counter("serve_uploads", "kind", "inspector").Inc()
	return jobResult{status: http.StatusOK, body: body}
}

// uploadError classifies a streaming-decode failure: a cancelled request
// context (deadline mid-stream, client gone) is a 503, body-limit hits are
// 413, everything else (bad magic, truncation, implausible lengths, bad
// JSON) is a 400.
func (s *Server) uploadError(err error, kind string) jobResult {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.reg.Counter("serve_jobs_cancelled", "kind", kind).Inc()
		s.reg.Counter("serve_upload_rejected", "reason", "timeout").Inc()
		return jobResult{status: http.StatusServiceUnavailable, body: s.errEnvelope("upload cancelled mid-stream", s.cfg.RetryAfter)}
	}
	var maxBytes *http.MaxBytesError
	if errors.As(err, &maxBytes) {
		s.reg.Counter("serve_upload_rejected", "reason", "oversized").Inc()
		return jobResult{status: http.StatusRequestEntityTooLarge,
			body: s.errEnvelope(fmt.Sprintf("upload exceeds %d bytes", maxBytes.Limit), 0)}
	}
	s.reg.Counter("serve_upload_rejected", "reason", "malformed").Inc()
	return jobResult{status: http.StatusBadRequest, body: s.errEnvelope(fmt.Sprintf("malformed %s upload: %v", kind, err), 0)}
}

// captureReport is the JSON answer to a capture upload (and the capture
// half of the household report).
type captureReport struct {
	Household   string         `json:"household"`
	Frames      int            `json:"frames"`
	LocalFrames int            `json:"local_frames"`
	Protocols   map[string]int `json:"protocols"`
	Sources     int            `json:"sources"`
	ExposedAt   int            `json:"exposed_cells"`
}

// analyzeCapture decodes the records once (the same decode-once index the
// offline engine uses), derives the per-household summary, folds it into
// the household state, and renders the upload report.
func (s *Server) analyzeCapture(household string, records []pcap.Record) []byte {
	idx := pcap.NewIndex(records, 1)
	protocols := make(map[string]int, 4)
	for _, name := range idx.Protocols() {
		protocols[name] = len(idx.ByProto(name))
	}
	sources := make(map[string]bool)
	for _, p := range idx.Packets() {
		if p.HasEth {
			sources[p.Eth.Src.String()] = true
		}
	}
	exposure := analysis.BuildExposure(idx.Records)
	exposed := 0
	for _, proto := range analysis.ExposureRows {
		for _, f := range analysis.ExposureFields {
			if exposure.Exposed(proto, f) {
				exposed++
			}
		}
	}
	rep := captureReport{
		Household:   household,
		Frames:      idx.Len(),
		LocalFrames: len(idx.Local()),
		Protocols:   protocols,
		Sources:     len(sources),
		ExposedAt:   exposed,
	}

	sh := s.shardFor(household)
	sh.mu.Lock()
	st := sh.household(household)
	st.captures++
	st.frames += rep.Frames
	st.localFrames += rep.LocalFrames
	for k, v := range protocols {
		st.protocols[k] += v
	}
	for src := range sources {
		st.sources[src] = true
	}
	if exposed > st.exposed {
		st.exposed = exposed
	}
	sh.mu.Unlock()

	return mustJSON(rep)
}

// incremental reports whether the shards maintain live merged aggregates
// (the default; Config.DisableIncremental selects the batch-recompute read
// path instead).
func (s *Server) incremental() bool { return !s.cfg.DisableIncremental }

// ingest installs the uploaded households' crowdsourced records. With
// incremental maintenance on, each install folds the household's delta into
// its shard's live aggregates — O(one household), never O(shard) — and an
// unchanged re-upload is skipped entirely (no version bump, warm caches stay
// warm). Only touched shards' versions move, and the fleet version moves
// only if something actually changed.
func (s *Server) ingest(hhs []*inspector.Household) []byte {
	devices, folded := 0, 0
	for _, hh := range hhs {
		devices += len(hh.Devices)
		if !s.incremental() {
			s.installRecord(hh)
			folded++
			continue
		}
		if s.foldHousehold(hh) {
			folded++
			s.reg.Counter("serve_refold", "result", "folded").Inc()
		} else {
			s.reg.Counter("serve_refold", "result", "skipped").Inc()
		}
	}
	if folded > 0 {
		s.fleetVersion.Add(1)
		s.foldsSince.Add(int64(folded))
	}
	ids := make([]string, len(hhs))
	for i, hh := range hhs {
		ids[i] = hh.ID
	}
	sort.Strings(ids)
	return mustJSON(struct {
		Households []string `json:"households"`
		Devices    int      `json:"devices"`
	}{ids, devices})
}

// installRecord replaces a household's crowdsourced record without touching
// live aggregates — the write path when incremental maintenance is off.
func (s *Server) installRecord(hh *inspector.Household) {
	sh := s.shardFor(hh.ID)
	sh.mu.Lock()
	st := sh.household(hh.ID)
	if st.inspector == nil {
		sh.inspectorN++
	}
	st.inspector = hh
	sh.version++
	sh.mu.Unlock()
}

// foldHousehold installs hh as the household's record and folds the delta
// into the shard's live aggregates: the previously installed record's
// singleton partials are retracted and the new ones folded in. The expensive
// parts — content hash and the two HouseholdPartialOf extractions — run
// outside the shard lock; installed records are immutable, so the previous
// contribution can be recomputed from the old pointer instead of stored
// (which would roughly double per-household memory for the fingerprint
// multisets). Retraction is only valid while that exact record is still
// installed, so the fold re-checks under the lock and retries on a
// concurrent replacement of the same household.
//
// Returns false when hh's content hash matches the installed record: the
// refold is idempotent — no retract, no fold, no version bump.
func (s *Server) foldHousehold(hh *inspector.Household) bool {
	sh := s.shardFor(hh.ID)
	hash := hh.ContentHash()
	sh.mu.Lock()
	st := sh.household(hh.ID)
	if st.inspector != nil && st.contribHash == hash {
		sh.mu.Unlock()
		return false
	}
	prev := st.inspector
	sh.mu.Unlock()

	contrib := analysis.HouseholdPartialOf(hh)
	for {
		var retract *analysis.HouseholdPartial
		if prev != nil {
			retract = analysis.HouseholdPartialOf(prev)
		}
		sh.mu.Lock()
		st := sh.household(hh.ID)
		if st.inspector != nil && st.contribHash == hash {
			sh.mu.Unlock()
			return false
		}
		if st.inspector != prev {
			// A concurrent upload replaced the record since the snapshot;
			// recompute the retraction against the new installee.
			prev = st.inspector
			sh.mu.Unlock()
			continue
		}
		if prev == nil {
			sh.inspectorN++
		} else {
			sh.subContrib(retract)
		}
		sh.addContrib(contrib)
		st.inspector, st.contribHash = hh, hash
		sh.version++
		sh.mu.Unlock()
		return true
	}
}

// cacheGet looks a digest up in the bounded result cache.
func (s *Server) cacheGet(digest [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	body, ok := s.cache[digest]
	s.mu.Unlock()
	if ok {
		s.reg.Counter("serve_cache", "result", "hit").Inc()
		return body, true
	}
	s.reg.Counter("serve_cache", "result", "miss").Inc()
	return nil, false
}

// cachePut stores a result unless the cache is at capacity (new results are
// still served, just not retained — the bound keeps a hostile uploader from
// growing the cache without limit).
func (s *Server) cachePut(digest [sha256.Size]byte, body []byte) {
	s.mu.Lock()
	if len(s.cache) < s.cfg.CacheEntries {
		s.cache[digest] = body
	} else {
		s.reg.Counter("serve_cache_full").Inc()
	}
	s.mu.Unlock()
}

// fleetSnapshot assembles the current fleet as an inspector dataset, with
// households in sorted-ID order — ingestion order, shard layout, and upload
// concurrency never reach the analysis. The households themselves are
// shared immutably with the ingest path (replaced whole, never mutated).
// The version is read first, so a racing ingest can only mislabel fresher
// data as older (forcing a recompute later), never the reverse.
func (s *Server) fleetSnapshot() (uint64, *inspector.Dataset) {
	version := s.fleetVersion.Load()
	var hhs []*inspector.Household
	for _, sh := range s.shards {
		sh.mu.Lock()
		hhs = append(hhs, sh.inspectorSnapshot()...)
		sh.mu.Unlock()
	}
	sort.Slice(hhs, func(i, j int) bool { return hhs[i].ID < hhs[j].ID })
	return version, &inspector.Dataset{Households: hhs}
}

// artifactReport is the JSON rendering of one registry artifact computed
// over the ingested fleet.
type artifactReport struct {
	Name       string             `json:"name"`
	PaperRef   string             `json:"paper_ref"`
	Kind       string             `json:"kind"`
	Households int                `json:"households"`
	ID         string             `json:"id"`
	Rendered   string             `json:"rendered"`
	Metrics    map[string]float64 `json:"metrics"`
}

// RunFleetArtifact computes a registry artifact over every ingested
// household. Only artifacts whose pipelines the serving layer holds can run:
// the crowdsourced (NeedInspector) artifacts and the lab-independent ones.
// Artifacts needing the offline lab pipelines return ErrOfflineArtifact.
// Results are memoized per fleet version (hit/miss metrics under
// serve_fleet_cache), and for a fixed household set they are byte-identical
// to the offline Study pipeline's output regardless of upload concurrency
// or worker count. ctx carries the request's span for tracing (use
// context.Background() outside a request).
func (s *Server) RunFleetArtifact(ctx context.Context, name string) ([]byte, error) {
	a, ok := iotlan.ArtifactByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown artifact %q", name)
	}
	if a.Needs&^iotlan.NeedInspector != 0 {
		return nil, fmt.Errorf("%w: artifact %q needs pipelines %s", ErrOfflineArtifact, a.Name, a.Needs)
	}
	if sa, ok := shardedArtifacts[a.Name]; ok {
		return s.runShardedArtifact(ctx, a, sa)
	}
	version, ds := s.fleetSnapshot()
	s.mu.Lock()
	memo, ok := s.fleetMemo[a.Name]
	s.mu.Unlock()
	if ok && memo.version == version {
		s.reg.Counter("serve_fleet_cache", "result", "hit").Inc()
		return memo.body, nil
	}
	s.reg.Counter("serve_fleet_cache", "result", "miss").Inc()

	// A study with the fleet dataset pre-installed runs the registered
	// artifact exactly as the offline pipeline would; RunInspector is a
	// no-op because the corpus is already present.
	bStart := time.Now()
	_, bspan := s.spans.StartSpan(ctx, "serve", "artifact.build", "artifact", a.Name)
	study := iotlan.New(0, iotlan.WithWorkers(s.cfg.Workers), iotlan.WithHouseholds(len(ds.Households)))
	study.Inspector = ds
	res, err := study.RunArtifact(a.Name)
	if err != nil {
		bspan.Fail()
	}
	bspan.End()
	s.stageObserve("artifact.build", time.Since(bStart))
	if err != nil {
		return nil, err
	}
	body := mustJSON(artifactReport{
		Name:       a.Name,
		PaperRef:   a.PaperRef,
		Kind:       a.Kind,
		Households: len(ds.Households),
		ID:         res.ID,
		Rendered:   res.Rendered,
		Metrics:    res.Metrics,
	})
	s.mu.Lock()
	s.fleetMemo[a.Name] = fleetEntry{version: version, body: body}
	s.mu.Unlock()
	return body, nil
}

// ErrOfflineArtifact marks registry artifacts that need the offline lab
// pipelines (passive capture, scans, vuln audit, app runs) and therefore
// cannot be computed from crowdsourced uploads alone.
var ErrOfflineArtifact = errors.New("artifact requires offline lab pipelines")

// householdReport is the JSON answer to GET /v1/households/{id}/report.
type householdReport struct {
	Household   string            `json:"household"`
	Captures    int               `json:"captures"`
	Frames      int               `json:"frames"`
	LocalFrames int               `json:"local_frames"`
	Protocols   map[string]int    `json:"protocols"`
	Sources     int               `json:"sources"`
	ExposedAt   int               `json:"exposed_cells"`
	Inspector   *inspectorSummary `json:"inspector,omitempty"`
}

type inspectorSummary struct {
	Devices     int            `json:"devices"`
	Identifiers map[string]int `json:"identifiers"`
	Identified  int            `json:"identified_vendors"`
}

// report renders a household's accumulated state, or ok=false if the
// household has never uploaded.
func (s *Server) report(id string) ([]byte, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.households[id]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	rep := householdReport{
		Household:   id,
		Captures:    st.captures,
		Frames:      st.frames,
		LocalFrames: st.localFrames,
		Protocols:   make(map[string]int, len(st.protocols)),
		Sources:     len(st.sources),
		ExposedAt:   st.exposed,
	}
	for k, v := range st.protocols {
		rep.Protocols[k] = v
	}
	hh := st.inspector
	sh.mu.Unlock()

	if hh != nil {
		ds := &inspector.Dataset{Households: []*inspector.Household{hh}}
		ids := analysis.ExtractIdentifiers(ds, 1)
		sum := &inspectorSummary{Devices: len(hh.Devices), Identifiers: map[string]int{}}
		for _, d := range hh.Devices {
			for typ, vals := range ids.Of(d) {
				sum.Identifiers[typ.String()] += len(vals)
			}
			if inspector.Identify(d).Vendor != "unknown" {
				sum.Identified++
			}
		}
		rep.Inspector = sum
	}
	return mustJSON(rep), true
}

// fleetSummary is the JSON answer to GET /v1/fleet.
type fleetSummary struct {
	Households          int    `json:"households"`
	InspectorHouseholds int    `json:"inspector_households"`
	Devices             int    `json:"devices"`
	Frames              int    `json:"frames"`
	Version             uint64 `json:"version"`
}

// fleet summarizes everything ingested so far.
func (s *Server) fleet() []byte {
	sum := fleetSummary{Version: s.fleetVersion.Load()}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sum.Households += len(sh.households)
		for _, st := range sh.households {
			sum.Frames += st.frames
			if st.inspector != nil {
				sum.InspectorHouseholds++
				sum.Devices += len(st.inspector.Devices)
			}
		}
		sh.mu.Unlock()
	}
	return mustJSON(sum)
}

func mustJSON(v interface{}) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil { // unreachable: report types always marshal
		return []byte("{}")
	}
	return append(b, '\n')
}

// errEnvelope renders the one error payload shape every 4xx/5xx on the v1
// surface carries: the message, a machine-usable retry hint (0 = retrying
// cannot help: client bugs, unknown names, oversized bodies), and the
// admission pressure at response time, so client logs always carry queue
// state without per-status parsing.
func (s *Server) errEnvelope(msg string, retryAfter time.Duration) []byte {
	return mustJSON(struct {
		Error         string `json:"error"`
		RetryAfterMS  int64  `json:"retry_after_ms"`
		QueueDepth    int    `json:"queue_depth"`
		QueueCapacity int    `json:"queue_capacity"`
	}{msg, retryAfter.Milliseconds(), len(s.queue), s.cfg.QueueCapacity})
}

// logUpload emits the one structured line per upload: who, what, how long
// in each stage, and under what admission pressure.
func (s *Server) logUpload(kind, household string, status int, st uploadStats, cache string, admitDepth int, total time.Duration) {
	if s.logger == nil {
		return
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.logger.Info("upload",
		"kind", kind,
		"household", household,
		"status", status,
		"bytes", st.Bytes,
		"total_ms", ms(total),
		"queue_wait_ms", ms(st.QueueWait),
		"body_read_ms", ms(st.BodyRead),
		"decode_ms", ms(st.Decode),
		"analysis_ms", ms(st.Analysis),
		"cache_lookup_ms", ms(st.CacheLookup),
		"wal_ms", ms(st.WALAppend),
		"cache", cache,
		"queue_depth_admit", admitDepth,
	)
}

// defaultWorkers mirrors the engine convention: unset means one per CPU.
func defaultWorkers() int { return runtime.NumCPU() }
