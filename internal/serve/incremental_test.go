package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/inspector"
	"iotlan/internal/obs"
)

// offlineResult runs one artifact through the offline Study over a fixed
// household set — the ground truth every served body must match.
func offlineResult(t *testing.T, hhs []*inspector.Household, name string) iotlan.Result {
	t.Helper()
	study := iotlan.New(0, iotlan.WithHouseholds(len(hhs)))
	study.Inspector = &inspector.Dataset{Households: hhs}
	res, err := study.RunArtifact(name)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertServedEqualsOffline byte-compares a served artifact body's rendered
// surface against the offline Study.
func assertServedEqualsOffline(t *testing.T, body []byte, hhs []*inspector.Household, name, step string) {
	t.Helper()
	offline := offlineResult(t, hhs, name)
	var got struct {
		Households int                `json:"households"`
		ID         string             `json:"id"`
		Rendered   string             `json:"rendered"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("%s %s: %v", step, name, err)
	}
	if got.Households != len(hhs) || got.ID != offline.ID {
		t.Fatalf("%s %s: households=%d id=%q, want %d/%q", step, name, got.Households, got.ID, len(hhs), offline.ID)
	}
	if got.Rendered != offline.Rendered {
		t.Fatalf("%s %s: served rendering differs from offline Study:\n--- served\n%s--- offline\n%s",
			step, name, got.Rendered, offline.Rendered)
	}
	for k, v := range offline.Metrics {
		if got.Metrics[k] != v {
			t.Fatalf("%s %s: metric %s: served %v, offline %v", step, name, k, got.Metrics[k], v)
		}
	}
}

// TestIncrementalMatchesBatch is the incremental ≡ batch property test: for
// every (shards, workers) combination, an upload / idempotent re-upload /
// changed-content update sequence must serve artifact bytes identical across
// configurations and equal to the offline Study over the expected state
// after every step — with the shadow-batch SelfCheck clean throughout, an
// unchanged re-upload folding nothing, and a changed re-upload (the same
// household uploading twice with different contents) retracting its old
// contribution exactly.
func TestIncrementalMatchesBatch(t *testing.T) {
	const seed, households = 91, 40
	ds := inspector.Generate(seed, households)
	alt := inspector.Generate(seed+1, households)
	updated := append([]*inspector.Household{}, ds.Households...)
	for _, i := range []int{0, 7, 13} {
		updated[i] = &inspector.Household{ID: ds.Households[i].ID, Devices: alt.Households[i].Devices}
	}

	type bodies map[string][]byte
	var baseline []bodies // per step, from the first configuration
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			s := newTestServer(t, Config{Workers: workers, Shards: shards, QueueCapacity: households})
			var steps []bodies

			// Step 1: initial concurrent upload of the whole corpus.
			ingestFleet(t, s, ds.Households)

			// Step 2: idempotent re-upload. A fresh batch body (different
			// content hash than the single-household uploads, so it reaches
			// ingest) carrying unchanged households must fold nothing: no
			// shard version moves, the artifact memo stays warm.
			check := func(step string, expect []*inspector.Household) {
				t.Helper()
				b := bodies{}
				for _, name := range []string{"table2", "mitigations"} {
					b[name] = fetchArtifact(t, s, name)
					assertServedEqualsOffline(t, b[name], expect, name, step)
				}
				if n := s.SelfCheck(); n != 0 {
					t.Fatalf("%s: selfcheck found %d incremental/batch mismatches", step, n)
				}
				steps = append(steps, b)
			}
			check("step1-upload", ds.Households)

			versionBefore := s.fleetVersion.Load()
			if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, ds.Households[:10]...)); w.Code != http.StatusOK {
				t.Fatalf("re-upload batch: %d", w.Code)
			}
			if skipped := s.reg.CounterValue(obs.Key("serve_refold", "result", "skipped")); skipped != 10 {
				t.Fatalf("idempotent re-upload skipped %d refolds, want 10", skipped)
			}
			if v := s.fleetVersion.Load(); v != versionBefore {
				t.Fatalf("idempotent re-upload moved the fleet version %d -> %d", versionBefore, v)
			}
			check("step2-idempotent", ds.Households)

			// Step 3: three households upload again with different contents.
			for _, i := range []int{0, 7, 13} {
				if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, updated[i])); w.Code != http.StatusOK {
					t.Fatalf("update upload: %d", w.Code)
				}
			}
			check("step3-update", updated)

			if baseline == nil {
				baseline = steps
				continue
			}
			for si, b := range steps {
				for name, body := range b {
					if !bytes.Equal(body, baseline[si][name]) {
						t.Fatalf("shards=%d workers=%d step %d: %s differs from baseline config", shards, workers, si+1, name)
					}
				}
			}
		}
	}
}

// TestPartialForSingleFlight: concurrent partialFor misses on the same stale
// shard coalesce onto one compute. The blocking compute func holds every
// caller in flight until released; exactly one may have run.
func TestPartialForSingleFlight(t *testing.T) {
	const callers = 8
	ds := inspector.Generate(51, 6)
	s := newTestServer(t, Config{Shards: 1, QueueCapacity: 8})
	s.ingest(ds.Households)

	var computes atomic.Int32
	gate := make(chan struct{})
	sa := shardedArtifact{batch: func(hhs []*inspector.Household) any {
		computes.Add(1)
		<-gate
		return analysis.EntropyPartialOf(hhs, nil)
	}} // live == nil: always the batch path, like -incremental=false

	vals := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _, _ = s.partialFor(s.shards[0], "flight-test", sa)
		}(i)
	}
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the rest reach the flight wait
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes ran, want exactly 1", n)
	}
	for i, v := range vals {
		if v != vals[0] {
			t.Fatalf("caller %d got a different partial than the flight leader", i)
		}
	}
	misses := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "miss"))
	waits := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "wait"))
	hits := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "hit"))
	if misses != 1 {
		t.Fatalf("miss counter %d, want 1 (the flight leader)", misses)
	}
	if waits+hits != callers-1 {
		t.Fatalf("waits %d + hits %d != %d followers", waits, hits, callers-1)
	}
}

// TestArtifactReadsDuringIngest hammers artifact reads while writers keep
// re-uploading changing household contents — the -race proof that the
// version-vector memo never serves a body mixing shard states under a label
// a later read would trust, and that the live fold keeps aggregates exact
// under full contention. The final served bytes must equal the offline Study
// over the deterministic final contents.
func TestArtifactReadsDuringIngest(t *testing.T) {
	const writers, perWriter, rounds = 4, 6, 5
	base := inspector.Generate(61, writers*perWriter)
	// Every round re-uploads each household with distinct device contents
	// (identical bodies would hit the upload result cache and never reach
	// ingest); the IDs stay fixed so each round retracts the previous one.
	variants := make([][]*inspector.Household, rounds)
	variants[0] = base.Households
	for r := 1; r < rounds; r++ {
		alt := inspector.Generate(int64(61+r), writers*perWriter)
		variants[r] = make([]*inspector.Household, writers*perWriter)
		for i := range variants[r] {
			variants[r][i] = &inspector.Household{ID: base.Households[i].ID, Devices: alt.Households[i].Devices}
		}
	}
	final := variants[rounds-1]
	s := newTestServer(t, Config{Workers: 4, Shards: 4, QueueCapacity: 64})

	upload := func(h *inspector.Household) bool {
		for {
			w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, h))
			switch w.Code {
			case http.StatusOK:
				return true
			case http.StatusTooManyRequests:
				time.Sleep(time.Millisecond)
			default:
				t.Errorf("upload: unexpected status %d: %s", w.Code, w.Body.String())
				return false
			}
		}
	}

	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Each writer owns a disjoint household range and writes its
			// rounds sequentially, so the final contents are deterministic:
			// whatever the last round uploaded.
			for r := 0; r < rounds; r++ {
				for k := 0; k < perWriter; k++ {
					if !upload(variants[r][wi*perWriter+k]) {
						return
					}
				}
			}
		}(wi)
	}

	stop := make(chan struct{})
	var rg sync.WaitGroup
	for ri := 0; ri < 2; ri++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range []string{"table2", "mitigations"} {
					w := do(s, "GET", "/v1/artifacts/"+name, nil)
					if w.Code != http.StatusOK {
						t.Errorf("mid-ingest read %s: status %d", name, w.Code)
						return
					}
					var rep struct {
						Households int    `json:"households"`
						ID         string `json:"id"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
						t.Errorf("mid-ingest read %s: unparseable body: %v", name, err)
						return
					}
					if rep.Households < 0 || rep.Households > writers*perWriter {
						t.Errorf("mid-ingest read %s: impossible household count %d", name, rep.Households)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if t.Failed() {
		return
	}

	if n := s.SelfCheck(); n != 0 {
		t.Fatalf("selfcheck found %d incremental/batch mismatches after contention", n)
	}
	for _, name := range []string{"table2", "mitigations"} {
		body := fetchArtifact(t, s, name)
		assertServedEqualsOffline(t, body, final, name, "final")
		if again := fetchArtifact(t, s, name); !bytes.Equal(body, again) {
			t.Fatalf("%s: quiesced re-read served different bytes", name)
		}
	}
}
