package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"iotlan"
	"iotlan/internal/inspector"
	"iotlan/internal/obs"
)

// ingestFleet uploads every household concurrently (one batch each),
// honoring backpressure, and waits for all acks.
func ingestFleet(t *testing.T, s *Server, hhs []*inspector.Household) {
	t.Helper()
	var wg sync.WaitGroup
	for _, h := range hhs {
		wg.Add(1)
		go func(h *inspector.Household) {
			defer wg.Done()
			for {
				w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, h))
				switch w.Code {
				case http.StatusOK:
					return
				case http.StatusTooManyRequests:
					time.Sleep(5 * time.Millisecond)
				default:
					t.Errorf("ingest: unexpected status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}(h)
	}
	wg.Wait()
}

// fetchArtifact GETs one fleet artifact and fails on non-200.
func fetchArtifact(t *testing.T, s *Server, name string) []byte {
	t.Helper()
	w := do(s, "GET", "/v1/artifacts/"+name, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("artifact %s: status %d: %s", name, w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// deterministicCounters is the subset of /metrics that must be identical
// for any (shards, workers) combination given the same request sequence —
// admission, processing, caching, and response accounting. Timing
// histograms and gauges are excluded by construction.
var deterministicCounters = []string{
	obs.Key("serve_uploads", "kind", "inspector"),
	obs.Key("serve_jobs_done", "kind", "inspector"),
	obs.Key("serve_cache", "result", "hit"),
	obs.Key("serve_cache", "result", "miss"),
	obs.Key("serve_fleet_cache", "result", "hit"),
	obs.Key("serve_fleet_cache", "result", "miss"),
	obs.Key("serve_responses", "code", "200"),
	"serve_upload_frames",
}

// TestShardInvariance is the tentpole property test: every (shards,
// workers) combination serves byte-identical table2, mitigations, and fleet
// bodies — equal to the offline Study over the same corpus — and identical
// deterministic-counter snapshots. Sharding and parallelism are pure
// availability structure; no trace of them reaches any output surface.
func TestShardInvariance(t *testing.T) {
	const seed, households = 21, 48
	ds := inspector.Generate(seed, households)

	type snapshot struct {
		table2, mitigations, fleet []byte
		counters                   map[string]uint64
		shardsUsed                 int
	}
	run := func(shards, workers int) snapshot {
		// Queue capacity >= concurrent uploads: the ingest sequence (and so
		// the counter snapshot) is identical across configurations — no 429s.
		s := newTestServer(t, Config{Workers: workers, Shards: shards, QueueCapacity: households})
		ingestFleet(t, s, ds.Households)
		snap := snapshot{
			table2:      fetchArtifact(t, s, "table2"),
			mitigations: fetchArtifact(t, s, "mitigations"),
			counters:    make(map[string]uint64, len(deterministicCounters)),
			shardsUsed:  len(s.shards),
		}
		snap.fleet = do(s, "GET", "/v1/fleet", nil).Body.Bytes()
		for _, key := range deterministicCounters {
			snap.counters[key] = s.reg.CounterValue(key)
		}
		return snap
	}

	base := run(1, 1)
	if base.shardsUsed != 1 {
		t.Fatalf("shards=1 built %d shards", base.shardsUsed)
	}
	for _, shards := range []int{1, 2, 8} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			got := run(shards, workers)
			if got.shardsUsed != shards {
				t.Fatalf("shards=%d built %d shards", shards, got.shardsUsed)
			}
			for name, pair := range map[string][2][]byte{
				"table2":      {base.table2, got.table2},
				"mitigations": {base.mitigations, got.mitigations},
				"fleet":       {base.fleet, got.fleet},
			} {
				if !bytes.Equal(pair[0], pair[1]) {
					t.Fatalf("shards=%d workers=%d: %s differs from shards=1 workers=1:\n%s\nvs\n%s",
						shards, workers, name, pair[1], pair[0])
				}
			}
			for _, key := range deterministicCounters {
				if got.counters[key] != base.counters[key] {
					t.Fatalf("shards=%d workers=%d: counter %s = %d, want %d",
						shards, workers, key, got.counters[key], base.counters[key])
				}
			}
		}
	}

	// And the served artifacts equal the offline Study byte-for-byte on the
	// rendered/metric surface.
	study := iotlan.New(0, iotlan.WithHouseholds(households))
	study.Inspector = ds
	for name, body := range map[string][]byte{"table2": base.table2, "mitigations": base.mitigations} {
		offline, err := study.RunArtifact(name)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Households int                `json:"households"`
			ID         string             `json:"id"`
			Rendered   string             `json:"rendered"`
			Metrics    map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Households != households || got.ID != offline.ID {
			t.Fatalf("%s: households=%d id=%q vs offline id=%q", name, got.Households, got.ID, offline.ID)
		}
		if got.Rendered != offline.Rendered {
			t.Fatalf("%s: served rendering differs from offline Study:\n--- served\n%s--- offline\n%s",
				name, got.Rendered, offline.Rendered)
		}
		if len(got.Metrics) != len(offline.Metrics) {
			t.Fatalf("%s: metric count %d vs offline %d", name, len(got.Metrics), len(offline.Metrics))
		}
		for k, v := range offline.Metrics {
			if got.Metrics[k] != v {
				t.Fatalf("%s: metric %s: served %v, offline %v", name, k, got.Metrics[k], v)
			}
		}
	}
}

// TestShardPartialInvalidation: an upload into one shard invalidates only
// that shard's cached partial — the others answer the next artifact read
// from cache. This is the read-time-merge memoization contract.
func TestShardPartialInvalidation(t *testing.T) {
	const households = 32
	ds := inspector.Generate(33, households)
	s := newTestServer(t, Config{Workers: 2, Shards: 8, QueueCapacity: households})
	ingestFleet(t, s, ds.Households)

	fetchArtifact(t, s, "table2") // warm every shard partial
	missesAfterWarm := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "miss"))
	if missesAfterWarm != 8 {
		t.Fatalf("warm pass computed %d partials, want 8", missesAfterWarm)
	}

	// Re-upload one household (changed bytes so the result cache misses):
	// exactly one shard moves.
	hh := ds.Households[0]
	clone := *hh
	clone.Devices = hh.Devices[:len(hh.Devices)-1]
	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, &clone)); w.Code != http.StatusOK {
		t.Fatalf("re-upload: %d", w.Code)
	}
	fetchArtifact(t, s, "table2")
	misses := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "miss"))
	hits := s.reg.CounterValue(obs.Key("serve_shard_partials", "result", "hit"))
	if misses != missesAfterWarm+1 {
		t.Fatalf("recompute touched %d shards, want 1 (misses %d -> %d)",
			misses-missesAfterWarm, missesAfterWarm, misses)
	}
	if hits != 7 {
		t.Fatalf("warm shards answered %d hits, want 7", hits)
	}
}
