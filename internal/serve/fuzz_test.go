package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"iotlan/internal/inspector"
	"iotlan/internal/pcap"
)

// FuzzDecode drives arbitrary bytes through the full upload path — mux,
// backpressure, streaming pcap decode, analysis — asserting the service
// never panics and always answers one of its documented statuses. Seeds
// cover a valid capture, truncations, and raw garbage; the fuzzer mutates
// from there.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	ds := inspector.Generate(1, 1)
	if err := pcap.WriteFile(&buf, inspector.SyntheticCapture(ds.Households[0])); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:24])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	// One short-lived server per exec: goroutines surviving across execs
	// confuse the fuzz engine's coverage attribution and collapse its
	// throughput, so the pool must be quiescent when the function returns.
	f.Fuzz(func(t *testing.T, body []byte) {
		srv := New(Config{Workers: 1, QueueCapacity: 8, MaxUploadBytes: 1 << 20})
		defer srv.Close()
		req := httptest.NewRequest("POST", "/v1/households/fuzz/capture", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.Mux().ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("undocumented status %d for %d-byte body", w.Code, len(body))
		}
	})
}
