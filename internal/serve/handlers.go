package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Mux returns the service's HTTP surface:
//
//	POST /v1/households/{id}/capture   streaming libpcap upload
//	POST /v1/ingest/inspector          batch upload, inspector wire format
//	GET  /v1/households/{id}/report    accumulated per-household report
//	GET  /v1/artifacts/{name}          registry artifact over the fleet
//	GET  /v1/fleet                     fleet summary
//
// plus the operational endpoints from RegisterDebug (/metrics, /healthz,
// /debug/vars, /debug/pprof/*) — one HTTP surface for data and ops.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/households/{id}/capture", s.handleUpload("capture"))
	mux.HandleFunc("POST /v1/ingest/inspector", s.handleUpload("inspector"))
	mux.HandleFunc("GET /v1/households/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	RegisterDebug(mux, s)
	return mux
}

// handleUpload is the shared ingestion front end: backpressure first (the
// queue-full check happens before a single body byte is consumed), then the
// worker streams the body, then the handler relays the worker's verdict.
func (s *Server) handleUpload(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		household := r.PathValue("id")
		if kind == "capture" && household == "" {
			writeJSON(w, http.StatusBadRequest, errorBody("missing household id"))
			return
		}
		if s.draining.Load() {
			s.reg.Counter("serve_upload_rejected", "reason", "draining").Inc()
			writeJSON(w, http.StatusServiceUnavailable, errorBody("server draining"))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		j := &job{
			kind:      kind,
			household: household,
			body:      &ctxReader{ctx: ctx, r: http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)},
			ctx:       ctx,
			done:      make(chan jobResult, 1),
		}
		if !s.enqueue(j) {
			s.reg.Counter("serve_upload_rejected", "reason", "queue_full").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, errorBody("ingestion queue full, retry later"))
			return
		}
		// Always wait for the worker's verdict: the worker holds the request
		// body and the MaxBytesReader-wrapped ResponseWriter, which net/http
		// forbids touching after the handler returns. A timeout doesn't
		// abandon the job — it cancels ctx, which the worker observes before
		// processing (queue pre-check) or mid-stream (ctxReader), answering
		// 503 promptly.
		res := <-j.done
		if res.cacheHit {
			w.Header().Set("X-Cache", "hit")
		} else if res.status == http.StatusOK {
			w.Header().Set("X-Cache", "miss")
		}
		s.mLatency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		writeJSON(w, res.status, res.body)
	}
}

// handleReport serves a household's accumulated analysis.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	body, ok := s.report(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody("unknown household"))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleArtifact computes a registry artifact over the ingested fleet.
// Artifacts whose pipelines need the offline lab answer 409.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	body, err := s.RunFleetArtifact(r.PathValue("name"))
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrOfflineArtifact) {
			status = http.StatusConflict
		}
		writeJSON(w, status, errorBody(err.Error()))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleFleet serves the fleet summary.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleet())
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
