package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Mux returns the service's HTTP surface:
//
//	POST /v1/households/{id}/capture   streaming libpcap upload
//	POST /v1/ingest/inspector          batch upload, inspector wire format
//	GET  /v1/households/{id}/report    accumulated per-household report
//	GET  /v1/artifacts/{name}          registry artifact over the fleet
//	GET  /v1/fleet                     fleet summary
//
// plus the operational endpoints from RegisterDebug (/metrics as Prometheus
// text exposition, /debug/metrics.json, /debug/flightrecorder, /healthz,
// /debug/vars, /debug/pprof/*) — one HTTP surface for data and ops.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/households/{id}/capture", s.handleUpload("capture"))
	mux.HandleFunc("POST /v1/ingest/inspector", s.handleUpload("inspector"))
	mux.HandleFunc("GET /v1/households/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	RegisterDebug(mux, s)
	return mux
}

// handleUpload is the shared ingestion front end: backpressure first (the
// queue-full check happens before a single body byte is consumed), then the
// worker streams the body, then the handler relays the worker's verdict.
// Every upload records an `upload` root span (when tracing is on) with the
// worker's stage spans as children, and leaves one structured log line.
func (s *Server) handleUpload(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		household := r.PathValue("id")
		if kind == "capture" && household == "" {
			s.respond(w, http.StatusBadRequest, s.errEnvelope("missing household id", 0))
			return
		}
		if s.draining.Load() {
			s.reg.Counter("serve_upload_rejected", "reason", "draining").Inc()
			s.respond(w, http.StatusServiceUnavailable, s.errEnvelope("server draining", s.cfg.RetryAfter))
			s.logUpload(kind, household, http.StatusServiceUnavailable, uploadStats{}, "none", len(s.queue), time.Since(start))
			return
		}
		admitDepth := len(s.queue)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx, root := s.spans.StartSpan(ctx, "serve", "upload",
			"kind", kind, "household", household, "queue_depth_admit", strconv.Itoa(admitDepth))
		j := &job{
			kind:      kind,
			household: household,
			body:      &ctxReader{ctx: ctx, r: http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)},
			ctx:       ctx,
			done:      make(chan jobResult, 1),
		}
		// The queue.wait child starts before the enqueue attempt: the worker
		// may pop the job the instant the send lands, and it (not the
		// handler) ends the span. After a successful enqueue the handler
		// never touches qspan or enqueuedAt again.
		j.enqueuedAt = time.Now()
		_, j.qspan = s.spans.StartSpan(ctx, "serve", "queue.wait")
		if !s.enqueue(j) {
			j.qspan.End()
			s.reg.Counter("serve_upload_rejected", "reason", "queue_full").Inc()
			root.SetAttr("status", "429")
			root.End()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			s.respond(w, http.StatusTooManyRequests,
				s.errEnvelope("ingestion queue full, retry later", s.cfg.RetryAfter))
			s.logUpload(kind, household, http.StatusTooManyRequests, uploadStats{}, "none", admitDepth, time.Since(start))
			return
		}
		// Always wait for the worker's verdict: the worker holds the request
		// body and the MaxBytesReader-wrapped ResponseWriter, which net/http
		// forbids touching after the handler returns. A timeout doesn't
		// abandon the job — it cancels ctx, which the worker observes before
		// processing (queue pre-check) or mid-stream (ctxReader), answering
		// 503 promptly.
		res := <-j.done
		cache := "none"
		if res.cacheHit {
			w.Header().Set("X-Cache", "hit")
			cache = "hit"
		} else if res.status == http.StatusOK {
			w.Header().Set("X-Cache", "miss")
			cache = "miss"
		}
		root.SetAttr("status", strconv.Itoa(res.status))
		if res.status >= 500 {
			root.Fail()
		}
		root.End()
		total := time.Since(start)
		s.mLatency.Observe(float64(total) / float64(time.Millisecond))
		s.respond(w, res.status, res.body)
		s.logUpload(kind, household, res.status, j.stats, cache, admitDepth, total)
	}
}

// handleReport serves a household's accumulated analysis.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	body, ok := s.report(r.PathValue("id"))
	if !ok {
		s.respond(w, http.StatusNotFound, s.errEnvelope("unknown household", 0))
		return
	}
	s.respond(w, http.StatusOK, body)
}

// handleArtifact computes a registry artifact over the ingested fleet.
// Artifacts whose pipelines need the offline lab answer 409.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	ctx, root := s.spans.StartSpan(r.Context(), "serve", "artifact", "name", r.PathValue("name"))
	body, err := s.RunFleetArtifact(ctx, r.PathValue("name"))
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, ErrOfflineArtifact) {
			status = http.StatusConflict
		}
		root.SetAttr("status", strconv.Itoa(status))
		root.End()
		s.respond(w, status, s.errEnvelope(err.Error(), 0))
		return
	}
	root.SetAttr("status", "200")
	root.End()
	s.respond(w, http.StatusOK, body)
}

// handleFleet serves the fleet summary.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.respond(w, http.StatusOK, s.fleet())
}

// respond writes a JSON response and counts it under
// serve_responses{code=...} — the per-status-code view of the v1 surface.
func (s *Server) respond(w http.ResponseWriter, status int, body []byte) {
	s.reg.Counter("serve_responses", "code", strconv.Itoa(status)).Inc()
	writeJSON(w, status, body)
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	// Explicit Content-Length keeps responses identity-framed whatever their
	// size, so minimal HTTP/1.1 clients (the in-sim vnet smoke, shell tools)
	// never need chunked decoding.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
