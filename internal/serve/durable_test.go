package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iotlan/internal/inspector"
	"iotlan/internal/serve/store"
)

// openTestServer is newTestServer for durable configs: Open instead of New,
// surfacing recovery errors.
func openTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// copyDataDir clones a server's data directory so two boots can start from
// the same bytes.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func fleetOf(t *testing.T, s *Server) fleetSummary {
	t.Helper()
	var f fleetSummary
	if err := json.Unmarshal(do(s, "GET", "/v1/fleet", nil).Body.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestDurableRecoveryRoundTrip: ingest → graceful Close (final checkpoint +
// WAL sync) → reopen: the fleet and its artifacts survive byte-for-byte,
// including a reopen under a different shard count (households re-shard by
// hash on apply, so the on-disk layout does not pin the topology).
func TestDurableRecoveryRoundTrip(t *testing.T) {
	const households = 24
	ds := inspector.Generate(51, households)
	dir := t.TempDir()

	s := openTestServer(t, Config{Workers: 2, Shards: 4, QueueCapacity: households, DataDir: dir})
	ingestFleet(t, s, ds.Households)
	table2 := fetchArtifact(t, s, "table2")
	mitigations := fetchArtifact(t, s, "mitigations")
	s.Close()

	for _, shards := range []int{4, 3} {
		re := openTestServer(t, Config{Workers: 2, Shards: shards, QueueCapacity: households, DataDir: copyDataDir(t, dir)})
		if got := fleetOf(t, re); got.InspectorHouseholds != households {
			t.Fatalf("shards=%d: recovered %d households, want %d", shards, got.InspectorHouseholds, households)
		}
		if got := fetchArtifact(t, re, "table2"); !bytes.Equal(got, table2) {
			t.Fatalf("shards=%d: recovered table2 differs:\n%s\nvs\n%s", shards, got, table2)
		}
		if got := fetchArtifact(t, re, "mitigations"); !bytes.Equal(got, mitigations) {
			t.Fatalf("shards=%d: recovered mitigations differ", shards)
		}
		if re.reg.CounterValue("serve_wal_replay_truncated") != 0 {
			t.Fatalf("shards=%d: clean recovery flagged truncation", shards)
		}
		re.Close()
	}
}

// TestWALReplayTruncatedTail: a WAL tail damaged mid-record (the shape a
// crash leaves) replays up to the last intact record — which is served —
// and the drop is counted under serve_wal_replay_truncated, never fatal.
func TestWALReplayTruncatedTail(t *testing.T) {
	ds := inspector.Generate(52, 3)
	dir := t.TempDir()

	s := openTestServer(t, Config{Workers: 1, Shards: 2, DataDir: dir})
	ingestFleet(t, s, ds.Households[:1])
	s.Close()

	// Simulate records written after the final checkpoint: a fresh segment
	// holding one intact record and one torn one.
	segs, err := store.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	intact, err := json.Marshal(ds.Households[1].Wire())
	if err != nil {
		t.Fatal(err)
	}
	torn, err := json.Marshal(ds.Households[2].Wire())
	if err != nil {
		t.Fatal(err)
	}
	frame := store.EncodeRecord(nil, intact)
	frame = store.EncodeRecord(frame, torn)
	frame = frame[:len(frame)-7] // tear the second record's tail off
	seg := segs[len(segs)-1] + 1
	if err := os.WriteFile(filepath.Join(dir, store.SegmentName(seg)), frame, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTestServer(t, Config{Workers: 1, Shards: 2, DataDir: dir})
	if got := re.reg.CounterValue("serve_wal_replay_truncated"); got != 1 {
		t.Fatalf("serve_wal_replay_truncated = %d, want 1", got)
	}
	// The intact record before the tear is recovered and served…
	if w := do(re, "GET", "/v1/households/"+ds.Households[1].ID+"/report", nil); w.Code != http.StatusOK {
		t.Fatalf("household from intact tail record: status %d", w.Code)
	}
	// …the torn record's household is not.
	if w := do(re, "GET", "/v1/households/"+ds.Households[2].ID+"/report", nil); w.Code != http.StatusNotFound {
		t.Fatalf("household from torn record: status %d, want 404", w.Code)
	}
	if got := fleetOf(t, re); got.InspectorHouseholds != 2 {
		t.Fatalf("recovered %d households, want 2", got.InspectorHouseholds)
	}
}

// TestCheckpointCompaction is satellite 4: after a checkpoint, the
// pre-checkpoint WAL segments are (a) actually deleted when compaction is
// on, and (b) redundant when retained — boot-from-checkpoint and
// boot-from-full-WAL produce byte-identical artifacts.
func TestCheckpointCompaction(t *testing.T) {
	const households = 30
	ds := inspector.Generate(53, households)

	// Compaction on: pre-checkpoint segments must be gone.
	dirC := t.TempDir()
	s := openTestServer(t, Config{Workers: 2, Shards: 4, QueueCapacity: households,
		DataDir: dirC, CheckpointEvery: 10})
	ingestFleet(t, s, ds.Households)
	s.Close()
	ckpts, err := store.Checkpoints(dirC)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("checkpoints: %v, %v", ckpts, err)
	}
	segs, err := store.Segments(dirC)
	if err != nil {
		t.Fatal(err)
	}
	latest := ckpts[len(ckpts)-1]
	if len(ckpts) != 1 {
		t.Fatalf("compaction retained %d checkpoints, want 1", len(ckpts))
	}
	for _, seg := range segs {
		if seg < latest {
			t.Fatalf("pre-checkpoint segment %d survived compaction (checkpoint %d)", seg, latest)
		}
	}
	if s.reg.CounterValue("serve_checkpoints") < 2 {
		t.Fatalf("periodic checkpointing never fired: %d checkpoints", s.reg.CounterValue("serve_checkpoints"))
	}

	// Retention on: every segment still present; the checkpoint is then
	// provably redundant — deleting all checkpoints (full-WAL boot) yields
	// the same bytes as the checkpoint boot.
	dirR := t.TempDir()
	s2 := openTestServer(t, Config{Workers: 2, Shards: 4, QueueCapacity: households,
		DataDir: dirR, CheckpointEvery: 10, RetainWAL: true})
	ingestFleet(t, s2, ds.Households)
	want2 := fetchArtifact(t, s2, "table2")
	wantM := fetchArtifact(t, s2, "mitigations")
	s2.Close()

	fromCkpt := openTestServer(t, Config{Workers: 1, Shards: 4, DataDir: copyDataDir(t, dirR), RetainWAL: true})
	if fromCkpt.reg.CounterValue("serve_checkpoint_households_loaded") == 0 {
		t.Fatal("checkpoint boot did not load from the checkpoint")
	}

	walDir := copyDataDir(t, dirR)
	for _, seq := range mustCheckpoints(t, walDir) {
		if err := os.RemoveAll(filepath.Join(walDir, store.CheckpointName(seq))); err != nil {
			t.Fatal(err)
		}
	}
	fromWAL := openTestServer(t, Config{Workers: 1, Shards: 4, DataDir: walDir, RetainWAL: true})
	if fromWAL.reg.CounterValue("serve_wal_replay_records") < households {
		t.Fatalf("full-WAL boot replayed %d records, want >= %d",
			fromWAL.reg.CounterValue("serve_wal_replay_records"), households)
	}

	for name, want := range map[string][]byte{"table2": want2, "mitigations": wantM} {
		a, b := fetchArtifact(t, fromCkpt, name), fetchArtifact(t, fromWAL, name)
		if !bytes.Equal(a, want) || !bytes.Equal(b, want) {
			t.Fatalf("%s: boot-from-checkpoint and boot-from-full-WAL disagree with the original:\nckpt: %s\nwal:  %s\norig: %s",
				name, a, b, want)
		}
	}
	fa, fb := fleetOf(t, fromCkpt), fleetOf(t, fromWAL)
	if fa != fb || fa.InspectorHouseholds != households {
		t.Fatalf("fleet summaries disagree: %+v vs %+v", fa, fb)
	}
}

func mustCheckpoints(t *testing.T, dir string) []int {
	t.Helper()
	seqs, err := store.Checkpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

// TestDurableAckSurvivesUncleanStop: records acknowledged under the default
// group-commit mode are on disk the moment the ack leaves — a server that
// never gets to Close (no final checkpoint, no WAL close) still recovers
// every acknowledged household from the raw log on the next boot.
func TestDurableAckSurvivesUncleanStop(t *testing.T) {
	const households = 12
	ds := inspector.Generate(54, households)
	dir := t.TempDir()

	s, err := Open(Config{Workers: 2, Shards: 4, QueueCapacity: households,
		DataDir: dir, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ingestFleet(t, s, ds.Households)
	want := fetchArtifact(t, s, "table2")
	// No Close: the process "dies" with the WAL unclosed and no checkpoint.
	// (The workers leak for the rest of the test binary — the price of
	// simulating a crash in-process; the subprocess SIGKILL harness in
	// cmd/iotserve covers the real thing.)

	re := openTestServer(t, Config{Workers: 2, Shards: 4, DataDir: copyDataDir(t, dir)})
	if got := fleetOf(t, re); got.InspectorHouseholds != households {
		t.Fatalf("recovered %d households after unclean stop, want %d", got.InspectorHouseholds, households)
	}
	if got := fetchArtifact(t, re, "table2"); !bytes.Equal(got, want) {
		t.Fatalf("table2 after unclean stop differs:\n%s\nvs\n%s", got, want)
	}
	if re.reg.CounterValue("serve_wal_replay_records") != households {
		t.Fatalf("replayed %d records, want %d", re.reg.CounterValue("serve_wal_replay_records"), households)
	}
}
