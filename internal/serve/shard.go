package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/engine"
	"iotlan/internal/inspector"
)

// fleetShard is one hash slice of the fleet: households whose IDs map to it
// under engine.ShardOf, an independent lock, a version counter bumped on
// every inspector mutation, and the incrementally maintained merged partial
// aggregates for the sharded artifacts. Sharding is purely an
// availability/latency structure — artifact bytes are identical for any
// shard count, because the partial aggregates merge partition-invariantly
// (internal/analysis/partial.go) and every read-side assembly sorts by
// household ID.
type fleetShard struct {
	mu         sync.Mutex
	households map[string]*householdState
	version    uint64
	// inspectorN counts households with a crowdsourced record — the
	// denominator the live aggregates cover.
	inspectorN int
	// liveEntropy/liveMitigations are the shard's *live* merged partials:
	// every ingest folds the household's previous contribution out and the
	// new one in (serve.go foldHousehold), so a read snapshots running
	// counts instead of recomputing the shard. Maintained unless
	// Config.DisableIncremental.
	liveEntropy     *analysis.EntropyPartial
	liveMitigations *analysis.MitigationPartial
	partials        map[string]shardPartialEntry
	// flights single-flights the batch-recompute path per artifact: the
	// first miss computes, concurrent misses at the same version wait for
	// its result instead of duplicating the work.
	flights map[string]*partialFlight
}

// shardPartialEntry caches one artifact's partial aggregate for the shard
// state at version; any mutation of the shard invalidates it — and only it:
// an upload leaves every other shard's cached partial warm.
type shardPartialEntry struct {
	version    uint64
	households int
	val        any
}

// partialFlight is one in-progress batch recompute. val and n are written
// before done closes and only read after.
type partialFlight struct {
	version uint64
	done    chan struct{}
	val     any
	n       int
}

func newShards(n int) []*fleetShard {
	shards := make([]*fleetShard, n)
	for i := range shards {
		shards[i] = &fleetShard{
			households:      make(map[string]*householdState),
			liveEntropy:     analysis.NewEntropyPartial(),
			liveMitigations: analysis.NewMitigationPartial(),
			partials:        make(map[string]shardPartialEntry),
			flights:         make(map[string]*partialFlight),
		}
	}
	return shards
}

// shardFor maps a household ID to its shard. The hash is process-independent
// (FNV-1a), so checkpoints, restarts, and any two servers with the same
// shard count agree on placement.
func (s *Server) shardFor(id string) *fleetShard {
	return s.shards[engine.ShardOf(id, len(s.shards))]
}

// household returns (creating if needed) a household's state. Caller holds
// sh.mu.
func (sh *fleetShard) household(id string) *householdState {
	st, ok := sh.households[id]
	if !ok {
		st = &householdState{protocols: make(map[string]int), sources: make(map[string]bool)}
		sh.households[id] = st
	}
	return st
}

// inspectorSnapshot returns the shard's crowdsourced households in sorted-ID
// order. Caller holds sh.mu; the households themselves are shared immutably
// (ingest replaces them whole, never mutates).
func (sh *fleetShard) inspectorSnapshot() []*inspector.Household {
	ids := make([]string, 0, len(sh.households))
	for id, st := range sh.households {
		if st.inspector != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*inspector.Household, len(ids))
	for i, id := range ids {
		out[i] = sh.households[id].inspector
	}
	return out
}

// addContrib folds one household's singleton partials into the live
// aggregates; subContrib retracts them. Caller holds sh.mu.
func (sh *fleetShard) addContrib(c *analysis.HouseholdPartial) {
	sh.liveEntropy.Add(c.Entropy)
	sh.liveMitigations.Add(c.Mitigations)
}

func (sh *fleetShard) subContrib(c *analysis.HouseholdPartial) {
	sh.liveEntropy.Sub(c.Entropy)
	sh.liveMitigations.Sub(c.Mitigations)
}

// shardedArtifact describes one artifact served by per-shard partial merge:
// how to snapshot the live incremental aggregate, and how to recompute the
// partial from a household snapshot (the cold path — -incremental=false —
// and the self-check's shadow).
type shardedArtifact struct {
	batch func([]*inspector.Household) any
	// live clones the shard's incrementally maintained aggregate. Caller
	// holds sh.mu. Nil means the artifact has no live form and always takes
	// the batch path (tests use this to exercise the single-flight).
	live func(*fleetShard) any
}

// shardedArtifacts maps the artifacts served via per-shard partial merge.
// Everything else takes the full-snapshot Study path in RunFleetArtifact.
var shardedArtifacts = map[string]shardedArtifact{
	"table2": {
		batch: func(hhs []*inspector.Household) any { return analysis.EntropyPartialOf(hhs, nil) },
		live:  func(sh *fleetShard) any { return sh.liveEntropy.Clone() },
	},
	"mitigations": {
		batch: func(hhs []*inspector.Household) any { return analysis.MitigationPartialOf(hhs, nil) },
		live:  func(sh *fleetShard) any { return sh.liveMitigations.Clone() },
	},
}

// renderSharded merges shard partials for one sharded artifact through the
// same iotlan result constructors the offline Study uses — shared by the
// read path and the self-check so "byte-identical" means the full rendered
// surface.
func renderSharded(name string, parts []any) iotlan.Result {
	switch name {
	case "table2":
		ps := make([]*analysis.EntropyPartial, len(parts))
		for i, p := range parts {
			ps[i] = p.(*analysis.EntropyPartial)
		}
		return iotlan.EntropyResult(analysis.MergeEntropy(ps))
	case "mitigations":
		ps := make([]*analysis.MitigationPartial, len(parts))
		for i, p := range parts {
			ps[i] = p.(*analysis.MitigationPartial)
		}
		return iotlan.MitigationResult(analysis.MergeMitigations(ps))
	}
	panic("serve: renderSharded of unknown artifact " + name)
}

// partialFor returns the shard's partial aggregate for one artifact plus the
// shard version the value corresponds to.
//
// With incremental maintenance on, a stale entry is refreshed by *cloning*
// the live aggregate under the shard lock — a counter copy, no re-extraction
// — so the cache check and store are one critical section and recomputation
// cannot be duplicated by construction. The batch fallback (cold path when
// incremental maintenance is off) snapshots the households and recomputes
// outside the lock; concurrent misses at the same version coalesce onto a
// single flight — previously both ran compute and the laggard's store
// silently won, wasting a full shard recompute per racing reader.
func (s *Server) partialFor(sh *fleetShard, name string, sa shardedArtifact) (any, int, uint64) {
	sh.mu.Lock()
	v := sh.version
	if e, ok := sh.partials[name]; ok && e.version == v {
		sh.mu.Unlock()
		s.reg.Counter("serve_shard_partials", "result", "hit").Inc()
		return e.val, e.households, v
	}
	if sa.live != nil && s.incremental() {
		val := sa.live(sh)
		n := sh.inspectorN
		sh.partials[name] = shardPartialEntry{version: v, households: n, val: val}
		sh.mu.Unlock()
		s.reg.Counter("serve_shard_partials", "result", "miss").Inc()
		return val, n, v
	}
	if f, ok := sh.flights[name]; ok && f.version == v {
		sh.mu.Unlock()
		s.reg.Counter("serve_shard_partials", "result", "wait").Inc()
		<-f.done
		return f.val, f.n, f.version
	}
	f := &partialFlight{version: v, done: make(chan struct{})}
	sh.flights[name] = f
	hhs := sh.inspectorSnapshot()
	sh.mu.Unlock()
	s.reg.Counter("serve_shard_partials", "result", "miss").Inc()
	f.val, f.n = sa.batch(hhs), len(hhs)
	sh.mu.Lock()
	if sh.flights[name] == f {
		delete(sh.flights, name)
	}
	// A racing ingest may have bumped the version mid-compute; never clobber
	// a fresher entry with this older snapshot.
	if e, ok := sh.partials[name]; !ok || e.version < v {
		sh.partials[name] = shardPartialEntry{version: v, households: f.n, val: f.val}
	}
	sh.mu.Unlock()
	close(f.done)
	return f.val, f.n, v
}

// runShardedArtifact serves table2/mitigations by merging per-shard partial
// aggregates at read time (fanned out across the worker budget, merged by
// shard index — never completion order) and rendering the merged rows
// through the same iotlan result constructors the offline Study uses.
// Output bytes are identical to the full-snapshot path for any shard count.
//
// The memo is labeled with the per-shard version *vector the sweep actually
// observed* — partialFor returns each contribution's version alongside the
// value. The previous fleet-version label was read before the sweep, so a
// racing ingest could memoize a body mixing shard states under a version
// that matched neither; with the vector label, a hit requires every shard
// to still be exactly at the version its contribution came from.
func (s *Server) runShardedArtifact(ctx context.Context, a iotlan.Artifact, sa shardedArtifact) ([]byte, error) {
	s.mu.Lock()
	memo, ok := s.fleetMemo[a.Name]
	s.mu.Unlock()
	if ok && s.shardVersionsMatch(memo.shardVers) {
		s.reg.Counter("serve_fleet_cache", "result", "hit").Inc()
		return memo.body, nil
	}
	s.reg.Counter("serve_fleet_cache", "result", "miss").Inc()

	bStart := time.Now()
	_, bspan := s.spans.StartSpan(ctx, "serve", "artifact.build", "artifact", a.Name)
	type contribution struct {
		val any
		n   int
		ver uint64
	}
	contribs := engine.Map(s.cfg.Workers, len(s.shards), func(i int) contribution {
		val, n, ver := s.partialFor(s.shards[i], a.Name, sa)
		return contribution{val, n, ver}
	})
	households := 0
	observed := make([]uint64, len(contribs))
	parts := make([]any, len(contribs))
	for i, c := range contribs {
		households += c.n
		observed[i] = c.ver
		parts[i] = c.val
	}
	res := renderSharded(a.Name, parts)
	bspan.End()
	s.stageObserve("artifact.build", time.Since(bStart))

	body := mustJSON(artifactReport{
		Name:       a.Name,
		PaperRef:   a.PaperRef,
		Kind:       a.Kind,
		Households: households,
		ID:         res.ID,
		Rendered:   res.Rendered,
		Metrics:    res.Metrics,
	})
	s.mu.Lock()
	s.fleetMemo[a.Name] = fleetEntry{shardVers: observed, body: body}
	s.mu.Unlock()
	return body, nil
}

// shardVersionsMatch reports whether every shard currently sits at the
// version recorded in vers — the memo-hit condition for sharded artifacts.
func (s *Server) shardVersionsMatch(vers []uint64) bool {
	if len(vers) != len(s.shards) {
		return false
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		v := sh.version
		sh.mu.Unlock()
		if v != vers[i] {
			return false
		}
	}
	return true
}
