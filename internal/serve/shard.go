package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"iotlan"
	"iotlan/internal/analysis"
	"iotlan/internal/engine"
	"iotlan/internal/inspector"
)

// fleetShard is one hash slice of the fleet: households whose IDs map to it
// under engine.ShardOf, an independent lock, a version counter bumped on
// every inspector mutation, and per-artifact cached partial aggregates.
// Sharding is purely an availability/latency structure — artifact bytes are
// identical for any shard count, because the partial aggregates merge
// partition-invariantly (internal/analysis/partial.go) and every read-side
// assembly sorts by household ID.
type fleetShard struct {
	mu         sync.Mutex
	households map[string]*householdState
	version    uint64
	partials   map[string]shardPartialEntry
}

// shardPartialEntry caches one artifact's partial aggregate for the shard
// state at version; any mutation of the shard invalidates it — and only it:
// an upload leaves every other shard's cached partial warm.
type shardPartialEntry struct {
	version    uint64
	households int
	val        any
}

func newShards(n int) []*fleetShard {
	shards := make([]*fleetShard, n)
	for i := range shards {
		shards[i] = &fleetShard{
			households: make(map[string]*householdState),
			partials:   make(map[string]shardPartialEntry),
		}
	}
	return shards
}

// shardFor maps a household ID to its shard. The hash is process-independent
// (FNV-1a), so checkpoints, restarts, and any two servers with the same
// shard count agree on placement.
func (s *Server) shardFor(id string) *fleetShard {
	return s.shards[engine.ShardOf(id, len(s.shards))]
}

// household returns (creating if needed) a household's state. Caller holds
// sh.mu.
func (sh *fleetShard) household(id string) *householdState {
	st, ok := sh.households[id]
	if !ok {
		st = &householdState{protocols: make(map[string]int), sources: make(map[string]bool)}
		sh.households[id] = st
	}
	return st
}

// inspectorSnapshot returns the shard's crowdsourced households in sorted-ID
// order. Caller holds sh.mu; the households themselves are shared immutably
// (ingest replaces them whole, never mutates).
func (sh *fleetShard) inspectorSnapshot() []*inspector.Household {
	ids := make([]string, 0, len(sh.households))
	for id, st := range sh.households {
		if st.inspector != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*inspector.Household, len(ids))
	for i, id := range ids {
		out[i] = sh.households[id].inspector
	}
	return out
}

// partialFor returns the shard's partial aggregate for one artifact,
// recomputing only when the shard's state moved since the cached value —
// the per-shard half of the read-time merge. compute runs without the shard
// lock (the snapshot is immutable).
func (s *Server) partialFor(sh *fleetShard, name string, compute func([]*inspector.Household) any) (any, int) {
	sh.mu.Lock()
	v := sh.version
	if e, ok := sh.partials[name]; ok && e.version == v {
		sh.mu.Unlock()
		s.reg.Counter("serve_shard_partials", "result", "hit").Inc()
		return e.val, e.households
	}
	hhs := sh.inspectorSnapshot()
	sh.mu.Unlock()
	s.reg.Counter("serve_shard_partials", "result", "miss").Inc()
	val := compute(hhs)
	sh.mu.Lock()
	if e, ok := sh.partials[name]; !ok || e.version <= v {
		sh.partials[name] = shardPartialEntry{version: v, households: len(hhs), val: val}
	}
	sh.mu.Unlock()
	return val, len(hhs)
}

// shardedArtifacts maps the artifacts served via per-shard partial merge to
// their partial constructors. Everything else takes the full-snapshot Study
// path in RunFleetArtifact.
var shardedArtifacts = map[string]func([]*inspector.Household) any{
	"table2":      func(hhs []*inspector.Household) any { return analysis.EntropyPartialOf(hhs, nil) },
	"mitigations": func(hhs []*inspector.Household) any { return analysis.MitigationPartialOf(hhs, nil) },
}

// runShardedArtifact serves table2/mitigations by merging per-shard partial
// aggregates at read time: stale shards recompute their partial (fanned out
// across the worker budget, merged by shard index — never completion
// order), warm shards answer from cache, and the merged rows render through
// the same iotlan result constructors the offline Study uses. Output bytes
// are identical to the full-snapshot path for any shard count.
func (s *Server) runShardedArtifact(ctx context.Context, a iotlan.Artifact, compute func([]*inspector.Household) any) ([]byte, error) {
	// Version is read before the shard sweep: a concurrent ingest can at
	// worst label a fresher body with an older version (forcing a spurious
	// recompute later), never serve stale bytes under a newer version.
	version := s.fleetVersion.Load()
	s.mu.Lock()
	memo, ok := s.fleetMemo[a.Name]
	s.mu.Unlock()
	if ok && memo.version == version {
		s.reg.Counter("serve_fleet_cache", "result", "hit").Inc()
		return memo.body, nil
	}
	s.reg.Counter("serve_fleet_cache", "result", "miss").Inc()

	bStart := time.Now()
	_, bspan := s.spans.StartSpan(ctx, "serve", "artifact.build", "artifact", a.Name)
	type contribution struct {
		val any
		n   int
	}
	contribs := engine.Map(s.cfg.Workers, len(s.shards), func(i int) contribution {
		val, n := s.partialFor(s.shards[i], a.Name, compute)
		return contribution{val, n}
	})
	households := 0
	for _, c := range contribs {
		households += c.n
	}
	var res iotlan.Result
	switch a.Name {
	case "table2":
		ps := make([]*analysis.EntropyPartial, len(contribs))
		for i, c := range contribs {
			ps[i] = c.val.(*analysis.EntropyPartial)
		}
		res = iotlan.EntropyResult(analysis.MergeEntropy(ps))
	case "mitigations":
		ps := make([]*analysis.MitigationPartial, len(contribs))
		for i, c := range contribs {
			ps[i] = c.val.(*analysis.MitigationPartial)
		}
		res = iotlan.MitigationResult(analysis.MergeMitigations(ps))
	}
	bspan.End()
	s.stageObserve("artifact.build", time.Since(bStart))

	body := mustJSON(artifactReport{
		Name:       a.Name,
		PaperRef:   a.PaperRef,
		Kind:       a.Kind,
		Households: households,
		ID:         res.ID,
		Rendered:   res.Rendered,
		Metrics:    res.Metrics,
	})
	s.mu.Lock()
	s.fleetMemo[a.Name] = fleetEntry{version: version, body: body}
	s.mu.Unlock()
	return body, nil
}
