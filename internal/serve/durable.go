package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"iotlan/internal/inspector"
	"iotlan/internal/serve/store"
)

// This file is the durability layer: with Config.DataDir set, every
// acknowledged inspector ingest is appended to a write-ahead log (one
// checksummed record per household, inspector wire format) before it
// mutates fleet state, periodic checkpoints snapshot the shards, and Open
// replays checkpoint + WAL on boot. Capture-derived counters (frames,
// protocols, exposure) are deliberately ephemeral — they are operational
// accumulators, not inputs to any registry artifact — so only the
// crowdsourced inspector records cross restarts.

// Open builds the server, recovering durable state from cfg.DataDir first
// (latest complete checkpoint, then every intact WAL record after it), and
// starts the worker pool. With DataDir empty it is equivalent to New.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := newServer(cfg)
	if cfg.DataDir != "" {
		if err := s.recoverState(); err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", cfg.DataDir, err)
		}
		wal, err := store.OpenLog(cfg.DataDir, cfg.WALSync)
		if err != nil {
			return nil, fmt.Errorf("serve: open wal: %w", err)
		}
		s.wal = wal
		s.reg.Gauge("serve_wal_segment").Set(int64(wal.Segment()))
		if cfg.SelfCheckEvery > 0 {
			// Workers are not running yet, so this checks exactly the
			// recovered state: the live aggregates the replay folded must
			// render byte-identically to a batch recompute of the recovered
			// records.
			s.SelfCheck()
		}
	}
	s.startWorkers()
	return s, nil
}

// recoverState rebuilds fleet state: load the newest complete checkpoint,
// then replay WAL segments from the checkpoint's label onward. A torn or
// corrupt record stops the replay at the last intact prefix — counted under
// serve_wal_replay_truncated and logged, never fatal: that tail is exactly
// the un-acknowledged write a crash interrupts.
func (s *Server) recoverState() error {
	dir := s.cfg.DataDir
	mf, blobs, ok, err := store.LatestCheckpoint(dir)
	if err != nil {
		return err
	}
	fromSeg, applied := 0, 0
	if ok {
		for i, blob := range blobs {
			dec := inspector.NewWireDecoder(bytes.NewReader(blob))
			for {
				hh, err := dec.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return fmt.Errorf("checkpoint shard %d: %w", i, err)
				}
				s.applyRecovered(hh)
				applied++
			}
		}
		fromSeg = mf.Seq
		s.reg.Counter("serve_checkpoint_households_loaded").Add(uint64(applied))
	}
	st, err := store.ReplayLog(dir, fromSeg, func(p []byte) error {
		var w inspector.WireHousehold
		if err := json.Unmarshal(p, &w); err != nil {
			// The record passed its checksum, so this is a writer bug or a
			// format change, not disk damage — surface it.
			return fmt.Errorf("wal record: %w", err)
		}
		hh, err := w.Household()
		if err != nil {
			return fmt.Errorf("wal record: %w", err)
		}
		s.applyRecovered(hh)
		return nil
	})
	if err != nil {
		return err
	}
	s.reg.Counter("serve_wal_replay_records").Add(uint64(st.Records))
	if st.Truncated {
		s.reg.Counter("serve_wal_replay_truncated").Inc()
		if s.logger != nil {
			s.logger.Warn("wal replay stopped at damaged record",
				"segment", st.TruncatedSegment, "records_recovered", st.Records, "err", st.Err)
		}
	}
	if s.logger != nil {
		s.logger.Info("recovered durable state",
			"checkpoint_households", applied, "wal_records", st.Records, "wal_segments", st.Segments)
	}
	if applied+st.Records > 0 {
		s.fleetVersion.Add(1)
	}
	return nil
}

// applyRecovered installs one recovered household. Replay is idempotent —
// households replace whole — so a record captured by both a checkpoint and
// the racing WAL segment converges to one state. With incremental
// maintenance on, replay goes through the same fold path as live ingest, so
// recovery rebuilds the live aggregates in lockstep with the records: a
// restarted server holds exactly the incremental state a never-crashed one
// would (the boot-time self-check in Open proves it against a batch
// recompute).
func (s *Server) applyRecovered(hh *inspector.Household) {
	if s.incremental() {
		s.foldHousehold(hh)
		return
	}
	s.installRecord(hh)
}

// walAppend logs one ingest batch, one record per household, before the
// batch touches fleet state. When it returns nil every record has reached
// the kernel (and, in group/always sync modes, stable storage) — the ack
// the client gets is backed by the log. Caller holds ckptGate.RLock.
func (s *Server) walAppend(hhs []*inspector.Household) error {
	for _, hh := range hhs {
		p, err := json.Marshal(hh.Wire())
		if err != nil {
			return err
		}
		if err := s.wal.Append(p); err != nil {
			return err
		}
	}
	s.reg.Counter("serve_wal_appends").Add(uint64(len(hhs)))
	s.walSince.Add(int64(len(hhs)))
	return nil
}

// maybeCheckpoint checkpoints when enough WAL records accumulated since the
// last one. At most one checkpoint runs at a time; concurrent triggers fall
// through (the running checkpoint covers their records).
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || s.cfg.CheckpointEvery <= 0 ||
		s.walSince.Load() < int64(s.cfg.CheckpointEvery) {
		return
	}
	if !s.ckptMu.TryLock() {
		return
	}
	defer s.ckptMu.Unlock()
	if s.walSince.Load() < int64(s.cfg.CheckpointEvery) {
		return // the checkpoint we raced against already covered us
	}
	s.checkpoint()
}

// checkpoint rotates the WAL to a fresh segment and snapshots every shard,
// labeled with that segment: the snapshot then covers everything below it,
// so pre-checkpoint segments are compacted away (unless RetainWAL). The
// ckptGate write lock is held only across rotate + pointer capture — every
// (append, apply) ingest pair runs under the read lock, so a record in a
// pre-rotation segment is always in the captured state; encoding and disk
// writes happen after the gate drops. Caller holds ckptMu.
func (s *Server) checkpoint() {
	start := time.Now()
	s.ckptGate.Lock()
	seg, err := s.wal.Rotate()
	if err != nil {
		s.ckptGate.Unlock()
		s.checkpointFailed(err)
		return
	}
	snaps := make([][]*inspector.Household, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		snaps[i] = sh.inspectorSnapshot()
		sh.mu.Unlock()
	}
	s.walSince.Store(0)
	s.ckptGate.Unlock()

	blobs := make([][]byte, len(snaps))
	records := 0
	for i, hhs := range snaps {
		var buf bytes.Buffer
		if err := inspector.EncodeWire(&buf, hhs); err != nil {
			s.checkpointFailed(err)
			return
		}
		blobs[i] = buf.Bytes()
		records += len(hhs)
	}
	if err := store.WriteCheckpoint(s.cfg.DataDir, seg, blobs, records); err != nil {
		s.checkpointFailed(err)
		return
	}
	if !s.cfg.RetainWAL {
		if _, _, err := store.CompactBefore(s.cfg.DataDir, seg); err != nil {
			s.checkpointFailed(err)
			return
		}
	}
	s.reg.Counter("serve_checkpoints").Inc()
	s.reg.Gauge("serve_wal_segment").Set(int64(seg))
	if s.logger != nil {
		s.logger.Info("checkpoint written",
			"segment", seg, "households", records, "ms", time.Since(start).Milliseconds())
	}
}

// checkpointFailed records a checkpoint error. The WAL still holds every
// acknowledged record, so durability degrades to a longer replay, not loss.
func (s *Server) checkpointFailed(err error) {
	s.reg.Counter("serve_checkpoint_errors").Inc()
	if s.logger != nil {
		s.logger.Error("checkpoint failed", "err", err)
	}
}

// closeDurable is Close's flush: one final checkpoint (even with periodic
// checkpointing off) so the next boot loads a snapshot instead of replaying
// the whole log, then the WAL is synced shut.
func (s *Server) closeDurable() {
	if s.wal == nil {
		return
	}
	s.ckptMu.Lock()
	s.checkpoint()
	s.ckptMu.Unlock()
	if err := s.wal.Close(); err != nil && s.logger != nil {
		s.logger.Error("wal close", "err", err)
	}
}
