package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"iotlan/internal/inspector"
	"iotlan/internal/obs"
)

// TestUploadSpansReachFlightRecorder: every upload leaves a root `upload`
// trace with per-stage children in the flight recorder, and the
// /debug/flightrecorder endpoint dumps them as valid Chrome trace JSON.
func TestUploadSpansReachFlightRecorder(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ds := inspector.Generate(11, 2)
	h := ds.Households[0]
	if w := do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), capturePCAP(t, h)); w.Code != http.StatusOK {
		t.Fatalf("capture upload: %d", w.Code)
	}
	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, ds.Households...)); w.Code != http.StatusOK {
		t.Fatalf("wire upload: %d", w.Code)
	}
	if w := do(s, "GET", "/v1/artifacts/table2", nil); w.Code != http.StatusOK {
		t.Fatalf("artifact: %d", w.Code)
	}

	if got := s.FlightRecorder().Total(); got < 2 {
		t.Fatalf("flight recorder holds %d traces, want >= 2", got)
	}
	stageSeen := map[string]bool{}
	for _, rt := range s.FlightRecorder().Traces() {
		root := rt.Root()
		if root.Name == "upload" && len(rt.Spans) < 3 {
			t.Fatalf("upload trace has only %d spans: %+v", len(rt.Spans), rt.Spans)
		}
		for _, sp := range rt.Spans {
			stageSeen[sp.Name] = true
			if sp.ParentID != 0 && sp.TraceID != root.TraceID {
				t.Fatalf("span %s not linked to its root: %+v", sp.Name, sp)
			}
		}
	}
	for _, want := range []string{"upload", "queue.wait", "body.read", "pcap.decode",
		"inspector.decode", "analysis", "cache.lookup", "artifact", "artifact.build"} {
		if !stageSeen[want] {
			t.Fatalf("no %q span recorded; saw %v", want, stageSeen)
		}
	}

	w := do(s, "GET", "/debug/flightrecorder", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: %d", w.Code)
	}
	var events []struct {
		Name string            `json:"name"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatalf("flight recorder dump not valid JSON: %v\n%s", err, w.Body.String())
	}
	var uploads int
	for _, ev := range events {
		if ev.Name == "upload" {
			uploads++
			if ev.Args["status"] != "200" {
				t.Fatalf("upload span missing status attr: %+v", ev)
			}
		}
	}
	if uploads < 2 {
		t.Fatalf("dump has %d upload spans, want >= 2", uploads)
	}
}

// TestStageHistogramsPopulated: each pipeline stage feeds its own
// serve_stage_ms series, so /metrics can answer "where did the p99 go".
func TestStageHistogramsPopulated(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ds := inspector.Generate(12, 2)
	h := ds.Households[0]
	body := capturePCAP(t, h)
	for i := 0; i < 2; i++ { // second upload hits the cache
		if w := do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), body); w.Code != http.StatusOK {
			t.Fatalf("capture upload %d: %d", i, w.Code)
		}
	}
	if w := do(s, "POST", "/v1/ingest/inspector", wireBody(t, ds.Households...)); w.Code != http.StatusOK {
		t.Fatalf("wire upload: %d", w.Code)
	}
	for _, stage := range []string{"queue.wait", "body.read", "pcap.decode", "inspector.decode", "analysis", "cache.lookup"} {
		if n := s.stageHist[stage].Count(); n == 0 {
			t.Fatalf("stage %q histogram empty", stage)
		}
	}
	if s.mWorkersBusy.Value() != 0 {
		t.Fatalf("workers busy gauge %d after drain of work, want 0", s.mWorkersBusy.Value())
	}
	if s.mInflight.Value() != 0 {
		t.Fatalf("in-flight bytes gauge %d at rest, want 0", s.mInflight.Value())
	}
}

// TestTracingDisabled: DisableTracing removes spans and the flight
// recorder (404) but keeps every metric flowing.
func TestTracingDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DisableTracing: true})
	h := inspector.Generate(13, 1).Households[0]
	if w := do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), capturePCAP(t, h)); w.Code != http.StatusOK {
		t.Fatalf("upload: %d", w.Code)
	}
	if s.FlightRecorder() != nil {
		t.Fatal("flight recorder exists with tracing disabled")
	}
	if w := do(s, "GET", "/debug/flightrecorder", nil); w.Code != http.StatusNotFound {
		t.Fatalf("/debug/flightrecorder with tracing off: %d, want 404", w.Code)
	}
	// Metrics are independent of tracing.
	if s.stageHist["analysis"].Count() == 0 {
		t.Fatal("stage histograms stopped with tracing off")
	}
	m := do(s, "GET", "/metrics", nil)
	if !strings.Contains(m.Body.String(), "serve_stage_ms_bucket") {
		t.Fatal("/metrics lost stage histograms with tracing off")
	}
}

// TestStructuredRequestLog: with a Logger configured, every upload leaves
// exactly one structured line carrying household, stage timings, status,
// cache verdict, and admission-time queue depth — in both slog formats.
func TestStructuredRequestLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	syncWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := newTestServer(t, Config{
		Workers: 1,
		Logger:  slog.New(slog.NewJSONHandler(syncWriter, nil)),
	})
	h := inspector.Generate(14, 1).Households[0]
	body := capturePCAP(t, h)
	for i := 0; i < 2; i++ {
		if w := do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), body); w.Code != http.StatusOK {
			t.Fatalf("upload %d: %d", i, w.Code)
		}
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("log lines %d, want 2 (one per upload):\n%s", len(lines), strings.Join(lines, "\n"))
	}
	type logLine struct {
		Msg             string  `json:"msg"`
		Kind            string  `json:"kind"`
		Household       string  `json:"household"`
		Status          int     `json:"status"`
		Bytes           int64   `json:"bytes"`
		TotalMS         float64 `json:"total_ms"`
		QueueWaitMS     float64 `json:"queue_wait_ms"`
		AnalysisMS      float64 `json:"analysis_ms"`
		Cache           string  `json:"cache"`
		QueueDepthAdmit int     `json:"queue_depth_admit"`
	}
	var first, second logLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Msg != "upload" || first.Kind != "capture" || first.Household != h.ID ||
		first.Status != 200 || first.Bytes == 0 || first.TotalMS <= 0 || first.Cache != "miss" {
		t.Fatalf("first log line wrong: %+v", first)
	}
	if second.Cache != "hit" {
		t.Fatalf("second upload logged cache=%q, want hit", second.Cache)
	}
}

// TestResponsesCounter: the v1 surface counts every response by status.
func TestResponsesCounter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	h := inspector.Generate(15, 1).Households[0]
	do(s, "POST", fmt.Sprintf("/v1/households/%s/capture", h.ID), capturePCAP(t, h)) // 200
	do(s, "POST", "/v1/households/hx/capture", []byte("garbage"))                    // 400
	do(s, "GET", "/v1/households/ghost/report", nil)                                 // 404
	for code, want := range map[string]uint64{"200": 1, "400": 1, "404": 1} {
		if got := s.reg.CounterValue(obs.Key("serve_responses", "code", code)); got != want {
			t.Fatalf("serve_responses{code=%s} = %d, want %d", code, got, want)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
