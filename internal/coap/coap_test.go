package coap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGETRoundTrip(t *testing.T) {
	m := NewGET(42, "/oic/res")
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeGET || got.MessageID != 42 {
		t.Fatalf("header: %+v", got)
	}
	if got.Path() != "/oic/res" {
		t.Fatalf("path %q", got.Path())
	}
}

func TestContentResponse(t *testing.T) {
	req := NewGET(7, "/oic/res")
	req.Token = []byte{0xde, 0xad}
	resp := NewContent(req, []byte(`[{"href":"/oic/d"}]`))
	got, err := Unmarshal(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != CodeContent || got.MessageID != 7 {
		t.Fatalf("response header: %+v", got)
	}
	if !bytes.Equal(got.Token, req.Token) {
		t.Fatalf("token %x", got.Token)
	}
	if !bytes.Equal(got.Payload, []byte(`[{"href":"/oic/d"}]`)) {
		t.Fatalf("payload %q", got.Payload)
	}
}

func TestLongPathSegments(t *testing.T) {
	m := NewGET(1, "/a-fairly-long-path-segment-over-twelve-bytes/second")
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.URIPath) != 2 || got.URIPath[0] != "a-fairly-long-path-segment-over-twelve-bytes" {
		t.Fatalf("path: %v", got.URIPath)
	}
}

func TestUnmarshalRejects(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Fatal("short accepted")
	}
	bad := NewGET(1, "/x").Marshal()
	bad[0] = 0x80 // version 2
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool { Unmarshal(data); return true }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
