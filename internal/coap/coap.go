// Package coap implements the CoAP message codec (RFC 7252 subset) used by
// the lab's constrained devices: the Samsung fridge's IoTivity /oic/res
// discovery requests and HomePod Mini traffic (§5.1).
package coap

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Port is the CoAP UDP port.
const Port = 5683

// Message types.
const (
	Confirmable     = 0
	NonConfirmable  = 1
	Acknowledgement = 2
)

// Codes (class.detail packed as class<<5|detail).
const (
	CodeGET      = 1        // 0.01
	CodeContent  = 2<<5 | 5 // 2.05
	CodeNotFound = 4<<5 | 4 // 4.04
)

// Option numbers used here.
const (
	OptURIPath = 11
)

// Message is a CoAP message.
type Message struct {
	Type      uint8
	Code      uint8
	MessageID uint16
	Token     []byte
	URIPath   []string
	Payload   []byte
}

// Path returns the URI path joined with slashes.
func (m *Message) Path() string { return "/" + strings.Join(m.URIPath, "/") }

// Marshal encodes the message.
func (m *Message) Marshal() []byte {
	if len(m.Token) > 8 {
		m.Token = m.Token[:8]
	}
	out := make([]byte, 4, 64)
	out[0] = 0x40 | m.Type<<4 | uint8(len(m.Token)) // version 1
	out[1] = m.Code
	binary.BigEndian.PutUint16(out[2:4], m.MessageID)
	out = append(out, m.Token...)
	prev := 0
	for _, seg := range m.URIPath {
		delta := OptURIPath - prev
		prev = OptURIPath
		if len(seg) > 255 {
			seg = seg[:255]
		}
		switch {
		case delta < 13 && len(seg) < 13:
			out = append(out, byte(delta<<4|len(seg)))
		case delta < 13:
			out = append(out, byte(delta<<4|13), byte(len(seg)-13))
		default:
			out = append(out, byte(13<<4|len(seg)), byte(delta-13))
		}
		out = append(out, seg...)
	}
	if len(m.Payload) > 0 {
		out = append(out, 0xff)
		out = append(out, m.Payload...)
	}
	return out
}

// Unmarshal decodes a message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("coap: short message")
	}
	if data[0]>>6 != 1 {
		return nil, fmt.Errorf("coap: bad version %d", data[0]>>6)
	}
	m := &Message{
		Type:      data[0] >> 4 & 0x3,
		Code:      data[1],
		MessageID: binary.BigEndian.Uint16(data[2:4]),
	}
	tkl := int(data[0] & 0x0f)
	if tkl > 8 || 4+tkl > len(data) {
		return nil, fmt.Errorf("coap: bad token length %d", tkl)
	}
	m.Token = append([]byte(nil), data[4:4+tkl]...)
	rest := data[4+tkl:]
	optNum := 0
	for len(rest) > 0 {
		if rest[0] == 0xff {
			m.Payload = append([]byte(nil), rest[1:]...)
			break
		}
		delta := int(rest[0] >> 4)
		olen := int(rest[0] & 0x0f)
		rest = rest[1:]
		take := func(v int) (int, error) {
			switch v {
			case 13:
				if len(rest) < 1 {
					return 0, fmt.Errorf("coap: truncated extended option")
				}
				ext := int(rest[0]) + 13
				rest = rest[1:]
				return ext, nil
			case 14, 15:
				return 0, fmt.Errorf("coap: unsupported option encoding")
			default:
				return v, nil
			}
		}
		var err error
		if delta, err = take(delta); err != nil {
			return nil, err
		}
		if olen, err = take(olen); err != nil {
			return nil, err
		}
		if olen > len(rest) {
			return nil, fmt.Errorf("coap: truncated option value")
		}
		optNum += delta
		if optNum == OptURIPath {
			m.URIPath = append(m.URIPath, string(rest[:olen]))
		}
		rest = rest[olen:]
	}
	return m, nil
}

// NewGET builds a GET request for a path like "/oic/res".
func NewGET(id uint16, path string) *Message {
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: id}
	for _, seg := range strings.Split(strings.Trim(path, "/"), "/") {
		if seg != "" {
			m.URIPath = append(m.URIPath, seg)
		}
	}
	return m
}

// NewContent builds a 2.05 Content response mirroring the request ID/token.
func NewContent(req *Message, payload []byte) *Message {
	return &Message{
		Type: Acknowledgement, Code: CodeContent,
		MessageID: req.MessageID, Token: req.Token, Payload: payload,
	}
}
