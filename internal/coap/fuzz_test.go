package coap

import "testing"

// FuzzDecode asserts the CoAP codec is total: the option loop must always
// terminate (every iteration consumes at least one byte) and a parsed
// message must re-marshal without panicking.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewGET(1, "/oic/res").Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		_ = m.Path()
		_ = m.Marshal()
	})
}
