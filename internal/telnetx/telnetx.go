// Package telnetx implements the telnet option negotiation and banner logic
// used by the study's honeypot and by vulnerable camera firmware that still
// ships a telnet daemon (§4.2).
package telnetx

import "bytes"

// Telnet command bytes.
const (
	IAC  = 255
	DONT = 254
	DO   = 253
	WONT = 252
	WILL = 251
)

// Common option codes.
const (
	OptEcho         = 1
	OptSuppressGA   = 3
	OptTerminalType = 24
	OptWindowSize   = 31
)

// Negotiation builds the server's opening IAC sequence.
func Negotiation() []byte {
	return []byte{
		IAC, WILL, OptEcho,
		IAC, WILL, OptSuppressGA,
		IAC, DO, OptTerminalType,
	}
}

// RefuseAll answers every WILL with DONT and every DO with WONT —
// a client that wants a dumb session.
func RefuseAll(in []byte) []byte {
	var out []byte
	for i := 0; i+2 < len(in); i++ {
		if in[i] != IAC {
			continue
		}
		switch in[i+1] {
		case WILL:
			out = append(out, IAC, DONT, in[i+2])
		case DO:
			out = append(out, IAC, WONT, in[i+2])
		}
		i += 2
	}
	return out
}

// StripIAC removes telnet command sequences, leaving user data.
func StripIAC(in []byte) []byte {
	var out []byte
	for i := 0; i < len(in); i++ {
		if in[i] == IAC && i+2 < len(in) && in[i+1] >= WILL && in[i+1] <= DONT {
			i += 2
			continue
		}
		out = append(out, in[i])
	}
	return out
}

// IsNegotiation reports whether the payload starts with IAC commands
// (the fingerprint scanners use to label a port TELNET).
func IsNegotiation(data []byte) bool {
	return len(data) >= 3 && data[0] == IAC && data[1] >= WILL && data[1] <= DONT
}

// Session is a minimal login state machine for honeypot servers: it presents
// a banner, collects a login/password pair, and always denies.
type Session struct {
	Banner string
	state  int
	user   string
	// Attempts records every credential pair tried (honeypot telemetry).
	Attempts [][2]string
}

// Greeting returns the negotiation bytes plus banner and login prompt.
func (s *Session) Greeting() []byte {
	out := Negotiation()
	out = append(out, []byte(s.Banner+"\r\nlogin: ")...)
	return out
}

// Feed consumes one line of client input and returns the server's reply.
func (s *Session) Feed(line []byte) []byte {
	text := string(bytes.TrimRight(StripIAC(line), "\r\n\x00"))
	switch s.state {
	case 0:
		s.user = text
		s.state = 1
		return []byte("Password: ")
	default:
		s.Attempts = append(s.Attempts, [2]string{s.user, text})
		s.state = 0
		return []byte("\r\nLogin incorrect\r\nlogin: ")
	}
}
