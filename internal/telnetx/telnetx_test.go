package telnetx

import (
	"bytes"
	"strings"
	"testing"
)

func TestNegotiationShape(t *testing.T) {
	n := Negotiation()
	if !IsNegotiation(n) {
		t.Fatal("negotiation bytes not recognised")
	}
	if IsNegotiation([]byte("login: ")) {
		t.Fatal("plain text misdetected as negotiation")
	}
}

func TestRefuseAll(t *testing.T) {
	in := []byte{IAC, WILL, OptEcho, IAC, DO, OptTerminalType}
	out := RefuseAll(in)
	want := []byte{IAC, DONT, OptEcho, IAC, WONT, OptTerminalType}
	if !bytes.Equal(out, want) {
		t.Fatalf("RefuseAll = %v, want %v", out, want)
	}
}

func TestStripIAC(t *testing.T) {
	in := append(Negotiation(), []byte("root\r\n")...)
	if got := string(StripIAC(in)); got != "root\r\n" {
		t.Fatalf("StripIAC = %q", got)
	}
}

func TestSessionCollectsCredentials(t *testing.T) {
	s := &Session{Banner: "BusyBox v1.12.1"}
	greet := string(s.Greeting())
	if !strings.Contains(greet, "BusyBox") || !strings.Contains(greet, "login:") {
		t.Fatalf("greeting %q", greet)
	}
	r1 := string(s.Feed([]byte("root\r\n")))
	if !strings.Contains(r1, "Password") {
		t.Fatalf("after login: %q", r1)
	}
	r2 := string(s.Feed([]byte("12345\r\n")))
	if !strings.Contains(r2, "incorrect") {
		t.Fatalf("after password: %q", r2)
	}
	if len(s.Attempts) != 1 || s.Attempts[0] != [2]string{"root", "12345"} {
		t.Fatalf("attempts: %v", s.Attempts)
	}
	// Second round works too.
	s.Feed([]byte("admin\r\n"))
	s.Feed([]byte("admin\r\n"))
	if len(s.Attempts) != 2 || s.Attempts[1] != [2]string{"admin", "admin"} {
		t.Fatalf("attempts: %v", s.Attempts)
	}
}
