package inspector_test

import (
	"bytes"
	"io"
	"testing"

	"iotlan/internal/analysis"
	"iotlan/internal/inspector"
	"iotlan/internal/pcap"
)

// TestWireRoundTripAnalysisIdentical: a dataset pushed through the upload
// wire format must analyze byte-identically — Table 2 rendering, §7
// mitigation sweep, and Appendix E identification accuracy all unchanged.
func TestWireRoundTripAnalysisIdentical(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		ds := inspector.Generate(seed, 60)

		var buf bytes.Buffer
		if err := inspector.EncodeWire(&buf, ds.Households); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		dec := inspector.NewWireDecoder(&buf)
		back := &inspector.Dataset{}
		for {
			h, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: decode: %v", seed, err)
			}
			back.Households = append(back.Households, h)
		}
		if back.Devices() != ds.Devices() {
			t.Fatalf("seed %d: %d devices in, %d out", seed, ds.Devices(), back.Devices())
		}

		a := analysis.RenderEntropyTable(analysis.EntropyTable(ds))
		b := analysis.RenderEntropyTable(analysis.EntropyTable(back))
		if a != b {
			t.Fatalf("seed %d: Table 2 changed across the wire:\n--- original\n%s--- round-trip\n%s", seed, a, b)
		}

		ma := analysis.RenderMitigationTable(analysis.MitigationTable(ds))
		mb := analysis.RenderMitigationTable(analysis.MitigationTable(back))
		if ma != mb {
			t.Fatalf("seed %d: mitigation sweep changed across the wire", seed)
		}

		if ia, ib := inspector.Accuracy(ds), inspector.Accuracy(back); ia != ib {
			t.Fatalf("seed %d: identification accuracy changed: %v vs %v", seed, ia, ib)
		}
	}
}

// TestWireEncodingDeterministic: same seed, same bytes — the encoder has no
// map-order or timestamp nondeterminism.
func TestWireEncodingDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := inspector.EncodeWire(&a, inspector.Generate(7, 25).Households); err != nil {
		t.Fatal(err)
	}
	if err := inspector.EncodeWire(&b, inspector.Generate(7, 25).Households); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("wire encoding differs between identical generations")
	}
}

// TestWireDecoderRejectsGarbage: malformed bodies fail cleanly, and a
// household without an id is rejected.
func TestWireDecoderRejectsGarbage(t *testing.T) {
	for _, body := range []string{
		"not json",
		`{"id":"u1","devices":[{"id":"d","oui":"zz:zz:zz"}]}`,
		`{"devices":[]}`,
	} {
		dec := inspector.NewWireDecoder(bytes.NewReader([]byte(body)))
		if _, err := dec.Next(); err == nil || err == io.EOF {
			t.Fatalf("body %q: want decode error, got %v", body, err)
		}
	}
}

// TestSyntheticCaptureStableAcrossWire: the synthetic capture derives only
// from wire-visible fields, so generated and round-tripped households render
// the same frames — and those frames survive the pcap container.
func TestSyntheticCaptureStableAcrossWire(t *testing.T) {
	ds := inspector.Generate(3, 10)
	for _, h := range ds.Households {
		orig := inspector.SyntheticCapture(h)
		back, err := h.Wire().Household()
		if err != nil {
			t.Fatal(err)
		}
		round := inspector.SyntheticCapture(back)
		if len(orig) != len(round) {
			t.Fatalf("household %s: %d frames vs %d after wire round-trip", h.ID, len(orig), len(round))
		}
		for i := range orig {
			if !bytes.Equal(orig[i].Data, round[i].Data) {
				t.Fatalf("household %s: frame %d differs after wire round-trip", h.ID, i)
			}
		}
		var buf bytes.Buffer
		if err := pcap.WriteFile(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := pcap.ReadFile(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(orig) {
			t.Fatalf("household %s: pcap round-trip lost frames", h.ID)
		}
		for i := range got {
			p := got[i].Decode()
			if p.Err != nil || !p.HasUDP {
				t.Fatalf("household %s: frame %d not a clean UDP frame: %v", h.ID, i, p.Err)
			}
		}
	}
}

// TestContentHash: the hash is stable for a fixed record, survives a wire
// round trip (it digests the wire form, which is what restarts replay), and
// moves when any content changes — the contract behind the serving layer's
// idempotent refold.
func TestContentHash(t *testing.T) {
	ds := inspector.Generate(31, 4)
	h := ds.Households[0]
	if h.ContentHash() != h.ContentHash() {
		t.Fatal("hash not stable across calls")
	}
	var buf bytes.Buffer
	if err := inspector.EncodeWire(&buf, []*inspector.Household{h}); err != nil {
		t.Fatal(err)
	}
	dec := inspector.NewWireDecoder(&buf)
	rt, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rt.ContentHash() != h.ContentHash() {
		t.Fatal("hash changed across a wire round trip")
	}
	if ds.Households[1].ContentHash() == h.ContentHash() {
		t.Fatal("distinct households share a hash")
	}
	clone := &inspector.Household{ID: h.ID, Devices: h.Devices[:len(h.Devices)-1]}
	if clone.ContentHash() == h.ContentHash() {
		t.Fatal("dropping a device did not change the hash")
	}
	renamed := &inspector.Household{ID: h.ID + "x", Devices: h.Devices}
	if renamed.ContentHash() == h.ContentHash() {
		t.Fatal("changing the ID did not change the hash")
	}
}
