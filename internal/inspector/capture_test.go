package inspector_test

import (
	"bytes"
	"testing"
	"time"

	"iotlan/internal/inspector"
)

// TestSyntheticCaptureHoursZeroHistogram: the zero histogram is the classic
// flat layout — byte-for-byte, timestamp-for-timestamp identical to
// SyntheticCapture, so existing callers and bench checksums see no change.
func TestSyntheticCaptureHoursZeroHistogram(t *testing.T) {
	ds := inspector.Generate(11, 8)
	for _, h := range ds.Households {
		flat := inspector.SyntheticCapture(h)
		zero := inspector.SyntheticCaptureHours(h, [24]int{})
		if len(flat) != len(zero) {
			t.Fatalf("household %s: %d frames flat vs %d with zero histogram", h.ID, len(flat), len(zero))
		}
		for i := range flat {
			if !flat[i].Time.Equal(zero[i].Time) || !bytes.Equal(flat[i].Data, zero[i].Data) {
				t.Fatalf("household %s: frame %d differs under zero histogram", h.ID, i)
			}
		}
	}
}

// TestSyntheticCaptureHoursDiurnal: frames land only in hours the histogram
// weights, come out time-sorted, are deterministic across calls, and carry
// the same payload bytes as the flat layout (only the timing moves).
func TestSyntheticCaptureHoursDiurnal(t *testing.T) {
	var hours [24]int
	hours[8], hours[12], hours[19], hours[20] = 2, 1, 4, 3
	allowed := map[int]bool{8: true, 12: true, 19: true, 20: true}

	ds := inspector.Generate(5, 20)
	seenHours := map[int]bool{}
	for _, h := range ds.Households {
		a := inspector.SyntheticCaptureHours(h, hours)
		b := inspector.SyntheticCaptureHours(h, hours)
		if len(a) != len(b) {
			t.Fatalf("household %s: nondeterministic frame count", h.ID)
		}
		var prev time.Time
		for i := range a {
			if !a[i].Time.Equal(b[i].Time) || !bytes.Equal(a[i].Data, b[i].Data) {
				t.Fatalf("household %s: frame %d nondeterministic", h.ID, i)
			}
			if a[i].Time.Before(prev) {
				t.Fatalf("household %s: frame %d out of time order", h.ID, i)
			}
			prev = a[i].Time
			hr := a[i].Time.UTC().Hour()
			if !allowed[hr] {
				t.Fatalf("household %s: frame %d at hour %d, outside histogram support", h.ID, i, hr)
			}
			seenHours[hr] = true
		}

		flat := inspector.SyntheticCapture(h)
		if len(flat) != len(a) {
			t.Fatalf("household %s: diurnal layout changed frame count", h.ID)
		}
		flatPayloads := map[string]int{}
		for _, r := range flat {
			flatPayloads[string(r.Data)]++
		}
		for _, r := range a {
			if flatPayloads[string(r.Data)] == 0 {
				t.Fatalf("household %s: diurnal layout changed frame bytes", h.ID)
			}
			flatPayloads[string(r.Data)]--
		}
	}
	if len(seenHours) < 2 {
		t.Fatalf("all frames collapsed into %d hour(s); want spread across histogram", len(seenHours))
	}
}
