// Package inspector simulates the IoT Inspector crowdsourced dataset
// (§3.3): thousands of volunteer households whose local traffic was captured
// via ARP spoofing — device IDs as salted HMAC-SHA256 of the MAC, 5-second
// byte-count windows, raw mDNS and SSDP response payloads, DHCP hostnames,
// and noisy user-provided labels. The generator is seeded and draws device
// populations from a product catalog whose identifier-exposure classes
// reproduce Table 2's structure.
package inspector

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iotlan/internal/engine"
	"iotlan/internal/netx"
)

// Product is one vendor/category combination in the crowdsourced world.
type Product struct {
	Vendor   string
	Category string
	// Exposure flags drive what the product's mDNS/SSDP responses contain —
	// the Table 2 identifier classes.
	ExposesName bool // user first name in discovery payloads
	ExposesUUID bool
	ExposesMAC  bool
	// Popularity weights household assignment (power-law-ish).
	Popularity int
}

// Name returns the "vendor-category" product key the paper counts.
func (p Product) Name() string { return p.Vendor + "/" + p.Category }

// Device is one observed device in a household.
type Device struct {
	// ID is HMAC-SHA256(MAC, per-user salt), as IoT Inspector computes.
	ID string
	// OUI is the only MAC metadata collected directly.
	OUI netx.OUI
	// DHCPHostname is the hostname field from DHCP requests.
	DHCPHostname string
	// UserLabel is the crowdsourced (noisy) device label.
	UserLabel string
	// MDNS and SSDP hold raw response payload strings.
	MDNS []string
	SSDP []string
	// Windows are 5-second traffic counters.
	Windows []TrafficWindow

	// Product is generation ground truth, used only to validate inference.
	Product Product
	mac     netx.MAC
}

// TrafficWindow is a 5-second byte counter, the only flow telemetry the
// dataset holds.
type TrafficWindow struct {
	Start    time.Time
	BytesIn  int
	BytesOut int
	// PeerLocal marks whether the remote endpoint was on the LAN.
	PeerLocal bool
}

// Household groups one user's devices.
type Household struct {
	ID      string
	Devices []*Device
}

// Dataset is the full crowdsourced corpus.
type Dataset struct {
	Households []*Household
}

// Devices counts all devices.
func (d *Dataset) Devices() int {
	n := 0
	for _, h := range d.Households {
		n += len(h.Devices)
	}
	return n
}

// catalog builds the product world: 323 products across 199 vendors for the
// full dataset, with exposure classes matching Table 2's row structure.
func catalog(rng *rand.Rand) []Product {
	categories := []string{"camera", "plug", "bulb", "speaker", "tv", "hub", "thermostat", "doorbell", "printer", "scale", "vacuum"}
	var products []Product
	vendorID := 0
	addVendor := func(n int, exposeName, exposeUUID, exposeMAC bool, popularity int) {
		for v := 0; v < n; v++ {
			vendorID++
			vendor := fmt.Sprintf("vendor%03d", vendorID)
			nProducts := 1 + rng.Intn(3)
			for p := 0; p < nProducts; p++ {
				products = append(products, Product{
					Vendor:      vendor,
					Category:    categories[rng.Intn(len(categories))],
					ExposesName: exposeName,
					ExposesUUID: exposeUUID,
					ExposesMAC:  exposeMAC,
					Popularity:  1 + rng.Intn(popularity),
				})
			}
		}
	}
	// Class proportions follow Table 2: about half the products expose
	// nothing; UUID-only is the biggest exposing class; MAC exposure and
	// combinations are smaller; a single product (a Roku-like TV) exposes
	// all three.
	addVendor(100, false, false, false, 20) // no exposure (≈154 products)
	addVendor(52, false, true, false, 30)   // UUID only
	addVendor(14, false, false, true, 10)   // MAC only
	addVendor(8, true, true, false, 4)      // name+UUID
	addVendor(24, false, true, true, 12)    // UUID+MAC
	products = append(products, Product{
		Vendor: "rokulike", Category: "tv",
		ExposesName: true, ExposesUUID: true, ExposesMAC: true, Popularity: 1,
	})
	return products
}

var firstNames = []string{"Jane", "John", "Maria", "Wei", "Aisha", "Carlos", "Emma", "Noah", "Olivia", "Liam"}

// Generate builds the corpus: households ×devices with payloads. The
// defaults reproduce the paper's population (3,893 households, 13,487
// devices, ~199 vendors / 323 products). Equivalent to GenerateParallel
// with one worker.
func Generate(seed int64, households int) *Dataset {
	return GenerateParallel(seed, households, 1)
}

// Generator draws single households on demand from a fixed seed. Because
// every household has its own rng stream (engine.SubSeed(seed, index)),
// Household(i) is independent of every other index: a caller can generate
// any subset, in any order, from any number of goroutines, and each
// household is byte-identical to ds.Households[i] of Generate(seed, n) for
// any n > i. This is what lets a million-household load run stream uploads
// without ever materializing the corpus.
type Generator struct {
	seed     int64
	products []Product
	totalPop int
}

// NewGenerator derives the shared product world (ground truth) from the
// base seed and returns an on-demand household source.
func NewGenerator(seed int64) *Generator {
	products := catalog(rand.New(rand.NewSource(seed)))
	totalPop := 0
	for _, p := range products {
		totalPop += p.Popularity
	}
	return &Generator{seed: seed, products: products, totalPop: totalPop}
}

// Household generates household index i. Safe for concurrent use.
func (g *Generator) Household(i int) *Household {
	rng := rand.New(rand.NewSource(engine.SubSeed(g.seed, uint64(i))))
	return generateHousehold(rng, i, g.products, g.totalPop)
}

// GenerateParallel shards corpus generation across workers (values < 1 mean
// one per CPU). Every household draws from its own rng seeded by
// engine.SubSeed(seed, household), so generation is order-independent: any
// worker count — including the sequential path — produces a byte-identical
// dataset for a fixed seed.
func GenerateParallel(seed int64, households, workers int) *Dataset {
	g := NewGenerator(seed)
	ds := &Dataset{Households: make([]*Household, households)}
	engine.ForEachShard(households, workers, func(_ int, r engine.Range) {
		for h := r.Start; h < r.End; h++ {
			ds.Households[h] = g.Household(h)
		}
	})
	return ds
}

// generateHousehold draws one household's devices from its private rng.
func generateHousehold(rng *rand.Rand, h int, products []Product, totalPop int) *Household {
	pickProduct := func() Product {
		r := rng.Intn(totalPop)
		for _, p := range products {
			r -= p.Popularity
			if r < 0 {
				return p
			}
		}
		return products[len(products)-1]
	}
	start := time.Date(2019, 4, 12, 0, 0, 0, 0, time.UTC)
	salt := make([]byte, 16)
	rng.Read(salt)
	hh := &Household{ID: fmt.Sprintf("user%05d", h)}
	owner := firstNames[rng.Intn(len(firstNames))]
	// Median 3 devices per household (§6.3): geometric-ish 1..12.
	n := 1 + rng.Intn(3) + rng.Intn(3)
	for d := 0; d < n; d++ {
		p := pickProduct()
		var mac netx.MAC
		rng.Read(mac[:])
		mac[0] &^= 0x01 // unicast
		dev := &Device{
			OUI:     mac.OUI(),
			Product: p,
			mac:     mac,
		}
		m := hmac.New(sha256.New, salt)
		m.Write(mac[:])
		dev.ID = fmt.Sprintf("%x", m.Sum(nil))[:32]
		dev.DHCPHostname = fmt.Sprintf("%s-%s", p.Vendor, mac.Tail(2))
		dev.UserLabel = userLabel(rng, p)
		uuid := deriveUUID(hh.ID, d, mac)
		// ~5% of devices ship a vendor-default UUID shared by the whole
		// product line (buggy firmware does this in the wild) — the
		// reason Table 2's uniqueness tops out around 94–96%, not 100%.
		if rng.Intn(20) == 0 {
			sum := sha256.Sum256([]byte("default:" + p.Name()))
			uuid = fmt.Sprintf("%x-%x-%x-%x-%x", sum[0:4], sum[4:6], sum[6:8], sum[8:10], sum[10:16])
		}
		if p.ExposesMAC && rng.Intn(25) == 0 {
			// A shared dummy adapter address, same idea.
			mac = netx.MAC{p.Vendor[0], p.Vendor[1], p.Vendor[2], 0xde, 0xad, 0x01}
			dev.OUI = mac.OUI()
		}
		renderPayloads(dev, p, owner, uuid, mac)
		// A few hours of 5-second windows, sparse.
		t := start.Add(time.Duration(rng.Intn(1000)) * time.Hour)
		for w := 0; w < 20+rng.Intn(60); w++ {
			dev.Windows = append(dev.Windows, TrafficWindow{
				Start:     t.Add(time.Duration(w) * 5 * time.Second),
				BytesIn:   rng.Intn(4000),
				BytesOut:  rng.Intn(2000),
				PeerLocal: rng.Intn(3) == 0,
			})
		}
		hh.Devices = append(hh.Devices, dev)
	}
	return hh
}

// deriveUUID builds a stable per-device UUID; for MAC-exposing products the
// UUID embeds the MAC, like Roku's (Table 2's last row).
func deriveUUID(user string, idx int, mac netx.MAC) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s/%d", user, idx)))
	return fmt.Sprintf("%x-%x-%x-%x-%x", sum[0:4], sum[4:6], sum[6:8], sum[8:10], mac[:])
}

// userLabel produces crowdsourced labels with realistic noise: misspellings,
// free-form text, or empty.
func userLabel(rng *rand.Rand, p Product) string {
	switch rng.Intn(5) {
	case 0:
		return "" // user never labeled it
	case 1:
		// Misspelled vendor.
		v := p.Vendor
		if len(v) > 3 {
			v = v[:len(v)-1]
		}
		return v + " " + p.Category
	case 2:
		return strings.ToUpper(p.Vendor)
	default:
		return p.Vendor + " " + p.Category
	}
}

// renderPayloads fills MDNS/SSDP response strings per the product's
// exposure class.
func renderPayloads(dev *Device, p Product, owner, uuid string, mac netx.MAC) {
	base := fmt.Sprintf("%s %s", p.Vendor, p.Category)
	name := base
	if p.ExposesName {
		name = fmt.Sprintf("%s - %s's Room", base, owner)
	}
	mdns := fmt.Sprintf("%s._device-info._tcp.local TXT model=%s", name, p.Category)
	ssdp := fmt.Sprintf("HTTP/1.1 200 OK\r\nSERVER: Linux UPnP/1.0\r\nname: %s\r\n", name)
	if p.ExposesUUID {
		ssdp += fmt.Sprintf("USN: uuid:%s\r\n", uuid)
		mdns += " id=" + uuid
	}
	if p.ExposesMAC {
		ssdp += fmt.Sprintf("serialNumber: %s\r\n", mac)
		mdns += " mac=" + mac.String()
	}
	dev.MDNS = []string{mdns}
	dev.SSDP = []string{ssdp}
}
