package inspector

import (
	"crypto/sha256"
	"encoding/binary"
	"net/netip"
	"sort"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
)

// SyntheticCapture renders a household's discovery payloads as a small
// Ethernet/IPv4/UDP capture: one mDNS response frame per mDNS payload and
// one SSDP response frame per SSDP payload, addressed to the protocols'
// multicast groups. iotload and the serve tests use it to drive the
// streaming pcap upload path with content that exercises the same decoders
// as a testbed capture.
//
// The capture is a pure function of the household's contents — device MACs
// and IPs are derived from the device ID hash — so a household decoded from
// the wire format produces the same bytes as the generated original.
func SyntheticCapture(h *Household) []pcap.Record {
	return SyntheticCaptureHours(h, [24]int{})
}

// SyntheticCaptureHours is SyntheticCapture with diurnal timing: hours is an
// hour-of-day activity histogram (e.g. resident.TypicalHours), and each
// device's frames land in an hour drawn from that distribution — still a pure
// function of the household contents, so the capture stays byte-deterministic.
// A zero histogram preserves SyntheticCapture's classic flat layout exactly.
func SyntheticCaptureHours(h *Household, hours [24]int) []pcap.Record {
	base := time.Date(2019, 4, 12, 0, 0, 0, 0, time.UTC)
	total := 0
	for _, w := range hours {
		total += w
	}
	var records []pcap.Record
	add := func(at time.Time, src netx.MAC, srcIP netip.Addr, dstMAC netx.MAC, dstIP netip.Addr, port uint16, payload string) {
		udp := &layers.UDP{SrcPort: port, DstPort: port}
		udp.SetAddrs(srcIP, dstIP)
		frame, err := layers.Serialize(
			&layers.Ethernet{Src: src, Dst: dstMAC, EtherType: layers.EtherTypeIPv4},
			&layers.IPv4{Src: srcIP, Dst: dstIP, Protocol: layers.IPProtoUDP, TTL: 255},
			udp,
			layers.RawPayload(payload),
		)
		if err != nil { // unreachable: these layers always serialize
			return
		}
		records = append(records, pcap.Record{Time: at, Data: frame})
	}
	mdnsMAC := netx.MAC{0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb}
	ssdpMAC := netx.MAC{0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa}
	mdnsIP := netip.AddrFrom4([4]byte{224, 0, 0, 251})
	ssdpIP := netip.AddrFrom4([4]byte{239, 255, 255, 250})
	for i, d := range h.Devices {
		sum := sha256.Sum256([]byte("cap:" + h.ID + ":" + d.ID))
		var mac netx.MAC
		copy(mac[:], sum[:6])
		mac[0] = (mac[0] | 0x02) &^ 0x01 // locally administered unicast
		host := binary.BigEndian.Uint16(sum[6:8])%250 + 2
		srcIP := netip.AddrFrom4([4]byte{192, 168, 1, byte(host)})
		at := base.Add(time.Duration(i) * time.Second)
		if total > 0 {
			// Weighted hour pick plus a sub-hour offset, both from the same
			// device hash that fixes its MAC and IP.
			pick := int(binary.BigEndian.Uint32(sum[8:12]) % uint32(total))
			hour := 0
			for w := hours[hour]; pick >= w; w = hours[hour] {
				pick -= w
				hour++
			}
			offset := time.Duration(binary.BigEndian.Uint32(sum[12:16])%3_600_000) * time.Millisecond
			at = base.Add(time.Duration(hour)*time.Hour + offset)
		}
		for j, p := range d.MDNS {
			add(at.Add(time.Duration(j)*100*time.Millisecond), mac, srcIP, mdnsMAC, mdnsIP, 5353, p)
		}
		for j, p := range d.SSDP {
			add(at.Add(500*time.Millisecond+time.Duration(j)*100*time.Millisecond), mac, srcIP, ssdpMAC, ssdpIP, 1900, p)
		}
	}
	if total > 0 {
		sort.SliceStable(records, func(i, j int) bool {
			return records[i].Time.Before(records[j].Time)
		})
	}
	return records
}
