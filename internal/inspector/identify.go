package inspector

import (
	"sort"
	"strings"
)

// Identity is the inferred vendor/category of a device (Appendix E). The
// paper used an LLM as a fuzzy matcher over the same metadata; this is a
// deterministic rule engine over OUI, DHCP hostname, discovery payloads and
// the noisy user label.
type Identity struct {
	Vendor   string
	Category string
	// Source names the metadata that decided the inference.
	Source string
	// Confident marks multi-source agreement.
	Confident bool
}

// Identify infers a device's identity.
func Identify(d *Device) Identity {
	votes := map[string]string{} // vendor → source
	var vendors []string
	addVote := func(vendor, source string) {
		vendor = strings.ToLower(strings.TrimSpace(vendor))
		if vendor == "" {
			return
		}
		if _, seen := votes[vendor]; !seen {
			vendors = append(vendors, vendor)
		}
		votes[vendor] += source + ","
	}

	// 1. DHCP hostname: "vendor-XXXX" convention.
	if i := strings.LastIndexByte(d.DHCPHostname, '-'); i > 0 {
		addVote(d.DHCPHostname[:i], "dhcp")
	}
	// 2. Discovery payload leading token.
	for _, payload := range append(append([]string{}, d.MDNS...), d.SSDP...) {
		if f := strings.Fields(payloadName(payload)); len(f) > 0 {
			addVote(f[0], "discovery")
		}
	}
	// 3. User label: first token, fuzzy (prefix) matched against other
	// votes to absorb misspellings.
	label := strings.Fields(strings.ToLower(d.UserLabel))
	if len(label) > 0 {
		matched := false
		for _, v := range vendors {
			if strings.HasPrefix(v, label[0]) || strings.HasPrefix(label[0], v) {
				addVote(v, "label")
				matched = true
				break
			}
		}
		if !matched {
			addVote(label[0], "label")
		}
	}

	best := Identity{Vendor: "unknown", Category: inferCategory(d)}
	bestScore := 0
	sort.Strings(vendors)
	for _, v := range vendors {
		score := strings.Count(votes[v], ",")
		if score > bestScore {
			bestScore = score
			best.Vendor = v
			best.Source = strings.TrimSuffix(votes[v], ",")
			best.Confident = score >= 2
		}
	}
	return best
}

// payloadName pulls the human-name field out of an mDNS/SSDP payload.
func payloadName(payload string) string {
	for _, line := range strings.Split(payload, "\r\n") {
		if rest, ok := strings.CutPrefix(line, "name: "); ok {
			return rest
		}
	}
	// mDNS single-line form: everything before the service type.
	if i := strings.Index(payload, "._"); i > 0 {
		return payload[:i]
	}
	return payload
}

// inferCategory votes on the device category from labels and payloads.
func inferCategory(d *Device) string {
	text := strings.ToLower(d.UserLabel + " " + strings.Join(d.MDNS, " ") + " " + strings.Join(d.SSDP, " "))
	for _, cat := range []string{"camera", "plug", "bulb", "speaker", "tv", "hub", "thermostat", "doorbell", "printer", "scale", "vacuum"} {
		if strings.Contains(text, cat) {
			return cat
		}
	}
	return "unknown"
}

// Accuracy validates inference against generation ground truth, returning
// the fraction of devices whose vendor was recovered.
func Accuracy(ds *Dataset) float64 {
	total, correct := 0, 0
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			total++
			if Identify(d).Vendor == strings.ToLower(d.Product.Vendor) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
