package inspector

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGeneratePopulation(t *testing.T) {
	ds := Generate(1, 500)
	if len(ds.Households) != 500 {
		t.Fatalf("households: %d", len(ds.Households))
	}
	n := ds.Devices()
	// Median ~3 devices/household.
	if n < 1000 || n > 3000 {
		t.Fatalf("devices: %d for 500 households", n)
	}
	products := map[string]bool{}
	vendors := map[string]bool{}
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			products[d.Product.Name()] = true
			vendors[d.Product.Vendor] = true
		}
	}
	if len(vendors) < 100 {
		t.Fatalf("vendor diversity too low: %d", len(vendors))
	}
	if len(products) < 150 {
		t.Fatalf("product diversity too low: %d", len(products))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Generate(9, 50), Generate(9, 50)
	if a.Devices() != b.Devices() {
		t.Fatal("device counts differ")
	}
	for i, h := range a.Households {
		for j, d := range h.Devices {
			if d.ID != b.Households[i].Devices[j].ID {
				t.Fatalf("device IDs diverge at %d/%d", i, j)
			}
		}
	}
}

func TestGenerateParallelByteIdenticalToSequential(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		seq, err := json.Marshal(GenerateParallel(seed, 300, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			par, err := json.Marshal(GenerateParallel(seed, 300, workers))
			if err != nil {
				t.Fatal(err)
			}
			if string(seq) != string(par) {
				t.Fatalf("seed %d: %d-worker dataset differs from sequential", seed, workers)
			}
		}
	}
}

func TestDeviceIDIsHMACNotMAC(t *testing.T) {
	ds := Generate(1, 10)
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			if len(d.ID) != 32 {
				t.Fatalf("ID length %d", len(d.ID))
			}
			if strings.Contains(d.ID, ":") {
				t.Fatal("ID looks like a raw MAC")
			}
		}
	}
}

func TestExposureClassesRendered(t *testing.T) {
	ds := Generate(1, 800)
	var withName, withUUID, withMAC, withNone int
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			payload := strings.Join(d.SSDP, " ") + strings.Join(d.MDNS, " ")
			hasName := strings.Contains(payload, "'s Room")
			hasUUID := strings.Contains(payload, "uuid:")
			hasMAC := strings.Contains(payload, "serialNumber:")
			if hasName {
				withName++
			}
			if hasUUID {
				withUUID++
			}
			if hasMAC {
				withMAC++
			}
			if !hasName && !hasUUID && !hasMAC {
				withNone++
			}
			// Exposure must match the product class.
			if hasName != d.Product.ExposesName || hasUUID != d.Product.ExposesUUID || hasMAC != d.Product.ExposesMAC {
				t.Fatalf("payload/class mismatch for %s: %q", d.Product.Name(), payload)
			}
		}
	}
	total := ds.Devices()
	if withNone < total/5 {
		t.Errorf("no-exposure class too small: %d/%d", withNone, total)
	}
	if withUUID <= withMAC {
		t.Errorf("UUID exposure (%d) should dominate MAC exposure (%d), like Table 2", withUUID, withMAC)
	}
	if withName >= withUUID {
		t.Errorf("name exposure (%d) should be rare vs UUID (%d)", withName, withUUID)
	}
}

func TestMACExposingUUIDEmbedsMAC(t *testing.T) {
	// Roku-like: the MAC is part of the UUID (Table 2's last row).
	ds := Generate(1, 2000)
	found := false
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			if d.Product.ExposesUUID && d.Product.ExposesMAC {
				payload := strings.Join(d.SSDP, " ")
				mac := strings.ReplaceAll(macOf(d), ":", "")
				if strings.Contains(strings.ReplaceAll(payload, ":", ""), mac) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("no UUID+MAC device embeds its MAC")
	}
}

func macOf(d *Device) string { return d.mac.String() }

func TestIdentifyRecoverVendors(t *testing.T) {
	ds := Generate(1, 300)
	acc := Accuracy(ds)
	if acc < 0.8 {
		t.Fatalf("identity inference accuracy %.2f, want ≥0.8", acc)
	}
}

func TestIdentifyUsesMultipleSources(t *testing.T) {
	ds := Generate(1, 50)
	confident := 0
	total := 0
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			total++
			id := Identify(d)
			if id.Confident {
				confident++
				if !strings.Contains(id.Source, ",") {
					t.Fatalf("confident identity with single source: %+v", id)
				}
			}
		}
	}
	if confident < total/2 {
		t.Fatalf("only %d/%d confident identifications", confident, total)
	}
}

func TestTrafficWindows(t *testing.T) {
	ds := Generate(1, 20)
	for _, h := range ds.Households {
		for _, d := range h.Devices {
			if len(d.Windows) == 0 {
				t.Fatal("device without traffic windows")
			}
			for i := 1; i < len(d.Windows); i++ {
				gap := d.Windows[i].Start.Sub(d.Windows[i-1].Start)
				if gap != 5*1e9 {
					t.Fatalf("window spacing %v, want 5s", gap)
				}
			}
		}
	}
}

// TestGeneratorMatchesGenerate: on-demand single-household generation is
// byte-identical (on the wire) to the same index of a batch Generate, in any
// order, for any corpus size — the property the streaming load generator and
// the sharded serving tests both lean on.
func TestGeneratorMatchesGenerate(t *testing.T) {
	const seed = 3
	ds := Generate(seed, 40)
	g := NewGenerator(seed)
	for _, i := range []int{39, 0, 17, 17, 5} { // out of order, repeated
		want, err := json.Marshal(ds.Households[i].Wire())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(g.Household(i).Wire())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("household %d differs:\n%s\nvs\n%s", i, got, want)
		}
	}
}
