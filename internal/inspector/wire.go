package inspector

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"iotlan/internal/netx"
)

// The service upload wire format: the JSON shape one household takes on the
// iotserve batch-ingestion endpoint (POST /v1/ingest/inspector). A body is a
// stream of WireHousehold objects — JSON lines, friendly to incremental
// encoding and decoding, so neither uploader nor server ever materializes a
// whole batch. The format is seed-deterministic: encoding a generated
// household always yields the same bytes, and decoding reconstructs a
// Household whose analysis outputs (Table 2 entropy, §7 mitigations,
// Appendix E identification) are byte-identical to the original's.
//
// The only generation-time field that does not cross the wire is the raw
// device MAC: like the real IoT Inspector pipeline, only the salted HMAC
// device ID and the OUI leave the household.

// WireProduct carries the ground-truth product label.
type WireProduct struct {
	Vendor      string `json:"vendor"`
	Category    string `json:"category"`
	ExposesName bool   `json:"exposes_name,omitempty"`
	ExposesUUID bool   `json:"exposes_uuid,omitempty"`
	ExposesMAC  bool   `json:"exposes_mac,omitempty"`
	Popularity  int    `json:"popularity,omitempty"`
}

// WireWindow is one 5-second byte-count window.
type WireWindow struct {
	StartMicros int64 `json:"start_us"`
	BytesIn     int   `json:"in"`
	BytesOut    int   `json:"out"`
	PeerLocal   bool  `json:"local,omitempty"`
}

// WireDevice is one device's crowdsourced record.
type WireDevice struct {
	ID           string       `json:"id"`
	OUI          string       `json:"oui"`
	DHCPHostname string       `json:"dhcp_hostname,omitempty"`
	UserLabel    string       `json:"user_label,omitempty"`
	MDNS         []string     `json:"mdns,omitempty"`
	SSDP         []string     `json:"ssdp,omitempty"`
	Windows      []WireWindow `json:"windows,omitempty"`
	Product      WireProduct  `json:"product"`
}

// WireHousehold is one user's upload unit.
type WireHousehold struct {
	ID      string       `json:"id"`
	Devices []WireDevice `json:"devices"`
}

// Wire converts a household to its upload form.
func (h *Household) Wire() WireHousehold {
	w := WireHousehold{ID: h.ID, Devices: make([]WireDevice, len(h.Devices))}
	for i, d := range h.Devices {
		wd := WireDevice{
			ID:           d.ID,
			OUI:          d.OUI.String(),
			DHCPHostname: d.DHCPHostname,
			UserLabel:    d.UserLabel,
			MDNS:         d.MDNS,
			SSDP:         d.SSDP,
			Product: WireProduct{
				Vendor:      d.Product.Vendor,
				Category:    d.Product.Category,
				ExposesName: d.Product.ExposesName,
				ExposesUUID: d.Product.ExposesUUID,
				ExposesMAC:  d.Product.ExposesMAC,
				Popularity:  d.Product.Popularity,
			},
		}
		for _, win := range d.Windows {
			wd.Windows = append(wd.Windows, WireWindow{
				StartMicros: win.Start.UnixMicro(),
				BytesIn:     win.BytesIn,
				BytesOut:    win.BytesOut,
				PeerLocal:   win.PeerLocal,
			})
		}
		w.Devices[i] = wd
	}
	return w
}

// ContentHash digests a household's wire form — the identity of its
// analysis contribution. The wire encoding is deterministic (fixed struct
// field order, no maps), so two records with equal hashes produce identical
// singleton partials; the serving layer uses this to make refolds
// idempotent: re-ingesting an unchanged household skips the retract/fold
// and the shard version bump, keeping warm caches warm.
func (h *Household) ContentHash() [sha256.Size]byte {
	b, err := json.Marshal(h.Wire())
	if err != nil { // unreachable: wire types always marshal
		return [sha256.Size]byte{}
	}
	return sha256.Sum256(b)
}

// Household reconstructs the in-memory form, validating the OUI.
func (w WireHousehold) Household() (*Household, error) {
	if w.ID == "" {
		return nil, fmt.Errorf("inspector: wire household without id")
	}
	h := &Household{ID: w.ID, Devices: make([]*Device, len(w.Devices))}
	for i, wd := range w.Devices {
		oui, err := ParseOUI(wd.OUI)
		if err != nil {
			return nil, fmt.Errorf("inspector: household %s device %d: %w", w.ID, i, err)
		}
		d := &Device{
			ID:           wd.ID,
			OUI:          oui,
			DHCPHostname: wd.DHCPHostname,
			UserLabel:    wd.UserLabel,
			MDNS:         wd.MDNS,
			SSDP:         wd.SSDP,
			Product: Product{
				Vendor:      wd.Product.Vendor,
				Category:    wd.Product.Category,
				ExposesName: wd.Product.ExposesName,
				ExposesUUID: wd.Product.ExposesUUID,
				ExposesMAC:  wd.Product.ExposesMAC,
				Popularity:  wd.Product.Popularity,
			},
		}
		for _, win := range wd.Windows {
			d.Windows = append(d.Windows, TrafficWindow{
				Start:     time.UnixMicro(win.StartMicros).UTC(),
				BytesIn:   win.BytesIn,
				BytesOut:  win.BytesOut,
				PeerLocal: win.PeerLocal,
			})
		}
		h.Devices[i] = d
	}
	return h, nil
}

// ParseOUI parses the aa:bb:cc vendor-prefix rendering netx.OUI.String
// produces.
func ParseOUI(s string) (netx.OUI, error) {
	var o netx.OUI
	mac, err := netx.ParseMAC(s + ":00:00:00")
	if err != nil {
		return o, fmt.Errorf("inspector: invalid OUI %q", s)
	}
	return mac.OUI(), nil
}

// EncodeWire streams households to w as JSON lines, one WireHousehold per
// line. Output is deterministic for a fixed input.
func EncodeWire(w io.Writer, hs []*Household) error {
	enc := json.NewEncoder(w) // Encode appends the newline separator
	for _, h := range hs {
		if err := enc.Encode(h.Wire()); err != nil {
			return err
		}
	}
	return nil
}

// WireDecoder streams households out of a JSONL (or whitespace-separated
// JSON) upload body without buffering it.
type WireDecoder struct {
	dec *json.Decoder
}

// NewWireDecoder returns a streaming decoder over r.
func NewWireDecoder(r io.Reader) *WireDecoder {
	return &WireDecoder{dec: json.NewDecoder(r)}
}

// Next returns the next household, or io.EOF cleanly at end of body.
func (d *WireDecoder) Next() (*Household, error) {
	var w WireHousehold
	if err := d.dec.Decode(&w); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("inspector: wire decode: %w", err)
	}
	return w.Household()
}
