package scan

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/testbed"
)

func subsetLab(t *testing.T, names ...string) (*testbed.Lab, map[string]*device.Device) {
	t.Helper()
	var profiles []*device.Profile
	for _, p := range device.Catalog() {
		for _, n := range names {
			if p.Name == n {
				profiles = append(profiles, p)
			}
		}
	}
	if len(profiles) != len(names) {
		t.Fatalf("found %d of %d profiles", len(profiles), len(names))
	}
	lab := testbed.NewWith(1, profiles)
	lab.Start()
	lab.RunIdle(2 * time.Minute)
	byName := map[string]*device.Device{}
	for _, d := range lab.Devices {
		byName[d.Profile.Name] = d
	}
	return lab, byName
}

func scanOne(t *testing.T, lab *testbed.Lab, target netip.Addr, tcp, udp []uint16) *Result {
	t.Helper()
	host := lab.AddHost(250, [6]byte{0x02, 0x50, 0, 0, 0, 1})
	sc := &Scanner{Host: host, TCPPorts: tcp, UDPPorts: udp}
	var res *Result
	sc.Scan(target, func(r *Result) { res = r })
	lab.Sched.RunFor(time.Minute)
	if res == nil {
		t.Fatal("scan never completed")
	}
	return res
}

func TestSynScanFindsOpenPorts(t *testing.T) {
	lab, devs := subsetLab(t, "hue-hub")
	hue := devs["hue-hub"]
	res := scanOne(t, lab, hue.IP(), []uint16{80, 443, 1234, 8080}, []uint16{})
	if len(res.TCPOpen) != 2 || res.TCPOpen[0] != 80 || res.TCPOpen[1] != 443 {
		t.Fatalf("open TCP: %v", res.TCPOpen)
	}
	if !res.RespondedTCP {
		t.Fatal("RespondedTCP false")
	}
	if res.Services["tcp/80"] != "http" || res.Services["tcp/443"] != "https" {
		t.Fatalf("services: %v", res.Services)
	}
}

func TestFullSweepMatchesGroundTruth(t *testing.T) {
	lab, devs := subsetLab(t, "echo-1")
	echo := devs["echo-1"]
	res := scanOne(t, lab, echo.IP(), AllTCPPorts(), nil)
	want := map[uint16]bool{}
	for _, p := range echo.Host.TCPPorts() {
		want[p] = true
	}
	got := map[uint16]bool{}
	for _, p := range res.TCPOpen {
		got[p] = true
	}
	for p := range want {
		if !got[p] {
			t.Errorf("ground-truth open port %d not found", p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("phantom open port %d", p)
		}
	}
	// Echo's signature ports (§4.2).
	for _, p := range []uint16{55442, 55443, 4070} {
		if !got[p] {
			t.Errorf("Echo port %d not open", p)
		}
	}
}

func TestUDPScan(t *testing.T) {
	lab, devs := subsetLab(t, "homepod-1")
	hp := devs["homepod-1"]
	res := scanOne(t, lab, hp.IP(), []uint16{}, []uint16{53, 54, 100})
	if len(res.UDPOpen) != 1 || res.UDPOpen[0] != 53 {
		t.Fatalf("open UDP: %v (HomePod Mini runs DNS on 53)", res.UDPOpen)
	}
	if res.Services["udp/53"] != "domain" {
		t.Fatalf("service: %v", res.Services)
	}
}

func TestSilentDeviceShowsNothing(t *testing.T) {
	// Generic sensors don't respond to scans at all (§3.1: only 54 devices
	// answered TCP scans).
	lab, devs := subsetLab(t, "keyco-air")
	res := scanOne(t, lab, devs["keyco-air"].IP(), []uint16{80, 443}, []uint16{53})
	if res.RespondedTCP || res.RespondedUDP || res.RespondedIP {
		t.Fatalf("silent device responded: %+v", res)
	}
	if len(res.TCPOpen) != 0 || len(res.UDPOpen) != 0 {
		t.Fatalf("phantom ports on silent device: %+v", res)
	}
}

func TestIPProtocolScan(t *testing.T) {
	lab, devs := subsetLab(t, "hue-hub")
	res := scanOne(t, lab, devs["hue-hub"].IP(), []uint16{80}, []uint16{99})
	if !res.RespondedIP {
		t.Fatal("hue hub should answer the IP scan")
	}
	seen := map[uint8]bool{}
	for _, p := range res.IPProtos {
		seen[p] = true
	}
	for _, want := range []uint8{1, 6, 17} {
		if !seen[want] {
			t.Errorf("protocol %d missing from %v", want, res.IPProtos)
		}
	}
}

func TestNmapQuirksAndCorrections(t *testing.T) {
	if GuessService("tcp", 8009) != "ajp13" {
		t.Fatal("8009 should guess ajp13 (the nmap quirk)")
	}
	if CorrectedService("tcp", 8009) != "TLS (Google Cast)" {
		t.Fatal("8009 correction missing")
	}
	if GuessService("udp", 6666) != "irc" {
		t.Fatal("6666 should guess irc")
	}
	if CorrectedService("udp", 6666) != "TuyaLP" {
		t.Fatal("6666 correction missing")
	}
	if GuessService("tcp", 31337) != "unknown" {
		t.Fatal("unknown port should guess unknown")
	}
	if len(MislabeledPorts()) < 10 {
		t.Fatalf("only %d mislabeled ports catalogued", len(MislabeledPorts()))
	}
}

func TestPortStateString(t *testing.T) {
	if StateOpen.String() != "open" || StateOpenFiltered.String() != "open|filtered" {
		t.Fatal("state strings wrong")
	}
}
