package scan

import "fmt"

// nmapNames reproduces the nmap-services naming the paper worked from —
// including the inferences §3.5 calls out as wrong for IoT devices (8009 is
// Cast-TLS, not AJP; 6666/6667 are TuyaLP, not IRC; 9000 is not a generic
// "cslistener"; 10001 is a Google service, not SCP-CONFIG). Figure 2's
// orange-bar vocabulary (AJP, IRC, CSLISTENER, SCP-CONFIG, EZMEETING-2,
// HTTPS-ALT, WEAVE, RMONITOR, SOCKS5, PTP) comes from exactly these names.
var nmapNames = map[string]string{
	"tcp/21":    "ftp",
	"tcp/22":    "ssh",
	"tcp/23":    "telnet",
	"tcp/53":    "domain",
	"tcp/80":    "http",
	"tcp/443":   "https",
	"tcp/554":   "rtsp",
	"tcp/560":   "rmonitor",
	"tcp/1080":  "socks5",
	"tcp/1884":  "http-alt",
	"tcp/2323":  "3d-nfsd", // nmap's name for 2323; actually telnet-alt
	"tcp/4070":  "tripe",   // actually Spotify Connect
	"tcp/5540":  "matter",
	"tcp/6666":  "irc",
	"tcp/6667":  "ircu",
	"tcp/7000":  "afs3-fileserver", // actually AirPlay
	"tcp/8001":  "vcom-tunnel",     // actually Samsung TV API
	"tcp/8008":  "http",
	"tcp/8009":  "ajp13", // actually Google Cast TLS (§3.5)
	"tcp/8060":  "aero",  // actually Roku ECP
	"tcp/8080":  "http-proxy",
	"tcp/8443":  "https-alt",
	"tcp/9000":  "cslistener",
	"tcp/9543":  "psync",
	"tcp/9999":  "abyss", // actually TPLINK-SHP
	"tcp/10001": "scp-config",
	"tcp/10101": "ezmeeting-2",
	"tcp/11095": "weave",
	"tcp/40317": "unknown",
	"tcp/49152": "unknown",
	"tcp/49153": "unknown",
	"tcp/55442": "unknown",
	"tcp/55443": "unknown",

	"udp/53":    "domain",
	"udp/67":    "dhcps",
	"udp/68":    "dhcpc",
	"udp/123":   "ntp",
	"udp/137":   "netbios-ns",
	"udp/161":   "snmp",
	"udp/320":   "ptp-general",
	"udp/1900":  "upnp",
	"udp/5353":  "zeroconf",
	"udp/5683":  "coap",
	"udp/6666":  "irc", // actually TuyaLP (§3.5)
	"udp/6667":  "ircu",
	"udp/9999":  "distinct", // actually TPLINK-SHP discovery
	"udp/34567": "dhanalakshmi",
	"udp/55444": "unknown",
	"udp/56700": "unknown",
}

// GuessService mimics nmap's port→name inference.
func GuessService(proto string, port uint16) string {
	if name, ok := nmapNames[fmt.Sprintf("%s/%d", proto, port)]; ok {
		return name
	}
	return "unknown"
}

// corrections is the §3.5 manual validation table: the labels the authors
// assigned after inspecting banners and controlled experiments.
var corrections = map[string]string{
	"tcp/8009":  "TLS (Google Cast)",
	"tcp/9999":  "TPLINK-SHP",
	"udp/9999":  "TPLINK-SHP",
	"udp/6666":  "TuyaLP",
	"udp/6667":  "TuyaLP",
	"tcp/6666":  "TuyaLP",
	"tcp/4070":  "Spotify Connect",
	"tcp/7000":  "AirPlay",
	"tcp/8060":  "Roku ECP",
	"tcp/8001":  "Samsung TV API",
	"tcp/2323":  "telnet",
	"tcp/55442": "HTTP (Echo audio cache)",
	"tcp/55443": "HTTPS (Echo device control)",
	"udp/55444": "RTP (Echo multi-room audio)",
	"udp/56700": "LIFX discovery",
	"tcp/10001": "Google home service",
	"tcp/49152": "HomeKit Accessory Protocol",
}

// CorrectedService returns the manually validated service name, falling
// back to the nmap guess.
func CorrectedService(proto string, port uint16) string {
	key := fmt.Sprintf("%s/%d", proto, port)
	if name, ok := corrections[key]; ok {
		return name
	}
	return GuessService(proto, port)
}

// MislabeledPorts lists (proto/port, nmap name, corrected name) rows where
// the two disagree — the quantitative side of the §3.5 claim that nmap
// inferences "are incorrect in many cases".
func MislabeledPorts() [][3]string {
	var out [][3]string
	for key, corrected := range corrections {
		var proto string
		var port uint16
		fmt.Sscanf(key, "%3s/%d", &proto, &port)
		guess := nmapNames[key]
		if guess == "" {
			guess = "unknown"
		}
		if guess != corrected {
			out = append(out, [3]string{key, guess, corrected})
		}
	}
	return out
}
