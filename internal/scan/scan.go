// Package scan implements the study's active-scan pipeline (§3.1, §4.2): an
// nmap-like scanner running TCP SYN scans over all ports, UDP scans over the
// well-known range, and IP-protocol scans, plus nmap-style service-name
// inference — including its characteristic mistakes (port 8009 labeled
// "ajp13", 6667 "ircu", 9000 "cslistener") and the manual correction table
// of §3.5.
package scan

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/stack"
)

// PortState is the scanner's verdict for one port.
type PortState int

// Port states, nmap vocabulary.
const (
	StateClosed PortState = iota
	StateOpen
	StateFiltered
	StateOpenFiltered // UDP: no response either way
)

// String renders the state.
func (s PortState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateClosed:
		return "closed"
	case StateFiltered:
		return "filtered"
	case StateOpenFiltered:
		return "open|filtered"
	}
	return "unknown"
}

// Result is the scan outcome for one target.
type Result struct {
	Target netip.Addr
	// TCPOpen / UDPOpen list open ports ascending.
	TCPOpen []uint16
	UDPOpen []uint16
	// UDPOpenFiltered lists UDP ports that neither answered nor drew an
	// ICMP unreachable while the host was provably sending unreachables —
	// nmap's open|filtered verdict (how the paper's DHCP-68 rows appear).
	UDPOpenFiltered []uint16
	// IPProtos lists IP protocol numbers the host responded to.
	IPProtos []uint8
	// Services maps open port ("tcp"/"udp" prefixed) to the nmap-guessed
	// service name.
	Services map[string]string
	// RespondedTCP/UDP/IP report whether the host reacted to each scan type
	// at all (only 54/20/58 of 93 devices did, §3.1).
	RespondedTCP, RespondedUDP, RespondedIP bool
}

// Scanner drives scans from one attacker/auditor host on the LAN.
type Scanner struct {
	Host *stack.Host
	// TCPPorts is the SYN-scan port list (default 1–65535 via AllTCPPorts).
	TCPPorts []uint16
	// UDPPorts is the UDP-scan list (default 1–1024, §3.1).
	UDPPorts []uint16
	// Protos is the IP-protocol scan list.
	Protos []uint8
}

// AllTCPPorts returns 1–65535.
func AllTCPPorts() []uint16 {
	out := make([]uint16, 65535)
	for i := range out {
		out[i] = uint16(i + 1)
	}
	return out
}

// WellKnownUDPPorts returns 1–1024.
func WellKnownUDPPorts() []uint16 {
	out := make([]uint16, 1024)
	for i := range out {
		out[i] = uint16(i + 1)
	}
	return out
}

// CommonProtos is the IP-protocol scan list (ICMP, IGMP, TCP, UDP, GRE,
// ESP, ICMPv6 carried over v4 for probing).
func CommonProtos() []uint8 { return []uint8{1, 2, 6, 17, 41, 47, 50} }

// Scan runs all three scan types against target and invokes done when the
// sweep completes (simulation time advances via the shared scheduler).
func (s *Scanner) Scan(target netip.Addr, done func(*Result)) {
	res := &Result{Target: target, Services: map[string]string{}}
	tcpPorts := s.TCPPorts
	if tcpPorts == nil {
		tcpPorts = AllTCPPorts()
	}
	udpPorts := s.UDPPorts
	if udpPorts == nil {
		udpPorts = WellKnownUDPPorts()
	}
	protos := s.Protos
	if protos == nil {
		protos = CommonProtos()
	}

	// Prime ARP/NDP with the discovery ping before the port sweep fires: a
	// present target's MAC is cached by the time the thousands of probe
	// frames below go out, so none of them park on the bounded arpWait
	// queue. An absent target sheds the burst at that bound instead — the
	// verdicts don't change (nothing would have answered), the memory does.
	s.Host.Ping(target, 0x5ca0, 1)

	// UDP scan: match ICMP port-unreachables back to probes via the
	// embedded original header; any datagram back from a probed port means
	// open. IP-protocol scan verdicts ride on the same ICMP hook: a
	// protocol-unreachable closes that protocol, any reply at all marks the
	// host as responding.
	udpPending := map[uint16]bool{}
	for _, port := range udpPorts {
		udpPending[port] = true
	}
	protoClosed := map[uint8]bool{}
	icmpSeen := false
	s.Host.SetICMPHook(func(p *layers.Packet) {
		if p.SrcIP() != target {
			return
		}
		icmpSeen = true
		if p.ICMP4.Type != layers.ICMPv4Unreachable {
			return
		}
		switch p.ICMP4.Code {
		case 3: // port unreachable: that UDP port is closed
			if port, ok := embeddedUDPDstPort(p.ICMP4.Data); ok {
				res.RespondedUDP = true
				delete(udpPending, port)
			}
		case 2: // protocol unreachable
			if len(p.ICMP4.Data) >= 10 {
				protoClosed[p.ICMP4.Data[9]] = true
			}
		}
	})
	sock := s.Host.OpenUDPEphemeral(func(dg stack.Datagram) {
		if dg.Src != target {
			return
		}
		res.RespondedUDP = true
		if udpPending[dg.SrcPort] {
			delete(udpPending, dg.SrcPort)
			res.UDPOpen = append(res.UDPOpen, dg.SrcPort)
			res.Services["udp/"+itoa(dg.SrcPort)] = GuessService("udp", dg.SrcPort)
		}
	})
	// The sweep proper waits out the ping's resolution round-trip.
	s.Host.Sched.AfterTagged("scan", 2*time.Millisecond, func() {
		for _, port := range tcpPorts {
			port := port
			s.Host.SynProbe(target, port, func(open bool) {
				res.RespondedTCP = true
				if open {
					res.TCPOpen = append(res.TCPOpen, port)
					res.Services["tcp/"+itoa(port)] = GuessService("tcp", port)
				}
			})
		}
		for _, port := range udpPorts {
			sock.SendTo(target, port, probePayload(port))
		}
		for _, proto := range protos {
			s.Host.SendIPv4Proto(target, proto, []byte{0, 0, 0, 0})
		}
	})

	// Collect after the probes settle. Ten simulated seconds cover probe
	// RTTs plus the SynProbe reaping window.
	s.Host.Sched.After(10*time.Second, func() {
		if icmpSeen || res.RespondedTCP || res.RespondedUDP {
			res.RespondedIP = icmpSeen
			for _, proto := range protos {
				if protoClosed[proto] {
					continue
				}
				// Only protocols the stack genuinely implements count open.
				switch proto {
				case 1, 2, 6, 17:
					res.IPProtos = append(res.IPProtos, proto)
				}
			}
		}
		sort.Slice(res.TCPOpen, func(i, j int) bool { return res.TCPOpen[i] < res.TCPOpen[j] })
		sort.Slice(res.UDPOpen, func(i, j int) bool { return res.UDPOpen[i] < res.UDPOpen[j] })
		if res.RespondedUDP {
			// The host sends unreachables, so silent probed ports are
			// open|filtered (a bound socket that ignored our payload).
			for port := range udpPending {
				res.UDPOpenFiltered = append(res.UDPOpenFiltered, port)
			}
			sort.Slice(res.UDPOpenFiltered, func(i, j int) bool { return res.UDPOpenFiltered[i] < res.UDPOpenFiltered[j] })
		}
		sock.Close()
		s.Host.SetICMPHook(nil)
		done(res)
	})
}

// embeddedUDPDstPort extracts the destination port from the offending IP
// header an ICMP unreachable embeds.
func embeddedUDPDstPort(data []byte) (uint16, bool) {
	if len(data) < 24 || data[0]>>4 != 4 || data[9] != layers.IPProtoUDP {
		return 0, false
	}
	ihl := int(data[0]&0x0f) * 4
	if len(data) < ihl+4 {
		return 0, false
	}
	return uint16(data[ihl+2])<<8 | uint16(data[ihl+3]), true
}

// probePayload picks a protocol-aware probe like nmap's payload database
// (DNS query to 53, SSDP M-SEARCH to 1900, …); others get an empty probe.
func probePayload(port uint16) []byte {
	switch port {
	case 53:
		// A minimal DNS query for "version.bind" TXT.
		return []byte{0x12, 0x34, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0,
			7, 'v', 'e', 'r', 's', 'i', 'o', 'n', 4, 'b', 'i', 'n', 'd', 0, 0, 16, 0, 3}
	case 137:
		return []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 32,
			'C', 'K', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A',
			'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A',
			0, 0, 0x21, 0, 1}
	default:
		return nil
	}
}

func itoa(p uint16) string { return fmt.Sprintf("%d", p) }
