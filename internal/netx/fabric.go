package netx

import (
	"context"
	"net"
	"time"
)

// Fabric abstracts the network a component binds to, so the same serving
// code runs against real sockets in a deployment and against the simulated
// LAN in tests. Two implementations exist: System (standard library,
// wall-clock time) and vnet.Net (virtual hosts, virtual time). Components
// that take a Fabric must use its Now for deadlines and timestamps —
// mixing time.Now into virtual-net code couples behaviour to the real
// scheduler and breaks determinism.
type Fabric interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
	Listen(network, addr string) (net.Listener, error)
	ListenPacket(network, addr string) (net.PacketConn, error)
	Now() time.Time
}

// System is the standard-library Fabric: real sockets and wall-clock time.
// The zero value is ready to use.
type System struct{}

// DialContext dials with a default net.Dialer.
func (System) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, network, addr)
}

// Listen binds a real TCP listener.
func (System) Listen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

// ListenPacket binds a real UDP socket.
func (System) ListenPacket(network, addr string) (net.PacketConn, error) {
	return net.ListenPacket(network, addr)
}

// Now returns wall-clock time.
func (System) Now() time.Time { return time.Now() }
