package netx

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x9c, 0x8e, 0xcd, 0x0a, 0x33, 0x1b}
	if got := m.String(); got != "9c:8e:cd:0a:33:1b" {
		t.Fatalf("String() = %q", got)
	}
	if got := m.Compact(); got != "9C8ECD0A331B" {
		t.Fatalf("Compact() = %q", got)
	}
	if got := m.Tail(3); got != "0A331B" {
		t.Fatalf("Tail(3) = %q", got)
	}
}

func TestParseMACRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		got, err := ParseMAC(m.String())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseMACErrors(t *testing.T) {
	for _, bad := range []string{"", "aa:bb", "aa:bb:cc:dd:ee:zz", "aabbccddeeff"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) accepted", bad)
		}
	}
	if m, err := ParseMAC("9C-8E-CD-0A-33-1B"); err != nil || m[0] != 0x9c {
		t.Fatalf("dash form rejected: %v %v", m, err)
	}
}

func TestMulticastAndBroadcastBits(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast flags wrong")
	}
	if (MAC{0x01, 0x00, 0x5e, 0, 0, 0xfb}).IsMulticast() == false {
		t.Fatal("mdns group MAC not multicast")
	}
	if (MAC{0xfc, 0x65, 0xde, 1, 2, 3}).IsMulticast() {
		t.Fatal("unicast MAC flagged multicast")
	}
}

func TestVendorForOUI(t *testing.T) {
	if v := VendorForOUI(OUI{0x00, 0x17, 0x88}); v != "Philips" {
		t.Fatalf("Philips OUI → %q", v)
	}
	if v := VendorForOUI(OUI{0xde, 0xad, 0xbe}); v != "" {
		t.Fatalf("unknown OUI → %q", v)
	}
	RegisterOUI(OUI{0xde, 0xad, 0xbe}, "Acme")
	if v := VendorForOUI(OUI{0xde, 0xad, 0xbe}); v != "Acme" {
		t.Fatalf("registered OUI → %q", v)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length payloads are padded with a zero byte.
	a := Checksum([]byte{0xab}, 0)
	b := Checksum([]byte{0xab, 0x00}, 0)
	if a != b {
		t.Fatalf("odd-length padding mismatch: %#04x vs %#04x", a, b)
	}
}

func TestChecksumVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data, 0)
		// Appending the checksum makes the total sum verify to 0.
		withSum := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Checksum(withSum, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsLocalTraffic(t *testing.T) {
	cases := []struct {
		src, dst string
		want     bool
	}{
		{"192.168.10.5", "192.168.10.7", true},
		{"192.168.10.5", "8.8.8.8", false},
		{"10.0.0.1", "172.16.4.4", true},
		{"192.168.10.5", "224.0.0.251", true},
		{"192.168.10.5", "255.255.255.255", true},
		{"8.8.8.8", "192.168.10.5", false},
		{"fe80::1", "fe80::2", true},
		{"fe80::1", "ff02::fb", true},
	}
	for _, c := range cases {
		src, dst := netip.MustParseAddr(c.src), netip.MustParseAddr(c.dst)
		if got := IsLocalTraffic(src, dst); got != c.want {
			t.Errorf("IsLocalTraffic(%s, %s) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestMulticastMAC(t *testing.T) {
	if got := MulticastMAC(MDNSv4Group); got != (MAC{0x01, 0x00, 0x5e, 0x00, 0x00, 0xfb}) {
		t.Fatalf("mDNS v4 group MAC = %v", got)
	}
	if got := MulticastMAC(MDNSv6Group); got != (MAC{0x33, 0x33, 0, 0, 0, 0xfb}) {
		t.Fatalf("mDNS v6 group MAC = %v", got)
	}
	if got := MulticastMAC(SSDPGroup); got != (MAC{0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa}) {
		t.Fatalf("SSDP group MAC = %v", got)
	}
}

func TestSubnetBroadcast(t *testing.T) {
	got := SubnetBroadcast(netip.MustParseAddr("192.168.10.42"))
	if got != netip.MustParseAddr("192.168.10.255") {
		t.Fatalf("SubnetBroadcast = %v", got)
	}
}

func TestLinkLocalV6(t *testing.T) {
	m := MAC{0x00, 0x17, 0x88, 0x68, 0x5f, 0x61}
	got := LinkLocalV6(m)
	want := netip.MustParseAddr("fe80::217:88ff:fe68:5f61")
	if got != want {
		t.Fatalf("LinkLocalV6 = %v, want %v", got, want)
	}
	if !got.IsLinkLocalUnicast() {
		t.Fatal("derived address not link-local")
	}
}

func TestPseudoHeaderSumSymmetry(t *testing.T) {
	src := netip.MustParseAddr("192.168.10.1")
	dst := netip.MustParseAddr("192.168.10.2")
	a := PseudoHeaderSum(src, dst, 17, 100)
	b := PseudoHeaderSum(dst, src, 17, 100)
	if a != b {
		t.Fatalf("pseudo-header sum not symmetric: %d vs %d", a, b)
	}
}
