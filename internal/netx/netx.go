// Package netx provides shared network primitives for the simulated smart
// home: hardware addresses with OUI vendor mapping, IPv4/IPv6 helpers,
// private-range checks per RFC 6890, well-known multicast groups, and the
// Internet checksum used by IP, ICMP, UDP and TCP.
package netx

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// MAC is a 48-bit IEEE 802 hardware address. Using a fixed array keeps MACs
// comparable and usable as map keys throughout the capture pipeline.
type MAC [6]byte

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the address in the canonical aa:bb:cc:dd:ee:ff form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Compact renders the address without separators (AABBCCDDEEFF), the form
// many IoT vendors embed in hostnames.
func (m MAC) Compact() string {
	return fmt.Sprintf("%02X%02X%02X%02X%02X%02X", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Tail returns the last n bytes rendered as uppercase hex, as used in
// hostname suffixes like "Tuya-BC1F18".
func (m MAC) Tail(n int) string {
	if n > 6 {
		n = 6
	}
	var b strings.Builder
	for _, x := range m[6-n:] {
		fmt.Fprintf(&b, "%02X", x)
	}
	return b.String()
}

// OUI returns the organizationally unique identifier (first three octets).
func (m MAC) OUI() OUI { return OUI{m[0], m[1], m[2]} }

// IsMulticast reports whether the I/G bit is set (group address).
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// IsBroadcast reports whether the address is the all-ones broadcast.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// ParseMAC parses aa:bb:cc:dd:ee:ff or aa-bb-... forms.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	s = strings.ReplaceAll(s, "-", ":")
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("netx: invalid MAC %q", s)
	}
	for i, p := range parts {
		var v int
		if _, err := fmt.Sscanf(p, "%02x", &v); err != nil {
			return m, fmt.Errorf("netx: invalid MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// OUI is the vendor prefix of a MAC address.
type OUI [3]byte

// String renders the OUI as AA:BB:CC.
func (o OUI) String() string { return fmt.Sprintf("%02x:%02x:%02x", o[0], o[1], o[2]) }

// ouiVendors maps the OUI prefixes used by the simulated device catalog to
// vendor names, mirroring the IEEE registry entries the paper's pipeline
// relies on for device identification.
var ouiVendors = map[OUI]string{
	{0xfc, 0x65, 0xde}: "Amazon",
	{0x44, 0x00, 0x49}: "Amazon",
	{0x1c, 0x53, 0xf9}: "Google",
	{0x54, 0x60, 0x09}: "Google",
	{0xf0, 0x18, 0x98}: "Apple",
	{0xac, 0xbc, 0x32}: "Apple",
	{0x00, 0x17, 0x88}: "Philips",
	{0x50, 0xc7, 0xbf}: "TP-Link",
	{0x68, 0xff, 0x7b}: "TP-Link",
	{0x10, 0xd5, 0x61}: "Tuya",
	{0x68, 0x57, 0x2d}: "Tuya",
	{0x28, 0x6d, 0x97}: "Samsung",
	{0x8c, 0x79, 0xf5}: "Samsung",
	{0xcc, 0x50, 0xe3}: "Espressif",
	{0xb0, 0xbe, 0x76}: "Belkin",
	{0x94, 0x10, 0x3e}: "Belkin",
	{0x00, 0x0d, 0x4b}: "Roku",
	{0xd8, 0x31, 0x34}: "Ring",
	{0x64, 0x16, 0x66}: "Nest",
	{0x88, 0x71, 0xe5}: "Amazon",
	{0xa4, 0x77, 0x33}: "Google",
	{0x20, 0xdf, 0xb9}: "Google",
	{0x00, 0x04, 0x4b}: "Nvidia",
	{0x7c, 0x49, 0xeb}: "Xiaomi",
	{0x78, 0x11, 0xdc}: "Xiaomi",
	{0xc0, 0x97, 0x27}: "Sonoff",
	{0x24, 0xfd, 0x5b}: "SmartThings",
	{0xd0, 0x52, 0xa8}: "SmartThings",
	{0x00, 0x71, 0x47}: "Amazon",
	{0xb8, 0x5f, 0x98}: "Amazon",
	{0x18, 0xb4, 0x30}: "Nest",
	{0x38, 0x8b, 0x59}: "Google",
	{0x00, 0x24, 0xe4}: "Withings",
	{0x00, 0x03, 0x7f}: "Atheros",
	{0xb0, 0x09, 0xda}: "Ring",
	{0x74, 0xc2, 0x46}: "Amazon",
	{0x84, 0xd6, 0xd0}: "Amazon",
	{0x08, 0x12, 0xa5}: "Amcrest",
	{0x9c, 0x8e, 0xcd}: "Amcrest",
	{0x2c, 0xaa, 0x8e}: "Wyze",
	{0x60, 0x01, 0x94}: "Espressif",
	{0xec, 0x71, 0xdb}: "Reolink",
	{0x00, 0x12, 0xfb}: "LG",
	{0x88, 0x36, 0x6c}: "LG",
	{0xcc, 0xa7, 0xc1}: "Google",
	{0x30, 0xfd, 0x38}: "Google",
	{0x40, 0xb4, 0xcd}: "Amazon",
	{0x6c, 0x56, 0x97}: "Amazon",
	{0x00, 0xfc, 0x8b}: "Amazon",
	{0xac, 0x63, 0xbe}: "Amazon",
	{0x08, 0x84, 0x9d}: "Amazon",
	{0xa0, 0xd0, 0xdc}: "Amazon",
	{0x34, 0xd2, 0x70}: "Amazon",
	{0x48, 0xd6, 0xd5}: "Google",
	{0xf4, 0xf5, 0xd8}: "Google",
	{0x1a, 0x11, 0x30}: "IKEA",
	{0x00, 0x0b, 0x57}: "Silicon Labs",
	{0x5c, 0x41, 0x5a}: "Amazon",
	{0x10, 0x2c, 0x6b}: "AMPAK",
	{0x70, 0xee, 0x50}: "Netatmo",
	{0xd4, 0x81, 0xd7}: "Arlo",
	{0x3c, 0x37, 0x86}: "Netgear",
	{0xb4, 0x79, 0xa7}: "Marvell",
	{0x00, 0x1d, 0xc9}: "GainSpan",
	{0xdc, 0xa6, 0x32}: "Raspberry Pi",
	{0x00, 0x16, 0x6c}: "Samsung",
	{0x70, 0x2c, 0x1f}: "Wisol",
	{0x14, 0x91, 0x82}: "Belkin",
	{0xc0, 0x56, 0x27}: "Belkin",
	{0x58, 0xef, 0x68}: "Belkin",
	{0x64, 0x52, 0x99}: "Chamberlain",
	{0x00, 0x02, 0x75}: "D-Link",
	{0xb0, 0xc5, 0x54}: "D-Link",
	{0xec, 0xfa, 0xbc}: "Espressif",
	{0x84, 0x0d, 0x8e}: "Espressif",
	{0x5c, 0xcf, 0x7f}: "Espressif",
	{0x00, 0x1f, 0x32}: "Nintendo",
	{0x98, 0xb6, 0xe9}: "Nintendo",
	{0xc8, 0xdb, 0x26}: "Logitech",
	{0x00, 0x04, 0x20}: "Slim Devices",
	{0x74, 0x75, 0x48}: "Amazon",
	{0xcc, 0x9e, 0xa2}: "Amazon",
	{0x38, 0xf7, 0x3d}: "Amazon",
	{0x44, 0x65, 0x0d}: "Amazon",
	{0x50, 0xdc, 0xe7}: "Amazon",
	{0x68, 0x37, 0xe9}: "Amazon",
	{0x78, 0xe1, 0x03}: "Amazon",
	{0xf0, 0x27, 0x2d}: "Amazon",
	{0x88, 0xc6, 0x26}: "Logitech",
	{0x60, 0xf1, 0x89}: "Meta",
	{0x48, 0x5f, 0x99}: "Cloud Network Technology",
	{0x90, 0x48, 0x6c}: "Ring",
	{0x54, 0xe0, 0x19}: "Ring",
	{0x34, 0x3e, 0xa4}: "Ring",
	{0x0c, 0x47, 0xc9}: "Amazon",
	{0x18, 0x74, 0x2e}: "Amazon",
	{0x24, 0x4c, 0xe3}: "Amazon",
	{0xac, 0x41, 0x6a}: "Amazon",
}

// VendorForOUI returns the vendor registered for an OUI, or "" when unknown.
func VendorForOUI(o OUI) string { return ouiVendors[o] }

// RegisterOUI adds an OUI→vendor mapping (used by the device catalog for
// vendor prefixes not in the builtin table).
func RegisterOUI(o OUI, vendor string) { ouiVendors[o] = vendor }

// Checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum, as used by IPv4, ICMP, UDP and TCP.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum computes the partial sum of the IPv4/IPv6 pseudo-header
// used in UDP/TCP checksums.
func PseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	add := func(b []byte) {
		for len(b) >= 2 {
			sum += uint32(binary.BigEndian.Uint16(b))
			b = b[2:]
		}
	}
	s, d := src.As16(), dst.As16()
	if src.Is4() {
		add(s[12:])
		add(d[12:])
	} else {
		add(s[:])
		add(d[:])
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// IsPrivate reports whether addr falls in a range reserved for private
// networks (RFC 6890): 10/8, 172.16/12, 192.168/16, 169.254/16 link-local,
// and IPv6 ULA/link-local. The IoT Inspector pipeline only considers traffic
// whose endpoints are both private.
func IsPrivate(addr netip.Addr) bool {
	return addr.IsPrivate() || addr.IsLinkLocalUnicast() || addr.IsLoopback()
}

// IsLocalTraffic reports whether a (src, dst) pair stays on the local
// network: both ends private, or dst multicast/broadcast.
func IsLocalTraffic(src, dst netip.Addr) bool {
	if dst.IsMulticast() {
		return true
	}
	if dst.Is4() && dst.As4() == [4]byte{255, 255, 255, 255} {
		return true
	}
	return IsPrivate(src) && IsPrivate(dst)
}

// Well-known multicast groups used by the discovery protocols in the study.
var (
	MDNSv4Group = netip.AddrFrom4([4]byte{224, 0, 0, 251})
	SSDPGroup   = netip.AddrFrom4([4]byte{239, 255, 255, 250})
	CoAPGroup   = netip.AddrFrom4([4]byte{224, 0, 1, 187})
	IGMPGroup   = netip.AddrFrom4([4]byte{224, 0, 0, 22})
	AllNodesV4  = netip.AddrFrom4([4]byte{224, 0, 0, 1})
	MDNSv6Group = netip.MustParseAddr("ff02::fb")
	AllNodesV6  = netip.MustParseAddr("ff02::1")
	SLAACRtrs   = netip.MustParseAddr("ff02::2")
)

// MulticastMAC maps an IPv4/IPv6 multicast group to its Ethernet group MAC.
func MulticastMAC(group netip.Addr) MAC {
	if group.Is4() {
		a := group.As4()
		return MAC{0x01, 0x00, 0x5e, a[1] & 0x7f, a[2], a[3]}
	}
	a := group.As16()
	return MAC{0x33, 0x33, a[12], a[13], a[14], a[15]}
}

// Broadcast4 is the IPv4 limited-broadcast address.
var Broadcast4 = netip.AddrFrom4([4]byte{255, 255, 255, 255})

// SubnetBroadcast returns the directed broadcast address of a /24 containing
// addr (the simulated lab uses a /24, matching Appendix C.1).
func SubnetBroadcast(addr netip.Addr) netip.Addr {
	a := addr.As4()
	a[3] = 255
	return netip.AddrFrom4(a)
}

// LinkLocalV6 derives the EUI-64 link-local IPv6 address for a MAC, as SLAAC
// does (RFC 4862).
func LinkLocalV6(m MAC) netip.Addr {
	var a [16]byte
	a[0], a[1] = 0xfe, 0x80
	a[8] = m[0] ^ 0x02
	a[9], a[10] = m[1], m[2]
	a[11], a[12] = 0xff, 0xfe
	a[13], a[14], a[15] = m[3], m[4], m[5]
	return netip.AddrFrom16(a)
}

// SplitAddrPort parses a "host:port" dial/listen address into its parts.
// Unlike netip.ParseAddrPort it accepts the listen-style empty host
// (":8080"), returning the zero Addr for it — callers substitute their own
// bound address. Hostnames are rejected: the simulated LAN has no resolver.
func SplitAddrPort(s string) (netip.Addr, uint16, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return netip.Addr{}, 0, fmt.Errorf("address %q: missing port", s)
	}
	p, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("address %q: bad port: %v", s, err)
	}
	host := s[:i]
	if host == "" || host == "0.0.0.0" || host == "::" || host == "[::]" {
		return netip.Addr{}, uint16(p), nil
	}
	host = strings.TrimPrefix(strings.TrimSuffix(host, "]"), "[")
	addr, err := netip.ParseAddr(host)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("address %q: %v (hostnames are not resolvable on the simulated LAN)", s, err)
	}
	return addr.Unmap(), uint16(p), nil
}
