package tuya

import "testing"

// FuzzDecode asserts the Tuya frame/crypto/beacon pipeline is total: the
// chaos layer's corruptor bit-flips real 6666/6667 broadcasts, so every
// stage must survive arbitrary bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	b := Beacon{GWID: "fuzzgw", ProductKey: "key", Version: "3.3", Active: 2, Encrypt: true}
	f.Add(Frame(CmdUDPNew, Encrypt(b.Marshal())))
	f.Fuzz(func(t *testing.T, data []byte) {
		if cmd, payload, err := Unframe(data); err == nil {
			_ = cmd
			if plain, err := Decrypt(payload); err == nil {
				if bc, err := ParseBeacon(plain); err == nil {
					_ = bc.GWID
				}
			}
		}
		// The UDP listener also tries both stages directly on raw payloads.
		if plain, err := Decrypt(data); err == nil {
			_, _ = ParseBeacon(plain)
		}
		_, _ = ParseBeacon(data)
	})
}
