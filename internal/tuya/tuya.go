// Package tuya implements the TuyaLP local discovery protocol: devices
// broadcast JSON presence beacons on UDP 6666 (plaintext) and 6667
// (AES-obscured with a fixed key), exposing gwId and productKey (§5.1).
// Tuya devices answer probes only from their companion apps.
package tuya

import (
	"crypto/aes"
	"crypto/md5"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"iotlan/internal/netx"
	"iotlan/internal/stack"
)

// Broadcast ports: 6666 carries plaintext beacons (protocol 3.1), 6667
// carries beacons encrypted with the well-known UDP key (3.3+).
const (
	PortPlain     = 6666
	PortEncrypted = 6667
)

// udpKey is the fixed "yGAdlopoPVldABfn" key's MD5, baked into every Tuya
// firmware — obscurity, not secrecy.
var udpKey = md5.Sum([]byte("yGAdlopoPVldABfn"))

// Beacon is the broadcast presence message.
type Beacon struct {
	IP         string `json:"ip"`
	GWID       string `json:"gwId"`
	Active     int    `json:"active"`
	Ability    int    `json:"ablilty"` // (sic) field name as on the wire
	Encrypt    bool   `json:"encrypt"`
	ProductKey string `json:"productKey"`
	Version    string `json:"version"`
}

// Marshal encodes the beacon JSON.
func (b *Beacon) Marshal() []byte {
	out, _ := json.Marshal(b)
	return out
}

// ParseBeacon decodes a plaintext beacon.
func ParseBeacon(data []byte) (*Beacon, error) {
	var b Beacon
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("tuya: bad beacon: %w", err)
	}
	return &b, nil
}

// pkcs7Pad pads to the AES block size.
func pkcs7Pad(b []byte) []byte {
	n := aes.BlockSize - len(b)%aes.BlockSize
	out := make([]byte, len(b)+n)
	copy(out, b)
	for i := len(b); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

func pkcs7Unpad(b []byte) ([]byte, error) {
	if len(b) == 0 || len(b)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("tuya: bad padded length %d", len(b))
	}
	n := int(b[len(b)-1])
	if n == 0 || n > aes.BlockSize || n > len(b) {
		return nil, fmt.Errorf("tuya: bad padding byte %d", n)
	}
	return b[:len(b)-n], nil
}

// Encrypt applies ECB-mode AES with the fixed UDP key, as 3.3 firmware does.
func Encrypt(plain []byte) []byte {
	block, _ := aes.NewCipher(udpKey[:])
	padded := pkcs7Pad(plain)
	out := make([]byte, len(padded))
	for i := 0; i < len(padded); i += aes.BlockSize {
		block.Encrypt(out[i:i+aes.BlockSize], padded[i:i+aes.BlockSize])
	}
	return out
}

// Decrypt reverses Encrypt.
func Decrypt(cipher []byte) ([]byte, error) {
	if len(cipher)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("tuya: ciphertext not block-aligned")
	}
	block, _ := aes.NewCipher(udpKey[:])
	out := make([]byte, len(cipher))
	for i := 0; i < len(cipher); i += aes.BlockSize {
		block.Decrypt(out[i:i+aes.BlockSize], cipher[i:i+aes.BlockSize])
	}
	return pkcs7Unpad(out)
}

// Frame wraps a payload in the Tuya 0x55AA message envelope (simplified:
// prefix, command word, length, payload, suffix; CRC field zeroed).
func Frame(cmd uint32, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+24)
	out = binary.BigEndian.AppendUint32(out, 0x000055aa)
	out = binary.BigEndian.AppendUint32(out, 0) // seq
	out = binary.BigEndian.AppendUint32(out, cmd)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)+8))
	out = append(out, payload...)
	out = binary.BigEndian.AppendUint32(out, 0) // crc placeholder
	out = binary.BigEndian.AppendUint32(out, 0x0000aa55)
	return out
}

// Unframe extracts the payload from a 0x55AA envelope.
func Unframe(data []byte) (cmd uint32, payload []byte, err error) {
	if len(data) < 24 {
		return 0, nil, fmt.Errorf("tuya: short frame")
	}
	if binary.BigEndian.Uint32(data[0:4]) != 0x000055aa {
		return 0, nil, fmt.Errorf("tuya: bad prefix")
	}
	cmd = binary.BigEndian.Uint32(data[8:12])
	n := int(binary.BigEndian.Uint32(data[12:16]))
	if n < 8 || 16+n > len(data) {
		return 0, nil, fmt.Errorf("tuya: bad length %d", n)
	}
	return cmd, data[16 : 16+n-8], nil
}

// CmdUDPNew is the discovery beacon command word.
const CmdUDPNew = 0x13

// Device broadcasts TuyaLP beacons for a simulated Tuya-based product.
type Device struct {
	Host   *stack.Host
	Beacon Beacon
	// Plaintext selects the 3.1 behaviour (port 6666, no AES); the Jinvoo
	// bulb in the lab leaks gwId and productKey this way (§5.1).
	Plaintext bool
}

// Broadcast emits one presence beacon.
func (d *Device) Broadcast() {
	d.Beacon.IP = d.Host.IPv4().String()
	body := d.Beacon.Marshal()
	if d.Plaintext {
		d.Host.SendUDP(PortPlain, netx.Broadcast4, PortPlain, Frame(CmdUDPNew, body))
		return
	}
	d.Host.SendUDP(PortEncrypted, netx.Broadcast4, PortEncrypted, Frame(CmdUDPNew, Encrypt(body)))
}

// Listen receives beacons on both ports, decrypting 6667 traffic; this is
// the companion-app (and eavesdropper) view.
func Listen(h *stack.Host, fn func(b *Beacon, encrypted bool)) {
	h.OpenUDP(PortPlain, func(dg stack.Datagram) {
		if _, body, err := Unframe(dg.Payload); err == nil {
			if b, err := ParseBeacon(body); err == nil {
				fn(b, false)
			}
		}
	})
	h.OpenUDP(PortEncrypted, func(dg stack.Datagram) {
		_, body, err := Unframe(dg.Payload)
		if err != nil {
			return
		}
		plain, err := Decrypt(body)
		if err != nil {
			return
		}
		if b, err := ParseBeacon(plain); err == nil {
			fn(b, true)
		}
	})
}
