package tuya

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestEncryptRoundTrip(t *testing.T) {
	f := func(plain []byte) bool {
		got, err := Decrypt(Encrypt(plain))
		return err == nil && bytes.Equal(got, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecryptRejectsBadInput(t *testing.T) {
	if _, err := Decrypt([]byte{1, 2, 3}); err == nil {
		t.Fatal("non-aligned ciphertext accepted")
	}
	if _, err := Decrypt(make([]byte, 16)); err == nil {
		// all-zero block decrypts to garbage padding, must be rejected
		t.Log("note: zero block happened to decrypt with valid padding")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"gwId":"22180268840d8e49a3aa"}`)
	cmd, got, err := Unframe(Frame(CmdUDPNew, payload))
	if err != nil {
		t.Fatal(err)
	}
	if cmd != CmdUDPNew || !bytes.Equal(got, payload) {
		t.Fatalf("cmd=%d payload=%q", cmd, got)
	}
}

func TestUnframeRejectsGarbage(t *testing.T) {
	if _, _, err := Unframe([]byte("short")); err == nil {
		t.Fatal("short frame accepted")
	}
	bad := Frame(CmdUDPNew, []byte("x"))
	bad[0] = 0xff
	if _, _, err := Unframe(bad); err == nil {
		t.Fatal("bad prefix accepted")
	}
}

func TestBeaconBroadcastPlaintextAndEncrypted(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	mk := func(last byte) *stack.Host {
		h := stack.NewHost(network, netx.MAC{0x10, 0xd5, 0x61, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
	bulb := &Device{Host: mk(60), Plaintext: true, Beacon: Beacon{
		GWID: "22180268840d8e49a3aa", ProductKey: "keymw5wkqkkrt97y", Version: "3.1",
	}}
	plug := &Device{Host: mk(61), Beacon: Beacon{
		GWID: "bf9346c6635dfb4b28sj1p", ProductKey: "aovbkkjmwmmd4kbu", Version: "3.3",
	}}

	app := mk(50)
	type hit struct {
		b   *Beacon
		enc bool
	}
	var hits []hit
	Listen(app, func(b *Beacon, encrypted bool) { hits = append(hits, hit{b, encrypted}) })

	bulb.Broadcast()
	plug.Broadcast()
	sched.RunFor(time.Second)

	if len(hits) != 2 {
		t.Fatalf("received %d beacons", len(hits))
	}
	var sawPlain, sawEnc bool
	for _, h := range hits {
		if h.enc {
			sawEnc = true
			if h.b.GWID != "bf9346c6635dfb4b28sj1p" {
				t.Fatalf("encrypted beacon gwId %q", h.b.GWID)
			}
		} else {
			sawPlain = true
			if h.b.ProductKey != "keymw5wkqkkrt97y" {
				t.Fatalf("plaintext beacon leaks wrong key %q", h.b.ProductKey)
			}
		}
	}
	if !sawPlain || !sawEnc {
		t.Fatalf("beacon modes: plain=%v enc=%v", sawPlain, sawEnc)
	}
}

func TestBeaconCarriesIP(t *testing.T) {
	sched := sim.NewScheduler(1)
	network := lan.New(sched)
	h := stack.NewHost(network, netx.MAC{0x10, 0xd5, 0x61, 0, 0, 9}, stack.DefaultPolicy)
	h.SetIPv4(netip.MustParseAddr("192.168.10.9"))
	d := &Device{Host: h, Plaintext: true, Beacon: Beacon{GWID: "g"}}
	app := stack.NewHost(network, netx.MAC{0x10, 0xd5, 0x61, 0, 0, 10}, stack.DefaultPolicy)
	app.SetIPv4(netip.MustParseAddr("192.168.10.10"))
	var got *Beacon
	Listen(app, func(b *Beacon, _ bool) { got = b })
	d.Broadcast()
	sched.RunFor(time.Second)
	if got == nil || got.IP != "192.168.10.9" {
		t.Fatalf("beacon IP: %+v", got)
	}
}
