// Package honeypot implements the study's protocol honeypots (§3.1): SSDP,
// mDNS, UPnP/HTTP and telnet responders that mimic a real device, log every
// interaction, and embed a unique honeytoken in all identifying fields so
// information propagation can be traced — if the token later shows up in a
// cloud upload, the path from LAN exposure to exfiltration is proven.
//
// Honeypots run in two modes: attached to the simulated LAN (Attach), or
// bound to a real network via the standard library (Server).
package honeypot

import (
	"crypto/md5"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/httpx"
	"iotlan/internal/mdns"
	"iotlan/internal/netx"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/telnetx"
)

// Event is one logged interaction with the honeypot.
type Event struct {
	Time   time.Time
	Proto  string // "ssdp", "mdns", "http", "telnet"
	From   netip.Addr
	Detail string
}

// Honeypot is the shared interaction log plus the honeytoken identity.
type Honeypot struct {
	// Name labels the emulated device ("fake-hue").
	Name string
	// Token is the unique honeytoken embedded in every identifying field
	// (UUID, mDNS instance, HTTP body, telnet banner).
	Token string

	Events []Event
}

// New creates a honeypot with a deterministic token derived from name+seed.
func New(name string, seed int64) *Honeypot {
	sum := md5.Sum([]byte(fmt.Sprintf("honeytoken:%s:%d", name, seed)))
	return &Honeypot{Name: name, Token: fmt.Sprintf("hp-%x", sum[:8])}
}

func (hp *Honeypot) log(t time.Time, proto string, from netip.Addr, detail string) {
	hp.Events = append(hp.Events, Event{Time: t, Proto: proto, From: from, Detail: detail})
}

// Interactions counts events per protocol.
func (hp *Honeypot) Interactions() map[string]int {
	m := map[string]int{}
	for _, e := range hp.Events {
		m[e.Proto]++
	}
	return m
}

// Visitors lists distinct source addresses, sorted.
func (hp *Honeypot) Visitors() []netip.Addr {
	seen := map[netip.Addr]bool{}
	for _, e := range hp.Events {
		seen[e.From] = true
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TokenAppearsIn reports whether the honeytoken occurs in data — the
// propagation check run over captures and exfiltration records.
func (hp *Honeypot) TokenAppearsIn(data []byte) bool {
	token := []byte(hp.Token)
	for i := 0; i+len(token) <= len(data); i++ {
		if string(data[i:i+len(token)]) == string(token) {
			return true
		}
	}
	return false
}

// Attach wires all honeypot protocols onto a simulated host. The host
// should already have an address.
func (hp *Honeypot) Attach(h *stack.Host) {
	now := func() time.Time { return h.Sched.Now() }

	// SSDP: answer every search, advertising the honeytoken UUID.
	ad := ssdp.Advertisement{
		UUID:     hp.Token,
		Target:   ssdp.TargetBasic,
		Location: fmt.Sprintf("http://%s:80/description.xml", h.IPv4()),
		Server:   "Linux/3.14 UPnP/1.0 HoneyBridge/1.0",
	}
	resp := &ssdp.Responder{Host: h, Ads: []ssdp.Advertisement{ad}}
	resp.OnSearch = func(st string, from netip.Addr) {
		hp.log(now(), "ssdp", from, "M-SEARCH "+st)
	}
	resp.Start()

	// mDNS: advertise a token-bearing service and log every query.
	mresp := &mdns.Responder{
		Host:     h,
		Hostname: hp.Name + ".local",
		Services: []mdns.Service{{
			Instance: "Honey Hue - " + hp.Token,
			Type:     "_hue._tcp.local",
			Port:     80,
			TXT:      []string{"bridgeid=" + hp.Token},
		}},
		AnswerUnicast: true,
	}
	mresp.OnQuery = func(q dnsmsg.Question, from netip.Addr) {
		hp.log(now(), "mdns", from, q.Name)
	}
	mresp.Start()

	// HTTP: a device-description endpoint carrying the token.
	srv := httpx.NewServer(h, 80, "HoneyBridge/1.0")
	srv.OnRequest = func(req *httpx.Request) {
		hp.log(now(), "http", req.From, req.Method+" "+req.Path)
	}
	desc := &ssdp.Device{
		FriendlyName: "Honey Hue",
		Manufacturer: "Honeypot",
		ModelName:    "HB-1",
		SerialNumber: hp.Token,
		UDN:          "uuid:" + hp.Token,
		DeviceType:   ssdp.TargetBasic,
	}
	doc, _ := desc.Document()
	srv.Handle("/description.xml", func(*httpx.Request) *httpx.Response {
		return &httpx.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/xml"}, Body: doc}
	})

	// Telnet: collect credentials.
	h.ListenTCP(23, func(c *stack.TCPConn) {
		sess := &telnetx.Session{Banner: "BusyBox v1.12.1 honeypot-" + hp.Token}
		remote, _ := c.Remote()
		hp.log(now(), "telnet", remote, "connect")
		c.Send(sess.Greeting())
		c.OnData = func(c *stack.TCPConn, data []byte) {
			before := len(sess.Attempts)
			reply := sess.Feed(data)
			if len(sess.Attempts) > before {
				last := sess.Attempts[len(sess.Attempts)-1]
				hp.log(now(), "telnet", remote, fmt.Sprintf("login %s:%s", last[0], last[1]))
			}
			c.Send(reply)
		}
	})
}

// MulticastGroups the honeypot joins when attached to a simulated host.
var MulticastGroups = []netip.Addr{netx.SSDPGroup, netx.MDNSv4Group}
