package honeypot_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/honeypot"
	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/vnet"
)

// TestServerInSim runs the deployment-mode honeypot Server — the code path
// meant for a real home LAN — on the simulated network by handing it a
// vnet.Net instead of the standard library, then probes all three services
// from a second simulated host. The accept loops, session handling and
// deadline logic under test are byte-for-byte the ones a real deployment
// runs.
func TestServerInSim(t *testing.T) {
	sched := sim.NewScheduler(5)
	ln := lan.New(sched)
	mk := func(last byte) *stack.Host {
		h := stack.NewHost(ln, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
	pump := vnet.NewPump(sched)
	hpNet := vnet.New(pump, mk(10))
	prober := vnet.New(pump, mk(11))

	hp := honeypot.New("fake-hue", 5)
	srv := &honeypot.Server{
		HP:         hp,
		Net:        hpNet,
		SSDPAddr:   ":1900",
		HTTPAddr:   ":8080",
		TelnetAddr: ":2323",
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	done := pump.Go(func() {
		// SSDP: an M-SEARCH must come back with the honeytoken UUID.
		pc, err := prober.ListenPacket("udp4", ":0")
		if err != nil {
			t.Errorf("prober listen: %v", err)
			return
		}
		defer pc.Close()
		dst := &vnetUDPAddr{addr: "192.168.10.10:1900"}
		if _, err := pc.WriteTo(ssdp.MSearch(ssdp.TargetBasic, 1), dst); err != nil {
			t.Errorf("ssdp write: %v", err)
			return
		}
		pc.SetReadDeadline(prober.Now().Add(2 * time.Second))
		buf := make([]byte, 2048)
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			t.Errorf("ssdp read: %v", err)
			return
		}
		if !hp.TokenAppearsIn(buf[:n]) {
			t.Errorf("ssdp response lacks honeytoken: %q", buf[:n])
		}

		// HTTP: the description document carries the token.
		c, err := prober.DialContext(context.Background(), "tcp", "192.168.10.10:8080")
		if err != nil {
			t.Errorf("http dial: %v", err)
			return
		}
		fmt.Fprintf(c, "GET /description.xml HTTP/1.1\r\nHost: honeypot\r\n\r\n")
		resp := readUntilClose(c, 5*time.Second, prober)
		c.Close()
		if !bytes.Contains(resp, []byte("200 OK")) || !hp.TokenAppearsIn(resp) {
			t.Errorf("http response missing status or token: %q", resp)
		}

		// Telnet: a full login attempt must be captured.
		tc, err := prober.DialContext(context.Background(), "tcp", "192.168.10.10:2323")
		if err != nil {
			t.Errorf("telnet dial: %v", err)
			return
		}
		defer tc.Close()
		tc.SetReadDeadline(prober.Now().Add(2 * time.Second))
		greet := make([]byte, 512)
		if _, err := tc.Read(greet); err != nil {
			t.Errorf("telnet greeting: %v", err)
			return
		}
		tc.Write([]byte("root\r\n"))
		tc.SetReadDeadline(prober.Now().Add(2 * time.Second))
		if _, err := tc.Read(greet); err != nil {
			t.Errorf("telnet password prompt: %v", err)
			return
		}
		tc.Write([]byte("hunter2\r\n"))
		tc.SetReadDeadline(prober.Now().Add(2 * time.Second))
		tc.Read(greet) // login-failed reply; content covered by telnetx tests
	})

	pump.RunFor(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("prober did not finish")
	}

	got := hp.Interactions()
	for _, proto := range []string{"ssdp", "http", "telnet"} {
		if got[proto] == 0 {
			t.Errorf("no %s interactions logged: %v", proto, got)
		}
	}
	var loginLogged bool
	probeAddr := netip.AddrFrom4([4]byte{192, 168, 10, 11})
	for _, e := range hp.Events {
		if e.From != probeAddr {
			t.Errorf("event %v from %v, want %v", e.Detail, e.From, probeAddr)
		}
		if e.Proto == "telnet" && e.Detail == "login root:hunter2" {
			loginLogged = true
		}
		if e.Time.Before(sim.Epoch) || e.Time.After(sim.Epoch.Add(time.Hour)) {
			t.Errorf("event %v stamped %v, outside the simulated window (wall clock leaked in?)", e.Detail, e.Time)
		}
	}
	if !loginLogged {
		t.Errorf("telnet credentials not captured; events: %+v", hp.Events)
	}
}

// readUntilClose drains c until EOF or the deadline, extending the read
// deadline per chunk.
func readUntilClose(c net.Conn, per time.Duration, n *vnet.Net) []byte {
	var out []byte
	buf := make([]byte, 4096)
	for {
		c.SetReadDeadline(n.Now().Add(per))
		k, err := c.Read(buf)
		out = append(out, buf[:k]...)
		if err != nil {
			if err != io.EOF {
				// Deadline expiry also ends the drain; the assertions on the
				// accumulated bytes decide pass/fail.
				_ = err
			}
			return out
		}
	}
}

// vnetUDPAddr satisfies net.Addr for WriteTo against the virtual fabric.
type vnetUDPAddr struct{ addr string }

func (a *vnetUDPAddr) Network() string { return "udp" }
func (a *vnetUDPAddr) String() string  { return a.addr }
