package honeypot

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/lan"
	"iotlan/internal/mdns"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
)

func simSetup() (*sim.Scheduler, *lan.Network, func(byte) *stack.Host) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	return s, n, func(last byte) *stack.Host {
		h := stack.NewHost(n, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
}

func TestTokenDeterministic(t *testing.T) {
	a, b := New("fake-hue", 7), New("fake-hue", 7)
	if a.Token != b.Token {
		t.Fatal("token not deterministic")
	}
	c := New("fake-hue", 8)
	if c.Token == a.Token {
		t.Fatal("different seeds share a token")
	}
}

func TestSSDPInteractionLogged(t *testing.T) {
	sched, _, mk := simSetup()
	hp := New("fake-hue", 1)
	hp.Attach(mk(99))

	scanner := mk(50)
	var usn string
	ssdp.Search(scanner, ssdp.TargetAll, func(m *ssdp.Message, from netip.Addr) { usn = m.USN() })
	sched.RunFor(time.Second)

	if !strings.Contains(usn, hp.Token) {
		t.Fatalf("response USN %q lacks honeytoken", usn)
	}
	if hp.Interactions()["ssdp"] != 1 {
		t.Fatalf("interactions: %v", hp.Interactions())
	}
	if len(hp.Visitors()) != 1 || hp.Visitors()[0] != scanner.IPv4() {
		t.Fatalf("visitors: %v", hp.Visitors())
	}
}

func TestMDNSInteractionLogged(t *testing.T) {
	sched, _, mk := simSetup()
	hp := New("fake-hue", 1)
	hp.Attach(mk(99))
	phone := mk(50)
	gotToken := false
	mdns.Listen(phone, func(m *dnsmsg.Message, from netip.Addr) {
		for _, rr := range append(m.Answers, m.Extra...) {
			if hp.TokenAppearsIn([]byte(rr.Name + rr.Target + strings.Join(rr.TXT, " "))) {
				gotToken = true
			}
		}
	})
	sched.RunFor(100 * time.Millisecond)
	mdns.Query(phone, "_hue._tcp.local", false)
	sched.RunFor(time.Second)
	if hp.Interactions()["mdns"] == 0 {
		t.Fatalf("mdns query not logged: %v", hp.Interactions())
	}
	if !gotToken {
		t.Fatal("mdns response lacks honeytoken")
	}
}

func TestTelnetCredentialCapture(t *testing.T) {
	sched, _, mk := simSetup()
	hp := New("fake-cam", 1)
	hp.Attach(mk(99))
	attacker := mk(66)
	conn := attacker.DialTCP(netip.MustParseAddr("192.168.10.99"), 23)
	step := 0
	conn.OnData = func(c *stack.TCPConn, data []byte) {
		switch step {
		case 0:
			c.Send([]byte("root\r\n"))
		case 1:
			c.Send([]byte("hunter2\r\n"))
		default:
			c.Close()
		}
		step++
	}
	sched.RunFor(5 * time.Second)
	found := false
	for _, e := range hp.Events {
		if e.Proto == "telnet" && e.Detail == "login root:hunter2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("credentials not captured: %+v", hp.Events)
	}
}

func TestTokenAppearsIn(t *testing.T) {
	hp := New("x", 1)
	if !hp.TokenAppearsIn([]byte("prefix " + hp.Token + " suffix")) {
		t.Fatal("token not found")
	}
	if hp.TokenAppearsIn([]byte("nothing here")) {
		t.Fatal("false positive")
	}
}

func TestRealServerHTTPAndTelnet(t *testing.T) {
	hp := New("real", 1)
	srv := &Server{HP: hp, SSDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", TelnetAddr: "127.0.0.1:0"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Find the bound addresses.
	srv.mu.Lock()
	var httpAddr, telnetAddr string
	for _, l := range srv.listeners {
		if tl, ok := l.(net.Listener); ok {
			if httpAddr == "" {
				httpAddr = tl.Addr().String()
			} else {
				telnetAddr = tl.Addr().String()
			}
		}
	}
	srv.mu.Unlock()

	// HTTP fetch must return the token-bearing description.
	conn, err := net.Dial("tcp", httpAddr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /description.xml HTTP/1.1\r\nHost: x\r\n\r\n")
	buf := make([]byte, 8192)
	total := 0
	for total < len(buf) {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil || hp.TokenAppearsIn(buf[:total]) {
			break
		}
	}
	conn.Close()
	if !hp.TokenAppearsIn(buf[:total]) {
		t.Fatalf("HTTP response lacks token: %q", buf[:total])
	}
	n := 0

	// Telnet greeting carries the banner.
	tc, err := net.Dial("tcp", telnetAddr)
	if err != nil {
		t.Fatal(err)
	}
	tc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ = tc.Read(buf)
	tc.Close()
	if !strings.Contains(string(buf[:n]), "login:") {
		t.Fatalf("telnet greeting: %q", buf[:n])
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		srv.mu.Lock()
		n := len(hp.Events)
		srv.mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if got := len(hp.Events); got < 2 {
		t.Fatalf("real server logged %d events", got)
	}
}

func TestRealServerSSDP(t *testing.T) {
	hp := New("real-ssdp", 1)
	srv := &Server{HP: hp, SSDPAddr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", TelnetAddr: "127.0.0.1:0"}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.mu.Lock()
	var udpAddr string
	for _, l := range srv.listeners {
		if pc, ok := l.(net.PacketConn); ok {
			udpAddr = pc.LocalAddr().String()
		}
	}
	srv.mu.Unlock()
	c, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write(ssdp.MSearch(ssdp.TargetAll, 1))
	buf := make([]byte, 2048)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ssdp.Parse(buf[:n])
	if err != nil || !strings.Contains(m.USN(), hp.Token) {
		t.Fatalf("SSDP response: %v %q", err, buf[:n])
	}
}
