package honeypot

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/ssdp"
	"iotlan/internal/telnetx"
)

// Server runs the honeypot against a netx.Fabric: the standard library for a
// real home LAN (the default), or a vnet.Net to exercise the exact same
// accept loops and session code on the simulated LAN. Ports are configurable
// since the well-known ones need elevated privileges on a real host.
type Server struct {
	HP *Honeypot
	// Net is the network to bind on. Nil means the standard library
	// (netx.System); pass a *vnet.Net to run in-sim.
	Net netx.Fabric
	// SSDPAddr is the UDP listen address for SSDP (default ":1900").
	SSDPAddr string
	// HTTPAddr is the TCP listen address for the description server
	// (default ":8080").
	HTTPAddr string
	// TelnetAddr is the TCP listen address for telnet (default ":2323").
	TelnetAddr string

	mu        sync.Mutex
	listeners []interface{ Close() error }
}

func (s *Server) fabric() netx.Fabric {
	if s.Net == nil {
		return netx.System{}
	}
	return s.Net
}

func (s *Server) logLocked(proto string, from netip.Addr, detail string) {
	now := s.fabric().Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.HP.log(now, proto, from, detail)
}

// Start binds all listeners and serves until ctx is cancelled.
func (s *Server) Start(ctx context.Context) error {
	if s.SSDPAddr == "" {
		s.SSDPAddr = ":1900"
	}
	if s.HTTPAddr == "" {
		s.HTTPAddr = ":8080"
	}
	if s.TelnetAddr == "" {
		s.TelnetAddr = ":2323"
	}
	if err := s.startSSDP(); err != nil {
		return err
	}
	if err := s.startHTTP(); err != nil {
		s.Close()
		return err
	}
	if err := s.startTelnet(); err != nil {
		s.Close()
		return err
	}
	go func() {
		<-ctx.Done()
		s.Close()
	}()
	return nil
}

// Close shuts every listener down.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
}

func (s *Server) track(l interface{ Close() error }) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
}

func addrOf(a net.Addr) netip.Addr {
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.Addr{}
	}
	return ap.Addr().Unmap()
}

func (s *Server) startSSDP() error {
	fab := s.fabric()
	pc, err := fab.ListenPacket("udp4", s.SSDPAddr)
	if err != nil {
		return fmt.Errorf("honeypot: ssdp listen: %w", err)
	}
	s.track(pc)
	ad := ssdp.Advertisement{
		UUID:     s.HP.Token,
		Target:   ssdp.TargetBasic,
		Server:   "Linux/3.14 UPnP/1.0 HoneyBridge/1.0",
		Location: "http://0.0.0.0" + s.HTTPAddr + "/description.xml",
	}
	go func() {
		buf := make([]byte, 2048)
		for {
			n, from, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			m, err := ssdp.Parse(buf[:n])
			if err != nil || m.Kind != "M-SEARCH" {
				continue
			}
			s.logLocked("ssdp", addrOf(from), "M-SEARCH "+m.ST())
			pc.WriteTo(ad.Response(m.ST()), from)
		}
	}()
	return nil
}

func (s *Server) startHTTP() error {
	fab := s.fabric()
	l, err := fab.Listen("tcp", s.HTTPAddr)
	if err != nil {
		return fmt.Errorf("honeypot: http listen: %w", err)
	}
	s.track(l)
	desc := &ssdp.Device{
		FriendlyName: "Honey Hue", Manufacturer: "Honeypot", ModelName: "HB-1",
		SerialNumber: s.HP.Token, UDN: "uuid:" + s.HP.Token, DeviceType: ssdp.TargetBasic,
	}
	doc, _ := desc.Document()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				conn.SetReadDeadline(fab.Now().Add(5 * time.Second))
				buf := make([]byte, 4096)
				n, err := conn.Read(buf)
				if err != nil {
					return
				}
				line := string(buf[:n])
				if i := strings.IndexByte(line, '\r'); i > 0 {
					line = line[:i]
				}
				s.logLocked("http", addrOf(conn.RemoteAddr()), line)
				body := doc
				fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nServer: HoneyBridge/1.0\r\nContent-Type: text/xml\r\nContent-Length: %d\r\n\r\n", len(body))
				conn.Write(body)
			}(conn)
		}
	}()
	return nil
}

func (s *Server) startTelnet() error {
	fab := s.fabric()
	l, err := fab.Listen("tcp", s.TelnetAddr)
	if err != nil {
		return fmt.Errorf("honeypot: telnet listen: %w", err)
	}
	s.track(l)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sess := &telnetx.Session{Banner: "BusyBox v1.12.1 honeypot-" + s.HP.Token}
				from := addrOf(conn.RemoteAddr())
				s.logLocked("telnet", from, "connect")
				conn.Write(sess.Greeting())
				buf := make([]byte, 512)
				for {
					conn.SetReadDeadline(fab.Now().Add(30 * time.Second))
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					before := len(sess.Attempts)
					reply := sess.Feed(buf[:n])
					if len(sess.Attempts) > before {
						last := sess.Attempts[len(sess.Attempts)-1]
						s.logLocked("telnet", from, fmt.Sprintf("login %s:%s", last[0], last[1]))
					}
					conn.Write(reply)
				}
			}(conn)
		}
	}()
	return nil
}
