package obs

import "testing"

// TestHistogramQuantile: interpolated quantiles land inside the right
// bucket, the +Inf bucket clamps to the highest finite bound, and the edge
// cases (empty histogram, out-of-range q) are defined.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", []float64{10, 100, 1000})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// 80 observations ≤10, 15 in (10,100], 5 in (100,1000].
	for i := 0; i < 80; i++ {
		h.Observe(5)
	}
	for i := 0; i < 15; i++ {
		h.Observe(50)
	}
	for i := 0; i < 5; i++ {
		h.Observe(500)
	}

	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 10 {
		t.Fatalf("p50 = %v, want within (0, 10]", p50)
	}
	if p90 := h.Quantile(0.90); p90 <= 10 || p90 > 100 {
		t.Fatalf("p90 = %v, want within (10, 100]", p90)
	}
	if p99 := h.Quantile(0.99); p99 <= 100 || p99 > 1000 {
		t.Fatalf("p99 = %v, want within (100, 1000]", p99)
	}
	if p0, p1 := h.Quantile(-1), h.Quantile(2); p0 < 0 || p1 > 1000 {
		t.Fatalf("clamped quantiles out of range: %v %v", p0, p1)
	}

	// Everything past the top finite bound clamps to it.
	over := r.Histogram("over", []float64{1})
	over.Observe(99)
	if got := over.Quantile(0.9); got != 1 {
		t.Fatalf("+Inf bucket quantile = %v, want 1 (top finite bound)", got)
	}
}
