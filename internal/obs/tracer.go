package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceFormat selects the tracer's on-disk encoding.
type TraceFormat int

const (
	// FormatJSONL writes one JSON object per line — easy to grep and stream.
	FormatJSONL TraceFormat = iota
	// FormatChrome writes the Chrome trace_event JSON array, loadable in
	// chrome://tracing and Perfetto.
	FormatChrome
)

// TraceEvent is one structured record on the virtual timeline.
type TraceEvent struct {
	// TS is virtual microseconds since the simulation epoch.
	TS int64 `json:"ts"`
	// Dur is the span length in virtual microseconds (0 for instants).
	Dur int64 `json:"dur,omitempty"`
	// Cat groups events by layer ("sim", "lan", "tcp", "dhcp", "proto").
	Cat  string            `json:"cat"`
	Name string            `json:"name"`
	Args map[string]string `json:"args,omitempty"`
	// TID separates concurrent tracks (Chrome renders one lane per tid);
	// 0 means the default track.
	TID int `json:"tid,omitempty"`
}

// chromeEvent is the trace_event wire form. Instants use ph "i" with global
// scope; spans use ph "X" with a duration.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// Tracer streams TraceEvents to a writer. All methods are nil-safe, so
// instrumented code can call through an unset tracer for free.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	format TraceFormat
	wrote  bool // Chrome format: whether the opening bracket needs a comma
	closed bool
	err    error
	events uint64
}

// NewTracer wraps w. The caller owns w's lifetime; Close finalizes the
// encoding (closing the Chrome array) but does not close w.
func NewTracer(w io.Writer, format TraceFormat) *Tracer {
	t := &Tracer{w: w, format: format}
	if format == FormatChrome {
		_, t.err = io.WriteString(w, "[\n")
	}
	return t
}

// Event records an instant at ts virtual microseconds. args alternate
// key, value.
func (t *Tracer) Event(ts int64, cat, name string, args ...string) {
	t.emit(TraceEvent{TS: ts, Cat: cat, Name: name, Args: argMap(args)})
}

// Span records a completed interval of dur virtual microseconds starting at
// ts.
func (t *Tracer) Span(ts, dur int64, cat, name string, args ...string) {
	t.emit(TraceEvent{TS: ts, Dur: dur, Cat: cat, Name: name, Args: argMap(args)})
}

// SpanOn records a completed interval on a specific track: concurrent
// requests each get their own Chrome lane instead of stacking on tid 1.
func (t *Tracer) SpanOn(tid int, ts, dur int64, cat, name string, args ...string) {
	t.emit(TraceEvent{TS: ts, Dur: dur, Cat: cat, Name: name, Args: argMap(args), TID: tid})
}

func argMap(args []string) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args)/2)
	for i := 0; i+1 < len(args); i += 2 {
		m[args[i]] = args[i+1]
	}
	return m
}

func (t *Tracer) emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	var line []byte
	var err error
	switch t.format {
	case FormatChrome:
		tid := ev.TID
		if tid == 0 {
			tid = 1
		}
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, TS: ev.TS, Dur: ev.Dur,
			PID: 1, TID: tid, Args: ev.Args,
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
		} else {
			ce.Phase = "i"
			ce.Scope = "g"
		}
		line, err = json.Marshal(ce)
		if err == nil {
			if t.wrote {
				line = append([]byte(",\n"), line...)
			}
		}
	default:
		line, err = json.Marshal(ev)
		line = append(line, '\n')
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	t.wrote = true
	t.events++
}

// Events reports how many records were written.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close finalizes the encoding and returns the first write error, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.format == FormatChrome && t.err == nil {
		_, t.err = io.WriteString(t.w, "\n]\n")
	}
	return t.err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Telemetry bundles the registry every layer reports into with the optional
// tracer. One Telemetry is shared per simulation (it lives on the
// scheduler, which every layer already holds).
type Telemetry struct {
	Registry *Registry
	// Tracer is nil unless tracing was requested; instrumented code checks
	// for nil before formatting event arguments.
	Tracer *Tracer
}

// NewTelemetry returns a telemetry hub with a fresh registry and no tracer.
func NewTelemetry() *Telemetry {
	return &Telemetry{Registry: NewRegistry()}
}
