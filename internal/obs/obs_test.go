package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestKeyLabelOrderCanonical(t *testing.T) {
	a := Key("m", "proto", "mdns", "dir", "out")
	b := Key("m", "dir", "out", "proto", "mdns")
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if a != "m{dir=out,proto=mdns}" {
		t.Fatalf("unexpected key rendering: %q", a)
	}
	if Key("bare") != "bare" {
		t.Fatalf("unlabeled key gained braces: %q", Key("bare"))
	}
}

func TestRegistryDedupsSeries(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("frames", "ethertype", "ipv4")
	c2 := r.Counter("frames", "ethertype", "ipv4")
	if c1 != c2 {
		t.Fatal("same series returned distinct counters")
	}
	c1.Inc()
	c2.Add(2)
	if got := c1.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.SeriesCount() != 1 {
		t.Fatalf("series count %d, want 1", r.SeriesCount())
	}
}

func TestRegistryTotalSumsLabelSets(t *testing.T) {
	r := NewRegistry()
	r.Counter("drops", "reason", "undecodable").Add(2)
	r.Counter("drops", "reason", "unknown-unicast").Add(3)
	r.Counter("dropsother").Add(100) // different name, must not count
	if got := r.Total("drops"); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in different orders; keys must come out identically.
		r.Counter("b", "k", "2").Add(7)
		r.Counter("a").Add(1)
		r.Gauge("depth").Set(42)
		h := r.Histogram("lat", []float64{1, 10, 100})
		h.Observe(0.5)
		h.Observe(55)
		h.Observe(1e6)
		return r
	}
	r2 := NewRegistry()
	r2.Gauge("depth").Set(42)
	h := r2.Histogram("lat", []float64{100, 10, 1}) // unsorted bounds
	h.Observe(0.5)
	h.Observe(55)
	h.Observe(1e6)
	r2.Counter("a").Add(1)
	r2.Counter("b", "k", "2").Add(7)

	s1, s2 := build().Snapshot(), r2.Snapshot()
	if !bytes.Equal(s1, s2) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", s1, s2)
	}
	var parsed struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count   uint64            `json:"count"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(s1, &parsed); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if parsed.Counters["b{k=2}"] != 7 {
		t.Fatalf("labeled counter missing: %v", parsed.Counters)
	}
	hist := parsed.Histograms["lat"]
	if hist.Count != 3 || hist.Buckets["le=+Inf"] != 1 || hist.Buckets["le=1"] != 1 {
		t.Fatalf("histogram buckets wrong: %+v", hist)
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatJSONL)
	tr.Event(1500, "lan", "deliver", "ethertype", "ipv4")
	tr.Span(2000, 300, "tcp", "handshake")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TS != 1500 || ev.Cat != "lan" || ev.Args["ethertype"] != "ipv4" {
		t.Fatalf("bad event: %+v", ev)
	}
	if tr.Events() != 2 {
		t.Fatalf("Events() = %d, want 2", tr.Events())
	}
}

func TestTracerChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, FormatChrome)
	tr.Event(10, "sim", "dispatch")
	tr.Span(20, 5, "study", "passive")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("chrome trace has %d events, want 2", len(events))
	}
	if events[0]["ph"] != "i" || events[1]["ph"] != "X" {
		t.Fatalf("phases wrong: %v / %v", events[0]["ph"], events[1]["ph"])
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Event(1, "sim", "dispatch")
	tr.Span(1, 1, "sim", "run")
	if tr.Events() != 0 || tr.Close() != nil || tr.Err() != nil {
		t.Fatal("nil tracer misbehaved")
	}
}

func TestProfilerAggregatesCalls(t *testing.T) {
	p := NewProfiler()
	p.Add("passive", 100*time.Millisecond, 1000, 45*time.Minute)
	p.Add("scans", 50*time.Millisecond, 200, 10*time.Minute)
	p.Add("passive", 10*time.Millisecond, 0, 0) // idempotent re-entry
	phases := p.Phases()
	if len(phases) != 2 {
		t.Fatalf("%d phases, want 2", len(phases))
	}
	if phases[0].Name != "passive" || phases[0].Calls != 2 || phases[0].Events != 1000 {
		t.Fatalf("passive stats wrong: %+v", phases[0])
	}
	if phases[0].WallMS != 110 {
		t.Fatalf("wall aggregation wrong: %v", phases[0].WallMS)
	}
	var parsed []PhaseStat
	if err := json.Unmarshal(p.JSON(), &parsed); err != nil {
		t.Fatalf("profile JSON invalid: %v", err)
	}
}
