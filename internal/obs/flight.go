package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is the postmortem half of request tracing: a bounded ring
// of the most recent completed request traces plus a pinned set of the
// slowest and the errored ones, so after a tail-latency incident or a 5xx
// burst the interesting traces are still in memory — no load replay needed.
// Dump renders everything as Chrome trace JSON (chrome://tracing, Perfetto).
//
// Recording is a short critical section over preallocated rings — cheap
// enough to sit on every request. A nil *FlightRecorder no-ops.
type FlightRecorder struct {
	total atomic.Uint64 // every trace ever offered

	mu      sync.Mutex
	recent  []RequestTrace // ring, zero Spans = empty slot
	next    int
	slow    []RequestTrace // up to pinCap slowest-by-root-duration
	errored []RequestTrace // ring of the most recent errored
	errNext int
	pinCap  int
}

// DefaultFlightRecent is the recent-ring size when the caller passes 0.
const DefaultFlightRecent = 256

// NewFlightRecorder builds a recorder holding recent completed traces
// (0 = DefaultFlightRecent) and up to pinned slowest plus pinned errored
// traces (0 = recent/8, minimum 8).
func NewFlightRecorder(recent, pinned int) *FlightRecorder {
	if recent <= 0 {
		recent = DefaultFlightRecent
	}
	if pinned <= 0 {
		pinned = recent / 8
		if pinned < 8 {
			pinned = 8
		}
	}
	return &FlightRecorder{
		recent:  make([]RequestTrace, recent),
		errored: make([]RequestTrace, pinned),
		pinCap:  pinned,
	}
}

// RecordTrace implements SpanSink: file the trace in the recent ring and,
// when it qualifies, pin it as slow or errored.
func (fr *FlightRecorder) RecordTrace(rt RequestTrace) {
	if fr == nil || len(rt.Spans) == 0 {
		return
	}
	fr.total.Add(1)
	root := rt.Root()
	fr.mu.Lock()
	fr.recent[fr.next] = rt
	fr.next = (fr.next + 1) % len(fr.recent)
	if root.Err {
		fr.errored[fr.errNext] = rt
		fr.errNext = (fr.errNext + 1) % len(fr.errored)
	} else if len(fr.slow) < fr.pinCap {
		fr.slow = append(fr.slow, rt)
	} else {
		// Replace the fastest pinned trace if this one outlasts it. pinCap
		// is small (default 8-32), so the linear scan stays cheap.
		minIdx, minDur := 0, fr.slow[0].Root().Dur
		for i := 1; i < len(fr.slow); i++ {
			if d := fr.slow[i].Root().Dur; d < minDur {
				minIdx, minDur = i, d
			}
		}
		if root.Dur > minDur {
			fr.slow[minIdx] = rt
		}
	}
	fr.mu.Unlock()
}

// Total reports how many traces were ever recorded (including those the
// ring has since overwritten).
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	return fr.total.Load()
}

// Traces returns every retained trace — recent ring plus pinned slow and
// errored sets — deduplicated by root span ID and sorted by root start time.
func (fr *FlightRecorder) Traces() []RequestTrace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	all := make([]RequestTrace, 0, len(fr.recent)+len(fr.slow)+len(fr.errored))
	all = append(all, fr.recent...)
	all = append(all, fr.slow...)
	all = append(all, fr.errored...)
	fr.mu.Unlock()

	seen := make(map[uint64]bool, len(all))
	out := all[:0]
	for _, rt := range all {
		if len(rt.Spans) == 0 || seen[rt.Spans[0].SpanID] {
			continue
		}
		seen[rt.Spans[0].SpanID] = true
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Root(), out[j].Root()
		if ri.Start != rj.Start {
			return ri.Start < rj.Start
		}
		return ri.SpanID < rj.SpanID
	})
	return out
}

// Dump writes every retained trace as Chrome trace JSON, one tid per
// request so concurrent uploads render as separate lanes.
func (fr *FlightRecorder) Dump(w io.Writer) error {
	t := NewTracer(w, FormatChrome)
	for _, rt := range fr.Traces() {
		for _, d := range rt.Spans {
			args := []string{"trace", formatUint(d.TraceID), "span", formatUint(d.SpanID)}
			if d.ParentID != 0 {
				args = append(args, "parent", formatUint(d.ParentID))
			}
			if d.Err {
				args = append(args, "err", "true")
			}
			for _, k := range sortedKeys(d.Attrs) {
				args = append(args, k, d.Attrs[k])
			}
			t.SpanOn(int(d.TraceID), d.Start, d.Dur, d.Cat, d.Name, args...)
		}
	}
	return t.Close()
}
