package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4): one `# TYPE` line per metric family, samples sorted
// deterministically, histogram buckets cumulative with a trailing `+Inf`,
// metric/label names sanitized to the exposition grammar and label values
// escaped. Serve it with Content-Type PrometheusContentType.

// PrometheusContentType is the content type a /metrics endpoint must
// declare for the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every series in the registry as Prometheus text
// exposition. Output is deterministic: families sorted by name, samples
// sorted by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusPrefixed(w, "")
}

// WritePrometheusPrefixed is WritePrometheus with a namespace prefix
// applied to every family name (skipped when the name already starts with
// it) — how multiple registries share one scrape without colliding.
func (r *Registry) WritePrometheusPrefixed(w io.Writer, prefix string) error {
	type sample struct {
		labels string // rendered {k="v",...} or ""
		value  string
		suffix string // histogram sub-series: "_bucket", "_sum", "_count"
	}
	type family struct {
		typ     string
		samples []sample
	}
	families := make(map[string]*family)
	get := func(name, typ string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{typ: typ}
			families[name] = f
		}
		return f
	}

	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		hists[k] = h
	}
	r.mu.Unlock()

	for _, key := range sortedKeys(counters) {
		name, labels := splitSeriesKey(key)
		f := get(promName(name, prefix), "counter")
		f.samples = append(f.samples, sample{labels: promLabels(labels), value: strconv.FormatUint(counters[key], 10)})
	}
	for _, key := range sortedKeys(gauges) {
		name, labels := splitSeriesKey(key)
		f := get(promName(name, prefix), "gauge")
		f.samples = append(f.samples, sample{labels: promLabels(labels), value: strconv.FormatInt(gauges[key], 10)})
	}
	// Histograms iterate in sorted-key order and the later sort is a no-op
	// for them, so per-series bucket order (ascending le, then +Inf, sum,
	// count) and cross-series order are both deterministic.
	for _, key := range sortedKeys(hists) {
		name, labels := splitSeriesKey(key)
		f := get(promName(name, prefix), "histogram")
		bounds, counts, count, sum := hists[key].cumulative()
		withLe := func(le string) string {
			l := append(append([][2]string(nil), labels...), [2]string{"le", le})
			return promLabels(l)
		}
		for i, b := range bounds {
			f.samples = append(f.samples, sample{
				suffix: "_bucket",
				labels: withLe(formatFloat(b)),
				value:  strconv.FormatUint(counts[i], 10),
			})
		}
		f.samples = append(f.samples, sample{
			suffix: "_bucket",
			labels: withLe("+Inf"),
			value:  strconv.FormatUint(count, 10),
		})
		f.samples = append(f.samples, sample{suffix: "_sum", labels: promLabels(labels), value: formatFloat(sum)})
		f.samples = append(f.samples, sample{suffix: "_count", labels: promLabels(labels), value: strconv.FormatUint(count, 10)})
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := families[name]
		// Stable sample order: histogram sub-series keep their append order
		// within one label set (buckets ascending, then sum, then count);
		// distinct label sets sort lexically.
		sort.SliceStable(f.samples, func(i, j int) bool {
			if f.typ == "histogram" {
				return false // SliceStable preserves per-series bucket order
			}
			return f.samples[i].labels < f.samples[j].labels
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, s.suffix, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cumulative snapshots a histogram as cumulative bucket counts per finite
// bound, plus total count and sum — the Prometheus shape.
func (h *Histogram) cumulative() (bounds []float64, counts []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		counts[i] = cum
	}
	return bounds, counts, h.count, h.sum
}

// splitSeriesKey reverses Key(): "name{k1=v1,k2=v2}" → name, label pairs.
// Registry label values never contain ',' or '=' (they are protocol names,
// status codes, stage names), so the simple split is exact.
func splitSeriesKey(key string) (string, [][2]string) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, nil
	}
	name := key[:open]
	body := strings.TrimSuffix(key[open+1:], "}")
	if body == "" {
		return name, nil
	}
	parts := strings.Split(body, ",")
	labels := make([][2]string, 0, len(parts))
	for _, p := range parts {
		if eq := strings.IndexByte(p, '='); eq >= 0 {
			labels = append(labels, [2]string{p[:eq], p[eq+1:]})
		}
	}
	return name, labels
}

// promName sanitizes a metric family name to [a-zA-Z_:][a-zA-Z0-9_:]* and
// applies the namespace prefix.
func promName(name, prefix string) string {
	var sb strings.Builder
	sb.Grow(len(prefix) + 1 + len(name))
	if prefix != "" && !strings.HasPrefix(name, prefix+"_") {
		sb.WriteString(sanitizeName(prefix))
		sb.WriteByte('_')
	}
	sb.WriteString(sanitizeName(name))
	return sb.String()
}

func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sanitizeLabelName maps to [a-zA-Z_][a-zA-Z0-9_]* (no colons in label
// names, per the exposition grammar).
func sanitizeLabelName(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabels renders a sorted, escaped {k="v",...} block ("" when empty).
func promLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([][2]string(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, kv := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelName(kv[0]))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(kv[1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes backslash, double quote, and newline — the three
// escapes the exposition format defines for label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip decimal; +Inf/-Inf/NaN spelled out).
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
