package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// PhaseStat aggregates one named pipeline phase. Wall-clock numbers live
// here — NOT in the Registry — so metric snapshots stay deterministic while
// the profile captures real machine performance.
type PhaseStat struct {
	Name string `json:"name"`
	// Calls counts how many times the phase ran (idempotent phases re-enter
	// with near-zero cost; the profile shows that).
	Calls int `json:"calls"`
	// WallMS is total wall-clock milliseconds across calls.
	WallMS float64 `json:"wall_ms"`
	// Events is the number of simulator events dispatched during the phase.
	Events uint64 `json:"events"`
	// VirtualS is virtual seconds the simulation advanced during the phase.
	VirtualS float64 `json:"virtual_s"`
	// EventsPerSec is Events over wall time — the simulator's throughput
	// while this phase ran.
	EventsPerSec float64 `json:"events_per_sec"`
}

// Profiler records per-phase wall-clock and event-count statistics for a
// pipeline run, preserving first-execution order.
type Profiler struct {
	mu     sync.Mutex
	order  []string
	byName map[string]*PhaseStat
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{byName: make(map[string]*PhaseStat)}
}

// Add folds one phase execution into the profile.
func (p *Profiler) Add(name string, wall time.Duration, events uint64, virtual time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.byName[name]
	if !ok {
		st = &PhaseStat{Name: name}
		p.byName[name] = st
		p.order = append(p.order, name)
	}
	st.Calls++
	st.WallMS += float64(wall) / float64(time.Millisecond)
	st.Events += events
	st.VirtualS += virtual.Seconds()
	if st.WallMS > 0 {
		st.EventsPerSec = float64(st.Events) / (st.WallMS / 1000)
	}
}

// Phases returns the recorded stats in first-execution order.
func (p *Profiler) Phases() []PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseStat, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.byName[name])
	}
	return out
}

// JSON renders the profile as an indented JSON array of phases.
func (p *Profiler) JSON() []byte {
	b, err := json.MarshalIndent(p.Phases(), "", "  ")
	if err != nil { // unreachable: PhaseStat always marshals
		return []byte("[]")
	}
	return b
}
