package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fakeClock is a hand-cranked span clock.
type fakeClock struct{ now int64 }

func (c *fakeClock) fn() func() int64 { return func() int64 { return c.now } }

// memSink captures completed request traces.
type memSink struct {
	mu     sync.Mutex
	traces []RequestTrace
}

func (s *memSink) RecordTrace(rt RequestTrace) {
	s.mu.Lock()
	s.traces = append(s.traces, rt)
	s.mu.Unlock()
}

func (s *memSink) all() []RequestTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RequestTrace(nil), s.traces...)
}

// TestSpanParentChildLinks: spans started from a context carrying a parent
// link into one trace; the root's End assembles root-first RequestTrace
// with correct trace/parent IDs and durations on the tracer's clock.
func TestSpanParentChildLinks(t *testing.T) {
	clk := &fakeClock{}
	st := NewSpanTracer(clk.fn())
	sink := &memSink{}
	st.SetSink(sink)

	ctx, root := st.StartSpan(context.Background(), "serve", "upload", "household", "h1")
	clk.now = 10
	cctx, child := st.StartSpan(ctx, "serve", "queue.wait")
	clk.now = 25
	if d := child.End(); d != 15 {
		t.Fatalf("child duration %d, want 15", d)
	}
	// An accumulated stage recorded with explicit times links to the span
	// still on cctx (the ended child) — use the root ctx for root-parented.
	st.RecordSpan(ctx, "serve", "body.read", 30, 7, "bytes", "42")
	_ = cctx
	clk.now = 100
	if d := root.End(); d != 100 {
		t.Fatalf("root duration %d, want 100", d)
	}

	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("sink got %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	rt := spans[0]
	if rt.Name != "upload" || rt.ParentID != 0 || rt.Attrs["household"] != "h1" {
		t.Fatalf("root span wrong: %+v", rt)
	}
	for _, sp := range spans[1:] {
		if sp.TraceID != rt.TraceID {
			t.Fatalf("span %s trace %d, want root's %d", sp.Name, sp.TraceID, rt.TraceID)
		}
		if sp.ParentID != rt.SpanID {
			t.Fatalf("span %s parent %d, want root %d", sp.Name, sp.ParentID, rt.SpanID)
		}
	}
	if spans[2].Name != "body.read" || spans[2].Start != 30 || spans[2].Dur != 7 {
		t.Fatalf("recorded span wrong: %+v", spans[2])
	}
}

// TestSpanTracerOutput: completed spans stream through the existing Tracer
// encodings — JSONL one-object-per-line and a well-formed Chrome array —
// with trace/span/parent links carried as args.
func TestSpanTracerOutput(t *testing.T) {
	runTrace := func(format TraceFormat) *bytes.Buffer {
		var buf bytes.Buffer
		clk := &fakeClock{}
		st := NewSpanTracer(clk.fn())
		tr := NewTracer(&buf, format)
		st.SetOutput(tr)
		ctx, root := st.StartSpan(context.Background(), "serve", "upload")
		clk.now = 5
		_, child := st.StartSpan(ctx, "serve", "analysis")
		clk.now = 9
		child.End()
		clk.now = 12
		root.End()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	jsonl := runTrace(FormatJSONL)
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines %d, want 2:\n%s", len(lines), jsonl)
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "upload" || ev.Args["span"] == "" || ev.Args["trace"] == "" {
		t.Fatalf("root event missing links: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Name != "analysis" || ev.Args["parent"] == "" {
		t.Fatalf("child event missing parent link: %+v", ev)
	}

	chrome := runTrace(FormatChrome)
	var arr []map[string]interface{}
	if err := json.Unmarshal(chrome.Bytes(), &arr); err != nil {
		t.Fatalf("Chrome output not a JSON array: %v\n%s", err, chrome)
	}
	if len(arr) != 2 {
		t.Fatalf("Chrome events %d, want 2", len(arr))
	}
}

// TestSpanNilSafety: a nil tracer and nil spans no-op everywhere, which is
// how tracing-off is spelled — no flag checks at instrumentation sites.
func TestSpanNilSafety(t *testing.T) {
	var st *SpanTracer
	ctx, sp := st.StartSpan(context.Background(), "serve", "upload")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("nil tracer installed %v on ctx", got)
	}
	sp.SetAttr("k", "v")
	sp.Fail()
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %d", d)
	}
	st.RecordSpan(ctx, "serve", "x", 0, 1)
	if st.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
	// StartSpan must tolerate a nil context too (defensive: job contexts).
	if c, _ := NewSpanTracer(WallClock).StartSpan(nil, "serve", "x"); c == nil { //nolint:staticcheck
		t.Fatal("StartSpan(nil ctx) returned nil ctx")
	}
}

// TestSpanLateChildDropped: a child ending after its root does not corrupt
// the already-shipped trace and does not panic.
func TestSpanLateChildDropped(t *testing.T) {
	clk := &fakeClock{}
	st := NewSpanTracer(clk.fn())
	sink := &memSink{}
	st.SetSink(sink)
	ctx, root := st.StartSpan(context.Background(), "serve", "upload")
	_, child := st.StartSpan(ctx, "serve", "slow.stage")
	root.End()
	child.End() // late: trace already delivered
	traces := sink.all()
	if len(traces) != 1 || len(traces[0].Spans) != 1 {
		t.Fatalf("late child leaked into trace: %+v", traces)
	}
}

// TestConcurrentSpanEmission: many goroutines build multi-span traces
// against one tracer + flight recorder simultaneously; every trace arrives
// intact (exercised under -race in CI).
func TestConcurrentSpanEmission(t *testing.T) {
	st := NewSpanTracer(WallClock)
	fr := NewFlightRecorder(64, 8)
	st.SetSink(fr)
	var buf bytes.Buffer
	st.SetOutput(NewTracer(&buf, FormatJSONL))

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, root := st.StartSpan(context.Background(), "serve", "upload")
				_, c1 := st.StartSpan(ctx, "serve", "queue.wait")
				c1.End()
				_, c2 := st.StartSpan(ctx, "serve", "analysis")
				c2.End()
				st.RecordSpan(ctx, "serve", "body.read", st.Now(), 1)
				root.End()
			}
		}()
	}
	wg.Wait()

	if got := fr.Total(); got != goroutines*perG {
		t.Fatalf("flight recorder total %d, want %d", got, goroutines*perG)
	}
	for _, rt := range fr.Traces() {
		if len(rt.Spans) != 4 {
			t.Fatalf("trace has %d spans, want 4: %+v", len(rt.Spans), rt.Spans)
		}
		if rt.Root().Name != "upload" {
			t.Fatalf("trace root %q, want upload", rt.Root().Name)
		}
	}
}
