package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-tracing half of the telemetry substrate: spans
// with parent/child links threaded through context.Context. The clock is
// pluggable — the serving path uses wall-clock microseconds (WallClock),
// the simulator can hand in its virtual clock — and completed spans reuse
// the existing Tracer JSONL/Chrome encodings, so one viewer reads both.
//
// Everything here is observational and nil-safe: a nil *SpanTracer or nil
// *Span turns every call into a no-op, which is how "tracing disabled"
// is spelled. Instrumented code never branches on a tracing flag.

// SpanData is one span's completed record. IDs are process-local: TraceID
// groups every span of one request, ParentID is 0 for roots.
type SpanData struct {
	TraceID  uint64            `json:"trace"`
	SpanID   uint64            `json:"span"`
	ParentID uint64            `json:"parent,omitempty"`
	Cat      string            `json:"cat"`
	Name     string            `json:"name"`
	Start    int64             `json:"ts"`  // microseconds on the tracer's clock
	Dur      int64             `json:"dur"` // microseconds
	Attrs    map[string]string `json:"attrs,omitempty"`
	Err      bool              `json:"err,omitempty"`
}

// RequestTrace is one root span plus every descendant that ended before the
// root did, assembled when the root ends. Spans[0] is always the root.
type RequestTrace struct {
	Spans []SpanData
}

// Root returns the trace's root span record.
func (rt *RequestTrace) Root() *SpanData { return &rt.Spans[0] }

// SpanSink receives each completed request trace (e.g. the FlightRecorder).
// Implementations must be safe for concurrent calls.
type SpanSink interface {
	RecordTrace(rt RequestTrace)
}

// SpanTracer mints parent/child-linked spans on an arbitrary microsecond
// clock. Out (optional) streams every completed span through the existing
// Tracer encodings; Sink (optional) receives whole per-request traces.
// Set Out/Sink before the first StartSpan; they are read concurrently after.
type SpanTracer struct {
	now  func() int64
	out  *Tracer
	sink SpanSink
	ids  atomic.Uint64
}

// NewSpanTracer builds a tracer on the given microsecond clock.
func NewSpanTracer(now func() int64) *SpanTracer {
	return &SpanTracer{now: now}
}

// SetOutput streams completed spans through t (JSONL or Chrome format).
func (st *SpanTracer) SetOutput(t *Tracer) { st.out = t }

// SetSink delivers completed request traces to sink.
func (st *SpanTracer) SetSink(sink SpanSink) { st.sink = sink }

// Now reads the tracer's clock (0 from a nil tracer).
func (st *SpanTracer) Now() int64 {
	if st == nil {
		return 0
	}
	return st.now()
}

// processEpoch anchors WallClock so span timestamps stay small and
// monotonic (time.Since uses the monotonic reading).
var processEpoch = time.Now()

// WallClock is the serving path's clock: wall microseconds since process
// start, monotonic.
func WallClock() int64 { return int64(time.Since(processEpoch) / time.Microsecond) }

// Span is one in-flight operation. The zero of usefulness: a nil *Span
// no-ops every method, so callers never guard call sites.
type Span struct {
	st   *SpanTracer
	root *Span // the trace root; self for root spans
	data SpanData

	// Root-only fields: children from any goroutine append their completed
	// records here until the root ends.
	mu        sync.Mutex
	collected []SpanData
	ended     bool
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a span as a child of whatever span ctx carries (a new
// trace root if none) and returns ctx with the new span installed. attrs
// alternate key, value.
func (st *SpanTracer) StartSpan(ctx context.Context, cat, name string, attrs ...string) (context.Context, *Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if st == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	sp := &Span{
		st: st,
		data: SpanData{
			SpanID: st.ids.Add(1),
			Cat:    cat,
			Name:   name,
			Start:  st.now(),
			Attrs:  argMap(attrs),
		},
	}
	if parent != nil {
		sp.root = parent.root
		sp.data.TraceID = parent.data.TraceID
		sp.data.ParentID = parent.data.SpanID
	} else {
		sp.root = sp
		sp.data.TraceID = sp.data.SpanID
	}
	return ContextWithSpan(ctx, sp), sp
}

// RecordSpan records an already-completed child span with explicit start
// and duration (microseconds) — for stages whose cost accumulates across an
// interleaved loop (e.g. body reads woven through record decoding) rather
// than bracketing a contiguous interval.
func (st *SpanTracer) RecordSpan(ctx context.Context, cat, name string, start, dur int64, attrs ...string) {
	if st == nil {
		return
	}
	parent := SpanFromContext(ctx)
	data := SpanData{
		SpanID: st.ids.Add(1),
		Cat:    cat,
		Name:   name,
		Start:  start,
		Dur:    dur,
		Attrs:  argMap(attrs),
	}
	if parent != nil {
		data.TraceID = parent.data.TraceID
		data.ParentID = parent.data.SpanID
		parent.root.collect(data)
	} else {
		data.TraceID = data.SpanID
	}
	st.emit(data)
}

// SetAttr attaches or replaces one attribute. Not safe to race with End on
// the same span (spans are owned by one goroutine at a time by design).
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	if sp.data.Attrs == nil {
		sp.data.Attrs = make(map[string]string, 4)
	}
	sp.data.Attrs[k] = v
}

// Fail marks the span (and, for roots, the whole trace) as errored — the
// flight recorder pins errored traces.
func (sp *Span) Fail() {
	if sp == nil {
		return
	}
	sp.data.Err = true
}

// End completes the span and returns its duration in microseconds. Child
// spans fold into their root; a root span assembles the whole RequestTrace
// and hands it to the tracer's sink and output. End is idempotent-enough
// for telemetry: a second End on a root is ignored.
func (sp *Span) End() int64 {
	if sp == nil {
		return 0
	}
	sp.data.Dur = sp.st.now() - sp.data.Start
	if sp.root == sp {
		sp.mu.Lock()
		if sp.ended {
			sp.mu.Unlock()
			return sp.data.Dur
		}
		sp.ended = true
		spans := make([]SpanData, 0, len(sp.collected)+1)
		spans = append(spans, sp.data)
		spans = append(spans, sp.collected...)
		sp.mu.Unlock()
		for _, d := range spans {
			sp.st.emit(d)
		}
		if sp.st.sink != nil {
			sp.st.sink.RecordTrace(RequestTrace{Spans: spans})
		}
		return sp.data.Dur
	}
	sp.root.collect(sp.data)
	return sp.data.Dur
}

// collect appends a completed descendant's record to the root. A child
// ending after its root is dropped — the trace already shipped.
func (sp *Span) collect(d SpanData) {
	sp.mu.Lock()
	if !sp.ended {
		sp.collected = append(sp.collected, d)
	}
	sp.mu.Unlock()
}

// emit streams one completed span through the configured Tracer, tagging
// trace/span/parent IDs as args so the JSONL and Chrome forms keep the
// links. Non-root spans wait for their root (see End), so a request's spans
// land contiguously.
func (st *SpanTracer) emit(d SpanData) {
	if st.out == nil {
		return
	}
	args := make([]string, 0, 2*(len(d.Attrs)+4))
	args = append(args, "trace", formatUint(d.TraceID), "span", formatUint(d.SpanID))
	if d.ParentID != 0 {
		args = append(args, "parent", formatUint(d.ParentID))
	}
	if d.Err {
		args = append(args, "err", "true")
	}
	for k, v := range d.Attrs {
		args = append(args, k, v)
	}
	st.out.SpanOn(int(d.TraceID), d.Start, d.Dur, d.Cat, d.Name, args...)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
