package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Strict parser for the Prometheus text exposition format (version 0.0.4).
// It validates the way a strict scraper would: metric/label name grammar,
// quoted-and-escaped label values, TYPE declared before samples, no
// duplicate series, histogram bucket monotonicity, a +Inf bucket equal to
// _count. WritePrometheus output must round-trip through it (pinned by the
// golden tests); iotload and CI use it to reject a malformed /metrics page
// instead of grepping blindly.

// PromSample is one parsed sample line: `name{labels} value`.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParsePrometheus parses and validates a full exposition page. It returns
// every sample plus the family→type declarations, or the first violation.
func ParsePrometheus(text string) ([]PromSample, map[string]string, error) {
	types := map[string]string{} // family → type
	var samples []PromSample
	seen := map[string]bool{}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				}
				fam, typ := fields[2], fields[3]
				if !promMetricNameRe.MatchString(fam) {
					return nil, nil, fmt.Errorf("line %d: bad family name %q", ln+1, fam)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, nil, fmt.Errorf("line %d: bad type %q", ln+1, typ)
				}
				if _, dup := types[fam]; dup {
					return nil, nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, fam)
				}
				types[fam] = typ
			}
			continue // HELP and other comments are legal
		}
		s, err := parsePromSampleLine(ln+1, line)
		if err != nil {
			return nil, nil, err
		}
		key := s.Name + promSeriesLabels(s.Labels)
		if seen[key] {
			return nil, nil, fmt.Errorf("line %d: duplicate series %s", ln+1, key)
		}
		seen[key] = true
		if promFamilyOf(s.Name, types) == "" {
			return nil, nil, fmt.Errorf("line %d: sample %q has no preceding TYPE", ln+1, s.Name)
		}
		samples = append(samples, s)
	}

	if err := promValidateHistograms(types, samples); err != nil {
		return nil, nil, err
	}
	return samples, types, nil
}

// parsePromSampleLine parses `name{labels} value` with full escape handling.
func parsePromSampleLine(ln int, line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("line %d: no value: %q", ln, line)
	}
	s.Name = line[:i]
	if !promMetricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("line %d: bad metric name %q", ln, s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if len(rest) == 0 {
				return s, fmt.Errorf("line %d: unterminated label block", ln)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("line %d: label without '=': %q", ln, rest)
			}
			lname := rest[:eq]
			if !promLabelNameRe.MatchString(lname) {
				return s, fmt.Errorf("line %d: bad label name %q", ln, lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, fmt.Errorf("line %d: label value not quoted", ln)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for len(rest) > 0 {
				c := rest[0]
				if c == '\\' {
					if len(rest) < 2 {
						return s, fmt.Errorf("line %d: dangling escape", ln)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("line %d: invalid escape \\%c", ln, rest[1])
					}
					rest = rest[2:]
					continue
				}
				if c == '"' {
					rest = rest[1:]
					closed = true
					break
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if !closed {
				return s, fmt.Errorf("line %d: unterminated label value", ln)
			}
			if _, dup := s.Labels[lname]; dup {
				return s, fmt.Errorf("line %d: duplicate label %q", ln, lname)
			}
			s.Labels[lname] = val.String()
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("line %d: malformed value: %q", ln, rest)
	}
	v, err := ParsePromFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %v", ln, fields[0], err)
	}
	s.Value = v
	return s, nil
}

// ParsePromFloat parses a sample value, including the exposition format's
// spelled-out specials.
func ParsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// promFamilyOf maps a sample name back to its declared family, honoring the
// histogram suffix grammar. Empty means undeclared (or a bare sample under a
// histogram/summary family, which is invalid).
func promFamilyOf(sampleName string, types map[string]string) string {
	if typ, ok := types[sampleName]; ok {
		if typ == "histogram" || typ == "summary" {
			return ""
		}
		return sampleName
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if fam, found := strings.CutSuffix(sampleName, suf); found {
			if types[fam] == "histogram" {
				return fam
			}
		}
	}
	return ""
}

// promSeriesLabels renders a label set as a canonical sorted key.
func promSeriesLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, ",%s=%q", k, labels[k])
	}
	return sb.String()
}

// promValidateHistograms checks every histogram series for cumulative bucket
// monotonicity, a +Inf bucket, and bucket/_count agreement.
func promValidateHistograms(types map[string]string, samples []PromSample) error {
	type hseries struct {
		buckets map[float64]float64 // le → cumulative count
		count   *float64
		sum     bool
	}
	series := map[string]*hseries{}
	get := func(fam string, labels map[string]string) *hseries {
		base := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				base[k] = v
			}
		}
		key := fam + promSeriesLabels(base)
		h, ok := series[key]
		if !ok {
			h = &hseries{buckets: map[float64]float64{}}
			series[key] = h
		}
		return h
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && types[strings.TrimSuffix(s.Name, "_bucket")] == "histogram":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le: %s", s.Name)
			}
			bound, err := ParsePromFloat(le)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", le, err)
			}
			get(strings.TrimSuffix(s.Name, "_bucket"), s.Labels).buckets[bound] = s.Value
		case strings.HasSuffix(s.Name, "_count") && types[strings.TrimSuffix(s.Name, "_count")] == "histogram":
			v := s.Value
			get(strings.TrimSuffix(s.Name, "_count"), s.Labels).count = &v
		case strings.HasSuffix(s.Name, "_sum") && types[strings.TrimSuffix(s.Name, "_sum")] == "histogram":
			get(strings.TrimSuffix(s.Name, "_sum"), s.Labels).sum = true
		}
	}
	for key, h := range series {
		if len(h.buckets) == 0 || h.count == nil || !h.sum {
			return fmt.Errorf("histogram %s incomplete", key)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		if !math.IsInf(bounds[len(bounds)-1], 1) {
			return fmt.Errorf("histogram %s missing +Inf bucket", key)
		}
		prev := -1.0
		for _, b := range bounds {
			if h.buckets[b] < prev {
				return fmt.Errorf("histogram %s buckets not monotone at le=%v: %v < %v", key, b, h.buckets[b], prev)
			}
			prev = h.buckets[b]
		}
		if inf := h.buckets[math.Inf(1)]; inf != *h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, inf, *h.count)
		}
	}
	return nil
}

// PromHistogramQuantile interpolates the q-th quantile from one histogram
// series' parsed samples: cumulative `le` buckets from an exposition page,
// the inverse of what WritePrometheus renders. Buckets need not be sorted.
// Returns 0 for an empty histogram.
//
// The walk is the exact mirror of Histogram.Quantile over the de-cumulated
// counts, so scraping a page and asking the live histogram agree on every
// input. Empty buckets are skipped when locating the target rank — the old
// `cum >= target` walk stopped at the first bucket whose cumulative count
// met the rank even when that bucket held no observations, which made a
// histogram whose every observation overflowed into +Inf report 0 (no finite
// bucket had advanced prevBound past its zero value) instead of the largest
// finite bound the live histogram reports.
func PromHistogramQuantile(buckets map[float64]float64, q float64) float64 {
	bounds := make([]float64, 0, len(buckets))
	for b := range buckets {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	if len(bounds) == 0 {
		return 0
	}
	total := buckets[bounds[len(bounds)-1]]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// largestFinite is what the +Inf bucket reports: nothing to interpolate
	// against above the top finite bound.
	largestFinite := func() float64 {
		for i := len(bounds) - 1; i >= 0; i-- {
			if !math.IsInf(bounds[i], 1) {
				return bounds[i]
			}
		}
		return 0
	}
	rank := q * total
	var prevCum float64
	for i, b := range bounds {
		cum := buckets[b]
		c := cum - prevCum
		prevCum = cum
		if cum < rank || c == 0 {
			continue
		}
		if math.IsInf(b, 1) {
			return largestFinite()
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		within := (rank - (cum - c)) / c
		return lo + (b-lo)*within
	}
	return largestFinite()
}
