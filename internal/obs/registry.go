// Package obs is the simulator's telemetry substrate: a labeled metrics
// registry, a virtual-time event tracer, and a per-phase profiler. It is
// dependency-free (stdlib only) so every layer — sim kernel, L2 switch,
// TCP/IP stack, device runtime, study pipeline — can report into one place
// without import cycles.
//
// Determinism is a design constraint: every value the Registry holds is
// derived from virtual-time activity, so two runs with the same seed produce
// byte-identical Snapshot output. Wall-clock measurements live in the
// Profiler, which is serialized separately and excluded from determinism
// comparisons.
package obs

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key renders the canonical series key name{k1=v1,k2=v2}. Labels alternate
// key, value and are sorted by key, so the same label set always produces
// the same series regardless of argument order.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter is a monotonically increasing series. Safe for concurrent use
// (the sim is single-threaded, but the opt-in HTTP endpoint reads live).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observations land in the first
// bucket whose upper bound is >= the value; larger values land in +Inf.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1, last is +Inf
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts,
// Prometheus histogram_quantile style: the target rank is located in its
// bucket and position interpolated linearly between the bucket's bounds.
// The +Inf bucket reports the highest finite bound (there is nothing to
// interpolate against); an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		within := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*within
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// histSnapshot is the serialized form of a Histogram.
type histSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := histSnapshot{Count: h.count, Sum: h.sum, Buckets: make(map[string]uint64, len(h.counts))}
	for i, b := range h.bounds {
		s.Buckets["le="+strconv.FormatFloat(b, 'g', -1, 64)] = h.counts[i]
	}
	s.Buckets["le=+Inf"] = h.counts[len(h.bounds)]
	return s
}

// Registry holds every series, keyed by Key(name, labels...). Lookups are
// mutex-guarded; hot paths should resolve their handles once and increment
// the returned Counter/Gauge directly.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter for the series, creating it at zero on first
// use. The same name+labels always yield the same *Counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge for the series, creating it at zero on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram for the series, creating it with the given
// bucket upper bounds on first use (bounds are ignored on later lookups).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	key := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.histograms[key] = h
	}
	return h
}

// CounterValue reads a counter by series key without creating it.
func (r *Registry) CounterValue(key string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c.Value()
	}
	return 0
}

// Total sums every counter whose series name matches (all label sets).
func (r *Registry) Total(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	prefix := name + "{"
	for key, c := range r.counters {
		if key == name || strings.HasPrefix(key, prefix) {
			sum += c.Value()
		}
	}
	return sum
}

// SeriesCount reports the number of distinct labeled series.
func (r *Registry) SeriesCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) + len(r.gauges) + len(r.histograms)
}

// snapshotData is the serialized form of the registry. encoding/json sorts
// map keys, so marshaling identical values produces identical bytes.
type snapshotData struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]histSnapshot `json:"histograms"`
}

func (r *Registry) snapshotData() snapshotData {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := snapshotData{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]histSnapshot, len(r.histograms)),
	}
	for k, c := range r.counters {
		d.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		d.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		d.Histograms[k] = h.snapshot()
	}
	return d
}

// Snapshot renders the registry as deterministic, indented JSON: same
// contents, same bytes — the property the determinism tests pin down.
func (r *Registry) Snapshot() []byte {
	b, err := json.MarshalIndent(r.snapshotData(), "", "  ")
	if err != nil { // unreachable: the snapshot types always marshal
		return []byte("{}")
	}
	return append(b, '\n')
}

// SnapshotMap returns the registry as a plain value for expvar publishing.
func (r *Registry) SnapshotMap() interface{} { return r.snapshotData() }
