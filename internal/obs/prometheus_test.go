package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// promParse runs the package's strict exposition parser (promparse.go) and
// fails the test on any violation. The parser is shared with iotload, which
// uses it to reject a malformed /metrics page at bench time.
func promParse(t *testing.T, text string) []PromSample {
	t.Helper()
	samples, _, err := ParsePrometheus(text)
	if err != nil {
		t.Fatalf("exposition parse: %v\n%s", err, text)
	}
	return samples
}

func renderLabels(labels map[string]string) string {
	return promSeriesLabels(labels)
}

// ---- the actual tests ----

// TestWritePrometheusGolden pins the exposition output byte for byte:
// deterministic family and sample order, cumulative buckets, name
// sanitization, label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_uploads", "kind", "capture").Add(3)
	r.Counter("serve_uploads", "kind", "inspector").Inc()
	r.Gauge("queue_depth").Set(-2)
	h := r.Histogram("stage_ms", []float64{1, 5}, "stage", "queue.wait")
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(10)
	r.Counter("weird.name", "label-x", `a\b"c`).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE queue_depth gauge
queue_depth -2
# TYPE serve_uploads counter
serve_uploads{kind="capture"} 3
serve_uploads{kind="inspector"} 1
# TYPE stage_ms histogram
stage_ms_bucket{le="1",stage="queue.wait"} 1
stage_ms_bucket{le="5",stage="queue.wait"} 2
stage_ms_bucket{le="+Inf",stage="queue.wait"} 3
stage_ms_sum{stage="queue.wait"} 13.5
stage_ms_count{stage="queue.wait"} 3
# TYPE weird_name counter
weird_name{label_x="a\\b\"c"} 1
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition output mismatch:\n--- got\n%s--- want\n%s", got, want)
	}

	// And the golden must survive the strict parser.
	samples := promParse(t, buf.String())
	if len(samples) != 9 {
		t.Fatalf("parsed %d samples, want 9", len(samples))
	}
}

// TestWritePrometheusRoundTrip: a registry with every series shape (multi
// label sets, several histogram series under one family, hostile label
// values) round-trips through the strict parser with the right values.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, stage := range []string{"queue.wait", "body.read", "pcap.decode", "analysis", "cache.lookup"} {
		h := r.Histogram("serve_stage_ms", []float64{0.1, 1, 10, 100}, "stage", stage)
		for i := 0; i < 7; i++ {
			h.Observe(float64(i) * 3.5)
		}
	}
	r.Counter("serve_responses", "code", "200").Add(41)
	r.Counter("serve_responses", "code", "429").Add(2)
	r.Gauge("serve_workers_busy").Set(3)
	r.Counter("hostile", "v", "quote\"back\\slash").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := promParse(t, buf.String())

	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Name+renderLabels(s.Labels)] = s.Value
	}
	if v := byKey[`serve_responses,code="200"`]; v != 41 {
		t.Fatalf("responses 200 = %v, want 41", v)
	}
	if v := byKey[`serve_workers_busy`]; v != 3 {
		t.Fatalf("workers busy = %v, want 3", v)
	}
	if v := byKey[`hostile,v="quote\"back\\slash"`]; v != 1 {
		t.Fatalf("hostile label round-trip failed: %v (have %v)", v, byKey)
	}
	for _, stage := range []string{"queue.wait", "analysis"} {
		if v := byKey[fmt.Sprintf(`serve_stage_ms_count,stage=%q`, stage)]; v != 7 {
			t.Fatalf("stage %s count = %v, want 7", stage, v)
		}
	}

	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
}

// TestWritePrometheusPrefixed: a namespace prefix lands on every family
// except those already carrying it.
func TestWritePrometheusPrefixed(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_events").Add(5)
	r.Counter("lab_frames").Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheusPrefixed(&buf, "lab"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lab_sim_events 5") {
		t.Fatalf("prefix not applied:\n%s", out)
	}
	if !strings.Contains(out, "lab_frames 2") || strings.Contains(out, "lab_lab_frames") {
		t.Fatalf("prefix double-applied:\n%s", out)
	}
	promParse(t, out)
}

// TestParsePrometheusRejects: the parser is strict, not a lax grep — each of
// these pages violates the format in a different way and must be refused.
func TestParsePrometheusRejects(t *testing.T) {
	bad := map[string]string{
		"no TYPE":           "orphan 1\n",
		"bad metric name":   "# TYPE 9bad counter\n9bad 1\n",
		"unquoted label":    "# TYPE a counter\na{x=y} 1\n",
		"bad escape":        "# TYPE a counter\na{x=\"\\q\"} 1\n",
		"duplicate series":  "# TYPE a counter\na 1\na 2\n",
		"bad value":         "# TYPE a counter\na one\n",
		"non-monotone hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"missing +Inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"inf != count":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, page := range bad {
		if _, _, err := ParsePrometheus(page); err == nil {
			t.Errorf("%s: parser accepted invalid page:\n%s", name, page)
		}
	}
}

// TestPromHistogramQuantile: quantiles read back from parsed cumulative
// buckets agree with the live histogram's own interpolation.
func TestPromHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []float64{1, 5, 10, 50}, "stage", "analysis")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 20))
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, _, err := ParsePrometheus(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	buckets := map[float64]float64{}
	for _, s := range samples {
		if s.Name == "lat_ms_bucket" {
			le, _ := ParsePromFloat(s.Labels["le"])
			buckets[le] = s.Value
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := PromHistogramQuantile(buckets, q)
		want := h.Quantile(q)
		// The two interpolations order their arithmetic differently, so
		// allow an ulp-scale relative difference.
		if diff := got - want; diff < -1e-9*want || diff > 1e-9*want {
			t.Fatalf("q%.2f: parsed-bucket quantile %v != live histogram quantile %v", q, got, want)
		}
	}
	if PromHistogramQuantile(nil, 0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

// TestPromHistogramQuantileEdgeCases pins the shapes where the parsed-bucket
// walk used to diverge from the live histogram: every observation overflowing
// into +Inf (the old walk stopped at the first zero-count finite bucket and
// reported its bound — or 0 — instead of the largest finite bound), a single
// finite bucket, a +Inf-only histogram, and the q=0 / q=1 / out-of-range
// extremes. The property is always the same: parsed buckets and the live
// Histogram.Quantile must agree.
func TestPromHistogramQuantileEdgeCases(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1, -0.5, 1.5}
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
	}{
		{"all overflow", []float64{1, 5}, []float64{100, 200, 300, 400}},
		{"single finite bucket", []float64{10}, []float64{3, 4, 5, 6}},
		{"no finite buckets", nil, []float64{1, 2, 3}},
		{"sparse with empty buckets", []float64{1, 2, 4, 8, 16}, []float64{0.5, 0.5, 9, 9, 9, 100}},
		{"everything in first bucket", []float64{1, 5, 10}, []float64{0.1, 0.2, 0.3}},
	}
	for _, tc := range cases {
		r := NewRegistry()
		h := r.Histogram("edge", tc.bounds)
		for _, v := range tc.observe {
			h.Observe(v)
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples, _, err := ParsePrometheus(buf.String())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		buckets := map[float64]float64{}
		for _, s := range samples {
			if s.Name == "edge_bucket" {
				le, _ := ParsePromFloat(s.Labels["le"])
				buckets[le] = s.Value
			}
		}
		for _, q := range quantiles {
			got := PromHistogramQuantile(buckets, q)
			want := h.Quantile(q)
			if diff := got - want; diff < -1e-9 || diff > 1e-9 {
				t.Errorf("%s q=%v: parsed-bucket quantile %v != live histogram quantile %v", tc.name, q, got, want)
			}
		}
	}
}
