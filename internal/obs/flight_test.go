package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// mkTrace builds a single-span trace with the given id-ish start and dur.
func mkTrace(id, dur int64, err bool) RequestTrace {
	return RequestTrace{Spans: []SpanData{{
		TraceID: uint64(id), SpanID: uint64(id), Cat: "serve", Name: "upload",
		Start: id, Dur: dur, Err: err,
	}}}
}

// TestFlightRecorderWraparound: the recent ring wraps at capacity, the
// slowest traces stay pinned past eviction, and errored traces are pinned
// regardless of duration.
func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(4, 2)

	// Trace 1 is the slowest of the whole run; traces 2-9 are fast.
	fr.RecordTrace(mkTrace(1, 1000, false))
	for i := int64(2); i <= 9; i++ {
		fr.RecordTrace(mkTrace(i, i, false))
	}
	// One errored fast trace, then enough traffic to wrap the ring again.
	fr.RecordTrace(mkTrace(10, 1, true))
	for i := int64(11); i <= 20; i++ {
		fr.RecordTrace(mkTrace(i, 2, false))
	}

	if got := fr.Total(); got != 20 {
		t.Fatalf("total %d, want 20", got)
	}
	byID := map[uint64]RequestTrace{}
	for _, rt := range fr.Traces() {
		byID[rt.Root().SpanID] = rt
	}
	// The recent ring holds the last 4 traces.
	for i := uint64(17); i <= 20; i++ {
		if _, ok := byID[i]; !ok {
			t.Fatalf("recent trace %d missing from ring", i)
		}
	}
	// Trace 1 left the ring 15 traces ago but is pinned as slowest.
	if _, ok := byID[1]; !ok {
		t.Fatal("slowest trace evicted — slow pinning broken")
	}
	// The errored trace is pinned despite being fast and old.
	rt, ok := byID[10]
	if !ok {
		t.Fatal("errored trace evicted — error pinning broken")
	}
	if !rt.Root().Err {
		t.Fatal("pinned errored trace lost its Err mark")
	}
	// Bounded: ring + slow pins + errored pins at most.
	if n := len(fr.Traces()); n > 4+2+2 {
		t.Fatalf("recorder retains %d traces, cap is 8", n)
	}
}

// TestFlightRecorderDump: the dump is valid Chrome trace JSON with one tid
// lane per trace and parent links in args.
func TestFlightRecorderDump(t *testing.T) {
	clk := &fakeClock{}
	st := NewSpanTracer(clk.fn())
	fr := NewFlightRecorder(8, 2)
	st.SetSink(fr)

	for i := 0; i < 3; i++ {
		ctx, root := st.StartSpan(context.Background(), "serve", "upload", "household", fmt.Sprintf("h%d", i))
		clk.now += 5
		_, child := st.StartSpan(ctx, "serve", "analysis")
		clk.now += 10
		child.End()
		clk.now += 1
		root.End()
	}

	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 6 {
		t.Fatalf("dump has %d events, want 6", len(events))
	}
	uploads, children := 0, 0
	tids := map[int]bool{}
	for _, ev := range events {
		tids[ev.TID] = true
		switch ev.Name {
		case "upload":
			uploads++
			if ev.Args["span"] == "" {
				t.Fatalf("upload event missing span id: %+v", ev)
			}
		case "analysis":
			children++
			if ev.Args["parent"] == "" {
				t.Fatalf("child event missing parent link: %+v", ev)
			}
		}
	}
	if uploads != 3 || children != 3 {
		t.Fatalf("uploads %d children %d, want 3/3", uploads, children)
	}
	if len(tids) != 3 {
		t.Fatalf("traces share tids: %v (want one lane each)", tids)
	}
}

// TestFlightRecorderConcurrent: concurrent recording and dumping stay
// consistent (the -race CI pass is the real assertion here).
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(16, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fr.RecordTrace(mkTrace(int64(g*1000+i), int64(i%7), i%13 == 0))
				if i%25 == 0 {
					var buf bytes.Buffer
					if err := fr.Dump(&buf); err != nil {
						t.Errorf("dump mid-record: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := fr.Total(); got != 800 {
		t.Fatalf("total %d, want 800", got)
	}
	var buf bytes.Buffer
	if err := fr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var events []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("final dump invalid: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("final dump empty")
	}
}

// TestFlightRecorderNil: a nil recorder no-ops.
func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.RecordTrace(mkTrace(1, 1, false))
	if fr.Total() != 0 || fr.Traces() != nil {
		t.Fatal("nil recorder retained state")
	}
}
