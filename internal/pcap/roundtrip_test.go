package pcap

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// synthRecords builds n pseudo-random records: some well-formed Ethernet/IP
// frames, some raw garbage — the pcap container must round-trip both, since
// the chaos layer writes malformed frames into real captures.
func synthRecords(t *testing.T, rng *rand.Rand, n int) []Record {
	t.Helper()
	base := time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)
	records := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		at := base.Add(time.Duration(i) * 137 * time.Microsecond)
		var data []byte
		switch i % 3 {
		case 0: // well-formed IPv4/UDP frame
			payload := make([]byte, 1+rng.Intn(200))
			rng.Read(payload)
			f, err := layers.Serialize(
				&layers.Ethernet{
					Src:       netx.MAC{2, 0, 0, 0, 0, byte(i)},
					Dst:       netx.MAC{2, 0, 0, 0, 1, byte(i)},
					EtherType: layers.EtherTypeIPv4,
				},
				layers.RawPayload(payload))
			if err != nil {
				t.Fatal(err)
			}
			data = f
		case 1: // minimal frame
			data = make([]byte, 14)
			rng.Read(data)
		default: // raw garbage, arbitrary length
			data = make([]byte, 1+rng.Intn(64))
			rng.Read(data)
		}
		records = append(records, Record{Time: at, Data: data})
	}
	return records
}

// TestRoundTripProperty writes N synthetic records, reads them back, and
// asserts byte-identical payloads, microsecond-exact timestamps, and stable
// decode results — directly and through the decode-once Index.
func TestRoundTripProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		rng := rand.New(rand.NewSource(seed))
		records := synthRecords(t, rng, 200)

		var buf bytes.Buffer
		if err := WriteFile(&buf, records); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		got, err := ReadFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if len(got) != len(records) {
			t.Fatalf("seed %d: %d records in, %d out", seed, len(records), len(got))
		}
		for i := range records {
			if !got[i].Time.Equal(records[i].Time) {
				t.Fatalf("seed %d: record %d timestamp %v != %v", seed, i, got[i].Time, records[i].Time)
			}
			if !bytes.Equal(got[i].Data, records[i].Data) {
				t.Fatalf("seed %d: record %d payload differs after round-trip", seed, i)
			}
		}

		// Decode results must be stable across the round-trip: same layer
		// presence and same error-ness record by record, through the Index.
		orig := NewIndex(records, 2)
		back := NewIndex(got, 2)
		for i := range records {
			a, b := orig.Packets()[i], back.Packets()[i]
			if (a.Err == nil) != (b.Err == nil) {
				t.Fatalf("seed %d: record %d decode error changed: %v vs %v", seed, i, a.Err, b.Err)
			}
			if a.HasARP != b.HasARP || a.HasIP4 != b.HasIP4 || a.HasIP6 != b.HasIP6 ||
				a.HasUDP != b.HasUDP || a.HasTCP != b.HasTCP {
				t.Fatalf("seed %d: record %d layer set changed after round-trip", seed, i)
			}
		}
	}
}

// TestRoundTripSecondWriteIsIdentical re-serializes read-back records and
// checks the bytes match the first file exactly — the container adds or
// loses nothing.
func TestRoundTripSecondWriteIsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	records := synthRecords(t, rng, 100)
	var first bytes.Buffer
	if err := WriteFile(&first, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteFile(&second, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("write→read→write changed the file bytes")
	}
}
