package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

func mkFrame(t *testing.T, src, dst netx.MAC, srcIP, dstIP string) []byte {
	t.Helper()
	udp := &layers.UDP{SrcPort: 1900, DstPort: 1900}
	s, d := netip.MustParseAddr(srcIP), netip.MustParseAddr(dstIP)
	udp.SetAddrs(s, d)
	frame, err := layers.Serialize(
		&layers.Ethernet{Src: src, Dst: dst, EtherType: layers.EtherTypeIPv4},
		&layers.IPv4{Protocol: layers.IPProtoUDP, Src: s, Dst: d},
		udp, layers.RawPayload("NOTIFY * HTTP/1.1\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestFileRoundTrip(t *testing.T) {
	a := netx.MAC{2, 0, 0, 0, 0, 1}
	b := netx.MAC{2, 0, 0, 0, 0, 2}
	recs := []Record{
		{Time: time.Unix(1668384000, 123456000).UTC(), Data: mkFrame(t, a, b, "192.168.10.1", "192.168.10.2")},
		{Time: time.Unix(1668384001, 0).UTC(), Data: mkFrame(t, b, a, "192.168.10.2", "192.168.10.1")},
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range got {
		if !got[i].Time.Equal(recs[i].Time) {
			t.Errorf("rec %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
		if !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Errorf("rec %d data mismatch", i)
		}
	}
}

// A record larger than the conventional 65535 snaplen must raise the global
// header's snaplen to cover it — a fixed 65535 header would declare caplen >
// snaplen, which strict pcap readers reject as corrupt.
func TestWriteFileRaisesSnaplenForJumboRecord(t *testing.T) {
	big := make([]byte, 70000)
	for i := range big {
		big[i] = byte(i)
	}
	recs := []Record{
		{Time: time.Unix(1668384000, 0).UTC(), Data: []byte{1, 2, 3}},
		{Time: time.Unix(1668384001, 0).UTC(), Data: big},
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if snaplen := binary.LittleEndian.Uint32(raw[16:20]); snaplen != 70000 {
		t.Fatalf("header snaplen = %d, want 70000", snaplen)
	}
	// Second record header starts after the 24-byte global header, the first
	// 16-byte record header, and the 3-byte first record.
	off := 24 + 16 + 3
	caplen := binary.LittleEndian.Uint32(raw[off+8 : off+12])
	origlen := binary.LittleEndian.Uint32(raw[off+12 : off+16])
	if caplen != 70000 || origlen != 70000 {
		t.Fatalf("jumbo record caplen=%d origlen=%d, want 70000/70000", caplen, origlen)
	}
	got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[1].Data, big) {
		t.Fatalf("jumbo record did not round-trip (%d records)", len(got))
	}
}

// Small captures keep the conventional tcpdump snaplen.
func TestWriteFileDefaultSnaplen(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, []Record{{Time: time.Unix(1, 0).UTC(), Data: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if snaplen := binary.LittleEndian.Uint32(buf.Bytes()[16:20]); snaplen != 65535 {
		t.Fatalf("header snaplen = %d, want 65535", snaplen)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	if _, err := ReadFile(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFile(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadFileTruncatedRecord(t *testing.T) {
	a := netx.MAC{2, 0, 0, 0, 0, 1}
	var buf bytes.Buffer
	if err := WriteFile(&buf, []Record{{Time: time.Now(), Data: mkFrame(t, a, a, "192.168.10.1", "192.168.10.2")}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFile(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestCapturePerMAC(t *testing.T) {
	a := netx.MAC{2, 0, 0, 0, 0, 1}
	b := netx.MAC{2, 0, 0, 0, 0, 2}
	c := NewCapture()
	now := time.Unix(1668384000, 0).UTC()
	c.Add(now, mkFrame(t, a, b, "192.168.10.1", "192.168.10.2"))
	c.Add(now.Add(time.Second), mkFrame(t, b, a, "192.168.10.2", "192.168.10.1"))
	c.Add(now.Add(2*time.Second), mkFrame(t, a, b, "192.168.10.1", "192.168.10.2"))
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if len(c.ByMAC[a]) != 2 || len(c.ByMAC[b]) != 1 {
		t.Fatalf("per-MAC split wrong: a=%d b=%d", len(c.ByMAC[a]), len(c.ByMAC[b]))
	}
	macs := c.MACs()
	if len(macs) != 2 || macs[0] != a || macs[1] != b {
		t.Fatalf("MACs() = %v", macs)
	}
}

func TestFilterLocal(t *testing.T) {
	a := netx.MAC{2, 0, 0, 0, 0, 1}
	b := netx.MAC{2, 0, 0, 0, 0, 2}
	now := time.Unix(1668384000, 0).UTC()
	recs := []Record{
		{Time: now, Data: mkFrame(t, a, b, "192.168.10.1", "192.168.10.2")},                 // local
		{Time: now, Data: mkFrame(t, a, b, "192.168.10.1", "52.94.0.1")},                    // cloud
		{Time: now, Data: mkFrame(t, a, netx.Broadcast, "192.168.10.1", "255.255.255.255")}, // broadcast
	}
	got := FilterLocal(recs)
	if len(got) != 2 {
		t.Fatalf("FilterLocal kept %d, want 2", len(got))
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	recs := make([]Record, 1000)
	for i := range recs {
		data := make([]byte, 120)
		for j := range data {
			data[j] = byte(i + j)
		}
		recs[i] = Record{Time: time.Unix(int64(i), 0).UTC(), Data: data}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs); err != nil {
			b.Fatal(err)
		}
	}
}
