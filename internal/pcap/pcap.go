// Package pcap reads and writes the classic libpcap capture file format and
// provides the in-memory capture structures the analysis pipeline consumes:
// timestamped records, per-MAC capture sets (the testbed stores one file per
// device MAC, like the MonIoTr AP), and the Appendix C.1 local-traffic
// filter.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// Record is one captured frame with its capture timestamp.
type Record struct {
	Time time.Time
	Data []byte

	// pkt is the decode-once cache attached by Index. It rides along on
	// copies of the Record value, so slices derived from an indexed capture
	// keep the cache.
	pkt *layers.Packet
}

// Decode parses the record's frame. Records that came from an Index return
// the shared pre-parsed layers; the returned packet must be treated as
// read-only. Un-indexed records decode on every call.
func (r Record) Decode() *layers.Packet {
	if r.pkt != nil {
		return r.pkt
	}
	return layers.Decode(r.Data)
}

const (
	magicMicros = 0xa1b2c3d4
	linkEN10MB  = 1
)

// defaultSnaplen is the conventional tcpdump snapshot length. WriteFile
// raises the header's snaplen above it when a record is larger, so caplen
// never exceeds the declared snaplen.
const defaultSnaplen = 65535

// WriteFile writes records to w in libpcap format (microsecond timestamps,
// Ethernet link type). Output is buffered internally, so passing a raw
// *os.File costs two syscalls total, not two per record. The global header's
// snaplen is the maximum of 65535 and the largest record, keeping the
// invariant pcap consumers rely on: caplen ≤ snaplen for every record.
func WriteFile(w io.Writer, records []Record) error {
	snaplen := uint32(defaultSnaplen)
	for _, r := range records {
		if l := uint32(len(r.Data)); l > snaplen {
			snaplen = l
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEN10MB)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, r := range records {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.Time.Unix()))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(r.Time.Nanosecond()/1000))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Data)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(r.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile parses a libpcap file produced by WriteFile (or tcpdump with
// microsecond timestamps and Ethernet framing).
func ReadFile(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	if magic != magicMicros {
		return nil, fmt.Errorf("pcap: unsupported magic %#x", magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkEN10MB {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var records []Record
	var rec [16]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return records, nil
			}
			return nil, fmt.Errorf("pcap: short record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		capLen := binary.LittleEndian.Uint32(rec[8:12])
		if capLen > 1<<20 {
			return nil, fmt.Errorf("pcap: implausible capture length %d", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: short record body: %w", err)
		}
		records = append(records, Record{
			Time: time.Unix(int64(sec), int64(usec)*1000).UTC(),
			Data: data,
		})
	}
}

// Capture accumulates frames at the AP tap, split per source MAC like the
// MonIoTr testbed's per-device tcpdump files. All frames are also kept in
// arrival order for whole-network analyses.
type Capture struct {
	All   []Record
	ByMAC map[netx.MAC][]Record
}

// NewCapture returns an empty capture.
func NewCapture() *Capture {
	return &Capture{ByMAC: make(map[netx.MAC][]Record)}
}

// Add records a frame captured at t.
func (c *Capture) Add(t time.Time, frame []byte) {
	rec := Record{Time: t, Data: frame}
	c.All = append(c.All, rec)
	if len(frame) >= 14 {
		var eth layers.Ethernet
		if eth.DecodeFromBytes(frame) == nil {
			c.ByMAC[eth.Src] = append(c.ByMAC[eth.Src], rec)
		}
	}
}

// Len reports the total number of captured frames.
func (c *Capture) Len() int { return len(c.All) }

// MACs returns the source MACs observed, in stable (sorted) order.
func (c *Capture) MACs() []netx.MAC {
	macs := make([]netx.MAC, 0, len(c.ByMAC))
	for m := range c.ByMAC {
		macs = append(macs, m)
	}
	sort.Slice(macs, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if macs[i][k] != macs[j][k] {
				return macs[i][k] < macs[j][k]
			}
		}
		return false
	})
	return macs
}

// FilterLocal returns the records passing the Appendix C.1 local-traffic
// filter: local unicast IP, multicast/broadcast destination, or non-IP
// unicast.
func FilterLocal(records []Record) []Record {
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if r.Decode().IsLocal() {
			out = append(out, r)
		}
	}
	return out
}

// Packets decodes every record once, in order. Analyses that need multiple
// passes should call this once and share the slice.
func Packets(records []Record) []*layers.Packet {
	out := make([]*layers.Packet, len(records))
	for i, r := range records {
		out[i] = r.Decode()
	}
	return out
}
