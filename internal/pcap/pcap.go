// Package pcap reads and writes the classic libpcap capture file format and
// provides the in-memory capture structures the analysis pipeline consumes:
// timestamped records, per-MAC capture sets (the testbed stores one file per
// device MAC, like the MonIoTr AP), and the Appendix C.1 local-traffic
// filter.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// Record is one captured frame with its capture timestamp.
type Record struct {
	Time time.Time
	Data []byte

	// pkt is the decode-once cache attached by Index. It rides along on
	// copies of the Record value, so slices derived from an indexed capture
	// keep the cache.
	pkt *layers.Packet
}

// Decode parses the record's frame. Records that came from an Index return
// the shared pre-parsed layers; the returned packet must be treated as
// read-only. Un-indexed records decode on every call.
func (r Record) Decode() *layers.Packet {
	if r.pkt != nil {
		return r.pkt
	}
	return layers.Decode(r.Data)
}

const (
	magicMicros = 0xa1b2c3d4
	linkEN10MB  = 1
)

// defaultSnaplen is the conventional tcpdump snapshot length. WriteFile
// raises the header's snaplen above it when a record is larger, so caplen
// never exceeds the declared snaplen.
const defaultSnaplen = 65535

// WriteFile writes records to w in libpcap format (microsecond timestamps,
// Ethernet link type). Output is buffered internally, so passing a raw
// *os.File costs two syscalls total, not two per record. The global header's
// snaplen is the maximum of 65535 and the largest record, keeping the
// invariant pcap consumers rely on: caplen ≤ snaplen for every record.
func WriteFile(w io.Writer, records []Record) error {
	snaplen := uint32(defaultSnaplen)
	for _, r := range records {
		if l := uint32(len(r.Data)); l > snaplen {
			snaplen = l
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkEN10MB)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, r := range records {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(r.Time.Unix()))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(r.Time.Nanosecond()/1000))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Data)))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if _, err := bw.Write(r.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DefaultMaxRecordBytes bounds a single record's captured length: larger
// declared lengths are rejected as implausible before any allocation, so a
// corrupt (or hostile) record header can never force a huge allocation.
const DefaultMaxRecordBytes = 1 << 20

// Reader streams records out of a libpcap stream one at a time, so callers
// — most importantly the iotserve upload path — never hold a whole capture
// body in memory at once. Per-record allocation is bounded: Next allocates
// exactly the record's captured length, and declared lengths above the
// configured maximum are rejected before allocating.
//
// Reader errors are sticky: after any error (including io.EOF) every later
// Next call returns the same error.
type Reader struct {
	r         io.Reader
	maxRecord uint32
	err       error
}

// NewReader validates the 24-byte global header (magic, link type) and
// returns a streaming reader positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	if magic != magicMicros {
		return nil, fmt.Errorf("pcap: unsupported magic %#x", magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkEN10MB {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{r: r, maxRecord: DefaultMaxRecordBytes}, nil
}

// SetMaxRecordBytes tightens (or loosens) the per-record capture-length
// bound. Zero restores the default.
func (rd *Reader) SetMaxRecordBytes(n uint32) {
	if n == 0 {
		n = DefaultMaxRecordBytes
	}
	rd.maxRecord = n
}

// Next returns the next record, or io.EOF cleanly at end of stream. A
// truncated record header or body, or an implausible declared length, is an
// error (never silently dropped — the serving layer turns these into 400s).
func (rd *Reader) Next() (Record, error) {
	if rd.err != nil {
		return Record{}, rd.err
	}
	var rec [16]byte
	if _, err := io.ReadFull(rd.r, rec[:]); err != nil {
		if err == io.EOF {
			rd.err = io.EOF
			return Record{}, io.EOF
		}
		rd.err = fmt.Errorf("pcap: short record header: %w", err)
		return Record{}, rd.err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	if capLen > rd.maxRecord {
		rd.err = fmt.Errorf("pcap: implausible capture length %d", capLen)
		return Record{}, rd.err
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(rd.r, data); err != nil {
		rd.err = fmt.Errorf("pcap: short record body: %w", err)
		return Record{}, rd.err
	}
	return Record{
		Time: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data: data,
	}, nil
}

// ReadFile parses a libpcap file produced by WriteFile (or tcpdump with
// microsecond timestamps and Ethernet framing). It is a convenience wrapper
// over Reader that collects every record.
func ReadFile(r io.Reader) ([]Record, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var records []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
}

// Capture accumulates frames at the AP tap, split per source MAC like the
// MonIoTr testbed's per-device tcpdump files. All frames are also kept in
// arrival order for whole-network analyses.
type Capture struct {
	All   []Record
	ByMAC map[netx.MAC][]Record
}

// NewCapture returns an empty capture.
func NewCapture() *Capture {
	return &Capture{ByMAC: make(map[netx.MAC][]Record)}
}

// Add records a frame captured at t.
func (c *Capture) Add(t time.Time, frame []byte) {
	rec := Record{Time: t, Data: frame}
	c.All = append(c.All, rec)
	if len(frame) >= 14 {
		var eth layers.Ethernet
		if eth.DecodeFromBytes(frame) == nil {
			c.ByMAC[eth.Src] = append(c.ByMAC[eth.Src], rec)
		}
	}
}

// Len reports the total number of captured frames.
func (c *Capture) Len() int { return len(c.All) }

// MACs returns the source MACs observed, in stable (sorted) order.
func (c *Capture) MACs() []netx.MAC {
	macs := make([]netx.MAC, 0, len(c.ByMAC))
	for m := range c.ByMAC {
		macs = append(macs, m)
	}
	sort.Slice(macs, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if macs[i][k] != macs[j][k] {
				return macs[i][k] < macs[j][k]
			}
		}
		return false
	})
	return macs
}

// FilterLocal returns the records passing the Appendix C.1 local-traffic
// filter: local unicast IP, multicast/broadcast destination, or non-IP
// unicast.
func FilterLocal(records []Record) []Record {
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if r.Decode().IsLocal() {
			out = append(out, r)
		}
	}
	return out
}

// Packets decodes every record once, in order. Analyses that need multiple
// passes should call this once and share the slice.
func Packets(records []Record) []*layers.Packet {
	out := make([]*layers.Packet, len(records))
	for i, r := range records {
		out[i] = r.Decode()
	}
	return out
}
