package pcap

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// TestStreamEquivalenceProperty: for random record sets, the streaming
// Reader must yield exactly the records ReadFile returns — same count, same
// timestamps, same bytes. ReadFile is itself a wrapper over Reader, so the
// property is checked against a chunked reader too (records arriving byte by
// byte over a network connection must decode identically).
func TestStreamEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 42, 99} {
		rng := rand.New(rand.NewSource(seed))
		records := synthRecords(t, rng, 150)
		var buf bytes.Buffer
		if err := WriteFile(&buf, records); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}

		whole, err := ReadFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ReadFile: %v", seed, err)
		}

		// Stream through a reader that returns at most 7 bytes per Read —
		// the pathological chunking a slow TCP upload produces.
		rd, err := NewReader(iotest7{bytes.NewReader(buf.Bytes())})
		if err != nil {
			t.Fatalf("seed %d: NewReader: %v", seed, err)
		}
		var streamed []Record
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: Next: %v", seed, err)
			}
			streamed = append(streamed, rec)
		}

		if len(streamed) != len(whole) || len(streamed) != len(records) {
			t.Fatalf("seed %d: %d records in, ReadFile %d, streamed %d",
				seed, len(records), len(whole), len(streamed))
		}
		for i := range whole {
			if !whole[i].Time.Equal(streamed[i].Time) {
				t.Fatalf("seed %d: record %d time %v != %v", seed, i, whole[i].Time, streamed[i].Time)
			}
			if !bytes.Equal(whole[i].Data, streamed[i].Data) {
				t.Fatalf("seed %d: record %d bytes differ between ReadFile and Reader", seed, i)
			}
		}
	}
}

// iotest7 caps each Read at 7 bytes to exercise partial reads.
type iotest7 struct{ r io.Reader }

func (c iotest7) Read(p []byte) (int, error) {
	if len(p) > 7 {
		p = p[:7]
	}
	return c.r.Read(p)
}

// TestStreamTruncationProperty: every strict prefix of a valid capture must
// produce a clean error path — either a short-header error from NewReader, a
// clean EOF exactly at a record boundary, or a short record header/body
// error. No truncation point may panic or fabricate records.
func TestStreamTruncationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	records := synthRecords(t, rng, 20)
	var buf bytes.Buffer
	if err := WriteFile(&buf, records); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	boundaries := map[int]bool{24: true} // offsets where EOF is legitimate
	off := 24
	for _, r := range records {
		off += 16 + len(r.Data)
		boundaries[off] = true
	}

	for cut := 0; cut < len(full); cut++ {
		rd, err := NewReader(bytes.NewReader(full[:cut]))
		if cut < 24 {
			if err == nil {
				t.Fatalf("cut %d: header accepted with only %d bytes", cut, cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		n := 0
		var last error
		for {
			rec, err := rd.Next()
			if err != nil {
				last = err
				break
			}
			if len(rec.Data) > DefaultMaxRecordBytes {
				t.Fatalf("cut %d: oversized record escaped the bound", cut)
			}
			n++
		}
		if boundaries[cut] {
			if last != io.EOF {
				t.Fatalf("cut %d at record boundary: want io.EOF, got %v", cut, last)
			}
		} else if last == io.EOF {
			t.Fatalf("cut %d mid-record: got clean EOF after %d records", cut, n)
		}
		if n > len(records) {
			t.Fatalf("cut %d: fabricated records (%d > %d)", cut, n, len(records))
		}
	}
}

// TestReaderStickyError: after a malformed record the reader keeps
// returning the same error instead of resynchronizing on garbage.
func TestReaderStickyError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, []Record{}); err != nil {
		t.Fatal(err)
	}
	// Append a record header declaring an implausible length.
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, err1 := rd.Next()
	if err1 == nil || !strings.Contains(err1.Error(), "implausible") {
		t.Fatalf("want implausible-length error, got %v", err1)
	}
	_, err2 := rd.Next()
	if err2 != err1 {
		t.Fatalf("error not sticky: %v then %v", err1, err2)
	}
}

// TestReaderMaxRecordBytes: the per-record bound is enforced before
// allocation and is adjustable.
func TestReaderMaxRecordBytes(t *testing.T) {
	records := []Record{{Data: bytes.Repeat([]byte{0xab}, 4096)}}
	var buf bytes.Buffer
	if err := WriteFile(&buf, records); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rd.SetMaxRecordBytes(1024)
	if _, err := rd.Next(); err == nil {
		t.Fatal("4096-byte record accepted under a 1024-byte bound")
	}
	rd2, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rd2.SetMaxRecordBytes(0) // restore default
	if _, err := rd2.Next(); err != nil {
		t.Fatalf("default bound rejected a 4 KiB record: %v", err)
	}
}
