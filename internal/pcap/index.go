package pcap

import (
	"sort"

	"iotlan/internal/engine"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// Index is the decode-once view of a finished capture: every record's
// layers parsed exactly one time (sharded across workers), plus the derived
// views the analyses keep rebuilding — the Appendix C.1 local-traffic
// subset, per-source-MAC record lists, and per-protocol record lists.
//
// The index is immutable after construction and safe for concurrent
// readers; the artifact engine shares one Index across every artifact
// instead of letting each analysis re-decode the capture.
type Index struct {
	// Records mirrors the input slice with the decode cache attached; a
	// Record copied out of this slice keeps its parsed layers.
	Records []Record

	packets []*layers.Packet
	local   []Record
	byMAC   map[netx.MAC][]Record
	byProto map[string][]Record
}

// NewIndex decodes records across workers (values < 1 mean one per CPU) and
// builds the derived views. The layout is deterministic: packets land at
// their record's index and views are built in capture order, so any worker
// count yields an identical index.
func NewIndex(records []Record, workers int) *Index {
	ix := &Index{
		Records: make([]Record, len(records)),
		packets: make([]*layers.Packet, len(records)),
		byMAC:   make(map[netx.MAC][]Record),
		byProto: make(map[string][]Record),
	}
	copy(ix.Records, records)
	engine.ForEachShard(len(records), workers, func(_ int, r engine.Range) {
		for i := r.Start; i < r.End; i++ {
			p := layers.Decode(ix.Records[i].Data)
			ix.packets[i] = p
			ix.Records[i].pkt = p
		}
	})
	// View assembly stays serial: it is cheap relative to decoding and
	// capture-order appends keep every view deterministic.
	for i := range ix.Records {
		p := ix.packets[i]
		rec := ix.Records[i]
		if p.IsLocal() {
			ix.local = append(ix.local, rec)
		}
		if p.HasEth {
			ix.byMAC[p.Eth.Src] = append(ix.byMAC[p.Eth.Src], rec)
		}
		ix.byProto[p.L3Name()] = append(ix.byProto[p.L3Name()], rec)
	}
	return ix
}

// Len reports the number of indexed records.
func (ix *Index) Len() int { return len(ix.Records) }

// Packets returns the parsed layers, aligned with Records. Read-only.
func (ix *Index) Packets() []*layers.Packet { return ix.packets }

// Local returns the records passing the Appendix C.1 local-traffic filter,
// in capture order, with decode caches attached.
func (ix *Index) Local() []Record { return ix.local }

// ByMAC returns the records sourced by one MAC, in capture order.
func (ix *Index) ByMAC(mac netx.MAC) []Record { return ix.byMAC[mac] }

// ByProto returns the records whose L3Name matches name (e.g. "ARP",
// "UDP", "TCP", "ICMPv6"), in capture order.
func (ix *Index) ByProto(name string) []Record { return ix.byProto[name] }

// Protocols lists the observed L3Name labels, sorted.
func (ix *Index) Protocols() []string {
	out := make([]string, 0, len(ix.byProto))
	for name := range ix.byProto {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
