package pcap

import (
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// testFrame builds a minimal broadcast Ethernet frame from src: an ARP
// request, or an unknown-EtherType frame (L3Name "UNKNOWN-L2").
func testFrame(t *testing.T, src netx.MAC, arp bool) []byte {
	t.Helper()
	eth := layers.Ethernet{Src: src, Dst: netx.Broadcast, EtherType: 0x88b5}
	var payload layers.Serializable = layers.RawPayload("xx")
	if arp {
		eth.EtherType = layers.EtherTypeARP
		payload = &layers.ARP{Op: layers.ARPRequest, SenderHW: src}
	}
	b, err := layers.Serialize(&eth, payload)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testRecords(t *testing.T) []Record {
	t.Helper()
	macA := netx.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB := netx.MAC{0x02, 0, 0, 0, 0, 0x0b}
	base := time.Unix(1000, 0).UTC()
	var recs []Record
	for i := 0; i < 20; i++ {
		src := macA
		if i%3 == 0 {
			src = macB
		}
		recs = append(recs, Record{Time: base.Add(time.Duration(i) * time.Second), Data: testFrame(t, src, i%2 == 0)})
	}
	return recs
}

func TestIndexDecodeOnce(t *testing.T) {
	recs := testRecords(t)
	ix := NewIndex(recs, 4)
	if ix.Len() != len(recs) {
		t.Fatalf("index len %d", ix.Len())
	}
	for i, r := range ix.Records {
		// Cached: Decode must return the exact packet stored at index i.
		if r.Decode() != ix.Packets()[i] {
			t.Fatalf("record %d not cache-backed", i)
		}
		// A copy of the record keeps the cache.
		cp := r
		if cp.Decode() != ix.Packets()[i] {
			t.Fatalf("record %d copy lost the cache", i)
		}
	}
	// The original (un-indexed) records still decode fresh each call.
	if recs[0].Decode() == recs[0].Decode() {
		t.Fatal("un-indexed record unexpectedly cached")
	}
}

func TestIndexViewsDeterministicAcrossWorkers(t *testing.T) {
	recs := testRecords(t)
	a := NewIndex(recs, 1)
	b := NewIndex(recs, 8)
	if len(a.Local()) != len(b.Local()) {
		t.Fatalf("local views differ: %d vs %d", len(a.Local()), len(b.Local()))
	}
	for _, proto := range a.Protocols() {
		ra, rb := a.ByProto(proto), b.ByProto(proto)
		if len(ra) != len(rb) {
			t.Fatalf("%s view differs: %d vs %d", proto, len(ra), len(rb))
		}
		for i := range ra {
			if !ra[i].Time.Equal(rb[i].Time) {
				t.Fatalf("%s view order differs at %d", proto, i)
			}
		}
	}
	macB := netx.MAC{0x02, 0, 0, 0, 0, 0x0b}
	if len(a.ByMAC(macB)) == 0 || len(a.ByMAC(macB)) != len(b.ByMAC(macB)) {
		t.Fatalf("per-MAC views differ: %d vs %d", len(a.ByMAC(macB)), len(b.ByMAC(macB)))
	}
}

func TestIndexProtocolViews(t *testing.T) {
	recs := testRecords(t)
	ix := NewIndex(recs, 2)
	arp := ix.ByProto("ARP")
	if len(arp) != 10 {
		t.Fatalf("ARP view: %d records, want 10", len(arp))
	}
	for _, r := range arp {
		if !r.Decode().HasARP {
			t.Fatal("non-ARP record in ARP view")
		}
	}
	total := 0
	for _, proto := range ix.Protocols() {
		total += len(ix.ByProto(proto))
	}
	if total != ix.Len() {
		t.Fatalf("protocol views cover %d of %d records", total, ix.Len())
	}
}
