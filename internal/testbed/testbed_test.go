package testbed

import (
	"strings"
	"testing"
	"time"

	"iotlan/internal/pcap"
)

func TestLabBootsAllDevices(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(10 * time.Minute)
	addressed := 0
	for _, d := range lab.Devices {
		if d.IP().IsValid() {
			addressed++
		}
	}
	if addressed != len(lab.Devices) {
		t.Fatalf("%d/%d devices got DHCP leases", addressed, len(lab.Devices))
	}
	if lab.Capture.Len() == 0 {
		t.Fatal("no traffic captured")
	}
}

func TestLabDHCPLeasesRecordHostnames(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(5 * time.Minute)
	withHostname := 0
	for _, lease := range lab.DHCP.Leases {
		if lease.Hostname != "" {
			withHostname++
		}
	}
	// §5.1: hostnames identified for ~67% of devices; all our DHCP clients
	// currently send one, so expect a clear majority.
	if withHostname < len(lab.Devices)/2 {
		t.Fatalf("only %d leases carry hostnames", withHostname)
	}
}

func TestIdleTrafficContainsCoreProtocols(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(30 * time.Minute)
	seen := map[string]bool{}
	for _, p := range pcap.Packets(lab.Capture.All) {
		seen[p.L3Name()] = true
		if p.HasUDP {
			switch p.UDP.DstPort {
			case 5353:
				seen["mDNS"] = true
			case 1900:
				seen["SSDP"] = true
			case 67, 68:
				seen["DHCP"] = true
			case 9999:
				seen["TPLINK"] = true
			case 6666, 6667:
				seen["TuyaLP"] = true
			}
		}
	}
	for _, want := range []string{"ARP", "DHCP", "mDNS", "SSDP", "TPLINK", "TuyaLP", "ICMPv6", "IGMP", "EAPOL"} {
		if !seen[want] {
			t.Errorf("idle capture lacks %s traffic", want)
		}
	}
}

func TestDeterministicCapture(t *testing.T) {
	run := func() int {
		lab := New(42)
		lab.Start()
		lab.RunIdle(10 * time.Minute)
		return lab.Capture.Len()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different captures: %d vs %d frames", a, b)
	}
}

func TestDeterministicMetricsSnapshot(t *testing.T) {
	run := func() []byte {
		lab := New(42)
		lab.Start()
		lab.RunIdle(10 * time.Minute)
		return lab.Telemetry().Registry.Snapshot()
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed produced different metrics snapshots:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty metrics snapshot")
	}
}

func TestSummaryReflectsRegistry(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(5 * time.Minute)
	reg := lab.Telemetry().Registry
	if reg.CounterValue("lan_frames_delivered") == 0 {
		t.Fatal("no frames delivered recorded")
	}
	if reg.Total("sim_events_processed") == 0 {
		t.Fatal("no events processed recorded")
	}
	s := lab.Summary()
	for _, want := range []string{"devices=", "frames=", "dropped=", "events=", "pending=", "interactions="} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q lacks %q", s, want)
		}
	}
}

func TestInteractionsGenerateUnicastTraffic(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(8 * time.Minute)
	before := lab.Capture.Len()
	lab.Interact(40)
	if lab.Interactions != 40 {
		t.Fatalf("interactions counter: %d", lab.Interactions)
	}
	// Interactions must add TCP traffic to port 9999 (TP-Link control).
	sawControl := false
	for _, r := range lab.Capture.All[before:] {
		p := r.Decode()
		if p.HasTCP && (p.TCP.DstPort == 9999 || p.TCP.SrcPort == 9999) {
			sawControl = true
			break
		}
	}
	if !sawControl {
		t.Fatal("no TPLINK-SHP control traffic from interactions")
	}
}

func TestPlatformClustersTalk(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(45 * time.Minute)
	// TLS cluster traffic: device-to-device TCP with TLS-looking payloads.
	tlsPairs := map[[2]string]bool{}
	ipToName := map[string]string{}
	for _, d := range lab.Devices {
		if d.IP().IsValid() {
			ipToName[d.IP().String()] = d.Profile.Name
		}
	}
	for _, p := range pcap.Packets(lab.Capture.All) {
		if p.HasTCP && len(p.AppPayload) > 5 && p.AppPayload[0] == 22 && p.AppPayload[1] == 3 {
			src, dst := ipToName[p.SrcIP().String()], ipToName[p.DstIP().String()]
			if src != "" && dst != "" {
				tlsPairs[[2]string{src, dst}] = true
			}
		}
	}
	if len(tlsPairs) < 3 {
		t.Fatalf("only %d device-to-device TLS pairs observed", len(tlsPairs))
	}
}

func TestAddHost(t *testing.T) {
	lab := New(1)
	h := lab.AddHost(200, [6]byte{0x02, 0xaa, 0, 0, 0, 1})
	if h.IPv4().String() != "192.168.10.200" {
		t.Fatalf("aux host IP %v", h.IPv4())
	}
}

// TestLabVNet exercises the lazy Pump/VNet accessors: two auxiliary hosts
// exchange bytes over stdlib-shaped conns while the full 93-device lab
// generates its usual traffic on the same scheduler.
func TestLabVNet(t *testing.T) {
	lab := New(3)
	a := lab.AddHost(200, [6]byte{2, 0xaa, 0, 0, 0, 1})
	b := lab.AddHost(201, [6]byte{2, 0xaa, 0, 0, 0, 2})
	na, nb := lab.VNet(a), lab.VNet(b)
	if na.Pump() != lab.Pump() || nb.Pump() != lab.Pump() {
		t.Fatal("VNet facades must share the lab's pump")
	}
	l, err := nb.Listen("tcp", ":9000")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := lab.Pump().Go(func() {
		c, err := l.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer c.Close()
		buf := make([]byte, 16)
		n, err := c.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		c.Write(buf[:n])
	})
	cli := lab.Pump().Go(func() {
		c, err := na.Dial("tcp", "192.168.10.201:9000")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		defer c.Close()
		c.Write([]byte("lab-ping"))
		buf := make([]byte, 16)
		n, err := c.Read(buf)
		if err != nil || string(buf[:n]) != "lab-ping" {
			t.Errorf("echo: %q err %v", buf[:n], err)
		}
	})
	lab.Pump().RunFor(30 * time.Second)
	for _, done := range []<-chan struct{}{srv, cli} {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("in-sim goroutine did not finish")
		}
	}
}
