// Package testbed assembles the MonIoTr-style lab: a router/AP with DHCP
// and a capture tap, the full 93-device catalog, platform peer wiring that
// produces the Figure 1/Figure 4 communication clusters, and the scripted
// interaction workload of §3.1.
package testbed

import (
	"fmt"
	"net/netip"
	"time"

	"iotlan/internal/chaos"
	"iotlan/internal/device"
	"iotlan/internal/dhcp"
	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/pcap"
	"iotlan/internal/resident"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
	"iotlan/internal/tplink"
	"iotlan/internal/vnet"
)

// RouterIP is the lab gateway address (192.168.10.0/24 per Appendix C.1).
var RouterIP = netip.MustParseAddr("192.168.10.1")

// Lab is a running simulated testbed.
type Lab struct {
	Sched   *sim.Scheduler
	Net     *lan.Network
	Capture *pcap.Capture
	Router  *stack.Host
	DHCP    *dhcp.Server
	Devices []*device.Device

	// Chaos is the fault-injection engine; present even when the plan is
	// disabled so callers can read Faults() unconditionally.
	Chaos *chaos.Engine

	// Residents is the compiled household schedule, nil unless
	// WithResidents enabled one. Start schedules its events on the virtual
	// clock; see resident.go for the executor.
	Residents *resident.Schedule

	byName map[string]*device.Device
	// Interactions counts scripted interaction events (§3.1's 7,191).
	Interactions  int
	cInteractions *obs.Counter

	pump *vnet.Pump
}

// Telemetry returns the simulation-wide metrics/tracing hub.
func (l *Lab) Telemetry() *obs.Telemetry { return l.Sched.Telemetry }

// Pump returns the lab's shared vnet pump, creating it on first use. Once
// any vnet connection is in play, drive the simulation through
// Pump().Run/RunFor instead of Sched.Run — the pump is what keeps blocking
// goroutine I/O deterministic.
func (l *Lab) Pump() *vnet.Pump {
	if l.pump == nil {
		l.pump = vnet.NewPump(l.Sched)
	}
	return l.pump
}

// VNet returns a stdlib-shaped network facade (net.Conn / net.Listener /
// net.PacketConn) bound to h, sharing the lab's pump. h is typically a
// fresh station host; pass l.Router to serve from the gateway address.
func (l *Lab) VNet(h *stack.Host) *vnet.Net { return vnet.New(l.Pump(), h) }

// Option configures a Lab at construction time.
type Option func(*labConfig)

type labConfig struct {
	plan      chaos.Plan
	residents resident.Plan
}

// WithChaos enables deterministic fault injection under the given plan.
func WithChaos(plan chaos.Plan) Option {
	return func(c *labConfig) { c.plan = plan }
}

// WithResidents compiles and executes a persona-driven household schedule:
// diurnal device interactions, app sessions, occupancy-correlated sensor
// chatter, and longitudinal drift (devices added/retired, firmware
// updates). NewWith panics on an invalid plan (unknown persona name) —
// validate names against resident.PersonaNames() first.
func WithResidents(plan resident.Plan) Option {
	return func(c *labConfig) { c.residents = plan }
}

// New builds a lab with the full catalog on a deterministic seed.
func New(seed int64, opts ...Option) *Lab {
	return NewWith(seed, device.Catalog(), opts...)
}

// NewWith builds a lab from a custom profile list (subset labs for tests).
func NewWith(seed int64, profiles []*device.Profile, opts ...Option) *Lab {
	var cfg labConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sched := sim.NewScheduler(seed)
	network := lan.New(sched)
	capture := pcap.NewCapture()
	network.Tap(capture.Add)
	// The chaos engine attaches before any other construction so its corrupt
	// tap ordering (after the capture tap) is fixed and deterministic.
	eng := chaos.New(sched, network, cfg.plan)

	router := stack.NewHost(network, netx.MAC{0x02, 0x42, 0xc0, 0xa8, 0x0a, 0x01}, stack.DefaultPolicy)
	router.SetIPv4(RouterIP)
	server := dhcp.NewServer(router)

	lab := &Lab{
		Sched: sched, Net: network, Capture: capture,
		Router: router, DHCP: server, Chaos: eng,
		byName:        make(map[string]*device.Device),
		cInteractions: sched.Telemetry.Registry.Counter("testbed_interactions"),
	}
	sched.Telemetry.Registry.Gauge("testbed_devices").Set(int64(len(profiles)))
	for i, p := range profiles {
		mac := netx.MAC{p.OUI[0], p.OUI[1], p.OUI[2], 0x00, byte(i >> 8), byte(i)}
		// Devices that ignore scans also run quieter stacks.
		policy := stack.DefaultPolicy
		policy.RespondARPBroadcast = !p.SilentToBroadcastARP
		if !p.RespondsToScans {
			policy.RespondEcho = false
			policy.RespondUDPUnreachable = false
			policy.RespondProtoUnreachable = false
			policy.RespondTCPRst = false
		}
		policy.EnableIPv6 = p.IPv6
		host := stack.NewHost(network, mac, policy)
		d := device.New(p, host)
		// Stable addresses keep multi-day captures comparable.
		ip := RouterIP.As4()
		ip[3] = byte(10 + i)
		if int(ip[3]) < 10 { // wrapped past .255 — larger catalogs only
			ip[2]++
		}
		server.Reserved[mac] = netip.AddrFrom4(ip)
		lab.Devices = append(lab.Devices, d)
		lab.byName[p.Name] = d
	}
	lab.wirePeers()
	if cfg.residents.Enabled() {
		names := make([]string, len(profiles))
		for i, p := range profiles {
			names[i] = p.Name
		}
		sr, err := resident.Compile(seed, cfg.residents,
			resident.World{Devices: names, InteractionKinds: NumInteractionKinds})
		if err != nil {
			panic(fmt.Sprintf("testbed: %v", err))
		}
		lab.Residents = sr
	}
	return lab
}

// Device returns a device by catalog name, or nil.
func (l *Lab) Device(name string) *device.Device { return l.byName[name] }

// wirePeers connects same-platform devices (the Figure 4 clusters) and
// schedules their periodic control traffic.
func (l *Lab) wirePeers() {
	clusters := map[device.Platform][]*device.Device{}
	for _, d := range l.Devices {
		if p := d.Profile.Platform; p != device.PlatformNone {
			clusters[p] = append(clusters[p], d)
		}
	}
	for _, members := range clusters {
		for _, d := range members {
			for _, peer := range members {
				if peer != d {
					d.Peers = append(d.Peers, peer)
				}
			}
		}
	}
}

// Start boots every device, staggered to avoid synchronized DHCP storms,
// then schedules intra-platform control traffic.
func (l *Lab) Start() {
	for i, d := range l.Devices {
		d := d
		// Drift add-targets were "bought" mid-run: the resident schedule
		// first-joins them at their EventAdd time instead of boot.
		if l.Residents != nil && l.Residents.IsAdded(d.Profile.Name) {
			continue
		}
		l.Sched.AfterTagged("testbed", time.Duration(i)*300*time.Millisecond, d.Start)
	}
	l.Sched.AfterTagged("testbed", time.Minute, l.schedulePlatformTraffic)
	if l.Chaos.Plan.Churn != nil {
		devs := make([]chaos.Churnable, len(l.Devices))
		for i, d := range l.Devices {
			devs[i] = d
		}
		l.Chaos.StartChurn(devs)
	}
	if l.Residents != nil {
		l.startResidents()
	}
}

// schedulePlatformTraffic drives the TLS/RTP cluster traffic: each platform
// cluster has a coordinator (first member) dialing peers periodically, as
// the Amazon UDP graph (Fig. 4e) shows.
func (l *Lab) schedulePlatformTraffic() {
	clusters := map[device.Platform][]*device.Device{}
	var order []device.Platform
	for _, d := range l.Devices {
		if p := d.Profile.Platform; p != device.PlatformNone {
			if len(clusters[p]) == 0 {
				order = append(order, p)
			}
			clusters[p] = append(clusters[p], d)
		}
	}
	// Scheduling order must be deterministic: same seed, same trace.
	for _, platform := range order {
		members := clusters[platform]
		if len(members) < 2 {
			continue
		}
		coordinator := members[0]
		peers := members[1:]
		i := 0
		l.Sched.EveryTagged("testbed", 30*time.Second, 7*time.Minute, time.Minute, func() {
			peer := peers[i%len(peers)]
			i++
			if coordinator.IP().IsValid() && peer.IP().IsValid() {
				coordinator.DialPeerTLS(peer)
				if coordinator.Profile.RTPPort != 0 && peer.Profile.RTPPort != 0 {
					// Multi-room audio sync flows both ways (RTP + receiver
					// reports), so ~10% of devices source RTP (§4.1).
					coordinator.RTPSync(peer, 4)
					peer.RTPSync(coordinator, 2)
				}
			}
		})
	}
}

// RunIdle advances the lab with no human interaction — the 5-day idle
// capture of §3.1 (shorter windows reproduce the same per-protocol shape).
func (l *Lab) RunIdle(d time.Duration) { l.Sched.RunFor(d) }

// InteractionKind enumerates the scripted stimuli of §3.1.
type InteractionKind int

// Interaction kinds: companion-app control and voice-assistant commands.
const (
	InteractAppControl InteractionKind = iota
	InteractVoiceTPLink
	InteractVoiceCast
	InteractMultiRoomAudio
)

// NumInteractionKinds is the size of the scripted-stimulus repertoire.
const NumInteractionKinds = 4

// InteractOpts parameterizes the scripted interaction loop.
type InteractOpts struct {
	// Pace is the virtual time advanced after each interaction; <= 0 keeps
	// the classic ~5 s pacing of the lab's paced experiments (§3.1).
	Pace time.Duration
}

// Interact performs n scripted interactions round-robin over the kinds and
// devices, advancing the clock ~5 s per interaction like the lab's paced
// experiments.
func (l *Lab) Interact(n int) { l.InteractWith(n, InteractOpts{}) }

// InteractWith is Interact with configurable pacing.
func (l *Lab) InteractWith(n int, opts InteractOpts) {
	pace := opts.Pace
	if pace <= 0 {
		pace = 5 * time.Second
	}
	echos := l.platformMembers(device.PlatformAlexa)
	googles := l.platformMembers(device.PlatformGoogleHome)
	for i := 0; i < n; i++ {
		l.interactAs(InteractionKind(i%NumInteractionKinds), i, echos, googles)
		l.Interactions++
		l.cInteractions.Inc()
		l.Sched.RunFor(pace)
	}
}

// InteractOnce performs a single scripted interaction without advancing the
// clock — the resident scheduler's event-driven entry point. Platform
// members are re-resolved per call, so devices that joined, crashed, or
// retired since the last interaction are seen.
func (l *Lab) InteractOnce(kind InteractionKind, i int) {
	l.interactAs(kind, i,
		l.platformMembers(device.PlatformAlexa),
		l.platformMembers(device.PlatformGoogleHome))
	l.Interactions++
	l.cInteractions.Inc()
}

// interactAs performs one scripted stimulus of the given kind; i varies the
// participating devices round-robin.
func (l *Lab) interactAs(kind InteractionKind, i int, echos, googles []*device.Device) {
	switch kind {
	case InteractAppControl:
		// A companion app toggles the Hue hub over its HTTP API — here
		// the router plays the phone's role to keep Interact
		// self-contained; the app package models real phones.
		if hue := l.Device("hue-hub"); hue != nil && hue.IP().IsValid() {
			conn := l.Router.DialTCP(hue.IP(), 80)
			conn.OnConnect = func(c *stack.TCPConn) {
				c.Send([]byte("GET /api/config HTTP/1.1\r\nHost: hue\r\n\r\n"))
			}
			conn.OnData = func(c *stack.TCPConn, _ []byte) { c.Close() }
		}
	case InteractVoiceTPLink:
		// "Alexa, turn on the plug": an Echo controls the TP-Link plug.
		if len(echos) > 0 {
			if plug := l.Device("tplink-plug"); plug != nil && plug.IP().IsValid() {
				echo := echos[i%len(echos)]
				tplink.Control(echo.Host, plug.IP(), i%2 == 0, nil)
			}
		}
	case InteractVoiceCast:
		// "Hey Google, play …": hub dials a Chromecast peer over TLS.
		if len(googles) >= 2 {
			googles[i%len(googles)].DialPeerTLS(googles[(i+1)%len(googles)])
		}
	case InteractMultiRoomAudio:
		if len(echos) >= 2 {
			echos[0].RTPSync(echos[1+i%(len(echos)-1)], 8)
		}
	}
}

func (l *Lab) platformMembers(p device.Platform) []*device.Device {
	var out []*device.Device
	for _, d := range l.Devices {
		if d.Profile.Platform == p && d.IP().IsValid() {
			out = append(out, d)
		}
	}
	return out
}

// AddHost attaches an auxiliary host (phone, scanner, honeypot) with a
// stable address outside the device range.
func (l *Lab) AddHost(lastOctet byte, mac netx.MAC) *stack.Host {
	h := stack.NewHost(l.Net, mac, stack.DefaultPolicy)
	h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, lastOctet}))
	return h
}

// Summary prints quick stats for CLI tools. Counts come from the metrics
// registry so the line reflects exactly what -metrics would export —
// including frames the LAN dropped, which Capture.Len() never sees.
func (l *Lab) Summary() string {
	reg := l.Sched.Telemetry.Registry
	s := fmt.Sprintf("devices=%d frames=%d dropped=%d events=%d pending=%d interactions=%d virtual=%s",
		len(l.Devices),
		reg.CounterValue("lan_frames_delivered"),
		reg.Total("lan_frames_dropped"),
		reg.Total("sim_events_processed"),
		l.Sched.Pending(),
		reg.CounterValue("testbed_interactions"),
		l.Sched.Now().Sub(sim.Epoch).Truncate(time.Second))
	if l.Chaos.Plan.Enabled() {
		s += fmt.Sprintf(" chaos=%s faults=%d", l.Chaos.Plan, l.Chaos.Faults())
	}
	if l.Residents != nil {
		s += fmt.Sprintf(" residents=[%s] resident_events=%d",
			l.Residents.Plan, reg.Total("resident_events"))
	}
	return s
}
