package testbed

import (
	"testing"
	"time"
)

// TestLongRunResourceStability drives the full lab for six simulated hours
// and asserts no unbounded growth in per-host socket tables, connection
// tables, or the scheduler — the failure mode that would silently corrupt a
// multi-day capture (the paper's idle runs lasted five days).
func TestLongRunResourceStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run stability test skipped in -short mode")
	}
	lab := New(13)
	lab.Start()
	lab.RunIdle(3 * time.Hour)

	snapshot := func() (udp, tcpConns int) {
		for _, d := range lab.Devices {
			udp += len(d.Host.UDPPorts())
			tcpConns += d.Host.OpenConnCount()
		}
		return
	}
	udp1, conns1 := snapshot()
	lab.RunIdle(3 * time.Hour)
	udp2, conns2 := snapshot()

	// Steady state: socket counts must not trend upward hour over hour.
	if udp2 > udp1+20 {
		t.Errorf("UDP socket growth: %d → %d over 3 h (ephemeral leak)", udp1, udp2)
	}
	if conns2 > conns1+20 {
		t.Errorf("TCP conn growth: %d → %d over 3 h (half-open leak)", conns1, conns2)
	}
	// The event queue must stay proportional to the device population, not
	// to elapsed time.
	if pending := lab.Sched.Pending(); pending > 20000 {
		t.Errorf("scheduler backlog %d events after 6 h", pending)
	}
	if lab.Capture.Len() == 0 {
		t.Fatal("no traffic in long run")
	}
}
