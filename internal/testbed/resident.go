package testbed

import (
	"fmt"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/httpx"
	"iotlan/internal/mdns"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/resident"
	"iotlan/internal/sim"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/tplink"
)

// sensorPort is where occupancy sensors report motion/presence to the hub —
// the SmartThings-style local eventing port.
const sensorPort = 39500

// residentRun is the per-lab executor state for a compiled schedule.
type residentRun struct {
	lab    *Lab
	phones map[string]*stack.Host
	events map[resident.EventKind]*obs.Counter
	// seq is the lab-wide interaction sequence, round-robining device
	// participation exactly like the classic Interact loop's index.
	seq int
}

// startResidents materializes the compiled schedule on the virtual clock:
// one phone host per resident, then one sim timer per event. Everything
// derives from the already-compiled schedule, so execution order (and the
// resulting capture) is a pure function of the seed.
func (l *Lab) startResidents() {
	r := &residentRun{
		lab:    l,
		phones: make(map[string]*stack.Host),
		events: make(map[resident.EventKind]*obs.Counter),
	}
	reg := l.Sched.Telemetry.Registry
	for _, k := range []resident.EventKind{
		resident.EventInteract, resident.EventApp, resident.EventSensor,
		resident.EventRetire, resident.EventAdd, resident.EventFirmware,
	} {
		r.events[k] = reg.Counter("resident_events", "kind", k.String())
	}
	for _, ev := range l.Residents.Events {
		if ev.Resident != "" {
			if _, ok := r.phones[ev.Resident]; !ok {
				// Phones live at .150+ — clear of devices (.10+), the app
				// package's phone (.240), scanners (.250+), honeypots (.230).
				// First-event order over a compiled schedule is deterministic.
				idx := len(r.phones)
				mac := netx.MAC{0x02, 0x9e, 0x50, 0x00, 0x00, byte(idx)}
				r.phones[ev.Resident] = l.AddHost(byte(150+idx), mac)
			}
		}
		ev := ev
		l.Sched.AtTagged("resident", sim.Epoch.Add(ev.At), func() { r.exec(ev) })
	}
}

func (r *residentRun) exec(ev resident.Event) {
	l := r.lab
	r.events[ev.Kind].Inc()
	if l.Sched.Tracing() {
		l.Sched.TraceEvent("resident", ev.Kind.String(),
			"resident", ev.Resident, "device", ev.Device, "arg", fmt.Sprint(ev.Arg))
	}
	switch ev.Kind {
	case resident.EventInteract:
		l.InteractOnce(InteractionKind(ev.Arg%NumInteractionKinds), r.seq)
		r.seq++
	case resident.EventApp:
		r.appSession(ev)
	case resident.EventSensor:
		r.sensorEvent(ev)
	case resident.EventRetire:
		l.RetireDevice(ev.Device)
	case resident.EventAdd:
		if d := l.Device(ev.Device); d != nil {
			d.Start()
		}
	case resident.EventFirmware:
		r.firmwareUpdate(ev.Device)
	}
}

// appSession runs one companion-app foreground session from the resident's
// phone: the burst of local discovery (mDNS, SSDP, TP-Link scan) and API
// traffic a phone emits when an IoT app comes to the foreground (§5.1).
// The Arg variant picks which app family the resident opened.
func (r *residentRun) appSession(ev resident.Event) {
	h, ok := r.phones[ev.Resident]
	if !ok {
		return
	}
	l := r.lab
	switch ev.Arg % 3 {
	case 0: // casting app: mDNS browse + a control-API poke
		mdns.Query(h, "_googlecast._tcp.local", false)
		mdns.Query(h, "_hap._tcp.local", false)
		if hue := l.Device("hue-hub"); hue != nil && hue.IP().IsValid() && !hue.Retired {
			httpx.Get(h, hue.IP(), 80, "/api/config", nil, nil)
		}
	case 1: // smart-plug app: SSDP root-device sweep + TP-Link discovery
		ssdp.Search(h, ssdp.TargetRootDevice, nil)
		tplink.Discover(h, nil)
	case 2: // everything-app: full local sweep
		mdns.Query(h, "_services._dns-sd._udp.local", false)
		ssdp.Search(h, ssdp.TargetAll, nil)
		tplink.Discover(h, nil)
	}
}

// sensorEvent emits one occupancy-correlated report: a motion/presence
// datagram from a sensor-class device to the router, the local eventing
// chatter that tracks when somebody is actually in the room.
func (r *residentRun) sensorEvent(ev resident.Event) {
	sensors := r.sensors()
	if len(sensors) == 0 {
		return
	}
	d := sensors[ev.Arg%len(sensors)]
	if !d.Started || d.Retired || !d.IP().IsValid() {
		return // sensor crashed/retired/not yet joined — occupancy unobserved
	}
	payload := fmt.Sprintf(`{"event":"motion","device":"%s","seq":%d}`, d.Profile.Name, ev.Arg)
	d.Host.SendUDP(sensorPort, RouterIP, sensorPort, []byte(payload))
}

// sensors lists the devices that report occupancy: cameras and
// home-automation sensors/hubs, in catalog order.
func (r *residentRun) sensors() []*device.Device {
	var out []*device.Device
	for _, d := range r.lab.Devices {
		if d.Profile.Category == device.Surveillance || d.Profile.Category == device.HomeAutomation {
			out = append(out, d)
		}
	}
	return out
}

// firmwareUpdate applies the update and reboots the device the way real
// updates do: flags flip, then the device drops off the LAN for ~45 s and
// rejoins with a fresh DHCP exchange and the new SSDP banner.
func (r *residentRun) firmwareUpdate(name string) {
	l := r.lab
	d := l.Device(name)
	if d == nil || d.Retired {
		return
	}
	d.UpdateFirmware()
	if d.Crash() {
		l.Sched.AfterTagged("resident", 45*time.Second, d.Restart)
	}
}

// RetireDevice permanently removes a device: it detaches through the crash
// path (in-flight frames to it land in reason=detached drop accounting) and
// the router releases its DHCP lease. Reports whether the device existed
// and was up when retired.
func (l *Lab) RetireDevice(name string) bool {
	d := l.Device(name)
	if d == nil {
		return false
	}
	wasUp := d.Retire()
	l.DHCP.Release(d.MAC())
	return wasUp
}
