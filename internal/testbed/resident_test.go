package testbed

import (
	"strings"
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/obs"
	"iotlan/internal/resident"
)

// residentProfiles is a reduced roster for multi-day resident runs: every
// interaction kind has its participants (echoes, googles, hue-hub,
// tplink-plug), sensors have cameras and automation devices, and drift has a
// plaintext-Tuya firmware-flip target — at a fraction of the 93-device lab's
// per-simulated-day cost.
func residentProfiles() []*device.Profile {
	return device.Subset(
		"echo-1", "echo-2", "echo-3",
		"google-1", "google-2",
		"hue-hub", "tplink-plug", "tplink-bulb",
		"tuya-bulb-jinvoo", "tuya-plug-1",
		"wyze-cam", "ring-doorbell", "arlo-cam-1",
		"smartthings-hub", "nest-thermostat", "wemo-plug",
		"chromecast", "roku-tv",
	)
}

// TestRetireDeviceReleasesLeaseAndDetaches is the churn-edge regression: a
// device retired mid-run must release its DHCP lease and detach through the
// crash path, so frames still in flight toward it land in
// lan_frames_dropped{reason=detached} accounting — not silent loss.
func TestRetireDeviceReleasesLeaseAndDetaches(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(10 * time.Minute)

	victim := lab.Device("hue-hub")
	if victim == nil || !victim.IP().IsValid() {
		t.Fatal("hue-hub did not boot")
	}
	if _, ok := lab.DHCP.Leases[victim.MAC()]; !ok {
		t.Fatal("hue-hub has no lease before retirement")
	}
	reg := lab.Sched.Telemetry.Registry
	dropsBefore := reg.CounterValue(obs.Key("lan_frames_dropped", "reason", "detached"))

	// Launch a frame toward the victim, then retire it before delivery: the
	// LAN resolves recipients at fire time, so the in-flight frame must hit
	// the detached accounting.
	conn := lab.Router.DialTCP(victim.IP(), 80)
	_ = conn
	if !lab.RetireDevice("hue-hub") {
		t.Fatal("RetireDevice reported the device was not up")
	}
	lab.RunIdle(time.Minute)

	if !victim.Retired {
		t.Fatal("device not marked retired")
	}
	if _, ok := lab.DHCP.Leases[victim.MAC()]; ok {
		t.Fatal("retired device still holds a DHCP lease")
	}
	if reg.CounterValue(obs.Key("dhcp_messages", "type", "release")) == 0 {
		t.Fatal("lease release not counted")
	}
	if after := reg.CounterValue(obs.Key("lan_frames_dropped", "reason", "detached")); after <= dropsBefore {
		t.Fatalf("no detached drops recorded (before=%d after=%d)", dropsBefore, after)
	}

	// Retired is forever: Restart must not bring it back (a revived device
	// would re-run DHCP and reacquire a lease), and a second Retire is a
	// reported no-op.
	victim.Restart()
	lab.RunIdle(2 * time.Minute)
	if _, ok := lab.DHCP.Leases[victim.MAC()]; ok {
		t.Fatal("retired device reacquired a lease after Restart")
	}
	if lab.RetireDevice("hue-hub") {
		t.Fatal("second RetireDevice reported success")
	}
}

// TestInteractPacing verifies InteractOpts controls the per-interaction
// clock advance and that the default path is the classic ~5 s.
func TestInteractPacing(t *testing.T) {
	lab := New(1)
	lab.Start()
	lab.RunIdle(5 * time.Minute)

	start := lab.Sched.Now()
	lab.InteractWith(6, InteractOpts{Pace: time.Second})
	if got := lab.Sched.Now().Sub(start); got != 6*time.Second {
		t.Fatalf("custom pace advanced %v, want 6s", got)
	}
	start = lab.Sched.Now()
	lab.Interact(2)
	if got := lab.Sched.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("default pace advanced %v, want 10s", got)
	}
	if lab.Interactions != 8 {
		t.Fatalf("interactions = %d, want 8", lab.Interactions)
	}
}

// TestResidentsDriveLab is the executor smoke test: a resident-enabled lab
// produces interaction/app/sensor events, applies drift, and the summary
// reports them.
func TestResidentsDriveLab(t *testing.T) {
	plan := resident.Household(4, 4)
	lab := NewWith(1, residentProfiles(), WithResidents(plan))
	lab.Start()
	lab.RunIdle(plan.Duration())

	reg := lab.Sched.Telemetry.Registry
	for _, kind := range []string{"interact", "app", "sensor"} {
		if reg.CounterValue(obs.Key("resident_events", "kind", kind)) == 0 {
			t.Errorf("no %s resident events executed", kind)
		}
	}
	if lab.Interactions == 0 {
		t.Error("resident interactions did not increment the lab counter")
	}
	// Drift: retired devices are gone (no lease), updated devices carry a
	// bumped firmware revision.
	for _, name := range lab.Residents.Retired() {
		d := lab.Device(name)
		if !d.Retired {
			t.Errorf("scheduled retirement of %s did not happen", name)
		}
		if _, ok := lab.DHCP.Leases[d.MAC()]; ok {
			t.Errorf("retired %s still holds a lease", name)
		}
	}
	for _, name := range lab.Residents.Updated() {
		if d := lab.Device(name); d.FirmwareRev == 0 {
			t.Errorf("scheduled firmware update of %s did not happen", name)
		}
	}
	for _, name := range lab.Residents.Added() {
		d := lab.Device(name)
		if !d.Started {
			t.Errorf("added device %s never joined", name)
		}
	}
	if s := lab.Summary(); !strings.Contains(s, "residents=") {
		t.Errorf("summary lacks resident stats: %s", s)
	}
}

// TestAddedDeviceJoinsLate verifies drift add-targets do not boot with the
// lab but are up by the end of the run.
func TestAddedDeviceJoinsLate(t *testing.T) {
	plan := resident.Household(4, 4)
	lab := NewWith(7, residentProfiles(), WithResidents(plan))
	if len(lab.Residents.Added()) == 0 {
		t.Fatal("4-day plan compiled no add events")
	}
	lab.Start()
	lab.RunIdle(30 * time.Minute) // well past boot, before drift window
	for _, name := range lab.Residents.Added() {
		if lab.Device(name).Started {
			t.Fatalf("added device %s booted with the lab", name)
		}
	}
	lab.RunIdle(plan.Duration() - 30*time.Minute)
	for _, name := range lab.Residents.Added() {
		if !lab.Device(name).Started {
			t.Fatalf("added device %s never joined", name)
		}
	}
}

