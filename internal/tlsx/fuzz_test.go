package tlsx

import "testing"

// FuzzDecode asserts the TLS record/handshake inspectors are total over
// arbitrary bytes — they run on every TCP payload the classifier sees.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x16, 0x03, 0x03, 0x00, 0x04, 0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = IsTLS(data)
		_, _ = HandshakeVersion(data)
		if r, err := ParseRecord(data); err == nil {
			_ = r.ContentType
			_ = VersionName(r.WireVersion)
		}
	})
}
