// Package tlsx simulates the TLS usage patterns §5.2 analyzes without real
// cryptography: byte-level record framing that classifiers can fingerprint
// (content type 0x16, version bytes), ClientHello/ServerHello negotiation of
// versions 1.0–1.3, certificate metadata (issuer/subject CN, validity,
// self-signed, key size) visible in cleartext for ≤1.2 and hidden for 1.3
// (as on Apple devices), two-way authentication, and opaque application
// records.
//
// Substitution note (DESIGN.md): real X.509 and key exchange are replaced by
// a JSON certificate descriptor and XOR "encryption". Every property the
// paper's analysis reads — versions on the wire, cert lifetimes, key sizes,
// who sends certs — is preserved.
package tlsx

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/netip"
	"time"

	"iotlan/internal/stack"
)

// TLS versions on the wire.
const (
	VersionTLS10 = 0x0301
	VersionTLS11 = 0x0302
	VersionTLS12 = 0x0303
	VersionTLS13 = 0x0304
)

// VersionName renders a version for reports ("TLSv1.2").
func VersionName(v uint16) string {
	switch v {
	case VersionTLS10:
		return "TLSv1.0"
	case VersionTLS11:
		return "TLSv1.1"
	case VersionTLS12:
		return "TLSv1.2"
	case VersionTLS13:
		return "TLSv1.3"
	}
	return fmt.Sprintf("TLS(%#04x)", v)
}

// Record content types.
const (
	RecordHandshake = 22
	RecordAppData   = 23
)

// Handshake message types carried inside handshake records.
const (
	msgClientHello = 1
	msgServerHello = 2
	msgCertificate = 11
	msgFinished    = 20
)

// CertMeta is the simulated certificate: exactly the fields the Nessus-like
// scanner and §5.2 analysis consume.
type CertMeta struct {
	IssuerCN   string    `json:"issuer_cn"`
	SubjectCN  string    `json:"subject_cn"`
	NotBefore  time.Time `json:"not_before"`
	NotAfter   time.Time `json:"not_after"`
	SelfSigned bool      `json:"self_signed"`
	// KeyBits is the symmetric-strength equivalent; 64–122 on Chromecast's
	// port 8009 triggers the CVE-2016-2183 birthday-attack finding.
	KeyBits int `json:"key_bits"`
}

// ValidityYears returns the certificate lifetime in years.
func (c CertMeta) ValidityYears() float64 {
	return c.NotAfter.Sub(c.NotBefore).Hours() / (24 * 365)
}

// Config is a TLS endpoint's policy.
type Config struct {
	// Version is the negotiated version (the server's, which wins here).
	Version uint16
	// Cert is the endpoint's certificate.
	Cert CertMeta
	// RequireClientCert enables two-way authentication (Amazon Echo).
	RequireClientCert bool
}

// record frames a TLS record. TLS 1.3 sets the legacy record version to 1.2
// on the wire, like real stacks.
func record(contentType uint8, version uint16, body []byte) []byte {
	wireVersion := version
	if version == VersionTLS13 {
		wireVersion = VersionTLS12
	}
	out := make([]byte, 5+len(body))
	out[0] = contentType
	binary.BigEndian.PutUint16(out[1:3], wireVersion)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(body)))
	copy(out[5:], body)
	return out
}

type handshakeBody struct {
	Version uint16    `json:"version"`
	SNI     string    `json:"sni,omitempty"`
	Cert    *CertMeta `json:"cert,omitempty"`
	// EncryptedCert marks TLS 1.3 handshakes whose certificates an observer
	// cannot read.
	EncryptedCert bool `json:"encrypted_cert,omitempty"`
	RequestCert   bool `json:"request_cert,omitempty"`
}

func handshake(msgType uint8, version uint16, body handshakeBody) []byte {
	payload, _ := json.Marshal(body)
	msg := make([]byte, 4+len(payload))
	msg[0] = msgType
	msg[1] = byte(len(payload) >> 16)
	msg[2] = byte(len(payload) >> 8)
	msg[3] = byte(len(payload))
	copy(msg[4:], payload)
	return record(RecordHandshake, version, msg)
}

// ParsedRecord is one observer-decoded TLS record.
type ParsedRecord struct {
	ContentType uint8
	WireVersion uint16
	MsgType     uint8 // handshake records only
	Hello       *handshakeBody
}

// ParseRecord decodes the first TLS record in data, the way a passive
// classifier sees it.
func ParseRecord(data []byte) (*ParsedRecord, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("tlsx: short record")
	}
	if data[0] != RecordHandshake && data[0] != RecordAppData {
		return nil, fmt.Errorf("tlsx: unknown content type %d", data[0])
	}
	v := binary.BigEndian.Uint16(data[1:3])
	if v>>8 != 3 {
		return nil, fmt.Errorf("tlsx: bad version %#04x", v)
	}
	n := int(binary.BigEndian.Uint16(data[3:5]))
	if 5+n > len(data) {
		return nil, fmt.Errorf("tlsx: truncated record")
	}
	pr := &ParsedRecord{ContentType: data[0], WireVersion: v}
	if data[0] == RecordHandshake && n >= 4 {
		pr.MsgType = data[5]
		var hb handshakeBody
		if json.Unmarshal(data[9:5+n], &hb) == nil {
			pr.Hello = &hb
		}
	}
	return pr, nil
}

// IsTLS reports whether bytes look like a TLS record (classifier check).
func IsTLS(data []byte) bool {
	return len(data) >= 5 &&
		(data[0] == RecordHandshake || data[0] == RecordAppData) &&
		data[1] == 3 && data[2] <= 4
}

// HandshakeVersion extracts the negotiated version visible to an observer:
// the hello body's version field (which carries 1.3 in the
// supported-versions sense) or the wire version.
func HandshakeVersion(data []byte) (uint16, bool) {
	pr, err := ParseRecord(data)
	if err != nil || pr.ContentType != RecordHandshake || pr.Hello == nil {
		return 0, false
	}
	return pr.Hello.Version, true
}

// obscure XORs app data so payloads are opaque to the classifier but the
// endpoints (and tests) can invert it.
func obscure(b []byte) []byte {
	out := make([]byte, len(b))
	for i, x := range b {
		out[i] = x ^ 0xaa
	}
	return out
}

// Conn is a simulated TLS session over a stack.TCPConn.
type Conn struct {
	TCP    *stack.TCPConn
	Config Config
	// Established reports handshake completion.
	Established bool
	// PeerCert is the certificate received from the peer (zero if the
	// handshake hid it, as TLS 1.3 does).
	PeerCert CertMeta
	// OnData delivers decrypted application payloads.
	OnData func(c *Conn, plaintext []byte)
	// OnEstablished fires when the handshake completes.
	OnEstablished func(c *Conn)

	isClient bool
}

// Server wraps a listening port in simulated TLS.
type Server struct {
	Host   *stack.Host
	Port   uint16
	Config Config
	// OnAccept fires with the established TLS connection.
	OnAccept func(c *Conn)
}

// NewServer starts a TLS server on port.
func NewServer(h *stack.Host, port uint16, cfg Config, onAccept func(c *Conn)) *Server {
	s := &Server{Host: h, Port: port, Config: cfg, OnAccept: onAccept}
	h.ListenTCP(port, s.accept)
	return s
}

func (s *Server) accept(tc *stack.TCPConn) {
	conn := &Conn{TCP: tc, Config: s.Config}
	tc.OnData = func(tc *stack.TCPConn, data []byte) { conn.serverHandle(data, s) }
}

func (c *Conn) serverHandle(data []byte, s *Server) {
	pr, err := ParseRecord(data)
	if err != nil {
		return
	}
	switch {
	case pr.ContentType == RecordHandshake && pr.MsgType == msgClientHello:
		cfg := c.Config
		hide := cfg.Version == VersionTLS13
		body := handshakeBody{Version: cfg.Version, RequestCert: cfg.RequireClientCert, EncryptedCert: hide}
		if !hide {
			cert := cfg.Cert
			body.Cert = &cert
		}
		c.TCP.Send(handshake(msgServerHello, cfg.Version, body))
		if !cfg.RequireClientCert {
			c.finish(s.OnAccept)
		}
	case pr.ContentType == RecordHandshake && pr.MsgType == msgCertificate:
		if pr.Hello != nil && pr.Hello.Cert != nil {
			c.PeerCert = *pr.Hello.Cert
		}
		c.finish(s.OnAccept)
	case pr.ContentType == RecordAppData:
		if c.OnData != nil {
			c.OnData(c, obscure(data[5:]))
		}
	}
}

func (c *Conn) finish(onAccept func(*Conn)) {
	if c.Established {
		return
	}
	c.Established = true
	if onAccept != nil {
		onAccept(c)
	}
	if c.OnEstablished != nil {
		c.OnEstablished(c)
	}
}

// Dial opens a TLS connection to dst:port; Config.Cert may be the zero
// value when the client has no certificate.
func Dial(h *stack.Host, dst netip.Addr, port uint16, cfg Config, sni string) *Conn {
	tc := h.DialTCP(dst, port)
	conn := &Conn{TCP: tc, Config: cfg, isClient: true}
	tc.OnConnect = func(tc *stack.TCPConn) {
		tc.Send(handshake(msgClientHello, cfg.Version, handshakeBody{Version: cfg.Version, SNI: sni}))
	}
	tc.OnData = func(tc *stack.TCPConn, data []byte) { conn.clientHandle(data) }
	return conn
}

// Send transmits plaintext as one opaque application record.
func (c *Conn) Send(plaintext []byte) {
	if !c.Established {
		return
	}
	c.TCP.Send(record(RecordAppData, c.Config.Version, obscure(plaintext)))
}

// Close closes the underlying TCP connection.
func (c *Conn) Close() { c.TCP.Close() }

func (c *Conn) clientHandle(data []byte) {
	pr, err := ParseRecord(data)
	if err != nil {
		return
	}
	switch {
	case pr.ContentType == RecordHandshake && pr.MsgType == msgServerHello:
		if pr.Hello != nil {
			c.Config.Version = pr.Hello.Version
			if pr.Hello.Cert != nil {
				c.PeerCert = *pr.Hello.Cert
			}
			if pr.Hello.RequestCert {
				cert := c.Config.Cert
				c.TCP.Send(handshake(msgCertificate, c.Config.Version, handshakeBody{Version: c.Config.Version, Cert: &cert}))
			}
		}
		c.finish(nil)
	case pr.ContentType == RecordAppData:
		if c.OnData != nil {
			c.OnData(c, obscure(data[5:]))
		}
	}
}
