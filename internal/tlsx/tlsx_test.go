package tlsx

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func setup() (*sim.Scheduler, *pcap.Capture, func(byte) *stack.Host) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	c := pcap.NewCapture()
	n.Tap(c.Add)
	return s, c, func(last byte) *stack.Host {
		h := stack.NewHost(n, netx.MAC{2, 0, 0, 0, 0, last}, stack.DefaultPolicy)
		h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
		return h
	}
}

func googleCert() CertMeta {
	return CertMeta{
		IssuerCN: "Google Cast Root CA", SubjectCN: "192.168.10.9",
		NotBefore:  time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2042, 1, 1, 0, 0, 0, 0, time.UTC),
		SelfSigned: false, KeyBits: 96,
	}
}

func TestHandshakeTLS12ExposesCert(t *testing.T) {
	sched, _, mk := setup()
	server := mk(9)
	var serverGot []byte
	NewServer(server, 8009, Config{Version: VersionTLS12, Cert: googleCert()}, func(c *Conn) {
		c.OnData = func(c *Conn, plain []byte) {
			serverGot = plain
			c.Send([]byte("pong"))
		}
	})

	client := mk(10)
	var clientGot []byte
	conn := Dial(client, server.IPv4(), 8009, Config{Version: VersionTLS12}, "local")
	conn.OnEstablished = func(c *Conn) { c.Send([]byte("ping")) }
	conn.OnData = func(c *Conn, plain []byte) { clientGot = plain }
	sched.RunFor(time.Second)

	if string(serverGot) != "ping" || string(clientGot) != "pong" {
		t.Fatalf("app data: server=%q client=%q", serverGot, clientGot)
	}
	if conn.PeerCert.IssuerCN != "Google Cast Root CA" {
		t.Fatalf("peer cert: %+v", conn.PeerCert)
	}
	if y := conn.PeerCert.ValidityYears(); y < 19.5 || y > 20.5 {
		t.Fatalf("validity years: %v", y)
	}
}

func TestTLS13HidesCertificate(t *testing.T) {
	sched, cap, mk := setup()
	server := mk(9)
	apple := CertMeta{IssuerCN: "Apple Local CA", SubjectCN: "homepod.local", KeyBits: 256,
		NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC), NotAfter: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)}
	NewServer(server, 7000, Config{Version: VersionTLS13, Cert: apple}, nil)
	client := mk(10)
	conn := Dial(client, server.IPv4(), 7000, Config{Version: VersionTLS13}, "")
	sched.RunFor(time.Second)
	if !conn.Established {
		t.Fatal("handshake did not complete")
	}
	if conn.PeerCert.IssuerCN != "" {
		t.Fatalf("TLS 1.3 leaked cert: %+v", conn.PeerCert)
	}
	// An on-path observer must not see the issuer CN in any packet.
	for _, p := range pcap.Packets(cap.All) {
		if p.HasTCP && len(p.AppPayload) > 0 {
			if string(p.AppPayload) != "" && containsBytes(p.AppPayload, []byte("Apple Local CA")) {
				t.Fatal("certificate visible on the wire under TLS 1.3")
			}
		}
	}
}

func containsBytes(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if string(haystack[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}

func TestTwoWayAuth(t *testing.T) {
	sched, _, mk := setup()
	server := mk(9)
	echoCert := CertMeta{IssuerCN: "192.168.10.9", SubjectCN: "192.168.10.9", SelfSigned: true, KeyBits: 128,
		NotBefore: time.Date(2022, 11, 1, 0, 0, 0, 0, time.UTC), NotAfter: time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)}
	var serverSeen CertMeta
	NewServer(server, 55443, Config{Version: VersionTLS12, Cert: echoCert, RequireClientCert: true}, func(c *Conn) {
		serverSeen = c.PeerCert
	})
	client := mk(10)
	clientCert := CertMeta{IssuerCN: "192.168.10.10", SubjectCN: "192.168.10.10", SelfSigned: true, KeyBits: 128}
	conn := Dial(client, server.IPv4(), 55443, Config{Version: VersionTLS12, Cert: clientCert}, "")
	sched.RunFor(time.Second)
	if !conn.Established {
		t.Fatal("handshake incomplete")
	}
	if serverSeen.SubjectCN != "192.168.10.10" {
		t.Fatalf("server saw client cert %+v", serverSeen)
	}
	if !conn.PeerCert.SelfSigned || conn.PeerCert.SubjectCN != "192.168.10.9" {
		t.Fatalf("client saw server cert %+v", conn.PeerCert)
	}
}

func TestObserverSeesVersions(t *testing.T) {
	sched, cap, mk := setup()
	server := mk(9)
	NewServer(server, 8009, Config{Version: VersionTLS12, Cert: googleCert()}, nil)
	client := mk(10)
	Dial(client, server.IPv4(), 8009, Config{Version: VersionTLS12}, "")
	sched.RunFor(time.Second)
	var versions []uint16
	for _, p := range pcap.Packets(cap.All) {
		if p.HasTCP && IsTLS(p.AppPayload) {
			if v, ok := HandshakeVersion(p.AppPayload); ok {
				versions = append(versions, v)
			}
		}
	}
	if len(versions) < 2 {
		t.Fatalf("observed %d handshake records", len(versions))
	}
	for _, v := range versions {
		if v != VersionTLS12 {
			t.Fatalf("version %s on the wire", VersionName(v))
		}
	}
}

func TestParseRecordRejects(t *testing.T) {
	if _, err := ParseRecord([]byte{22, 3}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := ParseRecord([]byte{99, 3, 3, 0, 0}); err == nil {
		t.Fatal("unknown content type accepted")
	}
	if _, err := ParseRecord([]byte{22, 9, 9, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ParseRecord([]byte{22, 3, 3, 0xff, 0xff, 1}); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestVersionNames(t *testing.T) {
	if VersionName(VersionTLS13) != "TLSv1.3" || VersionName(VersionTLS10) != "TLSv1.0" {
		t.Fatal("version names wrong")
	}
}
