package stack

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/sim"
)

type fixture struct {
	sched *sim.Scheduler
	net   *lan.Network
	cap   *pcap.Capture
}

func newFixture() *fixture {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	c := pcap.NewCapture()
	n.Tap(c.Add)
	return &fixture{sched: s, net: n, cap: c}
}

func (f *fixture) host(last byte) *Host {
	h := NewHost(f.net, netx.MAC{2, 0, 0, 0, 0, last}, DefaultPolicy)
	h.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, last}))
	return h
}

func TestARPResolutionAndUDPDelivery(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	var got []Datagram
	b.OpenUDP(9999, func(dg Datagram) { got = append(got, dg) })
	a.SendUDP(40000, b.IPv4(), 9999, []byte("hello"))
	f.sched.RunFor(time.Second)
	if len(got) != 1 || string(got[0].Payload) != "hello" {
		t.Fatalf("datagrams: %+v", got)
	}
	if got[0].Src != a.IPv4() || got[0].SrcPort != 40000 {
		t.Fatalf("src wrong: %+v", got[0])
	}
	// The capture must contain the ARP exchange before the UDP datagram.
	var sawReq, sawRep, sawUDP bool
	for _, p := range pcap.Packets(f.cap.All) {
		switch {
		case p.HasARP && p.ARP.Op == layers.ARPRequest:
			sawReq = true
		case p.HasARP && p.ARP.Op == layers.ARPReply:
			sawRep = true
		case p.HasUDP:
			sawUDP = true
		}
	}
	if !sawReq || !sawRep || !sawUDP {
		t.Fatalf("capture missing ARP/UDP: req=%v rep=%v udp=%v", sawReq, sawRep, sawUDP)
	}
}

func TestARPCacheSkipsSecondResolution(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	b.OpenUDP(9999, nil)
	a.SendUDP(40000, b.IPv4(), 9999, []byte("one"))
	f.sched.RunFor(time.Second)
	before := f.cap.Len()
	a.SendUDP(40000, b.IPv4(), 9999, []byte("two"))
	f.sched.RunFor(time.Second)
	for _, r := range f.cap.All[before:] {
		if r.Decode().HasARP {
			t.Fatal("second send re-ARPed despite cache")
		}
	}
}

func TestMulticastDelivery(t *testing.T) {
	f := newFixture()
	a, b, c := f.host(10), f.host(11), f.host(12)
	var bGot, cGot int
	b.JoinGroup(netx.MDNSv4Group)
	b.OpenUDP(5353, func(Datagram) { bGot++ })
	c.OpenUDP(5353, func(Datagram) { cGot++ }) // not joined
	a.SendUDP(5353, netx.MDNSv4Group, 5353, []byte("query"))
	f.sched.RunFor(time.Second)
	if bGot != 1 {
		t.Fatalf("joined host got %d datagrams", bGot)
	}
	if cGot != 0 {
		t.Fatal("non-member received group traffic")
	}
	// The join must have emitted an IGMPv3 report.
	found := false
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasIGMP && p.IGMP.Type == layers.IGMPv3Report && p.IGMP.Group == netx.MDNSv4Group {
			found = true
		}
	}
	if !found {
		t.Fatal("no IGMP report in capture")
	}
}

func TestBroadcastUDP(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	n := 0
	b.OpenUDP(6666, func(Datagram) { n++ })
	a.SendUDP(6666, netx.Broadcast4, 6666, []byte("tuya discovery"))
	a.SendUDP(6666, netx.SubnetBroadcast(a.IPv4()), 6666, []byte("tuya discovery"))
	f.sched.RunFor(time.Second)
	if n != 2 {
		t.Fatalf("broadcast datagrams received: %d, want 2", n)
	}
}

func TestUDPClosedPortUnreachable(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	_ = b
	a.SendUDP(40000, b.IPv4(), 1234, []byte("probe"))
	f.sched.RunFor(time.Second)
	found := false
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasICMP4 && p.ICMP4.Type == layers.ICMPv4Unreachable && p.ICMP4.Code == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("no port-unreachable for closed UDP port")
	}
}

func TestTCPHandshakeDataClose(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	var serverGot, clientGot []byte
	var accepted, closedServer, closedClient bool
	b.ListenTCP(80, func(c *TCPConn) {
		accepted = true
		c.OnData = func(c *TCPConn, data []byte) {
			serverGot = append(serverGot, data...)
			c.Send([]byte("HTTP/1.1 200 OK\r\n\r\n"))
		}
		c.OnClose = func(*TCPConn) { closedServer = true }
	})
	conn := a.DialTCP(b.IPv4(), 80)
	conn.OnConnect = func(c *TCPConn) { c.Send([]byte("GET / HTTP/1.1\r\n\r\n")) }
	conn.OnData = func(c *TCPConn, data []byte) {
		clientGot = append(clientGot, data...)
		c.Close()
	}
	conn.OnClose = func(*TCPConn) { closedClient = true }
	f.sched.RunFor(5 * time.Second)
	if !accepted {
		t.Fatal("no accept")
	}
	if string(serverGot) != "GET / HTTP/1.1\r\n\r\n" {
		t.Fatalf("server got %q", serverGot)
	}
	if string(clientGot) != "HTTP/1.1 200 OK\r\n\r\n" {
		t.Fatalf("client got %q", clientGot)
	}
	if !closedServer || !closedClient {
		t.Fatalf("close callbacks: server=%v client=%v", closedServer, closedClient)
	}
	if len(a.tcpConns) != 0 || len(b.tcpConns) != 0 {
		t.Fatalf("connection leak: a=%d b=%d", len(a.tcpConns), len(b.tcpConns))
	}
}

func TestTCPRefusedPort(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	refused := false
	conn := a.DialTCP(b.IPv4(), 23)
	conn.OnRefused = func(*TCPConn) { refused = true }
	conn.OnConnect = func(*TCPConn) { t.Error("connected to closed port") }
	f.sched.RunFor(time.Second)
	if !refused {
		t.Fatal("no RST for closed port")
	}
}

func TestTCPSilentWhenPolicyDropsRst(t *testing.T) {
	f := newFixture()
	a := f.host(10)
	pol := DefaultPolicy
	pol.RespondTCPRst = false
	b := NewHost(f.net, netx.MAC{2, 0, 0, 0, 0, 99}, pol)
	b.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, 99}))
	refused := false
	conn := a.DialTCP(b.IPv4(), 23)
	conn.OnRefused = func(*TCPConn) { refused = true }
	f.sched.RunFor(time.Second)
	if refused {
		t.Fatal("got RST from drop-policy host")
	}
}

func TestICMPEcho(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	echoed := false
	b.OnEcho = func(from netip.Addr) {
		if from != a.IPv4() {
			t.Errorf("echo from %v", from)
		}
		echoed = true
	}
	a.Ping(b.IPv4(), 1, 1)
	f.sched.RunFor(time.Second)
	if !echoed {
		t.Fatal("no echo")
	}
	var sawReply bool
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasICMP4 && p.ICMP4.Type == layers.ICMPv4EchoReply {
			sawReply = true
		}
	}
	if !sawReply {
		t.Fatal("no echo reply in capture")
	}
}

func TestIPv6NeighborDiscovery(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	got := 0
	b.OpenUDP(5353, func(Datagram) { got++ })
	b.JoinGroup(netx.MDNSv6Group)
	// Sending to b's link-local v6 address forces an NDP exchange.
	a.SendUDP(5353, b.IPv6(), 5353, []byte("v6 hello"))
	f.sched.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("v6 unicast datagrams: %d", got)
	}
	var ns, na bool
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasICMP6 && p.ICMP6.Type == layers.ICMPv6NeighborSolicit {
			ns = true
		}
		if p.HasICMP6 && p.ICMP6.Type == layers.ICMPv6NeighborAdvert {
			na = true
		}
	}
	if !ns || !na {
		t.Fatalf("NDP exchange missing: NS=%v NA=%v", ns, na)
	}
}

func TestSilentARPBroadcastPolicy(t *testing.T) {
	f := newFixture()
	a := f.host(10)
	pol := DefaultPolicy
	pol.RespondARPBroadcast = false
	b := NewHost(f.net, netx.MAC{2, 0, 0, 0, 0, 50}, pol)
	b.SetIPv4(netip.AddrFrom4([4]byte{192, 168, 10, 50}))

	countReplies := func() int {
		n := 0
		for _, p := range pcap.Packets(f.cap.All) {
			if p.HasARP && p.ARP.Op == layers.ARPReply {
				n++
			}
		}
		return n
	}

	// A sweep: broadcast probes across the subnet. The silent host must not
	// answer the probe for its own address mid-sweep (§5.1: 58% finding).
	for last := byte(45); last <= 55; last++ {
		a.ARPProbe(netip.AddrFrom4([4]byte{192, 168, 10, last}))
	}
	f.sched.RunFor(time.Second)
	if countReplies() != 0 {
		t.Fatal("silent host answered a broadcast ARP sweep")
	}

	// An isolated resolution probe minutes later is answered normally.
	f.sched.RunFor(time.Minute)
	a.ARPProbe(b.IPv4())
	f.sched.RunFor(time.Second)
	if countReplies() != 1 {
		t.Fatal("silent host should answer a one-off broadcast resolution")
	}

	// Unicast ARP is always answered, even mid-sweep (§5.1: 100% finding).
	for last := byte(45); last <= 55; last++ {
		a.ARPProbe(netip.AddrFrom4([4]byte{192, 168, 10, last}))
	}
	a.ARPProbeUnicast(b.MAC(), b.IPv4())
	f.sched.RunFor(time.Second)
	if countReplies() != 2 {
		t.Fatal("unicast ARP unanswered")
	}
}

func TestIPProtoUnreachable(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	a.SendIPv4Proto(b.IPv4(), 47, []byte{0, 0}) // GRE, unsupported
	f.sched.RunFor(time.Second)
	found := false
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasICMP4 && p.ICMP4.Type == layers.ICMPv4Unreachable && p.ICMP4.Code == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no protocol-unreachable")
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	f := newFixture()
	a := f.host(10)
	seen := map[uint16]bool{}
	for i := 0; i < 100; i++ {
		s := a.OpenUDPEphemeral(nil)
		if seen[s.Port] {
			t.Fatalf("duplicate ephemeral port %d", s.Port)
		}
		seen[s.Port] = true
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	n := 0
	b.OpenUDP(9999, func(Datagram) { n++ })
	a.SendUDP(1, b.IPv4(), 9999, []byte("x"))
	f.sched.RunFor(time.Second)
	f.net.Detach(b.MAC())
	a.SendUDP(1, b.IPv4(), 9999, []byte("y"))
	f.sched.RunFor(time.Second)
	if n != 1 {
		t.Fatalf("delivery count = %d, want 1", n)
	}
}
