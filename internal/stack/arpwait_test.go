package stack

import (
	"net/netip"
	"testing"
	"time"
)

// TestARPWaitBounded proves the per-destination pending-frame queue sheds
// load past arpWaitMax instead of growing for the whole 3 s give-up window.
func TestARPWaitBounded(t *testing.T) {
	f := newFixture()
	a := f.host(10)
	ghost := netip.AddrFrom4([4]byte{192, 168, 10, 200}) // nobody home

	const extra = 50
	for i := 0; i < arpWaitMax+extra; i++ {
		a.SendUDP(40000, ghost, 9999, []byte("x"))
	}
	if got := len(a.arpWait[ghost]); got != arpWaitMax {
		t.Fatalf("arpWait holds %d frames, want cap %d", got, arpWaitMax)
	}
	if got := a.cARPWaitDrop.Value(); got != extra {
		t.Fatalf("stack_arp_wait_dropped = %d, want %d", got, extra)
	}
	// The give-up timer still clears the queue for absent targets.
	f.sched.RunFor(5 * time.Second)
	if got := len(a.arpWait); got != 0 {
		t.Fatalf("arpWait retains %d destinations after give-up window", got)
	}
}

// TestARPWaitFlushUnderBound: a burst under the cap to a present host is
// fully delivered once resolution completes — the bound only sheds, never
// reorders or truncates resolvable traffic.
func TestARPWaitFlushUnderBound(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	got := 0
	b.OpenUDP(9999, func(dg Datagram) { got++ })
	const n = arpWaitMax - 1
	for i := 0; i < n; i++ {
		a.SendUDP(40000, b.IPv4(), 9999, []byte("y"))
	}
	f.sched.RunFor(time.Second)
	if got != n {
		t.Fatalf("delivered %d datagrams, want %d", got, n)
	}
	if a.cARPWaitDrop.Value() != 0 {
		t.Fatalf("dropped %d frames from an under-bound burst", a.cARPWaitDrop.Value())
	}
}

// TestTCPHalfClose exercises the opt-in half-close path: after the client's
// CloseWrite the server sees OnFin (not OnClose), keeps streaming data the
// client still receives, and only the server's own Close finishes teardown.
func TestTCPHalfClose(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)

	var server *TCPConn
	finSeen, closeSeen := false, false
	var serverGot []byte
	b.ListenTCP(80, func(c *TCPConn) {
		server = c
		c.HalfClose = true
		c.OnData = func(_ *TCPConn, data []byte) { serverGot = append(serverGot, data...) }
		c.OnFin = func(*TCPConn) { finSeen = true }
		c.OnClose = func(*TCPConn) { closeSeen = true }
	})

	var clientGot []byte
	clientClosed := false
	client := a.DialTCP(b.IPv4(), 80)
	client.HalfClose = true
	client.OnData = func(_ *TCPConn, data []byte) { clientGot = append(clientGot, data...) }
	client.OnClose = func(*TCPConn) { clientClosed = true }
	client.OnConnect = func(c *TCPConn) {
		c.Send([]byte("request"))
		c.CloseWrite()
	}
	f.sched.RunFor(time.Second)

	if string(serverGot) != "request" {
		t.Fatalf("server got %q", serverGot)
	}
	if !finSeen || closeSeen {
		t.Fatalf("after CloseWrite: finSeen=%v closeSeen=%v, want FIN only", finSeen, closeSeen)
	}
	if server == nil || server.state != stateCloseWait {
		t.Fatalf("server not in CLOSE-WAIT after peer FIN")
	}

	// The half-closed peer still receives the response stream.
	server.Send([]byte("response"))
	server.Close()
	f.sched.RunFor(time.Second)

	if string(clientGot) != "response" {
		t.Fatalf("client got %q after its own CloseWrite", clientGot)
	}
	if !clientClosed {
		t.Fatal("client never saw the server's FIN complete the close")
	}
	if client.ClosedByRST || server.ClosedByRST {
		t.Fatal("orderly close flagged as RST")
	}
	if len(a.tcpConns) != 0 || len(b.tcpConns) != 0 {
		t.Fatalf("conns leaked: client=%d server=%d", len(a.tcpConns), len(b.tcpConns))
	}
}

// TestTCPResetFlagsClosedByRST: an aborted connection is distinguishable
// from an orderly one.
func TestTCPResetFlagsClosedByRST(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)

	var server *TCPConn
	closeSeen := false
	b.ListenTCP(80, func(c *TCPConn) {
		server = c
		c.OnClose = func(*TCPConn) { closeSeen = true }
	})
	client := a.DialTCP(b.IPv4(), 80)
	client.OnConnect = func(c *TCPConn) { c.Reset() }
	f.sched.RunFor(time.Second)

	if server == nil {
		t.Fatal("handshake never completed")
	}
	if !closeSeen || !server.ClosedByRST {
		t.Fatalf("closeSeen=%v ClosedByRST=%v, want RST-flagged close", closeSeen, server.ClosedByRST)
	}
}
