package stack

import (
	"net/netip"
	"strconv"
	"time"

	"iotlan/internal/layers"
)

// connKey identifies a TCP connection from the local host's perspective.
type connKey struct {
	localPort  uint16
	remote     netip.Addr
	remotePort uint16
}

// TCP connection states. The simulated network never loses or reorders
// segments, so the machine omits retransmission and reassembly.
type tcpState int

const (
	stateSynSent tcpState = iota
	stateSynReceived
	stateEstablished
	stateFinWait
	stateCloseWait
	stateClosed
)

// TCPConn is one end of a simulated TCP connection.
type TCPConn struct {
	host       *Host
	key        connKey
	state      tcpState
	seq, ack   uint32
	serverSide bool

	// OnConnect fires on the client when the handshake completes.
	OnConnect func(c *TCPConn)
	// OnData fires for each inbound data segment.
	OnData func(c *TCPConn, data []byte)
	// OnClose fires when the peer closes or resets. ClosedByRST tells the
	// two apart.
	OnClose func(c *TCPConn)
	// OnRefused fires on the client when the server answers with RST.
	OnRefused func(c *TCPConn)

	// HalfClose opts in to TCP half-close semantics: a peer FIN fires OnFin
	// and leaves the conn writable (CLOSE-WAIT) instead of auto-closing, and
	// data arriving after a local CloseWrite is still delivered. The legacy
	// callback protocols (httpx, device firmware) keep the default
	// auto-close behaviour.
	HalfClose bool
	// OnFin fires when the peer half-closes (HalfClose mode only).
	OnFin func(c *TCPConn)
	// ClosedByRST records that the teardown was an inbound RST, so OnClose
	// handlers can distinguish an abort from an orderly FIN exchange.
	ClosedByRST bool

	// UserData carries protocol state (an HTTP server's per-conn parser…).
	UserData interface{}

	// listenerAccept defers the accept callback until the handshake's final
	// ACK arrives.
	listenerAccept func(c *TCPConn)

	// probe, when set, marks a half-open SYN-scan probe: a SYN-ACK is
	// answered with RST and reported as open, an RST as closed.
	probe func(open bool)
}

// Remote returns the peer address and port.
func (c *TCPConn) Remote() (netip.Addr, uint16) { return c.key.remote, c.key.remotePort }

// LocalPort returns the local port.
func (c *TCPConn) LocalPort() uint16 { return c.key.localPort }

// Established reports whether the connection is fully open.
func (c *TCPConn) Established() bool { return c.state == stateEstablished }

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	host *Host
	Port uint16
	// OnAccept fires when a handshake completes server-side.
	OnAccept func(c *TCPConn)
}

// ListenTCP opens a server port.
func (h *Host) ListenTCP(port uint16, onAccept func(c *TCPConn)) *TCPListener {
	l := &TCPListener{host: h, Port: port, OnAccept: onAccept}
	h.tcpL[port] = l
	return l
}

// CloseTCP stops listening on a port.
func (h *Host) CloseTCP(port uint16) { delete(h.tcpL, port) }

// TCPPortOpen reports whether a listener is bound (scan ground truth).
func (h *Host) TCPPortOpen(port uint16) bool { _, ok := h.tcpL[port]; return ok }

// TCPPorts returns all listening ports.
func (h *Host) TCPPorts() []uint16 {
	ports := make([]uint16, 0, len(h.tcpL))
	for p := range h.tcpL {
		ports = append(ports, p)
	}
	return ports
}

// OpenConnCount reports live TCP connections (leak detection in tests).
func (h *Host) OpenConnCount() int { return len(h.tcpConns) }

// UDPPorts returns all bound UDP ports.
func (h *Host) UDPPorts() []uint16 {
	ports := make([]uint16, 0, len(h.udp))
	for p := range h.udp {
		ports = append(ports, p)
	}
	return ports
}

// DialTCP starts a handshake to dst:port and returns the pending connection.
// Callbacks on the returned conn fire as the handshake progresses.
func (h *Host) DialTCP(dst netip.Addr, port uint16) *TCPConn {
	c := &TCPConn{
		host:  h,
		key:   connKey{localPort: h.ephemeralPort(), remote: dst, remotePort: port},
		state: stateSynSent,
		seq:   uint32(h.Sched.Rand().Int31()),
	}
	h.tcpConns[c.key] = c
	h.sendTCP(c, layers.TCPSyn, nil)
	c.seq++
	return c
}

// Send transmits payload as one PSH/ACK segment. A half-closed conn that
// received the peer's FIN (CLOSE-WAIT) may still send.
func (c *TCPConn) Send(payload []byte) {
	if c.state != stateEstablished && c.state != stateCloseWait {
		return
	}
	c.host.sendTCP(c, layers.TCPPsh|layers.TCPAck, payload)
	c.seq += uint32(len(payload))
}

// Close sends FIN and tears the connection down after the exchange.
func (c *TCPConn) Close() {
	switch c.state {
	case stateEstablished, stateSynReceived:
		c.state = stateFinWait
		c.host.sendTCP(c, layers.TCPFin|layers.TCPAck, nil)
		c.seq++
	case stateCloseWait:
		// Peer already half-closed; our FIN completes the teardown (the
		// peer's final ACK is implicit, as in the legacy exchange).
		c.host.sendTCP(c, layers.TCPFin|layers.TCPAck, nil)
		c.seq++
		c.state = stateClosed
		delete(c.host.tcpConns, c.key)
	default:
		delete(c.host.tcpConns, c.key)
	}
}

// CloseWrite sends FIN but keeps the receive side open (TCP half-close).
// Inbound data keeps firing OnData until the peer's own FIN arrives; further
// Sends are discarded. Meaningful with HalfClose set — without it the peer's
// stack answers our FIN with its own immediately, collapsing to Close.
func (c *TCPConn) CloseWrite() {
	switch c.state {
	case stateEstablished, stateSynReceived:
		c.state = stateFinWait
		c.host.sendTCP(c, layers.TCPFin|layers.TCPAck, nil)
		c.seq++
	case stateCloseWait:
		c.Close()
	}
}

// Reset aborts with RST (used by SYN scanners and impatient clients).
func (c *TCPConn) Reset() {
	c.host.sendTCP(c, layers.TCPRst, nil)
	c.state = stateClosed
	delete(c.host.tcpConns, c.key)
}

func (h *Host) sendTCP(c *TCPConn, flags uint8, payload []byte) {
	kind := segKind(flags, len(payload))
	h.tcp.out[kind].Inc()
	if len(payload) > 0 {
		h.tcp.bytesOut.Add(uint64(len(payload)))
	}
	if kind == segRst && h.Sched.Tracing() {
		h.Sched.TraceEvent("tcp", "rst",
			"remote", c.key.remote.String(), "port", strconv.Itoa(int(c.key.remotePort)))
	}
	t := &layers.TCP{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.seq, Ack: c.ack, Flags: flags,
	}
	var src netip.Addr
	if c.key.remote.Is6() {
		src = h.ip6
	} else {
		src = h.ip4
	}
	t.SetAddrs(src, c.key.remote)
	body := serializeFunc(func(rest []byte) ([]byte, error) {
		seg, err := t.SerializeTo(payload)
		if err != nil {
			return nil, err
		}
		return append(seg, rest...), nil
	})
	if c.key.remote.Is6() {
		h.sendIPv6(c.key.remote, layers.IPProtoTCP, body)
	} else {
		h.sendIPv4(c.key.remote, layers.IPProtoTCP, body)
	}
}

func (h *Host) handleTCP(p *layers.Packet) {
	h.tcp.in[segKind(p.TCP.Flags, len(p.AppPayload))].Inc()
	if len(p.AppPayload) > 0 {
		h.tcp.bytesIn.Add(uint64(len(p.AppPayload)))
	}
	key := connKey{localPort: p.TCP.DstPort, remote: p.SrcIP(), remotePort: p.TCP.SrcPort}
	if c, ok := h.tcpConns[key]; ok {
		h.handleTCPConn(c, p)
		return
	}
	// New SYN to a listening port?
	if p.TCP.FlagSet(layers.TCPSyn) && !p.TCP.FlagSet(layers.TCPAck) {
		if l, ok := h.tcpL[p.TCP.DstPort]; ok {
			c := &TCPConn{
				host:       h,
				key:        key,
				state:      stateSynReceived,
				seq:        uint32(h.Sched.Rand().Int31()),
				ack:        p.TCP.Seq + 1,
				serverSide: true,
			}
			h.tcpConns[key] = c
			c.listenerAccept = l.OnAccept
			h.sendTCP(c, layers.TCPSyn|layers.TCPAck, nil)
			c.seq++
			return
		}
		if h.Policy.RespondTCPRst {
			// RST the stranger: the "closed" signal SYN scans rely on.
			rst := &TCPConn{host: h, key: key, ack: p.TCP.Seq + 1}
			h.sendTCP(rst, layers.TCPRst|layers.TCPAck, nil)
		}
		return
	}
	// Stray non-SYN segment to nowhere: RST unless policy says drop.
	if !p.TCP.FlagSet(layers.TCPRst) && h.Policy.RespondTCPRst {
		rst := &TCPConn{host: h, key: key, seq: p.TCP.Ack}
		h.sendTCP(rst, layers.TCPRst, nil)
	}
}

// SynProbe launches a half-open TCP SYN scan probe. cb receives true when
// the port answers SYN-ACK (then gets RST, never completing the handshake),
// false on RST. A silent target never invokes cb — callers treat the
// timeout as "filtered".
func (h *Host) SynProbe(dst netip.Addr, port uint16, cb func(open bool)) {
	c := &TCPConn{
		host:  h,
		key:   connKey{localPort: h.ephemeralPort(), remote: dst, remotePort: port},
		state: stateSynSent,
		seq:   uint32(h.Sched.Rand().Int31()),
		probe: cb,
	}
	h.tcpConns[c.key] = c
	h.sendTCP(c, layers.TCPSyn, nil)
	c.seq++
	// Reap silent probes so the conn table doesn't grow across a 65535-port
	// sweep of a filtered host.
	key := c.key
	h.Sched.AfterTagged("stack", 3*time.Second, func() {
		if cur, ok := h.tcpConns[key]; ok && cur == c {
			delete(h.tcpConns, key)
		}
	})
}

func (h *Host) handleTCPConn(c *TCPConn, p *layers.Packet) {
	t := &p.TCP
	if c.probe != nil {
		switch {
		case t.FlagSet(layers.TCPSyn | layers.TCPAck):
			c.ack = t.Seq + 1
			h.sendTCP(c, layers.TCPRst, nil)
			delete(h.tcpConns, c.key)
			c.probe(true)
		case t.FlagSet(layers.TCPRst):
			delete(h.tcpConns, c.key)
			c.probe(false)
		}
		return
	}
	if t.FlagSet(layers.TCPRst) {
		prev := c.state
		c.state = stateClosed
		c.ClosedByRST = true
		delete(h.tcpConns, c.key)
		if prev == stateSynSent && c.OnRefused != nil {
			c.OnRefused(c)
		} else if c.OnClose != nil {
			c.OnClose(c)
		}
		return
	}
	switch c.state {
	case stateSynSent:
		if t.FlagSet(layers.TCPSyn | layers.TCPAck) {
			c.ack = t.Seq + 1
			c.state = stateEstablished
			h.tcp.handshakes.Inc()
			if h.Sched.Tracing() {
				h.Sched.TraceEvent("tcp", "handshake",
					"remote", c.key.remote.String(), "port", strconv.Itoa(int(c.key.remotePort)))
			}
			h.sendTCP(c, layers.TCPAck, nil)
			if c.OnConnect != nil {
				c.OnConnect(c)
			}
		}
	case stateSynReceived:
		if t.FlagSet(layers.TCPAck) {
			c.state = stateEstablished
			if c.listenerAccept != nil {
				c.listenerAccept(c)
			}
		}
	case stateEstablished:
		if data := p.AppPayload; len(data) > 0 {
			c.ack = t.Seq + uint32(len(data))
			h.sendTCP(c, layers.TCPAck, nil)
			if c.OnData != nil {
				c.OnData(c, data)
			}
		}
		if t.FlagSet(layers.TCPFin) {
			c.ack = t.Seq + 1
			if c.HalfClose {
				// ACK only and go CLOSE-WAIT: the app may keep sending
				// until it Closes in turn.
				h.sendTCP(c, layers.TCPAck, nil)
				c.state = stateCloseWait
				if c.OnFin != nil {
					c.OnFin(c)
				}
				return
			}
			// ACK the FIN and send our own; peer's final ACK is implicit.
			h.sendTCP(c, layers.TCPFin|layers.TCPAck, nil)
			c.state = stateClosed
			delete(h.tcpConns, c.key)
			if c.OnClose != nil {
				c.OnClose(c)
			}
		}
	case stateCloseWait:
		// Peer half-closed: nothing but ACKs of our sends arrive here.
	case stateFinWait:
		if data := p.AppPayload; len(data) > 0 && c.HalfClose {
			// We half-closed; the peer may still stream data at us.
			c.ack = t.Seq + uint32(len(data))
			h.sendTCP(c, layers.TCPAck, nil)
			if c.OnData != nil {
				c.OnData(c, data)
			}
		}
		if t.FlagSet(layers.TCPFin) {
			c.ack = t.Seq + 1
			h.sendTCP(c, layers.TCPAck, nil)
			c.state = stateClosed
			delete(h.tcpConns, c.key)
			if c.OnClose != nil {
				c.OnClose(c)
			}
		}
	}
}
