// Package stack implements a minimal userspace TCP/IP stack over the
// simulated LAN: ARP resolution with a cache, IPv4/IPv6 send/receive, UDP
// sockets with multicast groups (IGMP), a small reliable-network TCP
// (handshake, data, FIN, RST), ICMP echo and unreachables, and NDP. Every
// byte a Host emits is a genuine Ethernet frame, so the AP capture contains
// real packets for the classifier and threat analyses to parse.
package stack

import (
	"net/netip"
	"time"

	"iotlan/internal/lan"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/sim"
)

// Policy captures per-device stack behaviours that the threat analysis
// depends on (which probes a device answers, whether it speaks IPv6, …).
type Policy struct {
	// RespondEcho answers ICMP echo requests.
	RespondEcho bool
	// RespondARPBroadcast answers broadcast ARP who-has for our IP even
	// when the sender is sweeping the address space. When false the host
	// ignores sweep-style broadcast probes (a sender that probed foreign
	// IPs within the last 2 s) but still answers ordinary one-off
	// resolution and all unicast ARP — reproducing §5.1's finding that only
	// 58% of devices answer Echo's broadcast scans while 100% answer
	// unicast probes.
	RespondARPBroadcast bool
	// RespondUDPUnreachable emits ICMP port-unreachable for closed UDP
	// ports; required for UDP scans to mark ports closed.
	RespondUDPUnreachable bool
	// RespondProtoUnreachable emits ICMP protocol-unreachable for unknown
	// IP protocols; required for IP-protocol scans.
	RespondProtoUnreachable bool
	// EnableIPv6 turns on SLAAC link-local addressing and NDP.
	EnableIPv6 bool
	// RespondTCPRst answers SYNs to closed ports with RST (a stealthy
	// device that drops them shows "filtered" to the scanner).
	RespondTCPRst bool
}

// DefaultPolicy answers everything, like a typical busy IoT stack.
var DefaultPolicy = Policy{
	RespondEcho:             true,
	RespondARPBroadcast:     true,
	RespondUDPUnreachable:   true,
	RespondProtoUnreachable: true,
	EnableIPv6:              true,
	RespondTCPRst:           true,
}

type pendingFrame struct {
	build func(dstMAC netx.MAC) []byte
}

// arpWaitMax bounds the per-destination queue of frames parked on ARP/NDP
// resolution. A host bursting at a never-resolving target would otherwise
// grow the queue without limit for the full 3 s give-up window; past the cap
// new frames are dropped (tail drop, like a kernel neighbour queue), counted
// under stack_arp_wait_dropped. Callers that legitimately burst thousands of
// frames at one destination (the port scanner) resolve first, so the cap
// only bites truly unresolvable targets.
const arpWaitMax = 128

// Host is one IP endpoint on the simulated LAN.
type Host struct {
	Net   *lan.Network
	Sched *sim.Scheduler

	mac    netx.MAC
	ip4    netip.Addr
	ip6    netip.Addr // link-local, set when Policy.EnableIPv6
	Policy Policy

	arp      map[netip.Addr]netx.MAC
	arpWait  map[netip.Addr][]pendingFrame
	groups   map[netip.Addr]bool
	udp      map[uint16]*UDPSock
	tcpL     map[uint16]*TCPListener
	tcpConns map[connKey]*TCPConn
	nextPort uint16
	ipID     uint16

	// OnARPRequest is invoked for every ARP request seen (honeypot and
	// analysis hooks); return value does not affect protocol handling.
	OnARPRequest func(sender netip.Addr, target netip.Addr)
	// OnEcho is invoked when an echo request is answered.
	OnEcho func(from netip.Addr)
	// OnRawFrame, when set, sees every frame before normal dispatch. Used by
	// promiscuous observers (ARP-spoofing inspector, instrumentation).
	OnRawFrame func(frame []byte)

	// onICMPIn lets the scanner observe ICMP responses to its probes.
	onICMPIn func(*layers.Packet)

	// foreignARP tracks, per sender, the last broadcast who-has for an IP
	// other than ours — the sweep detector behind RespondARPBroadcast.
	foreignARP map[netx.MAC]time.Time

	// down marks a crashed host: it neither sends nor receives, though its
	// timers keep firing (and no-op), like a powered-off NIC.
	down bool

	// tcp caches the stack-layer telemetry handles (shared series across
	// hosts; see newTCPStats).
	tcp *tcpStats

	// cARPWaitDrop counts frames dropped from a full arpWait queue (shared
	// series across hosts, like the tcp handles).
	cARPWaitDrop *obs.Counter
}

// NewHost attaches a new host with the given MAC to the network. The IP is
// unset until SetIPv4 (static) or a DHCP exchange assigns one.
func NewHost(network *lan.Network, mac netx.MAC, policy Policy) *Host {
	h := &Host{
		Net:      network,
		Sched:    network.Sched,
		mac:      mac,
		Policy:   policy,
		arp:      make(map[netip.Addr]netx.MAC),
		arpWait:  make(map[netip.Addr][]pendingFrame),
		groups:   make(map[netip.Addr]bool),
		udp:      make(map[uint16]*UDPSock),
		tcpL:     make(map[uint16]*TCPListener),
		tcpConns: make(map[connKey]*TCPConn),
		nextPort: 32768,
		tcp:      newTCPStats(network.Sched.Telemetry.Registry),

		cARPWaitDrop: network.Sched.Telemetry.Registry.Counter("stack_arp_wait_dropped"),
	}
	if policy.EnableIPv6 {
		h.ip6 = netx.LinkLocalV6(mac)
	}
	network.Attach(h)
	return h
}

// MAC implements lan.Node.
func (h *Host) MAC() netx.MAC { return h.mac }

// IPv4 returns the host's IPv4 address (zero Addr until assigned).
func (h *Host) IPv4() netip.Addr { return h.ip4 }

// IPv6 returns the link-local IPv6 address, or the zero Addr if disabled.
func (h *Host) IPv6() netip.Addr { return h.ip6 }

// SetIPv4 assigns the IPv4 address (static config or DHCP result).
func (h *Host) SetIPv4(addr netip.Addr) { h.ip4 = addr }

// SetDown powers the host's NIC off (true) or back on (false). A down host
// drops every inbound frame and suppresses every send. Going down also loses
// volatile state a reboot would lose: the ARP/neighbor cache, frames queued
// on ARP resolution, and established TCP connections.
func (h *Host) SetDown(v bool) {
	h.down = v
	if v {
		h.arp = make(map[netip.Addr]netx.MAC)
		h.arpWait = make(map[netip.Addr][]pendingFrame)
		h.foreignARP = nil
		h.tcpConns = make(map[connKey]*TCPConn)
	}
}

// IsDown reports whether the host is crashed (see SetDown).
func (h *Host) IsDown() bool { return h.down }

// ephemeralPort allocates a client port.
func (h *Host) ephemeralPort() uint16 {
	for {
		h.nextPort++
		if h.nextPort < 32768 {
			h.nextPort = 32768
		}
		if _, used := h.udp[h.nextPort]; !used {
			return h.nextPort
		}
	}
}

// send emits a frame onto the LAN.
func (h *Host) send(frame []byte, err error) {
	if err != nil || h.down {
		return
	}
	h.Net.Send(frame)
}

// SendRaw emits an arbitrary pre-built frame (EAPOL, LLC/XID, crafted
// probes).
func (h *Host) SendRaw(frame []byte) {
	if h.down {
		return
	}
	h.Net.Send(frame)
}

// HandleFrame implements lan.Node: the host's receive path.
func (h *Host) HandleFrame(frame []byte) {
	if h.down {
		return
	}
	if h.OnRawFrame != nil {
		h.OnRawFrame(frame)
	}
	// Fast path: drop IPv4 multicast for unjoined groups before the full
	// decode — the dominant case on a discovery-chatty LAN.
	if len(frame) >= 34 && frame[12] == 0x08 && frame[13] == 0x00 {
		if b := frame[30]; b >= 224 && b <= 239 {
			dst := netip.AddrFrom4([4]byte(frame[30:34]))
			if !h.groups[dst] && dst != netx.AllNodesV4 && dst != netx.IGMPGroup {
				return
			}
		}
	}
	p := layers.Decode(frame)
	if p.Err != nil {
		return
	}
	switch {
	case p.HasARP:
		h.handleARP(&p.ARP, &p.Eth)
	case p.HasIP4, p.HasIP6:
		h.handleIP(p)
	}
}

func (h *Host) handleIP(p *layers.Packet) {
	dst := p.DstIP()
	// Accept: our unicast, joined multicast groups, well-known all-nodes,
	// broadcast.
	switch {
	case dst == h.ip4 || dst == h.ip6:
	case dst == netx.Broadcast4 || (h.ip4.IsValid() && dst == netx.SubnetBroadcast(h.ip4)):
	case dst.IsMulticast():
		if !h.groups[dst] && dst != netx.AllNodesV4 && dst != netx.AllNodesV6 && !isNDPGroup(dst) {
			return
		}
	default:
		return
	}
	switch {
	case p.HasUDP:
		h.handleUDP(p)
	case p.HasTCP:
		h.handleTCP(p)
	case p.HasICMP4:
		h.handleICMP(p)
	case p.HasICMP6:
		h.handleICMPv6(p)
	default:
		if p.HasIP4 && h.Policy.RespondProtoUnreachable && dst == h.ip4 {
			h.sendICMPUnreachable(p.SrcIP(), 2, p.Data[14:]) // protocol unreachable
		}
	}
}

func isNDPGroup(a netip.Addr) bool {
	if !a.Is6() {
		return false
	}
	b := a.As16()
	// Solicited-node multicast ff02::1:ffXX:XXXX.
	return b[0] == 0xff && b[1] == 0x02 && b[11] == 0x01 && b[12] == 0xff
}

// --- ARP -----------------------------------------------------------------

func (h *Host) handleARP(a *layers.ARP, eth *layers.Ethernet) {
	sender := netip.AddrFrom4(a.SenderIP)
	target := netip.AddrFrom4(a.TargetIP)
	if sender.IsValid() && !sender.IsUnspecified() {
		h.arp[sender] = a.SenderHW
		h.flushPending(sender)
	}
	switch a.Op {
	case layers.ARPRequest:
		if h.OnARPRequest != nil {
			h.OnARPRequest(sender, target)
		}
		if !h.ip4.IsValid() || target != h.ip4 {
			if eth.Dst.IsBroadcast() {
				// Remember sweep activity per sender for the silent policy.
				if h.foreignARP == nil {
					h.foreignARP = make(map[netx.MAC]time.Time)
				}
				h.foreignARP[a.SenderHW] = h.Sched.Now()
			}
			return
		}
		if eth.Dst.IsBroadcast() && !h.Policy.RespondARPBroadcast {
			if last, ok := h.foreignARP[a.SenderHW]; ok && h.Sched.Now().Sub(last) < 2*time.Second {
				return // mid-sweep: stay silent; unicast always answered
			}
		}
		h.sendARPReply(a.SenderHW, a.SenderIP)
	}
}

func (h *Host) sendARPReply(dstHW netx.MAC, dstIP [4]byte) {
	reply := &layers.ARP{
		Op:       layers.ARPReply,
		SenderHW: h.mac, SenderIP: h.ip4.As4(),
		TargetHW: dstHW, TargetIP: dstIP,
	}
	h.send(layers.Serialize(
		&layers.Ethernet{Src: h.mac, Dst: dstHW, EtherType: layers.EtherTypeARP},
		reply))
}

// as4or0 renders an address as 4 bytes, mapping the invalid Addr to 0.0.0.0
// (a host probing before DHCP completes).
func as4or0(a netip.Addr) [4]byte {
	if a.IsValid() && a.Is4() {
		return a.As4()
	}
	return [4]byte{}
}

// ARPProbe broadcasts a who-has for target (Echo-style LAN sweep, §5.1).
func (h *Host) ARPProbe(target netip.Addr) {
	req := &layers.ARP{
		Op:       layers.ARPRequest,
		SenderHW: h.mac, SenderIP: as4or0(h.ip4),
		TargetIP: as4or0(target),
	}
	h.send(layers.Serialize(
		&layers.Ethernet{Src: h.mac, Dst: netx.Broadcast, EtherType: layers.EtherTypeARP},
		req))
}

// ARPProbeUnicast sends a targeted unicast ARP request to a known MAC.
func (h *Host) ARPProbeUnicast(dst netx.MAC, target netip.Addr) {
	req := &layers.ARP{
		Op:       layers.ARPRequest,
		SenderHW: h.mac, SenderIP: as4or0(h.ip4),
		TargetHW: dst, TargetIP: as4or0(target),
	}
	h.send(layers.Serialize(
		&layers.Ethernet{Src: h.mac, Dst: dst, EtherType: layers.EtherTypeARP},
		req))
}

func (h *Host) flushPending(addr netip.Addr) {
	waiters := h.arpWait[addr]
	if len(waiters) == 0 {
		return
	}
	delete(h.arpWait, addr)
	mac := h.arp[addr]
	for _, w := range waiters {
		h.SendRaw(w.build(mac))
	}
}

// resolveAndSend looks up dst's MAC (ARPing if needed) and transmits the
// frame produced by build.
func (h *Host) resolveAndSend(dst netip.Addr, build func(dstMAC netx.MAC) []byte) {
	// Multicast and broadcast need no resolution.
	if dst.IsMulticast() {
		h.SendRaw(build(netx.MulticastMAC(dst)))
		return
	}
	if dst == netx.Broadcast4 || (h.ip4.IsValid() && dst == netx.SubnetBroadcast(h.ip4)) {
		h.SendRaw(build(netx.Broadcast))
		return
	}
	if mac, ok := h.arp[dst]; ok {
		h.SendRaw(build(mac))
		return
	}
	if dst.Is6() {
		h.sendNeighborSolicit(dst)
	} else {
		h.ARPProbe(dst)
	}
	if len(h.arpWait[dst]) >= arpWaitMax {
		h.cARPWaitDrop.Inc()
		return
	}
	h.arpWait[dst] = append(h.arpWait[dst], pendingFrame{build: build})
	// Give up after 3 s so queues don't leak when the target is absent.
	h.Sched.AfterTagged("stack", 3*time.Second, func() { delete(h.arpWait, dst) })
}

// --- ICMP ----------------------------------------------------------------

func (h *Host) handleICMP(p *layers.Packet) {
	if p.ICMP4.Type == layers.ICMPv4Echo && h.Policy.RespondEcho {
		if h.OnEcho != nil {
			h.OnEcho(p.SrcIP())
		}
		h.sendIPv4(p.SrcIP(), layers.IPProtoICMP, &layers.ICMPv4{
			Type: layers.ICMPv4EchoReply, ID: p.ICMP4.ID, Seq: p.ICMP4.Seq, Data: p.ICMP4.Data,
		})
	}
	if fn := h.onICMPIn; fn != nil {
		fn(p)
	}
}

// Ping sends an ICMP echo request.
func (h *Host) Ping(dst netip.Addr, id, seq uint16) {
	h.sendIPv4(dst, layers.IPProtoICMP, &layers.ICMPv4{
		Type: layers.ICMPv4Echo, ID: id, Seq: seq, Data: []byte("abcdefgh"),
	})
}

func (h *Host) sendICMPUnreachable(dst netip.Addr, code uint8, original []byte) {
	// Per RFC 792 the payload carries the offending IP header + 8 bytes, so
	// scanners can match unreachables to probes.
	if len(original) > 28 {
		original = original[:28]
	}
	h.sendIPv4(dst, layers.IPProtoICMP, &layers.ICMPv4{
		Type: layers.ICMPv4Unreachable, Code: code,
		Data: append([]byte(nil), original...),
	})
}

// --- NDP / ICMPv6 ----------------------------------------------------------

func (h *Host) handleICMPv6(p *layers.Packet) {
	if !h.Policy.EnableIPv6 {
		return
	}
	switch p.ICMP6.Type {
	case layers.ICMPv6NeighborSolicit:
		if p.ICMP6.Target == h.ip6 {
			if p.ICMP6.HasLink {
				h.arp[p.SrcIP()] = p.ICMP6.LinkAddr
				h.flushPending(p.SrcIP())
			}
			h.sendNeighborAdvert(p.SrcIP())
		}
	case layers.ICMPv6NeighborAdvert:
		if p.ICMP6.HasLink {
			h.arp[p.ICMP6.Target] = p.ICMP6.LinkAddr
			h.flushPending(p.ICMP6.Target)
		}
	case layers.ICMPv6EchoRequest:
		if h.Policy.RespondEcho {
			h.sendIPv6(p.SrcIP(), layers.IPProtoICMPv6, &layers.ICMPv6{
				Type: layers.ICMPv6EchoReply, Data: p.ICMP6.Data,
			})
		}
	}
}

func (h *Host) sendNeighborSolicit(target netip.Addr) {
	// Solicited-node multicast destination.
	t := target.As16()
	var g [16]byte
	g[0], g[1], g[11], g[12] = 0xff, 0x02, 0x01, 0xff
	g[13], g[14], g[15] = t[13], t[14], t[15]
	h.sendIPv6(netip.AddrFrom16(g), layers.IPProtoICMPv6, &layers.ICMPv6{
		Type: layers.ICMPv6NeighborSolicit, Target: target,
		LinkAddr: h.mac, HasLink: true,
	})
}

func (h *Host) sendNeighborAdvert(dst netip.Addr) {
	h.sendIPv6(dst, layers.IPProtoICMPv6, &layers.ICMPv6{
		Type: layers.ICMPv6NeighborAdvert, Target: h.ip6,
		LinkAddr: h.mac, HasLink: true,
	})
}

// AnnounceIPv6 sends the unsolicited neighbor advertisement SLAAC hosts emit
// on boot — the MAC-exposure channel of §5.1.
func (h *Host) AnnounceIPv6() {
	if !h.Policy.EnableIPv6 {
		return
	}
	h.sendIPv6(netx.AllNodesV6, layers.IPProtoICMPv6, &layers.ICMPv6{
		Type: layers.ICMPv6NeighborAdvert, Target: h.ip6,
		LinkAddr: h.mac, HasLink: true,
	})
}

// --- IP send helpers -------------------------------------------------------

func (h *Host) sendIPv4(dst netip.Addr, proto uint8, body layers.Serializable) {
	h.ipID++
	id := h.ipID
	h.resolveAndSend(dst, func(dstMAC netx.MAC) []byte {
		frame, _ := layers.Serialize(
			&layers.Ethernet{Src: h.mac, Dst: dstMAC, EtherType: layers.EtherTypeIPv4},
			&layers.IPv4{Protocol: proto, Src: h.ip4, Dst: dst, ID: id},
			body)
		return frame
	})
}

func (h *Host) sendIPv6(dst netip.Addr, proto uint8, body layers.Serializable) {
	h.resolveAndSend(dst, func(dstMAC netx.MAC) []byte {
		frame, _ := layers.Serialize(
			&layers.Ethernet{Src: h.mac, Dst: dstMAC, EtherType: layers.EtherTypeIPv6},
			&layers.IPv6{NextHeader: proto, Src: h.ip6, Dst: dst},
			body)
		return frame
	})
}

// SendIPv4Proto emits a bare IPv4 packet with an arbitrary protocol number
// (IP-protocol scans).
func (h *Host) SendIPv4Proto(dst netip.Addr, proto uint8, payload []byte) {
	h.sendIPv4(dst, proto, layers.RawPayload(payload))
}

// SetICMPHook registers an observer for inbound ICMP (scanner probes).
func (h *Host) SetICMPHook(fn func(*layers.Packet)) { h.onICMPIn = fn }
