package stack

import (
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/pcap"
)

func TestSynProbeOpenPort(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	b.ListenTCP(80, func(*TCPConn) { t.Error("SYN probe must not complete the handshake") })
	var open *bool
	a.SynProbe(b.IPv4(), 80, func(o bool) { open = &o })
	f.sched.RunFor(5 * time.Second)
	if open == nil || !*open {
		t.Fatal("open port not reported")
	}
	// The probe must end with our RST (half-open scan), and the victim's
	// half-open connection must be torn down.
	sawRst := false
	for _, p := range pcap.Packets(f.cap.All) {
		if p.HasTCP && p.TCP.FlagSet(layers.TCPRst) && p.Eth.Src == a.MAC() {
			sawRst = true
		}
	}
	if !sawRst {
		t.Fatal("no RST from the prober")
	}
	if len(b.tcpConns) != 0 {
		t.Fatalf("victim retains %d half-open conns", len(b.tcpConns))
	}
}

func TestSynProbeClosedPort(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	var open *bool
	a.SynProbe(b.IPv4(), 81, func(o bool) { open = &o })
	f.sched.RunFor(5 * time.Second)
	if open == nil || *open {
		t.Fatal("closed port not reported as closed")
	}
}

func TestSynProbeFilteredHostTimesOut(t *testing.T) {
	f := newFixture()
	a := f.host(10)
	pol := DefaultPolicy
	pol.RespondTCPRst = false
	b := NewHost(f.net, [6]byte{2, 0, 0, 0, 0, 90}, pol)
	b.SetIPv4(f.host(91).IPv4()) // reuse helper for address shape
	called := false
	a.SynProbe(b.IPv4(), 81, func(bool) { called = true })
	f.sched.RunFor(10 * time.Second)
	if called {
		t.Fatal("filtered host produced a verdict")
	}
	// The probe conn must be reaped to keep full sweeps bounded.
	if len(a.tcpConns) != 0 {
		t.Fatalf("prober retains %d conns after timeout", len(a.tcpConns))
	}
}

func TestSynProbeManyPortsNoLeak(t *testing.T) {
	f := newFixture()
	a, b := f.host(10), f.host(11)
	b.ListenTCP(80, func(*TCPConn) {})
	open := 0
	for port := uint16(70); port < 120; port++ {
		a.SynProbe(b.IPv4(), port, func(o bool) {
			if o {
				open++
			}
		})
	}
	f.sched.RunFor(10 * time.Second)
	if open != 1 {
		t.Fatalf("found %d open ports, want 1", open)
	}
	if len(a.tcpConns) != 0 {
		t.Fatalf("%d probe conns leaked", len(a.tcpConns))
	}
}
