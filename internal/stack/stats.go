package stack

import (
	"iotlan/internal/layers"
	"iotlan/internal/obs"
)

// TCP segment kinds for stack_tcp_segments{kind,dir}.
const (
	segSyn    = "syn"
	segSynAck = "synack"
	segRst    = "rst"
	segFin    = "fin"
	segData   = "data"
	segAck    = "ack"
)

var segKinds = []string{segSyn, segSynAck, segRst, segFin, segData, segAck}

// tcpStats caches the stack-layer counter handles. All hosts on a network
// share the same underlying series (the registry dedups by key), so the
// metrics aggregate across the whole simulated LAN.
type tcpStats struct {
	out, in     map[string]*obs.Counter
	bytesOut    *obs.Counter
	bytesIn     *obs.Counter
	handshakes  *obs.Counter
	retransmits *obs.Counter
}

func newTCPStats(reg *obs.Registry) *tcpStats {
	st := &tcpStats{
		out:        make(map[string]*obs.Counter, len(segKinds)),
		in:         make(map[string]*obs.Counter, len(segKinds)),
		bytesOut:   reg.Counter("stack_tcp_bytes", "dir", "out"),
		bytesIn:    reg.Counter("stack_tcp_bytes", "dir", "in"),
		handshakes: reg.Counter("stack_tcp_handshakes"),
		// The simulated LAN never loses segments, so this stays zero — the
		// series exists to make that modelling assumption visible.
		retransmits: reg.Counter("stack_tcp_retransmits"),
	}
	for _, k := range segKinds {
		st.out[k] = reg.Counter("stack_tcp_segments", "kind", k, "dir", "out")
		st.in[k] = reg.Counter("stack_tcp_segments", "kind", k, "dir", "in")
	}
	return st
}

// segKind classifies a segment by flags and payload size.
func segKind(flags uint8, payloadLen int) string {
	switch {
	case flags&layers.TCPRst != 0:
		return segRst
	case flags&layers.TCPSyn != 0 && flags&layers.TCPAck != 0:
		return segSynAck
	case flags&layers.TCPSyn != 0:
		return segSyn
	case flags&layers.TCPFin != 0:
		return segFin
	case payloadLen > 0:
		return segData
	default:
		return segAck
	}
}
