package stack

import (
	"net/netip"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
)

// Datagram is a received UDP datagram with its addressing context.
type Datagram struct {
	Src     netip.Addr
	SrcPort uint16
	Dst     netip.Addr // the address it was sent to (unicast/multicast/bcast)
	DstPort uint16
	Payload []byte
}

// UDPSock is a bound UDP port.
type UDPSock struct {
	host *Host
	Port uint16
	// OnDatagram handles inbound datagrams; nil sockets still occupy the
	// port (open but silent, as scans observe).
	OnDatagram func(dg Datagram)
}

// OpenUDP binds a UDP port. Binding an in-use port replaces the handler.
func (h *Host) OpenUDP(port uint16, fn func(dg Datagram)) *UDPSock {
	s := &UDPSock{host: h, Port: port, OnDatagram: fn}
	h.udp[port] = s
	return s
}

// CloseUDP releases a bound port.
func (h *Host) CloseUDP(port uint16) { delete(h.udp, port) }

// UDPPortOpen reports whether a port is bound (scan ground truth).
func (h *Host) UDPPortOpen(port uint16) bool { _, ok := h.udp[port]; return ok }

// OpenUDPEphemeral binds an ephemeral client port.
func (h *Host) OpenUDPEphemeral(fn func(dg Datagram)) *UDPSock {
	return h.OpenUDP(h.ephemeralPort(), fn)
}

// Close releases the socket's port.
func (s *UDPSock) Close() { s.host.CloseUDP(s.Port) }

// SendTo emits a datagram from this socket.
func (s *UDPSock) SendTo(dst netip.Addr, dstPort uint16, payload []byte) {
	s.host.SendUDP(s.Port, dst, dstPort, payload)
}

// SendUDP emits a UDP datagram. dst may be unicast, multicast or broadcast;
// IPv6 destinations are sent from the link-local address.
func (h *Host) SendUDP(srcPort uint16, dst netip.Addr, dstPort uint16, payload []byte) {
	u := &layers.UDP{SrcPort: srcPort, DstPort: dstPort}
	if dst.Is6() {
		if !h.Policy.EnableIPv6 {
			return
		}
		u.SetAddrs(h.ip6, dst)
		h.sendIPv6(dst, layers.IPProtoUDP, serializeUDP(u, payload))
		return
	}
	u.SetAddrs(h.ip4, dst)
	h.sendIPv4(dst, layers.IPProtoUDP, serializeUDP(u, payload))
}

// serializeUDP packages a UDP header+payload as a single Serializable so the
// IP layer sees the full segment.
func serializeUDP(u *layers.UDP, payload []byte) layers.Serializable {
	return serializeFunc(func(rest []byte) ([]byte, error) {
		seg, err := u.SerializeTo(payload)
		if err != nil {
			return nil, err
		}
		return append(seg, rest...), nil
	})
}

type serializeFunc func([]byte) ([]byte, error)

func (f serializeFunc) SerializeTo(p []byte) ([]byte, error) { return f(p) }

// JoinGroup subscribes to a multicast group, emitting an IGMPv3 report for
// IPv4 groups (the membership traffic Figure 2 counts).
func (h *Host) JoinGroup(group netip.Addr) {
	if h.groups[group] {
		return
	}
	h.groups[group] = true
	if group.Is4() {
		h.sendIPv4(netx.IGMPGroup, layers.IPProtoIGMP, &layers.IGMP{
			Type: layers.IGMPv3Report, Group: group,
		})
	}
}

// LeaveGroup unsubscribes and emits an IGMP leave for IPv4 groups.
func (h *Host) LeaveGroup(group netip.Addr) {
	if !h.groups[group] {
		return
	}
	delete(h.groups, group)
	if group.Is4() {
		h.sendIPv4(netx.IGMPGroup, layers.IPProtoIGMP, &layers.IGMP{
			Type: layers.IGMPLeave, Group: group,
		})
	}
}

func (h *Host) handleUDP(p *layers.Packet) {
	sock, ok := h.udp[p.UDP.DstPort]
	if !ok {
		dst := p.DstIP()
		if h.Policy.RespondUDPUnreachable && dst == h.ip4 && p.HasIP4 {
			h.sendICMPUnreachable(p.SrcIP(), 3, p.Data[14:]) // port unreachable
		}
		return
	}
	if sock.OnDatagram != nil {
		sock.OnDatagram(Datagram{
			Src: p.SrcIP(), SrcPort: p.UDP.SrcPort,
			Dst: p.DstIP(), DstPort: p.UDP.DstPort,
			Payload: p.AppPayload,
		})
	}
}
