package device

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/coap"
	"iotlan/internal/dhcp"
	"iotlan/internal/lan"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

// miniLab wires a router+DHCP+capture without importing testbed (which
// would create an import cycle in this package's tests).
type miniLab struct {
	sched *sim.Scheduler
	net   *lan.Network
	cap   *pcap.Capture
}

func newMiniLab() *miniLab {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	c := pcap.NewCapture()
	n.Tap(c.Add)
	router := stack.NewHost(n, netx.MAC{0x02, 0x42, 0, 0, 0, 1}, stack.DefaultPolicy)
	router.SetIPv4(netip.MustParseAddr("192.168.10.1"))
	dhcp.NewServer(router)
	return &miniLab{sched: s, net: n, cap: c}
}

func (m *miniLab) boot(p *Profile, last byte) *Device {
	mac := netx.MAC{p.OUI[0], p.OUI[1], p.OUI[2], 0, 0, last}
	policy := stack.DefaultPolicy
	policy.EnableIPv6 = p.IPv6
	d := New(p, stack.NewHost(m.net, mac, policy))
	d.Start()
	return d
}

func (m *miniLab) packets() []*layers.Packet { return pcap.Packets(m.cap.All) }

func TestRuntimeEAPOLAndXID(t *testing.T) {
	m := newMiniLab()
	m.boot(nintendoSwitch(), 9)
	m.sched.RunFor(10 * time.Minute)
	var eapol, xid bool
	for _, p := range m.packets() {
		if p.HasEAPOL {
			eapol = true
		}
		if p.HasLLC && p.LLC.IsXID() {
			xid = true
		}
	}
	if !eapol {
		t.Error("no EAPOL frames from the Switch")
	}
	if !xid {
		t.Error("no XID/LLC frames from the Switch")
	}
}

func TestRuntimeLifxQuirk(t *testing.T) {
	m := newMiniLab()
	m.boot(echoSpeaker(1, "Echo Spot"), 9)
	m.sched.RunFor(15 * time.Minute)
	found := false
	for _, p := range m.packets() {
		if p.HasUDP && p.UDP.DstPort == 56700 && p.Eth.Dst.IsBroadcast() {
			found = true
		}
	}
	if !found {
		t.Fatal("Echo did not emit the Lifx 56700 broadcast (§5.1 quirk)")
	}
}

func TestRuntimeCoAPExchange(t *testing.T) {
	m := newMiniLab()
	fridge := m.boot(samsungFridge(), 9)
	pod := m.boot(homePod(1, "HomePod Mini", true), 10)
	_ = pod
	m.sched.RunFor(15 * time.Minute)
	var request, response bool
	for _, p := range m.packets() {
		if !p.HasUDP || (p.UDP.DstPort != coap.Port && p.UDP.SrcPort != coap.Port) {
			continue
		}
		msg, err := coap.Unmarshal(p.AppPayload)
		if err != nil {
			continue
		}
		if msg.Code == coap.CodeGET && msg.Path() == "/oic/res" {
			request = true
		}
		if msg.Code == coap.CodeContent {
			response = true
		}
	}
	if !request {
		t.Error("no CoAP /oic/res requests (IoTivity, §5.1)")
	}
	if !response {
		t.Error("no CoAP content responses")
	}
	_ = fridge
}

func TestRuntimeDNSServerAnswers(t *testing.T) {
	m := newMiniLab()
	pod := m.boot(homePod(1, "HomePod Mini", true), 9)
	m.sched.RunFor(time.Minute)
	if !pod.Host.UDPPortOpen(53) {
		t.Fatal("HomePod Mini DNS server not listening")
	}
}

func TestRuntimeTelnetBanner(t *testing.T) {
	m := newMiniLab()
	cam := m.boot(cheapCam("test-cam", "ICSee", "X5", netx.OUI{0x9c, 0xa5, 0x25}, 23), 9)
	m.sched.RunFor(time.Minute)
	client := stack.NewHost(m.net, netx.MAC{0x02, 0xcc, 0, 0, 0, 1}, stack.DefaultPolicy)
	client.SetIPv4(netip.MustParseAddr("192.168.10.200"))
	var banner []byte
	conn := client.DialTCP(cam.IP(), 23)
	conn.OnData = func(c *stack.TCPConn, data []byte) { banner = append(banner, data...) }
	m.sched.RunFor(5 * time.Second)
	if len(banner) == 0 || banner[0] != 0xff {
		t.Fatalf("telnet greeting: %q", banner)
	}
}

func TestRuntimeARPSweepAndPublicProbes(t *testing.T) {
	m := newMiniLab()
	echo := m.boot(echoSpeaker(1, "Echo Spot"), 9)
	_ = echo
	m.sched.RunFor(5 * time.Minute) // first sweep fires at ~1 min
	targets := map[[4]byte]bool{}
	for _, p := range m.packets() {
		if p.HasARP && p.ARP.Op == layers.ARPRequest {
			targets[p.ARP.TargetIP] = true
		}
	}
	if len(targets) < 250 {
		t.Fatalf("Echo sweep probed %d addresses, want ~254", len(targets))
	}

	// A public-IP prober (§5.1: six devices).
	m2 := newMiniLab()
	m2.boot(wemoPlug(), 9)
	m2.sched.RunFor(5 * time.Minute)
	public := false
	for _, p := range m2.packets() {
		if p.HasARP && p.ARP.TargetIP == [4]byte{8, 8, 8, 8} {
			public = true
		}
	}
	if !public {
		t.Fatal("WeMo did not ARP-probe a public IP")
	}
}

func TestRuntimeICMPv6Probes(t *testing.T) {
	m := newMiniLab()
	hub := m.boot(googleSpeaker(3, "Nest Hub"), 9)
	if hub.Profile.ICMPv6ProbeCount != 2597 {
		t.Fatalf("Nest Hub probe count %d", hub.Profile.ICMPv6ProbeCount)
	}
	m.sched.RunFor(20 * time.Minute)
	probes := 0
	for _, p := range m.packets() {
		if p.HasICMP6 && p.ICMP6.Type == layers.ICMPv6NeighborSolicit {
			probes++
		}
	}
	if probes < 100 {
		t.Fatalf("Nest Hub sent %d multicast NS probes", probes)
	}
}

func TestRuntimeRTPSyncAndPeerTLS(t *testing.T) {
	m := newMiniLab()
	a := m.boot(echoSpeaker(1, "Echo Spot"), 9)
	b := m.boot(echoSpeaker(2, "Echo Show 5"), 10)
	a.Peers = []*Device{b}
	b.Peers = []*Device{a}
	m.sched.RunFor(2 * time.Minute)

	a.RTPSync(b, 5)
	a.DialPeerTLS(b)
	m.sched.RunFor(10 * time.Second)

	var rtpPkts, tlsPkts int
	for _, p := range m.packets() {
		if p.HasUDP && p.UDP.DstPort == 55444 {
			rtpPkts++
		}
		if p.HasTCP && len(p.AppPayload) > 2 && p.AppPayload[0] == 22 && p.AppPayload[1] == 3 {
			tlsPkts++
		}
	}
	if rtpPkts < 5 {
		t.Errorf("RTP packets: %d", rtpPkts)
	}
	if tlsPkts < 2 {
		t.Errorf("TLS handshake packets: %d", tlsPkts)
	}
}

func TestRuntimeMatterInstanceIsMAC(t *testing.T) {
	m := newMiniLab()
	echo := m.boot(echoSpeaker(1, "Echo Spot"), 9)
	m.sched.RunFor(10 * time.Minute)
	found := false
	compact := echo.MAC().Compact()
	for _, r := range m.cap.All {
		p := r.Decode()
		if p.HasUDP && p.UDP.DstPort == 5353 {
			if containsStr(p.AppPayload, compact) && containsStr(p.AppPayload, "_matterc") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("Matter commissionable advertisement does not embed the MAC")
	}
}

func containsStr(b []byte, s string) bool {
	for i := 0; i+len(s) <= len(b); i++ {
		if string(b[i:i+len(s)]) == s {
			return true
		}
	}
	return false
}

func TestRuntimeDoubleStartIsIdempotent(t *testing.T) {
	m := newMiniLab()
	d := m.boot(hueHub(), 9)
	before := m.sched.Pending()
	d.Start() // second call must be a no-op
	if m.sched.Pending() != before {
		t.Fatal("second Start scheduled more work")
	}
}
