package device

import (
	"fmt"
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/ssdp"
	"iotlan/internal/tlsx"
)

// Subset returns fresh profiles for the named catalog devices, in the given
// order. It panics on an unknown name — subset labs are built from literal
// name lists, so a typo is a programming error.
func Subset(names ...string) []*Profile {
	byName := make(map[string]*Profile)
	for _, p := range Catalog() {
		byName[p.Name] = p
	}
	out := make([]*Profile, len(names))
	for i, name := range names {
		p, ok := byName[name]
		if !ok {
			panic(fmt.Sprintf("device: no catalog profile named %q", name))
		}
		out[i] = p
	}
	return out
}

// Catalog returns the full MonIoTr testbed inventory: 93 devices across
// 78 unique vendor/model combinations, grouped per Table 3, with behaviour
// profiles encoding the protocol observations of §4 and §5.
func Catalog() []*Profile {
	var ps []*Profile
	add := func(p *Profile) { ps = append(ps, p) }

	// --- Voice assistants (28) ---------------------------------------------
	echoModels := []string{
		"Echo Spot", "Echo Spot", "Echo Show 5", "Echo Show 5",
		"Echo Dot 3", "Echo Dot 3", "Echo Dot 4", "Echo Dot 4",
		"Echo Plus", "Echo Plus", "Echo Studio", "Echo Flex",
		"Echo Dot 3", "Echo 2", "Echo 2", "Echo Flex",
	}
	for i, model := range echoModels {
		add(echoSpeaker(i+1, model))
	}
	add(homePod(1, "HomePod Mini", true))
	add(homePod(2, "HomePod Mini", true))
	add(homePod(3, "HomePod", false))
	add(metaPortal())
	googleModels := []string{
		"Home Mini", "Home Mini", "Nest Hub", "Nest Hub Max",
		"Nest Mini", "Nest Mini", "Home",
	}
	for i, model := range googleModels {
		add(googleSpeaker(i+1, model))
	}

	// --- Surveillance (19) ---------------------------------------------------
	add(amcrestCam())
	add(camera("arlo-cam-1", "Arlo", "Pro 3", netx.OUI{0xd4, 0x81, 0xd7}, false))
	add(camera("arlo-cam-2", "Arlo", "Pro 3", netx.OUI{0xd4, 0x81, 0xd7}, false))
	add(camera("blink-cam", "Blink", "Outdoor", netx.OUI{0x74, 0xc2, 0x46}, false))
	add(dlinkCam())
	add(nestCam(1))
	add(nestCam(2))
	add(cheapCam("icsee-cam", "ICSee", "X5", netx.OUI{0x9c, 0xa5, 0x25}, 23))
	add(lefunCam())
	add(microsevenCam())
	add(ringCam(1, "Stick Up Cam"))
	add(ringCam(2, "Stick Up Cam"))
	add(ringCam(3, "Spotlight Cam"))
	add(ringDoorbell())
	add(tuyaCam())
	add(cheapCam("ubell-doorbell", "Ubell", "WiFi Doorbell", netx.OUI{0x38, 0x1f, 0x8d}, 2323))
	add(cheapCam("wansview-cam", "Wansview", "Q5", netx.OUI{0x78, 0xa5, 0xdd}, 0))
	add(camera("wyze-cam", "Wyze", "Cam v3", netx.OUI{0x2c, 0xaa, 0x8e}, true))
	add(camera("yi-cam", "Yi", "Home Camera", netx.OUI{0x0c, 0x8c, 0x24}, true))

	// --- Media/TV (7) --------------------------------------------------------
	add(fireTV())
	add(appleTV())
	add(chromecast())
	add(lgTV())
	add(rokuTV())
	add(samsungTV())
	add(tivoStream())

	// --- Home automation (22) ------------------------------------------------
	add(amazonPlug())
	add(hub("aqara-hub", "Aqara", "Hub M2", netx.OUI{0x54, 0xef, 0x44}, PlatformHomeKit))
	add(nestThermostat())
	add(hub("ikea-gateway", "IKEA", "Tradfri Gateway", netx.OUI{0x1a, 0x11, 0x30}, PlatformNone))
	add(plug("lg-plug", "LG", "Smart Plug", netx.OUI{0x88, 0x36, 0x6c}, PlatformNone))
	add(plug("magichome-strip", "MagicHome", "LED Strip", netx.OUI{0x60, 0x01, 0x94}, PlatformTuya))
	add(merossPlug(1, "MSS110"))
	add(merossPlug(2, "MSS110"))
	add(merossPlug(3, "MSS210"))
	add(hueHub())
	add(ringChime())
	add(hub("sengled-hub", "Sengled", "Smart Hub", netx.OUI{0xb0, 0xce, 0x18}, PlatformNone))
	add(smartThingsHub())
	add(hub("switchbot-hub", "SwitchBot", "Hub Mini", netx.OUI{0xc0, 0x97, 0x27}, PlatformAlexa))
	add(tplinkPlug())
	add(tplinkBulb())
	add(tuyaDevice("tuya-plug-1", "Tuya", "Smart Plug", false))
	add(tuyaDevice("tuya-bulb-jinvoo", "Jinvoo", "Smart Bulb", true)) // 3.1: plaintext keys
	add(tuyaDevice("tuya-strip", "Tuya", "Light Strip", false))
	add(wemoPlug())
	add(plug("wiz-bulb", "Wiz", "A60 Bulb", netx.OUI{0x44, 0x4f, 0x8e}, PlatformNone))
	add(plug("yeelight-bulb", "Yeelight", "Color Bulb", netx.OUI{0x78, 0x11, 0xdc}, PlatformNone))

	// --- Home appliances (10) ------------------------------------------------
	add(appliance("anova-cooker", "Anova", "Precision Cooker", netx.OUI{0xcc, 0x50, 0xe3}))
	add(appliance("behmor-brewer", "Behmor", "Connected Brewer", netx.OUI{0x94, 0x10, 0x3e}))
	add(blueairPurifier())
	add(geMicrowave())
	add(appliance("lg-dishwasher", "LG", "Smart Dishwasher", netx.OUI{0x00, 0x12, 0xfb}))
	add(samsungFridge())
	add(appliance("samsung-washer", "Samsung", "Smart Washer", netx.OUI{0x28, 0x6d, 0x97}))
	add(appliance("samsung-dryer", "Samsung", "Smart Dryer", netx.OUI{0x28, 0x6d, 0x97}))
	add(appliance("smarter-coffee", "Smarter", "Coffee 2", netx.OUI{0x5c, 0xcf, 0x7f}))
	add(appliance("xiaomi-cooker", "Xiaomi", "Rice Cooker", netx.OUI{0x7c, 0x49, 0xeb}))

	// --- Generic IoT (7) -------------------------------------------------------
	add(sensor("keyco-air", "Keyco", "Air Quality", netx.OUI{0x84, 0x0d, 0x8e}))
	add(sensor("oxylink-oximeter", "Oxylink", "Oximeter", netx.OUI{0xec, 0xfa, 0xbc}))
	add(sensor("renpho-scale", "Renpho", "Smart Scale", netx.OUI{0x10, 0x2c, 0x6b}))
	add(tuyaSensor())
	add(withings("withings-scale", "Body+ Scale"))
	add(withings("withings-sleep", "Sleep Mat"))
	add(withings("withings-bpm", "BPM Connect"))

	// --- Game console (1) -------------------------------------------------------
	add(nintendoSwitch())

	return ps
}

// ouiFor cycles plausible per-vendor OUI prefixes.
func amazonOUI(i int) netx.OUI {
	ouis := []netx.OUI{{0xfc, 0x65, 0xde}, {0x44, 0x00, 0x49}, {0x74, 0x75, 0x48}, {0x38, 0xf7, 0x3d}, {0x0c, 0x47, 0xc9}}
	return ouis[i%len(ouis)]
}

func googleOUI(i int) netx.OUI {
	ouis := []netx.OUI{{0x1c, 0x53, 0xf9}, {0x54, 0x60, 0x09}, {0x48, 0xd6, 0xd5}, {0x20, 0xdf, 0xb9}}
	return ouis[i%len(ouis)]
}

func echoSpeaker(i int, model string) *Profile {
	p := &Profile{
		Name: fmt.Sprintf("echo-%d", i), Vendor: "Amazon", Model: model,
		Category: VoiceAssistant, Platform: PlatformAlexa, OUI: amazonOUI(i),
		HostnameKind:    HostnameVendorTail,
		DisplayName:     fmt.Sprintf("%s %d", model, i),
		DHCPVendorClass: "dhcpcd-6.8.2:Linux-3.14.29", // old client (§5.1)
		DHCPParams:      []uint8{1, 3, 6, 12, 15, 28, 42, 69, 5, 17},
		IPv6:            true, EAPOL: true, RespondsToScans: true,
		ARP: &ARPBehaviour{SweepInterval: 24 * time.Hour, UnicastProbes: true},
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{
				{InstancePattern: "{display}", Type: "_amzn-wplay._tcp.local", Port: 55443,
					TXT: []string{"n={display}", "u={uuid}", "a={MAC}"}},
				{InstancePattern: "{display}", Type: "_amzn-alexa._tcp.local", Port: 40317,
					TXT: []string{"dn={display}", "u={uuid}"}},
				// Matter commissionable discovery: the instance name IS the
				// MAC, as the spec mandates and §7 criticises.
				{InstancePattern: "{MAC}", Type: "_matterc._udp.local", Port: 5540,
					TXT: []string{"D=3840", "VP=4631+1", "CM=1", "DN={display}", "PH=33"}},
			},
			QueryTypes:       []string{"_amzn-wplay._tcp.local", "_spotify-connect._tcp.local", "_matter._tcp.local"},
			QueryInterval:    40 * time.Second, // 20–100 s band (§5.1)
			AnnounceInterval: 5 * time.Minute,
			AnswerUnicast:    i%5 == 0,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: ssdp.TargetRootDevice}},
			SearchTargets:  []string{ssdp.TargetAll, ssdp.TargetRootDevice}, // generic searches (§5.1)
			SearchInterval: 150 * time.Minute,                               // 2–3 h (§5.1)
			AnswersSearch:  false,
			UPnPVersion:    "1.0",
		},
		TPLink:  &TPLinkSpec{Discover: true, DiscoverInterval: time.Hour},
		RTPPort: 55444,
		HTTP: []HTTPSpec{{Port: 55442, Banner: "AmazonDeviceHTTP/1.1",
			Paths: map[string]string{"/audio/cache": "cached-audio-segment"}}},
		TLS: []TLSSpec{{Port: 55443, Version: tlsx.VersionTLS12, TwoWay: true,
			Cert: tlsx.CertMeta{IssuerCN: "192.168.10.0", SubjectCN: "0.0.0.0", SelfSigned: true,
				KeyBits:   128,
				NotBefore: time.Date(2022, 10, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)}}}, // 3-month validity (§5.2)
		ExtraTCP:  []uint16{4070},
		LifxQuirk: true,
	}
	return p
}

func googleSpeaker(i int, model string) *Profile {
	isHub := model == "Nest Hub" || model == "Nest Hub Max"
	p := &Profile{
		Name: fmt.Sprintf("google-%d", i), Vendor: "Google", Model: model,
		Category: VoiceAssistant, Platform: PlatformGoogleHome, OUI: googleOUI(i),
		HostnameKind:    HostnameDisplay,
		DisplayName:     fmt.Sprintf("Jane Doe's %s", model), // user-defined (§5.1)
		DHCPVendorClass: "dhcpcd-5.5.6",
		DHCPParams:      []uint8{1, 3, 6, 12, 15, 28, 33, 42},
		IPv6:            true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{
				{InstancePattern: "{display}", Type: "_googlecast._tcp.local", Port: 8009,
					TXT: []string{"id={uuid}", "md={model}", "fn={display}", "bs={MAC}"}},
				{InstancePattern: "{display}", Type: "_googlezone._tcp.local", Port: 10001,
					TXT: []string{"id={uuid}"}},
			},
			QueryTypes:       []string{"_googlecast._tcp.local", "_googlezone._tcp.local", "_spotify-connect._tcp.local"},
			QueryInterval:    20 * time.Second, // §5.1: every ~20 s
			AnnounceInterval: 2 * time.Minute,
			AnswerUnicast:    true,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: ssdp.TargetDial}},
			SearchTargets:  []string{ssdp.TargetDial, ssdp.TargetMediaRender}, // specific (§5.1)
			SearchInterval: 20 * time.Second,
			NotifyInterval: 10 * time.Minute,
			AnswersSearch:  isHub, // the two Nest hubs answer (Chromecast built-in)
			DescriptionXML: isHub,
			UPnPVersion:    "1.1",
		},
		TPLink:  &TPLinkSpec{Discover: true, DiscoverInterval: 2 * time.Hour},
		RTPPort: 10002,
		HTTP: []HTTPSpec{{Port: 8008, Banner: "Chromecast/1.56.281627 Linux/4.9.113",
			UserAgent: "Chromecast OS/1.56 CrKey/1.56.500000",
			Paths:     map[string]string{"/setup/eureka_info": `{"name":"{display}","mac":"{MAC}"}`}}},
		TLS: []TLSSpec{{Port: 8009, Version: tlsx.VersionTLS12,
			Cert: tlsx.CertMeta{IssuerCN: "Google Cast Root CA", SubjectCN: "{ip}",
				KeyBits:   96, // 64–122-bit key → CVE-2016-2183 (§5.2)
				NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2042, 1, 1, 0, 0, 0, 0, time.UTC)}}}, // 20-year leaf
		Vulns: []Vulnerability{{ID: "CVE-2016-2183", Port: 8009,
			Summary: "TLS service uses a small encryption key enabling birthday attacks"}},
	}
	if isHub {
		p.ICMPv6ProbeCount = 2597 // Nest Hub's multicast ICMPv6 probes (§5.1)
	}
	return p
}

func homePod(i int, model string, mini bool) *Profile {
	p := &Profile{
		Name: fmt.Sprintf("homepod-%d", i), Vendor: "Apple", Model: model,
		Category: VoiceAssistant, Platform: PlatformHomeKit, OUI: netx.OUI{0xf0, 0x18, 0x98},
		HostnameKind: HostnameDisplay,
		DisplayName:  fmt.Sprintf("Jane Doe's Kitchen %s", model),
		DHCPParams:   []uint8{1, 3, 6, 15, 119, 252},
		IPv6:         true, EAPOL: true, RespondsToScans: true,
		SilentToBroadcastARP: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{
				{InstancePattern: "{display}", Type: "_airplay._tcp.local", Port: 7000,
					TXT: []string{"deviceid={mac}", "model=AudioAccessory5,1", "psi={uuid}"}},
				{InstancePattern: "{MAC}@{display}", Type: "_raop._tcp.local", Port: 7000},
				{InstancePattern: "{display}", Type: "_hap._tcp.local", Port: 49152,
					TXT: []string{"id={mac}", "md={model}"}},
				{InstancePattern: "{display}", Type: "_sleep-proxy._udp.local", Port: 56700},
			},
			QueryTypes:       []string{"_airplay._tcp.local", "_companion-link._tcp.local", "_homekit._tcp.local"},
			QueryInterval:    60 * time.Second,
			AnnounceInterval: 4 * time.Minute,
			AnswerUnicast:    true,
		},
		TLS: []TLSSpec{{Port: 49152, Version: tlsx.VersionTLS13,
			Cert: tlsx.CertMeta{IssuerCN: "Apple HomeKit CA", SubjectCN: "homepod.local", KeyBits: 256,
				NotBefore: time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)}}},
	}
	if mini {
		p.CoAP = true
		p.DNS = &DNSSpec{Software: "SheerDNS 1.0.0"} // §5.2 finding
		p.Vulns = []Vulnerability{
			{ID: "SheerDNS-1.0.0", Port: 53, Summary: "outdated DNS server with known flaws"},
			{ID: "dns-cache-snooping", Port: 53, Summary: "DNS cache snooping reveals resolved names"},
		}
	}
	return p
}

func metaPortal() *Profile {
	return &Profile{
		Name: "meta-portal", Vendor: "Meta", Model: "Portal Go",
		Category: VoiceAssistant, Platform: PlatformAlexa, OUI: netx.OUI{0x60, 0xf1, 0x89},
		HostnameKind: HostnameModel, DisplayName: "Portal",
		DHCPParams: []uint8{1, 3, 6, 15, 26},
		IPv6:       true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "Portal-{tail}", Type: "_airplay._tcp.local", Port: 7000,
				TXT: []string{"deviceid={mac}"}}},
			QueryInterval: 90 * time.Second, QueryTypes: []string{"_airplay._tcp.local"},
			AnnounceInterval: 5 * time.Minute,
		},
		TLS: []TLSSpec{{Port: 8443, Version: tlsx.VersionTLS12,
			Cert: tlsx.CertMeta{IssuerCN: "Meta Device CA", SubjectCN: "portal.local", KeyBits: 128,
				NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}}},
	}
}

func camera(name, vendor, model string, oui netx.OUI, cloudOnly bool) *Profile {
	p := &Profile{
		Name: name, Vendor: vendor, Model: model, Category: Surveillance,
		OUI: oui, HostnameKind: HostnameModel,
		DHCPVendorClass: "udhcp 1.19.4",
		DHCPParams:      []uint8{1, 3, 6, 12, 15, 28},
		EAPOL:           true, RespondsToScans: !cloudOnly,
		SilentToBroadcastARP: cloudOnly,
	}
	if !cloudOnly {
		p.HTTP = []HTTPSpec{{Port: 80, Banner: vendor + "-HTTPD/1.0",
			Paths: map[string]string{"/": "<html>camera</html>"}}}
		// Local-API cameras stream RTSP and expose a vendor control port
		// derived from the model (the §4.2 long tail).
		p.ExtraTCP = append(p.ExtraTCP, 554, uint16(8000+int(model[0])%80))
	}
	return p
}

func cheapCam(name, vendor, model string, oui netx.OUI, telnetPort uint16) *Profile {
	p := camera(name, vendor, model, oui, false)
	p.TelnetPort = telnetPort
	if telnetPort != 0 {
		p.Vulns = append(p.Vulns, Vulnerability{ID: "telnet-open", Port: telnetPort,
			Summary: "telnet daemon with default credentials"})
	}
	p.ExtraUDP = []uint16{34567}
	return p
}

func amcrestCam() *Profile {
	p := camera("amcrest-cam", "Amcrest", "IP2M-841", netx.OUI{0x9c, 0x8e, 0xcd}, false)
	p.DisplayName = "AMC020SC43PJ749D66"
	p.SSDP = &SSDPBehaviour{
		Ads:            []ssdp.Advertisement{{Target: ssdp.TargetBasic, Server: "Linux, UPnP/1.0, Private UPnP SDK"}},
		NotifyInterval: 10 * time.Minute,
		AnswersSearch:  true,
		DescriptionXML: true,
		UPnPVersion:    "1.0",
	}
	p.HTTP = []HTTPSpec{{Port: 80, Banner: "Amcrest-HTTPD/2.4",
		Paths: map[string]string{"/": "<html>Amcrest</html>", "/cgi-bin/magicBox.cgi": "sn={serial}"}}}
	p.Vulns = []Vulnerability{{ID: "upnp-1.0", Port: 1900, Summary: "deprecated UPnP 1.0 stack"}}
	return p
}

func dlinkCam() *Profile {
	p := camera("dlink-cam", "D-Link", "DCS-8000LH", netx.OUI{0xb0, 0xc5, 0x54}, false)
	p.TLS = []TLSSpec{{Port: 443, Version: tlsx.VersionTLS12,
		Cert: tlsx.CertMeta{IssuerCN: "D-Link Device", SubjectCN: "dcs.local", SelfSigned: true, KeyBits: 128,
			NotBefore: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:  time.Date(2046, 1, 1, 0, 0, 0, 0, time.UTC)}}} // 28-year self-signed (§5.2)
	return p
}

func nestCam(i int) *Profile {
	p := camera(fmt.Sprintf("nest-cam-%d", i), "Google", "Nest Cam", googleOUI(i+3), true)
	p.Platform = PlatformGoogleHome
	p.IPv6 = true
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: "Nest-Cam-{tail}", Type: "_nest._tcp.local", Port: 443,
			TXT: []string{"id={uuid}"}}},
		AnnounceInterval: 10 * time.Minute,
	}
	return p
}

func lefunCam() *Profile {
	p := camera("lefun-cam", "Lefun", "C2 720p", netx.OUI{0x00, 0x55, 0xda}, false)
	p.HTTP = []HTTPSpec{{Port: 80, Banner: "GoAhead-Webs",
		Paths: map[string]string{
			"/":           "<html>Lefun</html>",
			"/backup.cgi": "config-backup: admin:admin wifi_ssid=MonIoTr wifi_pass=redacted", // §5.2
		}}}
	p.Vulns = []Vulnerability{{ID: "http-backup-exposure", Port: 80,
		Summary: "HTTP server allows unauthenticated access to backup files"}}
	return p
}

func microsevenCam() *Profile {
	p := camera("microseven-cam", "Microseven", "M7B77", netx.OUI{0x00, 0x92, 0x58}, false)
	p.HTTP = []HTTPSpec{{Port: 80, Banner: "lighttpd/1.4.35 jquery/1.2",
		Paths: map[string]string{
			"/":                      `<html><script src="jquery-1.2.js"></script></html>`,
			"/onvif/snapshot":        "\xff\xd8\xffJFIF-fake-snapshot-bytes", // unauthenticated ONVIF (§5.2)
			"/cgi-bin/users.cgi":     "admin,viewer,service",
			"/cgi-bin/recording.cgi": "/mnt/sdcard/recordings",
		}}}
	p.Vulns = []Vulnerability{
		{ID: "CVE-2020-11022", Port: 80, Summary: "jQuery 1.2 with multiple XSS vulnerabilities"},
		{ID: "onvif-unauth-snapshot", Port: 80, Summary: "unauthenticated ONVIF snapshot access"},
		{ID: "user-account-listing", Port: 80, Summary: "user accounts listable without auth"},
	}
	return p
}

func ringCam(i int, model string) *Profile {
	p := camera(fmt.Sprintf("ring-cam-%d", i), "Ring", model, netx.OUI{0x34, 0x3e, 0xa4}, true)
	p.Platform = PlatformAlexa
	p.HostnameKind = HostnameModel // bare model name (§5.1)
	return p
}

func ringDoorbell() *Profile {
	p := camera("ring-doorbell", "Ring", "Video Doorbell 4", netx.OUI{0x54, 0xe0, 0x19}, true)
	p.Platform = PlatformAlexa
	return p
}

func tuyaCam() *Profile {
	p := camera("tuya-cam", "Tuya", "Smart Camera", netx.OUI{0x10, 0xd5, 0x61}, false)
	p.Platform = PlatformTuya
	p.HostnameKind = HostnameVendorTail
	p.Tuya = &TuyaSpec{Serve: true, BroadcastInterval: 20 * time.Second}
	return p
}

func fireTV() *Profile {
	return &Profile{
		Name: "fire-tv", Vendor: "Amazon", Model: "Fire TV Stick 4K",
		Category: MediaTV, Platform: PlatformAlexa, OUI: amazonOUI(7),
		HostnameKind: HostnameVendorTail, DisplayName: "Fire TV",
		DHCPVendorClass: "dhcpcd-6.8.2:Linux-4.9.113",
		DHCPParams:      []uint8{1, 3, 6, 12, 15, 28, 42},
		IPv6:            true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "Fire TV-{tail}", Type: "_amzn-wplay._tcp.local", Port: 55443,
				TXT: []string{"u={uuid}", "a={MAC}"}}},
			QueryInterval: 60 * time.Second, QueryTypes: []string{"_amzn-wplay._tcp.local"},
			AnnounceInterval: 5 * time.Minute,
		},
		SSDP: &SSDPBehaviour{
			Ads:                []ssdp.Advertisement{{Target: ssdp.TargetDial}},
			NotifyInterval:     5 * time.Minute,
			AnswersSearch:      true,
			DescriptionXML:     true,
			AnnounceBadAddress: true, // the /16 misconfiguration (§5.1)
			UPnPVersion:        "1.0",
		},
		HTTP: []HTTPSpec{{Port: 8008, Banner: "FireTV/1.0",
			Paths: map[string]string{"/apps/dial": "dial-registry"}}},
		Vulns: []Vulnerability{{ID: "upnp-1.0", Port: 1900, Summary: "deprecated UPnP 1.0 stack"}},
	}
}

func appleTV() *Profile {
	return &Profile{
		Name: "apple-tv", Vendor: "Apple", Model: "Apple TV 4K",
		Category: MediaTV, Platform: PlatformHomeKit, OUI: netx.OUI{0xac, 0xbc, 0x32},
		HostnameKind: HostnameDisplay, DisplayName: "Living Room Apple TV",
		DHCPParams: []uint8{1, 3, 6, 15, 119, 252},
		IPv6:       true, EAPOL: true, RespondsToScans: true, SilentToBroadcastARP: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{
				{InstancePattern: "{display}", Type: "_airplay._tcp.local", Port: 7000,
					TXT: []string{"deviceid={mac}", "model=AppleTV11,1", "pk={uuid}"}},
				{InstancePattern: "{MAC}@{display}", Type: "_raop._tcp.local", Port: 7000},
				{InstancePattern: "{display}", Type: "_companion-link._tcp.local", Port: 49153},
			},
			QueryInterval: 45 * time.Second, QueryTypes: []string{"_airplay._tcp.local", "_hap._tcp.local"},
			AnnounceInterval: 3 * time.Minute, AnswerUnicast: true,
		},
		TLS: []TLSSpec{{Port: 49153, Version: tlsx.VersionTLS13,
			Cert: tlsx.CertMeta{IssuerCN: "Apple HomeKit CA", SubjectCN: "appletv.local", KeyBits: 256,
				NotBefore: time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)}}},
	}
}

func chromecast() *Profile {
	p := googleSpeaker(8, "Chromecast with Google TV")
	p.Name = "chromecast"
	p.Category = MediaTV
	p.DisplayName = "Living Room TV"
	p.ICMPv6ProbeCount = 0
	p.SSDP.AnswersSearch = true
	p.SSDP.DescriptionXML = true
	return p
}

func lgTV() *Profile {
	return &Profile{
		Name: "lg-tv", Vendor: "LG", Model: "OLED55 WebOS TV",
		Category: MediaTV, OUI: netx.OUI{0x88, 0x36, 0x6c},
		HostnameKind: HostnameModel, DisplayName: "[LG] webOS TV",
		DHCPVendorClass: "LGE WebOS",
		DHCPParams:      []uint8{1, 3, 6, 12, 15, 28, 44},
		IPv6:            true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "{display}", Type: "_airplay._tcp.local", Port: 7000,
				TXT: []string{"deviceid={mac}"}}},
			AnnounceInterval: 10 * time.Minute,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: ssdp.TargetMediaRender, Server: "WebOS/4.1.0 UPnP/1.0"}},
			SearchTargets:  []string{ssdp.TargetIGD}, // three firmware strings rotate below
			SearchInterval: 5 * time.Minute,
			NotifyInterval: 5 * time.Minute,
			AnswersSearch:  true,
			DescriptionXML: true,
			UPnPVersion:    "1.0",
		},
		HTTP: []HTTPSpec{{Port: 1884, Banner: "WebOS/4.1.0 UPnP/1.0",
			UserAgent: "LG WebOS/4.1.0",
			Paths:     map[string]string{"/udap/api": "<envelope/>"}}},
		NetBIOS: []string{"LGWEBOSTV", "WORKGROUP"},
		ARP:     &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 6 * time.Hour},
		Vulns:   []Vulnerability{{ID: "upnp-1.0", Port: 1900, Summary: "deprecated UPnP 1.0 stack"}},
	}
}

func rokuTV() *Profile {
	return &Profile{
		Name: "roku-tv", Vendor: "Roku", Model: "Roku Express",
		Category: MediaTV, OUI: netx.OUI{0x00, 0x0d, 0x4b},
		ARP:          &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 8 * time.Hour},
		HostnameKind: HostnameDisplay, DisplayName: "Jane's Roku Express", // first-name exposure (Table 2)
		DHCPParams: []uint8{1, 3, 6, 12, 15},
		EAPOL:      true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "{display}", Type: "_rsp._tcp.local", Port: 8060,
				TXT: []string{"sn={serial}", "id={uuid}"}}},
			AnnounceInterval: 5 * time.Minute,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: "roku:ecp", Server: "Roku/9.0 UPnP/1.0"}},
			SearchTargets:  []string{ssdp.TargetIGD}, // IGD requests exploitable by malware (§5.1)
			SearchInterval: 10 * time.Minute,
			NotifyInterval: 3 * time.Minute,
			AnswersSearch:  true,
			DescriptionXML: true,
			UPnPVersion:    "1.0",
		},
		HTTP: []HTTPSpec{{Port: 8060, Banner: "Roku/9.0 UPnP/1.0 MiniUPnPd/1.4",
			Paths: map[string]string{"/query/device-info": "<device-info><serial-number>{serial}</serial-number><wifi-mac>{mac}</wifi-mac></device-info>"}}},
		Vulns: []Vulnerability{{ID: "ssdp-igd-requests", Port: 1900,
			Summary: "sends IGD discovery abusable by local malware"}},
	}
}

func samsungTV() *Profile {
	return &Profile{
		Name: "samsung-tv", Vendor: "Samsung", Model: "QN55 Tizen TV",
		Category: MediaTV, Platform: PlatformSmartThings, OUI: netx.OUI{0x8c, 0x79, 0xf5},
		HostnameKind: HostnameModel, DisplayName: "[TV] Samsung Q55",
		DHCPParams: []uint8{1, 3, 6, 12, 15, 28},
		IPv6:       true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "Samsung QN55", Type: "_airplay._tcp.local", Port: 7000,
				TXT: []string{"deviceid={mac}"}}},
			AnnounceInterval: 8 * time.Minute,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: ssdp.TargetMediaRender, Server: "SHP, UPnP/1.0, Samsung UPnP SDK/1.0"}},
			NotifyInterval: 5 * time.Minute,
			AnswersSearch:  true,
			DescriptionXML: true,
		},
		HTTP:    []HTTPSpec{{Port: 8001, Banner: "Samsung TizenTV/5.5", Paths: map[string]string{"/api/v2/": `{"device":{"name":"{display}","wifiMac":"{mac}"}}`}}},
		NetBIOS: []string{"SAMSUNGTV", "WORKGROUP"},
		ARP:     &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 6 * time.Hour},
	}
}

func tivoStream() *Profile {
	return &Profile{
		Name: "tivo-stream", Vendor: "TiVo", Model: "Stream 4K",
		Category: MediaTV, Platform: PlatformGoogleHome, OUI: netx.OUI{0x00, 0x04, 0x20},
		HostnameKind: HostnameRandom, // obfuscated per request (§5.1)
		DHCPParams:   []uint8{1, 3, 6, 12},
		IPv6:         true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{InstancePattern: "TiVo-Stream", Type: "_googlecast._tcp.local", Port: 8009,
				TXT: []string{"md=Stream 4K"}}},
			AnnounceInterval: 10 * time.Minute,
		},
		TLS: []TLSSpec{{Port: 8009, Version: tlsx.VersionTLS12,
			Cert: tlsx.CertMeta{IssuerCN: "Google Cast Root CA", SubjectCN: "{ip}", KeyBits: 96,
				NotBefore: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2042, 1, 1, 0, 0, 0, 0, time.UTC)}}},
		Vulns: []Vulnerability{{ID: "CVE-2016-2183", Port: 8009,
			Summary: "TLS service uses a small encryption key enabling birthday attacks"}},
	}
}

func plug(name, vendor, model string, oui netx.OUI, platform Platform) *Profile {
	return &Profile{
		Name: name, Vendor: vendor, Model: model, Category: HomeAutomation,
		Platform: platform, OUI: oui,
		HostnameKind:    HostnameVendorTail,
		DHCPVendorClass: "udhcp 1.19.4",
		DHCPParams:      []uint8{1, 3, 6, 12, 15},
		EAPOL:           true, RespondsToScans: true,
	}
}

func hub(name, vendor, model string, oui netx.OUI, platform Platform) *Profile {
	p := plug(name, vendor, model, oui, platform)
	p.IPv6 = true
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: vendor + "-{tail}", Type: "_hap._tcp.local", Port: 8080,
			TXT: []string{"id={mac}", "md=" + model}}},
		AnnounceInterval: 10 * time.Minute,
	}
	return p
}

func hueHub() *Profile {
	return &Profile{
		Name: "hue-hub", Vendor: "Philips", Model: "Hue Bridge 2.0",
		Category: HomeAutomation, Platform: PlatformHomeKit, OUI: netx.OUI{0x00, 0x17, 0x88},
		HostnameKind: HostnameVendorTail,
		DisplayName:  "Philips hue",
		DHCPParams:   []uint8{1, 3, 6, 12, 15, 28, 42},
		IPv6:         true, EAPOL: true, RespondsToScans: true,
		MDNS: &MDNSBehaviour{
			Services: []ServiceSpec{{
				// MAC embedded in the instance name (§5.1, Table 5).
				InstancePattern: "Philips Hue - {tail}", Type: "_hue._tcp.local", Port: 443,
				TXT: []string{"bridgeid={MAC}", "modelid=BSB002"},
			}},
			AnnounceInterval: 5 * time.Minute,
			AnswerUnicast:    true,
		},
		SSDP: &SSDPBehaviour{
			Ads:            []ssdp.Advertisement{{Target: ssdp.TargetBasic, Server: "Linux/3.14 UPnP/1.0 IpBridge/1.56.0"}},
			NotifyInterval: 2 * time.Minute,
			AnswersSearch:  true,
			DescriptionXML: true,
			UPnPVersion:    "1.0",
		},
		HTTP: []HTTPSpec{{Port: 80, Banner: "nginx",
			Paths: map[string]string{"/api/config": `{"name":"Philips hue","bridgeid":"{MAC}","mac":"{mac}"}`}}},
		TLS: []TLSSpec{{Port: 443, Version: tlsx.VersionTLS12,
			Cert: tlsx.CertMeta{IssuerCN: "root-bridge", SubjectCN: "{uuid}", SelfSigned: true, KeyBits: 128,
				NotBefore: time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2038, 1, 1, 0, 0, 0, 0, time.UTC)}}}, // ~20-year self-signed
		Vulns: []Vulnerability{{ID: "upnp-1.0", Port: 1900, Summary: "deprecated UPnP 1.0 stack"}},
	}
}

func ringChime() *Profile {
	p := plug("ring-chime", "Ring", "Chime Pro", netx.OUI{0x90, 0x48, 0x6c}, PlatformAlexa)
	p.HostnameKind = HostnameModelMAC // name+MAC hostname (§5.1)
	return p
}

func smartThingsHub() *Profile {
	p := hub("smartthings-hub", "SmartThings", "Hub v3", netx.OUI{0x24, 0xfd, 0x5b}, PlatformSmartThings)
	p.TLS = []TLSSpec{{Port: 443, Version: tlsx.VersionTLS12,
		Cert: tlsx.CertMeta{IssuerCN: "SmartThings", SubjectCN: "hub.local", SelfSigned: true, KeyBits: 128,
			NotBefore: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:  time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC)}}}
	return p
}

func tplinkPlug() *Profile {
	p := plug("tplink-plug", "TP-Link", "HS110(US)", netx.OUI{0x50, 0xc7, 0xbf}, PlatformAlexa)
	p.DisplayName = "TP-Link Plug"
	p.TPLink = &TPLinkSpec{Serve: true, Latitude: 42.337681, Longitude: -71.087036}
	p.Vulns = []Vulnerability{{ID: "tplink-shp-unauth", Port: 9999,
		Summary: "unauthenticated local control and plaintext geolocation"}}
	return p
}

func tplinkBulb() *Profile {
	p := plug("tplink-bulb", "TP-Link", "KL130", netx.OUI{0x68, 0xff, 0x7b}, PlatformAlexa)
	p.DisplayName = "TP-Link Bulb"
	p.TPLink = &TPLinkSpec{Serve: true, Latitude: 42.337681, Longitude: -71.087036}
	p.Vulns = []Vulnerability{{ID: "tplink-shp-unauth", Port: 9999,
		Summary: "unauthenticated local control and plaintext geolocation"}}
	return p
}

func merossPlug(i int, model string) *Profile {
	p := plug(fmt.Sprintf("meross-plug-%d", i), "Meross", model, netx.OUI{0x48, 0x5f, 0x99}, PlatformAlexa)
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: "Meross-{tail}", Type: "_meross._tcp.local", Port: 80,
			TXT: []string{"mac={mac}", "model=" + model}}},
		AnnounceInterval: 10 * time.Minute,
	}
	p.HTTP = []HTTPSpec{{Port: 80, Banner: "Mongoose/6.12", Paths: map[string]string{
		"/config": `{"mac":"{mac}","model":"` + model + `"}`}}}
	return p
}

func tuyaDevice(name, vendor, model string, plaintext bool) *Profile {
	p := plug(name, vendor, model, netx.OUI{0x68, 0x57, 0x2d}, PlatformTuya)
	p.Tuya = &TuyaSpec{Serve: true, Plaintext: plaintext, BroadcastInterval: 20 * time.Second}
	if plaintext {
		p.Vulns = []Vulnerability{{ID: "tuya-plaintext-keys", Port: 6666,
			Summary: "gwId and productKey broadcast in plaintext"}}
	}
	return p
}

func wemoPlug() *Profile {
	p := plug("wemo-plug", "Belkin", "WeMo Mini", netx.OUI{0x14, 0x91, 0x82}, PlatformNone)
	p.ARP = &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 8 * time.Hour} // public-IP probes (§5.1)
	p.SSDP = &SSDPBehaviour{
		Ads:            []ssdp.Advertisement{{Target: ssdp.TargetBasic, Server: "Unspecified, UPnP/1.0, Unspecified"}},
		NotifyInterval: 5 * time.Minute,
		AnswersSearch:  true,
		DescriptionXML: true,
		UPnPVersion:    "1.0",
	}
	p.HTTP = []HTTPSpec{{Port: 49153, Banner: "Unspecified, UPnP/1.0, Unspecified",
		Paths: map[string]string{"/setup.xml": "<friendlyName>Wemo Mini</friendlyName>"}}}
	p.DNS = &DNSSpec{Software: "dnsmasq-2.47"}
	p.Vulns = []Vulnerability{
		{ID: "dns-cache-snooping", Port: 53, Summary: "DNS cache snooping reveals resolved names"},
		{ID: "upnp-1.0", Port: 1900, Summary: "deprecated UPnP 1.0 stack"},
	}
	return p
}

func nestThermostat() *Profile {
	p := plug("nest-thermostat", "Google", "Nest Thermostat", netx.OUI{0x64, 0x16, 0x66}, PlatformGoogleHome)
	p.Model = "Nest Thermostat"
	p.IPv6 = true
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: "Nest-{tail}", Type: "_nest._tcp.local", Port: 9543,
			TXT: []string{"id={uuid}"}}},
		AnnounceInterval: 15 * time.Minute,
	}
	p.ExtraUDP = []uint16{320}                                                   // PTP (§4.2)
	p.ARP = &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 8 * time.Hour} // public-IP probes (§5.1)
	return p
}

func amazonPlug() *Profile {
	p := plug("amazon-plug", "Amazon", "Smart Plug", amazonOUI(9), PlatformAlexa)
	p.IPv6 = true
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: "{MAC}", Type: "_matterc._udp.local", Port: 5540,
			TXT: []string{"D=2112", "VP=4631+2", "CM=1", "DN=Amazon Plug", "PH=33"}}},
		AnnounceInterval: 10 * time.Minute,
	}
	return p
}

func appliance(name, vendor, model string, oui netx.OUI) *Profile {
	return &Profile{
		Name: name, Vendor: vendor, Model: model, Category: HomeAppliance,
		OUI: oui, HostnameKind: HostnameVendorTail,
		DHCPVendorClass: "udhcp 1.24.1",
		DHCPParams:      []uint8{1, 3, 6, 12, 15},
		EAPOL:           true, RespondsToScans: false, SilentToBroadcastARP: true,
	}
}

func blueairPurifier() *Profile {
	p := appliance("blueair-purifier", "Blueair", "Classic 480i", netx.OUI{0xcc, 0x50, 0xe3})
	p.ARP = &ARPBehaviour{RequestsPublicIPs: true, SweepInterval: 8 * time.Hour} // public-IP probes (§5.1)
	p.RespondsToScans = true
	p.HTTP = []HTTPSpec{{Port: 80, Banner: "Blueair/1.1",
		Paths: map[string]string{"/status": `{"mac":"{mac}","model":"Classic 480i"}`}}}
	return p
}

func geMicrowave() *Profile {
	p := appliance("ge-microwave", "GE", "Smart Microwave", netx.OUI{0xb4, 0x79, 0xa7})
	p.HostnameKind = HostnameRandom // obfuscated hostnames (§5.1)
	return p
}

func samsungFridge() *Profile {
	p := appliance("samsung-fridge", "Samsung", "Family Hub Fridge", netx.OUI{0x28, 0x6d, 0x97})
	p.Platform = PlatformSmartThings
	p.RespondsToScans = true
	p.SilentToBroadcastARP = false
	p.IPv6 = true
	p.CoAP = true // IoTivity /oic/res requests (§5.1)
	p.MDNS = &MDNSBehaviour{
		Services: []ServiceSpec{{InstancePattern: "Family Hub-{tail}", Type: "_airplay._tcp.local", Port: 7000,
			TXT: []string{"deviceid={mac}"}}},
		AnnounceInterval: 10 * time.Minute,
	}
	return p
}

func sensor(name, vendor, model string, oui netx.OUI) *Profile {
	return &Profile{
		Name: name, Vendor: vendor, Model: model, Category: GenericIoT,
		OUI: oui, HostnameKind: HostnameVendorTail,
		DHCPVendorClass: "esp-idf/3.2",
		DHCPParams:      []uint8{1, 3, 6},
		RespondsToScans: false, SilentToBroadcastARP: true,
	}
}

func tuyaSensor() *Profile {
	p := sensor("tuya-sensor", "Tuya", "PIR Sensor", netx.OUI{0x10, 0xd5, 0x61})
	p.Platform = PlatformTuya
	p.Tuya = &TuyaSpec{Serve: true, BroadcastInterval: 60 * time.Second}
	return p
}

func withings(name, model string) *Profile {
	p := sensor(name, "Withings", model, netx.OUI{0x00, 0x24, 0xe4})
	p.EAPOL = true
	return p
}

func nintendoSwitch() *Profile {
	return &Profile{
		Name: "nintendo-switch", Vendor: "Nintendo", Model: "Switch",
		Category: GameConsole, OUI: netx.OUI{0x98, 0xb6, 0xe9},
		HostnameKind: HostnameModel,
		DHCPParams:   []uint8{1, 3, 6, 15},
		EAPOL:        true, XID: true, // EAPOL layer-2 quirk (App. C.2)
		RespondsToScans: true,
	}
}
