package device

import (
	"fmt"
	"net/netip"
	"strings"

	"iotlan/internal/dnsmsg"
)

// dnsQuery wraps a parsed query for the embedded (vulnerable) DNS servers
// some devices run (§5.2: HomePod Mini's SheerDNS, the WeMo plug).
type dnsQuery struct {
	msg *dnsmsg.Message
	// software is filled by the responder for version.bind answers.
	software string
}

func parseDNSQuery(data []byte) (*dnsQuery, error) {
	m, err := dnsmsg.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if m.Response || len(m.Questions) == 0 {
		return nil, fmt.Errorf("device: not a query")
	}
	return &dnsQuery{msg: m}, nil
}

// respond implements three behaviours the Nessus-like scanner exploits:
//   - version.bind TXT → software version disclosure;
//   - hostname.bind / own-name queries → remote host name + private IP;
//   - any recently-resolved name → a cached answer, i.e. cache snooping.
func (q *dnsQuery) respond(ip netip.Addr, hostname string, recent []string) []byte {
	question := q.msg.Questions[0]
	resp := &dnsmsg.Message{ID: q.msg.ID, Response: true, Questions: q.msg.Questions}
	name := strings.ToLower(question.Name)
	switch {
	case name == "version.bind":
		resp.Answers = append(resp.Answers, dnsmsg.Record{
			Name: question.Name, Type: dnsmsg.TypeTXT, Class: question.Class,
			TXT: []string{q.softwareOr("SheerDNS 1.0.0")},
		})
	case name == "hostname.bind" || strings.EqualFold(question.Name, hostname) ||
		strings.EqualFold(question.Name, hostname+".local"):
		resp.Answers = append(resp.Answers, dnsmsg.Record{
			Name: question.Name, Type: dnsmsg.TypeTXT, Class: question.Class,
			TXT: []string{hostname, "ip=" + ip.String()},
		})
	default:
		for _, cached := range recent {
			if strings.EqualFold(question.Name, cached) {
				// Cache hit leaks browsing/contact history.
				resp.Answers = append(resp.Answers, dnsmsg.Record{
					Name: question.Name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN,
					TTL: 60, Addr: netip.AddrFrom4([4]byte{17, 253, 144, 10}),
				})
			}
		}
	}
	return resp.Marshal()
}

func (q *dnsQuery) softwareOr(def string) string {
	if q.software != "" {
		return q.software
	}
	return def
}
