package device

import (
	"crypto/md5"
	"crypto/sha1"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"iotlan/internal/coap"
	"iotlan/internal/dhcp"
	"iotlan/internal/httpx"
	"iotlan/internal/layers"
	"iotlan/internal/mdns"
	"iotlan/internal/netbios"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/rtp"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/telnetx"
	"iotlan/internal/tlsx"
	"iotlan/internal/tplink"
	"iotlan/internal/tuya"
)

// Device is a running simulated device: a Profile bound to a network host.
type Device struct {
	Profile *Profile
	Host    *stack.Host

	// UUID is the device's stable unique identifier, derived
	// deterministically from its name (exposed via SSDP USN and mDNS TXT).
	UUID string
	// Serial is the manufacturing serial; several vendors set it to the MAC
	// (Table 5's Amcrest example).
	Serial string

	// Peers are same-platform devices this one exchanges control traffic
	// with; the testbed wires them after all devices join (Figure 4
	// clusters).
	Peers []*Device

	mdnsResp *mdns.Responder
	ssdpResp *ssdp.Responder

	// Started reports whether Start has run.
	Started bool
	// crashed marks the device as down (chaos churn); see Crash/Restart.
	crashed bool
	// Retired marks the device as permanently removed (resident drift);
	// unlike a crash it never restarts. See Retire.
	Retired bool
	// FirmwareRev counts applied firmware updates (0 = factory image); it
	// shows in the SSDP Server banner's advertised version.
	FirmwareRev int

	// tuyaDev is the serving Tuya endpoint, kept so a firmware update can
	// flip its wire behaviour (plaintext 3.1 → encrypted 3.3) mid-run.
	tuyaDev *tuya.Device

	// dhcpClient is the device's DHCP client, kept so a restart can re-run
	// the lease exchange.
	dhcpClient *dhcp.Client

	// msg caches device_messages{proto=...} counter handles; the series are
	// shared across all devices (the registry dedups by key), so they count
	// LAN-wide messages per protocol.
	msg map[string]*obs.Counter
}

// MAC returns the device's hardware address.
func (d *Device) MAC() netx.MAC { return d.Host.MAC() }

// IP returns the device's IPv4 address.
func (d *Device) IP() netip.Addr { return d.Host.IPv4() }

// New binds a profile to a fresh host on the network behind the given
// scheduler-owning stack. The MAC is derived from the profile OUI and index.
func New(p *Profile, h *stack.Host) *Device {
	d := &Device{Profile: p, Host: h}
	sum := md5.Sum([]byte("iotlan-uuid:" + p.Name))
	d.UUID = fmt.Sprintf("%x-%x-%x-%x-%x", sum[0:4], sum[4:6], sum[6:8], sum[8:10], sum[10:16])
	if p.Category == Surveillance || p.Vendor == "Amcrest" {
		d.Serial = d.MAC().String() // cameras expose the MAC as serial
	} else {
		d.Serial = strings.ToUpper(fmt.Sprintf("%x", sum[2:8]))
	}
	return d
}

// count records n protocol messages under device_messages{proto=...}.
func (d *Device) count(proto string, n uint64) {
	if d.msg == nil {
		d.msg = make(map[string]*obs.Counter)
	}
	c, ok := d.msg[proto]
	if !ok {
		c = d.Host.Sched.Telemetry.Registry.Counter("device_messages", "proto", proto)
		d.msg[proto] = c
	}
	c.Add(n)
}

// Hostname renders the device's DHCP/mDNS hostname per its policy.
func (d *Device) Hostname() string {
	p := d.Profile
	switch p.HostnameKind {
	case HostnameModelMAC:
		return fmt.Sprintf("%s-%s", sanitize(p.Model), d.MAC().Compact())
	case HostnameVendorTail:
		return fmt.Sprintf("%s-%s", sanitize(p.Vendor), d.MAC().Tail(3))
	case HostnameDisplay:
		return sanitize(p.DisplayName)
	case HostnameRandom:
		// Fresh random bytes every call — GE/TiVo-style obfuscation.
		b := make([]byte, 6)
		d.Host.Sched.Rand().Read(b)
		return fmt.Sprintf("dev-%x", b)
	default:
		return sanitize(p.Model)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '(', r == ')':
			return r
		case r == ' ', r == '\'':
			return '-'
		default:
			return '-'
		}
	}, s)
}

// expand substitutes identifier placeholders in profile string patterns.
func (d *Device) expand(pattern string) string {
	r := strings.NewReplacer(
		"{mac}", d.MAC().String(),
		"{MAC}", d.MAC().Compact(),
		"{tail}", d.MAC().Tail(3),
		"{display}", d.Profile.DisplayName,
		"{serial}", d.Serial,
		"{uuid}", d.UUID,
		"{ip}", d.IP().String(),
		"{model}", d.Profile.Model,
	)
	return r.Replace(pattern)
}

// Start boots the device: DHCP, IPv6 announcement, then every configured
// protocol behaviour on its own timer. All activity runs on the shared
// simulation scheduler.
func (d *Device) Start() {
	if d.Started {
		return
	}
	d.Started = true
	p := d.Profile
	sched := d.Host.Sched

	cl := &dhcp.Client{
		Host:        d.Host,
		Hostname:    d.Hostname(),
		VendorClass: p.DHCPVendorClass,
		Params:      p.DHCPParams,
	}
	d.dhcpClient = cl
	cl.Start(func(ip netip.Addr) {
		// Periodic gateway re-resolution: every device refreshes its ARP
		// entry for the router ahead of cloud keepalives, so ARP activity
		// is near-universal in captures (§4.1: 92%).
		if cl.Router.IsValid() {
			gw := cl.Router
			sched.EveryTagged("device", 30*time.Second, 20*time.Minute, 2*time.Minute, func() {
				d.count("arp", 1)
				d.Host.ARPProbe(gw)
			})
			// Connectivity checks: most devices ping the gateway when their
			// cloud keepalive hiccups — the idle ICMP of §4.1 (78%).
			if p.RespondsToScans || p.IPv6 {
				seq := uint16(0)
				sched.EveryTagged("device", 2*time.Minute, 12*time.Minute, 2*time.Minute, func() {
					seq++
					d.count("icmp", 1)
					d.Host.Ping(gw, uint16(d.MAC()[5]), seq)
				})
			}
		}
		d.onAddressed()
	})

	if p.IPv6 {
		sched.AfterTagged("device", 500*time.Millisecond, d.Host.AnnounceIPv6)
	}
	if p.EAPOL {
		// Periodic EAPOL-Key refresh, hourly like WPA2 group rekeys.
		sched.EveryTagged("device", time.Minute, time.Hour, time.Minute, d.sendEAPOL)
	}
	if p.XID {
		sched.EveryTagged("device", 90*time.Second, 5*time.Minute, 30*time.Second, d.sendXID)
	}
}

// Name returns the profile name (chaos.Churnable).
func (d *Device) Name() string { return d.Profile.Name }

// Crash powers the device off mid-run: its host NIC goes down (losing ARP
// cache and TCP state) and it leaves the switch's station table, so in-flight
// frames addressed to it count as "detached" drops. Timers keep firing but
// every send is suppressed. Reports false (and does nothing) if the device
// never started or is already down.
func (d *Device) Crash() bool {
	if !d.Started || d.crashed {
		return false
	}
	d.crashed = true
	d.Host.SetDown(true)
	d.Host.Net.Detach(d.MAC())
	return true
}

// Retire permanently removes the device from the LAN — the household threw
// it out or it bricked. It detaches through the same path as a crash (so
// in-flight frames addressed to it land in detached-drop accounting), but a
// retired device never restarts. Reports whether the device was up when
// retired.
func (d *Device) Retire() bool {
	if d.Retired {
		return false
	}
	wasUp := d.Crash()
	d.Retired = true
	return wasUp
}

// UpdateFirmware applies a firmware update: the revision counter bumps (the
// SSDP Server banner advertises the new build) and protocol behaviour flags
// flip the way vendor updates really change devices — a plaintext Tuya 3.1
// build moves to the encrypted 3.3 protocol, and an UPnP/1.0 stack rebases
// onto 1.1. Returns the behaviour changes applied, for tracing.
func (d *Device) UpdateFirmware() []string {
	d.FirmwareRev++
	p := d.Profile
	changes := []string{fmt.Sprintf("firmware rev %d", d.FirmwareRev)}
	if p.Tuya != nil && p.Tuya.Plaintext {
		p.Tuya.Plaintext = false
		if d.tuyaDev != nil {
			d.tuyaDev.Plaintext = false
			d.tuyaDev.Beacon.Version = "3.3"
			d.tuyaDev.Beacon.Encrypt = true
		}
		changes = append(changes, "tuya: plaintext 3.1 -> encrypted 3.3")
	}
	if p.SSDP != nil && p.SSDP.UPnPVersion == "1.0" {
		p.SSDP.UPnPVersion = "1.1"
		changes = append(changes, "ssdp: UPnP/1.0 -> UPnP/1.1")
	}
	// Re-render the default Server banners so announcements carry the new
	// UPnP version and firmware build (profile-pinned banners stay).
	if d.ssdpResp != nil && p.SSDP != nil {
		upnp := p.SSDP.UPnPVersion
		if upnp == "" {
			upnp = "1.1"
		}
		for i := range d.ssdpResp.Ads {
			if i < len(p.SSDP.Ads) && p.SSDP.Ads[i].Server == "" {
				d.ssdpResp.Ads[i].Server = fmt.Sprintf("Linux/4.9 UPnP/%s %s/%s",
					upnp, sanitize(p.Vendor), firmwareFor(p, d.FirmwareRev))
			}
		}
	}
	return changes
}

// Restart powers a crashed device back on: it rejoins the switch and re-runs
// its DHCP lease exchange, like a real device rebooting mid-capture. Service
// timers from the original Start are still scheduled, so behaviour resumes
// once the NIC is up; services are not registered twice. Retired devices
// never come back.
func (d *Device) Restart() {
	if !d.crashed || d.Retired {
		return
	}
	d.crashed = false
	d.Host.Net.Attach(d.Host)
	d.Host.SetDown(false)
	if d.dhcpClient != nil {
		d.dhcpClient.Restart()
	}
}

// onAddressed starts the services that need an IP address.
func (d *Device) onAddressed() {
	p := d.Profile
	sched := d.Host.Sched

	if p.MDNS != nil {
		d.startMDNS()
	}
	if p.SSDP != nil {
		d.startSSDP()
	}
	if p.TPLink != nil {
		d.startTPLink()
	}
	if p.Tuya != nil && p.Tuya.Serve {
		d.tuyaDev = &tuya.Device{Host: d.Host, Plaintext: p.Tuya.Plaintext, Beacon: tuya.Beacon{
			GWID:       d.expand("{serial}{tail}"),
			ProductKey: strings.ToLower(d.Serial),
			Version:    map[bool]string{true: "3.1", false: "3.3"}[p.Tuya.Plaintext],
			Active:     2, Encrypt: !p.Tuya.Plaintext,
		}}
		iv := p.Tuya.BroadcastInterval
		if iv == 0 {
			iv = 20 * time.Second
		}
		sched.EveryTagged("device", 2*time.Second, iv, iv/10, func() {
			d.count("tuya", 1)
			d.tuyaDev.Broadcast()
		})
	}
	if p.CoAP {
		d.startCoAP()
	}
	if len(p.NetBIOS) > 0 {
		(&netbios.Responder{Host: d.Host, Names: p.NetBIOS}).Start()
	}
	for _, hs := range p.HTTP {
		d.startHTTP(hs)
	}
	for _, ts := range p.TLS {
		cfg := tlsx.Config{Version: ts.Version, Cert: ts.Cert, RequireClientCert: ts.TwoWay}
		tlsx.NewServer(d.Host, ts.Port, cfg, func(c *tlsx.Conn) {
			c.OnData = func(c *tlsx.Conn, plain []byte) { c.Send([]byte("ack")) }
		})
	}
	if p.DNS != nil {
		d.startDNS()
	}
	if p.TelnetPort != 0 {
		d.startTelnet()
	}
	for _, port := range p.ExtraTCP {
		d.Host.ListenTCP(port, func(c *stack.TCPConn) {})
	}
	for _, port := range p.ExtraUDP {
		d.Host.OpenUDP(port, nil)
	}
	if p.ARP != nil {
		d.startARP()
	}
	if p.LifxQuirk {
		sched.EveryTagged("device", 10*time.Minute, 2*time.Hour, 5*time.Minute, func() {
			d.count("lifx", 1)
			d.Host.SendUDP(56700, netx.Broadcast4, 56700, lifxGetService())
		})
	}
	if p.ICMPv6ProbeCount > 0 && p.IPv6 {
		d.startICMPv6Probes()
	}
}

// lifxGetService builds the LIFX GetService broadcast Echo devices emit.
func lifxGetService() []byte {
	b := make([]byte, 36)
	b[0] = 36 // size
	b[2] = 0x00
	b[3] = 0x34 // protocol 1024, addressable+tagged
	b[32] = 2   // GetService
	return b
}

func (d *Device) sendEAPOL() {
	d.count("eapol", 1)
	frame, err := layers.Serialize(
		&layers.Ethernet{Src: d.MAC(), Dst: netx.MAC{0x01, 0x80, 0xc2, 0x00, 0x00, 0x03}, EtherType: layers.EtherTypeEAPOL},
		&layers.EAPOL{Version: 2, PacketType: 3, Body: make([]byte, 95)})
	if err == nil {
		d.Host.SendRaw(frame)
	}
}

func (d *Device) sendXID() {
	d.count("llc-xid", 1)
	frame, err := layers.Serialize(
		&layers.Ethernet{Src: d.MAC(), Dst: netx.Broadcast, EtherType: 3}, // 802.3 length
		&layers.LLC{DSAP: 0, SSAP: 1, Control: 0xaf, Info: []byte{0x81, 1, 0}})
	if err == nil {
		d.Host.SendRaw(frame)
	}
}

func (d *Device) startMDNS() {
	p := d.Profile
	b := p.MDNS
	var services []mdns.Service
	for _, s := range b.Services {
		svc := mdns.Service{
			Instance: d.expand(s.InstancePattern),
			Type:     s.Type,
			Port:     s.Port,
		}
		for _, txt := range s.TXT {
			svc.TXT = append(svc.TXT, d.expand(txt))
		}
		services = append(services, svc)
		// Advertised service ports are really open (scans must see them);
		// richer servers configured elsewhere override these stubs.
		if svc.Port != 0 && !d.Host.TCPPortOpen(svc.Port) {
			d.Host.ListenTCP(svc.Port, func(*stack.TCPConn) {})
		}
	}
	d.mdnsResp = &mdns.Responder{
		Host:          d.Host,
		Hostname:      d.Hostname() + ".local",
		Services:      services,
		AnswerUnicast: b.AnswerUnicast,
	}
	d.mdnsResp.Start()
	if b.AnnounceInterval > 0 {
		d.Host.Sched.EveryTagged("device", time.Second, b.AnnounceInterval, b.AnnounceInterval/10, func() {
			d.count("mdns", 1)
			d.mdnsResp.Announce()
		})
	}
	if b.QueryInterval > 0 && len(b.QueryTypes) > 0 {
		i := 0
		d.Host.Sched.EveryTagged("device", 3*time.Second, b.QueryInterval, b.QueryInterval/10, func() {
			d.count("mdns", 1)
			mdns.Query(d.Host, b.QueryTypes[i%len(b.QueryTypes)], false)
			i++
		})
	}
}

func (d *Device) startSSDP() {
	p := d.Profile
	b := p.SSDP
	ads := make([]ssdp.Advertisement, len(b.Ads))
	upnp := b.UPnPVersion
	if upnp == "" {
		upnp = "1.1"
	}
	for i, ad := range b.Ads {
		ad.UUID = d.UUID
		if ad.Location == "" && b.DescriptionXML {
			ad.Location = fmt.Sprintf("http://%s:%d/description.xml", d.IP(), d.descPort())
		}
		if ad.Server == "" {
			ad.Server = fmt.Sprintf("Linux/4.9 UPnP/%s %s/%s", upnp, sanitize(p.Vendor), firmwareFor(p, d.FirmwareRev))
		}
		ads[i] = ad
	}
	d.ssdpResp = &ssdp.Responder{Host: d.Host, Ads: ads, Passive: !b.AnswersSearch}
	d.ssdpResp.Start()
	// UPnP stacks listen on a per-device eventing/callback port in the
	// 49xxx range — part of why the lab's scans saw 178 distinct open TCP
	// ports (§4.2).
	eventPort := 49200 + int(md5.Sum([]byte(p.Name))[0])
	if !d.Host.TCPPortOpen(uint16(eventPort)) {
		d.Host.ListenTCP(uint16(eventPort), func(*stack.TCPConn) {})
	}
	if b.NotifyInterval > 0 {
		d.Host.Sched.EveryTagged("device", 2*time.Second, b.NotifyInterval, b.NotifyInterval/10, func() {
			d.count("ssdp", 1)
			d.ssdpResp.NotifyAll()
			if b.AnnounceBadAddress {
				// Fire TV's misconfigured /16 announcement.
				bad := ads[0]
				bad.Location = "http://192.168.0.0:60000/upnp/dev.xml"
				d.Host.SendUDP(ssdp.Port, netx.SSDPGroup, ssdp.Port, bad.Notify())
			}
		})
	}
	if b.SearchInterval > 0 && len(b.SearchTargets) > 0 {
		// First search waits for the rest of the lab to boot; thereafter
		// the profile cadence applies (Google ≈20 s, Echo 2–3 h, §5.1).
		// Control points fetch each responder's description document once —
		// the plaintext HTTP that 17 SSDP-related devices generate (§5.2).
		fetched := map[string]bool{}
		i := 0
		d.Host.Sched.EveryTagged("device", 2*time.Minute, b.SearchInterval, b.SearchInterval/10, func() {
			d.count("ssdp", 1)
			ssdp.Search(d.Host, b.SearchTargets[i%len(b.SearchTargets)], func(m *ssdp.Message, from netip.Addr) {
				loc := m.Location()
				if loc == "" || fetched[loc] {
					return
				}
				fetched[loc] = true
				host, port, path := splitHTTPLocation(loc)
				if host.IsValid() {
					var headers map[string]string
					if ua := userAgentFor(d.Profile); ua != "" {
						headers = map[string]string{"User-Agent": ua}
					}
					httpx.Get(d.Host, host, port, path, headers, nil)
				}
			})
			i++
		})
	}
}

// splitHTTPLocation parses "http://ip:port/path".
func splitHTTPLocation(loc string) (netip.Addr, uint16, string) {
	loc = strings.TrimPrefix(loc, "http://")
	hostport, path, _ := strings.Cut(loc, "/")
	ap, err := netip.ParseAddrPort(hostport)
	if err != nil {
		return netip.Addr{}, 0, ""
	}
	return ap.Addr(), ap.Port(), "/" + path
}

// userAgentFor picks the HTTP client identity; only Google products and the
// LG TV send one (§5.2).
func userAgentFor(p *Profile) string {
	for _, h := range p.HTTP {
		if h.UserAgent != "" {
			return h.UserAgent
		}
	}
	return ""
}

// descPort is where the UPnP description XML is served.
func (d *Device) descPort() uint16 {
	for _, hs := range d.Profile.HTTP {
		return hs.Port
	}
	return 49152
}

// firmwareFor derives the advertised firmware build from the model, with
// rev bumping the patch component per applied update.
func firmwareFor(p *Profile, rev int) string {
	sum := md5.Sum([]byte(p.Model))
	return fmt.Sprintf("%d.%d.%d", sum[0]%9+1, sum[1]%20, int(sum[2]%100)+rev)
}

func (d *Device) startTPLink() {
	spec := d.Profile.TPLink
	if spec.Serve {
		dev := &tplink.Device{Host: d.Host, Info: tplink.SysInfo{
			DeviceID: strings.ToUpper(fmt.Sprintf("%x", sha1.Sum([]byte("tplink:"+d.Profile.Name)))),
			HWID:     strings.ToUpper(fmt.Sprintf("%x", md5.Sum([]byte("hw:"+d.Profile.Model)))),
			OEMID:    strings.ToUpper(fmt.Sprintf("%x", md5.Sum([]byte("oem:TP-Link")))),
			Alias:    d.Profile.DisplayName,
			DevName:  d.Profile.Model,
			Model:    d.Profile.Model,
			MAC:      d.MAC().String(),
			Latitude: spec.Latitude, Longitude: spec.Longitude,
		}}
		dev.Start()
	}
	if spec.Discover {
		iv := spec.DiscoverInterval
		if iv == 0 {
			iv = time.Hour
		}
		d.Host.Sched.EveryTagged("device", 30*time.Second, iv, iv/10, func() {
			d.count("tplink", 1)
			tplink.Discover(d.Host, nil)
		})
	}
}

func (d *Device) startCoAP() {
	// Serve /oic/res and periodically request it from the multicast group
	// (the Samsung fridge's IoTivity behaviour).
	d.Host.JoinGroup(netx.CoAPGroup)
	d.Host.OpenUDP(coap.Port, func(dg stack.Datagram) {
		m, err := coap.Unmarshal(dg.Payload)
		if err != nil || m.Code != coap.CodeGET || m.Path() != "/oic/res" {
			return
		}
		body := fmt.Sprintf(`[{"href":"/oic/d","rt":"oic.wk.d","n":"%s"}]`, d.Profile.Model)
		d.Host.SendUDP(coap.Port, dg.Src, dg.SrcPort, coap.NewContent(m, []byte(body)).Marshal())
	})
	id := uint16(1)
	d.Host.Sched.EveryTagged("device", time.Minute, 10*time.Minute, time.Minute, func() {
		d.count("coap", 1)
		d.Host.SendUDP(coap.Port, netx.CoAPGroup, coap.Port, coap.NewGET(id, "/oic/res").Marshal())
		id++
	})
}

func (d *Device) startHTTP(hs HTTPSpec) {
	srv := httpx.NewServer(d.Host, hs.Port, hs.Banner)
	for path, body := range hs.Paths {
		b := d.expand(body)
		srv.Handle(path, func(*httpx.Request) *httpx.Response {
			return &httpx.Response{Status: 200, Body: []byte(b)}
		})
	}
	if d.Profile.SSDP != nil && d.Profile.SSDP.DescriptionXML {
		doc, err := d.DescriptionDocument()
		if err == nil {
			srv.Handle("/description.xml", func(*httpx.Request) *httpx.Response {
				return &httpx.Response{Status: 200,
					Headers: map[string]string{"Content-Type": "text/xml"}, Body: doc}
			})
		}
	}
}

// DescriptionDocument renders the UPnP device description (Table 5).
func (d *Device) DescriptionDocument() ([]byte, error) {
	p := d.Profile
	dev := &ssdp.Device{
		FriendlyName: p.DisplayName,
		Manufacturer: p.Vendor,
		ModelName:    p.Model,
		SerialNumber: d.Serial,
		UDN:          "uuid:" + d.UUID,
		DeviceType:   ssdp.TargetBasic,
	}
	if dev.FriendlyName == "" {
		dev.FriendlyName = p.Model
	}
	if p.SSDP != nil && len(p.SSDP.Ads) > 0 {
		dev.DeviceType = p.SSDP.Ads[0].Target
		for _, ad := range p.SSDP.Ads {
			dev.Services = append(dev.Services, ssdp.DeviceService{
				ServiceType: ad.Target, ControlURL: "/upnp/control",
			})
		}
	}
	return dev.Document()
}

func (d *Device) startDNS() {
	// A tiny DNS server that resolves its own hostname and — vulnerably —
	// answers cache-snooping probes for recently resolved names (§5.2).
	recent := []string{"time.apple.com", "gateway.icloud.com"}
	d.Host.OpenUDP(53, func(dg stack.Datagram) {
		m, err := parseDNSQuery(dg.Payload)
		if err != nil {
			return
		}
		d.Host.SendUDP(53, dg.Src, dg.SrcPort, m.respond(d.Host.IPv4(), d.Hostname(), recent))
	})
}

func (d *Device) startTelnet() {
	d.Host.ListenTCP(d.Profile.TelnetPort, func(c *stack.TCPConn) {
		sess := &telnetx.Session{Banner: "BusyBox v1.12.1 (2018-04-21) built-in shell"}
		c.Send(sess.Greeting())
		c.OnData = func(c *stack.TCPConn, data []byte) {
			c.Send(sess.Feed(data))
		}
	})
}

func (d *Device) startARP() {
	b := d.Profile.ARP
	if b.SweepInterval > 0 {
		d.Host.Sched.EveryTagged("device", time.Minute, b.SweepInterval, b.SweepInterval/10, func() {
			base := d.IP().As4()
			probes := uint64(0)
			for host := byte(1); host < 255; host++ {
				base[3] = host
				target := netip.AddrFrom4(base)
				if target != d.IP() {
					d.Host.ARPProbe(target)
					probes++
				}
			}
			if b.RequestsPublicIPs {
				d.Host.ARPProbe(netip.AddrFrom4([4]byte{8, 8, 8, 8}))
				probes++
			}
			d.count("arp", probes)
		})
	}
	if b.UnicastProbes {
		d.Host.Sched.EveryTagged("device", 5*time.Minute, time.Hour, 5*time.Minute, func() {
			for _, peer := range d.Peers {
				if peer.IP().IsValid() {
					d.count("arp", 1)
					d.Host.ARPProbeUnicast(peer.MAC(), peer.IP())
				}
			}
		})
	}
}

func (d *Device) startICMPv6Probes() {
	count := d.Profile.ICMPv6ProbeCount
	sent := 0
	d.Host.Sched.EveryTagged("device", time.Minute, 30*time.Second, 5*time.Second, func() {
		if sent >= count {
			return
		}
		for i := 0; i < 8 && sent < count; i++ {
			var a [16]byte
			a[0], a[1] = 0xfe, 0x80
			d.Host.Sched.Rand().Read(a[8:])
			d.count("icmpv6-probe", 1)
			d.Host.SendUDP(5353, netip.AddrFrom16(a), 5353, nil)
			sent++
		}
	})
}

// RTPSync streams a burst of RTP packets to a peer (multi-room audio).
func (d *Device) RTPSync(peer *Device, packets int) {
	if d.Profile.RTPPort == 0 || !peer.IP().IsValid() {
		return
	}
	d.count("rtp", uint64(packets))
	if d.Host.Sched.Tracing() {
		d.Host.Sched.TraceEvent("proto", "rtp-sync",
			"from", d.Profile.Name, "to", peer.Profile.Name)
	}
	ssrc := uint32(md5.Sum([]byte(d.Profile.Name))[0])<<8 | 0x42
	for i := 0; i < packets; i++ {
		h := &rtp.Header{PayloadType: 10, Seq: uint16(i), Timestamp: uint32(i) * 160, SSRC: ssrc}
		payload := make([]byte, 160)
		d.Host.Sched.Rand().Read(payload)
		d.Host.SendUDP(d.Profile.RTPPort, peer.IP(), d.Profile.RTPPort, h.Marshal(payload))
	}
}

// DialPeerTLS opens a platform-internal TLS connection to a peer, sends one
// control message and closes — the Figure 4 cluster traffic.
func (d *Device) DialPeerTLS(peer *Device) {
	var spec *TLSSpec
	for i := range peer.Profile.TLS {
		spec = &peer.Profile.TLS[i]
		break
	}
	if spec == nil || !peer.IP().IsValid() {
		return
	}
	d.count("tls", 1)
	if d.Host.Sched.Tracing() {
		d.Host.Sched.TraceEvent("proto", "tls-dial",
			"from", d.Profile.Name, "to", peer.Profile.Name)
	}
	cfg := tlsx.Config{Version: spec.Version}
	if spec.TwoWay {
		cfg.Cert = clientCertFor(d)
	}
	conn := tlsx.Dial(d.Host, peer.IP(), spec.Port, cfg, "")
	conn.OnEstablished = func(c *tlsx.Conn) { c.Send([]byte(`{"type":"keepalive"}`)) }
	conn.OnData = func(c *tlsx.Conn, _ []byte) { c.Close() }
}

func clientCertFor(d *Device) tlsx.CertMeta {
	return tlsx.CertMeta{
		IssuerCN: d.IP().String(), SubjectCN: d.IP().String(),
		SelfSigned: true, KeyBits: 128,
		NotBefore: d.Host.Sched.Now().Add(-24 * time.Hour),
		NotAfter:  d.Host.Sched.Now().Add(90 * 24 * time.Hour),
	}
}
