package device

import (
	"strings"
	"testing"

	"iotlan/internal/lan"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
	"iotlan/internal/stack"
)

func TestCatalogSize(t *testing.T) {
	cat := Catalog()
	if len(cat) != 93 {
		t.Fatalf("catalog has %d devices, want 93", len(cat))
	}
	models := map[string]bool{}
	names := map[string]bool{}
	for _, p := range cat {
		if names[p.Name] {
			t.Errorf("duplicate device name %q", p.Name)
		}
		names[p.Name] = true
		models[p.UniqueModelKey()] = true
	}
	if len(models) != 78 {
		t.Fatalf("catalog has %d unique models, want 78", len(models))
	}
}

func TestCatalogCategoryCounts(t *testing.T) {
	counts := map[Category]int{}
	for _, p := range Catalog() {
		counts[p.Category]++
	}
	want := map[Category]int{
		VoiceAssistant: 27, Surveillance: 19, MediaTV: 7,
		HomeAutomation: 22, HomeAppliance: 10, GenericIoT: 7, GameConsole: 1,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%s: %d devices, want %d", cat, counts[cat], n)
		}
	}
}

func TestCatalogBehaviourFractions(t *testing.T) {
	cat := Catalog()
	var mdnsN, ssdpN, tlsN, ipv6N, tuyaN, tplinkServeN int
	for _, p := range cat {
		if p.MDNS != nil {
			mdnsN++
		}
		if p.SSDP != nil {
			ssdpN++
		}
		if len(p.TLS) > 0 {
			tlsN++
		}
		if p.IPv6 {
			ipv6N++
		}
		if p.Tuya != nil && p.Tuya.Serve {
			tuyaN++
		}
		if p.TPLink != nil && p.TPLink.Serve {
			tplinkServeN++
		}
	}
	// The paper's prevalence bands (Figure 2): mDNS 44%, SSDP 32%, TLS 35%,
	// IPv6 59%, TuyaLP ~5%. Allow the model ±10 points.
	checks := []struct {
		name   string
		n      int
		lo, hi int
	}{
		{"mDNS", mdnsN, 34, 55},
		{"SSDP", ssdpN, 10, 35},
		{"TLS", tlsN, 25, 42},
		{"IPv6", ipv6N, 40, 65},
		{"TuyaLP", tuyaN, 3, 7},
		{"TPLINK serve", tplinkServeN, 2, 2},
	}
	for _, c := range checks {
		if c.n < c.lo || c.n > c.hi {
			t.Errorf("%s: %d devices, want in [%d, %d]", c.name, c.n, c.lo, c.hi)
		}
	}
}

func TestHostnamePolicies(t *testing.T) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	mk := func(p *Profile, last byte) *Device {
		mac := netx.MAC{p.OUI[0], p.OUI[1], p.OUI[2], 0, 0, last}
		return New(p, stack.NewHost(n, mac, stack.DefaultPolicy))
	}
	chime := mk(ringChime(), 1)
	if h := chime.Hostname(); !strings.Contains(h, chime.MAC().Compact()) {
		t.Errorf("Ring Chime hostname should embed full MAC: %q", h)
	}
	tp := mk(tplinkPlug(), 2)
	if h := tp.Hostname(); !strings.Contains(h, tp.MAC().Tail(3)) {
		t.Errorf("TP-Link hostname should embed MAC tail: %q", h)
	}
	hp := mk(homePod(1, "HomePod Mini", true), 3)
	if h := hp.Hostname(); !strings.Contains(h, "Jane-Doe") {
		t.Errorf("HomePod hostname should expose display name: %q", h)
	}
	ge := mk(geMicrowave(), 4)
	h1, h2 := ge.Hostname(), ge.Hostname()
	if h1 == h2 {
		t.Errorf("GE Microwave hostname should randomise: %q == %q", h1, h2)
	}
}

func TestExpandPlaceholders(t *testing.T) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	p := hueHub()
	mac := netx.MAC{0x00, 0x17, 0x88, 0x68, 0x5f, 0x61}
	d := New(p, stack.NewHost(n, mac, stack.DefaultPolicy))
	got := d.expand("Philips Hue - {tail} id={mac} u={uuid}")
	if !strings.Contains(got, "685F61") {
		t.Errorf("tail not expanded: %q", got)
	}
	if !strings.Contains(got, "00:17:88:68:5f:61") {
		t.Errorf("mac not expanded: %q", got)
	}
	if !strings.Contains(got, d.UUID) {
		t.Errorf("uuid not expanded: %q", got)
	}
}

func TestUUIDDeterministicAndDistinct(t *testing.T) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	p := hueHub()
	mac := netx.MAC{0x00, 0x17, 0x88, 1, 2, 3}
	d1 := New(p, stack.NewHost(n, mac, stack.DefaultPolicy))
	d2 := New(p, stack.NewHost(n, mac, stack.DefaultPolicy))
	if d1.UUID != d2.UUID {
		t.Fatal("UUID not deterministic for same profile")
	}
	other := New(tplinkPlug(), stack.NewHost(n, mac, stack.DefaultPolicy))
	if other.UUID == d1.UUID {
		t.Fatal("different profiles share a UUID")
	}
	if len(d1.UUID) != 36 || strings.Count(d1.UUID, "-") != 4 {
		t.Fatalf("UUID shape: %q", d1.UUID)
	}
}

func TestVulnerableDevicesAnnotated(t *testing.T) {
	vulnIDs := map[string]bool{}
	for _, p := range Catalog() {
		for _, v := range p.Vulns {
			vulnIDs[v.ID] = true
		}
	}
	for _, want := range []string{
		"CVE-2016-2183", "SheerDNS-1.0.0", "dns-cache-snooping",
		"CVE-2020-11022", "onvif-unauth-snapshot", "http-backup-exposure",
		"upnp-1.0", "tplink-shp-unauth", "tuya-plaintext-keys",
	} {
		if !vulnIDs[want] {
			t.Errorf("catalog lacks ground-truth vulnerability %s", want)
		}
	}
}

func TestDescriptionDocumentExposesIdentifiers(t *testing.T) {
	s := sim.NewScheduler(1)
	n := lan.New(s)
	p := amcrestCam()
	mac := netx.MAC{0x9c, 0x8e, 0xcd, 0x0a, 0x33, 0x1b}
	d := New(p, stack.NewHost(n, mac, stack.DefaultPolicy))
	doc, err := d.DescriptionDocument()
	if err != nil {
		t.Fatal(err)
	}
	body := string(doc)
	// Amcrest's serial number is its MAC (Table 5).
	if !strings.Contains(body, "9c:8e:cd:0a:33:1b") {
		t.Errorf("description lacks MAC-as-serial: %s", body)
	}
	if !strings.Contains(body, "uuid:"+d.UUID) {
		t.Errorf("description lacks UDN: %s", body)
	}
}
