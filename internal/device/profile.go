// Package device models the smart-home devices of the MonIoTr testbed: a
// behaviour profile per device (protocols spoken, discovery cadence,
// identifier-exposure policy, open services, vulnerabilities) and a runtime
// that drives those behaviours on the simulated network. The catalog in
// catalog.go instantiates the full 93-device Table 3 inventory.
package device

import (
	"time"

	"iotlan/internal/netx"
	"iotlan/internal/ssdp"
	"iotlan/internal/tlsx"
)

// Category matches Table 3's grouping.
type Category string

// Table 3 device categories.
const (
	GameConsole    Category = "Game Console"
	GenericIoT     Category = "Generic IoT"
	HomeAppliance  Category = "Home Appliance"
	HomeAutomation Category = "Home Automation"
	MediaTV        Category = "Media/TV"
	Surveillance   Category = "Surveillance"
	VoiceAssistant Category = "Voice Assistant"
)

// Platform names the interoperability ecosystem a device belongs to; devices
// on the same platform exchange local TLS/UDP control traffic (Figure 4).
type Platform string

// Ecosystems observed in the lab.
const (
	PlatformNone        Platform = ""
	PlatformAlexa       Platform = "alexa"
	PlatformGoogleHome  Platform = "google"
	PlatformHomeKit     Platform = "homekit"
	PlatformTuya        Platform = "tuya"
	PlatformSmartThings Platform = "smartthings"
)

// HostnameKind selects the DHCP/mDNS hostname construction policy — the
// §5.1 naming-method taxonomy.
type HostnameKind int

// Observed hostname policies.
const (
	// HostnameModel uses the bare model name (Ring cameras).
	HostnameModel HostnameKind = iota
	// HostnameModelMAC combines model and full MAC (Ring Chime).
	HostnameModelMAC
	// HostnameVendorTail combines vendor/model with a partial MAC (Tuya).
	HostnameVendorTail
	// HostnameDisplay exposes the user-defined display name (Google, Apple
	// speakers: "Jane Doe's Kitchen Homepod").
	HostnameDisplay
	// HostnameRandom re-randomises bytes per request (GE Microwave, TiVo) —
	// the privacy-preserving outlier.
	HostnameRandom
)

// MDNSBehaviour configures a device's multicast DNS activity.
type MDNSBehaviour struct {
	Services []ServiceSpec
	// QueryTypes are service types the device itself searches for.
	QueryTypes []string
	// QueryInterval is the gap between periodic queries (20–100 s for the
	// big platforms, §5.1).
	QueryInterval time.Duration
	// AnnounceInterval is the gap between unsolicited advertisements.
	AnnounceInterval time.Duration
	// AnswerUnicast honours QU questions (≈20% of devices).
	AnswerUnicast bool
}

// ServiceSpec describes one advertised mDNS service; InstancePattern may
// contain the placeholders {mac}, {tail}, {display}, {serial}, {uuid} which
// the runtime substitutes — this is where identifier exposure is encoded.
type ServiceSpec struct {
	InstancePattern string
	Type            string
	Port            uint16
	TXT             []string // same placeholders allowed
}

// SSDPBehaviour configures SSDP/UPnP activity.
type SSDPBehaviour struct {
	// Ads are advertisements answered/notified; Location is filled by the
	// runtime with the device's description URL.
	Ads []ssdp.Advertisement
	// SearchTargets are M-SEARCH targets sent periodically (Amazon:
	// ssdp:all + upnp:rootdevice; Google: specific targets).
	SearchTargets  []string
	SearchInterval time.Duration
	NotifyInterval time.Duration
	// AnswersSearch: only 9/30 SSDP devices respond to M-SEARCH (§5.1).
	AnswersSearch bool
	// UPnPVersion in the SERVER header; 1.0 is the exploitable legacy (§5.1).
	UPnPVersion string
	// DescriptionXML exposes a device-description document over HTTP.
	DescriptionXML bool
	// AnnounceBadAddress reproduces Fire TV's /16 NOTIFY misconfiguration.
	AnnounceBadAddress bool
}

// HTTPSpec is one plaintext HTTP service.
type HTTPSpec struct {
	Port   uint16
	Banner string // Server header (Nessus banner)
	// Paths maps path → static body; the runtime adds UPnP descriptions.
	Paths map[string]string
	// UserAgent is sent when the device acts as an HTTP client.
	UserAgent string
}

// TLSSpec is one TLS service.
type TLSSpec struct {
	Port    uint16
	Version uint16
	Cert    tlsx.CertMeta
	TwoWay  bool
}

// DNSSpec is an embedded DNS server (HomePod Mini, WeMo) — cache-snooping
// and version-disclosure prone (§5.2).
type DNSSpec struct {
	Software string // e.g. "SheerDNS 1.0.0"
}

// ARPBehaviour configures active ARP scanning.
type ARPBehaviour struct {
	// SweepInterval broadcasts who-has for the whole /24 (Echo: daily).
	SweepInterval time.Duration
	// UnicastProbes sends targeted unicast ARP to known neighbours.
	UnicastProbes bool
	// RequestsPublicIPs probes public addresses (6 lab devices do, §5.1).
	RequestsPublicIPs bool
}

// TPLinkSpec marks a device as speaking TPLINK-SHP.
type TPLinkSpec struct {
	// Serve: the device is a TP-Link product answering queries.
	Serve bool
	// Discover: the device (Echo, Google) broadcasts sysinfo queries.
	Discover         bool
	DiscoverInterval time.Duration
	// Latitude/Longitude are the plaintext geolocation leak.
	Latitude, Longitude float64
}

// TuyaSpec marks a TuyaLP speaker.
type TuyaSpec struct {
	Serve             bool
	Plaintext         bool // 3.1 firmware: gwId/productKey in the clear
	BroadcastInterval time.Duration
}

// Vulnerability is a ground-truth weakness the Nessus-like scanner should
// find, keyed by the CVE or plugin name the paper cites.
type Vulnerability struct {
	ID      string // "CVE-2016-2183", "SheerDNS-1.0.0", "jquery-1.2-xss", …
	Port    uint16
	Summary string
}

// Profile is the complete static description of one device.
type Profile struct {
	Name     string // unique slug, e.g. "echo-spot-1"
	Vendor   string
	Model    string
	Category Category
	Platform Platform
	OUI      netx.OUI

	HostnameKind HostnameKind
	// DisplayName is the user-assigned name (HostnameDisplay policy and
	// mDNS {display}).
	DisplayName string
	// DHCPVendorClass is the option-60 client identifier ("udhcp 1.19.4").
	DHCPVendorClass string
	// DHCPParams is the option-55 fingerprint.
	DHCPParams []uint8

	IPv6  bool
	EAPOL bool
	// XID emits periodic LLC/XID discovery frames.
	XID bool
	// SilentToBroadcastARP models the 42% of devices ignoring broadcast
	// scans while answering unicast (§5.1).
	SilentToBroadcastARP bool
	// RespondsToScans gates echo/unreachable responses (only 54/93 devices
	// answered TCP scans, §3.1).
	RespondsToScans bool

	ARP     *ARPBehaviour
	MDNS    *MDNSBehaviour
	SSDP    *SSDPBehaviour
	TPLink  *TPLinkSpec
	Tuya    *TuyaSpec
	CoAP    bool // IoTivity /oic/res requester (Samsung fridge)
	NetBIOS []string
	HTTP    []HTTPSpec
	TLS     []TLSSpec
	DNS     *DNSSpec
	// TelnetPort exposes a telnet daemon (vulnerable cameras).
	TelnetPort uint16
	// RTPPort emits multi-room audio sync traffic (Echo 55444, Google
	// 10000–10010).
	RTPPort uint16
	// ExtraTCP/ExtraUDP are additional open ports with no modelled service
	// (the §4.2 long tail).
	ExtraTCP []uint16
	ExtraUDP []uint16
	// LifxQuirk reproduces Echo's 2-hourly UDP 56700 broadcast for absent
	// Lifx bulbs (§5.1 unidentified traffic).
	LifxQuirk bool
	// ICMPv6ProbeCount floods multicast neighbour solicitations (Nest Hub's
	// 2,597 distinct addresses).
	ICMPv6ProbeCount int

	Vulns []Vulnerability
}

// UniqueModelKey identifies the model for the "78 unique models" count.
func (p *Profile) UniqueModelKey() string { return p.Vendor + "/" + p.Model }
