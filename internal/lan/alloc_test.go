// Alloc-count regression guards and benchmarks for the frame send path.
// These run as plain tests so CI catches a reintroduced per-delivery
// allocation; race instrumentation perturbs allocation counts, so the file
// is excluded from -race runs.
//
//go:build !race

package lan

import (
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
)

// sinkNode discards frames, so receive-side bookkeeping cannot hide (or
// fake) send-path allocations the way stubNode's append would.
type sinkNode struct{ mac netx.MAC }

func (n *sinkNode) MAC() netx.MAC        { return n.mac }
func (n *sinkNode) HandleFrame(_ []byte) {}

func mkFrame(tb testing.TB, src, dst netx.MAC) []byte {
	tb.Helper()
	f, err := layers.Serialize(
		&layers.Ethernet{Src: src, Dst: dst, EtherType: layers.EtherTypeIPv4},
		layers.RawPayload(make([]byte, 30)))
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

// sinkNet builds a network of count discarding stations and returns the
// station MACs in attach order.
func sinkNet(tb testing.TB, count int) (*sim.Scheduler, *Network, []netx.MAC) {
	tb.Helper()
	s := sim.NewScheduler(1)
	n := New(s)
	macs := make([]netx.MAC, count)
	for i := range macs {
		macs[i] = netx.MAC{2, 0, 0, 0, 1, byte(i + 1)}
		n.Attach(&sinkNode{mac: macs[i]})
	}
	return s, n, macs
}

// The steady-state send path — unicast and multicast — must not allocate:
// delivery/fanout structs and scheduler events all come from pools.
func TestSendAllocs(t *testing.T) {
	s, n, macs := sinkNet(t, 8)
	uni := mkFrame(t, macs[0], macs[1])
	multi := mkFrame(t, macs[0], netx.Broadcast)
	// Warm the pools, the frame-type counter cache, and the fanout's
	// recipients capacity.
	n.Send(uni)
	n.Send(multi)
	s.RunFor(time.Second)

	if avg := testing.AllocsPerRun(200, func() {
		n.Send(uni)
		s.RunFor(time.Millisecond)
	}); avg != 0 {
		t.Fatalf("unicast Send+deliver = %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		n.Send(multi)
		s.RunFor(time.Millisecond)
	}); avg != 0 {
		t.Fatalf("multicast Send+deliver = %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkLanSend(b *testing.B) {
	b.Run("Unicast", func(b *testing.B) {
		s, n, macs := sinkNet(b, 8)
		f := mkFrame(b, macs[0], macs[1])
		n.Send(f)
		s.RunFor(time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Send(f)
			s.RunFor(time.Millisecond)
		}
	})
	b.Run("Multicast8", func(b *testing.B) {
		s, n, macs := sinkNet(b, 8)
		f := mkFrame(b, macs[0], netx.Broadcast)
		n.Send(f)
		s.RunFor(time.Second)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Send(f)
			s.RunFor(time.Millisecond)
		}
	})
}
