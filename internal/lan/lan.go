// Package lan simulates the home network's layer 2: a Wi-Fi access point /
// switch that delivers Ethernet frames between attached nodes and exposes a
// capture tap, mirroring the MonIoTr testbed AP running tcpdump.
package lan

import (
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
)

// Node is anything attached to the network that can receive frames.
type Node interface {
	// MAC returns the node's hardware address; the switch learns it on
	// Attach (no flooding-based learning is modelled).
	MAC() netx.MAC
	// HandleFrame delivers a frame addressed to (or multicast past) the node.
	// It runs in simulation-event context.
	HandleFrame(frame []byte)
}

// TapFunc observes every frame on the network, like tcpdump on the AP.
type TapFunc func(at time.Time, frame []byte)

// Network is the simulated switch. Frames submitted with Send are delivered
// after a fixed propagation delay via the shared scheduler, so all traffic
// interleaves deterministically.
type Network struct {
	Sched *sim.Scheduler

	// Latency is the one-way frame propagation delay (default 250µs,
	// a plausible Wi-Fi LAN RTT/2).
	Latency time.Duration

	nodes map[netx.MAC]Node
	order []netx.MAC // deterministic multicast fan-out order
	taps  []TapFunc

	// FramesDelivered counts deliveries (multicast counts once per receiver).
	FramesDelivered uint64
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		Sched:   sched,
		Latency: 250 * time.Microsecond,
		nodes:   make(map[netx.MAC]Node),
	}
}

// Attach connects a node. Attaching an already-present MAC replaces the node
// (a device rejoining after reboot).
func (n *Network) Attach(node Node) {
	mac := node.MAC()
	if _, exists := n.nodes[mac]; !exists {
		n.order = append(n.order, mac)
	}
	n.nodes[mac] = node
}

// Detach removes the node with the given MAC (phone leaving the house).
func (n *Network) Detach(mac netx.MAC) {
	if _, ok := n.nodes[mac]; !ok {
		return
	}
	delete(n.nodes, mac)
	for i, m := range n.order {
		if m == mac {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
}

// Tap registers a capture callback that sees every frame at send time.
func (n *Network) Tap(fn TapFunc) { n.taps = append(n.taps, fn) }

// NodeCount reports attached nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// Send submits a frame to the switch. The tap observes it immediately
// (capture happens at the AP); receivers get it after Latency.
func (n *Network) Send(frame []byte) {
	var eth layers.Ethernet
	if eth.DecodeFromBytes(frame) != nil {
		return // unframeable garbage is dropped silently, like real L2
	}
	for _, tap := range n.taps {
		tap(n.Sched.Now(), frame)
	}
	if eth.Dst.IsMulticast() { // broadcast has the group bit set too
		// One scheduler event fans out to every receiver: all stations hear
		// a multicast frame at the same instant, and batching keeps the
		// event queue small on busy discovery traffic.
		src := eth.Src
		n.Sched.After(n.Latency, func() {
			for _, mac := range n.order {
				if mac == src {
					continue
				}
				if node, ok := n.nodes[mac]; ok {
					n.FramesDelivered++
					node.HandleFrame(frame)
				}
			}
		})
		return
	}
	if node, ok := n.nodes[eth.Dst]; ok {
		n.Sched.After(n.Latency, func() {
			n.FramesDelivered++
			node.HandleFrame(frame)
		})
	}
	// Unknown unicast destinations are dropped: the switch has a complete
	// station table because every node Attaches explicitly.
}
