// Package lan simulates the home network's layer 2: a Wi-Fi access point /
// switch that delivers Ethernet frames between attached nodes and exposes a
// capture tap, mirroring the MonIoTr testbed AP running tcpdump.
package lan

import (
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/obs"
	"iotlan/internal/sim"
)

// Node is anything attached to the network that can receive frames.
type Node interface {
	// MAC returns the node's hardware address; the switch learns it on
	// Attach (no flooding-based learning is modelled).
	MAC() netx.MAC
	// HandleFrame delivers a frame addressed to (or multicast past) the node.
	// It runs in simulation-event context. The frame is network-owned (see
	// the Send ownership contract); receivers must not modify it.
	HandleFrame(frame []byte)
}

// TapFunc observes every frame on the network, like tcpdump on the AP. The
// frame slice is retained by capture layers, so the Send ownership contract
// applies: it must never be modified after Send.
type TapFunc func(at time.Time, frame []byte)

// Drop reasons for lan_frames_dropped{reason=...}.
const (
	DropUndecodable    = "undecodable"
	DropUnknownUnicast = "unknown-unicast"
	// DropDetached counts in-flight frames whose destination left the
	// network between send and delivery (a device crashing mid-exchange).
	DropDetached = "detached"
	// DropChaosLoss and DropChaosPartition count frames an attached fault
	// injector discarded.
	DropChaosLoss      = "chaos-loss"
	DropChaosPartition = "chaos-partition"
)

// Verdict is a fault injector's decision about one frame delivery (one
// receiver of a unicast or multicast frame).
type Verdict struct {
	// Drop discards the delivery; Reason labels the telemetry drop series.
	Drop   bool
	Reason string
	// ExtraDelay is added to the network's base latency for this delivery.
	// Deliveries delayed past later frames arrive reordered.
	ExtraDelay time.Duration
	// Duplicates schedules this many extra copies, each DuplicateGap after
	// the previous one.
	Duplicates   int
	DuplicateGap time.Duration
}

// ImpairFunc decides the fate of one delivery. It runs in simulation-event
// context at send time, once per receiver; src/dst are the frame's Ethernet
// source and the receiver's MAC.
type ImpairFunc func(src, dst netx.MAC, multicast bool, frame []byte) Verdict

// Network is the simulated switch. Frames submitted with Send are delivered
// after a fixed propagation delay via the shared scheduler, so all traffic
// interleaves deterministically.
type Network struct {
	Sched *sim.Scheduler

	// Latency is the one-way frame propagation delay (default 250µs,
	// a plausible Wi-Fi LAN RTT/2).
	Latency time.Duration

	// Impair, when set, is consulted once per receiver before a delivery is
	// scheduled (the chaos layer's hook). Nil means a perfect network.
	Impair ImpairFunc

	// CheckFrameOwnership enables the debug enforcement of Send's ownership
	// contract: every frame is checksummed at send time and re-verified at
	// delivery; a sender that reused its buffer while the frame was in
	// flight panics with a diagnostic instead of silently corrupting
	// captures. Off by default — it costs one hash pass per frame.
	CheckFrameOwnership bool

	nodes map[netx.MAC]Node
	order []netx.MAC // deterministic multicast fan-out order
	taps  []TapFunc

	// freeDeliveries / freeFanouts pool the per-delivery structs scheduled
	// on the simulator, so the steady-state send path allocates nothing.
	// The sim is single-threaded; plain slices suffice.
	freeDeliveries []*delivery
	freeFanouts    []*fanout

	// FramesDelivered counts deliveries (multicast counts once per receiver).
	FramesDelivered uint64

	cDelivered *obs.Counter
	cDropped   map[string]*obs.Counter
	// byType caches the lan_frames_total{cast,ethertype} handles; the key
	// packs the ethertype class index with the multicast bit.
	byType map[int]*obs.Counter
}

// New creates a network on the given scheduler.
func New(sched *sim.Scheduler) *Network {
	reg := sched.Telemetry.Registry
	return &Network{
		Sched:      sched,
		Latency:    250 * time.Microsecond,
		nodes:      make(map[netx.MAC]Node),
		cDelivered: reg.Counter("lan_frames_delivered"),
		cDropped: map[string]*obs.Counter{
			DropUndecodable:    reg.Counter("lan_frames_dropped", "reason", DropUndecodable),
			DropUnknownUnicast: reg.Counter("lan_frames_dropped", "reason", DropUnknownUnicast),
		},
		byType: make(map[int]*obs.Counter),
	}
}

// etherName classifies an EtherType for the frames-by-type series.
func etherName(et uint16) string {
	switch {
	case et == layers.EtherTypeIPv4:
		return "ipv4"
	case et == layers.EtherTypeARP:
		return "arp"
	case et == layers.EtherTypeIPv6:
		return "ipv6"
	case et == layers.EtherTypeEAPOL:
		return "eapol"
	case et <= 1500: // 802.3 length field (LLC/XID)
		return "llc"
	default:
		return "other"
	}
}

// etherClass maps etherName values to small ints for handle caching.
func etherClass(et uint16) int {
	switch {
	case et == layers.EtherTypeIPv4:
		return 0
	case et == layers.EtherTypeARP:
		return 1
	case et == layers.EtherTypeIPv6:
		return 2
	case et == layers.EtherTypeEAPOL:
		return 3
	case et <= 1500:
		return 4
	default:
		return 5
	}
}

func (n *Network) frameCounter(et uint16, multicast bool) *obs.Counter {
	key := etherClass(et) << 1
	cast := "unicast"
	if multicast {
		key |= 1
		cast = "multicast"
	}
	c, ok := n.byType[key]
	if !ok {
		c = n.Sched.Telemetry.Registry.Counter("lan_frames_total",
			"ethertype", etherName(et), "cast", cast)
		n.byType[key] = c
	}
	return c
}

// drop counts a dropped frame; real switches drop silently, the telemetry
// layer does not. Unknown reasons (chaos, detached) get their series created
// on first use.
func (n *Network) drop(reason string) {
	c, ok := n.cDropped[reason]
	if !ok {
		c = n.Sched.Telemetry.Registry.Counter("lan_frames_dropped", "reason", reason)
		n.cDropped[reason] = c
	}
	c.Inc()
	n.Sched.TraceEvent("lan", "drop", "reason", reason)
}

// FramesDropped reports the total dropped frames across all reasons.
func (n *Network) FramesDropped() uint64 {
	var sum uint64
	for _, c := range n.cDropped {
		sum += c.Value()
	}
	return sum
}

// Attach connects a node. Attaching an already-present MAC replaces the node
// (a device rejoining after reboot).
func (n *Network) Attach(node Node) {
	mac := node.MAC()
	if _, exists := n.nodes[mac]; !exists {
		n.order = append(n.order, mac)
	}
	n.nodes[mac] = node
}

// Detach removes the node with the given MAC (phone leaving the house).
func (n *Network) Detach(mac netx.MAC) {
	if _, ok := n.nodes[mac]; !ok {
		return
	}
	delete(n.nodes, mac)
	for i, m := range n.order {
		if m == mac {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
}

// Tap registers a capture callback that sees every frame at send time.
func (n *Network) Tap(fn TapFunc) { n.taps = append(n.taps, fn) }

// NodeCount reports attached nodes.
func (n *Network) NodeCount() int { return len(n.nodes) }

// delivery is one pooled in-flight unicast (or per-receiver impaired)
// delivery event. It implements sim.Runner so scheduling it allocates no
// closure; Fire returns the struct to the network's pool.
type delivery struct {
	net   *Network
	dst   netx.MAC
	frame []byte
	check uint64 // send-time frame checksum; 0 when ownership checks are off
}

// Fire implements sim.Runner.
func (d *delivery) Fire() {
	n := d.net
	n.verifyOwnership(d.frame, d.check)
	n.deliverNow(d.dst, d.frame)
	*d = delivery{}
	n.freeDeliveries = append(n.freeDeliveries, d)
}

// fanout is one pooled multicast delivery event: a single scheduler event
// that hands the frame to every send-time recipient, keeping the event queue
// small on busy discovery traffic. The recipients slice keeps its capacity
// across reuses.
type fanout struct {
	net        *Network
	recipients []netx.MAC
	frame      []byte
	check      uint64
}

// Fire implements sim.Runner.
func (f *fanout) Fire() {
	n := f.net
	n.verifyOwnership(f.frame, f.check)
	for _, mac := range f.recipients {
		n.deliverNow(mac, f.frame)
	}
	f.recipients = f.recipients[:0]
	f.frame, f.check = nil, 0
	n.freeFanouts = append(n.freeFanouts, f)
}

func (n *Network) getDelivery(dst netx.MAC, frame []byte, check uint64) *delivery {
	if l := len(n.freeDeliveries); l > 0 {
		d := n.freeDeliveries[l-1]
		n.freeDeliveries[l-1] = nil
		n.freeDeliveries = n.freeDeliveries[:l-1]
		*d = delivery{net: n, dst: dst, frame: frame, check: check}
		return d
	}
	return &delivery{net: n, dst: dst, frame: frame, check: check}
}

func (n *Network) getFanout(frame []byte, check uint64) *fanout {
	if l := len(n.freeFanouts); l > 0 {
		f := n.freeFanouts[l-1]
		n.freeFanouts[l-1] = nil
		n.freeFanouts = n.freeFanouts[:l-1]
		f.net, f.frame, f.check = n, frame, check
		return f
	}
	return &fanout{net: n, frame: frame, check: check}
}

// frameSum is FNV-1a over the frame, used by the ownership debug check.
func frameSum(b []byte) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// verifyOwnership enforces the Send contract when CheckFrameOwnership is on.
func (n *Network) verifyOwnership(frame []byte, want uint64) {
	if want == 0 || !n.CheckFrameOwnership {
		return
	}
	if got := frameSum(frame); got != want {
		panic("lan: frame mutated after Send — the sender reused its buffer while the frame was in flight (Send transfers ownership; see Network.Send)")
	}
}

// Send submits a frame to the switch. The tap observes it immediately
// (capture happens at the AP); receivers get it after Latency.
//
// Ownership contract: Send transfers ownership of the frame slice to the
// network. Capture taps retain it verbatim and in-flight deliveries hand the
// same backing array to receivers, so the caller must not modify the buffer
// after Send — build a fresh frame per send (layers.Serialize does). Buffer
// reuse is a bug; set CheckFrameOwnership in tests to catch it with a panic
// at delivery time.
func (n *Network) Send(frame []byte) {
	var eth layers.Ethernet
	if eth.DecodeFromBytes(frame) != nil {
		n.drop(DropUndecodable) // unframeable garbage, like real L2 — but counted
		return
	}
	multicast := eth.Dst.IsMulticast()
	n.frameCounter(eth.EtherType, multicast).Inc()
	if n.Sched.Tracing() {
		n.Sched.TraceEvent("lan", "frame",
			"ethertype", etherName(eth.EtherType),
			"src", eth.Src.String(), "dst", eth.Dst.String())
	}
	for _, tap := range n.taps {
		tap(n.Sched.Now(), frame)
	}
	var check uint64
	if n.CheckFrameOwnership {
		check = frameSum(frame)
	}
	if multicast { // broadcast has the group bit set too
		// Station membership is snapshotted at send time (the frame is "in
		// the air"); each receiver is looked up again at delivery so a
		// station that detached in flight counts as a drop, not a delivery.
		src := eth.Src
		if n.Impair == nil {
			// One scheduler event fans out to every receiver: all stations
			// hear a multicast frame at the same instant, and batching keeps
			// the event queue small on busy discovery traffic.
			f := n.getFanout(frame, check)
			for _, mac := range n.order {
				if mac != src {
					f.recipients = append(f.recipients, mac)
				}
			}
			n.Sched.AfterRunner("lan", n.Latency, f)
			return
		}
		for _, mac := range n.order {
			if mac != src {
				n.scheduleDelivery(src, mac, true, frame, check)
			}
		}
		return
	}
	if _, ok := n.nodes[eth.Dst]; ok {
		n.scheduleDelivery(eth.Src, eth.Dst, false, frame, check)
		return
	}
	// Unknown unicast destinations are dropped: the switch has a complete
	// station table because every node Attaches explicitly.
	n.drop(DropUnknownUnicast)
}

// scheduleDelivery applies the impairment verdict (if any) for one receiver
// and schedules the pooled delivery event(s).
func (n *Network) scheduleDelivery(src, dst netx.MAC, multicast bool, frame []byte, check uint64) {
	delay := n.Latency
	copies := 1
	gap := time.Duration(0)
	if n.Impair != nil {
		v := n.Impair(src, dst, multicast, frame)
		if v.Drop {
			reason := v.Reason
			if reason == "" {
				reason = DropChaosLoss
			}
			n.drop(reason)
			return
		}
		delay += v.ExtraDelay
		copies += v.Duplicates
		gap = v.DuplicateGap
	}
	for i := 0; i < copies; i++ {
		at := delay + time.Duration(i)*gap
		n.Sched.AfterRunner("lan", at, n.getDelivery(dst, frame, check))
	}
}

// deliverNow hands a frame to the station currently owning dst, or counts a
// detached drop when the station left the network while the frame was in
// flight.
func (n *Network) deliverNow(dst netx.MAC, frame []byte) {
	node, ok := n.nodes[dst]
	if !ok {
		n.drop(DropDetached)
		return
	}
	n.FramesDelivered++
	n.cDelivered.Inc()
	node.HandleFrame(frame)
}
