package lan

import (
	"testing"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/sim"
)

// stubNode records frames it receives.
type stubNode struct {
	mac    netx.MAC
	frames [][]byte
}

func (n *stubNode) MAC() netx.MAC            { return n.mac }
func (n *stubNode) HandleFrame(frame []byte) { n.frames = append(n.frames, frame) }

func frame(t *testing.T, src, dst netx.MAC) []byte {
	t.Helper()
	f, err := layers.Serialize(
		&layers.Ethernet{Src: src, Dst: dst, EtherType: layers.EtherTypeIPv4},
		layers.RawPayload(make([]byte, 30)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func setup() (*sim.Scheduler, *Network, *stubNode, *stubNode, *stubNode) {
	s := sim.NewScheduler(1)
	n := New(s)
	a := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 1}}
	b := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 2}}
	c := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 3}}
	n.Attach(a)
	n.Attach(b)
	n.Attach(c)
	return s, n, a, b, c
}

func TestUnicastDelivery(t *testing.T) {
	s, n, a, b, c := setup()
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if len(b.frames) != 1 {
		t.Fatalf("b got %d frames", len(b.frames))
	}
	if len(a.frames) != 0 || len(c.frames) != 0 {
		t.Fatal("unicast leaked to other stations")
	}
}

func TestBroadcastExcludesSender(t *testing.T) {
	s, n, a, b, c := setup()
	n.Send(frame(t, a.mac, netx.Broadcast))
	s.RunFor(time.Second)
	if len(a.frames) != 0 {
		t.Fatal("sender heard its own broadcast")
	}
	if len(b.frames) != 1 || len(c.frames) != 1 {
		t.Fatalf("broadcast fan-out: b=%d c=%d", len(b.frames), len(c.frames))
	}
}

func TestMulticastDelivery(t *testing.T) {
	s, n, a, b, _ := setup()
	group := netx.MulticastMAC(netx.MDNSv4Group)
	n.Send(frame(t, a.mac, group))
	s.RunFor(time.Second)
	// L2 multicast reaches every station; filtering happens at L3.
	if len(b.frames) != 1 {
		t.Fatalf("multicast not delivered: %d", len(b.frames))
	}
}

func TestUnknownUnicastDropped(t *testing.T) {
	s, n, a, _, _ := setup()
	n.Send(frame(t, a.mac, netx.MAC{0xde, 0xad, 0, 0, 0, 1}))
	s.RunFor(time.Second)
	if n.FramesDelivered != 0 {
		t.Fatal("frame delivered to nonexistent station")
	}
}

func TestTapSeesEverything(t *testing.T) {
	s, n, a, b, _ := setup()
	var tapped int
	var tapTime time.Time
	n.Tap(func(at time.Time, f []byte) { tapped++; tapTime = at })
	n.Send(frame(t, a.mac, b.mac))
	n.Send(frame(t, a.mac, netx.Broadcast))
	if tapped != 2 {
		t.Fatalf("tap saw %d frames, want 2 (capture at send time)", tapped)
	}
	if !tapTime.Equal(s.Now()) {
		t.Fatal("tap timestamp should be the send instant")
	}
}

func TestDetachAndReattach(t *testing.T) {
	s, n, a, b, _ := setup()
	n.Detach(b.mac)
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if len(b.frames) != 0 {
		t.Fatal("detached node received a frame")
	}
	if n.NodeCount() != 2 {
		t.Fatalf("node count %d", n.NodeCount())
	}
	n.Attach(b)
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if len(b.frames) != 1 {
		t.Fatal("reattached node missed a frame")
	}
}

func TestReplaceNodeSameMAC(t *testing.T) {
	s, n, a, b, _ := setup()
	b2 := &stubNode{mac: b.mac}
	n.Attach(b2)
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if len(b.frames) != 0 || len(b2.frames) != 1 {
		t.Fatalf("replacement routing: old=%d new=%d", len(b.frames), len(b2.frames))
	}
	if n.NodeCount() != 3 {
		t.Fatalf("node count %d after replace", n.NodeCount())
	}
}

func TestGarbageFrameDropped(t *testing.T) {
	s, n, _, _, _ := setup()
	n.Send([]byte{1, 2, 3}) // unframeable
	s.RunFor(time.Second)
	if n.FramesDelivered != 0 {
		t.Fatal("garbage delivered")
	}
}

func TestDropAccounting(t *testing.T) {
	s, n, a, _, _ := setup()
	n.Send([]byte{1, 2, 3})                                   // undecodable
	n.Send(frame(t, a.mac, netx.MAC{0xde, 0xad, 0, 0, 0, 1})) // unknown unicast
	n.Send(frame(t, a.mac, netx.MAC{0xde, 0xad, 0, 0, 0, 2})) // unknown unicast
	s.RunFor(time.Second)
	if got := n.FramesDropped(); got != 3 {
		t.Fatalf("FramesDropped = %d, want 3", got)
	}
	reg := s.Telemetry.Registry
	if got := reg.CounterValue("lan_frames_dropped{reason=undecodable}"); got != 1 {
		t.Fatalf("undecodable drops = %d, want 1", got)
	}
	if got := reg.CounterValue("lan_frames_dropped{reason=unknown-unicast}"); got != 2 {
		t.Fatalf("unknown-unicast drops = %d, want 2", got)
	}
}

func TestFrameTypeAccounting(t *testing.T) {
	s, n, a, b, _ := setup()
	n.Send(frame(t, a.mac, b.mac))          // unicast ipv4
	n.Send(frame(t, a.mac, netx.Broadcast)) // multicast ipv4
	s.RunFor(time.Second)
	reg := s.Telemetry.Registry
	if got := reg.CounterValue("lan_frames_total{cast=unicast,ethertype=ipv4}"); got != 1 {
		t.Fatalf("unicast ipv4 frames = %d, want 1", got)
	}
	if got := reg.CounterValue("lan_frames_total{cast=multicast,ethertype=ipv4}"); got != 1 {
		t.Fatalf("multicast ipv4 frames = %d, want 1", got)
	}
	// Deliveries: 1 unicast + 2 broadcast receivers.
	if got := reg.CounterValue("lan_frames_delivered"); got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	if n.FramesDelivered != 3 {
		t.Fatalf("FramesDelivered field = %d, want 3", n.FramesDelivered)
	}
}

func TestOwnershipViolationPanics(t *testing.T) {
	s, n, a, b, _ := setup()
	n.CheckFrameOwnership = true
	f := frame(t, a.mac, b.mac)
	n.Send(f)
	// The sender illegally reuses its buffer while the frame is in flight.
	f[len(f)-1] ^= 0xff
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a frame in flight did not panic with CheckFrameOwnership on")
		}
	}()
	s.RunFor(time.Second)
}

func TestOwnershipCheckPassesCleanTraffic(t *testing.T) {
	s, n, a, b, c := setup()
	n.CheckFrameOwnership = true
	n.Send(frame(t, a.mac, b.mac))
	n.Send(frame(t, a.mac, netx.Broadcast))
	s.RunFor(time.Second)
	if len(b.frames) != 2 || len(c.frames) != 1 {
		t.Fatalf("clean traffic misdelivered under ownership checks: b=%d c=%d", len(b.frames), len(c.frames))
	}
}

func TestDeliveryLatency(t *testing.T) {
	s, n, a, b, _ := setup()
	start := s.Now()
	var deliveredAt time.Time
	done := make(chan struct{})
	_ = done
	bWrap := &hookNode{stubNode: b, onFrame: func() { deliveredAt = s.Now() }}
	n.Attach(bWrap) // replaces b
	n.Send(frame(t, a.mac, b.mac))
	s.RunFor(time.Second)
	if got := deliveredAt.Sub(start); got != n.Latency {
		t.Fatalf("delivery latency %v, want %v", got, n.Latency)
	}
}

type hookNode struct {
	*stubNode
	onFrame func()
}

func (h *hookNode) HandleFrame(frame []byte) {
	h.onFrame()
	h.stubNode.HandleFrame(frame)
}

// Regression: a unicast frame already in flight when its destination
// detaches must count as a "detached" drop, not panic or silently vanish.
func TestDetachWhileUnicastInFlight(t *testing.T) {
	s, n, a, b, _ := setup()
	n.Send(frame(t, a.mac, b.mac))
	n.Detach(b.mac) // before the delivery event fires
	s.RunFor(time.Second)
	if len(b.frames) != 0 {
		t.Fatal("detached node received an in-flight frame")
	}
	if got := s.Telemetry.Registry.CounterValue("lan_frames_dropped{reason=detached}"); got != 1 {
		t.Fatalf("detached drops = %d, want 1", got)
	}
	if n.FramesDelivered != 0 {
		t.Fatalf("FramesDelivered = %d, want 0", n.FramesDelivered)
	}
}

// Regression: multicast membership is snapshotted at send time, and each
// receiver is re-checked at delivery — a station that detaches in flight
// counts as a drop, and a station that attaches in flight hears nothing.
func TestDetachWhileMulticastInFlight(t *testing.T) {
	s, n, a, b, c := setup()
	n.Send(frame(t, a.mac, netx.Broadcast))
	n.Detach(c.mac)
	late := &stubNode{mac: netx.MAC{2, 0, 0, 0, 0, 9}}
	n.Attach(late) // joined after the frame was "in the air"
	s.RunFor(time.Second)
	if len(b.frames) != 1 {
		t.Fatalf("surviving receiver got %d frames, want 1", len(b.frames))
	}
	if len(c.frames) != 0 || len(late.frames) != 0 {
		t.Fatalf("in-flight membership leaked: detached=%d late-attach=%d",
			len(c.frames), len(late.frames))
	}
	if got := s.Telemetry.Registry.CounterValue("lan_frames_dropped{reason=detached}"); got != 1 {
		t.Fatalf("detached drops = %d, want 1", got)
	}
}

// The detached-drop accounting must also hold on the impaired path, where
// each receiver gets its own delivery event.
func TestDetachWhileInFlightWithImpairment(t *testing.T) {
	s, n, a, b, _ := setup()
	n.Impair = func(src, dst netx.MAC, multicast bool, frame []byte) Verdict {
		return Verdict{ExtraDelay: time.Millisecond}
	}
	n.Send(frame(t, a.mac, b.mac))
	n.Send(frame(t, a.mac, netx.Broadcast))
	n.Detach(b.mac)
	s.RunFor(time.Second)
	if len(b.frames) != 0 {
		t.Fatal("detached node received impaired in-flight frames")
	}
	// Both the unicast and b's share of the broadcast count as detached.
	if got := s.Telemetry.Registry.CounterValue("lan_frames_dropped{reason=detached}"); got != 2 {
		t.Fatalf("detached drops = %d, want 2", got)
	}
}
