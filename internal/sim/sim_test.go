package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.RunFor(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	at := s.Now().Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.RunFor(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerClockAdvances(t *testing.T) {
	s := NewScheduler(1)
	var seen time.Time
	s.After(90*time.Minute, func() { seen = s.Now() })
	s.RunFor(2 * time.Hour)
	want := Epoch.Add(90 * time.Minute)
	if !seen.Equal(want) {
		t.Fatalf("event saw clock %v, want %v", seen, want)
	}
	if !s.Now().Equal(Epoch.Add(2 * time.Hour)) {
		t.Fatalf("clock after RunFor = %v, want %v", s.Now(), Epoch.Add(2*time.Hour))
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	tm.Stop()
	s.RunFor(5 * time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestEveryRecursAndStops(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	tm := s.Every(time.Second, time.Second, 0, func() { n++ })
	s.RunFor(5500 * time.Millisecond)
	if n != 5 {
		t.Fatalf("Every fired %d times, want 5", n)
	}
	tm.Stop()
	s.RunFor(10 * time.Second)
	if n != 5 {
		t.Fatalf("Every fired after Stop: %d", n)
	}
}

// A stopped Every recurrence must not fire and must be accounted as a
// cancelled event, not a processed one.
func TestEveryStopCountsCancelledNotProcessed(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	tm := s.EveryTagged("test", time.Second, time.Second, 0, func() { n++ })
	s.RunFor(3500 * time.Millisecond)
	if n != 3 {
		t.Fatalf("Every fired %d times before Stop, want 3", n)
	}
	processedBefore := s.Processed
	tm.Stop()
	s.RunFor(10 * time.Second)
	if n != 3 {
		t.Fatalf("Every fired after Stop: %d", n)
	}
	if s.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1 (the pending recurrence)", s.Cancelled)
	}
	if s.Processed != processedBefore {
		t.Fatalf("cancelled recurrence counted as processed (%d → %d)",
			processedBefore, s.Processed)
	}
	reg := s.Telemetry.Registry
	if got := reg.CounterValue("sim_events_cancelled{source=test}"); got != 1 {
		t.Fatalf("sim_events_cancelled{source=test} = %d, want 1", got)
	}
	if got := reg.CounterValue("sim_events_processed{source=test}"); got != 3 {
		t.Fatalf("sim_events_processed{source=test} = %d, want 3", got)
	}
}

// Stopping a recurring timer from inside its own callback must halt the
// recurrence: the in-flight tick already rescheduled nothing.
func TestEveryStopFromInsideCallback(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	var tm *Timer
	tm = s.Every(time.Second, time.Second, 0, func() {
		n++
		if n == 2 {
			tm.Stop()
		}
	})
	s.RunFor(time.Minute)
	if n != 2 {
		t.Fatalf("Every fired %d times, want exactly 2 (stopped inside tick)", n)
	}
	if s.Pending() != 0 {
		t.Fatalf("stopped recurrence left %d events queued", s.Pending())
	}
}

func TestSchedulerSourceAccounting(t *testing.T) {
	s := NewScheduler(1)
	s.AfterTagged("lan", time.Second, func() {})
	s.AfterTagged("lan", 2*time.Second, func() {})
	s.After(3*time.Second, func() {}) // untagged → "other"
	s.RunFor(time.Minute)
	reg := s.Telemetry.Registry
	if got := reg.CounterValue("sim_events_processed{source=lan}"); got != 2 {
		t.Fatalf("lan-source events = %d, want 2", got)
	}
	if got := reg.CounterValue("sim_events_processed{source=other}"); got != 1 {
		t.Fatalf("other-source events = %d, want 1", got)
	}
	if got := reg.Total("sim_events_processed"); got != s.Processed {
		t.Fatalf("registry total %d != Processed %d", got, s.Processed)
	}
}

func TestEveryJitterStaysPositive(t *testing.T) {
	s := NewScheduler(42)
	n := 0
	s.Every(time.Millisecond, 10*time.Millisecond, 9*time.Millisecond, func() { n++ })
	s.RunFor(time.Second)
	if n < 50 || n > 1200 {
		t.Fatalf("jittered Every fired %d times, outside sane range", n)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := NewScheduler(7)
		var ticks []int64
		s.Every(0, time.Minute, 30*time.Second, func() {
			ticks = append(ticks, s.Now().Sub(Epoch).Milliseconds())
		})
		s.RunFor(time.Hour)
		return ticks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different run lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStopInsideEvent(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(time.Second, func() { n++; s.Stop() })
	s.After(2*time.Second, func() { n++ })
	s.RunFor(time.Hour)
	if n != 1 {
		t.Fatalf("Stop did not halt dispatch: n=%d", n)
	}
	// A later Run resumes where it left off.
	s.Run(s.Now().Add(time.Hour))
	if n != 2 {
		t.Fatalf("resume after Stop: n=%d, want 2", n)
	}
}

func TestPastEventsRunImmediately(t *testing.T) {
	s := NewScheduler(1)
	s.RunFor(time.Hour)
	fired := false
	s.At(Epoch, func() { fired = true }) // in the past now
	s.RunFor(time.Nanosecond)
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
}

// Property: for any set of non-negative delays, Run dispatches them in
// non-decreasing timestamp order.
func TestQuickOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(3)
		var fired []time.Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.RunFor(time.Hour)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].Before(fired[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerDispatch(b *testing.B) {
	b.Run("AtTagged", func(b *testing.B) {
		s := NewScheduler(1)
		fn := func() {}
		s.AtTagged("bench", s.Now(), fn)
		s.RunFor(time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AtTagged("bench", s.Now().Add(time.Microsecond), fn)
			s.RunFor(time.Millisecond)
		}
	})
	b.Run("AtRunner", func(b *testing.B) {
		s := NewScheduler(1)
		r := &benchRunner{}
		s.AtRunner("bench", s.Now(), r)
		s.RunFor(time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AtRunner("bench", s.Now().Add(time.Microsecond), r)
			s.RunFor(time.Millisecond)
		}
	})
}

type benchRunner struct{ fired int }

func (r *benchRunner) Fire() { r.fired++ }
