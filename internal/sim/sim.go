// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every moving part of the simulated smart home — device behaviours, protocol
// timers, scan probes — runs as events on a single virtual clock. This keeps
// multi-day traffic traces reproducible (a fixed seed yields byte-identical
// captures) and fast: five simulated days execute in well under a second.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"iotlan/internal/engine"
	"iotlan/internal/obs"
)

// Epoch is the virtual time at which every simulation starts. A fixed epoch
// (rather than the wall clock) keeps timestamps in captures deterministic.
var Epoch = time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)

// Runner is a pre-bound event callback. Hot paths that would otherwise
// allocate a fresh closure per scheduled event (the LAN's per-frame delivery
// events, tens of thousands per simulated minute) implement Runner on a
// pooled struct and schedule it with AtRunner/AfterRunner instead.
type Runner interface {
	// Fire runs the event. It executes in simulation-event context.
	Fire()
}

// Event is a unit of scheduled work. Events are pooled: after dispatch (or
// cancelled pop) the struct returns to the scheduler's free list and is
// reused by a later schedule under a fresh seq, which is what lets stale
// Timer handles detect that "their" event is gone.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among equal timestamps; also the Timer generation
	fn  func()
	run Runner    // exactly one of fn/run is set on a live event
	st  *srcStats // per-source telemetry handles, resolved at schedule time
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// srcStats caches the per-source counter handles so neither the dispatch
// loop nor the tracer ever touches the registry's mutex-guarded maps. It is
// resolved once per schedule call and rides on the event.
type srcStats struct {
	name      string
	processed *obs.Counter
	cancelled *obs.Counter
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated work runs inside Run on the caller's
// goroutine, which is exactly what makes traces deterministic.
type Scheduler struct {
	now     time.Time
	seq     uint64
	seed    int64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts executed events, mostly for tests and stats output.
	Processed uint64
	// Cancelled counts events that were popped already cancelled (their
	// Timer was stopped before they fired).
	Cancelled uint64

	// Telemetry is the simulation-wide metrics/tracing hub. Every layer
	// reaches it through the scheduler it already holds.
	Telemetry *obs.Telemetry

	gQueue   *obs.Gauge
	bySource map[string]*srcStats

	// free is the event free list. The sim is single-threaded, so a plain
	// slice (no sync.Pool) is both faster and deterministic.
	free []*event
}

// NewScheduler returns a scheduler whose clock starts at Epoch and whose
// random stream is derived from seed.
func NewScheduler(seed int64) *Scheduler {
	tel := obs.NewTelemetry()
	return &Scheduler{
		now:       Epoch,
		seed:      seed,
		rng:       rand.New(rand.NewSource(seed)),
		Telemetry: tel,
		gQueue:    tel.Registry.Gauge("sim_queue_depth"),
		bySource:  make(map[string]*srcStats),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Rand exposes the scheduler's deterministic random stream. All simulated
// jitter must come from here so that a seed fully determines a run.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Seed returns the seed the scheduler was built with.
func (s *Scheduler) Seed() int64 { return s.seed }

// SubRand derives an independent deterministic random stream from the
// scheduler's seed. Layers that consume randomness out-of-band (fault
// injection, dataset generators) draw from their own stream so enabling them
// never perturbs the base simulation's random sequence.
func (s *Scheduler) SubRand(stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(engine.SubSeed(s.seed, stream)))
}

// VirtualMicros is the current virtual time in microseconds since Epoch —
// the timestamp unit trace records use.
func (s *Scheduler) VirtualMicros() int64 { return s.now.Sub(Epoch).Microseconds() }

// TraceEvent emits a tracer record stamped with the current virtual time.
// It is free when no tracer is attached.
func (s *Scheduler) TraceEvent(cat, name string, args ...string) {
	if t := s.Telemetry.Tracer; t != nil {
		t.Event(s.VirtualMicros(), cat, name, args...)
	}
}

// Tracing reports whether a tracer is attached, so callers can skip
// building argument strings for disabled tracing.
func (s *Scheduler) Tracing() bool { return s.Telemetry.Tracer != nil }

func (s *Scheduler) stats(source string) *srcStats {
	st, ok := s.bySource[source]
	if !ok {
		st = &srcStats{
			name:      source,
			processed: s.Telemetry.Registry.Counter("sim_events_processed", "source", source),
			cancelled: s.Telemetry.Registry.Counter("sim_events_cancelled", "source", source),
		}
		s.bySource[source] = st
	}
	return st
}

// schedule is the single enqueue path: it pulls an event off the free list
// (or allocates one), stamps it with a fresh seq, and pushes it on the heap.
// The per-source stats handles are resolved here, at schedule time, so the
// dispatch loop never does a map lookup.
func (s *Scheduler) schedule(source string, at time.Time, fn func(), run Runner) *event {
	if at.Before(s.now) {
		at = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = event{at: at, seq: s.seq, fn: fn, run: run, st: s.stats(source)}
	} else {
		ev = &event{at: at, seq: s.seq, fn: fn, run: run, st: s.stats(source)}
	}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// recycle clears an event and returns it to the free list. The seq it held
// stays behind on the struct until reuse; Timer.Stop compares seqs, so a
// stale handle either finds nil callbacks (harmless) or a mismatched seq.
func (s *Scheduler) recycle(ev *event) {
	ev.fn, ev.run, ev.st = nil, nil, nil
	s.free = append(s.free, ev)
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
	// seq is the generation of ev this handle refers to. Events are pooled;
	// once ev has been recycled and reused its seq no longer matches and
	// Stop becomes a no-op on it instead of cancelling a stranger's event.
	seq uint64
	// stopped latches cancellation so recurring timers (Every) stop even
	// when Stop is called from inside their own callback, where ev already
	// points at the event being dispatched.
	stopped bool
}

// Stop cancels the timer. It is safe to call on an already-fired timer, and
// on a recurring timer it cancels all future recurrences.
func (t *Timer) Stop() {
	if t == nil {
		return
	}
	t.stopped = true
	if t.ev != nil && t.ev.seq == t.seq {
		t.ev.fn, t.ev.run = nil, nil
	}
}

// At schedules fn to run at the given virtual time. Times in the past run at
// the current time (next dispatch).
func (s *Scheduler) At(at time.Time, fn func()) *Timer {
	return s.AtTagged("other", at, fn)
}

// AtTagged is At with a telemetry source tag: dispatches are counted under
// sim_events_processed{source=...}.
func (s *Scheduler) AtTagged(source string, at time.Time, fn func()) *Timer {
	ev := s.schedule(source, at, fn, nil)
	return &Timer{ev: ev, seq: ev.seq}
}

// AtRunner schedules a pre-bound Runner at the given virtual time. Unlike
// AtTagged it returns no Timer and allocates nothing in steady state (the
// event comes from the pool), which is why frame-delivery hot paths use it.
func (s *Scheduler) AtRunner(source string, at time.Time, r Runner) {
	s.schedule(source, at, nil, r)
}

// AfterRunner schedules a pre-bound Runner d after the current virtual time.
func (s *Scheduler) AfterRunner(source string, d time.Duration, r Runner) {
	s.schedule(source, s.now.Add(d), nil, r)
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.AtTagged("other", s.now.Add(d), fn)
}

// AfterTagged is After with a telemetry source tag.
func (s *Scheduler) AfterTagged(source string, d time.Duration, fn func()) *Timer {
	return s.AtTagged(source, s.now.Add(d), fn)
}

// Every schedules fn to run now+first and then every period thereafter, with
// ±jitter applied to each recurrence (0 disables jitter). It returns a Timer
// whose Stop cancels future recurrences.
func (s *Scheduler) Every(first, period, jitter time.Duration, fn func()) *Timer {
	return s.EveryTagged("other", first, period, jitter, fn)
}

// EveryTagged is Every with a telemetry source tag.
func (s *Scheduler) EveryTagged(source string, first, period, jitter time.Duration, fn func()) *Timer {
	handle := &Timer{}
	var tick func()
	tick = func() {
		if handle.stopped { // stopped from within an earlier tick
			return
		}
		fn()
		if handle.stopped { // stopped from within fn itself
			return
		}
		d := period
		if jitter > 0 {
			d += time.Duration(s.rng.Int63n(int64(2*jitter))) - jitter
			if d <= 0 {
				d = period
			}
		}
		ev := s.schedule(source, s.now.Add(d), tick, nil)
		handle.ev, handle.seq = ev, ev.seq
	}
	ev := s.schedule(source, s.now.Add(first), tick, nil)
	handle.ev, handle.seq = ev, ev.seq
	return handle
}

// Stop halts Run after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in timestamp order until the virtual clock passes
// until, the event queue drains, or Stop is called. It returns the number of
// events executed.
func (s *Scheduler) Run(until time.Time) uint64 {
	start := s.Processed
	s.stopped = false
	tracing := s.Telemetry.Tracer != nil
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if ev.at.After(until) {
			break
		}
		heap.Pop(&s.events)
		if ev.fn == nil && ev.run == nil { // cancelled
			s.Cancelled++
			ev.st.cancelled.Inc()
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		fn, run, st := ev.fn, ev.run, ev.st
		ev.fn, ev.run = nil, nil
		if tracing {
			s.Telemetry.Tracer.Event(s.VirtualMicros(), "sim", "dispatch", "source", st.name)
		}
		if run != nil {
			run.Fire()
		} else {
			fn()
		}
		s.Processed++
		st.processed.Inc()
		s.recycle(ev)
	}
	// The queue-depth gauge is batched: one Set per Run call instead of one
	// per push/pop. The sim is single-threaded, so mid-run intermediate
	// depths were never observable from a consistent point anyway.
	s.gQueue.Set(int64(len(s.events)))
	if s.now.Before(until) {
		s.now = until
	}
	return s.Processed - start
}

// Step pops and executes the single earliest live event at or before until,
// skipping (and recycling) cancelled events it passes on the way. It returns
// true when a live event ran, false when the queue holds nothing runnable
// before until. Unlike Run it never advances the clock past the event it
// executed — external drivers (the vnet pump) interleave app goroutine
// rendezvous between events and need the clock parked meanwhile.
func (s *Scheduler) Step(until time.Time) bool {
	tracing := s.Telemetry.Tracer != nil
	for len(s.events) > 0 {
		ev := s.events[0]
		if ev.at.After(until) {
			break
		}
		heap.Pop(&s.events)
		if ev.fn == nil && ev.run == nil { // cancelled
			s.Cancelled++
			ev.st.cancelled.Inc()
			s.recycle(ev)
			continue
		}
		s.now = ev.at
		fn, run, st := ev.fn, ev.run, ev.st
		ev.fn, ev.run = nil, nil
		if tracing {
			s.Telemetry.Tracer.Event(s.VirtualMicros(), "sim", "dispatch", "source", st.name)
		}
		if run != nil {
			run.Fire()
		} else {
			fn()
		}
		s.Processed++
		st.processed.Inc()
		s.recycle(ev)
		s.gQueue.Set(int64(len(s.events)))
		return true
	}
	s.gQueue.Set(int64(len(s.events)))
	return false
}

// AdvanceTo moves the clock forward to t without executing events. Times in
// the past are ignored. Step-based drivers call it once they are done
// stepping, mirroring how Run leaves the clock at its until argument.
func (s *Scheduler) AdvanceTo(t time.Time) {
	if t.After(s.now) {
		s.now = t
	}
}

// RunFor runs the simulation for a virtual duration from the current time.
func (s *Scheduler) RunFor(d time.Duration) uint64 { return s.Run(s.now.Add(d)) }

// Pending reports the number of queued (possibly cancelled) events.
func (s *Scheduler) Pending() int { return len(s.events) }

// String implements fmt.Stringer for debug output.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%s pending=%d processed=%d cancelled=%d}",
		s.now.Format(time.RFC3339), len(s.events), s.Processed, s.Cancelled)
}
