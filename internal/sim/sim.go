// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every moving part of the simulated smart home — device behaviours, protocol
// timers, scan probes — runs as events on a single virtual clock. This keeps
// multi-day traffic traces reproducible (a fixed seed yields byte-identical
// captures) and fast: five simulated days execute in well under a second.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time at which every simulation starts. A fixed epoch
// (rather than the wall clock) keeps timestamps in captures deterministic.
var Epoch = time.Date(2022, 11, 14, 0, 0, 0, 0, time.UTC)

// Event is a unit of scheduled work.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated work runs inside Run on the caller's
// goroutine, which is exactly what makes traces deterministic.
type Scheduler struct {
	now     time.Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts executed events, mostly for tests and stats output.
	Processed uint64
}

// NewScheduler returns a scheduler whose clock starts at Epoch and whose
// random stream is derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Rand exposes the scheduler's deterministic random stream. All simulated
// jitter must come from here so that a seed fully determines a run.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer. It is safe to call on an already-fired timer.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.fn = nil
	}
}

// At schedules fn to run at the given virtual time. Times in the past run at
// the current time (next dispatch).
func (s *Scheduler) At(at time.Time, fn func()) *Timer {
	if at.Before(s.now) {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn to run now+first and then every period thereafter, with
// ±jitter applied to each recurrence (0 disables jitter). It returns a Timer
// whose Stop cancels future recurrences.
func (s *Scheduler) Every(first, period, jitter time.Duration, fn func()) *Timer {
	handle := &Timer{}
	var tick func()
	tick = func() {
		fn()
		d := period
		if jitter > 0 {
			d += time.Duration(s.rng.Int63n(int64(2*jitter))) - jitter
			if d <= 0 {
				d = period
			}
		}
		handle.ev = s.After(d, tick).ev
	}
	handle.ev = s.After(first, tick).ev
	return handle
}

// Stop halts Run after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in timestamp order until the virtual clock passes
// until, the event queue drains, or Stop is called. It returns the number of
// events executed.
func (s *Scheduler) Run(until time.Time) uint64 {
	start := s.Processed
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		ev := s.events[0]
		if ev.at.After(until) {
			break
		}
		heap.Pop(&s.events)
		if ev.fn == nil { // cancelled
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		s.Processed++
	}
	if s.now.Before(until) {
		s.now = until
	}
	return s.Processed - start
}

// RunFor runs the simulation for a virtual duration from the current time.
func (s *Scheduler) RunFor(d time.Duration) uint64 { return s.Run(s.now.Add(d)) }

// Pending reports the number of queued (possibly cancelled) events.
func (s *Scheduler) Pending() int { return len(s.events) }

// String implements fmt.Stringer for debug output.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now=%s pending=%d processed=%d}",
		s.now.Format(time.RFC3339), len(s.events), s.Processed)
}
