// Alloc-count regression guards for the scheduler hot path. They run as
// plain tests (not just -bench) so CI catches a reintroduced per-event
// allocation. Race instrumentation changes allocation counts, so the file is
// excluded from -race runs.
//
//go:build !race

package sim

import (
	"testing"
	"time"
)

type nopRunner struct{ fired int }

func (r *nopRunner) Fire() { r.fired++ }

// AtTagged returns a cancellable Timer, which is the one unavoidable
// allocation on that path; the event itself must come from the pool.
func TestAtTaggedDispatchAllocs(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	// Warm the per-source stats, the event free list, and heap capacity.
	s.AtTagged("bench", s.Now().Add(time.Microsecond), fn)
	s.RunFor(time.Millisecond)

	avg := testing.AllocsPerRun(200, func() {
		s.AtTagged("bench", s.Now().Add(time.Microsecond), fn)
		s.RunFor(time.Millisecond)
	})
	if avg > 1 {
		t.Fatalf("AtTagged+dispatch = %.2f allocs/op, want ≤1 (the Timer handle)", avg)
	}
}

// The Runner path exists so hot paths can schedule with zero allocations:
// no closure, no Timer, pooled event.
func TestAtRunnerDispatchAllocs(t *testing.T) {
	s := NewScheduler(1)
	r := &nopRunner{}
	s.AtRunner("bench", s.Now().Add(time.Microsecond), r)
	s.RunFor(time.Millisecond)

	avg := testing.AllocsPerRun(200, func() {
		s.AtRunner("bench", s.Now().Add(time.Microsecond), r)
		s.RunFor(time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("AtRunner+dispatch = %.2f allocs/op, want 0", avg)
	}
	if r.fired == 0 {
		t.Fatal("runner never fired")
	}
}
