// Package vuln implements the Nessus-like vulnerability scanner of the
// study (§3.1, §5.2): banner collection, version-based CVE matching, TLS
// certificate analysis (small keys → CVE-2016-2183 birthday attacks, long
// validity, self-signed), DNS version disclosure and cache snooping, ONVIF
// snapshot and backup-file exposure checks, telnet detection, deprecated
// UPnP stacks, and the TPLINK-SHP unauthenticated-control probe.
package vuln

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/httpx"
	"iotlan/internal/ssdp"
	"iotlan/internal/stack"
	"iotlan/internal/tlsx"
	"iotlan/internal/tplink"
)

// Severity ranks findings Nessus-style.
type Severity int

// Severities.
const (
	Info Severity = iota
	Low
	Medium
	High
	Critical
)

// String renders the severity.
func (s Severity) String() string {
	return [...]string{"info", "low", "medium", "high", "critical"}[s]
}

// Finding is one scanner observation.
type Finding struct {
	Target   netip.Addr
	Port     uint16
	Severity Severity
	// ID matches the catalog ground truth ("CVE-2016-2183", …).
	ID       string
	Title    string
	Evidence string
}

// Scanner audits targets from an auditor host on the LAN.
type Scanner struct {
	Host *stack.Host
	// TLSCandidates are extra ports to try TLS handshakes on beyond the
	// well-known ones.
	TLSCandidates []uint16
}

// tlsPorts are ports the scanner attempts TLS handshakes on when open.
var tlsPorts = map[uint16]bool{
	443: true, 7000: true, 8009: true, 8443: true,
	9543: true, 10001: true, 49152: true, 49153: true, 55443: true,
}

// Audit runs every check against a target with the given open ports and
// invokes done with severity-sorted findings once probes settle.
func (s *Scanner) Audit(target netip.Addr, openTCP, openUDP []uint16, done func([]Finding)) {
	var findings []Finding
	adds := func(f Finding) {
		f.Target = target
		findings = append(findings, f)
	}

	for _, port := range openTCP {
		port := port
		switch {
		case tlsPorts[port]:
			s.checkTLS(target, port, adds)
		case port == 23 || port == 2323:
			s.checkTelnet(target, port, adds)
		case port == 9999:
			s.checkTPLink(target, adds)
		default:
			s.checkHTTP(target, port, adds)
		}
	}
	for _, port := range openUDP {
		if port == 53 {
			s.checkDNS(target, adds)
		}
	}
	s.checkUPnP(target, adds)

	s.Host.Sched.After(30*time.Second, func() {
		sort.SliceStable(findings, func(i, j int) bool {
			if findings[i].Severity != findings[j].Severity {
				return findings[i].Severity > findings[j].Severity
			}
			return findings[i].ID < findings[j].ID
		})
		done(findings)
	})
}

// checkHTTP grabs banners and probes the exposure paths of §5.2.
func (s *Scanner) checkHTTP(target netip.Addr, port uint16, add func(Finding)) {
	httpx.Get(s.Host, target, port, "/", nil, func(r *httpx.Response) {
		if r == nil {
			return
		}
		banner := r.Header("server")
		if banner != "" {
			add(Finding{Port: port, Severity: Info, ID: "http-banner",
				Title: "HTTP server banner identifies software version", Evidence: banner})
		}
		joined := banner + " " + string(r.Body)
		if strings.Contains(joined, "jquery/1.2") || strings.Contains(joined, "jquery-1.2") {
			add(Finding{Port: port, Severity: High, ID: "CVE-2020-11022",
				Title: "jQuery 1.2 with multiple XSS vulnerabilities", Evidence: banner})
		}
	})
	httpx.Get(s.Host, target, port, "/backup.cgi", nil, func(r *httpx.Response) {
		if r != nil && r.Status == 200 && strings.Contains(string(r.Body), "config-backup") {
			add(Finding{Port: port, Severity: High, ID: "http-backup-exposure",
				Title:    "backup files retrievable without authentication",
				Evidence: firstLine(r.Body)})
		}
	})
	httpx.Get(s.Host, target, port, "/onvif/snapshot", nil, func(r *httpx.Response) {
		if r != nil && r.Status == 200 && len(r.Body) > 2 && r.Body[0] == 0xff && r.Body[1] == 0xd8 {
			add(Finding{Port: port, Severity: High, ID: "onvif-unauth-snapshot",
				Title:    "camera snapshot retrievable via unauthenticated ONVIF request",
				Evidence: fmt.Sprintf("%d-byte JPEG", len(r.Body))})
		}
	})
	httpx.Get(s.Host, target, port, "/cgi-bin/users.cgi", nil, func(r *httpx.Response) {
		if r != nil && r.Status == 200 && len(r.Body) > 0 {
			add(Finding{Port: port, Severity: Medium, ID: "user-account-listing",
				Title: "user accounts listed without authentication", Evidence: firstLine(r.Body)})
		}
	})
	httpx.Get(s.Host, target, port, "/cgi-bin/recording.cgi", nil, func(r *httpx.Response) {
		if r != nil && r.Status == 200 && len(r.Body) > 0 {
			add(Finding{Port: port, Severity: Medium, ID: "recording-path-disclosure",
				Title: "camera recording directory disclosed", Evidence: firstLine(r.Body)})
		}
	})
}

func (s *Scanner) checkTLS(target netip.Addr, port uint16, add func(Finding)) {
	conn := tlsx.Dial(s.Host, target, port, tlsx.Config{Version: tlsx.VersionTLS12}, "")
	conn.OnEstablished = func(c *tlsx.Conn) {
		cert := c.PeerCert
		version := tlsx.VersionName(c.Config.Version)
		add(Finding{Port: port, Severity: Info, ID: "tls-service",
			Title: "TLS service detected", Evidence: version})
		if cert.IssuerCN == "" {
			return // 1.3 hides the certificate from the handshake
		}
		if cert.KeyBits > 0 && cert.KeyBits < 128 {
			add(Finding{Port: port, Severity: High, ID: "CVE-2016-2183",
				Title:    "small TLS key enables birthday attacks on long sessions",
				Evidence: fmt.Sprintf("%d-bit key", cert.KeyBits)})
		}
		if y := cert.ValidityYears(); y >= 10 {
			add(Finding{Port: port, Severity: Low, ID: "tls-long-validity",
				Title: "certificate valid for a decade or more",
				Evidence: fmt.Sprintf("%.0f years (%s → %s)", y,
					cert.NotBefore.Format("2006-01"), cert.NotAfter.Format("2006-01"))})
		}
		if cert.SelfSigned {
			add(Finding{Port: port, Severity: Info, ID: "tls-self-signed",
				Title: "self-signed certificate", Evidence: "issuer=" + cert.IssuerCN})
		}
		c.Close()
	}
}

func (s *Scanner) checkTelnet(target netip.Addr, port uint16, add func(Finding)) {
	conn := s.Host.DialTCP(target, port)
	conn.OnData = func(c *stack.TCPConn, data []byte) {
		if len(data) > 0 && data[0] == 0xff {
			add(Finding{Port: port, Severity: Medium, ID: "telnet-open",
				Title:    "telnet service with cleartext authentication",
				Evidence: bannerText(data)})
		}
		c.Close()
	}
}

func (s *Scanner) checkTPLink(target netip.Addr, add func(Finding)) {
	// Discovery first: the plaintext sysinfo leak.
	sock := s.Host.OpenUDPEphemeral(nil)
	sock.OnDatagram = func(dg stack.Datagram) {
		info, err := tplink.ParseSysinfoResponse(tplink.Deobfuscate(dg.Payload))
		if err != nil || dg.Src != target {
			return
		}
		if info.Latitude != 0 || info.Longitude != 0 {
			add(Finding{Port: 9999, Severity: High, ID: "tplink-geolocation-leak",
				Title:    "device discloses home geolocation in plaintext",
				Evidence: fmt.Sprintf("lat=%.6f lon=%.6f", info.Latitude, info.Longitude)})
		}
	}
	sock.SendTo(target, tplink.Port, tplink.Obfuscate([]byte(tplink.QuerySysinfo)))
	// Then the unauthenticated control probe.
	tplink.Control(s.Host, target, true, func(ok bool) {
		if ok {
			add(Finding{Port: 9999, Severity: Critical, ID: "tplink-shp-unauth",
				Title:    "relay switched without any authentication",
				Evidence: "set_relay_state accepted"})
		}
	})
}

func (s *Scanner) checkDNS(target netip.Addr, add func(Finding)) {
	sock := s.Host.OpenUDPEphemeral(nil)
	sock.OnDatagram = func(dg stack.Datagram) {
		m, err := dnsmsg.Unmarshal(dg.Payload)
		if err != nil || !m.Response || len(m.Answers) == 0 {
			return
		}
		q := ""
		if len(m.Questions) > 0 {
			q = strings.ToLower(m.Questions[0].Name)
		}
		switch {
		case q == "version.bind":
			sw := strings.Join(m.Answers[0].TXT, " ")
			add(Finding{Port: 53, Severity: Info, ID: "dns-version-disclosure",
				Title: "DNS server discloses its software version", Evidence: sw})
			if strings.Contains(sw, "SheerDNS 1.0.0") {
				add(Finding{Port: 53, Severity: High, ID: "SheerDNS-1.0.0",
					Title: "SheerDNS < 1.0.1 multiple vulnerabilities", Evidence: sw})
			}
		case q == "hostname.bind":
			add(Finding{Port: 53, Severity: Low, ID: "dns-hostname-disclosure",
				Title:    "DNS server reveals host name and private IP",
				Evidence: strings.Join(m.Answers[0].TXT, " ")})
		default:
			add(Finding{Port: 53, Severity: Medium, ID: "dns-cache-snooping",
				Title:    "cache snooping reveals recently resolved domains",
				Evidence: q})
		}
	}
	query := func(name string, qtype uint16) {
		m := &dnsmsg.Message{Questions: []dnsmsg.Question{{Name: name, Type: qtype, Class: dnsmsg.ClassIN}}}
		sock.SendTo(target, 53, m.Marshal())
	}
	query("version.bind", dnsmsg.TypeTXT)
	query("hostname.bind", dnsmsg.TypeTXT)
	query("time.apple.com", dnsmsg.TypeA) // snooping probe for a common name
}

func (s *Scanner) checkUPnP(target netip.Addr, add func(Finding)) {
	ssdp.Search(s.Host, ssdp.TargetAll, func(m *ssdp.Message, from netip.Addr) {
		if from != target {
			return
		}
		server := m.Header("SERVER")
		if strings.Contains(server, "UPnP/1.0") {
			add(Finding{Port: 1900, Severity: Medium, ID: "upnp-1.0",
				Title: "deprecated UPnP 1.0 stack with known exploits", Evidence: server})
		}
		if usn := m.USN(); usn != "" {
			add(Finding{Port: 1900, Severity: Info, ID: "ssdp-usn-exposure",
				Title: "SSDP exposes stable device UUID", Evidence: usn})
		}
	})
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 80 {
		s = s[:80]
	}
	return s
}

func bannerText(data []byte) string {
	var sb strings.Builder
	for _, b := range data {
		if b >= 0x20 && b < 0x7f {
			sb.WriteByte(b)
		}
	}
	s := strings.TrimSpace(sb.String())
	if len(s) > 60 {
		s = s[:60]
	}
	return s
}
