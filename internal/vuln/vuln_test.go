package vuln

import (
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/testbed"
)

func auditDevice(t *testing.T, name string) []Finding {
	t.Helper()
	var profiles []*device.Profile
	for _, p := range device.Catalog() {
		if p.Name == name {
			profiles = append(profiles, p)
		}
	}
	if len(profiles) != 1 {
		t.Fatalf("profile %q not found", name)
	}
	lab := testbed.NewWith(1, profiles)
	lab.Start()
	lab.RunIdle(2 * time.Minute)
	target := lab.Devices[0]

	auditor := lab.AddHost(251, [6]byte{0x02, 0x51, 0, 0, 0, 1})
	sc := &Scanner{Host: auditor}
	var got []Finding
	sc.Audit(target.IP(), target.Host.TCPPorts(), target.Host.UDPPorts(), func(fs []Finding) { got = fs })
	lab.Sched.RunFor(2 * time.Minute)
	if got == nil {
		t.Fatal("audit never completed")
	}
	return got
}

func ids(fs []Finding) map[string]Finding {
	m := map[string]Finding{}
	for _, f := range fs {
		if _, ok := m[f.ID]; !ok {
			m[f.ID] = f
		}
	}
	return m
}

func TestMicrosevenFindings(t *testing.T) {
	got := ids(auditDevice(t, "microseven-cam"))
	for _, want := range []string{"CVE-2020-11022", "onvif-unauth-snapshot", "user-account-listing", "recording-path-disclosure", "http-banner"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing finding %s (got %v)", want, keys(got))
		}
	}
	if got["CVE-2020-11022"].Severity != High {
		t.Errorf("jQuery finding severity %v", got["CVE-2020-11022"].Severity)
	}
}

func TestLefunBackupExposure(t *testing.T) {
	got := ids(auditDevice(t, "lefun-cam"))
	f, ok := got["http-backup-exposure"]
	if !ok {
		t.Fatalf("missing backup exposure (got %v)", keys(got))
	}
	if f.Severity != High || f.Port != 80 {
		t.Fatalf("finding: %+v", f)
	}
}

func TestGoogleWeakTLSKey(t *testing.T) {
	got := ids(auditDevice(t, "google-3")) // Nest Hub
	f, ok := got["CVE-2016-2183"]
	if !ok {
		t.Fatalf("missing small-key finding (got %v)", keys(got))
	}
	if f.Port != 8009 || f.Severity != High {
		t.Fatalf("finding: %+v", f)
	}
	if _, ok := got["tls-long-validity"]; !ok {
		t.Error("missing 20-year-certificate finding")
	}
}

func TestHomePodDNSFindings(t *testing.T) {
	got := ids(auditDevice(t, "homepod-1"))
	for _, want := range []string{"SheerDNS-1.0.0", "dns-cache-snooping", "dns-version-disclosure", "dns-hostname-disclosure"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing %s (got %v)", want, keys(got))
		}
	}
}

func TestAppleTLS13HidesCert(t *testing.T) {
	got := auditDevice(t, "apple-tv")
	for _, f := range got {
		if f.ID == "CVE-2016-2183" || f.ID == "tls-long-validity" || f.ID == "tls-self-signed" {
			t.Errorf("cert finding %s should be impossible under TLS 1.3", f.ID)
		}
	}
	m := ids(got)
	if f, ok := m["tls-service"]; !ok || f.Evidence != "TLSv1.3" {
		t.Errorf("TLS 1.3 service not detected: %+v", m["tls-service"])
	}
}

func TestTPLinkCriticalControl(t *testing.T) {
	got := ids(auditDevice(t, "tplink-plug"))
	f, ok := got["tplink-shp-unauth"]
	if !ok {
		t.Fatalf("missing unauthenticated control (got %v)", keys(got))
	}
	if f.Severity != Critical {
		t.Fatalf("severity %v", f.Severity)
	}
	geo, ok := got["tplink-geolocation-leak"]
	if !ok {
		t.Fatal("missing geolocation leak")
	}
	if geo.Evidence == "" {
		t.Fatal("geolocation evidence empty")
	}
}

func TestTelnetCamera(t *testing.T) {
	got := ids(auditDevice(t, "icsee-cam"))
	f, ok := got["telnet-open"]
	if !ok {
		t.Fatalf("missing telnet finding (got %v)", keys(got))
	}
	if f.Port != 23 {
		t.Fatalf("telnet port %d", f.Port)
	}
}

func TestUPnPDeprecatedStack(t *testing.T) {
	got := ids(auditDevice(t, "hue-hub"))
	if _, ok := got["upnp-1.0"]; !ok {
		t.Errorf("missing deprecated UPnP finding (got %v)", keys(got))
	}
	if _, ok := got["ssdp-usn-exposure"]; !ok {
		t.Errorf("missing USN exposure finding")
	}
}

func TestFindingsMatchCatalogGroundTruth(t *testing.T) {
	// Every catalog vulnerability on an auditable channel must be found on
	// a representative device per family.
	cases := map[string]string{
		"microseven-cam": "CVE-2020-11022",
		"google-3":       "CVE-2016-2183",
		"homepod-1":      "SheerDNS-1.0.0",
		"tplink-plug":    "tplink-shp-unauth",
	}
	for dev, id := range cases {
		got := ids(auditDevice(t, dev))
		if _, ok := got[id]; !ok {
			t.Errorf("%s: ground truth %s not detected", dev, id)
		}
	}
}

func TestSeveritySorting(t *testing.T) {
	got := auditDevice(t, "tplink-plug")
	for i := 1; i < len(got); i++ {
		if got[i].Severity > got[i-1].Severity {
			t.Fatalf("findings not sorted by severity: %v then %v", got[i-1].Severity, got[i].Severity)
		}
	}
	if Critical.String() != "critical" || Info.String() != "info" {
		t.Fatal("severity strings")
	}
}

func keys(m map[string]Finding) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
