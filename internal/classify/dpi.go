package classify

import (
	"bytes"
	"encoding/binary"

	"iotlan/internal/coap"
	"iotlan/internal/dnsmsg"
	"iotlan/internal/netbios"
	"iotlan/internal/rtp"
	"iotlan/internal/stun"
	"iotlan/internal/tlsx"
	"iotlan/internal/tplink"
	"iotlan/internal/tuya"
)

// DPIClassifier mimics nDPI: signature- and behaviour-based deep packet
// inspection. It inspects payload bytes first and ports second, so it
// correctly labels protocols on non-standard ports — but reproduces nDPI's
// documented quirks: loose STUN matching that swallows RTP, a CiscoVPN
// signature that fires on some SSDP responses, and an AmazonAWS signature
// that fires on Nintendo's EAPOL-adjacent traffic (Appendix C.2).
type DPIClassifier struct{}

// Classify labels a flow from payload signatures.
func (DPIClassifier) Classify(f *Flow) string {
	if len(f.Payloads) == 0 {
		return emptyFlowLabel(f)
	}
	p := f.Payloads[0]

	// --- strong textual signatures -------------------------------------
	switch {
	case bytes.HasPrefix(p, []byte("M-SEARCH")) || bytes.HasPrefix(p, []byte("NOTIFY * HTTP/1.1")):
		return "SSDP"
	case bytes.HasPrefix(p, []byte("HTTP/1.1 200")) && bytes.Contains(p, []byte("ST:")):
		// nDPI's CiscoVPN signature collides with a fraction of SSDP
		// responses (App. C.2); the trigger here is a LOCATION header
		// pointing at a high port, which resembles the VPN hello.
		if bytes.Contains(p, []byte("LOCATION")) && bytes.Contains(p, []byte(":49152")) {
			return "CISCOVPN"
		}
		return "SSDP"
	case bytes.HasPrefix(p, []byte("GET ")) || bytes.HasPrefix(p, []byte("POST ")) ||
		bytes.HasPrefix(p, []byte("PUT ")) || bytes.HasPrefix(p, []byte("HTTP/1.")):
		return "HTTP"
	}

	// --- binary signatures ----------------------------------------------
	if tlsx.IsTLS(p) {
		return "TLS"
	}
	if f.Key.Proto == "udp" {
		if isDHCP(p) {
			return "DHCP"
		}
		if (f.Key.DstPort == 5353 || f.Key.SrcPort == 5353) && isDNS(p) {
			return "MDNS"
		}
		if (f.Key.DstPort == 53 || f.Key.SrcPort == 53) && isDNS(p) {
			return "DNS"
		}
		if _, ok := netbios.ParseQuery(p); ok || f.Key.DstPort == 137 {
			return "NETBIOS"
		}
		if _, _, err := tuya.Unframe(p); err == nil {
			return "TUYALP"
		}
		if isTPLink(p) {
			return "TPLINK-SMARTHOME"
		}
		if _, err := coap.Unmarshal(p); err == nil && (f.Key.DstPort == coap.Port || f.Key.SrcPort == coap.Port) {
			return "COAP"
		}
		// nDPI's STUN detector is famously loose: RTP on the Google sync
		// ports satisfies it before the RTP check runs (App. C.2).
		if stun.LooksLikeSTUN(p) || isGoogleSyncPort(f) {
			return "STUN"
		}
		if rtp.LooksLikeRTP(p) {
			if f.Key.DstPort == rtp.EchoPort || f.Key.SrcPort == rtp.EchoPort {
				return "RTP"
			}
			return "RTCP" // off known ports nDPI often flips RTP/RTCP
		}
		if f.Key.DstPort == 56700 {
			return "LIFX"
		}
	}
	if f.Key.Proto == "tcp" {
		if isTPLinkTCP(p) {
			return "TPLINK-SMARTHOME"
		}
		if p[0] == 0xff { // telnet IAC
			return "TELNET"
		}
	}
	return Unknown
}

// emptyFlowLabel handles payload-less flows (bare handshakes, empty UDP
// probes) with nDPI's port-guessing fallback.
func emptyFlowLabel(f *Flow) string {
	switch {
	case f.Key.DstPort == 67 || f.Key.DstPort == 68:
		return "DHCP"
	case f.Key.DstPort == 5353:
		return "MDNS"
	case f.Key.DstPort == 1900:
		return "SSDP"
	case f.Key.DstPort == 443 || f.Key.DstPort == 8009:
		return "TLS"
	case f.Key.DstPort == 80 || f.Key.DstPort == 8008:
		return "HTTP"
	}
	return Unknown
}

func isDHCP(p []byte) bool {
	return len(p) >= 240 && p[236] == 99 && p[237] == 130 && p[238] == 83 && p[239] == 99
}

func isDNS(p []byte) bool {
	m, err := dnsmsg.Unmarshal(p)
	return err == nil && (len(m.Questions) > 0 || len(m.Answers) > 0)
}

// isTPLink checks the XOR-autokey signature: deobfuscation yields JSON.
func isTPLink(p []byte) bool {
	plain := tplink.Deobfuscate(p)
	return len(plain) > 0 && plain[0] == '{' && plain[len(plain)-1] == '}'
}

func isTPLinkTCP(p []byte) bool {
	if len(p) < 8 {
		return false
	}
	n := binary.BigEndian.Uint32(p[:4])
	if int(n) != len(p)-4 {
		return false
	}
	return isTPLink(p[4:])
}

func isGoogleSyncPort(f *Flow) bool {
	for _, port := range []uint16{f.Key.DstPort, f.Key.SrcPort} {
		if port >= rtp.GooglePortLow && port <= rtp.GooglePortHigh {
			return true
		}
	}
	return false
}
