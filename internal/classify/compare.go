package classify

import (
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/layers"
	"iotlan/internal/rtp"
)

// ClassifyPacketSpec labels a non-flow (layer 2/3) packet the tshark way:
// header-driven, essentially always right at these layers.
func ClassifyPacketSpec(p *layers.Packet) string {
	return p.L3Name()
}

// ClassifyPacketDPI labels a non-flow packet the nDPI way. Its Amazon
// traffic signature fires on Nintendo's EAPOL frames (Appendix C.2).
func ClassifyPacketDPI(p *layers.Packet) string {
	if p.HasEAPOL {
		if p.Eth.Src.OUI() == [3]byte{0x98, 0xb6, 0xe9} { // Nintendo OUI
			return "AMAZONAWS"
		}
		return "EAPOL"
	}
	return p.L3Name()
}

// Comparison is the Appendix C.2 cross-validation result.
type Comparison struct {
	// Matrix counts (specLabel, dpiLabel) pairs — Figure 3's heatmap.
	Matrix map[[2]string]int
	// Total is the number of classified units (flows + non-flow packets).
	Total int
	// Agree / Disagree / BothUnknown partition Total.
	Agree, Disagree, BothUnknown int
	// SpecLabeled / DPILabeled count units each tool labeled.
	SpecLabeled, DPILabeled int
}

// Compare runs both classifiers over flows and non-flow packets and builds
// the agreement matrix.
func Compare(flows []*Flow, nonFlow []*layers.Packet) *Comparison {
	c := &Comparison{Matrix: map[[2]string]int{}}
	spec, dpi := SpecClassifier{}, DPIClassifier{}
	record := func(s, d string) {
		c.Matrix[[2]string{s, d}]++
		c.Total++
		su, du := s == Unknown || s == "UDP-DATA", d == Unknown
		switch {
		case su && du:
			c.BothUnknown++
		case s == d:
			c.Agree++
		default:
			c.Disagree++
		}
		if !su {
			c.SpecLabeled++
		}
		if !du {
			c.DPILabeled++
		}
	}
	for _, f := range flows {
		record(spec.Classify(f), dpi.Classify(f))
	}
	for _, p := range nonFlow {
		record(ClassifyPacketSpec(p), ClassifyPacketDPI(p))
	}
	return c
}

// Fractions returns (specLabeled, dpiLabeled, disagree, neither) as
// fractions of Total — the Appendix C.2 headline numbers.
func (c *Comparison) Fractions() (spec, dpi, disagree, neither float64) {
	if c.Total == 0 {
		return
	}
	t := float64(c.Total)
	return float64(c.SpecLabeled) / t, float64(c.DPILabeled) / t,
		float64(c.Disagree) / t, float64(c.BothUnknown) / t
}

// Render prints the matrix as an aligned table (the Figure 3 heatmap in
// text form), rows = spec labels, columns = DPI labels.
func (c *Comparison) Render() string {
	rows, cols := map[string]bool{}, map[string]bool{}
	for k := range c.Matrix {
		rows[k[0]] = true
		cols[k[1]] = true
	}
	rl, cl := sortedKeys(rows), sortedKeys(cols)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s", "spec\\dpi")
	for _, col := range cl {
		fmt.Fprintf(&sb, "%12s", truncate(col, 11))
	}
	sb.WriteByte('\n')
	for _, row := range rl {
		fmt.Fprintf(&sb, "%-20s", truncate(row, 19))
		for _, col := range cl {
			fmt.Fprintf(&sb, "%12d", c.Matrix[[2]string{row, col}])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Final is the study's corrected classifier: nDPI output plus the manual
// override rules built from lab ground truth (§3.5).
type Final struct {
	DPI DPIClassifier
}

// Classify applies DPI plus the manual corrections.
func (f Final) Classify(fl *Flow) string {
	label := f.DPI.Classify(fl)
	switch {
	case label == "CISCOVPN":
		return "SSDP" // manual rule: CiscoVPN on the LAN is really SSDP
	case label == "STUN" && isGoogleSyncPort(fl):
		return "RTP" // controlled experiments showed Google sync is RTP
	case label == "STUN" && (fl.Key.DstPort == rtp.EchoPort || fl.Key.SrcPort == rtp.EchoPort):
		return "RTP"
	case label == "RTCP" && rtpPort(fl):
		return "RTP"
	case label == Unknown && fl.Key.DstPort == 56700:
		return "LIFX"
	}
	return label
}

// ClassifyPacket applies the corrected packet-level labels.
func (f Final) ClassifyPacket(p *layers.Packet) string {
	return ClassifyPacketSpec(p) // header-driven is ground truth at L2/L3
}

func rtpPort(f *Flow) bool {
	for _, port := range []uint16{f.Key.DstPort, f.Key.SrcPort} {
		if port == rtp.EchoPort || (port >= rtp.GooglePortLow && port <= rtp.GooglePortHigh) {
			return true
		}
	}
	return false
}
