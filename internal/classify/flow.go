// Package classify reproduces the study's traffic-classification pipeline:
// RFC 6146 flow assembly, a tshark-like header/port classifier
// (SpecClassifier), an nDPI-like payload/heuristic classifier
// (DPIClassifier), the cross-comparison of Appendix C.2 (Figure 3), and the
// final manually-corrected labeller used for Figure 2.
package classify

import (
	"net/netip"
	"sort"
	"time"

	"iotlan/internal/layers"
	"iotlan/internal/pcap"
)

// FlowKey is the RFC 6146 5-tuple.
type FlowKey struct {
	Src     netip.Addr
	SrcPort uint16
	Dst     netip.Addr
	DstPort uint16
	Proto   string // "tcp" or "udp"
}

// Reverse returns the reply-direction key.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, SrcPort: k.DstPort, Dst: k.Src, DstPort: k.SrcPort, Proto: k.Proto}
}

// Flow is a chronologically ordered set of same-5-tuple segments/datagrams.
type Flow struct {
	Key      FlowKey
	First    time.Time
	Last     time.Time
	Packets  int
	Bytes    int
	Payloads [][]byte // first few non-empty payloads, for DPI
	// SrcMAC attributes the flow to a device.
	SrcMAC [6]byte
}

// maxDPIPayloads bounds retained payloads per flow.
const maxDPIPayloads = 4

// Assemble groups records into flows plus the non-flow (no transport layer)
// packet list. Flow order is deterministic (first-seen).
func Assemble(records []pcap.Record) (flows []*Flow, nonFlow []*layers.Packet) {
	index := make(map[FlowKey]*Flow)
	for _, r := range records {
		p := r.Decode()
		proto, sp, dp := p.Transport()
		if proto == "" {
			nonFlow = append(nonFlow, p)
			continue
		}
		key := FlowKey{Src: p.SrcIP(), SrcPort: sp, Dst: p.DstIP(), DstPort: dp, Proto: proto}
		f, ok := index[key]
		if !ok {
			f = &Flow{Key: key, First: r.Time, SrcMAC: p.Eth.Src}
			index[key] = f
			flows = append(flows, f)
		}
		f.Last = r.Time
		f.Packets++
		f.Bytes += len(r.Data)
		if len(p.AppPayload) > 0 && len(f.Payloads) < maxDPIPayloads {
			f.Payloads = append(f.Payloads, p.AppPayload)
		}
	}
	return flows, nonFlow
}

// PairBidirectional returns, for each flow, the index of its reverse flow
// or -1; useful for request/response analyses.
func PairBidirectional(flows []*Flow) []int {
	byKey := make(map[FlowKey]int, len(flows))
	for i, f := range flows {
		byKey[f.Key] = i
	}
	out := make([]int, len(flows))
	for i, f := range flows {
		if j, ok := byKey[f.Key.Reverse()]; ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}

// LabelCount is one (label, flows) pair for report tables.
type LabelCount struct {
	Label string
	Count int
}

// CountLabels tallies labels into a deterministic descending list.
func CountLabels(labels []string) []LabelCount {
	m := map[string]int{}
	for _, l := range labels {
		m[l]++
	}
	out := make([]LabelCount, 0, len(m))
	for l, n := range m {
		out = append(out, LabelCount{l, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	return out
}
