package classify

import (
	"bytes"

	"iotlan/internal/tlsx"
)

// Labels shared by both classifiers. "UNKNOWN" means the tool produced no
// label; the comparison treats it as unlabeled.
const Unknown = "UNKNOWN"

// SpecClassifier mimics tshark: dissection driven by well-known ports and
// header layouts from protocol specifications. It is confident on standard
// ports and brittle off them — exactly the failure mode Appendix C.2
// documents (SSDP answers on ephemeral ports come back as generic UDP data,
// and anything on 9999 is called TP-Link).
type SpecClassifier struct{}

// wellKnownPorts maps port → tshark-style label.
var wellKnownPorts = map[uint16]string{
	53:    "DNS",
	67:    "DHCP",
	68:    "DHCP",
	80:    "HTTP",
	123:   "NTP",
	137:   "NETBIOS",
	443:   "TLS",
	1900:  "SSDP",
	5353:  "MDNS",
	5683:  "COAP",
	6666:  "TUYALP",
	6667:  "TUYALP",
	8008:  "HTTP",
	8009:  "TLS",
	8060:  "HTTP",
	9999:  "TPLINK-SMARTHOME",
	49152: "TLS",
	49153: "HTTP",
	55442: "HTTP",
	55443: "TLS",
	56700: "LIFX",
	8443:  "TLS",
	7000:  "TLS",
	8001:  "HTTP",
	1884:  "HTTP",
	2323:  "TELNET",
	23:    "TELNET",
	320:   "PTP",
	5540:  "MATTER",
	34567: "DVRIP",
	4070:  "SPOTIFY-CONNECT",
	8080:  "HTTP",
	9543:  "TLS",
	10001: "TLS",
	10002: "STUN", // Google sync ports dissected as STUN (App. C.2)
}

// Classify labels one flow the way tshark's dissector bindings would: by
// the destination port. Server→client flows (well-known source port,
// ephemeral destination) miss the binding and fall through to the brittle
// heuristics — the root of the Appendix C.2 disagreements.
func (SpecClassifier) Classify(f *Flow) string {
	if label, ok := wellKnownPorts[f.Key.DstPort]; ok {
		// Port bindings run a minimal sanity check against the payload,
		// as dissectors do, but fall back to the port label.
		return refineSpec(label, f)
	}
	// Ephemeral↔ephemeral: tshark can still catch self-describing headers.
	if len(f.Payloads) > 0 {
		p := f.Payloads[0]
		switch {
		case tlsx.IsTLS(p):
			return "TLS"
		case bytes.HasPrefix(p, []byte("HTTP/1.1 200")) && bytes.Contains(p, []byte("ST:")):
			// A 200 with an ST header is an SSDP search response, but
			// tshark's UDP dissector off port 1900 labels it bare HTTP.
			return "HTTP"
		case bytes.HasPrefix(p, []byte("GET ")) || bytes.HasPrefix(p, []byte("POST ")) ||
			bytes.HasPrefix(p, []byte("HTTP/1.")):
			return "HTTP"
		}
		// Anything binary on a high port gets tshark's favourite wrong
		// answer for IoT traffic: the TP-Link heuristic dissector, which
		// fires on XOR-looking payloads (App. C.2: 95% of disagreements).
		if f.Key.Proto == "udp" && looksObfuscated(p) {
			return "TPLINK-SMARTHOME"
		}
	}
	if f.Key.Proto == "udp" {
		return "UDP-DATA" // generic transport-layer label
	}
	return Unknown
}

// refineSpec double-checks a port binding against payload shape.
func refineSpec(label string, f *Flow) string {
	if len(f.Payloads) == 0 {
		return label
	}
	p := f.Payloads[0]
	switch label {
	case "HTTP":
		if tlsx.IsTLS(p) {
			return "TLS"
		}
	case "TLS":
		if !tlsx.IsTLS(p) && (bytes.HasPrefix(p, []byte("GET ")) || bytes.HasPrefix(p, []byte("HTTP/1."))) {
			return "HTTP"
		}
	}
	return label
}

// looksObfuscated is a crude entropy-free stand-in for tshark's misfiring
// TP-Link heuristic: no printable prefix, not TLS.
func looksObfuscated(p []byte) bool {
	if len(p) < 4 || tlsx.IsTLS(p) {
		return false
	}
	printable := 0
	limit := len(p)
	if limit > 16 {
		limit = 16
	}
	for _, b := range p[:limit] {
		if b >= 0x20 && b < 0x7f {
			printable++
		}
	}
	return printable < limit/2
}
