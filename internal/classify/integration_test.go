package classify

import (
	"bytes"
	"testing"
	"time"

	"iotlan/internal/pcap"
	"iotlan/internal/testbed"
)

// TestPcapFileRoundTripClassification exercises the full dogfood loop: a
// simulated capture is serialised to the libpcap format, re-read, and the
// re-read records classify identically — the iotlab → iotclassify pipeline.
func TestPcapFileRoundTripClassification(t *testing.T) {
	lab := testbed.New(5)
	lab.Start()
	lab.RunIdle(10 * time.Minute)
	local := pcap.FilterLocal(lab.Capture.All)

	var buf bytes.Buffer
	if err := pcap.WriteFile(&buf, local); err != nil {
		t.Fatal(err)
	}
	reread, err := pcap.ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reread) != len(local) {
		t.Fatalf("re-read %d records, wrote %d", len(reread), len(local))
	}

	labelDist := func(records []pcap.Record) map[string]int {
		flows, nonFlow := Assemble(records)
		final := Final{}
		out := map[string]int{}
		for _, f := range flows {
			out[final.Classify(f)]++
		}
		for _, p := range nonFlow {
			out[final.ClassifyPacket(p)]++
		}
		return out
	}
	orig, again := labelDist(local), labelDist(reread)
	if len(orig) != len(again) {
		t.Fatalf("label sets differ: %v vs %v", orig, again)
	}
	for label, n := range orig {
		if again[label] != n {
			t.Errorf("label %s: %d vs %d after round trip", label, n, again[label])
		}
	}
	// The idle lab must yield a meaningful protocol mix.
	for _, want := range []string{"MDNS", "SSDP", "DHCP", "ARP"} {
		if orig[want] == 0 {
			t.Errorf("idle capture lacks %s", want)
		}
	}
}

// TestClassifierLabelStability pins the corrected classifier's flow-label
// vocabulary: new labels appearing here should be deliberate.
func TestClassifierLabelStability(t *testing.T) {
	lab := testbed.New(5)
	lab.Start()
	lab.RunIdle(15 * time.Minute)
	flows, _ := Assemble(pcap.FilterLocal(lab.Capture.All))
	final := Final{}
	known := map[string]bool{
		"MDNS": true, "SSDP": true, "DHCP": true, "TPLINK-SMARTHOME": true,
		"TUYALP": true, "COAP": true, "LIFX": true, "HTTP": true, "TLS": true,
		"RTP": true, "DNS": true, "NETBIOS": true, "TELNET": true,
		"STUN": true, "RTCP": true, Unknown: true,
	}
	for _, f := range flows {
		if label := final.Classify(f); !known[label] {
			t.Errorf("unexpected label %q for %v", label, f.Key)
		}
	}
}
