package classify

import (
	"net/netip"
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/layers"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/rtp"
	"iotlan/internal/ssdp"
	"iotlan/internal/testbed"
	"iotlan/internal/tplink"
)

func mkRecord(t *testing.T, srcPort, dstPort uint16, dstIP string, payload []byte) pcap.Record {
	t.Helper()
	udp := &layers.UDP{SrcPort: srcPort, DstPort: dstPort}
	src := netip.MustParseAddr("192.168.10.10")
	dst := netip.MustParseAddr(dstIP)
	udp.SetAddrs(src, dst)
	frame, err := layers.Serialize(
		&layers.Ethernet{Src: netx.MAC{2, 0, 0, 0, 0, 10}, Dst: netx.MAC{2, 0, 0, 0, 0, 11}, EtherType: layers.EtherTypeIPv4},
		&layers.IPv4{Protocol: layers.IPProtoUDP, Src: src, Dst: dst},
		udp, layers.RawPayload(payload))
	if err != nil {
		t.Fatal(err)
	}
	return pcap.Record{Time: time.Unix(1668384000, 0), Data: frame}
}

func oneFlow(t *testing.T, rec pcap.Record) *Flow {
	t.Helper()
	flows, _ := Assemble([]pcap.Record{rec})
	if len(flows) != 1 {
		t.Fatalf("assembled %d flows", len(flows))
	}
	return flows[0]
}

func TestAssembleGroupsBy5Tuple(t *testing.T) {
	r1 := mkRecord(t, 40000, 1900, "239.255.255.250", ssdp.MSearch(ssdp.TargetAll, 2))
	r2 := mkRecord(t, 40000, 1900, "239.255.255.250", ssdp.MSearch(ssdp.TargetAll, 2))
	r3 := mkRecord(t, 40001, 1900, "239.255.255.250", ssdp.MSearch(ssdp.TargetAll, 2))
	flows, nonFlow := Assemble([]pcap.Record{r1, r2, r3})
	if len(flows) != 2 {
		t.Fatalf("flows: %d", len(flows))
	}
	if flows[0].Packets != 2 || flows[1].Packets != 1 {
		t.Fatalf("packet counts: %d %d", flows[0].Packets, flows[1].Packets)
	}
	if len(nonFlow) != 0 {
		t.Fatalf("nonFlow: %d", len(nonFlow))
	}
}

func TestAssembleSeparatesNonFlow(t *testing.T) {
	arp, _ := layers.Serialize(
		&layers.Ethernet{Src: netx.MAC{2, 0, 0, 0, 0, 1}, Dst: netx.Broadcast, EtherType: layers.EtherTypeARP},
		&layers.ARP{Op: layers.ARPRequest})
	flows, nonFlow := Assemble([]pcap.Record{{Time: time.Now(), Data: arp}})
	if len(flows) != 0 || len(nonFlow) != 1 {
		t.Fatalf("flows=%d nonFlow=%d", len(flows), len(nonFlow))
	}
}

func TestBothClassifiersAgreeOnStandardTraffic(t *testing.T) {
	spec, dpi := SpecClassifier{}, DPIClassifier{}
	cases := []struct {
		name  string
		rec   pcap.Record
		label string
	}{
		{"ssdp", mkRecord(t, 40000, 1900, "239.255.255.250", ssdp.MSearch(ssdp.TargetAll, 2)), "SSDP"},
		{"tplink", mkRecord(t, 40000, 9999, "255.255.255.255", tplink.Obfuscate([]byte(tplink.QuerySysinfo))), "TPLINK-SMARTHOME"},
		{"http", mkRecord(t, 40000, 80, "192.168.10.9", []byte("GET / HTTP/1.1\r\n\r\n")), "HTTP"},
	}
	for _, c := range cases {
		f := oneFlow(t, c.rec)
		if got := spec.Classify(f); got != c.label {
			t.Errorf("%s: spec = %q, want %q", c.name, got, c.label)
		}
		if got := dpi.Classify(f); got != c.label {
			t.Errorf("%s: dpi = %q, want %q", c.name, got, c.label)
		}
	}
}

func TestSpecMislabelsOffPortSSDP(t *testing.T) {
	// An SSDP 200 OK unicast response lands on an ephemeral port: tshark
	// calls it HTTP, nDPI calls it SSDP — the dominant App. C.2 case.
	ad := ssdp.Advertisement{UUID: "u1", Target: ssdp.TargetBasic, Location: "http://192.168.10.9:80/d.xml", Server: "UPnP/1.0"}
	f := oneFlow(t, mkRecord(t, 1900, 40123, "192.168.10.10", ad.Response(ssdp.TargetBasic)))
	if got := (SpecClassifier{}).Classify(f); got == "SSDP" {
		t.Fatalf("spec unexpectedly correct: %q", got)
	}
	if got := (DPIClassifier{}).Classify(f); got != "SSDP" {
		t.Fatalf("dpi = %q, want SSDP", got)
	}
}

func TestDPIMisclassifiesGoogleRTPAsSTUN(t *testing.T) {
	h := &rtp.Header{PayloadType: 10, Seq: 5, SSRC: 99}
	f := oneFlow(t, mkRecord(t, 10002, 10002, "192.168.10.9", h.Marshal(make([]byte, 40))))
	if got := (DPIClassifier{}).Classify(f); got != "STUN" {
		t.Fatalf("dpi = %q, want STUN (the App. C.2 confusion)", got)
	}
	// The corrected classifier fixes it.
	if got := (Final{}).Classify(f); got != "RTP" {
		t.Fatalf("final = %q, want RTP", got)
	}
}

func TestDPICiscoVPNQuirkCorrected(t *testing.T) {
	ad := ssdp.Advertisement{UUID: "u1", Target: ssdp.TargetBasic, Location: "http://192.168.10.9:49152/d.xml", Server: "UPnP/1.0"}
	f := oneFlow(t, mkRecord(t, 1900, 40123, "192.168.10.10", ad.Response(ssdp.TargetBasic)))
	if got := (DPIClassifier{}).Classify(f); got != "CISCOVPN" {
		t.Fatalf("dpi = %q, want CISCOVPN quirk", got)
	}
	if got := (Final{}).Classify(f); got != "SSDP" {
		t.Fatalf("final = %q, want SSDP", got)
	}
}

func TestNintendoEAPOLQuirk(t *testing.T) {
	frame, _ := layers.Serialize(
		&layers.Ethernet{Src: netx.MAC{0x98, 0xb6, 0xe9, 1, 2, 3}, Dst: netx.MAC{2, 0, 0, 0, 0, 1}, EtherType: layers.EtherTypeEAPOL},
		&layers.EAPOL{Version: 2, PacketType: 3})
	p := layers.Decode(frame)
	if got := ClassifyPacketDPI(p); got != "AMAZONAWS" {
		t.Fatalf("dpi packet label = %q, want AMAZONAWS quirk", got)
	}
	if got := ClassifyPacketSpec(p); got != "EAPOL" {
		t.Fatalf("spec packet label = %q, want EAPOL", got)
	}
}

func TestCompareOnLabTraffic(t *testing.T) {
	lab := testbed.New(3)
	lab.Start()
	lab.RunIdle(30 * time.Minute)
	local := pcap.FilterLocal(lab.Capture.All)
	flows, nonFlow := Assemble(local)
	if len(flows) < 50 {
		t.Fatalf("only %d flows from lab traffic", len(flows))
	}
	c := Compare(flows, nonFlow)
	spec, dpi, disagree, neither := c.Fractions()
	// Appendix C.2 shape: both label ~3/4 of traffic, a mid-teens share
	// disagrees, and a small share is unlabeled by both.
	if spec < 0.5 || dpi < 0.5 {
		t.Errorf("labeled fractions too low: spec=%.2f dpi=%.2f", spec, dpi)
	}
	if disagree <= 0 || disagree > 0.45 {
		t.Errorf("disagreement fraction %.2f out of expected band", disagree)
	}
	if neither < 0 || neither > 0.30 {
		t.Errorf("both-unknown fraction %.2f out of expected band", neither)
	}
	if c.Render() == "" {
		t.Error("empty matrix render")
	}
}

func TestCountLabelsDeterministic(t *testing.T) {
	got := CountLabels([]string{"B", "A", "A", "C", "B", "A"})
	if got[0].Label != "A" || got[0].Count != 3 {
		t.Fatalf("first: %+v", got[0])
	}
	if got[1].Label != "B" || got[2].Label != "C" {
		t.Fatalf("tie/rank order: %+v", got)
	}
}

func TestPairBidirectional(t *testing.T) {
	req := mkRecord(t, 1000, 2000, "192.168.10.11", []byte("x"))
	// Build the reverse frame by hand (swap addresses and ports).
	udp := &layers.UDP{SrcPort: 2000, DstPort: 1000}
	src, dst := netip.MustParseAddr("192.168.10.11"), netip.MustParseAddr("192.168.10.10")
	udp.SetAddrs(src, dst)
	rev, _ := layers.Serialize(
		&layers.Ethernet{Src: netx.MAC{2, 0, 0, 0, 0, 11}, Dst: netx.MAC{2, 0, 0, 0, 0, 10}, EtherType: layers.EtherTypeIPv4},
		&layers.IPv4{Protocol: layers.IPProtoUDP, Src: src, Dst: dst},
		udp, layers.RawPayload("y"))
	flows, _ := Assemble([]pcap.Record{req, {Time: time.Now(), Data: rev}})
	pairs := PairBidirectional(flows)
	if len(pairs) != 2 || pairs[0] != 1 || pairs[1] != 0 {
		t.Fatalf("pairs: %v", pairs)
	}
}

var _ = device.Catalog // keep the import available for future subset tests
