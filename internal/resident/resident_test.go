package resident

import (
	"strings"
	"testing"
	"time"
)

func testWorld() World {
	return World{
		Devices: []string{
			"echo-dot", "google-home", "hue-hub", "tplink-plug", "wyze-cam",
			"ring-doorbell", "smartthings-hub", "roku-tv", "sonos-one",
			"nest-thermostat", "wemo-switch", "arlo-base",
		},
		InteractionKinds: 4,
	}
}

func TestCompileDeterministic(t *testing.T) {
	plan := Household(4, 7)
	for _, seed := range []int64{1, 42, 1337} {
		a, err := Compile(seed, plan, testWorld())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Compile(seed, plan, testWorld())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("seed %d: same-seed schedules differ", seed)
		}
	}
	// Different seeds must differ (jitter and drift draws move).
	a, _ := Compile(1, plan, testWorld())
	b, _ := Compile(2, plan, testWorld())
	if a.Render() == b.Render() {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestCompileUnknownPersona(t *testing.T) {
	_, err := Compile(1, Plan{Personas: []string{"astronaut"}, Days: 1}, testWorld())
	if err == nil || !strings.Contains(err.Error(), "astronaut") {
		t.Fatalf("want unknown-persona error naming it, got %v", err)
	}
}

func TestCompileDisabled(t *testing.T) {
	s, err := Compile(1, Plan{}, testWorld())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 {
		t.Fatalf("disabled plan compiled %d events", len(s.Events))
	}
	if s.Plan.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
}

func TestScheduleShape(t *testing.T) {
	plan := Household(4, 7)
	s, err := Compile(42, plan, testWorld())
	if err != nil {
		t.Fatal(err)
	}
	counts := s.Counts()
	for _, k := range []EventKind{EventInteract, EventApp, EventSensor} {
		if counts[k] == 0 {
			t.Errorf("no %s events in a 4-resident week", k)
		}
	}
	// Default drift over one week: ~1 retire, ~1 add, ~2 firmware.
	if counts[EventRetire] == 0 || counts[EventAdd] == 0 || counts[EventFirmware] == 0 {
		t.Errorf("drift events missing: %v", counts)
	}
	// Events sorted and inside the run.
	last := time.Duration(-1)
	for _, ev := range s.Events {
		if ev.At < last {
			t.Fatal("events not sorted by time")
		}
		last = ev.At
		if ev.At < 0 || ev.At >= plan.Duration() {
			t.Fatalf("event at %v outside run of %v", ev.At, plan.Duration())
		}
	}
}

func TestDriftTargetsDisjoint(t *testing.T) {
	plan := Household(4, 28) // four weeks: several of each drift kind
	s, err := Compile(7, plan, testWorld())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, group := range []struct {
		label string
		names []string
	}{{"retired", s.Retired()}, {"added", s.Added()}, {"updated", s.Updated()}} {
		for _, n := range group.names {
			if prev, dup := seen[n]; dup {
				t.Errorf("device %s in both %s and %s", n, prev, group.label)
			}
			seen[n] = group.label
		}
	}
	if len(s.Retired()) == 0 || len(s.Added()) == 0 || len(s.Updated()) == 0 {
		t.Fatalf("expected all drift groups populated over 4 weeks: retired=%d added=%d updated=%d",
			len(s.Retired()), len(s.Added()), len(s.Updated()))
	}
	for _, n := range s.Added() {
		if !s.IsAdded(n) {
			t.Errorf("IsAdded(%s) = false for an added device", n)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	// The whole point: activity concentrates in waking hours. Compare the
	// night trough (1am-4am) to the evening peak window (18-21h).
	s, err := Compile(42, Household(4, 7), testWorld())
	if err != nil {
		t.Fatal(err)
	}
	hist := s.HourHistogram()
	night := hist[1] + hist[2] + hist[3]
	evening := hist[18] + hist[19] + hist[20]
	if evening <= night*2 {
		t.Fatalf("no diurnal structure: evening=%d night=%d hist=%v", evening, night, hist)
	}
}

func TestWeekendShape(t *testing.T) {
	// On weekends the office worker stays home, so a weekend day carries
	// daytime (10h-15h) interactions a weekday lacks for a pure
	// office-worker household.
	plan := Plan{Personas: []string{"office-worker", "office-worker"}, Days: 7}
	s, err := Compile(9, plan, testWorld())
	if err != nil {
		t.Fatal(err)
	}
	daytime := func(d int) int {
		lo, hi := time.Duration(d)*day+10*time.Hour, time.Duration(d)*day+15*time.Hour
		n := 0
		for _, ev := range s.Events {
			if ev.Kind == EventInteract && ev.At >= lo && ev.At < hi {
				n++
			}
		}
		return n
	}
	weekday, weekend := daytime(1), daytime(5) // Tuesday vs Saturday
	if weekend <= weekday {
		t.Fatalf("weekend daytime interactions (%d) not above weekday (%d)", weekend, weekday)
	}
}

func TestTypicalHours(t *testing.T) {
	a, b := TypicalHours(1), TypicalHours(1)
	if a != b {
		t.Fatal("TypicalHours not deterministic")
	}
	total := 0
	for _, v := range a {
		total += v
	}
	if total == 0 {
		t.Fatal("TypicalHours histogram empty")
	}
}

func TestPlanString(t *testing.T) {
	if got := (Plan{}).String(); got != "off" {
		t.Fatalf("zero plan String() = %q", got)
	}
	p := Household(3, 5)
	for _, want := range []string{"residents=3", "days=5", "drift"} {
		if !strings.Contains(p.String(), want) {
			t.Fatalf("plan string %q missing %q", p.String(), want)
		}
	}
}
