// Package resident is the persona-driven behaviour layer for the simulated
// smart home. The paper's testbed (§3.1) drives its 93 devices with fixed
// round-robin interaction scripts; real households do not behave that way —
// traffic follows the people in the room. This package compiles personas
// (an office worker who leaves at 8:15, a night-shift nurse asleep until
// 3 pm, a retiree home all day, a family whose kids storm in at 3:30) into
// executable household schedules: timed device interactions, companion-app
// foreground sessions, and occupancy-correlated sensor chatter, plus
// longitudinal drift — devices added or retired mid-run and firmware-update
// events that flip protocol behaviour flags — in the spirit of "Simulating
// the Resident" and the diurnal/longitudinal structure "Characterizing
// Smart Home IoT Traffic in the Wild" documents.
//
// Determinism contract: a Schedule is a pure function of (seed, Plan,
// World). Every random decision is drawn at compile time from a dedicated
// stream derived via engine.SubSeed — never from the base simulation's
// random sequence — so the same seed produces a byte-identical schedule
// (Render), capture, and artifact set at any analysis worker count,
// mirroring the chaos design. The execution layer (internal/testbed)
// schedules the compiled events on the virtual clock via sim timers; this
// package deliberately knows nothing about the testbed, so there is no
// import cycle and the compiler stays trivially testable.
package resident

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"iotlan/internal/engine"
)

// rngStream is the engine.SubSeed stream tag for the resident random
// stream — distinct from chaos's 0xc4a05, so the two layers compose without
// perturbing each other.
const rngStream = 0x4e51d

// day is one simulated day.
const day = 24 * time.Hour

// Persona is one household member's daily routine. Anchor times are offsets
// into a nominal day and may exceed 24h for routines that cross midnight
// (the night-shift worker returns at 31h = 7 am the next day).
type Persona struct {
	// Name is the CLI/schedule label ("office-worker").
	Name string
	// Wake and Sleep bound the at-home awake window.
	Wake, Sleep time.Duration
	// Leave/Return bound the away-at-work window; only meaningful when Away
	// is set. Both may exceed 24h.
	Leave, Return time.Duration
	// Away marks a persona that leaves the house on weekdays.
	Away bool
	// Jitter is the per-day uniform jitter applied to every anchor.
	Jitter time.Duration
	// MorningActs/EveningActs are device interactions per home window
	// (before leaving / after returning; for home-all-day personas the two
	// halves of the awake window).
	MorningActs, EveningActs int
	// AppSessions is companion-app foreground sessions per day.
	AppSessions int
	// SensorPerHour is the occupancy sensor-chatter rate while home and
	// awake (motion events, presence pings). Away hours emit nothing —
	// that asymmetry is what makes occupancy visible in the capture.
	SensorPerHour int
}

// personas are the built-in routines. Times follow the diurnal shapes of
// "Characterizing Smart Home IoT Traffic in the Wild": morning and evening
// peaks for workers, a flat daytime plateau for home-all-day personas.
var personas = []Persona{
	{Name: "office-worker", Wake: 6*time.Hour + 45*time.Minute, Leave: 8*time.Hour + 15*time.Minute,
		Return: 17*time.Hour + 45*time.Minute, Sleep: 23 * time.Hour, Away: true,
		Jitter: 25 * time.Minute, MorningActs: 4, EveningActs: 10, AppSessions: 3, SensorPerHour: 2},
	{Name: "night-shift", Wake: 15 * time.Hour, Leave: 21*time.Hour + 30*time.Minute,
		Return: 31 * time.Hour, Sleep: 32*time.Hour + 30*time.Minute, Away: true,
		Jitter: 30 * time.Minute, MorningActs: 6, EveningActs: 3, AppSessions: 2, SensorPerHour: 2},
	{Name: "retiree", Wake: 6 * time.Hour, Sleep: 21*time.Hour + 30*time.Minute,
		Jitter: 40 * time.Minute, MorningActs: 6, EveningActs: 6, AppSessions: 2, SensorPerHour: 3},
	{Name: "family-with-kids", Wake: 6*time.Hour + 15*time.Minute, Leave: 8*time.Hour + 45*time.Minute,
		Return: 15*time.Hour + 30*time.Minute, Sleep: 22*time.Hour + 15*time.Minute, Away: true,
		Jitter: 20 * time.Minute, MorningActs: 8, EveningActs: 14, AppSessions: 5, SensorPerHour: 4},
	{Name: "remote-worker", Wake: 7*time.Hour + 30*time.Minute, Sleep: 23*time.Hour + 30*time.Minute,
		Jitter: 30 * time.Minute, MorningActs: 5, EveningActs: 8, AppSessions: 4, SensorPerHour: 2},
}

// Personas returns the built-in persona set.
func Personas() []Persona {
	out := make([]Persona, len(personas))
	copy(out, personas)
	return out
}

// PersonaNames lists the built-in persona names in definition order.
func PersonaNames() []string {
	names := make([]string, len(personas))
	for i, p := range personas {
		names[i] = p.Name
	}
	return names
}

// personaByName resolves a built-in persona.
func personaByName(name string) (Persona, bool) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, p := range personas {
		if p.Name == want {
			return p, true
		}
	}
	return Persona{}, false
}

// Drift configures longitudinal change over the run: devices retired
// (thrown out, broken), devices added (the new speaker bought in week 2 —
// realised as a delayed first join), and firmware updates that flip
// protocol behaviour flags on a device's profile. Rates are events per
// simulated week; the compiler scales them to the plan's Days and rounds.
type Drift struct {
	RetirePerWeek   float64
	AddPerWeek      float64
	FirmwarePerWeek float64
}

// DefaultDrift is the paper-plausible churn rate: about one device in and
// one out per week, with firmware updates twice a week across the fleet.
func DefaultDrift() Drift {
	return Drift{RetirePerWeek: 1, AddPerWeek: 1, FirmwarePerWeek: 2}
}

// Enabled reports whether any drift rate is set.
func (d Drift) Enabled() bool {
	return d.RetirePerWeek > 0 || d.AddPerWeek > 0 || d.FirmwarePerWeek > 0
}

// Plan configures a resident simulation. The zero Plan is disabled.
type Plan struct {
	// Personas names one built-in persona per resident ("office-worker",
	// "retiree", …). Duplicates are fine — each gets its own instance label
	// and its own random draws.
	Personas []string
	// Days is the number of simulated days the schedule covers.
	Days int
	// Drift configures longitudinal device churn and firmware updates.
	Drift Drift
}

// Enabled reports whether the plan schedules anything.
func (p Plan) Enabled() bool { return len(p.Personas) > 0 && p.Days > 0 }

// Duration is the virtual window the schedule covers.
func (p Plan) Duration() time.Duration { return time.Duration(p.Days) * day }

// String renders the plan compactly for CLI/summary output.
func (p Plan) String() string {
	if !p.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("residents=%d days=%d", len(p.Personas), p.Days)
	if p.Drift.Enabled() {
		s += fmt.Sprintf(" drift(retire=%.1f add=%.1f fw=%.1f per week)",
			p.Drift.RetirePerWeek, p.Drift.AddPerWeek, p.Drift.FirmwarePerWeek)
	}
	return s
}

// Household builds a plan with n residents drawn round-robin from the
// default persona mix, running for days simulated days with default drift.
func Household(n, days int) Plan {
	if n <= 0 || days <= 0 {
		return Plan{}
	}
	mix := PersonaNames()
	names := make([]string, n)
	for i := range names {
		names[i] = mix[i%len(mix)]
	}
	return Plan{Personas: names, Days: days, Drift: DefaultDrift()}
}

// World describes the household the compiler schedules against. The
// executor (internal/testbed) builds it from its device catalog; tests can
// use any stand-in.
type World struct {
	// Devices are device names in catalog order. Drift events target them.
	Devices []string
	// InteractionKinds is the number of scripted interaction kinds
	// (testbed.InteractionKind values); interaction events carry a kind
	// index in [0, InteractionKinds).
	InteractionKinds int
}

// EventKind enumerates schedule event types.
type EventKind int

// Schedule event kinds.
const (
	// EventInteract performs one scripted device interaction
	// (Arg = interaction kind index).
	EventInteract EventKind = iota
	// EventApp runs one companion-app foreground session on the resident's
	// phone (Arg = session variant).
	EventApp
	// EventSensor emits one occupancy-correlated sensor event
	// (Arg = sensor pick index).
	EventSensor
	// EventRetire permanently removes Device from the LAN.
	EventRetire
	// EventAdd first-joins Device (it did not boot with the lab).
	EventAdd
	// EventFirmware applies a firmware update to Device.
	EventFirmware
)

// String names the kind for renders and telemetry labels.
func (k EventKind) String() string {
	switch k {
	case EventInteract:
		return "interact"
	case EventApp:
		return "app"
	case EventSensor:
		return "sensor"
	case EventRetire:
		return "retire"
	case EventAdd:
		return "add"
	case EventFirmware:
		return "firmware"
	}
	return fmt.Sprintf("kind%d", int(k))
}

// Event is one scheduled action. At is the offset from the simulation
// epoch; the executor maps it onto the virtual clock.
type Event struct {
	At       time.Duration
	Kind     EventKind
	Resident string // instance label ("office-worker#0"); empty for drift
	Arg      int    // kind-specific argument
	Device   string // drift target device name
}

// Schedule is a compiled, immutable household schedule.
type Schedule struct {
	Plan   Plan
	Events []Event

	// added/retired/updated are the drift target sets, in event order.
	added, retired, updated []string
}

// Compile builds the schedule for (seed, plan) against w. It returns an
// error for unknown persona names; a disabled plan compiles to an empty
// schedule. The result depends only on the arguments.
func Compile(seed int64, plan Plan, w World) (*Schedule, error) {
	s := &Schedule{Plan: plan}
	if !plan.Enabled() {
		return s, nil
	}
	rng := rand.New(rand.NewSource(engine.SubSeed(seed, rngStream)))
	for i, name := range plan.Personas {
		p, ok := personaByName(name)
		if !ok {
			return nil, fmt.Errorf("resident: unknown persona %q (known: %s)",
				name, strings.Join(PersonaNames(), ", "))
		}
		label := fmt.Sprintf("%s#%d", p.Name, i)
		compileResident(rng, s, p, label, plan.Days, w)
	}
	compileDrift(rng, s, plan, w)
	// Stable order: by time, ties broken by generation order (events were
	// appended deterministically, so a stable sort pins the tie order).
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

// window is one at-home awake span with an interaction budget.
type window struct {
	start, end time.Duration
	acts       int
}

// compileResident draws one resident's events for every day of the run.
func compileResident(rng *rand.Rand, s *Schedule, p Persona, label string, days int, w World) {
	jit := func(anchor time.Duration) time.Duration {
		if p.Jitter <= 0 {
			return anchor
		}
		return anchor + time.Duration(rng.Int63n(int64(2*p.Jitter))) - p.Jitter
	}
	runEnd := time.Duration(days) * day
	for d := 0; d < days; d++ {
		dayStart := time.Duration(d) * day
		// The simulation epoch (2022-11-14) is a Monday, so d%7 ∈ {5,6} is
		// the weekend: away personas stay home and spread their combined
		// interaction budget across the day.
		weekend := d%7 == 5 || d%7 == 6
		wake, sleep := jit(p.Wake), jit(p.Sleep)
		var windows []window
		if p.Away && !weekend {
			leave, ret := jit(p.Leave), jit(p.Return)
			windows = []window{
				{start: wake, end: leave, acts: p.MorningActs},
				{start: ret, end: sleep, acts: p.EveningActs},
			}
		} else {
			mid := wake + (sleep-wake)/2
			windows = []window{
				{start: wake, end: mid, acts: p.MorningActs},
				{start: mid, end: sleep, acts: p.EveningActs},
			}
		}
		emit := func(at time.Duration, kind EventKind, arg int) {
			at += dayStart
			if at < 0 || at >= runEnd {
				return // jitter or a cross-midnight anchor fell off the run
			}
			s.Events = append(s.Events, Event{At: at, Kind: kind, Resident: label, Arg: arg})
		}
		within := func(win window) time.Duration {
			span := win.end - win.start
			if span <= 0 {
				return win.start
			}
			return win.start + time.Duration(rng.Int63n(int64(span)))
		}
		for _, win := range windows {
			if win.end <= win.start {
				continue
			}
			// Device interactions: uniform within the window, kind drawn
			// from the world's interaction repertoire.
			for a := 0; a < win.acts; a++ {
				kind := 0
				if w.InteractionKinds > 0 {
					kind = rng.Intn(w.InteractionKinds)
				}
				emit(within(win), EventInteract, kind)
			}
			// Occupancy-correlated sensor chatter: SensorPerHour events per
			// at-home awake hour, none while away or asleep.
			if p.SensorPerHour > 0 {
				hours := int(win.end-win.start) / int(time.Hour)
				for h := 0; h <= hours; h++ {
					hourStart := win.start + time.Duration(h)*time.Hour
					for e := 0; e < p.SensorPerHour; e++ {
						at := hourStart + time.Duration(rng.Int63n(int64(time.Hour)))
						if at >= win.end {
							continue
						}
						emit(at, EventSensor, rng.Intn(1<<16))
					}
				}
			}
		}
		// App foreground sessions land in any home window.
		for a := 0; a < p.AppSessions; a++ {
			win := windows[rng.Intn(len(windows))]
			if win.end <= win.start {
				continue
			}
			emit(within(win), EventApp, rng.Intn(3))
		}
	}
}

// compileDrift draws the longitudinal events: disjoint retire/add targets
// (a device cannot be added after the run started with it, nor retired
// before it joined), firmware updates over the remaining population, all in
// the middle two thirds of the run so both "before" and "after" epochs are
// observable.
func compileDrift(rng *rand.Rand, s *Schedule, plan Plan, w World) {
	if !plan.Drift.Enabled() || len(w.Devices) == 0 {
		return
	}
	weeks := float64(plan.Days) / 7
	count := func(rate float64) int {
		return int(math.Round(rate * weeks))
	}
	nRetire, nAdd, nFw := count(plan.Drift.RetirePerWeek), count(plan.Drift.AddPerWeek), count(plan.Drift.FirmwarePerWeek)
	// Keep the fleet recognisable: never churn more than a third of it.
	if limit := len(w.Devices) / 3; nRetire+nAdd > limit {
		if nRetire > limit/2 {
			nRetire = limit / 2
		}
		if nAdd > limit-nRetire {
			nAdd = limit - nRetire
		}
	}
	perm := rng.Perm(len(w.Devices))
	pick := func(n int) []string {
		if n > len(perm) {
			n = len(perm)
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			out[i] = w.Devices[perm[i]]
		}
		perm = perm[n:]
		return out
	}
	runDur := plan.Duration()
	driftAt := func() time.Duration {
		lo, span := runDur/6, runDur*2/3
		return lo + time.Duration(rng.Int63n(int64(span)))
	}
	s.retired = pick(nRetire)
	s.added = pick(nAdd)
	for _, name := range s.retired {
		s.Events = append(s.Events, Event{At: driftAt(), Kind: EventRetire, Device: name})
	}
	for _, name := range s.added {
		s.Events = append(s.Events, Event{At: driftAt(), Kind: EventAdd, Device: name})
	}
	// Firmware updates target devices that boot with the lab and stay —
	// updating a device the schedule later retires is fine in reality, but
	// excluding churn targets keeps the three drift populations disjoint
	// and the "before/after" flip cleanly observable per device.
	if nFw > len(perm) {
		nFw = len(perm)
	}
	for i := 0; i < nFw; i++ {
		name := w.Devices[perm[i]]
		s.updated = append(s.updated, name)
		s.Events = append(s.Events, Event{At: driftAt(), Kind: EventFirmware, Device: name})
	}
}

// Added returns the device names the schedule first-joins mid-run; the
// executor must not boot them with the lab.
func (s *Schedule) Added() []string { return append([]string(nil), s.added...) }

// Retired returns the device names the schedule retires mid-run.
func (s *Schedule) Retired() []string { return append([]string(nil), s.retired...) }

// Updated returns the device names receiving firmware updates.
func (s *Schedule) Updated() []string { return append([]string(nil), s.updated...) }

// IsAdded reports whether the named device joins mid-run.
func (s *Schedule) IsAdded(name string) bool {
	for _, n := range s.added {
		if n == name {
			return true
		}
	}
	return false
}

// Counts tallies events by kind.
func (s *Schedule) Counts() map[EventKind]int {
	out := make(map[EventKind]int)
	for _, ev := range s.Events {
		out[ev.Kind]++
	}
	return out
}

// HourHistogram buckets resident activity (interactions, app sessions, and
// sensor events — not drift) by hour of day across the whole run. This is
// the diurnal shape downstream consumers reuse: the diurnal artifact
// renders it and inspector.SyntheticCaptureHours stamps synthesized
// households with it.
func (s *Schedule) HourHistogram() [24]int {
	var hist [24]int
	for _, ev := range s.Events {
		switch ev.Kind {
		case EventInteract, EventApp, EventSensor:
			hist[int(ev.At/time.Hour)%24]++
		}
	}
	return hist
}

// Render writes the schedule as one line per event, in execution order —
// the byte-comparison target for the determinism tests and -residents
// debug output.
func (s *Schedule) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "resident schedule: %s events=%d\n", s.Plan, len(s.Events))
	for _, ev := range s.Events {
		fmt.Fprintf(&sb, "%12s %-9s", ev.At.Truncate(time.Second), ev.Kind)
		if ev.Resident != "" {
			fmt.Fprintf(&sb, " %-20s", ev.Resident)
		}
		if ev.Device != "" {
			fmt.Fprintf(&sb, " device=%s", ev.Device)
		}
		if ev.Kind == EventInteract || ev.Kind == EventApp {
			fmt.Fprintf(&sb, " arg=%d", ev.Arg)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TypicalHours returns the hour-of-day activity histogram of a default
// four-resident household over one simulated week — a diurnal shape
// consumers can use without building a lab (iotload stamps synthetic
// captures with it). Pure function of seed.
func TypicalHours(seed int64) [24]int {
	sched, err := Compile(seed, Plan{Personas: PersonaNames()[:4], Days: 7}, World{InteractionKinds: 4})
	if err != nil { // unreachable: built-in names
		return [24]int{}
	}
	return sched.HourHistogram()
}
