package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/inspector"
)

// This file holds the mergeable (partial) forms of the crowdsourced-corpus
// analyses: Table 2's entropy/uniqueness aggregation and the §7 mitigation
// sweep. Both analyses are, at bottom, counting — per-household fingerprint
// histograms, identifier-combination populations, distinct product/vendor
// sets — and counts merge. A partial computed over any subset of households
// carries everything the final tables need from that subset; merging the
// partials of a disjoint cover of the corpus yields aggregates identical to
// a single whole-corpus pass, because integer sums are associative and
// commutative, and every float (entropy) is derived only *after* the merge,
// from identical integer counts, with sorted-key summation. Hence: any
// partition — one shard, eight shards, one partial per household — produces
// byte-identical rendered tables.
//
// The partials are also *retractable*: every aggregate is an integer count
// or a refcounted multiset (map[string]int — "distinct products" renders as
// the key count, but each key remembers how many devices contribute it), so
// Sub is the exact inverse of Add. Keys are deleted the moment their
// refcount reaches zero, which makes the algebra cancellative: folding a
// household in and retracting it restores the previous state *structurally*,
// not just observationally — a partial built by any sequence of Add/Sub
// calls is identical to one batch-built over the surviving households. The
// serving layer leans on this to keep a live merged partial per fleet shard,
// updated in O(one household) at ingest (fold the previous contribution out,
// the new one in) instead of recomputing the shard on read. A refcount
// underflow means a caller retracted a contribution that was never added —
// a structural invariant violation, so Sub panics rather than serving
// silently wrong aggregates.
//
// The whole-corpus entry points (EntropyTableWith, MitigationTableWith) are
// defined as a single-partial merge, so there is exactly one aggregation
// code path and the equivalence is structural, not aspirational.

// addCounts folds the src multiset into dst.
func addCounts(dst, src map[string]int) {
	for k, n := range src {
		dst[k] += n
	}
}

// subCounts retracts the src multiset from dst, deleting keys at refcount
// zero so a fold-then-retract restores dst structurally. Underflow panics:
// it means src was never folded into dst.
func subCounts(dst, src map[string]int) {
	for k, n := range src {
		switch r := dst[k] - n; {
		case r > 0:
			dst[k] = r
		case r == 0:
			delete(dst, k)
		default:
			panic("analysis: multiset refcount underflow (retract without matching add)")
		}
	}
}

// cloneCounts deep-copies a multiset.
func cloneCounts(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, n := range src {
		dst[k] = n
	}
	return dst
}

// entropyCombo accumulates one identifier-combination row's inputs over a
// household subset. products and vendors are device-refcounted multisets:
// the row reports len() (distinct values), the counts make removal exact.
type entropyCombo struct {
	types             []IdentifierType
	products, vendors map[string]int
	devices           int
	households        int
	// valueCounts maps a household's joined-sorted identifier fingerprint to
	// the number of households in this subset carrying it. Populated only
	// for combinations that expose at least one identifier type.
	valueCounts map[string]int
}

// EntropyPartial is the mergeable, retractable Table 2 contribution of a
// household subset. Build with EntropyPartialOf, combine with Add or
// MergeEntropy, retract with Sub.
type EntropyPartial struct {
	combos map[string]*entropyCombo
	// typeValues counts per-household joined identifier values per class;
	// typeHouseholds counts households exposing each class. Together they
	// determine the per-class Shannon entropy after the merge.
	typeValues     map[IdentifierType]map[string]int
	typeHouseholds map[IdentifierType]int
}

// NewEntropyPartial returns an empty partial — the identity of the Add/Sub
// algebra, and the seed of the serving layer's live per-shard aggregates.
func NewEntropyPartial() *EntropyPartial {
	return &EntropyPartial{
		combos: map[string]*entropyCombo{},
		typeValues: map[IdentifierType]map[string]int{
			IDName: {}, IDUUID: {}, IDMAC: {},
		},
		typeHouseholds: map[IdentifierType]int{},
	}
}

func (p *EntropyPartial) combo(types []IdentifierType) *entropyCombo {
	key := fmt.Sprint(types)
	c, ok := p.combos[key]
	if !ok {
		c = &entropyCombo{
			types:    append([]IdentifierType(nil), types...),
			products: map[string]int{}, vendors: map[string]int{},
			valueCounts: map[string]int{},
		}
		p.combos[key] = c
	}
	return c
}

// Add folds q into p. q is not retained; both partials' counts are summed
// key by key, so Add is associative and commutative up to the rendered rows.
func (p *EntropyPartial) Add(q *EntropyPartial) {
	for key, c := range q.combos {
		mc, ok := p.combos[key]
		if !ok {
			mc = p.combo(c.types)
		}
		addCounts(mc.products, c.products)
		addCounts(mc.vendors, c.vendors)
		mc.devices += c.devices
		mc.households += c.households
		addCounts(mc.valueCounts, c.valueCounts)
	}
	for t, counts := range q.typeValues {
		tv, ok := p.typeValues[t]
		if !ok {
			tv = map[string]int{}
			p.typeValues[t] = tv
		}
		addCounts(tv, counts)
	}
	for t, n := range q.typeHouseholds {
		p.typeHouseholds[t] += n
	}
}

// Sub retracts a previously added q from p, deleting rows and multiset keys
// whose counts reach zero so p ends structurally identical to a partial that
// never saw q. Retracting a contribution that was not added panics — the
// caller's bookkeeping, not the data, is wrong, and the aggregates can no
// longer be trusted.
func (p *EntropyPartial) Sub(q *EntropyPartial) {
	for key, c := range q.combos {
		mc, ok := p.combos[key]
		if !ok {
			panic("analysis: EntropyPartial.Sub of a combination never added")
		}
		subCounts(mc.products, c.products)
		subCounts(mc.vendors, c.vendors)
		mc.devices -= c.devices
		mc.households -= c.households
		subCounts(mc.valueCounts, c.valueCounts)
		if mc.devices < 0 || mc.households < 0 {
			panic("analysis: EntropyPartial.Sub count underflow")
		}
		if mc.devices == 0 && mc.households == 0 {
			delete(p.combos, key)
		}
	}
	for t, counts := range q.typeValues {
		subCounts(p.typeValues[t], counts)
	}
	for t, n := range q.typeHouseholds {
		r := p.typeHouseholds[t] - n
		switch {
		case r > 0:
			p.typeHouseholds[t] = r
		case r == 0:
			delete(p.typeHouseholds, t)
		default:
			panic("analysis: EntropyPartial.Sub type-household underflow")
		}
	}
}

// Clone deep-copies p — the serving layer snapshots its live aggregates
// under a lock and renders the copy outside it.
func (p *EntropyPartial) Clone() *EntropyPartial {
	c := NewEntropyPartial()
	for key, combo := range p.combos {
		c.combos[key] = &entropyCombo{
			types:    append([]IdentifierType(nil), combo.types...),
			products: cloneCounts(combo.products), vendors: cloneCounts(combo.vendors),
			devices: combo.devices, households: combo.households,
			valueCounts: cloneCounts(combo.valueCounts),
		}
	}
	for t, counts := range p.typeValues {
		c.typeValues[t] = cloneCounts(counts)
	}
	for t, n := range p.typeHouseholds {
		c.typeHouseholds[t] = n
	}
	return c
}

// EntropyPartialOf aggregates Table 2's inputs over a household subset,
// reusing a precomputed identifier extraction (nil extracts inline).
// Households must be whole — a household's devices may not be split across
// subsets — which the serving layer guarantees by sharding on household ID.
func EntropyPartialOf(hhs []*inspector.Household, ids *ExtractedIdentifiers) *EntropyPartial {
	p := NewEntropyPartial()
	for _, h := range hhs {
		// Per-household accumulation: identifier values per combination and
		// per class, folded into counts once the household is complete.
		comboValues := map[string][]string{}
		comboPresent := map[string]bool{}
		perType := map[IdentifierType][]string{}
		for _, d := range h.Devices {
			devIDs := ids.Of(d)
			var types []IdentifierType
			var values []string
			for _, t := range []IdentifierType{IDName, IDUUID, IDMAC} {
				if len(devIDs[t]) > 0 {
					types = append(types, t)
					values = append(values, devIDs[t]...)
				}
			}
			c := p.combo(types)
			c.products[d.Product.Name()]++
			c.vendors[d.Product.Vendor]++
			c.devices++
			key := fmt.Sprint(types)
			comboPresent[key] = true
			comboValues[key] = append(comboValues[key], values...)
			for t, vals := range devIDs {
				perType[t] = append(perType[t], vals...)
			}
		}
		for key := range comboPresent {
			c := p.combos[key]
			c.households++
			if len(c.types) > 0 {
				vals := comboValues[key]
				sort.Strings(vals)
				c.valueCounts[strings.Join(vals, "|")]++
			}
		}
		for t, vals := range perType {
			sort.Strings(vals)
			p.typeValues[t][strings.Join(vals, "|")]++
			p.typeHouseholds[t]++
		}
	}
	return p
}

// rows derives the final Table 2 rows from the partial's counts. Entropy and
// uniqueness come from the merged integers only, so any partition of the
// same corpus — and any Add/Sub history reaching the same counts — yields
// byte-identical rows.
func (p *EntropyPartial) rows() []EntropyRow {
	typeEntropy := map[IdentifierType]float64{}
	for t, counts := range p.typeValues {
		typeEntropy[t] = shannon(counts, p.typeHouseholds[t])
	}

	var rows []EntropyRow
	for _, c := range p.combos {
		row := EntropyRow{
			Types:    c.types,
			Products: len(c.products), Vendors: len(c.vendors),
			Devices: c.devices, Households: c.households,
		}
		if len(c.types) > 0 {
			unique := 0
			for _, n := range c.valueCounts {
				if n == 1 {
					unique++
				}
			}
			row.UniqueHouseholds = unique
			if row.Households > 0 {
				row.UniquePct = 100 * float64(unique) / float64(row.Households)
			}
			for _, t := range c.types {
				row.EntropyBits += typeEntropy[t]
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].Types) != len(rows[j].Types) {
			return len(rows[i].Types) < len(rows[j].Types)
		}
		return rows[i].Key() < rows[j].Key()
	})
	return rows
}

// MergeEntropy combines partials from a disjoint household cover into the
// final Table 2 rows — a fold through Add, so the merge and the incremental
// maintenance share one aggregation path.
func MergeEntropy(parts []*EntropyPartial) []EntropyRow {
	m := NewEntropyPartial()
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.Add(p)
	}
	return m.rows()
}

// mitigationRegimes is the §7 sweep order — shared by the batch table, the
// partial, and the merge so rows always line up.
var mitigationRegimes = []Mitigation{
	0,
	MitigateStripNames,
	MitigateRedactMACs,
	MitigateRandomizeUUIDs,
	MitigateRandomizeUUIDs | MitigateRedactMACs,
	MitigateAll,
}

// regimePartial is one mitigation regime's contribution from a household
// subset: per-fingerprint owner multisets for each observation session.
// s1[fp] records which households claimed fp in session 1 and how often —
// re-identification through fp is possible only while exactly one household
// holds exactly one claim. s2[fp] counts session-2 holders the same way.
// The nested counts make the partial retractable: removing a household's
// claims decrements, and a fingerprint row disappears when its last claim
// does.
type regimePartial struct {
	s1 map[string]map[string]int
	s2 map[string]map[string]int
}

// MitigationPartial is the mergeable, retractable §7 sweep contribution of
// a household subset, one regimePartial per mitigationRegimes entry.
type MitigationPartial struct {
	regimes []regimePartial
}

// NewMitigationPartial returns an empty partial — the identity of the
// Add/Sub algebra, and the seed of the serving layer's live aggregates.
func NewMitigationPartial() *MitigationPartial {
	p := &MitigationPartial{regimes: make([]regimePartial, len(mitigationRegimes))}
	for i := range p.regimes {
		p.regimes[i] = regimePartial{
			s1: map[string]map[string]int{},
			s2: map[string]map[string]int{},
		}
	}
	return p
}

// addClaim records one household's fingerprint claim in an owner multiset.
func addClaim(m map[string]map[string]int, fp, owner string) {
	owners, ok := m[fp]
	if !ok {
		owners = map[string]int{}
		m[fp] = owners
	}
	owners[owner]++
}

// MitigationPartialOf computes both observation sessions' fingerprints for
// every regime over a household subset, reusing a precomputed identifier
// extraction (nil extracts inline).
func MitigationPartialOf(hhs []*inspector.Household, ids *ExtractedIdentifiers) *MitigationPartial {
	p := NewMitigationPartial()
	for ri, m := range mitigationRegimes {
		rp := p.regimes[ri]
		for _, h := range hhs {
			if fp := fingerprint(h, ids, m, 1); fp != "" {
				addClaim(rp.s1, fp, h.ID)
			}
			if fp := fingerprint(h, ids, m, 2); fp != "" {
				addClaim(rp.s2, fp, h.ID)
			}
		}
	}
	return p
}

// Add folds q into p.
func (p *MitigationPartial) Add(q *MitigationPartial) {
	for ri := range p.regimes {
		qr := q.regimes[ri]
		pr := p.regimes[ri]
		for fp, owners := range qr.s1 {
			dst, ok := pr.s1[fp]
			if !ok {
				dst = map[string]int{}
				pr.s1[fp] = dst
			}
			addCounts(dst, owners)
		}
		for fp, owners := range qr.s2 {
			dst, ok := pr.s2[fp]
			if !ok {
				dst = map[string]int{}
				pr.s2[fp] = dst
			}
			addCounts(dst, owners)
		}
	}
}

// Sub retracts a previously added q from p, with the same delete-at-zero /
// panic-on-underflow contract as EntropyPartial.Sub.
func (p *MitigationPartial) Sub(q *MitigationPartial) {
	subClaims := func(dst, src map[string]map[string]int) {
		for fp, owners := range src {
			d, ok := dst[fp]
			if !ok {
				panic("analysis: MitigationPartial.Sub of a fingerprint never added")
			}
			subCounts(d, owners)
			if len(d) == 0 {
				delete(dst, fp)
			}
		}
	}
	for ri := range p.regimes {
		subClaims(p.regimes[ri].s1, q.regimes[ri].s1)
		subClaims(p.regimes[ri].s2, q.regimes[ri].s2)
	}
}

// Clone deep-copies p.
func (p *MitigationPartial) Clone() *MitigationPartial {
	c := NewMitigationPartial()
	for ri := range p.regimes {
		for fp, owners := range p.regimes[ri].s1 {
			c.regimes[ri].s1[fp] = cloneCounts(owners)
		}
		for fp, owners := range p.regimes[ri].s2 {
			c.regimes[ri].s2[fp] = cloneCounts(owners)
		}
	}
	return c
}

// rows derives the final sweep rows, in mitigationRegimes order. A session-2
// holder is re-identified when its fingerprint's session-1 claims reduce to
// a single claim by a single household — the multiset total, not the map
// width, so duplicate claims across or within subsets break uniqueness
// exactly as the batch analysis defines.
func (p *MitigationPartial) rows() []ReidentificationResult {
	out := make([]ReidentificationResult, len(mitigationRegimes))
	for ri, m := range mitigationRegimes {
		rp := p.regimes[ri]
		res := ReidentificationResult{Mitigation: m}
		counts := map[string]int{}
		for fp, owners := range rp.s2 {
			holders := 0
			for _, n := range owners {
				holders += n
			}
			res.Households += holders
			counts[fp] += holders
			if s1owners, ok := rp.s1[fp]; ok {
				claims, claimant := 0, ""
				for owner, n := range s1owners {
					claims += n
					claimant = owner
				}
				if claims == 1 {
					res.Reidentified += owners[claimant]
				}
			}
		}
		if res.Households > 0 {
			res.ReidRate = float64(res.Reidentified) / float64(res.Households)
		}
		res.EntropyBits = shannon(counts, res.Households)
		out[ri] = res
	}
	return out
}

// MergeMitigations combines partials from a disjoint household cover into
// the final sweep rows — a fold through Add, sharing the incremental path.
func MergeMitigations(parts []*MitigationPartial) []ReidentificationResult {
	m := NewMitigationPartial()
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.Add(p)
	}
	return m.rows()
}

// HouseholdPartial bundles one household's singleton contributions to every
// sharded artifact — the unit the serving layer folds in at ingest and
// retracts when the household re-uploads.
type HouseholdPartial struct {
	Entropy     *EntropyPartial
	Mitigations *MitigationPartial
}

// HouseholdPartialOf builds a household's singleton partials with one shared
// identifier extraction (each Of call would otherwise re-extract the devices
// — the mitigation sweep alone fingerprints 6 regimes × 2 sessions).
func HouseholdPartialOf(h *inspector.Household) *HouseholdPartial {
	one := []*inspector.Household{h}
	ids := ExtractIdentifiers(&inspector.Dataset{Households: one}, 1)
	return &HouseholdPartial{
		Entropy:     EntropyPartialOf(one, ids),
		Mitigations: MitigationPartialOf(one, ids),
	}
}
