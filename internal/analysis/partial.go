package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/inspector"
)

// This file holds the mergeable (partial) forms of the crowdsourced-corpus
// analyses: Table 2's entropy/uniqueness aggregation and the §7 mitigation
// sweep. Both analyses are, at bottom, counting — per-household fingerprint
// histograms, identifier-combination populations, distinct product/vendor
// sets — and counts merge. A partial computed over any subset of households
// carries everything the final tables need from that subset; merging the
// partials of a disjoint cover of the corpus yields aggregates identical to
// a single whole-corpus pass, because integer sums and set unions are
// associative and commutative, and every float (entropy) is derived only
// *after* the merge, from identical integer counts, with sorted-key
// summation. Hence: any partition — one shard, eight shards, one partial
// per household — produces byte-identical rendered tables.
//
// The whole-corpus entry points (EntropyTableWith, MitigationTableWith) are
// defined as a single-partial merge, so there is exactly one aggregation
// code path and the equivalence is structural, not aspirational. The
// serving layer leans on this: each fleet shard keeps its partial cached
// and an upload invalidates only its own shard's contribution.

// entropyCombo accumulates one identifier-combination row's inputs over a
// household subset.
type entropyCombo struct {
	types             []IdentifierType
	products, vendors map[string]bool
	devices           int
	households        int
	// valueCounts maps a household's joined-sorted identifier fingerprint to
	// the number of households in this subset carrying it. Populated only
	// for combinations that expose at least one identifier type.
	valueCounts map[string]int
}

// EntropyPartial is the mergeable Table 2 contribution of a household
// subset. Build with EntropyPartialOf, combine with MergeEntropy.
type EntropyPartial struct {
	combos map[string]*entropyCombo
	// typeValues counts per-household joined identifier values per class;
	// typeHouseholds counts households exposing each class. Together they
	// determine the per-class Shannon entropy after the merge.
	typeValues     map[IdentifierType]map[string]int
	typeHouseholds map[IdentifierType]int
}

func newEntropyPartial() *EntropyPartial {
	return &EntropyPartial{
		combos: map[string]*entropyCombo{},
		typeValues: map[IdentifierType]map[string]int{
			IDName: {}, IDUUID: {}, IDMAC: {},
		},
		typeHouseholds: map[IdentifierType]int{},
	}
}

func (p *EntropyPartial) combo(types []IdentifierType) *entropyCombo {
	key := fmt.Sprint(types)
	c, ok := p.combos[key]
	if !ok {
		c = &entropyCombo{
			types:    append([]IdentifierType(nil), types...),
			products: map[string]bool{}, vendors: map[string]bool{},
			valueCounts: map[string]int{},
		}
		p.combos[key] = c
	}
	return c
}

// EntropyPartialOf aggregates Table 2's inputs over a household subset,
// reusing a precomputed identifier extraction (nil extracts inline).
// Households must be whole — a household's devices may not be split across
// subsets — which the serving layer guarantees by sharding on household ID.
func EntropyPartialOf(hhs []*inspector.Household, ids *ExtractedIdentifiers) *EntropyPartial {
	p := newEntropyPartial()
	for _, h := range hhs {
		// Per-household accumulation: identifier values per combination and
		// per class, folded into counts once the household is complete.
		comboValues := map[string][]string{}
		comboPresent := map[string]bool{}
		perType := map[IdentifierType][]string{}
		for _, d := range h.Devices {
			devIDs := ids.Of(d)
			var types []IdentifierType
			var values []string
			for _, t := range []IdentifierType{IDName, IDUUID, IDMAC} {
				if len(devIDs[t]) > 0 {
					types = append(types, t)
					values = append(values, devIDs[t]...)
				}
			}
			c := p.combo(types)
			c.products[d.Product.Name()] = true
			c.vendors[d.Product.Vendor] = true
			c.devices++
			key := fmt.Sprint(types)
			comboPresent[key] = true
			comboValues[key] = append(comboValues[key], values...)
			for t, vals := range devIDs {
				perType[t] = append(perType[t], vals...)
			}
		}
		for key := range comboPresent {
			c := p.combos[key]
			c.households++
			if len(c.types) > 0 {
				vals := comboValues[key]
				sort.Strings(vals)
				c.valueCounts[strings.Join(vals, "|")]++
			}
		}
		for t, vals := range perType {
			sort.Strings(vals)
			p.typeValues[t][strings.Join(vals, "|")]++
			p.typeHouseholds[t]++
		}
	}
	return p
}

// MergeEntropy combines partials from a disjoint household cover into the
// final Table 2 rows. Merging is pure count/set arithmetic; entropy and
// uniqueness are derived from the merged counts only, so any partition of
// the same corpus yields byte-identical rows.
func MergeEntropy(parts []*EntropyPartial) []EntropyRow {
	m := newEntropyPartial()
	for _, p := range parts {
		if p == nil {
			continue
		}
		for key, c := range p.combos {
			mc, ok := m.combos[key]
			if !ok {
				mc = m.combo(c.types)
			}
			for k := range c.products {
				mc.products[k] = true
			}
			for k := range c.vendors {
				mc.vendors[k] = true
			}
			mc.devices += c.devices
			mc.households += c.households
			for v, n := range c.valueCounts {
				mc.valueCounts[v] += n
			}
		}
		for t, counts := range p.typeValues {
			for v, n := range counts {
				m.typeValues[t][v] += n
			}
		}
		for t, n := range p.typeHouseholds {
			m.typeHouseholds[t] += n
		}
	}

	typeEntropy := map[IdentifierType]float64{}
	for t, counts := range m.typeValues {
		typeEntropy[t] = shannon(counts, m.typeHouseholds[t])
	}

	var rows []EntropyRow
	for _, c := range m.combos {
		row := EntropyRow{
			Types:    c.types,
			Products: len(c.products), Vendors: len(c.vendors),
			Devices: c.devices, Households: c.households,
		}
		if len(c.types) > 0 {
			unique := 0
			for _, n := range c.valueCounts {
				if n == 1 {
					unique++
				}
			}
			row.UniqueHouseholds = unique
			if row.Households > 0 {
				row.UniquePct = 100 * float64(unique) / float64(row.Households)
			}
			for _, t := range c.types {
				row.EntropyBits += typeEntropy[t]
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if len(rows[i].Types) != len(rows[j].Types) {
			return len(rows[i].Types) < len(rows[j].Types)
		}
		return rows[i].Key() < rows[j].Key()
	})
	return rows
}

// mitigationRegimes is the §7 sweep order — shared by the batch table, the
// partial, and the merge so rows always line up.
var mitigationRegimes = []Mitigation{
	0,
	MitigateStripNames,
	MitigateRedactMACs,
	MitigateRandomizeUUIDs,
	MitigateRandomizeUUIDs | MitigateRedactMACs,
	MitigateAll,
}

// session1Entry is one session-1 fingerprint's claim: the owning household
// while the fingerprint is unique, and how many households produced it
// (count > 1 means no re-identification is possible through it).
type session1Entry struct {
	owner string
	count int
}

// regimePartial is one mitigation regime's contribution from a household
// subset: session-1 fingerprint claims and session-2 fingerprint holders.
type regimePartial struct {
	s1 map[string]session1Entry
	s2 map[string][]string
}

// MitigationPartial is the mergeable §7 sweep contribution of a household
// subset, one regimePartial per mitigationRegimes entry.
type MitigationPartial struct {
	regimes []regimePartial
}

// MitigationPartialOf computes both observation sessions' fingerprints for
// every regime over a household subset, reusing a precomputed identifier
// extraction (nil extracts inline).
func MitigationPartialOf(hhs []*inspector.Household, ids *ExtractedIdentifiers) *MitigationPartial {
	p := &MitigationPartial{regimes: make([]regimePartial, len(mitigationRegimes))}
	for ri, m := range mitigationRegimes {
		rp := regimePartial{s1: map[string]session1Entry{}, s2: map[string][]string{}}
		for _, h := range hhs {
			if fp := fingerprint(h, ids, m, 1); fp != "" {
				e := rp.s1[fp]
				e.owner = h.ID
				e.count++
				rp.s1[fp] = e
			}
			if fp := fingerprint(h, ids, m, 2); fp != "" {
				rp.s2[fp] = append(rp.s2[fp], h.ID)
			}
		}
		p.regimes[ri] = rp
	}
	return p
}

// MergeMitigations combines partials from a disjoint household cover into
// the final sweep rows, in mitigationRegimes order.
func MergeMitigations(parts []*MitigationPartial) []ReidentificationResult {
	out := make([]ReidentificationResult, len(mitigationRegimes))
	for ri, m := range mitigationRegimes {
		s1 := map[string]session1Entry{}
		s2 := map[string][]string{}
		for _, p := range parts {
			if p == nil {
				continue
			}
			rp := p.regimes[ri]
			for fp, e := range rp.s1 {
				me := s1[fp]
				if me.count == 0 {
					me.owner = e.owner
				}
				me.count += e.count
				s1[fp] = me
			}
			for fp, owners := range rp.s2 {
				s2[fp] = append(s2[fp], owners...)
			}
		}
		res := ReidentificationResult{Mitigation: m}
		counts := map[string]int{}
		for fp, owners := range s2 {
			res.Households += len(owners)
			counts[fp] += len(owners)
			if e, ok := s1[fp]; ok && e.count == 1 {
				for _, owner := range owners {
					if owner == e.owner {
						res.Reidentified++
					}
				}
			}
		}
		if res.Households > 0 {
			res.ReidRate = float64(res.Reidentified) / float64(res.Households)
		}
		res.EntropyBits = shannon(counts, res.Households)
		out[ri] = res
	}
	return out
}
