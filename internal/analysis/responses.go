package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
)

// discoveryWindow is Appendix D.2's response-correlation window.
const discoveryWindow = 3 * time.Second

// discoveryPorts label the discovery protocols of Table 4 (ARP, DHCP and
// ICMP are excluded there because nearly every device uses them).
var discoveryPorts = map[uint16]string{
	5353: "mDNS",
	1900: "SSDP",
	9999: "TPLINK",
	6666: "TuyaLP",
	6667: "TuyaLP",
	5683: "CoAP",
	137:  "NetBIOS",
}

// ResponseRow is one Table 4 row: a device category's discovery behaviour.
type ResponseRow struct {
	Category device.Category
	// AvgDiscovery is the mean number of discovery protocols used.
	AvgDiscovery float64
	// AvgWithResponse is the mean number of those that got ≥1 response.
	AvgWithResponse float64
	// AvgResponders is the mean count of distinct devices that answered.
	AvgResponders float64
	// Devices in the category.
	Devices int
}

// ResponseTable correlates multicast/broadcast discoveries with unicast
// responses arriving within the window (Appendix D.2) and aggregates per
// category (Table 4). Categories are grouped with vendor-specific rows
// (Amazon Echo, Google&Nest, Apple) like the paper's table.
func ResponseTable(records []pcap.Record, devices []*device.Device) []ResponseRow {
	byMAC := map[netx.MAC]*device.Device{}
	byIP := map[netip.Addr]*device.Device{}
	for _, d := range devices {
		byMAC[d.MAC()] = d
		if d.IP().IsValid() {
			byIP[d.IP()] = d
		}
	}

	// Pass 1: discovery transmissions per device: (proto) → times.
	type sent struct {
		at    time.Time
		proto string
	}
	discoveries := map[*device.Device][]sent{}
	for _, r := range records {
		p := r.Decode()
		if !p.HasUDP || !p.Eth.Dst.IsMulticast() {
			continue
		}
		proto, ok := discoveryPorts[p.UDP.DstPort]
		if !ok {
			continue
		}
		if d, ok := byMAC[p.Eth.Src]; ok {
			discoveries[d] = append(discoveries[d], sent{at: r.Time, proto: proto})
		}
	}

	// Pass 2: unicast responses back to a discoverer within the window.
	protosUsed := map[*device.Device]map[string]bool{}
	protosAnswered := map[*device.Device]map[string]bool{}
	responders := map[*device.Device]map[*device.Device]bool{}
	for d, ss := range discoveries {
		protosUsed[d] = map[string]bool{}
		for _, s := range ss {
			protosUsed[d][s.proto] = true
		}
		protosAnswered[d] = map[string]bool{}
		responders[d] = map[*device.Device]bool{}
	}
	for _, r := range records {
		p := r.Decode()
		if !p.HasUDP || p.Eth.Dst.IsMulticast() {
			continue
		}
		proto, ok := discoveryPorts[p.UDP.SrcPort]
		if !ok {
			continue
		}
		to, okTo := byIP[p.DstIP()]
		from, okFrom := byMAC[p.Eth.Src]
		if !okTo || !okFrom || to == from {
			continue
		}
		for _, s := range discoveries[to] {
			if s.proto == proto && r.Time.After(s.at) && r.Time.Sub(s.at) <= discoveryWindow {
				protosAnswered[to][proto] = true
				responders[to][from] = true
				break
			}
		}
	}

	// Aggregate into the paper's row groups.
	rowOf := func(d *device.Device) device.Category {
		switch {
		case d.Profile.Vendor == "Amazon" && d.Profile.Category == device.VoiceAssistant:
			return "Amazon Echo"
		case d.Profile.Vendor == "Google" && d.Profile.Category == device.VoiceAssistant:
			return "Google&Nest"
		case d.Profile.Vendor == "Apple":
			return "Apple"
		case d.Profile.Vendor == "Tuya" || d.Profile.Platform == device.PlatformTuya:
			return "Tuya"
		case d.Profile.Category == device.MediaTV:
			return "TVs"
		case d.Profile.Category == device.Surveillance:
			return "Cameras"
		case strings.Contains(strings.ToLower(d.Profile.Model), "hub") ||
			strings.Contains(strings.ToLower(d.Profile.Model), "bridge") ||
			strings.Contains(strings.ToLower(d.Profile.Model), "gateway"):
			return "Hubs"
		case d.Profile.Category == device.HomeAutomation:
			return "Home Auto"
		default:
			return "Appliances"
		}
	}
	type acc struct {
		devices, discovery, answered, responders int
	}
	accs := map[device.Category]*acc{}
	for _, d := range devices {
		row := rowOf(d)
		a, ok := accs[row]
		if !ok {
			a = &acc{}
			accs[row] = a
		}
		if protosUsed[d] == nil || len(protosUsed[d]) == 0 {
			continue
		}
		a.devices++
		a.discovery += len(protosUsed[d])
		a.answered += len(protosAnswered[d])
		a.responders += len(responders[d])
	}
	var rows []ResponseRow
	for cat, a := range accs {
		if a.devices == 0 {
			continue
		}
		rows = append(rows, ResponseRow{
			Category:        cat,
			Devices:         a.devices,
			AvgDiscovery:    float64(a.discovery) / float64(a.devices),
			AvgWithResponse: float64(a.answered) / float64(a.devices),
			AvgResponders:   float64(a.responders) / float64(a.devices),
		})
	}
	// Category breaks AvgResponders ties: rows come out of a map, so without
	// a total order the rendition would vary run to run.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AvgResponders != rows[j].AvgResponders {
			return rows[i].AvgResponders > rows[j].AvgResponders
		}
		return rows[i].Category < rows[j].Category
	})
	return rows
}

// RenderResponseTable prints Table 4.
func RenderResponseTable(rows []ResponseRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %16s %16s\n", "Device Group", "#Discovery", "#ProtoAnswered", "#DevsResponded")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12.2f %16.2f %16.2f\n",
			r.Category, r.AvgDiscovery, r.AvgWithResponse, r.AvgResponders)
	}
	return sb.String()
}
