package analysis

import (
	"testing"

	"iotlan/internal/inspector"
)

func TestMitigationSweepShape(t *testing.T) {
	ds := inspector.Generate(4, 1500)
	rows := MitigationTable(ds)
	byName := map[string]ReidentificationResult{}
	for _, r := range rows {
		byName[MitigationName(r.Mitigation)] = r
	}

	none := byName["none"]
	if none.Households < 400 {
		t.Fatalf("baseline households: %d", none.Households)
	}
	// Stable identifiers re-identify nearly every household across sessions.
	if none.ReidRate < 0.9 {
		t.Fatalf("baseline reid rate %.2f, want ≥0.9", none.ReidRate)
	}

	// Single mitigations help but leave residual linkability.
	randUUID := byName["randomize-uuids"]
	if randUUID.ReidRate >= none.ReidRate {
		t.Errorf("UUID randomisation did not reduce reid rate: %.2f", randUUID.ReidRate)
	}

	// The full stack collapses cross-session tracking.
	all := byName["strip-names+randomize-uuids+redact-macs"]
	if all.ReidRate > 0.02 {
		t.Errorf("full mitigation reid rate %.3f, want ≈0", all.ReidRate)
	}

	if RenderMitigationTable(rows) == "" {
		t.Error("empty render")
	}
}

func TestMitigationMonotonic(t *testing.T) {
	ds := inspector.Generate(4, 800)
	none := EvaluateMitigation(ds, 0)
	partial := EvaluateMitigation(ds, MitigateRedactMACs)
	full := EvaluateMitigation(ds, MitigateAll)
	if !(full.ReidRate <= partial.ReidRate && partial.ReidRate <= none.ReidRate) {
		t.Fatalf("reid rates not monotone: none=%.2f partial=%.2f full=%.2f",
			none.ReidRate, partial.ReidRate, full.ReidRate)
	}
}

func TestMitigationNames(t *testing.T) {
	if MitigationName(0) != "none" {
		t.Fatal("zero mitigation name")
	}
	if MitigationName(MitigateAll) != "strip-names+randomize-uuids+redact-macs" {
		t.Fatalf("full name: %q", MitigationName(MitigateAll))
	}
}

func TestRandomizedUUIDStableWithinSession(t *testing.T) {
	ds := inspector.Generate(4, 50)
	h := ds.Households[0]
	a := fingerprint(h, MitigateRandomizeUUIDs, 1)
	b := fingerprint(h, MitigateRandomizeUUIDs, 1)
	if a != b {
		t.Fatal("fingerprint unstable within one session")
	}
	c := fingerprint(h, MitigateRandomizeUUIDs, 2)
	if h.Devices[0].Product.ExposesUUID && a == c && a != "" {
		// Only differs when a UUID is actually present.
		hasUUID := false
		for _, d := range h.Devices {
			if d.Product.ExposesUUID {
				hasUUID = true
			}
		}
		if hasUUID {
			t.Fatal("fingerprint identical across sessions despite randomisation")
		}
	}
}
