package analysis

import (
	"testing"

	"iotlan/internal/inspector"
)

func TestMitigationSweepShape(t *testing.T) {
	ds := inspector.Generate(4, 1500)
	rows := MitigationTable(ds)
	byName := map[string]ReidentificationResult{}
	for _, r := range rows {
		byName[MitigationName(r.Mitigation)] = r
	}

	none := byName["none"]
	if none.Households < 400 {
		t.Fatalf("baseline households: %d", none.Households)
	}
	// Stable identifiers re-identify nearly every household across sessions.
	if none.ReidRate < 0.9 {
		t.Fatalf("baseline reid rate %.2f, want ≥0.9", none.ReidRate)
	}

	// Single mitigations help but leave residual linkability.
	randUUID := byName["randomize-uuids"]
	if randUUID.ReidRate >= none.ReidRate {
		t.Errorf("UUID randomisation did not reduce reid rate: %.2f", randUUID.ReidRate)
	}

	// The full stack collapses cross-session tracking.
	all := byName["strip-names+randomize-uuids+redact-macs"]
	if all.ReidRate > 0.02 {
		t.Errorf("full mitigation reid rate %.3f, want ≈0", all.ReidRate)
	}

	if RenderMitigationTable(rows) == "" {
		t.Error("empty render")
	}
}

func TestMitigationMonotonic(t *testing.T) {
	// Coarsening fingerprints merges values but never splits them, so the
	// absolute re-identified count is monotone non-increasing as mitigations
	// stack. (The *rate* is not: dropping an identifier class also shrinks
	// the denominator of households with non-empty fingerprints.)
	ds := inspector.Generate(4, 800)
	none := EvaluateMitigation(ds, 0)
	partial := EvaluateMitigation(ds, MitigateRedactMACs)
	full := EvaluateMitigation(ds, MitigateAll)
	if !(full.Reidentified <= partial.Reidentified && partial.Reidentified <= none.Reidentified) {
		t.Fatalf("reidentified counts not monotone: none=%d partial=%d full=%d",
			none.Reidentified, partial.Reidentified, full.Reidentified)
	}
	if full.ReidRate > 0.02 {
		t.Fatalf("full mitigation reid rate %.3f, want ≈0", full.ReidRate)
	}
}

func TestMitigationCachedIdentifiersEquivalent(t *testing.T) {
	ds := inspector.Generate(4, 300)
	ids := ExtractIdentifiers(ds, 4)
	inline := MitigationTable(ds)
	cached := MitigationTableWith(ds, ids)
	if len(inline) != len(cached) {
		t.Fatalf("row counts differ: %d vs %d", len(inline), len(cached))
	}
	for i := range inline {
		if inline[i] != cached[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, inline[i], cached[i])
		}
	}
}

func TestMitigationNames(t *testing.T) {
	if MitigationName(0) != "none" {
		t.Fatal("zero mitigation name")
	}
	if MitigationName(MitigateAll) != "strip-names+randomize-uuids+redact-macs" {
		t.Fatalf("full name: %q", MitigationName(MitigateAll))
	}
}

func TestRandomizedUUIDStableWithinSession(t *testing.T) {
	ds := inspector.Generate(4, 50)
	h := ds.Households[0]
	a := fingerprint(h, nil, MitigateRandomizeUUIDs, 1)
	b := fingerprint(h, nil, MitigateRandomizeUUIDs, 1)
	if a != b {
		t.Fatal("fingerprint unstable within one session")
	}
	c := fingerprint(h, nil, MitigateRandomizeUUIDs, 2)
	if h.Devices[0].Product.ExposesUUID && a == c && a != "" {
		// Only differs when a UUID is actually present.
		hasUUID := false
		for _, d := range h.Devices {
			if d.Product.ExposesUUID {
				hasUUID = true
			}
		}
		if hasUUID {
			t.Fatal("fingerprint identical across sessions despite randomisation")
		}
	}
}
