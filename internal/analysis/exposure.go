package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/dnsmsg"
	"iotlan/internal/matter"
	"iotlan/internal/pcap"
	"iotlan/internal/ssdp"
	"iotlan/internal/tplink"
	"iotlan/internal/tuya"
)

// Table 1's information classes.
const (
	ExpMAC         = "MAC"
	ExpDeviceModel = "Device/Model"
	ExpOSVersion   = "OS Version"
	ExpDisplayName = "Display name"
	ExpUUID        = "UUIDs"
	ExpGWID        = "GWid"
	ExpProdKey     = "Prod. Key"
	ExpOEMID       = "OEM id"
	ExpGeolocation = "Geolocation"
	ExpOutdatedSW  = "Outdated OS/SW"
)

// ExposureFields lists Table 1's columns in order.
var ExposureFields = []string{
	ExpMAC, ExpDeviceModel, ExpOSVersion, ExpDisplayName, ExpUUID,
	ExpGWID, ExpProdKey, ExpOEMID, ExpGeolocation, ExpOutdatedSW,
}

// ExposureRows lists Table 1's protocols in order.
var ExposureRows = []string{"ARP", "DHCP", "mDNS", "SSDP", "TuyaLP", "TPLINK"}

// ExposureMatrix is Table 1: per discovery protocol, which sensitive data
// classes were observed on the wire, with example evidence.
type ExposureMatrix struct {
	// Cells maps (protocol, field) to an evidence sample; presence means
	// exposed.
	Cells map[[2]string]string
}

// Exposed reports whether the (protocol, field) cell is set.
func (m *ExposureMatrix) Exposed(proto, field string) bool {
	_, ok := m.Cells[[2]string{proto, field}]
	return ok
}

// BuildExposure scans a capture for Table 1's exposure matrix.
func BuildExposure(records []pcap.Record) *ExposureMatrix {
	m := &ExposureMatrix{Cells: map[[2]string]string{}}
	set := func(proto, field, evidence string) {
		key := [2]string{proto, field}
		if _, done := m.Cells[key]; !done {
			if len(evidence) > 60 {
				evidence = evidence[:60]
			}
			m.Cells[key] = evidence
		}
	}
	for _, r := range pcap.FilterLocal(records) {
		p := r.Decode()
		switch {
		case p.HasARP:
			set("ARP", ExpMAC, p.ARP.SenderHW.String())
		case p.HasUDP:
			payload := p.AppPayload
			switch {
			case p.UDP.DstPort == 67 || p.UDP.DstPort == 68:
				inspectDHCP(payload, set)
			case p.UDP.SrcPort == 5353 || p.UDP.DstPort == 5353:
				inspectMDNS(payload, set)
			case p.UDP.SrcPort == 1900 || p.UDP.DstPort == 1900 || looksSSDP(payload):
				inspectSSDP(payload, set)
			case p.UDP.DstPort == tuya.PortPlain || p.UDP.DstPort == tuya.PortEncrypted:
				inspectTuya(payload, p.UDP.DstPort == tuya.PortPlain, set)
			case p.UDP.SrcPort == tplink.Port || p.UDP.DstPort == tplink.Port:
				inspectTPLink(payload, set)
			}
		}
	}
	return m
}

func looksSSDP(p []byte) bool {
	return len(p) > 12 && (strings.HasPrefix(string(p[:12]), "HTTP/1.1 200") ||
		strings.HasPrefix(string(p), "M-SEARCH") || strings.HasPrefix(string(p), "NOTIFY"))
}

func inspectDHCP(payload []byte, set func(proto, field, ev string)) {
	if len(payload) < 240 {
		return
	}
	// Walk options for hostname (12) and vendor class (60).
	opts := payload[240:]
	for len(opts) >= 2 && opts[0] != 255 {
		if opts[0] == 0 {
			opts = opts[1:]
			continue
		}
		n := int(opts[1])
		if len(opts) < 2+n {
			return
		}
		val := string(opts[2 : 2+n])
		switch opts[0] {
		case 12:
			set("DHCP", ExpDeviceModel, val)
			if looksLikeDisplayName(val) {
				set("DHCP", ExpDisplayName, val)
			}
			for _, mac := range findMACs(val) {
				set("DHCP", ExpMAC, mac)
			}
		case 60:
			set("DHCP", ExpOSVersion, val)
			if isOutdatedClient(val) {
				set("DHCP", ExpOutdatedSW, val)
			}
		}
		opts = opts[2+n:]
	}
}

func inspectMDNS(payload []byte, set func(proto, field, ev string)) {
	msg, err := dnsmsg.Unmarshal(payload)
	if err != nil {
		return
	}
	for _, rr := range append(msg.Answers, msg.Extra...) {
		fields := append([]string{rr.Name, rr.Target}, rr.TXT...)
		// Matter commissionable instances are bare MACs (§7's criticism of
		// the new standard); check the instance label of _matterc records.
		for _, name := range []string{rr.Name, rr.Target} {
			if label, _, ok := strings.Cut(name, "._matterc"); ok {
				if mac, isMAC := matter.ExposesMAC(label); isMAC {
					set("mDNS", ExpMAC, "matter:"+mac.String())
				}
			}
		}
		for _, f := range fields {
			for _, mac := range findMACs(f) {
				set("mDNS", ExpMAC, mac)
			}
			if looksLikeDisplayName(f) {
				set("mDNS", ExpDisplayName, f)
			}
			if strings.Contains(f, "model=") || strings.Contains(f, "md=") {
				set("mDNS", ExpDeviceModel, f)
			}
			for _, u := range findUUIDs(f) {
				set("mDNS", ExpUUID, u)
			}
		}
	}
}

func inspectSSDP(payload []byte, set func(proto, field, ev string)) {
	msg, err := ssdp.Parse(payload)
	if err != nil {
		return
	}
	if usn := msg.USN(); usn != "" {
		for _, u := range findUUIDs(usn) {
			set("SSDP", ExpUUID, u)
		}
	}
	if server := msg.Header("SERVER"); server != "" {
		set("SSDP", ExpOSVersion, server)
		if strings.Contains(server, "UPnP/1.0") {
			set("SSDP", ExpOutdatedSW, server)
		}
	}
}

func inspectTuya(payload []byte, plaintext bool, set func(proto, field, ev string)) {
	_, body, err := tuya.Unframe(payload)
	if err != nil {
		return
	}
	if !plaintext {
		if body, err = tuya.Decrypt(body); err != nil {
			return
		}
	}
	b, err := tuya.ParseBeacon(body)
	if err != nil {
		return
	}
	if plaintext {
		// Only the 3.1 plaintext beacons count as exposure (§5.1: Jinvoo).
		if b.GWID != "" {
			set("TuyaLP", ExpGWID, b.GWID)
		}
		if b.ProductKey != "" {
			set("TuyaLP", ExpProdKey, b.ProductKey)
		}
	}
}

func inspectTPLink(payload []byte, set func(proto, field, ev string)) {
	info, err := tplink.ParseSysinfoResponse(tplink.Deobfuscate(payload))
	if err != nil {
		return
	}
	if info.MAC != "" {
		set("TPLINK", ExpMAC, info.MAC)
	}
	if info.Model != "" {
		set("TPLINK", ExpDeviceModel, info.Model)
	}
	if info.Alias != "" {
		set("TPLINK", ExpDisplayName, info.Alias)
	}
	if info.OEMID != "" {
		set("TPLINK", ExpOEMID, info.OEMID)
	}
	if info.Latitude != 0 || info.Longitude != 0 {
		set("TPLINK", ExpGeolocation, fmt.Sprintf("%.6f,%.6f", info.Latitude, info.Longitude))
	}
	if info.SWVersion != "" {
		set("TPLINK", ExpOSVersion, info.SWVersion)
	}
}

func looksLikeDisplayName(s string) bool {
	return strings.Contains(s, "'s ") || strings.Contains(s, "-s-") ||
		strings.Contains(s, "Jane") || strings.Contains(s, "Room")
}

func isOutdatedClient(v string) bool {
	for _, old := range []string{"dhcpcd-5.", "dhcpcd-6.", "udhcp 1.19", "udhcp 1.12"} {
		if strings.Contains(v, old) {
			return true
		}
	}
	return false
}

// findMACs locates colon-form MAC substrings.
func findMACs(s string) []string {
	var out []string
	for i := 0; i+17 <= len(s); i++ {
		if isColonMAC(s[i : i+17]) {
			out = append(out, s[i:i+17])
			i += 16
		}
	}
	return out
}

func isColonMAC(s string) bool {
	for i := 0; i < 17; i++ {
		if (i+1)%3 == 0 {
			if s[i] != ':' && s[i] != '-' {
				return false
			}
		} else if !isHexByte(s[i]) {
			return false
		}
	}
	return true
}

func isHexByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

// findUUIDs locates RFC 4122-shaped UUID substrings (8-4-4-4-12 hex).
func findUUIDs(s string) []string {
	var out []string
	lens := []int{8, 4, 4, 4, 12}
	for i := 0; i+36 <= len(s); i++ {
		ok := true
		pos := i
		for seg, l := range lens {
			for j := 0; j < l; j++ {
				if !isHexByte(s[pos]) {
					ok = false
					break
				}
				pos++
			}
			if !ok {
				break
			}
			if seg < len(lens)-1 {
				if s[pos] != '-' {
					ok = false
					break
				}
				pos++
			}
		}
		if ok {
			out = append(out, s[i:i+36])
			i += 35
		}
	}
	return out
}

// RenderExposure prints Table 1.
func RenderExposure(m *ExposureMatrix) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "")
	for _, f := range ExposureFields {
		fmt.Fprintf(&sb, "%-15s", f)
	}
	sb.WriteByte('\n')
	for _, proto := range ExposureRows {
		fmt.Fprintf(&sb, "%-8s", proto)
		for _, f := range ExposureFields {
			cell := " "
			if m.Exposed(proto, f) {
				cell = "●"
			}
			fmt.Fprintf(&sb, "%-15s", cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ExposureEvidence lists the matrix's evidence rows sorted for reports.
func ExposureEvidence(m *ExposureMatrix) []string {
	var out []string
	for key, ev := range m.Cells {
		out = append(out, fmt.Sprintf("%s → %s: %s", key[0], key[1], ev))
	}
	sort.Strings(out)
	return out
}
