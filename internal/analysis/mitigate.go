package analysis

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/inspector"
)

// Mitigation is one of the §7 countermeasures: data-exposure minimisation
// and identifier randomisation, evaluated here as the paper's discussion
// proposes ("promoting … data exposure minimization or ID randomization").
type Mitigation int

// Mitigations.
const (
	// MitigateStripNames removes user-assigned display names from
	// discovery payloads (Könings et al.'s naming-convention fix).
	MitigateStripNames Mitigation = 1 << iota
	// MitigateRandomizeUUIDs replaces stable UUIDs with per-session values.
	MitigateRandomizeUUIDs
	// MitigateRedactMACs removes MAC addresses from payloads (Matter still
	// fails this, §7).
	MitigateRedactMACs
)

// MitigateAll applies every countermeasure.
const MitigateAll = MitigateStripNames | MitigateRandomizeUUIDs | MitigateRedactMACs

// fingerprint builds a household's identifier fingerprint for one session.
// Mitigations transform identifiers the way a compliant device firmware
// would; session distinguishes per-session randomised values. cache may be
// nil (identifiers are then extracted inline).
func fingerprint(h *inspector.Household, cache *ExtractedIdentifiers, m Mitigation, session int) string {
	var parts []string
	for _, d := range h.Devices {
		ids := cache.Of(d)
		if m&MitigateStripNames == 0 {
			parts = append(parts, ids[IDName]...)
		}
		for _, u := range ids[IDUUID] {
			if m&MitigateRandomizeUUIDs != 0 {
				// A fresh UUID each session: stable across this session's
				// observations, useless across sessions.
				sum := sha256.Sum256([]byte(fmt.Sprintf("rand:%s:%s:%d", h.ID, u, session)))
				u = fmt.Sprintf("%x", sum[:16])
			}
			parts = append(parts, u)
		}
		if m&MitigateRedactMACs == 0 {
			parts = append(parts, ids[IDMAC]...)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// ReidentificationResult quantifies a tracker's power under a mitigation
// regime: the share of households whose session-1 fingerprint re-identifies
// them uniquely in session 2, and the anonymity-set entropy (Table 2's
// metric) of the session-2 fingerprints.
type ReidentificationResult struct {
	Mitigation Mitigation
	// Households with a non-empty fingerprint in both sessions.
	Households int
	// Reidentified counts unique cross-session matches.
	Reidentified int
	// ReidRate is Reidentified/Households.
	ReidRate float64
	// EntropyBits is the fingerprint-distribution entropy in session 2
	// (high = fingerprintable; ~0 after full mitigation).
	EntropyBits float64
}

// EvaluateMitigation simulates two observation sessions of the same
// households and measures cross-session linkability. An unmitigated corpus
// re-identifies ~everything; per-session UUID randomisation plus MAC/name
// minimisation collapses it. Equivalent to EvaluateMitigationWith(ds, nil, m).
func EvaluateMitigation(ds *inspector.Dataset, m Mitigation) ReidentificationResult {
	return EvaluateMitigationWith(ds, nil, m)
}

// EvaluateMitigationWith evaluates one mitigation regime reusing a
// precomputed identifier extraction (nil extracts inline).
func EvaluateMitigationWith(ds *inspector.Dataset, ids *ExtractedIdentifiers, m Mitigation) ReidentificationResult {
	session1 := map[string]string{} // fingerprint → household (unique only)
	dup1 := map[string]bool{}
	for _, h := range ds.Households {
		fp := fingerprint(h, ids, m, 1)
		if fp == "" {
			continue
		}
		if _, seen := session1[fp]; seen {
			dup1[fp] = true
		}
		session1[fp] = h.ID
	}
	res := ReidentificationResult{Mitigation: m}
	counts := map[string]int{}
	for _, h := range ds.Households {
		fp2 := fingerprint(h, ids, m, 2)
		if fp2 == "" {
			continue
		}
		res.Households++
		counts[fp2]++
		if owner, ok := session1[fp2]; ok && !dup1[fp2] && owner == h.ID {
			res.Reidentified++
		}
	}
	if res.Households > 0 {
		res.ReidRate = float64(res.Reidentified) / float64(res.Households)
	}
	res.EntropyBits = shannon(counts, res.Households)
	return res
}

// MitigationName renders a mitigation set for reports.
func MitigationName(m Mitigation) string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m&MitigateStripNames != 0 {
		parts = append(parts, "strip-names")
	}
	if m&MitigateRandomizeUUIDs != 0 {
		parts = append(parts, "randomize-uuids")
	}
	if m&MitigateRedactMACs != 0 {
		parts = append(parts, "redact-macs")
	}
	return strings.Join(parts, "+")
}

// MitigationTable sweeps the countermeasure lattice, the §7 what-if study.
// Equivalent to MitigationTableWith(ds, nil).
func MitigationTable(ds *inspector.Dataset) []ReidentificationResult {
	return MitigationTableWith(ds, nil)
}

// MitigationTableWith sweeps the lattice reusing a precomputed identifier
// extraction — one extraction pass instead of one per (regime, session).
// Defined as the single-partial merge (partial.go), the same path the
// sharded serving layer takes, so partitioned and whole-corpus sweeps are
// byte-identical by construction.
func MitigationTableWith(ds *inspector.Dataset, ids *ExtractedIdentifiers) []ReidentificationResult {
	return MergeMitigations([]*MitigationPartial{MitigationPartialOf(ds.Households, ids)})
}

// RenderMitigationTable prints the sweep.
func RenderMitigationTable(rows []ReidentificationResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %10s %12s %10s\n", "mitigation", "households", "reid-rate", "entropy")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %10d %11.1f%% %9.1f\n",
			MitigationName(r.Mitigation), r.Households, 100*r.ReidRate, r.EntropyBits)
	}
	return sb.String()
}
