package analysis

import (
	"fmt"
	"sort"
	"strings"

	"iotlan/internal/app"
	"iotlan/internal/classify"
	"iotlan/internal/device"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
	"iotlan/internal/scan"
)

// ProtocolPrevalence is one Figure 2 bar: the share of devices (or apps)
// observed using a protocol, per observation method.
type ProtocolPrevalence struct {
	Protocol string
	// PassivePct is the share of devices seen using the protocol in
	// passive captures (blue bars).
	PassivePct float64
	// ScanPct is the share of devices with a matching open service
	// (orange bars).
	ScanPct float64
	// AppPct is the share of tested apps using the protocol (green bars,
	// N = apps not devices).
	AppPct float64
}

// ProtocolTable builds Figure 2 from the three observation methods.
func ProtocolTable(records []pcap.Record, devices []*device.Device,
	scans map[string]*scan.Result, apps []app.App) []ProtocolPrevalence {

	passive := passiveProtocolsPerDevice(records, devices)
	counts := map[string]map[string]bool{} // protocol → device set
	mark := func(proto, devName string) {
		if counts[proto] == nil {
			counts[proto] = map[string]bool{}
		}
		counts[proto][devName] = true
	}
	for dev, protos := range passive {
		for proto := range protos {
			mark(proto, dev)
		}
	}

	scanned := map[string]map[string]bool{}
	markScan := func(proto, devName string) {
		if scanned[proto] == nil {
			scanned[proto] = map[string]bool{}
		}
		scanned[proto][devName] = true
	}
	for devName, res := range scans {
		for _, port := range res.TCPOpen {
			markScan(scanLabel("tcp", port), devName)
		}
		for _, port := range res.UDPOpen {
			markScan(scanLabel("udp", port), devName)
		}
	}

	appStats := app.Summarize(apps)
	appPct := map[string]float64{
		"mDNS":    pct(appStats.MDNS, appStats.Total),
		"SSDP":    pct(appStats.SSDP, appStats.Total),
		"NETBIOS": pct(appStats.NetBIOS, appStats.Total),
		"TLS":     pct(appStats.TLS, appStats.Total),
	}

	names := map[string]bool{}
	for p := range counts {
		names[p] = true
	}
	for p := range scanned {
		names[p] = true
	}
	for p := range appPct {
		names[p] = true
	}
	nDev := len(devices)
	var out []ProtocolPrevalence
	for p := range names {
		out = append(out, ProtocolPrevalence{
			Protocol:   p,
			PassivePct: pct(len(counts[p]), nDev),
			ScanPct:    pct(len(scanned[p]), nDev),
			AppPct:     appPct[p],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PassivePct != out[j].PassivePct {
			return out[i].PassivePct > out[j].PassivePct
		}
		return out[i].Protocol < out[j].Protocol
	})
	return out
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// passiveProtocolsPerDevice labels every local packet/flow and attributes
// protocols to source devices.
func passiveProtocolsPerDevice(records []pcap.Record, devices []*device.Device) map[string]map[string]bool {
	byMAC := map[netx.MAC]string{}
	for _, d := range devices {
		byMAC[d.MAC()] = d.Profile.Name
	}
	out := map[string]map[string]bool{}
	mark := func(dev, proto string) {
		if dev == "" || proto == classify.Unknown {
			return
		}
		if out[dev] == nil {
			out[dev] = map[string]bool{}
		}
		out[dev][proto] = true
	}
	local := pcap.FilterLocal(records)
	flows, _ := classify.Assemble(local)
	final := classify.Final{}
	labels := map[classify.FlowKey]string{}
	for _, f := range flows {
		labels[f.Key] = canonicalLabel(final.Classify(f))
	}
	// Attribution is per packet, not per flow: broadcast exchanges like
	// DHCP share one 5-tuple across every client, so the flow's SrcMAC
	// would credit only the first device.
	for _, r := range local {
		p := r.Decode()
		proto, sp, dp := p.Transport()
		if proto == "" {
			mark(byMAC[p.Eth.Src], canonicalLabel(p.L3Name()))
			continue
		}
		key := classify.FlowKey{Src: p.SrcIP(), SrcPort: sp, Dst: p.DstIP(), DstPort: dp, Proto: proto}
		mark(byMAC[p.Eth.Src], labels[key])
	}
	return out
}

// canonicalLabel maps classifier labels onto Figure 2's x-axis vocabulary.
func canonicalLabel(l string) string {
	switch l {
	case "MDNS":
		return "mDNS"
	case "TPLINK-SMARTHOME":
		return "TPLINK_SHP"
	case "TUYALP":
		return "TuyaLP"
	case "UDP-DATA":
		return "UNKNOWN"
	}
	return l
}

// scanLabel maps an open port to Figure 2's scan vocabulary via the nmap
// table (uppercased, as the figure prints them).
func scanLabel(proto string, port uint16) string {
	name := scan.GuessService(proto, port)
	switch name {
	case "http", "http-alt":
		return "HTTP"
	case "https", "https-alt":
		return "HTTPS"
	case "domain":
		return "DNS"
	case "zeroconf":
		return "mDNS"
	case "upnp":
		return "SSDP"
	case "telnet":
		return "TELNET"
	case "netbios-ns":
		return "NETBIOS"
	case "ajp13":
		return "AJP"
	case "ptp-general":
		return "PTP"
	case "snmp":
		return "SNMP"
	case "socks5":
		return "SOCKS5"
	case "cslistener":
		return "CSLISTENER"
	case "ezmeeting-2":
		return "EZMEETING-2"
	case "scp-config":
		return "SCP-CONFIG"
	case "weave":
		return "WEAVE"
	case "rmonitor":
		return "RMONITOR"
	case "irc", "ircu":
		return "IRC"
	case "dhcpc", "dhcps":
		return "DHCP"
	case "unknown":
		if proto == "tcp" {
			return "OTHER-TCP"
		}
		return "OTHER-UDP"
	default:
		if proto == "tcp" {
			return "OTHER-TCP"
		}
		return "OTHER-UDP"
	}
}

// RenderProtocolTable prints Figure 2 as rows.
func RenderProtocolTable(rows []ProtocolPrevalence) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %9s %9s %9s\n", "protocol", "passive%", "scan%", "apps%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %9.1f %9.1f %9.1f\n", r.Protocol, r.PassivePct, r.ScanPct, r.AppPct)
	}
	return sb.String()
}

// AvgProtocolsPerDevice reports the mean protocol count per device
// ("an average IoT device supports 8 different protocols", §4.1) and the
// maximum observed.
func AvgProtocolsPerDevice(records []pcap.Record, devices []*device.Device) (avg float64, max int, maxDev string) {
	per := passiveProtocolsPerDevice(records, devices)
	total := 0
	for dev, protos := range per {
		total += len(protos)
		if len(protos) > max {
			max = len(protos)
			maxDev = dev
		}
	}
	if len(per) > 0 {
		avg = float64(total) / float64(len(per))
	}
	return avg, max, maxDev
}
