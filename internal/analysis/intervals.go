package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/netx"
	"iotlan/internal/pcap"
)

// IntervalRow summarises one device's discovery cadence on one protocol —
// the §5.1 "Discovery Intervals" analysis.
type IntervalRow struct {
	Device   string
	Vendor   string
	Protocol string
	// Median is the median inter-transmission gap.
	Median time.Duration
	// Count is the number of transmissions observed.
	Count int
}

// DiscoveryIntervals measures per-device, per-protocol multicast/broadcast
// discovery cadences from a capture.
func DiscoveryIntervals(records []pcap.Record, devices []*device.Device) []IntervalRow {
	byMAC := map[netx.MAC]*device.Device{}
	for _, d := range devices {
		byMAC[d.MAC()] = d
	}
	type key struct {
		dev   *device.Device
		proto string
	}
	times := map[key][]time.Time{}
	for _, r := range records {
		p := r.Decode()
		if !p.HasUDP || !p.Eth.Dst.IsMulticast() {
			continue
		}
		proto, ok := discoveryPorts[p.UDP.DstPort]
		if !ok {
			continue
		}
		// For mDNS, measure active queries only (QR=0): multicast responses
		// follow other devices' query schedules, not this device's cadence.
		if proto == "mDNS" {
			if len(p.AppPayload) < 3 || p.AppPayload[2]&0x80 != 0 {
				continue
			}
		}
		// For SSDP, measure M-SEARCH cadence (the §5.1 numbers), skipping
		// NOTIFY presence announcements.
		if proto == "SSDP" && !strings.HasPrefix(string(p.AppPayload), "M-SEARCH") {
			continue
		}
		d, ok := byMAC[p.Eth.Src]
		if !ok {
			continue
		}
		k := key{dev: d, proto: proto}
		times[k] = append(times[k], r.Time)
	}
	var rows []IntervalRow
	for k, ts := range times {
		if len(ts) < 3 {
			continue
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
		var gaps []time.Duration
		for i := 1; i < len(ts); i++ {
			gaps = append(gaps, ts[i].Sub(ts[i-1]))
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		rows = append(rows, IntervalRow{
			Device:   k.dev.Profile.Name,
			Vendor:   k.dev.Profile.Vendor,
			Protocol: k.proto,
			Median:   gaps[len(gaps)/2],
			Count:    len(ts),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Device != rows[j].Device {
			return rows[i].Device < rows[j].Device
		}
		return rows[i].Protocol < rows[j].Protocol
	})
	return rows
}

// VendorMedian returns the median discovery interval across a vendor's
// devices for one protocol (e.g. Google SSDP ≈ 20 s, Echo SSDP ≈ 2–3 h).
func VendorMedian(rows []IntervalRow, vendor, proto string) (time.Duration, bool) {
	var meds []time.Duration
	for _, r := range rows {
		if r.Vendor == vendor && r.Protocol == proto {
			meds = append(meds, r.Median)
		}
	}
	if len(meds) == 0 {
		return 0, false
	}
	sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
	return meds[len(meds)/2], true
}

// RenderIntervals prints the interval rows.
func RenderIntervals(rows []IntervalRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-10s %-8s %12s %7s\n", "device", "vendor", "proto", "median", "count")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %-10s %-8s %12s %7d\n",
			r.Device, r.Vendor, r.Protocol, r.Median.Truncate(time.Second), r.Count)
	}
	return sb.String()
}
