package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"iotlan/internal/engine"
	"iotlan/internal/inspector"
)

// IdentifierType enumerates Table 2's identifier classes.
type IdentifierType int

// Identifier classes, in Table 2 order.
const (
	IDName IdentifierType = iota
	IDUUID
	IDMAC
)

// String renders the class name.
func (t IdentifierType) String() string {
	return [...]string{"name", "UUID", "MAC"}[t]
}

// EntropyRow is one Table 2 row: devices exposing a particular combination
// of identifier types.
type EntropyRow struct {
	// Types is the exposed identifier combination (empty = none).
	Types []IdentifierType
	// Products / Vendors / Devices / Households count the population.
	Products, Vendors, Devices, Households int
	// UniqueHouseholds counts households whose identifier combination is
	// unique across the dataset; UniquePct is the Table 2 percentage.
	UniqueHouseholds int
	UniquePct        float64
	// EntropyBits is the Shannon entropy of the identifier-value
	// distribution over households.
	EntropyBits float64
}

// Key renders the combination label ("UUID, MAC").
func (r EntropyRow) Key() string {
	if len(r.Types) == 0 {
		return "none"
	}
	parts := make([]string, len(r.Types))
	for i, t := range r.Types {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// identifierSet is one device's extracted identifiers by class.
type identifierSet = map[IdentifierType][]string

// ExtractedIdentifiers is the fingerprint analogue of the decode-once
// packet index: per-device identifier extractions (§6.3's regex passes, the
// hot loop of Table 2 and the §7 sweep) computed a single time — optionally
// sharded across workers — and shared read-only by every consumer.
type ExtractedIdentifiers struct {
	byDevice map[*inspector.Device]identifierSet
}

// ExtractIdentifiers runs the extraction over the whole corpus, sharding
// households across workers (values < 1 mean one per CPU). Extraction is a
// pure per-device function, so any worker count yields identical results.
func ExtractIdentifiers(ds *inspector.Dataset, workers int) *ExtractedIdentifiers {
	perHousehold := engine.Map(workers, len(ds.Households), func(i int) []identifierSet {
		hh := ds.Households[i]
		out := make([]identifierSet, len(hh.Devices))
		for j, d := range hh.Devices {
			out[j] = extractIdentifiers(d)
		}
		return out
	})
	byDevice := make(map[*inspector.Device]identifierSet, len(ds.Households)*3)
	for i, hh := range ds.Households {
		for j, d := range hh.Devices {
			byDevice[d] = perHousehold[i][j]
		}
	}
	return &ExtractedIdentifiers{byDevice: byDevice}
}

// Of returns a device's identifiers. A nil receiver (or an unknown device)
// falls back to direct extraction, so call sites need no nil checks.
func (e *ExtractedIdentifiers) Of(d *inspector.Device) identifierSet {
	if e != nil {
		if ids, ok := e.byDevice[d]; ok {
			return ids
		}
	}
	return extractIdentifiers(d)
}

// extractIdentifiers pulls names, UUIDs and OUI-validated MACs from a
// device's discovery payloads — §6.3's three regex classes.
func extractIdentifiers(d *inspector.Device) map[IdentifierType][]string {
	out := map[IdentifierType][]string{}
	for _, payload := range append(append([]string{}, d.MDNS...), d.SSDP...) {
		// Names: an English word, apostrophe-s, space, word.
		for _, n := range findPossessives(payload) {
			out[IDName] = append(out[IDName], n)
		}
		for _, u := range findUUIDs(payload) {
			out[IDUUID] = append(out[IDUUID], u)
		}
		for _, m := range findMACs(payload) {
			// OUI validation: keep only MACs whose OUI matches the one IoT
			// Inspector recorded for the device (§6.3's false-positive
			// filter).
			if strings.HasPrefix(strings.ToLower(m), strings.ToLower(d.OUI.String())) {
				out[IDMAC] = append(out[IDMAC], strings.ToLower(m))
			}
		}
	}
	return out
}

// findPossessives matches "Word's Word" (the paper's name regex).
func findPossessives(s string) []string {
	var out []string
	for i := 0; i+2 < len(s); i++ {
		if s[i] == '\'' && i+2 < len(s) && s[i+1] == 's' && s[i+2] == ' ' {
			// Walk back over the preceding word.
			j := i
			for j > 0 && isLetter(s[j-1]) {
				j--
			}
			// And forward over the following word.
			k := i + 3
			for k < len(s) && isLetter(s[k]) {
				k++
			}
			if j < i && k > i+3 {
				out = append(out, s[j:k])
			}
		}
	}
	return out
}

func isLetter(b byte) bool { return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' }

// EntropyTable computes Table 2 over a crowdsourced dataset, extracting
// identifiers inline. Equivalent to EntropyTableWith(ds, nil).
func EntropyTable(ds *inspector.Dataset) []EntropyRow {
	return EntropyTableWith(ds, nil)
}

// EntropyTableWith computes Table 2 reusing a precomputed identifier
// extraction (nil extracts inline). It is defined as the single-partial
// merge — the same aggregation path the sharded serving layer uses — so a
// whole-corpus pass and a merged partition are byte-identical by
// construction (see partial.go). Per-identifier-type entropy over all
// households exposing that type lands in the combination rows as the sum of
// their types' entropies (the paper's Ent column is additive: 12.3 ≈ 3.4 +
// 8.9).
func EntropyTableWith(ds *inspector.Dataset, ids *ExtractedIdentifiers) []EntropyRow {
	return MergeEntropy([]*EntropyPartial{EntropyPartialOf(ds.Households, ids)})
}

// shannon computes H = Σ p·log2(1/p) over the fingerprint distribution.
// Terms are summed in sorted key order: floating-point addition is not
// associative, so map-order summation would make the last ULP vary between
// runs — breaking the engine's byte-identical-output contract.
func shannon(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := 0.0
	for _, k := range keys {
		p := float64(counts[k]) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// RenderEntropyTable prints Table 2.
func RenderEntropyTable(rows []EntropyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-2s %5s %5s %7s %7s  %-18s %18s %6s\n",
		"#", "Pdt", "Vdr", "Dev", "ΣHse", "Identifier(s)", "Hse (unique%)", "Ent")
	for _, r := range rows {
		uniq := "N/A"
		if len(r.Types) > 0 {
			uniq = fmt.Sprintf("%d (%.1f%%)", r.Households, r.UniquePct)
		}
		ent := "N/A"
		if len(r.Types) > 0 {
			ent = fmt.Sprintf("%.1f", r.EntropyBits)
		}
		fmt.Fprintf(&sb, "%-2d %5d %5d %7d %7d  %-18s %18s %6s\n",
			len(r.Types), r.Products, r.Vendors, r.Devices, r.Households, r.Key(), uniq, ent)
	}
	return sb.String()
}
