// Package analysis implements the paper's measurement analyses over
// captures and datasets: the device-to-device communication graph (Fig. 1,
// Fig. 4), protocol prevalence (Fig. 2), the information-exposure matrix
// (Table 1), household-fingerprint entropy (Table 2), discovery-response
// correlation (Table 4), discovery intervals (§5.1) and DFT/autocorrelation
// periodicity (Appendix D.1).
package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"iotlan/internal/classify"
	"iotlan/internal/device"
	"iotlan/internal/pcap"
)

// EdgeKind distinguishes transport protocols on a graph edge.
type EdgeKind int

// Edge kinds: TCP-only (solid), UDP-only (dashed), both (thick solid).
const (
	EdgeTCP EdgeKind = 1 << iota
	EdgeUDP
)

// Graph is the device-to-device unicast communication graph of Figure 1.
type Graph struct {
	// Edges maps unordered device-name pairs to observed transports.
	Edges map[[2]string]EdgeKind
	// Talkers is the set of devices with at least one local unicast peer.
	Talkers map[string]bool
	// Devices is the total population.
	Devices int
}

// BuildGraph assembles the graph from a capture, attributing addresses to
// devices. Multicast/broadcast discovery traffic is excluded, matching the
// figure.
func BuildGraph(records []pcap.Record, devices []*device.Device) *Graph {
	byIP := map[netip.Addr]string{}
	byName := map[string]*device.Device{}
	for _, d := range devices {
		if d.IP().IsValid() {
			byIP[d.IP()] = d.Profile.Name
		}
		if d.Host.IPv6().IsValid() {
			byIP[d.Host.IPv6()] = d.Profile.Name
		}
		byName[d.Profile.Name] = d
	}
	g := &Graph{Edges: map[[2]string]EdgeKind{}, Talkers: map[string]bool{}, Devices: len(devices)}
	flows, _ := classify.Assemble(records)
	// Figure 1 excludes discovery protocols *and their interactions*: the
	// unicast responses riding discovery UDP ports, and the UPnP
	// description/control HTTP exchanges those discoveries trigger.
	excluded := map[classify.FlowKey]bool{}
	for _, f := range flows {
		skip := false
		if f.Key.Proto == "udp" && (isDiscoveryPort(f.Key.SrcPort) || isDiscoveryPort(f.Key.DstPort)) {
			skip = true
		}
		for _, payload := range f.Payloads {
			s := string(payload)
			if strings.HasPrefix(s, "GET /description.xml") ||
				strings.Contains(s, "<root") && strings.Contains(s, "UDN") {
				skip = true
			}
		}
		if skip {
			excluded[f.Key] = true
			excluded[f.Key.Reverse()] = true
		}
	}
	for _, f := range flows {
		if excluded[f.Key] {
			continue
		}
		if f.Key.Dst.IsMulticast() || !f.Key.Dst.IsValid() {
			continue
		}
		src, okS := byIP[f.Key.Src]
		dstName, okD := byIP[f.Key.Dst]
		if !okS || !okD || src == dstName {
			continue
		}
		key := pairKey(src, dstName)
		kind := EdgeUDP
		if f.Key.Proto == "tcp" {
			kind = EdgeTCP
		}
		g.Edges[key] |= kind
		g.Talkers[src] = true
		g.Talkers[dstName] = true
	}
	return g
}

// isDiscoveryPort covers the discovery/bootstrap UDP ports excluded from
// the device graph.
func isDiscoveryPort(p uint16) bool {
	switch p {
	case 53, 67, 68, 137, 1900, 5353, 5683, 6666, 6667, 9999, 56700:
		return true
	}
	return false
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// TalkerFraction is Figure 1's headline: the share of devices with at least
// one local unicast peer (43/93 in the paper).
func (g *Graph) TalkerFraction() float64 {
	if g.Devices == 0 {
		return 0
	}
	return float64(len(g.Talkers)) / float64(g.Devices)
}

// VendorClusters groups edges by the vendor pair they connect (Figure 4).
func VendorClusters(g *Graph, devices []*device.Device) map[string]int {
	vendorOf := map[string]string{}
	for _, d := range devices {
		vendorOf[d.Profile.Name] = d.Profile.Vendor
	}
	out := map[string]int{}
	for key := range g.Edges {
		va, vb := vendorOf[key[0]], vendorOf[key[1]]
		if va > vb {
			va, vb = vb, va
		}
		out[va+"↔"+vb]++
	}
	return out
}

// IntraVendorFraction reports the share of edges connecting same-vendor or
// same-platform devices — the clustering Figure 1 shows.
func IntraClusterFraction(g *Graph, devices []*device.Device) float64 {
	meta := map[string]*device.Profile{}
	for _, d := range devices {
		meta[d.Profile.Name] = d.Profile
	}
	if len(g.Edges) == 0 {
		return 0
	}
	intra := 0
	for key := range g.Edges {
		a, b := meta[key[0]], meta[key[1]]
		if a == nil || b == nil {
			continue
		}
		if a.Vendor == b.Vendor || (a.Platform != device.PlatformNone && a.Platform == b.Platform) {
			intra++
		}
	}
	return float64(intra) / float64(len(g.Edges))
}

// RenderGraph prints edges sorted, with Figure 1's line-style vocabulary.
func RenderGraph(g *Graph) string {
	keys := make([][2]string, 0, len(g.Edges))
	for k := range g.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "device-to-device graph: %d/%d devices talk locally, %d edges\n",
		len(g.Talkers), g.Devices, len(g.Edges))
	for _, k := range keys {
		style := "UDP (dashed)"
		switch g.Edges[k] {
		case EdgeTCP:
			style = "TCP (solid)"
		case EdgeTCP | EdgeUDP:
			style = "TCP+UDP (thick)"
		}
		fmt.Fprintf(&sb, "  %-22s -- %-22s %s\n", k[0], k[1], style)
	}
	return sb.String()
}
