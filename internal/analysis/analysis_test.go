package analysis

import (
	"strings"
	"testing"
	"time"

	"iotlan/internal/device"
	"iotlan/internal/inspector"
	"iotlan/internal/testbed"
)

// sharedLab runs one 45-minute full-catalog capture for all analyses.
var sharedLab *testbed.Lab

func lab(t *testing.T) *testbed.Lab {
	t.Helper()
	if sharedLab == nil {
		sharedLab = testbed.New(11)
		sharedLab.Start()
		sharedLab.RunIdle(45 * time.Minute)
		sharedLab.Interact(60)
	}
	return sharedLab
}

func TestGraphTalkerFraction(t *testing.T) {
	l := lab(t)
	g := BuildGraph(l.Capture.All, l.Devices)
	frac := g.TalkerFraction()
	// Paper: 43/93 ≈ 0.46 of devices talk locally over unicast.
	if frac < 0.2 || frac > 0.8 {
		t.Fatalf("talker fraction %.2f outside plausible band", frac)
	}
	if len(g.Edges) < 10 {
		t.Fatalf("only %d edges", len(g.Edges))
	}
}

func TestGraphClustersAreVendorAligned(t *testing.T) {
	l := lab(t)
	g := BuildGraph(l.Capture.All, l.Devices)
	frac := IntraClusterFraction(g, l.Devices)
	// Figure 1/4: edges concentrate inside vendor/platform clusters.
	if frac < 0.5 {
		t.Fatalf("intra-cluster edge fraction %.2f, want ≥0.5", frac)
	}
	clusters := VendorClusters(g, l.Devices)
	if clusters["Amazon↔Amazon"] == 0 {
		t.Error("no Amazon-internal edges")
	}
	if len(RenderGraph(g)) == 0 {
		t.Error("empty graph render")
	}
}

func TestProtocolTableShape(t *testing.T) {
	l := lab(t)
	rows := ProtocolTable(l.Capture.All, l.Devices, nil, nil)
	get := func(name string) float64 {
		for _, r := range rows {
			if r.Protocol == name {
				return r.PassivePct
			}
		}
		return 0
	}
	// Figure 2's ordering: management protocols near-universal, discovery
	// protocols high, proprietary protocols lower.
	if arp := get("ARP"); arp < 80 {
		t.Errorf("ARP prevalence %.1f%%, want ≥80%%", arp)
	}
	if dhcp := get("DHCP"); dhcp < 80 {
		t.Errorf("DHCP prevalence %.1f%%, want ≥80%%", dhcp)
	}
	if m := get("mDNS"); m < 30 || m > 60 {
		t.Errorf("mDNS prevalence %.1f%%, want ≈44%%", m)
	}
	if s := get("SSDP"); s < 15 || s > 50 {
		t.Errorf("SSDP prevalence %.1f%%, want ≈32%%", s)
	}
	if tp := get("TPLINK_SHP"); tp < 2 {
		t.Errorf("TPLINK_SHP prevalence %.1f%%", tp)
	}
	if eap := get("EAPOL"); eap < 60 {
		t.Errorf("EAPOL prevalence %.1f%%, want ≈84%%", eap)
	}
	if RenderProtocolTable(rows) == "" {
		t.Error("empty render")
	}
}

func TestAvgProtocolsPerDevice(t *testing.T) {
	l := lab(t)
	avg, max, maxDev := AvgProtocolsPerDevice(l.Capture.All, l.Devices)
	// Paper: average ≈8, max 16 (Nest Hub). The simulated protocol universe
	// is a subset, so accept a broad band around the shape.
	if avg < 2 || avg > 12 {
		t.Errorf("avg protocols per device %.1f", avg)
	}
	if max < 5 {
		t.Errorf("max protocols %d (%s)", max, maxDev)
	}
	if !strings.Contains(maxDev, "google") && !strings.Contains(maxDev, "echo") && !strings.Contains(maxDev, "chromecast") {
		t.Logf("note: busiest device is %s with %d protocols", maxDev, max)
	}
}

func TestExposureMatrix(t *testing.T) {
	l := lab(t)
	m := BuildExposure(l.Capture.All)
	// Table 1's filled cells.
	want := [][2]string{
		{"ARP", ExpMAC},
		{"DHCP", ExpDeviceModel},
		{"DHCP", ExpOSVersion},
		{"DHCP", ExpDisplayName},
		{"DHCP", ExpOutdatedSW},
		{"mDNS", ExpMAC},
		{"mDNS", ExpDisplayName},
		{"mDNS", ExpUUID},
		{"mDNS", ExpDeviceModel},
		{"SSDP", ExpUUID},
		{"SSDP", ExpOSVersion},
		{"SSDP", ExpOutdatedSW},
		{"TuyaLP", ExpGWID},
		{"TuyaLP", ExpProdKey},
		{"TPLINK", ExpGeolocation},
		{"TPLINK", ExpOEMID},
		{"TPLINK", ExpDisplayName},
		{"TPLINK", ExpMAC},
	}
	for _, cell := range want {
		if !m.Exposed(cell[0], cell[1]) {
			t.Errorf("Table 1 cell (%s, %s) not observed", cell[0], cell[1])
		}
	}
	// Negative cells: ARP exposes nothing beyond the MAC.
	if m.Exposed("ARP", ExpUUID) || m.Exposed("ARP", ExpGeolocation) {
		t.Error("ARP should expose only MACs")
	}
	if RenderExposure(m) == "" || len(ExposureEvidence(m)) == 0 {
		t.Error("render/evidence empty")
	}
}

func TestEntropyTable(t *testing.T) {
	ds := inspector.Generate(3, 3860)
	rows := EntropyTable(ds)
	byKey := map[string]EntropyRow{}
	for _, r := range rows {
		byKey[r.Key()] = r
	}
	// Table 2's structure: a large no-exposure class, UUID-only the biggest
	// exposing class, high uniqueness for UUID-bearing combos, entropy
	// rising with identifier count.
	none, ok := byKey["none"]
	if !ok || none.Households < 500 {
		t.Fatalf("no-exposure row: %+v", none)
	}
	uuid := byKey["UUID"]
	if uuid.Households < 1000 {
		t.Fatalf("UUID-only row too small: %+v", uuid)
	}
	if uuid.UniquePct < 90 {
		t.Errorf("UUID uniqueness %.1f%%, want ≥90%% (paper: 94.2%%)", uuid.UniquePct)
	}
	mac := byKey["MAC"]
	if mac.Households == 0 || mac.UniquePct < 90 {
		t.Errorf("MAC row: %+v (paper: 94.4%% unique)", mac)
	}
	um := byKey["UUID, MAC"]
	if um.Households == 0 || um.UniquePct < 90 {
		t.Errorf("UUID+MAC row: %+v (paper: 95.6%%)", um)
	}
	if um.EntropyBits <= uuid.EntropyBits/2 {
		t.Errorf("entropy should grow with combined identifiers: UUID=%.1f UUID+MAC=%.1f",
			uuid.EntropyBits, um.EntropyBits)
	}
	all := byKey["name, UUID, MAC"]
	if all.Households == 0 {
		t.Error("no household exposes all three identifier classes")
	} else if all.UniquePct < 99 {
		t.Errorf("all-three uniqueness %.1f%%, want ~100%%", all.UniquePct)
	}
	if RenderEntropyTable(rows) == "" {
		t.Error("empty render")
	}
}

func TestEntropyTableCachedIdentifiersEquivalent(t *testing.T) {
	ds := inspector.Generate(3, 500)
	inline := EntropyTable(ds)
	for _, workers := range []int{1, 8} {
		cached := EntropyTableWith(ds, ExtractIdentifiers(ds, workers))
		if RenderEntropyTable(inline) != RenderEntropyTable(cached) {
			t.Fatalf("workers=%d: cached extraction changed Table 2", workers)
		}
	}
}

func TestPossessiveNameRegex(t *testing.T) {
	got := findPossessives("Roku 3 - Jane's Room and Bob's Kitchen")
	if len(got) != 2 || got[0] != "Jane's Room" || got[1] != "Bob's Kitchen" {
		t.Fatalf("possessives: %v", got)
	}
	if n := findPossessives("no names here"); len(n) != 0 {
		t.Fatalf("false positives: %v", n)
	}
}

func TestFindUUIDs(t *testing.T) {
	got := findUUIDs("USN: uuid:2f402f80-da50-11e1-9b23-001788685f61::upnp:rootdevice")
	if len(got) != 1 || got[0] != "2f402f80-da50-11e1-9b23-001788685f61" {
		t.Fatalf("uuids: %v", got)
	}
	if n := findUUIDs("not-a-uuid-at-all"); len(n) != 0 {
		t.Fatalf("false positives: %v", n)
	}
}

func TestPeriodicity(t *testing.T) {
	l := lab(t)
	s := SummarizePeriodicity(l.Capture.All)
	if s.Groups < 50 {
		t.Fatalf("only %d discovery groups", s.Groups)
	}
	// Appendix D.1: 88% of discovery flows periodic, ~6.2 groups/device.
	if s.PeriodicFrac < 0.5 {
		t.Errorf("periodic fraction %.2f, want ≥0.5 (paper: 0.88)", s.PeriodicFrac)
	}
	if s.GroupsPerDevice < 1 || s.GroupsPerDevice > 20 {
		t.Errorf("groups per device %.1f (paper: 6.2)", s.GroupsPerDevice)
	}
}

func TestIsPeriodicSynthetic(t *testing.T) {
	base := time.Unix(1668384000, 0)
	var periodic, noisy []time.Time
	for i := 0; i < 60; i++ {
		periodic = append(periodic, base.Add(time.Duration(i)*20*time.Second))
	}
	rngState := uint32(12345)
	next := func(mod int) int {
		rngState = rngState*1103515245 + 12345
		return int(rngState>>16) % mod
	}
	at := base
	for i := 0; i < 60; i++ {
		at = at.Add(time.Duration(1+next(600)) * time.Second)
		noisy = append(noisy, at)
	}
	if ok, period := isPeriodic(periodic); !ok || period < 15*time.Second || period > 25*time.Second {
		t.Fatalf("20s train: periodic=%v period=%v", ok, period)
	}
	if ok, _ := isPeriodic(noisy); ok {
		t.Fatal("random train flagged periodic")
	}
}

func TestResponseTable(t *testing.T) {
	l := lab(t)
	rows := ResponseTable(l.Capture.All, l.Devices)
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	byCat := map[device.Category]ResponseRow{}
	for _, r := range rows {
		byCat[r.Category] = r
	}
	echo := byCat["Amazon Echo"]
	if echo.Devices == 0 {
		t.Fatal("no Amazon Echo row")
	}
	// Table 4: Echo devices get responses from the most devices.
	for _, r := range rows {
		if r.Category != "Amazon Echo" && r.AvgResponders > echo.AvgResponders+3 {
			t.Errorf("%s out-responds Echo: %.2f vs %.2f", r.Category, r.AvgResponders, echo.AvgResponders)
		}
	}
	if RenderResponseTable(rows) == "" {
		t.Error("empty render")
	}
}

func TestDiscoveryIntervals(t *testing.T) {
	l := lab(t)
	rows := DiscoveryIntervals(l.Capture.All, l.Devices)
	if len(rows) < 20 {
		t.Fatalf("only %d interval rows", len(rows))
	}
	// §5.1: Google mDNS ≈20 s.
	if med, ok := VendorMedian(rows, "Google", "mDNS"); !ok || med < 10*time.Second || med > 60*time.Second {
		t.Errorf("Google mDNS median %v ok=%v, want ≈20s", med, ok)
	}
	// §5.1: Google SSDP ≈20 s.
	if med, ok := VendorMedian(rows, "Google", "SSDP"); !ok || med > 90*time.Second {
		t.Errorf("Google SSDP median %v ok=%v, want ≈20s", med, ok)
	}
	// Amazon mDNS in the 20–100 s band.
	if med, ok := VendorMedian(rows, "Amazon", "mDNS"); !ok || med < 10*time.Second || med > 150*time.Second {
		t.Errorf("Amazon mDNS median %v ok=%v, want 20–100s", med, ok)
	}
	if RenderIntervals(rows) == "" {
		t.Error("empty render")
	}
}
